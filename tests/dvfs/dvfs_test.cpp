#include "dvfs/dvfs.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

DvfsConfig dcfg() { return DvfsConfig{}; }
PowerConfig pcfg() { return PowerConfig{}; }

TEST(DvfsModes, PaperModeTable) {
  ASSERT_EQ(kDvfsModes.size(), 5u);
  EXPECT_DOUBLE_EQ(kDvfsModes[0].vdd_ratio, 1.00);
  EXPECT_DOUBLE_EQ(kDvfsModes[0].freq_ratio, 1.00);
  EXPECT_DOUBLE_EQ(kDvfsModes[1].vdd_ratio, 0.95);
  EXPECT_DOUBLE_EQ(kDvfsModes[1].freq_ratio, 0.95);
  EXPECT_DOUBLE_EQ(kDvfsModes[2].vdd_ratio, 0.90);
  EXPECT_DOUBLE_EQ(kDvfsModes[2].freq_ratio, 0.90);
  EXPECT_DOUBLE_EQ(kDvfsModes[3].vdd_ratio, 0.90);
  EXPECT_DOUBLE_EQ(kDvfsModes[3].freq_ratio, 0.75);
  EXPECT_DOUBLE_EQ(kDvfsModes[4].vdd_ratio, 0.90);
  EXPECT_DOUBLE_EQ(kDvfsModes[4].freq_ratio, 0.65);
}

TEST(DvfsController, StartsAtFullSpeed) {
  DvfsController c(dcfg(), pcfg(), false);
  EXPECT_EQ(c.mode(), 0u);
  EXPECT_DOUBLE_EQ(c.vdd_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(c.freq_ratio(), 1.0);
}

TEST(DvfsController, StepsDownWhenOverBudget) {
  const DvfsConfig cfg = dcfg();
  DvfsController c(cfg, pcfg(), false);
  Cycle now = 0;
  for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
    c.tick(now++, 200.0, 100.0, true);
  EXPECT_EQ(c.mode(), 1u);
  EXPECT_EQ(c.transitions, 1u);
}

TEST(DvfsController, ReachesDeepestModeUnderSustainedPressure) {
  const DvfsConfig cfg = dcfg();
  DvfsController c(cfg, pcfg(), false);
  Cycle now = 0;
  for (int w = 0; w < 40; ++w)
    for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
      c.tick(now++, 500.0, 100.0, true);
  EXPECT_EQ(c.mode(), 4u);
  EXPECT_DOUBLE_EQ(c.freq_ratio(), 0.65);
  EXPECT_DOUBLE_EQ(c.vdd_ratio(), 0.90);
}

TEST(DvfsController, StepsUpWithHysteresis) {
  const DvfsConfig cfg = dcfg();
  DvfsController c(cfg, pcfg(), false);
  Cycle now = 0;
  // Push down two modes.
  for (int w = 0; w < 2; ++w)
    for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
      c.tick(now++, 500.0, 100.0, true);
  // Skip past the transition, then run well under budget.
  now = c.transition_until() + 1;
  for (int w = 0; w < 20; ++w)
    for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
      c.tick(now++, 10.0, 100.0, true);
  EXPECT_EQ(c.mode(), 0u);
}

TEST(DvfsController, RelaxesWhenNotEnforcing) {
  const DvfsConfig cfg = dcfg();
  DvfsController c(cfg, pcfg(), false);
  Cycle now = 0;
  for (int w = 0; w < 3; ++w)
    for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
      c.tick(now++, 500.0, 100.0, true);
  EXPECT_GT(c.mode(), 0u);
  now = c.transition_until() + 1;
  for (int w = 0; w < 20; ++w)
    for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
      c.tick(now++, 500.0, 100.0, /*enforce=*/false);
  EXPECT_EQ(c.mode(), 0u);  // no enforcement -> back to full speed
}

TEST(DvfsController, TransitionTimeFromSlewRate) {
  const DvfsConfig cfg = dcfg();
  DvfsController c(cfg, pcfg(), false);
  // 0.9 V * 5% = 45 mV at 12 mV/cycle -> 4 cycles (ceil).
  EXPECT_EQ(c.transition_cycles(0.045), 4u);
  // Frequency-only change still costs one cycle.
  EXPECT_EQ(c.transition_cycles(0.0), 1u);
}

TEST(DvfsController, InTransitionAfterModeChange) {
  const DvfsConfig cfg = dcfg();
  DvfsController c(cfg, pcfg(), false);
  Cycle now = 0;
  for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
    c.tick(now++, 500.0, 100.0, true);
  EXPECT_TRUE(c.in_transition(now));
  EXPECT_FALSE(c.in_transition(c.transition_until()));
}

TEST(DfsVariant, VddPinnedAtNominal) {
  const DvfsConfig cfg = dcfg();
  DvfsController c(cfg, pcfg(), /*freq_only=*/true);
  Cycle now = 0;
  for (int w = 0; w < 40; ++w)
    for (std::uint32_t i = 0; i < cfg.window_cycles; ++i)
      c.tick(now++, 500.0, 100.0, true);
  EXPECT_EQ(c.mode(), 4u);
  EXPECT_DOUBLE_EQ(c.vdd_ratio(), 1.0);   // DFS never lowers voltage
  EXPECT_DOUBLE_EQ(c.freq_ratio(), 0.65);
}

}  // namespace
}  // namespace ptb

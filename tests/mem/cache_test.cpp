#include "mem/cache.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(Cache, MissThenHit) {
  Cache c(64 * 1024, 2, 64);
  EXPECT_EQ(c.find(0x1000), nullptr);
  c.insert(0x1000, CoherenceState::kShared);
  ASSERT_NE(c.find(0x1000), nullptr);
  EXPECT_EQ(c.find(0x1000)->state, CoherenceState::kShared);
}

TEST(Cache, SameLineDifferentOffsets) {
  Cache c(64 * 1024, 2, 64);
  c.insert(0x1000, CoherenceState::kExclusive);
  EXPECT_NE(c.find(0x1000 + 63), nullptr);
  EXPECT_EQ(c.find(0x1000 + 64), nullptr);
}

TEST(Cache, LruEviction) {
  // 2-way: fill a set with two lines, touch the first, insert a third ->
  // the second (least recently used) is evicted.
  Cache c(64 * 1024, 2, 64);
  const Addr set_stride = static_cast<Addr>(c.num_sets()) * 64;
  const Addr a = 0x0, b = set_stride, d = 2 * set_stride;
  c.insert(a, CoherenceState::kShared);
  c.insert(b, CoherenceState::kShared);
  ASSERT_NE(c.find(a), nullptr);  // touch a -> b becomes LRU
  const Cache::Line evicted = c.insert(d, CoherenceState::kShared);
  EXPECT_EQ(evicted.tag, c.line_of(b));
  EXPECT_NE(c.find(a), nullptr);
  EXPECT_EQ(c.find(b), nullptr);
  EXPECT_NE(c.find(d), nullptr);
}

TEST(Cache, InsertIntoFreeWayEvictsNothing) {
  Cache c(64 * 1024, 2, 64);
  const Cache::Line evicted = c.insert(0x40, CoherenceState::kModified);
  EXPECT_EQ(evicted.state, CoherenceState::kInvalid);
}

TEST(Cache, Invalidate) {
  Cache c(64 * 1024, 2, 64);
  c.insert(0x2000, CoherenceState::kModified);
  c.invalidate(0x2000);
  EXPECT_EQ(c.find(0x2000), nullptr);
  c.invalidate(0x3000);  // invalidating an absent line is a no-op
}

TEST(Cache, EvictionCounter) {
  Cache c(8 * 64 * 2, 2, 64);  // 8 sets, 2 ways
  const Addr stride = 8 * 64;
  c.insert(0, CoherenceState::kShared);
  c.insert(stride, CoherenceState::kShared);
  EXPECT_EQ(c.evictions, 0u);
  c.insert(2 * stride, CoherenceState::kShared);
  EXPECT_EQ(c.evictions, 1u);
}

TEST(Cache, HashedIndexingSpreadsAlignedBases) {
  // With index_shift != 0 (banked L2 mode), large power-of-two aligned
  // regions must not collapse into the same few sets.
  Cache c(1024 * 1024, 4, 64, 2);
  int evictions_before = 0;
  // 4 regions of 64 lines, 16 MB apart (the degenerate case for plain
  // indexing with interleaved banks).
  for (Addr region = 0; region < 4; ++region) {
    for (Addr j = 0; j < 64; ++j) {
      c.insert(region * 0x0100'0000 + j * 256, CoherenceState::kShared);
    }
  }
  EXPECT_EQ(c.evictions, static_cast<std::uint64_t>(evictions_before));
}

TEST(CoherenceStateHelpers, DirtyAndOwner) {
  EXPECT_TRUE(is_dirty(CoherenceState::kModified));
  EXPECT_TRUE(is_dirty(CoherenceState::kOwned));
  EXPECT_FALSE(is_dirty(CoherenceState::kShared));
  EXPECT_FALSE(is_dirty(CoherenceState::kExclusive));
  EXPECT_TRUE(is_owner_state(CoherenceState::kModified));
  EXPECT_TRUE(is_owner_state(CoherenceState::kExclusive));
  EXPECT_TRUE(is_owner_state(CoherenceState::kOwned));
  EXPECT_FALSE(is_owner_state(CoherenceState::kShared));
  EXPECT_FALSE(is_owner_state(CoherenceState::kInvalid));
}

TEST(CoherenceStateHelpers, Names) {
  EXPECT_STREQ(coherence_state_name(CoherenceState::kModified), "M");
  EXPECT_STREQ(coherence_state_name(CoherenceState::kOwned), "O");
  EXPECT_STREQ(coherence_state_name(CoherenceState::kExclusive), "E");
  EXPECT_STREQ(coherence_state_name(CoherenceState::kShared), "S");
  EXPECT_STREQ(coherence_state_name(CoherenceState::kInvalid), "I");
}

// Property: after any interleaving of inserts and invalidates, a found line
// always reports the state it was last given.
class CacheStateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheStateProperty, FindReflectsLastInsert) {
  Cache c(4 * 1024, 2, 64);
  const Addr a = GetParam() * 64;
  c.insert(a, CoherenceState::kExclusive);
  if (Cache::Line* l = c.find(a)) {
    l->state = CoherenceState::kModified;
  }
  ASSERT_NE(c.find(a), nullptr);
  EXPECT_EQ(c.find(a)->state, CoherenceState::kModified);
}

INSTANTIATE_TEST_SUITE_P(Lines, CacheStateProperty,
                         ::testing::Values(0ull, 1ull, 31ull, 32ull, 63ull,
                                           1024ull, 4095ull));

}  // namespace
}  // namespace ptb

// MOESI directory protocol transitions and invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/directory.hpp"
#include "mem/memory_system.hpp"
#include "noc/mesh.hpp"

namespace ptb {
namespace {

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest()
      : cfg_(make_cfg()), mesh_(cfg_.noc, cfg_.mesh_width(),
                                cfg_.mesh_height()),
        mem_(cfg_, mesh_) {}

  static SimConfig make_cfg() {
    SimConfig c;
    c.num_cores = 4;
    return c;
  }

  CoherenceState l1d_state(CoreId c, Addr a) {
    const Cache::Line* l = mem_.l1d(c).find(a);
    return l ? l->state : CoherenceState::kInvalid;
  }

  SimConfig cfg_;
  Mesh mesh_;
  MemorySystem mem_;
};

constexpr Addr kA = 0x10000;

TEST_F(CoherenceTest, FirstReadGetsExclusive) {
  mem_.access(0, MemAccessType::kLoad, kA, 0);
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kExclusive);
  mem_.check_swmr();
}

TEST_F(CoherenceTest, SecondReaderDowngradesExclusiveToShared) {
  mem_.access(0, MemAccessType::kLoad, kA, 0);
  const auto r = mem_.access(1, MemAccessType::kLoad, kA, 1000);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kShared);
  EXPECT_EQ(l1d_state(1, kA), CoherenceState::kShared);
  mem_.check_swmr();
}

TEST_F(CoherenceTest, StoreUpgradesToModified) {
  mem_.access(0, MemAccessType::kStore, kA, 0);
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kModified);
  mem_.check_swmr();
}

TEST_F(CoherenceTest, SilentExclusiveToModified) {
  mem_.access(0, MemAccessType::kLoad, kA, 0);
  ASSERT_EQ(l1d_state(0, kA), CoherenceState::kExclusive);
  const auto r = mem_.access(0, MemAccessType::kStore, kA, 1000);
  EXPECT_TRUE(r.l1_hit);  // silent E->M upgrade, no directory traffic
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kModified);
}

TEST_F(CoherenceTest, StoreInvalidatesSharers) {
  mem_.access(0, MemAccessType::kLoad, kA, 0);
  mem_.access(1, MemAccessType::kLoad, kA, 1000);
  mem_.access(2, MemAccessType::kStore, kA, 2000);
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kInvalid);
  EXPECT_EQ(l1d_state(1, kA), CoherenceState::kInvalid);
  EXPECT_EQ(l1d_state(2, kA), CoherenceState::kModified);
  mem_.check_swmr();
}

TEST_F(CoherenceTest, ReadFromModifiedOwnerYieldsOwned) {
  mem_.access(0, MemAccessType::kStore, kA, 0);
  mem_.access(1, MemAccessType::kLoad, kA, 1000);
  // MOESI: the dirty owner keeps the line in O; the reader gets S.
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kOwned);
  EXPECT_EQ(l1d_state(1, kA), CoherenceState::kShared);
  mem_.check_swmr();
}

TEST_F(CoherenceTest, OwnerSuppliesDataViaForward) {
  mem_.access(0, MemAccessType::kStore, kA, 0);
  const auto before = mem_.directory().owner_forwards;
  mem_.access(1, MemAccessType::kLoad, kA, 1000);
  EXPECT_EQ(mem_.directory().owner_forwards, before + 1);
}

TEST_F(CoherenceTest, WriteAfterOwnedInvalidatesAll) {
  mem_.access(0, MemAccessType::kStore, kA, 0);     // 0: M
  mem_.access(1, MemAccessType::kLoad, kA, 1000);   // 0: O, 1: S
  mem_.access(1, MemAccessType::kStore, kA, 2000);  // 1: M, 0: I
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kInvalid);
  EXPECT_EQ(l1d_state(1, kA), CoherenceState::kModified);
  mem_.check_swmr();
}

TEST_F(CoherenceTest, AtomicBehavesLikeStore) {
  mem_.access(0, MemAccessType::kLoad, kA, 0);
  mem_.access(1, MemAccessType::kAtomicRmw, kA, 1000);
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kInvalid);
  EXPECT_EQ(l1d_state(1, kA), CoherenceState::kModified);
}

TEST_F(CoherenceTest, MissLatencyIncludesDramOnColdStart) {
  const auto r = mem_.access(0, MemAccessType::kLoad, kA, 0);
  EXPECT_GE(r.done, cfg_.mem.dram_latency);
}

TEST_F(CoherenceTest, WarmedLineSkipsDram) {
  mem_.directory().warm(kNoCore, kA / 64, false, false);
  const auto r = mem_.access(0, MemAccessType::kLoad, kA, 0);
  EXPECT_LT(r.done, cfg_.mem.dram_latency);
}

TEST_F(CoherenceTest, WarmExclusiveInstallsL1Copy) {
  mem_.directory().warm(2, kA / 64, false, true);
  const auto r = mem_.access(2, MemAccessType::kStore, kA, 0);
  EXPECT_TRUE(r.l1_hit);  // E->M silent upgrade on the warmed copy
}

TEST_F(CoherenceTest, ConcurrentWritersSerializePerLine) {
  // Two stores to the same line issued at the same cycle: per-line
  // transaction serialization must order them strictly.
  const auto a = mem_.access(0, MemAccessType::kStore, kA, 0);
  const auto b = mem_.access(1, MemAccessType::kStore, kA, 0);
  EXPECT_GT(b.done, a.done);
  mem_.check_swmr();
}

TEST_F(CoherenceTest, ReadersDoNotSerializeBehindEachOther) {
  mem_.directory().warm(kNoCore, kA / 64, false, false);
  const auto a = mem_.access(0, MemAccessType::kLoad, kA, 0);
  const auto b = mem_.access(1, MemAccessType::kLoad, kA, 0);
  // Both readers stream from the home bank; the second is not pushed
  // behind the first's full transaction.
  EXPECT_LT(b.done, a.done + 50);
  mem_.check_swmr();
}

class MesiTest : public ::testing::Test {
 protected:
  MesiTest()
      : cfg_(make_cfg()), mesh_(cfg_.noc, cfg_.mesh_width(),
                                cfg_.mesh_height()),
        mem_(cfg_, mesh_) {}

  static SimConfig make_cfg() {
    SimConfig c;
    c.num_cores = 4;
    c.l2.protocol = CoherenceProtocol::kMesi;
    return c;
  }

  CoherenceState l1d_state(CoreId c, Addr a) {
    const Cache::Line* l = mem_.l1d(c).find(a);
    return l ? l->state : CoherenceState::kInvalid;
  }

  SimConfig cfg_;
  Mesh mesh_;
  MemorySystem mem_;
};

TEST_F(MesiTest, ReadOfModifiedWritesBackAndShares) {
  mem_.access(0, MemAccessType::kStore, kA, 0);
  const auto wb_before = mem_.directory().writebacks;
  mem_.access(1, MemAccessType::kLoad, kA, 1000);
  // MESI: no O state — the dirty owner drops to S and writes back.
  EXPECT_EQ(l1d_state(0, kA), CoherenceState::kShared);
  EXPECT_EQ(l1d_state(1, kA), CoherenceState::kShared);
  EXPECT_GT(mem_.directory().writebacks, wb_before);
  mem_.check_swmr();
}

TEST_F(MesiTest, SecondReaderServedFromL2NotOwner) {
  mem_.access(0, MemAccessType::kStore, kA, 0);
  mem_.access(1, MemAccessType::kLoad, kA, 1000);
  const auto fwd_before = mem_.directory().owner_forwards;
  mem_.access(2, MemAccessType::kLoad, kA, 2000);
  // No owner remains after the MESI writeback: the L2 supplies directly.
  EXPECT_EQ(mem_.directory().owner_forwards, fwd_before);
  mem_.check_swmr();
}

TEST_F(MesiTest, NoOwnedStateEverAppears) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const CoreId c = static_cast<CoreId>(rng.next_below(4));
    const Addr a = 0x10000 + rng.next_below(32) * 64;
    mem_.access(c, rng.chance(0.4) ? MemAccessType::kStore
                                   : MemAccessType::kLoad,
                a, i * 3);
  }
  for (CoreId c = 0; c < 4; ++c) {
    for (const auto& l : mem_.l1d(c).all_lines()) {
      EXPECT_NE(l.state, CoherenceState::kOwned);
    }
  }
  mem_.check_swmr();
}

TEST_F(CoherenceTest, SwmrHoldsUnderRandomTraffic) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const CoreId c = static_cast<CoreId>(rng.next_below(4));
    const Addr a = 0x10000 + rng.next_below(64) * 64;
    const auto type = rng.chance(0.3) ? MemAccessType::kStore
                                      : MemAccessType::kLoad;
    mem_.access(c, type, a, i * 3);
  }
  mem_.check_swmr();
}

}  // namespace
}  // namespace ptb

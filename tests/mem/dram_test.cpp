#include "mem/dram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ptb {
namespace {

MemConfig flat() { return MemConfig{}; }

MemConfig banked() {
  MemConfig m;
  m.banked = true;
  return m;
}

TEST(Dram, FlatModelIsTable1Latency) {
  DramModel d(flat());
  EXPECT_EQ(d.access(0x100, 1000), 1000u + 300u);
  EXPECT_EQ(d.access(0x100, 2000), 2000u + 300u);  // stateless
}

TEST(Dram, RowMissCostsFullCycle) {
  const MemConfig m = banked();
  DramModel d(m);
  const Cycle done = d.access(0x100, 1000);
  // bus + (pre + act + cas) + bus
  EXPECT_EQ(done, 1000u + m.t_bus + m.t_pre + m.t_act + m.t_cas + m.t_bus);
  EXPECT_EQ(d.row_misses, 1u);
}

TEST(Dram, RowHitIsMuchCheaper) {
  const MemConfig m = banked();
  DramModel d(m);
  d.access(0x100, 0);  // opens the row
  // Same bank, same row, long after the first access completes.
  const Cycle done = d.access(0x100, 10000);
  EXPECT_EQ(done, 10000u + m.t_bus + m.t_cas + m.t_bus);
  EXPECT_EQ(d.row_hits, 1u);
}

TEST(Dram, SameRowConsecutiveLinesHit) {
  const MemConfig m = banked();
  DramModel d(m);
  // Lines `l` and `l + banks` map to the same bank; with 4 KB rows and
  // 64 B lines, 64 consecutive bank-lines share a row.
  const Addr banks = static_cast<Addr>(m.channels) * m.banks_per_channel;
  d.access(0, 0);
  d.access(banks, 100000);  // same bank, same row
  EXPECT_EQ(d.row_hits, 1u);
}

TEST(Dram, BankConflictQueues) {
  const MemConfig m = banked();
  DramModel d(m);
  const Addr banks = static_cast<Addr>(m.channels) * m.banks_per_channel;
  // Two concurrent requests to the same bank, different rows: the second
  // waits for the first.
  const Cycle a = d.access(0, 0);
  const Addr far_row = banks * (m.row_bytes / 64) * 7;
  const Cycle b = d.access(far_row, 0);
  EXPECT_GT(b, a);
}

TEST(Dram, DifferentBanksProceedInParallel) {
  const MemConfig m = banked();
  DramModel d(m);
  const Cycle a = d.access(0, 0);
  const Cycle b = d.access(1, 0);  // next line -> next bank
  EXPECT_EQ(a, b);
}

TEST(Dram, StreamingIsFasterThanRandomOnAverage) {
  const MemConfig m = banked();
  DramModel stream(m), random(m);
  Cycle t = 0;
  Cycle stream_total = 0, random_total = 0;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    stream_total += stream.access(static_cast<Addr>(i), t) - t;
    random_total +=
        random.access(rng.next_below(1 << 24), t) - t;
    t += 400;
  }
  EXPECT_LT(stream_total, random_total);
  EXPECT_GT(stream.row_hits, random.row_hits);
}

}  // namespace
}  // namespace ptb

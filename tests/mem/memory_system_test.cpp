// L1 front-end behaviour: hits, MSHR limits, inclusion, statistics.
#include "mem/memory_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "noc/mesh.hpp"

namespace ptb {
namespace {

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest()
      : cfg_(make_cfg()), mesh_(cfg_.noc, cfg_.mesh_width(),
                                cfg_.mesh_height()),
        mem_(cfg_, mesh_) {}

  static SimConfig make_cfg() {
    SimConfig c;
    c.num_cores = 4;
    return c;
  }

  SimConfig cfg_;
  Mesh mesh_;
  MemorySystem mem_;
};

TEST_F(MemorySystemTest, L1HitLatencyIsOneCycle) {
  mem_.access(0, MemAccessType::kLoad, 0x5000, 0);
  const auto busy_done = mem_.access(0, MemAccessType::kLoad, 0x5000, 5000);
  EXPECT_TRUE(busy_done.l1_hit);
  EXPECT_EQ(busy_done.done, 5000u + cfg_.l1d.hit_latency);
}

TEST_F(MemorySystemTest, IFetchFillsL1I) {
  const auto miss = mem_.access(0, MemAccessType::kIFetch, 0x9000, 0);
  EXPECT_FALSE(miss.l1_hit);
  const auto hit = mem_.access(0, MemAccessType::kIFetch, 0x9000, 5000);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_NE(mem_.l1i(0).find(0x9000), nullptr);
  EXPECT_EQ(mem_.l1d(0).find(0x9000), nullptr);  // fills go to the L1I
}

TEST_F(MemorySystemTest, MshrLimitThrottlesMissBursts) {
  // Issue far more concurrent misses than MSHRs; later misses must start
  // only after earlier ones complete.
  Cycle last = 0;
  for (std::uint32_t i = 0; i < cfg_.l1d.mshrs * 3; ++i) {
    const Addr a = 0x100000 + static_cast<Addr>(i) * 4096;
    last = std::max(last, mem_.access(0, MemAccessType::kLoad, a, 0).done);
  }
  // With 16 MSHRs and ~300-cycle DRAM misses, 48 misses need >= 3 rounds.
  EXPECT_GT(last, 2u * cfg_.mem.dram_latency);
}

TEST_F(MemorySystemTest, StatisticsCount) {
  mem_.access(0, MemAccessType::kLoad, 0x1000, 0);
  mem_.access(0, MemAccessType::kStore, 0x2000, 0);
  mem_.access(0, MemAccessType::kAtomicRmw, 0x3000, 0);
  mem_.access(0, MemAccessType::kIFetch, 0x4000, 0);
  EXPECT_EQ(mem_.loads, 1u);
  EXPECT_EQ(mem_.stores, 1u);
  EXPECT_EQ(mem_.atomics, 1u);
  EXPECT_EQ(mem_.ifetches, 1u);
  EXPECT_EQ(mem_.l1_misses, 4u);
}

TEST_F(MemorySystemTest, InclusionRecallDropsL1Copies) {
  // Force an L2 set to overflow and verify the recalled line leaves the L1.
  // L2 bank sets are hashed, so overflow is provoked by brute force: insert
  // lines mapping to one bank until the victim of interest is gone.
  DirectoryController& dir = mem_.directory();
  const Addr target = 0x40;  // line 1 -> bank 1
  mem_.access(0, MemAccessType::kLoad, target, 0);
  ASSERT_NE(mem_.l1d(0).find(target), nullptr);
  // Flood bank 1 (line % 4 == 1) with distinct lines.
  const std::uint32_t flood =
      (cfg_.l2.size_bytes_per_core / cfg_.l2.line_bytes) * 2;
  for (std::uint32_t i = 1; i <= flood; ++i) {
    const Addr line = 1 + static_cast<Addr>(i) * 4;
    dir.warm(kNoCore, line, false, false);
  }
  // The target's L2 entry has been evicted; its L1 copy must be gone too
  // (inclusion).
  EXPECT_EQ(mem_.l1d(0).find(target), nullptr);
}

TEST_F(MemorySystemTest, SwmrAfterWarmup) {
  DirectoryController& dir = mem_.directory();
  for (Addr l = 0; l < 256; ++l) dir.warm(l % 4, l, false, true);
  mem_.check_swmr();
}

}  // namespace
}  // namespace ptb

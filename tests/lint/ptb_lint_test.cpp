// In-process tests for the ptb-lint frontend (tools/lint/lex.*) and the
// contract checkers (tools/lint/checks.*).
//
// The fixture protocol: every file under tests/lint/fixtures/ is a
// fault-injection specimen whose expected findings are exactly the lines
// containing the literal word FINDING (in a trailing comment). The test
// lexes the whole fixture directory as one corpus, runs every checker,
// and requires the reported (file, line) set to equal the annotated set —
// so a checker that goes quiet on its seeded violation AND a checker that
// starts firing on a calibrated negative both fail the same assertion.
//
// A second test lexes the real source tree (src/, bench/, examples/) and
// requires zero findings, pinning the calibration work: every justified
// exemption in the tree carries its allow marker, and nothing else fires.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/checks.hpp"
#include "lint/lex.hpp"

namespace fs = std::filesystem;
using ptblint::Corpus;
using ptblint::Finding;
using ptblint::SourceFile;
using ptblint::Tok;

namespace {

SourceFile lex_snippet(const std::string& text) {
  SourceFile f;
  f.path = "snippet.cpp";
  f.rel = "snippet.cpp";
  ptblint::lex(text, f);
  return f;
}

std::vector<Finding> run_all(const Corpus& corpus) {
  std::vector<Finding> out;
  for (const ptblint::CheckInfo& c : ptblint::all_checks()) {
    c.fn(corpus, out);
  }
  return out;
}

/// Sorted .cpp/.hpp paths under `root` (recursive).
std::vector<fs::path> source_files(const fs::path& root) {
  std::vector<fs::path> paths;
  if (!fs::is_directory(root)) return paths;
  for (const auto& e : fs::recursive_directory_iterator(root)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
        ext == ".cxx" || ext == ".hxx") {
      paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

// --- lexer -----------------------------------------------------------------

TEST(LintLex, CommentsAndStringsProduceNoTokens) {
  const SourceFile f = lex_snippet(
      "int a = 1; // trailing comment with code-like text: b = 2;\n"
      "/* block\n comment int c = 3; */\n"
      "const char* s = \"int d = 4;\";\n");
  for (const auto& t : f.tokens) {
    EXPECT_NE(t.text, "b");
    EXPECT_NE(t.text, "c");
    EXPECT_NE(t.text, "d");
  }
  // The string literal is one token, not lexed as code.
  const auto it = std::find_if(f.tokens.begin(), f.tokens.end(),
                               [](const auto& t) { return t.kind == Tok::kString; });
  ASSERT_NE(it, f.tokens.end());
  EXPECT_EQ(it->text, "int d = 4;");
}

TEST(LintLex, RawStringsAndDigitSeparators) {
  const SourceFile f = lex_snippet(
      "auto r = R\"(no \" tokens ; here)\";\n"
      "long n = 1'000'000;\n");
  const auto s = std::find_if(f.tokens.begin(), f.tokens.end(),
                              [](const auto& t) { return t.kind == Tok::kString; });
  ASSERT_NE(s, f.tokens.end());
  EXPECT_EQ(s->text, "no \" tokens ; here");
  const auto n = std::find_if(f.tokens.begin(), f.tokens.end(),
                              [](const auto& t) { return t.kind == Tok::kNumber; });
  ASSERT_NE(n, f.tokens.end());
  EXPECT_EQ(n->text, "1'000'000");
}

TEST(LintLex, MultiCharOperatorsAreSingleTokens) {
  const SourceFile f = lex_snippet("a += b->c; x <<= y; p = q ? r::s : t;\n");
  std::set<std::string> puncts;
  for (const auto& t : f.tokens) {
    if (t.kind == Tok::kPunct) puncts.insert(t.text);
  }
  EXPECT_EQ(puncts.count("+="), 1u);
  EXPECT_EQ(puncts.count("->"), 1u);
  EXPECT_EQ(puncts.count("<<="), 1u);
  EXPECT_EQ(puncts.count("::"), 1u);
}

// --- markers ---------------------------------------------------------------

TEST(LintMarkers, SameLineAllowSuppressesItsOwnLine) {
  const SourceFile f = lex_snippet(
      "int a = bad();  // ptb-lint: allow(wallclock)\n"
      "int b = bad();\n");
  EXPECT_TRUE(f.allowed("wallclock", 1));
  EXPECT_FALSE(f.allowed("wallclock", 2));
  EXPECT_FALSE(f.allowed("fp-accum", 1));  // named check only
}

TEST(LintMarkers, OwnLineAllowBindsToNextCodeLine) {
  const SourceFile f = lex_snippet(
      "// ptb-lint: allow(phase-purity)\n"
      "// explanatory prose between marker and code\n"
      "int a = bad();\n"
      "int b = bad();\n");
  EXPECT_TRUE(f.allowed("phase-purity", 3));
  EXPECT_FALSE(f.allowed("phase-purity", 4));
}

TEST(LintMarkers, AllowWithoutArgsSuppressesEveryCheck) {
  const SourceFile f = lex_snippet("int a = bad();  // ptb-lint: allow()\n");
  EXPECT_TRUE(f.allowed("wallclock", 1));
  EXPECT_TRUE(f.allowed("unordered-iter", 1));
}

TEST(LintMarkers, AllowBlockCoversEveryLineInclusive) {
  const SourceFile f = lex_snippet(
      "// ptb-lint: allow-begin(phase-purity)\n"
      "int a = bad();\n"
      "int b = bad();\n"
      "// ptb-lint: allow-end\n"
      "int c = bad();\n");
  EXPECT_TRUE(f.allowed("phase-purity", 2));
  EXPECT_TRUE(f.allowed("phase-purity", 3));
  EXPECT_FALSE(f.allowed("phase-purity", 5));
}

TEST(LintMarkers, LegacyWallclockSpellingStillWorks) {
  const SourceFile f = lex_snippet(
      "auto t = steady_clock::now();  // lint:allowed-wallclock\n");
  EXPECT_TRUE(f.allowed("wallclock", 1));
}

TEST(LintMarkers, MarkerInsideStringLiteralIsNotAMarker) {
  const SourceFile f = lex_snippet(
      "const char* doc = \"// ptb-lint: allow(wallclock)\";\n");
  EXPECT_FALSE(f.allowed("wallclock", 1));
  EXPECT_TRUE(f.markers.empty());
}

TEST(LintMarkers, RegionAndFileMarkersAreRecorded) {
  const SourceFile f = lex_snippet(
      "// ptb-lint: cycle-loop-file\n"
      "// ptb-lint: parallel-region-begin(shard)\n"
      "// ptb-lint: parallel-region-end(shard)\n");
  EXPECT_TRUE(f.has_marker("cycle-loop-file"));
  EXPECT_TRUE(f.has_marker("parallel-region-begin"));
  ASSERT_EQ(f.markers.size(), 3u);
  EXPECT_EQ(f.markers[1].args, "shard");
}

// --- fixtures: every annotated line fires, nothing else does ---------------

TEST(LintFixtures, FindingsMatchAnnotatedLinesExactly) {
  const fs::path dir = PTB_LINT_FIXTURE_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;

  Corpus corpus;
  std::map<std::string, std::set<int>> expected;  // rel -> FINDING lines
  for (const fs::path& p : source_files(dir)) {
    const std::string rel = p.filename().string();
    SourceFile f;
    ASSERT_TRUE(ptblint::lex_file(p.string(), rel, f)) << p;
    corpus.files.push_back(std::move(f));

    std::ifstream in(p);
    std::string line;
    int ln = 0;
    while (std::getline(in, line)) {
      ++ln;
      if (line.find("FINDING") != std::string::npos) expected[rel].insert(ln);
    }
  }
  ASSERT_GE(corpus.files.size(), 5u) << "fixture corpus went missing";

  std::map<std::string, std::set<int>> actual;
  std::set<std::string> checks_fired;
  for (const Finding& fd : run_all(corpus)) {
    actual[fd.rel].insert(fd.line);
    checks_fired.insert(fd.check);
  }

  // Per-file equality gives a readable diff when a checker drifts.
  for (const auto& [rel, lines] : expected) {
    EXPECT_EQ(actual[rel], lines) << rel;
  }
  for (const auto& [rel, lines] : actual) {
    EXPECT_TRUE(expected.count(rel)) << rel << " fired without annotations";
  }

  // The fixture set must exercise every registered checker, so a new
  // checker cannot land without a fault-injection specimen.
  std::set<std::string> all_names;
  for (const ptblint::CheckInfo& c : ptblint::all_checks()) {
    all_names.insert(c.name);
  }
  EXPECT_EQ(checks_fired, all_names);
}

// --- the real tree is clean -------------------------------------------------

TEST(LintRealTree, SourceTreeHasNoFindings) {
  const fs::path root = PTB_LINT_SOURCE_ROOT;
  Corpus corpus;
  for (const char* sub : {"src", "bench", "examples"}) {
    for (const fs::path& p : source_files(root / sub)) {
      SourceFile f;
      ASSERT_TRUE(ptblint::lex_file(p.string(),
                                    fs::relative(p, root).generic_string(), f))
          << p;
      corpus.files.push_back(std::move(f));
    }
  }
  ASSERT_GE(corpus.files.size(), 100u) << "source scan came up short";

  std::ostringstream report;
  const std::vector<Finding> findings = run_all(corpus);
  for (const Finding& fd : findings) {
    report << fd.rel << ":" << fd.line << ": [" << fd.check << "] "
           << fd.message << "\n";
  }
  EXPECT_TRUE(findings.empty()) << report.str();
}

#!/usr/bin/env bash
# Self-test for scripts/lint.sh: each determinism/doc-drift rule must fire
# on a seeded violation, and a clean scaffold tree must pass. Uses the
# PTB_LINT_ROOT / PTB_LINT_BIN overrides lint.sh exposes for exactly this.
#
# Usage: lint_sh_test.sh <repo-root> <ptb-lint-binary>
#   repo-root        checkout containing scripts/lint.sh
#   ptb-lint-binary  built ptb-lint (for the section-4 wiring case)
# Exit: 0 all cases behave, 1 otherwise.
set -u

repo_root="${1:?usage: lint_sh_test.sh <repo-root> <ptb-lint-binary>}"
ptb_lint_bin="${2:?usage: lint_sh_test.sh <repo-root> <ptb-lint-binary>}"
lint_sh="$repo_root/scripts/lint.sh"
[[ -f "$lint_sh" ]] || { echo "FAIL: $lint_sh not found"; exit 1; }
# lint.sh cd's into the linted root, so the binary path must be absolute.
if [[ -e "$ptb_lint_bin" ]]; then
  ptb_lint_bin="$(cd "$(dirname "$ptb_lint_bin")" && pwd)/$(basename "$ptb_lint_bin")"
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
fail=0

# Minimal tree satisfying every rule: one clean source file, a bench CLI
# header whose only flag is documented in EXPERIMENTS.md.
make_tree() {
  local t="$1"
  rm -rf "$t"
  mkdir -p "$t/src" "$t/bench" "$t/examples"
  cat > "$t/src/clean.cpp" <<'EOF'
int shard_sum(const int* v, int n) {
  int s = 0;
  for (int i = 0; i < n; ++i) s += v[i];
  return s;
}
EOF
  cat > "$t/bench/bench_util.hpp" <<'EOF'
inline const char* kUsage = "usage: bench --help";
EOF
  cat > "$t/EXPERIMENTS.md" <<'EOF'
The shared bench CLI supports --help.
EOF
}

# run_case <name> <expected-exit> <required-output-regex> <ptb-lint-bin>
run_case() {
  local name="$1" want_exit="$2" want_re="$3" bin="$4"
  local out status
  out=$(PTB_LINT_ROOT="$tmp/tree" PTB_LINT_BIN="$bin" \
        bash "$lint_sh" "$tmp/no-such-build-dir" 2>&1)
  status=$?
  if [[ $status -ne $want_exit ]]; then
    echo "FAIL [$name]: exit $status, wanted $want_exit"
    echo "$out" | sed 's/^/    /'
    fail=1
  elif [[ -n "$want_re" ]] && ! grep -q -e "$want_re" <<< "$out"; then
    echo "FAIL [$name]: output missing /$want_re/"
    echo "$out" | sed 's/^/    /'
    fail=1
  else
    echo "ok   [$name]"
  fi
}

# --- clean scaffold passes (sections 3 and 4 skip with warnings) ------------
make_tree "$tmp/tree"
run_case "clean-tree" 0 "lint: OK" "/nonexistent-ptb-lint"

# --- section 1: entropy / wall clock ----------------------------------------
make_tree "$tmp/tree"
cat >> "$tmp/tree/src/clean.cpp" <<'EOF'
#include <random>
int seed_from_hw() { std::random_device rd; return static_cast<int>(rd()); }
EOF
run_case "entropy" 1 "non-deterministic source" "/nonexistent-ptb-lint"

# --- section 1: environment read --------------------------------------------
make_tree "$tmp/tree"
cat >> "$tmp/tree/src/clean.cpp" <<'EOF'
#include <cstdlib>
const char* hidden_knob() { return std::getenv("PTB_KNOB"); }
EOF
run_case "getenv" 1 "environment read in a result path" "/nonexistent-ptb-lint"

# --- section 1: steady_clock outside the allow list -------------------------
make_tree "$tmp/tree"
cat >> "$tmp/tree/src/clean.cpp" <<'EOF'
#include <chrono>
long stamp() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
EOF
run_case "steady-clock" 1 "steady_clock outside" "/nonexistent-ptb-lint"

# --- section 1: the lint:allowed-wallclock escape hatch still works ---------
make_tree "$tmp/tree"
cat >> "$tmp/tree/src/clean.cpp" <<'EOF'
#include <chrono>
long stamp() { return std::chrono::steady_clock::now().time_since_epoch().count(); }  // lint:allowed-wallclock
EOF
run_case "steady-clock-allowed" 0 "lint: OK" "/nonexistent-ptb-lint"

# --- section 1: the serve HTTP transport is wallclock-exempt ----------------
# src/serve/http.* may read steady_clock (request latency, socket
# timeouts); see the guard comment on the rule in lint.sh.
make_tree "$tmp/tree"
mkdir -p "$tmp/tree/src/serve"
cat > "$tmp/tree/src/serve/http.cpp" <<'EOF'
#include <chrono>
double now_ms() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
EOF
run_case "serve-http-exempt" 0 "lint: OK" "/nonexistent-ptb-lint"

# --- section 1: the exemption is the transport only, not all of src/serve ---
# The scheduler/codec side of the daemon picks and builds simulations; a
# clock read there is exactly the steering the rule exists to catch.
make_tree "$tmp/tree"
mkdir -p "$tmp/tree/src/serve"
cat > "$tmp/tree/src/serve/service.cpp" <<'EOF'
#include <chrono>
long pick_seed() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
EOF
run_case "serve-nontransport-fires" 1 "steady_clock outside" \
  "/nonexistent-ptb-lint"

# --- section 1: range-for over an unordered container -----------------------
make_tree "$tmp/tree"
cat >> "$tmp/tree/src/clean.cpp" <<'EOF'
#include <unordered_map>
int walk(const std::unordered_map<int, int>& unordered_hist) {
  int s = 0;
  for (const auto& [k, v] : unordered_hist) s += v;
  return s;
}
EOF
run_case "unordered-range-for" 1 "range-for over an unordered container" \
  "/nonexistent-ptb-lint"

# --- section 2: undocumented bench flag -------------------------------------
make_tree "$tmp/tree"
cat > "$tmp/tree/bench/bench_util.hpp" <<'EOF'
inline const char* kUsage = "usage: bench --help --frobnicate";
EOF
run_case "doc-drift" 1 "missing from EXPERIMENTS.md" "/nonexistent-ptb-lint"

# --- section 4: ptb-lint catches what the greps cannot ----------------------
# `time (nullptr)` defeats the \btime(nullptr) grep but not the token-level
# checker, so this case passes only if lint.sh really runs the binary.
make_tree "$tmp/tree"
cat >> "$tmp/tree/src/clean.cpp" <<'EOF'
#include <ctime>
long wall() { return static_cast<long>(time (nullptr)); }
EOF
if [[ -x "$ptb_lint_bin" ]]; then
  run_case "ptb-lint-wiring" 1 "ptb-lint contract findings" "$ptb_lint_bin"
else
  echo "skip [ptb-lint-wiring]: $ptb_lint_bin not built"
fi

# --- section 4: missing binary degrades to a warning, not a failure ---------
make_tree "$tmp/tree"
run_case "ptb-lint-skip" 0 "skipping ptb-lint" "/nonexistent-ptb-lint"

if [[ $fail -ne 0 ]]; then
  echo "lint_sh_test: FAILED"
  exit 1
fi
echo "lint_sh_test: OK"

// Fault-injection fixture for the fp-accum checker: a scalar FP reduction
// over indexed elements inside a loop, in a file marked as cycle-loop
// code, must fire; element-wise updates and integer sums must not.
// Never compiled — lint input only.
// ptb-lint: cycle-loop-file

double fixture_fp_reduce(const double* vals, double* acc, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += vals[i];  // FINDING: use deterministic_total()
  }

  // Element-wise update (per-core state): must NOT fire.
  for (int i = 0; i < n; ++i) {
    acc[i] += vals[i];
  }

  // Integer reduction: must NOT fire (only FP order is association-bound).
  long hits = 0;
  for (int i = 0; i < n; ++i) {
    hits += static_cast<long>(vals[i] > 0.0);
  }

  // Scalar-accumulate without element indexing (EMA-style): must NOT fire.
  double ema = 0.0;
  for (int i = 0; i < n; ++i) {
    ema += 0.1 * (total - ema);
  }

  // Justified exemption: must NOT fire.
  double checked = 0.0;
  for (int i = 0; i < n; ++i) {
    checked += vals[i];  // ptb-lint: allow(fp-accum)
  }
  return total + ema + checked + static_cast<double>(hits);
}

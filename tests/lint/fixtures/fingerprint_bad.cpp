// Fault-injection fixture for the fingerprint checker: every SimConfig
// leaf must be hashed or explicitly excluded, and the exclusion list must
// carry no stale entries. This file's SimConfig shadows the real one only
// within the fixture corpus. Never compiled — lint input only.

struct FixtureNested {
  int hashed_sub = 0;
  int missing_sub = 0;  // FINDING: nested leaf neither hashed nor excluded
};

struct SimConfig {
  int hashed_field = 1;
  int missing_field = 2;  // FINDING: neither hashed nor excluded
  int observer_knob = 3;  // excluded below: must NOT fire
  FixtureNested nested{};
};

// The stale entry (ghost_field) names a field that does not exist, so the
// checker fires on the marker line itself.
// ptb-lint: fingerprint-exclude(observer_knob, ghost_field)  // FINDING: stale entry
unsigned long machine_fingerprint(const SimConfig& cfg) {
  unsigned long h = 1469598103934665603ul;
  h ^= static_cast<unsigned long>(cfg.hashed_field);
  h ^= static_cast<unsigned long>(cfg.nested.hashed_sub);
  return h;
}

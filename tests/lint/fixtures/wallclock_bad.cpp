// Fault-injection fixture for the wallclock checker: host time and
// entropy sources must fire token-exactly; the project's own identifiers
// that merely contain those substrings must not. Never compiled — lint
// input only.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

struct FixtureTimer {
  double time() const { return 0.0; }  // member named time: must NOT fire
};

double fixture_wallclock() {
  auto t0 = std::chrono::high_resolution_clock::now();  // FINDING
  std::random_device rd;                                // FINDING
  const char* level = std::getenv("PTB_LEVEL");         // FINDING
  int r = rand();                                       // FINDING
  std::time_t now = time(nullptr);                      // FINDING

  // Token-exact: substring lookalikes must NOT fire.
  double steady_state = 1.0;
  double fetch_time = 2.0;
  FixtureTimer timer;
  steady_state += timer.time();

  // Justified exemption (profiling-only): must NOT fire.
  auto t1 = std::chrono::steady_clock::now();  // lint:allowed-wallclock
  (void)t0;
  (void)t1;
  (void)rd;
  (void)level;
  (void)now;
  return steady_state + fetch_time + static_cast<double>(r);
}

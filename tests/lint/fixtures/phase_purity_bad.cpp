// Fault-injection fixture for the phase-purity checker: code inside a
// marked parallel shard region — and functions lexically reachable from
// it — must not call sequential-point API or touch barrier-synchronized
// members. Never compiled — lint input only.

struct FixtureMem {
  int access(int a) { return a; }
};
struct FixtureSync {
  int arrive(int id) { return id; }
  int lock_addr(int id) const { return id * 64; }
};

FixtureMem mem_;
FixtureSync sync_;

void stage_flush();
void register_stats();

// Transitive hop: reachable from the region below, so its mem_ touch must
// be reported even though the function itself carries no marker.
int fixture_phase_helper(int a) {
  return mem_.access(a);  // FINDING (reachable from region)
}

int fixture_phase_region() {
  int total = 0;
  // ptb-lint: parallel-region-begin(fixture_shard)
  auto shard_job = [&](int s) {
    stage_flush();                        // FINDING: sequential-point API
    total += sync_.arrive(s);             // FINDING: barrier-synced state
    total += fixture_phase_helper(s);     // (finding lands in the helper)
    total += sync_.lock_addr(s);          // immutable layout: must NOT fire
    // Justified exemption: must NOT fire.
    // ptb-lint: allow(phase-purity)
    total += sync_.arrive(s + 1);
  };
  shard_job(0);
  // ptb-lint: parallel-region-end(fixture_shard)

  // Outside the region: must NOT fire.
  register_stats();
  return total + mem_.access(1);
}

// Fault-injection fixture for the unordered-iter checker: iteration over
// hash-ordered containers must fire; keyed lookups and marker-allowed
// lines must not. Never compiled — lint input only.
#include <unordered_map>
#include <unordered_set>

int fixture_unordered_sum() {
  std::unordered_map<int, int> histogram;
  std::unordered_set<int> visited;
  histogram[1] = 2;

  int sum = 0;
  for (const auto& [key, count] : histogram) {  // FINDING: range-for
    sum += key * count;
  }
  for (auto it = visited.begin(); it != visited.end(); ++it) {  // FINDING
    sum += *it;
  }

  // Keyed lookup: must NOT fire.
  if (histogram.find(3) != histogram.end()) sum += histogram.count(3);

  // Justified exemption: must NOT fire.
  // ptb-lint: allow(unordered-iter)
  for (const auto& v : visited) sum += v;
  return sum;
}

// Fault-injection tests for the invariant auditor (src/audit): each test
// corrupts exactly one component invariant and asserts that the matching
// auditor class — and only that class — fires. A clean 16-core full-audit
// run over a real suite benchmark closes the loop: the auditor passes on
// healthy state and catches every seeded fault.
#include "audit/audit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/balancer.hpp"
#include "core/enforcer.hpp"
#include "mem/memory_system.hpp"
#include "noc/mesh.hpp"
#include "power/energy_stats.hpp"
#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

WorkloadProfile tiny_profile() {
  WorkloadProfile p;
  p.name = "tiny";
  p.iterations = 2;
  p.ops_per_iteration = 3000;
  p.imbalance = 0.1;
  p.num_locks = 2;
  p.cs_per_1k_ops = 4.0;
  p.cs_len_ops = 10;
  return p;
}

SimConfig audited_cfg(std::uint32_t cores, AuditLevel level,
                      bool ptb = true) {
  TechniqueSpec t{"t", TechniqueKind::kTwoLevel, ptb, PtbPolicy::kToAll, 0.0};
  SimConfig cfg = make_sim_config(cores, t);
  cfg.audit_level = level;
  cfg.max_cycles = 2'000'000;
  return cfg;
}

/// Asserts only `cls` fired (and at least once).
void expect_only(const InvariantAuditor& aud, AuditClass cls) {
  for (std::uint32_t c = 0; c < kNumAuditClasses; ++c) {
    const AuditClass k = static_cast<AuditClass>(c);
    if (k == cls) {
      EXPECT_GE(aud.report().count(k), 1u) << audit_class_name(k);
    } else {
      EXPECT_EQ(aud.report().count(k), 0u) << audit_class_name(k);
    }
  }
}

// --- report plumbing -------------------------------------------------------

TEST(AuditReport, CountsPerClassAndKeepsFirstMessages) {
  AuditReport r;
  EXPECT_TRUE(r.clean());
  for (int i = 0; i < 40; ++i) r.add(AuditClass::kTokens, 7, "tok");
  r.add(AuditClass::kCoherence, 9, "coh");
  EXPECT_EQ(r.count(AuditClass::kTokens), 40u);
  EXPECT_EQ(r.count(AuditClass::kCoherence), 1u);
  EXPECT_EQ(r.total(), 41u);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.kept().size(), AuditReport::kMaxKept);
  EXPECT_EQ(r.kept().front().cycle, 7u);
  EXPECT_NE(r.summary().find("tokens=40"), std::string::npos);
  EXPECT_NE(r.summary().find("tok"), std::string::npos);
}

// --- token conservation (fault injection) ----------------------------------

TEST(AuditTokens, CleanBalancerPassesEveryCycle) {
  SimConfig cfg = audited_cfg(4, AuditLevel::kCheap);
  InvariantAuditor aud(cfg);
  PtbLoadBalancer b(cfg.ptb, 4, 2.0);
  std::vector<double> est{0.5, 0.5, 4.0, 4.0};
  std::vector<double> eff(4, 2.0);
  for (Cycle now = 0; now < 64; ++now) {
    b.cycle(now, est, /*global_over=*/true, PtbPolicy::kToAll, eff);
    aud.check_balancer(now, b, eff.data(), 4);
  }
  EXPECT_TRUE(aud.clean()) << aud.report().summary();
  EXPECT_GT(b.tokens_donated, 0.0);  // the scenario actually donates
}

TEST(AuditTokens, CorruptedDonationCounterFires) {
  SimConfig cfg = audited_cfg(4, AuditLevel::kCheap);
  InvariantAuditor aud(cfg);
  PtbLoadBalancer b(cfg.ptb, 4, 2.0);
  std::vector<double> est{0.5, 0.5, 4.0, 4.0};
  std::vector<double> eff(4, 2.0);
  for (Cycle now = 0; now < 32; ++now) {
    b.cycle(now, est, true, PtbPolicy::kToAll, eff);
    aud.check_balancer(now, b, eff.data(), 4);
  }
  ASSERT_TRUE(aud.clean()) << aud.report().summary();
  b.tokens_donated += 1.0;  // seeded fault: a token appears from nowhere
  aud.check_balancer(32, b, eff.data(), 4);
  expect_only(aud, AuditClass::kTokens);
}

TEST(AuditTokens, MintedEffectiveBudgetFires) {
  SimConfig cfg = audited_cfg(4, AuditLevel::kCheap);
  InvariantAuditor aud(cfg);
  PtbLoadBalancer b(cfg.ptb, 4, 2.0);
  // Seeded fault: a policy hands every core 10x its local share.
  std::vector<double> eff(4, 20.0);
  aud.check_balancer(0, b, eff.data(), 4);
  expect_only(aud, AuditClass::kTokens);
}

TEST(AuditTokens, EffBudgetArityMismatchFires) {
  SimConfig cfg = audited_cfg(4, AuditLevel::kCheap);
  InvariantAuditor aud(cfg);
  PtbLoadBalancer b(cfg.ptb, 4, 2.0);
  std::vector<double> eff(4, 2.0);
  aud.check_balancer(0, b, eff.data(), 3);  // caller/balancer disagree
  expect_only(aud, AuditClass::kTokens);
}

// --- coherence legality (fault injection) ----------------------------------

struct MemFixture {
  SimConfig cfg;
  Mesh mesh;
  MemorySystem mem;
  explicit MemFixture(std::uint32_t cores)
      : cfg(audited_cfg(cores, AuditLevel::kFull)),
        mesh(cfg.noc, cfg.mesh_width(), cfg.mesh_height()),
        mem(cfg, mesh) {}
};

TEST(AuditCoherence, WarmedStateIsClean) {
  MemFixture f(4);
  for (Addr line = 100; line < 140; ++line) {
    f.mem.directory().warm(line % 4, line, false, /*exclusive=*/true);
  }
  InvariantAuditor aud(f.cfg);
  aud.check_coherence(0, f.mem);
  EXPECT_TRUE(aud.clean()) << aud.report().summary();
}

TEST(AuditCoherence, TwoModifiedCopiesFire) {
  MemFixture f(4);
  const Addr line = 123;
  const Addr addr = line * f.cfg.l1d.line_bytes;
  f.mem.directory().warm(0, line, false, /*exclusive=*/false);
  f.mem.directory().warm(1, line, false, /*exclusive=*/false);
  // Seeded fault: both sharers silently upgrade to M (lost invalidation).
  f.mem.l1d(0).find(addr)->state = CoherenceState::kModified;
  f.mem.l1d(1).find(addr)->state = CoherenceState::kModified;
  InvariantAuditor aud(f.cfg);
  aud.check_coherence(0, f.mem);
  expect_only(aud, AuditClass::kCoherence);
}

TEST(AuditCoherence, InclusionHoleFires) {
  MemFixture f(4);
  const Addr line = 321;
  const Addr addr = line * f.cfg.l1d.line_bytes;
  f.mem.directory().warm(2, line, false, /*exclusive=*/true);
  // Seeded fault: the home L2 bank drops the line while an L1 copy lives.
  const CoreId home = f.mem.directory().home_of(line);
  f.mem.directory().l2_bank(home).invalidate(addr);
  InvariantAuditor aud(f.cfg);
  aud.check_coherence(0, f.mem);
  expect_only(aud, AuditClass::kCoherence);
}

TEST(AuditCoherence, StaleDirectoryOwnerFires) {
  MemFixture f(4);
  const Addr line = 77;
  const Addr addr = line * f.cfg.l1d.line_bytes;
  f.mem.directory().warm(1, line, false, /*exclusive=*/true);
  // Seeded fault: the owner's L1 copy vanishes without notifying the
  // directory (owner evictions must never be silent).
  f.mem.l1d(1).invalidate(addr);
  InvariantAuditor aud(f.cfg);
  aud.check_coherence(0, f.mem);
  expect_only(aud, AuditClass::kCoherence);
}

// --- pipeline sanity (fault injection) --------------------------------------

TEST(AuditPipeline, CorruptedFetchCounterFires) {
  SimConfig cfg = audited_cfg(2, AuditLevel::kCheap, /*ptb=*/false);
  CmpSimulator sim(cfg, tiny_profile());
  InvariantAuditor aud(cfg);
  aud.check_core(0, 0, sim.core(0));
  ASSERT_TRUE(aud.clean()) << aud.report().summary();
  sim.core(0).fetched += 7;  // seeded fault: fetches without ROB entries
  aud.check_core(1, 0, sim.core(0));
  expect_only(aud, AuditClass::kPipeline);
}

TEST(AuditPipeline, BackwardCommitCounterFires) {
  SimConfig cfg = audited_cfg(2, AuditLevel::kCheap, /*ptb=*/false);
  CmpSimulator sim(cfg, tiny_profile());
  InvariantAuditor aud(cfg);
  sim.core(0).committed = 100;
  sim.core(0).fetched = 100;
  aud.check_core(0, 0, sim.core(0));
  // head_seq (still 0) != committed fires immediately; the regression we
  // also want is the monotonicity check on the next sample.
  sim.core(0).committed = 50;
  sim.core(0).fetched = 50;
  aud.check_core(1, 0, sim.core(0));
  expect_only(aud, AuditClass::kPipeline);
}

TEST(AuditPipeline, TickDuringDvfsStallFires) {
  SimConfig cfg = audited_cfg(1, AuditLevel::kCheap, /*ptb=*/false);
  cfg.technique = TechniqueKind::kDvfs;
  CmpSimulator sim(cfg, tiny_profile());
  Core& core = sim.core(0);
  PowerEnforcer enf(cfg, TechniqueKind::kDvfs);
  InvariantAuditor aud(cfg);
  // Drive the enforcer hard over budget until a mode transition opens a
  // stall window (the auditor snapshots stalled(now + 1) each cycle).
  bool injected = false;
  for (Cycle now = 0; now < 50'000 && !injected; ++now) {
    enf.tick(now, /*est_power=*/10.0, /*budget=*/0.5, /*enforce=*/true,
             0.0, core);
    aud.check_enforcer(now, 0, enf, core);
    ASSERT_TRUE(aud.clean()) << aud.report().summary();
    if (enf.stalled(now + 1)) {
      ++core.ticks;  // seeded fault: the core runs through the stall
      aud.check_enforcer(now + 1, 0, enf, core);
      injected = true;
    }
  }
  ASSERT_TRUE(injected) << "enforcer never opened a stall window";
  expect_only(aud, AuditClass::kPipeline);
}

// --- accounting (fault injection) -------------------------------------------

TEST(AuditAccounting, ConsistentAccountingIsClean) {
  SimConfig cfg = audited_cfg(2, AuditLevel::kCheap);
  InvariantAuditor aud(cfg);
  EnergyAccounting acct(10.0);
  for (Cycle now = 0; now < 100; ++now) {
    const double p = 8.0 + static_cast<double>(now % 5);  // crosses budget
    acct.record_cycle(p);
    aud.check_accounting(now, acct, p);
  }
  EXPECT_TRUE(aud.clean()) << aud.report().summary();
}

TEST(AuditAccounting, EnergyDeltaMismatchFires) {
  SimConfig cfg = audited_cfg(2, AuditLevel::kCheap);
  InvariantAuditor aud(cfg);
  EnergyAccounting acct(10.0);
  acct.record_cycle(5.0);
  aud.check_accounting(0, acct, 5.0);
  ASSERT_TRUE(aud.clean());
  acct.record_cycle(5.0);
  // Seeded fault: the reported per-cycle power disagrees with the
  // accumulator delta (double charging / dropped sample).
  aud.check_accounting(1, acct, 7.0);
  expect_only(aud, AuditClass::kAccounting);
}

TEST(AuditAccounting, AopbDeltaMismatchFires) {
  SimConfig cfg = audited_cfg(2, AuditLevel::kCheap);
  InvariantAuditor aud(cfg);
  EnergyAccounting over(1.0);  // budget 1, power 5 => AoPB grows by 4
  over.record_cycle(5.0);
  aud.check_accounting(0, over, 5.0);
  ASSERT_TRUE(aud.clean());
  EnergyAccounting fresh(1.0);  // swap in an accumulator that "lost" AoPB
  fresh.record_cycle(5.0);
  aud.check_accounting(1, fresh, 5.0);
  // energy delta is 0 vs power 5 AND aopb mismatches; both are accounting.
  expect_only(aud, AuditClass::kAccounting);
}

// --- end-to-end: audited runs are clean and bit-identical -------------------

TEST(AuditEndToEnd, FullAuditSixteenCoreSuiteRunIsClean) {
  const WorkloadProfile& wl = benchmark_suite().front();
  SimConfig cfg = audited_cfg(16, AuditLevel::kFull);
  CmpSimulator sim(cfg, wl);
  const RunResult r = sim.run();  // aborts via PTB_ASSERTF if dirty
  ASSERT_NE(sim.auditor(), nullptr);
  EXPECT_TRUE(sim.auditor()->clean()) << sim.auditor()->report().summary();
  EXPECT_GT(r.audit_checks, 0u);
  EXPECT_GT(r.total_committed, 0u);
}

TEST(AuditEndToEnd, FullAuditCoversClusteredBalancer) {
  SimConfig cfg = audited_cfg(16, AuditLevel::kFull);
  cfg.ptb.cluster_size = 8;
  CmpSimulator sim(cfg, tiny_profile());
  const RunResult r = sim.run();
  ASSERT_NE(sim.auditor(), nullptr);
  EXPECT_TRUE(sim.auditor()->clean()) << sim.auditor()->report().summary();
  EXPECT_GT(r.audit_checks, 0u);
}

TEST(AuditEndToEnd, AuditLevelNeverChangesResults) {
  const WorkloadProfile p = tiny_profile();
  SimConfig off = audited_cfg(4, AuditLevel::kOff);
  SimConfig full = audited_cfg(4, AuditLevel::kFull);
  const RunResult a = CmpSimulator(off, p).run();
  const RunResult b = CmpSimulator(full, p).run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_DOUBLE_EQ(a.aopb, b.aopb);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.audit_checks, 0u);
  EXPECT_GT(b.audit_checks, 0u);
  EXPECT_EQ(a.machine_fingerprint, b.machine_fingerprint);
}

TEST(AuditEndToEnd, OffLevelConstructsNoAuditor) {
  SimConfig cfg = audited_cfg(2, AuditLevel::kOff);
  CmpSimulator sim(cfg, tiny_profile());
  EXPECT_EQ(sim.auditor(), nullptr);
}

TEST(AuditEndToEnd, DefaultAuditLevelFlowsThroughMakeSimConfig) {
  set_default_audit_level(AuditLevel::kCheap);
  const SimConfig cfg = make_sim_config(4, base_technique());
  set_default_audit_level(AuditLevel::kOff);  // restore for other tests
  EXPECT_EQ(cfg.audit_level, AuditLevel::kCheap);
  EXPECT_EQ(make_sim_config(4, base_technique()).audit_level,
            AuditLevel::kOff);
}

TEST(AuditEndToEnd, NormalizeRejectsMachineMismatch) {
  RunResult base, r;
  base.energy = 100.0;
  base.aopb = 10.0;
  base.cycles = 1000;
  r = base;
  base.machine_fingerprint = 0x1111;
  r.machine_fingerprint = 0x2222;
  EXPECT_DEATH(normalize(base, r), "across machines");
  // Ablations opt into cross-machine comparison explicitly.
  const Normalized n = normalize(base, r, CrossMachine::kAllow);
  EXPECT_DOUBLE_EQ(n.energy_pct, 0.0);
  r.machine_fingerprint = base.machine_fingerprint;
  r.num_cores = base.num_cores + 1;
  EXPECT_DEATH(normalize(base, r), "across workloads");
  // kAllow relaxes only the machine check, never the workload check.
  EXPECT_DEATH(normalize(base, r, CrossMachine::kAllow), "across workloads");
}

}  // namespace
}  // namespace ptb

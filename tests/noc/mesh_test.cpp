#include "noc/mesh.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

NocConfig noc() { return NocConfig{}; }

TEST(Mesh, HopsManhattan) {
  Mesh m(noc(), 4, 4);
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 3), 3u);   // same row
  EXPECT_EQ(m.hops(0, 12), 3u);  // same column
  EXPECT_EQ(m.hops(0, 15), 6u);  // opposite corner
  EXPECT_EQ(m.hops(5, 10), 2u);
  EXPECT_EQ(m.hops(10, 5), 2u);  // symmetric
}

TEST(Mesh, LocalDeliveryOneCycle) {
  Mesh m(noc(), 2, 2);
  EXPECT_EQ(m.route(1, 1, 8, 100), 101u);
}

TEST(Mesh, UnloadedLatencyMatchesRoute) {
  Mesh m(noc(), 4, 4);
  const Cycle arrive = m.route(0, 15, 8, 0);
  EXPECT_EQ(arrive, m.unloaded_latency(6, 8));
}

TEST(Mesh, WormholeLatencyStructure) {
  Mesh m(noc(), 4, 4);
  // 8B ctrl message = 2 flits -> ser 2; 6 hops * 4 + 2 + 1 = 27.
  EXPECT_EQ(m.unloaded_latency(6, 8), 27u);
  // 72B data message = 18 flits; 6*4 + 18 + 1 = 43 (paid once, not per hop).
  EXPECT_EQ(m.unloaded_latency(6, 72), 43u);
}

TEST(Mesh, ContentionQueuesOnSharedLink) {
  Mesh m(noc(), 4, 1);
  // Two max-size messages over the same directed link at the same time:
  // the second must depart after the first's serialization.
  const Cycle a = m.route(0, 3, 72, 0);
  const Cycle b = m.route(0, 3, 72, 0);
  EXPECT_GT(b, a);
  EXPECT_GE(b - a, 18u);  // at least one serialization time apart
}

TEST(Mesh, DisjointPathsDoNotContend) {
  Mesh m(noc(), 4, 4);
  const Cycle a = m.route(0, 1, 72, 0);
  const Cycle b = m.route(14, 15, 72, 0);  // disjoint links
  EXPECT_EQ(a, b + 0);  // same unloaded latency, no interference
}

TEST(Mesh, OppositeDirectionsDoNotContend) {
  Mesh m(noc(), 2, 1);
  const Cycle a = m.route(0, 1, 72, 0);
  const Cycle b = m.route(1, 0, 72, 0);
  EXPECT_EQ(a, b);  // +x and -x are separate directed links
}

TEST(Mesh, StatsAccumulate) {
  Mesh m(noc(), 4, 4);
  m.route(0, 15, 8, 0);   // 6 hops * 2 flits
  m.route(0, 0, 8, 0);    // local: no flit-hops
  EXPECT_EQ(m.total_messages(), 2u);
  EXPECT_EQ(m.total_flit_hops(), 12u);
}

TEST(Mesh, DrainFlitHopsIsIncremental) {
  Mesh m(noc(), 4, 4);
  m.route(0, 3, 8, 0);
  EXPECT_EQ(m.drain_flit_hops(), 6u);
  EXPECT_EQ(m.drain_flit_hops(), 0u);
  m.route(0, 3, 8, 100);
  EXPECT_EQ(m.drain_flit_hops(), 6u);
}

TEST(Mesh, SingleNodeMesh) {
  Mesh m(noc(), 1, 1);
  EXPECT_EQ(m.route(0, 0, 72, 5), 6u);
}

// Parameterized sweep: latency grows monotonically with hop distance.
class MeshHopSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MeshHopSweep, LatencyMonotoneInDistance) {
  Mesh m(noc(), 4, 4);
  const std::uint32_t dst = GetParam();
  if (dst == 0) return;
  const Cycle far = m.unloaded_latency(m.hops(0, dst), 8);
  const Cycle near = m.unloaded_latency(m.hops(0, dst == 5 ? 1 : dst / 2), 8);
  EXPECT_GE(far, near - 0);
}

INSTANTIATE_TEST_SUITE_P(AllDestinations, MeshHopSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 10u, 15u));

}  // namespace
}  // namespace ptb

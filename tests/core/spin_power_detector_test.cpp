// Power-pattern spin detection (Figure 6 of the paper).
#include "core/spin_power_detector.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(SpinPowerDetector, RequiresConfirmationWindow) {
  SpinPowerDetector d(50.0, 8);
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(d.tick(10.0));
  EXPECT_TRUE(d.tick(10.0));  // 8th consecutive low-power cycle
}

TEST(SpinPowerDetector, BusyPowerNeverTriggers) {
  SpinPowerDetector d(50.0, 8);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.tick(120.0));
  EXPECT_EQ(d.detections(), 0u);
}

TEST(SpinPowerDetector, BurstResetsCountdown) {
  SpinPowerDetector d(50.0, 8);
  for (int i = 0; i < 6; ++i) d.tick(10.0);
  d.tick(200.0);  // burst resets
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(d.tick(10.0));
  EXPECT_TRUE(d.tick(10.0));
}

TEST(SpinPowerDetector, Figure6Pattern) {
  // The paper's Figure 6: an initial computation peak, then power drops
  // and stabilizes under the threshold -> spinning detected; on wakeup the
  // verdict clears immediately.
  SpinPowerDetector d(45.0, 32);
  for (int i = 0; i < 40; ++i) d.tick(100.0 + (i % 7));  // busy
  EXPECT_FALSE(d.spinning());
  for (int i = 0; i < 100; ++i) d.tick(20.0 + (i % 3));  // spin plateau
  EXPECT_TRUE(d.spinning());
  EXPECT_EQ(d.detections(), 1u);
  d.tick(130.0);  // wakes up
  EXPECT_FALSE(d.spinning());
  EXPECT_EQ(d.exits(), 1u);
}

TEST(SpinPowerDetector, RepeatedEpisodesCounted) {
  SpinPowerDetector d(50.0, 4);
  for (int episode = 0; episode < 3; ++episode) {
    for (int i = 0; i < 10; ++i) d.tick(10.0);
    d.tick(100.0);
  }
  EXPECT_EQ(d.detections(), 3u);
  EXPECT_EQ(d.exits(), 3u);
}

}  // namespace
}  // namespace ptb

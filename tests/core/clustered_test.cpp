#include "core/clustered.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ptb {
namespace {

PtbConfig pcfg() {
  PtbConfig c;
  c.enabled = true;
  c.cluster_size = 4;
  return c;
}

TEST(ClusteredBalancer, PartitionsEvenly) {
  ClusteredBalancer b(pcfg(), 16, 4, 100.0);
  EXPECT_EQ(b.num_clusters(), 4u);
  EXPECT_EQ(b.cluster_size(), 4u);
}

TEST(ClusteredBalancer, PartitionsWithRemainder) {
  ClusteredBalancer b(pcfg(), 10, 4, 100.0);
  EXPECT_EQ(b.num_clusters(), 3u);  // 4 + 4 + 2
}

TEST(ClusteredBalancer, UsesSmallClusterLatency) {
  ClusteredBalancer b(pcfg(), 32, 4, 100.0);
  EXPECT_EQ(b.wire_latency(), 3u);  // 4-core cluster latency, not 32-core
  ClusteredBalancer b16(pcfg(), 32, 16, 100.0);
  EXPECT_EQ(b16.wire_latency(), 10u);
}

TEST(ClusteredBalancer, BalancesWithinClusterOnly) {
  // 8 cores, clusters of 4. Cluster 0 has a donor and a needy core;
  // cluster 1 is all needy with no donor -> no tokens cross over.
  ClusteredBalancer b(pcfg(), 8, 4, 100.0);
  std::vector<double> power{10.0, 150.0, 99.0, 99.0,    // cluster 0: 358
                            150.0, 150.0, 150.0, 150.0};  // cluster 1: 600
  std::vector<double> eff;
  // Per-cluster budget share is 350: both clusters are over budget.
  // Grants pulse with the wire-latency period (the donor's budget stays
  // tightened while its tokens are in flight), so track the maximum.
  double max_eff1 = 0.0, max_eff_c1 = 0.0;
  for (Cycle t = 0; t < 8; ++t) {
    b.cycle(t, power, /*cluster_budget_total=*/700.0, PtbPolicy::kToAll,
            eff);
    max_eff1 = std::max(max_eff1, eff[1]);
    for (int i = 4; i < 8; ++i) max_eff_c1 = std::max(max_eff_c1, eff[i]);
  }
  EXPECT_GT(max_eff1, 100.0);      // received from core 0's spare
  EXPECT_LE(max_eff_c1, 100.0);    // nothing ever arrived from cluster 0
}

TEST(ClusteredBalancer, PerClusterOverBudgetGate) {
  // Cluster 0 is under its share of the budget -> its donor must not
  // donate; cluster 1 is over -> its donor does.
  ClusteredBalancer b(pcfg(), 8, 4, 100.0);
  std::vector<double> power{10.0, 20.0, 20.0, 20.0,      // total 70 < 400
                            10.0, 150.0, 150.0, 150.0};  // total 460 > 400
  std::vector<double> eff;
  double min_eff0 = 1e9, max_eff5 = 0.0;
  for (Cycle t = 0; t < 8; ++t) {
    b.cycle(t, power, 800.0, PtbPolicy::kToAll, eff);
    min_eff0 = std::min(min_eff0, eff[0]);
    max_eff5 = std::max(max_eff5, eff[5]);
  }
  EXPECT_DOUBLE_EQ(min_eff0, 100.0);  // cluster under budget: no donation
  EXPECT_GT(max_eff5, 100.0);         // cluster 1 balanced internally
}

// Section III.E.2's scalability claim: clustering per 16 cores pins the
// arbitration wire latency at the 16-core figure (10 cycles) no matter how
// large the CMP grows. A flat balancer would extrapolate past 10 (+4 per
// doubling), so these pins catch any regression that routes the full core
// count into latency_for_cores.
TEST(ClusteredBalancer, LatencyCappedAtSixteenCoreFigure) {
  for (std::uint32_t cores : {17u, 32u, 64u}) {
    ClusteredBalancer b(pcfg(), cores, 16, 100.0);
    EXPECT_EQ(b.wire_latency(), 10u) << cores << " cores";
    for (std::uint32_t k = 0; k < b.num_clusters(); ++k) {
      // Full 16-core clusters sit exactly at 10; a remainder cluster
      // (e.g. the single 17th core) spans fewer wires and may be faster,
      // but nothing is ever slower than the 16-core figure.
      EXPECT_LE(b.cluster(k).wire_latency(), 10u)
          << cores << " cores, cluster " << k;
    }
    EXPECT_EQ(b.cluster(0).wire_latency(), 10u) << cores << " cores";
  }
  // Cluster counts: ceil(cores / 16).
  EXPECT_EQ(ClusteredBalancer(pcfg(), 17, 16, 100.0).num_clusters(), 2u);
  EXPECT_EQ(ClusteredBalancer(pcfg(), 32, 16, 100.0).num_clusters(), 2u);
  EXPECT_EQ(ClusteredBalancer(pcfg(), 64, 16, 100.0).num_clusters(), 4u);
}

TEST(ClusteredBalancer, SetLocalBudgetForwardsToEveryCluster) {
  ClusteredBalancer b(pcfg(), 8, 4, 100.0);
  b.set_local_budget(240.0);
  for (std::uint32_t k = 0; k < b.num_clusters(); ++k) {
    EXPECT_DOUBLE_EQ(b.cluster(k).local_budget(), 240.0) << "cluster " << k;
    EXPECT_DOUBLE_EQ(b.cluster(k).token_quantum(), 16.0) << "cluster " << k;
  }
  // A quiet cycle hands every core the new budget.
  std::vector<double> power(8, 240.0);
  std::vector<double> eff;
  b.cycle(0, power, 2000.0, PtbPolicy::kToAll, eff);
  for (double e : eff) EXPECT_DOUBLE_EQ(e, 240.0);
}

TEST(ClusteredBalancer, TokenStatsAggregate) {
  ClusteredBalancer b(pcfg(), 8, 4, 100.0);
  std::vector<double> power{10.0, 150.0, 99.0, 99.0,
                            10.0, 150.0, 99.0, 99.0};
  std::vector<double> eff;
  for (Cycle t = 0; t < 16; ++t)
    b.cycle(t, power, 400.0, PtbPolicy::kToAll, eff);
  EXPECT_GT(b.tokens_donated(), 0.0);
  EXPECT_GT(b.tokens_granted(), 0.0);
  EXPECT_LE(b.tokens_granted(), b.tokens_donated());
}

}  // namespace
}  // namespace ptb

// The 2-level hybrid controller and the per-core enforcer.
#include "core/two_level.hpp"

#include <gtest/gtest.h>

#include "core/enforcer.hpp"
#include "cpu/core.hpp"
#include "mem/memory_system.hpp"
#include "noc/mesh.hpp"
#include "power/power_model.hpp"
#include "sync/sync_state.hpp"
#include "workloads/program.hpp"

namespace ptb {
namespace {

/// Endless stream of independent ALU ops — just a throttling target.
class EndlessProgram final : public ThreadProgram {
 public:
  FetchStatus next(MicroOp& out) override {
    out = MicroOp{};
    out.pc = 0x1000 + (n_++ % 256) * 4;
    out.cls = OpClass::kIntAlu;
    return FetchStatus::kOp;
  }
  void on_value(const MicroOp&, std::uint64_t) override {}
  bool finished() const override { return false; }

 private:
  std::uint64_t n_ = 0;
};

class TwoLevelTest : public ::testing::Test {
 protected:
  TwoLevelTest()
      : cfg_(make_cfg()), mesh_(cfg_.noc, 1, 1), mem_(cfg_, mesh_),
        sync_(1, 1, 1), energy_(cfg_.power, 1),
        core_(0, cfg_, mem_, sync_, prog_, energy_) {}

  static SimConfig make_cfg() {
    SimConfig c;
    c.num_cores = 1;
    return c;
  }

  SimConfig cfg_;
  Mesh mesh_;
  MemorySystem mem_;
  SyncState sync_;
  BaseEnergyModel energy_;
  EndlessProgram prog_;
  Core core_;
};

TEST_F(TwoLevelTest, MicroarchLevelsEscalateWithOvershoot) {
  TwoLevelController ctrl(cfg_, true, true, false);
  ctrl.tick(0, 105.0, 100.0, true, 0.0, core_);
  EXPECT_EQ(ctrl.microarch_level(), 1u);
  EXPECT_EQ(core_.fetch_limit(), cfg_.core.fetch_width / 2);
  ctrl.tick(1, 120.0, 100.0, true, 0.0, core_);
  EXPECT_EQ(ctrl.microarch_level(), 2u);
  EXPECT_EQ(core_.fetch_limit(), 1u);
  ctrl.tick(2, 200.0, 100.0, true, 0.0, core_);
  EXPECT_EQ(ctrl.microarch_level(), 3u);
  EXPECT_EQ(core_.fetch_limit(), 0u);  // fetch gated
}

TEST_F(TwoLevelTest, ReleasesWhenUnderBudget) {
  TwoLevelController ctrl(cfg_, true, true, false);
  ctrl.tick(0, 200.0, 100.0, true, 0.0, core_);
  ASSERT_EQ(core_.fetch_limit(), 0u);
  ctrl.tick(1, 50.0, 100.0, true, 0.0, core_);
  EXPECT_EQ(ctrl.microarch_level(), 0u);
  EXPECT_EQ(core_.fetch_limit(), cfg_.core.fetch_width);
}

TEST_F(TwoLevelTest, NoMicroarchWhenNotEnforcing) {
  TwoLevelController ctrl(cfg_, true, true, false);
  ctrl.tick(0, 500.0, 100.0, /*enforce=*/false, 0.0, core_);
  EXPECT_EQ(ctrl.microarch_level(), 0u);
  EXPECT_EQ(core_.fetch_limit(), cfg_.core.fetch_width);
}

TEST_F(TwoLevelTest, RelaxThresholdDelaysTrigger) {
  TwoLevelController ctrl(cfg_, true, true, false);
  // 15% over budget: triggers at relax 0, not at relax 0.2.
  ctrl.tick(0, 115.0, 100.0, true, 0.0, core_);
  EXPECT_GT(ctrl.microarch_level(), 0u);
  ctrl.tick(1, 115.0, 100.0, true, 0.2, core_);
  EXPECT_EQ(ctrl.microarch_level(), 0u);
}

TEST_F(TwoLevelTest, DvfsOnlyVariantNeverTouchesFetch) {
  TwoLevelController ctrl(cfg_, true, /*use_microarch=*/false, false);
  for (Cycle t = 0; t < 4096; ++t) ctrl.tick(t, 300.0, 100.0, true, 0.0,
                                             core_);
  EXPECT_EQ(core_.fetch_limit(), cfg_.core.fetch_width);
  EXPECT_GT(ctrl.dvfs().mode(), 0u);  // but the DVFS level moved
}

TEST_F(TwoLevelTest, StalledDuringDvfsTransition) {
  TwoLevelController ctrl(cfg_, true, true, false);
  Cycle t = 0;
  for (std::uint32_t i = 0; i < cfg_.dvfs.window_cycles; ++i)
    ctrl.tick(t++, 300.0, 100.0, true, 0.0, core_);
  EXPECT_TRUE(ctrl.stalled(t));
}

TEST(PowerEnforcer, KindNoneIsInert) {
  SimConfig cfg;
  cfg.num_cores = 1;
  Mesh mesh(cfg.noc, 1, 1);
  MemorySystem mem(cfg, mesh);
  SyncState sync(1, 1, 1);
  BaseEnergyModel energy(cfg.power, 1);
  EndlessProgram prog;
  Core core(0, cfg, mem, sync, prog, energy);
  PowerEnforcer enf(cfg, TechniqueKind::kNone);
  for (Cycle t = 0; t < 1024; ++t) enf.tick(t, 1000.0, 10.0, true, 0.0, core);
  EXPECT_DOUBLE_EQ(enf.vdd_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(enf.freq_ratio(), 1.0);
  EXPECT_FALSE(enf.stalled(1024));
  EXPECT_EQ(core.fetch_limit(), cfg.core.fetch_width);
}

TEST(PowerEnforcer, DfsKeepsVoltage) {
  SimConfig cfg;
  cfg.num_cores = 1;
  Mesh mesh(cfg.noc, 1, 1);
  MemorySystem mem(cfg, mesh);
  SyncState sync(1, 1, 1);
  BaseEnergyModel energy(cfg.power, 1);
  EndlessProgram prog;
  Core core(0, cfg, mem, sync, prog, energy);
  PowerEnforcer enf(cfg, TechniqueKind::kDfs);
  Cycle t = 0;
  for (int w = 0; w < 50; ++w)
    for (std::uint32_t i = 0; i < cfg.dvfs.window_cycles; ++i)
      enf.tick(t++, 1000.0, 10.0, true, 0.0, core);
  EXPECT_DOUBLE_EQ(enf.vdd_ratio(), 1.0);
  EXPECT_LT(enf.freq_ratio(), 1.0);
}

}  // namespace
}  // namespace ptb

// The PTB load-balancer: donation, latency, quantization, policies, and the
// paper's Figure 7 barrier walkthrough.
#include "core/balancer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace ptb {
namespace {

PtbConfig ptb_cfg(std::uint32_t latency = 0) {
  PtbConfig c;
  c.enabled = true;
  c.wire_latency_override = latency;
  return c;
}

TEST(Balancer, PaperWireLatencies) {
  EXPECT_EQ(PtbLoadBalancer::latency_for_cores(2), 3u);
  EXPECT_EQ(PtbLoadBalancer::latency_for_cores(4), 3u);
  EXPECT_EQ(PtbLoadBalancer::latency_for_cores(8), 5u);
  EXPECT_EQ(PtbLoadBalancer::latency_for_cores(16), 10u);
  EXPECT_EQ(PtbLoadBalancer::latency_for_cores(32), 14u);  // extrapolated
}

TEST(Balancer, QuantumFromWireWidth) {
  PtbLoadBalancer b(ptb_cfg(), 4, 150.0);
  // 4-bit wires -> 15 counts; quantum = budget / 15.
  EXPECT_DOUBLE_EQ(b.token_quantum(), 10.0);
}

TEST(Balancer, NoActionWhileGloballyUnderBudget) {
  PtbLoadBalancer b(ptb_cfg(1), 2, 100.0);
  std::vector<double> power{20.0, 180.0};
  std::vector<double> eff;
  for (Cycle t = 0; t < 10; ++t) {
    b.cycle(t, power, /*global_over=*/false, PtbPolicy::kToAll, eff);
    EXPECT_DOUBLE_EQ(eff[0], 100.0);
    EXPECT_DOUBLE_EQ(eff[1], 100.0);
  }
  EXPECT_DOUBLE_EQ(b.tokens_donated, 0.0);
}

TEST(Balancer, DonationArrivesAfterWireLatency) {
  const std::uint32_t L = 4;
  PtbLoadBalancer b(ptb_cfg(L), 2, 100.0);
  std::vector<double> power{10.0, 150.0};  // core0 spare, core1 needy
  std::vector<double> eff;
  // Cycle 0: core0 donates; its own budget tightens immediately.
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  EXPECT_LT(eff[0], 100.0);
  EXPECT_DOUBLE_EQ(eff[1], 100.0);  // nothing arrived yet
  // Until the latency elapses, core1 sees no grant.
  for (Cycle t = 1; t < L; ++t) {
    b.cycle(t, power, true, PtbPolicy::kToAll, eff);
    EXPECT_DOUBLE_EQ(eff[1], 100.0);
  }
  // At t = L the tokens land.
  b.cycle(L, power, true, PtbPolicy::kToAll, eff);
  EXPECT_GT(eff[1], 100.0);
}

TEST(Balancer, DonorBudgetRecoversAfterArrival) {
  const std::uint32_t L = 2;
  PtbLoadBalancer b(ptb_cfg(L), 2, 100.0);
  std::vector<double> donate_phase{10.0, 150.0};
  std::vector<double> quiet{99.0, 99.0};  // nobody spare, nobody needy
  std::vector<double> eff;
  b.cycle(0, donate_phase, true, PtbPolicy::kToAll, eff);
  const double tightened = eff[0];
  EXPECT_LT(tightened, 100.0);
  b.cycle(1, quiet, true, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(eff[0], tightened);  // still in flight
  b.cycle(2, quiet, true, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(eff[0], 100.0);  // recovered
}

TEST(Balancer, DonationCappedByWireWidth) {
  PtbLoadBalancer b(ptb_cfg(1), 2, 150.0);  // quantum 10, max 15 counts
  std::vector<double> power{0.0, 1000.0};
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(b.tokens_donated, 150.0);  // 15 * 10, not the full spare
}

TEST(Balancer, QuantizationDropsSubQuantumSpare) {
  PtbLoadBalancer b(ptb_cfg(1), 2, 150.0);  // quantum 10
  std::vector<double> power{141.0, 200.0};  // spare 9 < quantum
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(b.tokens_donated, 0.0);
}

TEST(Balancer, TokensEvaporateWithoutNeedyCores) {
  PtbLoadBalancer b(ptb_cfg(1), 2, 100.0);
  std::vector<double> spare_phase{10.0, 10.0};
  std::vector<double> eff;
  b.cycle(0, spare_phase, true, PtbPolicy::kToAll, eff);
  EXPECT_GT(b.tokens_donated, 0.0);
  b.cycle(1, spare_phase, true, PtbPolicy::kToAll, eff);
  EXPECT_GT(b.tokens_evaporated, 0.0);  // nothing banked across cycles
  EXPECT_DOUBLE_EQ(b.tokens_granted, 0.0);
}

TEST(Balancer, ConservationDonatedEqualsGrantedPlusEvaporated) {
  PtbLoadBalancer b(ptb_cfg(3), 4, 100.0);
  Rng rng(5);
  std::vector<double> power(4), eff;
  for (Cycle t = 0; t < 2000; ++t) {
    for (auto& p : power) p = rng.next_double() * 200.0;
    b.cycle(t, power, true, PtbPolicy::kToAll, eff);
  }
  // Allow in-flight tokens (at most latency * max donation per cycle).
  const double in_flight_bound = 3 * 4 * 100.0;
  EXPECT_NEAR(b.tokens_donated, b.tokens_granted + b.tokens_evaporated,
              in_flight_bound);
  EXPECT_GE(b.tokens_donated + 1e-9, b.tokens_granted + b.tokens_evaporated);
}

TEST(Balancer, ToOneGivesAllToNeediest) {
  PtbLoadBalancer b(ptb_cfg(1), 3, 100.0);
  std::vector<double> power{10.0, 120.0, 180.0};
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToOne, eff);
  b.cycle(1, power, true, PtbPolicy::kToOne, eff);
  EXPECT_DOUBLE_EQ(eff[1], 100.0);   // not the neediest
  EXPECT_NEAR(eff[2], 180.0, 1e-9);  // whole pool, capped at its deficit
}

TEST(Balancer, ToAllSplitsEquallyCappedAtDeficit) {
  PtbLoadBalancer b(ptb_cfg(1), 3, 100.0);
  std::vector<double> power{10.0, 120.0, 180.0};
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  b.cycle(1, power, true, PtbPolicy::kToAll, eff);
  // Core 0 donated floor(90 / (100/15)) = 13 quanta = 86.67 tokens. Each
  // needy core gets an equal 43.33 share, capped at its own deficit;
  // core 1's unused 23.33 evaporates (nothing is banked).
  EXPECT_NEAR(eff[1], 120.0, 1e-9);  // capped at its deficit of 20
  EXPECT_NEAR(eff[2], 100.0 + (86.0 + 2.0 / 3.0) / 2.0, 1e-6);
  EXPECT_GT(b.tokens_evaporated, 20.0);
}

// Regression pin for the single-pass ToAll residual (the default, literal
// reading of Section III.D's "equally distribute the extra tokens"): when a
// core's deficit is smaller than its equal share, the unused remainder
// evaporates even though another core in the same cycle still has deficit.
// The exact evaporated amount is pinned so any change to the distribution
// arithmetic is caught.
TEST(Balancer, ToAllSinglePassResidualEvaporationPinned) {
  PtbLoadBalancer b(ptb_cfg(1), 3, 100.0);
  std::vector<double> power{10.0, 120.0, 180.0};
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  b.cycle(1, power, true, PtbPolicy::kToAll, eff);
  // Core 0 donates 13 quanta of 100/15 = 86.67 tokens; the equal share is
  // 43.33. Core 1 uses only its deficit of 20, and its residual share of
  // 43.33 - 20 = 23.33 evaporates despite core 2's remaining deficit.
  const double donated = 13.0 * (100.0 / 15.0);
  // Core 0 donates in both cycles; only the first batch has arrived.
  EXPECT_NEAR(b.tokens_donated, 2.0 * donated, 1e-9);
  EXPECT_NEAR(b.tokens_granted, 20.0 + donated / 2.0, 1e-9);
  EXPECT_NEAR(b.tokens_evaporated, donated / 2.0 - 20.0, 1e-9);
}

// With PtbConfig::toall_redistribute the same scenario re-splits that
// residual among the still-needy cores before anything evaporates.
TEST(Balancer, ToAllRedistributeForwardsResidualToStillNeedy) {
  PtbConfig cfg = ptb_cfg(1);
  cfg.toall_redistribute = true;
  PtbLoadBalancer b(cfg, 3, 100.0);
  std::vector<double> power{10.0, 120.0, 180.0};
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  b.cycle(1, power, true, PtbPolicy::kToAll, eff);
  // Pass 0: core 1 takes 20, core 2 takes 43.33. Pass 1: the 23.33
  // residual goes entirely to core 2 (deficit 36.67 still uncovered).
  const double donated = 13.0 * (100.0 / 15.0);
  EXPECT_NEAR(eff[1], 120.0, 1e-9);
  EXPECT_NEAR(eff[2], 100.0 + donated - 20.0, 1e-9);
  EXPECT_NEAR(b.tokens_granted, donated, 1e-9);
  EXPECT_NEAR(b.tokens_evaporated, 0.0, 1e-9);
}

// Redistribution never banks or over-grants: once every deficit is covered
// the remainder still evaporates within the cycle.
TEST(Balancer, ToAllRedistributeStillEvaporatesBeyondTotalDeficit) {
  PtbConfig cfg = ptb_cfg(1);
  cfg.toall_redistribute = true;
  PtbLoadBalancer b(cfg, 3, 100.0);
  std::vector<double> power{10.0, 101.0, 102.0};  // total deficit 3
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  b.cycle(1, power, true, PtbPolicy::kToAll, eff);
  const double donated = 13.0 * (100.0 / 15.0);
  EXPECT_NEAR(eff[1], 101.0, 1e-9);
  EXPECT_NEAR(eff[2], 102.0, 1e-9);
  EXPECT_NEAR(b.tokens_granted, 3.0, 1e-9);
  EXPECT_NEAR(b.tokens_evaporated, donated - 3.0, 1e-9);
}

TEST(Balancer, SetLocalBudgetRederivesQuantum) {
  PtbLoadBalancer b(ptb_cfg(2), 2, 150.0);
  EXPECT_DOUBLE_EQ(b.token_quantum(), 10.0);
  b.set_local_budget(300.0);
  EXPECT_DOUBLE_EQ(b.local_budget(), 300.0);
  EXPECT_DOUBLE_EQ(b.token_quantum(), 20.0);  // budget / 15 counts
  // Quiet cycle: every core now sees the new budget.
  std::vector<double> quiet{0.0, 0.0};
  std::vector<double> eff;
  b.cycle(0, quiet, false, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(eff[0], 300.0);
  EXPECT_DOUBLE_EQ(eff[1], 300.0);
  // Donations are quantized against the new quantum and capped at the new
  // wire maximum of 15 * 20 = 300 tokens.
  std::vector<double> donate{0.0, 1000.0};
  b.cycle(1, donate, true, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(b.tokens_donated, 300.0);
}

TEST(Balancer, SetLocalBudgetKeepsOutstandingDebits) {
  const std::uint32_t L = 2;
  PtbLoadBalancer b(ptb_cfg(L), 2, 150.0);
  std::vector<double> donate{0.0, 1000.0};
  std::vector<double> eff;
  b.cycle(0, donate, true, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(b.tokens_donated, 150.0);  // full wire cap
  // Budget is raised while the donation is still on the wires: the donor's
  // debit carries over against the new budget until the grant lands.
  b.set_local_budget(300.0);
  std::vector<double> quiet{0.0, 0.0};
  b.cycle(1, quiet, false, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(eff[0], 150.0);  // 300 - 150 outstanding
  b.cycle(2, quiet, false, PtbPolicy::kToAll, eff);
  EXPECT_DOUBLE_EQ(eff[0], 300.0);  // recovered on arrival
}

TEST(Balancer, ToAllEvaporatesBeyondTotalDeficit) {
  PtbLoadBalancer b(ptb_cfg(1), 3, 100.0);
  std::vector<double> power{10.0, 101.0, 102.0};  // tiny deficits
  std::vector<double> eff;
  b.cycle(0, power, true, PtbPolicy::kToAll, eff);
  b.cycle(1, power, true, PtbPolicy::kToAll, eff);
  EXPECT_NEAR(eff[1], 101.0, 1e-9);
  EXPECT_NEAR(eff[2], 102.0, 1e-9);
  EXPECT_GT(b.tokens_evaporated, 0.0);  // the rest is not banked
}

// Figure 7 of the paper: 4 cores, local budgets of 10 tokens, spinning
// costs 4 -> each spinner frees 6 tokens for the cores still computing.
TEST(Balancer, Figure7BarrierWalkthrough) {
  PtbConfig cfg = ptb_cfg(1);
  cfg.token_wire_bits = 4;
  PtbLoadBalancer b(cfg, 4, 10.0);
  // quantum = 10/15 = 0.6667; a spare of 6 = 9 quanta = 6.0 exactly.
  std::vector<double> eff;
  // (a) core 1 spins (power 4), the rest compute at 12 (over budget).
  std::vector<double> a_phase{12.0, 4.0, 12.0, 12.0};
  b.cycle(0, a_phase, true, PtbPolicy::kToAll, eff);
  b.cycle(1, a_phase, true, PtbPolicy::kToAll, eff);
  // Core 1 donated 6; cores 0, 2, 3 each get 2 -> budgets 12.
  EXPECT_NEAR(eff[0], 12.0, 0.01);
  EXPECT_NEAR(eff[2], 12.0, 0.01);
  EXPECT_NEAR(eff[3], 12.0, 0.01);
  // (b) cores 1 and 2 spin -> cores 0 and 3 get 6+6 split -> budgets 16.
  std::vector<double> b_phase{16.0, 4.0, 4.0, 16.0};
  b.cycle(2, b_phase, true, PtbPolicy::kToAll, eff);
  b.cycle(3, b_phase, true, PtbPolicy::kToAll, eff);
  EXPECT_NEAR(eff[0], 16.0, 0.01);
  EXPECT_NEAR(eff[3], 16.0, 0.01);
  // (c) three spinners -> the last core can use 10 + 18 = 28.
  std::vector<double> c_phase{28.0, 4.0, 4.0, 4.0};
  b.cycle(4, c_phase, true, PtbPolicy::kToAll, eff);
  b.cycle(5, c_phase, true, PtbPolicy::kToAll, eff);
  EXPECT_NEAR(eff[0], 28.0, 0.01);
}

}  // namespace
}  // namespace ptb

#include "core/budget.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(BudgetManager, FiftyPercentOfPeak) {
  SimConfig cfg;
  cfg.num_cores = 16;
  cfg.budget_fraction = 0.5;
  BudgetManager b(cfg);
  EXPECT_DOUBLE_EQ(b.peak_power(), b.peak_core_power() * 16);
  EXPECT_DOUBLE_EQ(b.global_budget(), b.peak_power() * 0.5);
}

TEST(BudgetManager, LocalIsEqualSplit) {
  SimConfig cfg;
  cfg.num_cores = 8;
  BudgetManager b(cfg);
  EXPECT_DOUBLE_EQ(b.local_budget() * 8, b.global_budget());
}

TEST(BudgetManager, ScalesWithCoreCount) {
  SimConfig a, b;
  a.num_cores = 4;
  b.num_cores = 16;
  BudgetManager ba(a), bb(b);
  EXPECT_DOUBLE_EQ(bb.global_budget(), 4.0 * ba.global_budget());
  // Per-core share is identical regardless of core count.
  EXPECT_DOUBLE_EQ(ba.local_budget(), bb.local_budget());
}

TEST(BudgetManager, FractionKnob) {
  SimConfig strict, loose;
  strict.budget_fraction = 0.3;
  loose.budget_fraction = 0.9;
  EXPECT_LT(BudgetManager(strict).global_budget(),
            BudgetManager(loose).global_budget());
}

}  // namespace
}  // namespace ptb

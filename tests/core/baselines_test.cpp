#include "core/baselines.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(ThriftyBarrier, NoSleepWithoutHistory) {
  ThriftyBarrierController tb(2);
  // First barrier ever: predicted wait is 0, must not sleep.
  for (Cycle t = 0; t < 1000; ++t) {
    EXPECT_FALSE(tb.tick(0, t, ExecState::kBarrier, 0, true));
  }
  EXPECT_EQ(tb.sleeps, 0u);
}

TEST(ThriftyBarrier, LearnsLongWaitsAndSleeps) {
  ThriftyBarrierController tb(2, /*wake_penalty=*/100);
  Cycle t = 0;
  // Episode 1: a 5000-cycle wait teaches the predictor.
  for (int i = 0; i < 5000; ++i) tb.tick(0, t++, ExecState::kBarrier, 0, true);
  tb.tick(0, t++, ExecState::kBusy, 1, true);
  // Episode 2: the predicted wait (2500 EMA) >> 2*penalty -> sleeps.
  EXPECT_TRUE(tb.tick(0, t++, ExecState::kBarrier, 1, true));
  EXPECT_EQ(tb.sleeps, 1u);
}

TEST(ThriftyBarrier, WakesAfterReleasePlusPenalty) {
  const Cycle penalty = 100;
  ThriftyBarrierController tb(2, penalty);
  Cycle t = 0;
  for (int i = 0; i < 5000; ++i) tb.tick(0, t++, ExecState::kBarrier, 0, true);
  tb.tick(0, t++, ExecState::kBusy, 1, true);
  ASSERT_TRUE(tb.tick(0, t, ExecState::kBarrier, 1, true));
  // Barrier releases (episode 2) at cycle `t0`.
  const Cycle t0 = t + 50;
  for (Cycle c = t + 1; c < t0; ++c)
    EXPECT_TRUE(tb.tick(0, c, ExecState::kBarrier, 1, true));
  // After the release, the core stays asleep for the wake penalty.
  Cycle woke_at = 0;
  for (Cycle c = t0; c < t0 + 2 * penalty; ++c) {
    if (!tb.tick(0, c, ExecState::kBarrier, 2, true)) {
      woke_at = c;
      break;
    }
  }
  ASSERT_GT(woke_at, t0);
  EXPECT_GE(woke_at - t0, penalty - 1);
  EXPECT_LE(woke_at - t0, penalty + 1);
}

TEST(ThriftyBarrier, ShortWaitsNeverSleep) {
  ThriftyBarrierController tb(2, /*wake_penalty=*/100);
  Cycle t = 0;
  std::uint64_t episode = 0;
  for (int ep = 0; ep < 10; ++ep) {
    // 50-cycle waits: well under 2 * penalty.
    for (int i = 0; i < 50; ++i)
      EXPECT_FALSE(tb.tick(0, t++, ExecState::kBarrier, episode, true));
    ++episode;
    for (int i = 0; i < 500; ++i) tb.tick(0, t++, ExecState::kBusy, episode, true);
  }
  EXPECT_EQ(tb.sleeps, 0u);
}

TEST(MeetingPoints, AllStartAtFullSpeed) {
  MeetingPointsController mp(4);
  for (CoreId i = 0; i < 4; ++i) EXPECT_EQ(mp.mode_for(i), 0u);
}

TEST(MeetingPoints, SlowsTheEarlyArriverNotTheCritical) {
  MeetingPointsController mp(2);
  Cycle t = 0;
  for (int episode = 0; episode < 4; ++episode) {
    // Phase: both busy for 1000 cycles; core 0 then waits 4000 cycles for
    // core 1 (the critical thread).
    for (int i = 0; i < 1000; ++i) {
      mp.tick(0, t, ExecState::kBusy);
      mp.tick(1, t, ExecState::kBusy);
      ++t;
    }
    for (int i = 0; i < 4000; ++i) {
      mp.tick(0, t, ExecState::kBarrier);
      mp.tick(1, t, ExecState::kBusy);
      ++t;
    }
    // Core 1 arrives; both leave the barrier together.
    mp.tick(1, t, ExecState::kBarrier);
    ++t;
    mp.tick(0, t, ExecState::kBusy);
    mp.tick(1, t, ExecState::kBusy);
    ++t;
  }
  EXPECT_GT(mp.episodes, 0u);
  EXPECT_GT(mp.mode_for(0), 0u);   // the early arriver is delayed
  EXPECT_EQ(mp.mode_for(1), 0u);   // the critical thread never is
}

TEST(MeetingPoints, BalancedThreadsStayFast) {
  MeetingPointsController mp(2);
  Cycle t = 0;
  for (int episode = 0; episode < 4; ++episode) {
    for (int i = 0; i < 2000; ++i) {
      mp.tick(0, t, ExecState::kBusy);
      mp.tick(1, t, ExecState::kBusy);
      ++t;
    }
    // Near-simultaneous arrival: tiny waits.
    for (int i = 0; i < 20; ++i) {
      mp.tick(0, t, ExecState::kBarrier);
      mp.tick(1, t, ExecState::kBarrier);
      ++t;
    }
    mp.tick(0, t, ExecState::kBusy);
    mp.tick(1, t, ExecState::kBusy);
    ++t;
  }
  EXPECT_EQ(mp.mode_for(0), 0u);
  EXPECT_EQ(mp.mode_for(1), 0u);
}

}  // namespace
}  // namespace ptb

#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

PtbConfig pcfg() {
  PtbConfig c;
  c.enabled = true;
  c.policy = PtbPolicy::kDynamic;
  return c;
}

TEST(DynamicSelector, LockSpinnersSelectToOne) {
  DynamicPolicySelector s(pcfg(), 4, 30.0);
  std::vector<ExecState> st{ExecState::kBusy, ExecState::kLockAcq,
                            ExecState::kLockAcq, ExecState::kBusy};
  EXPECT_EQ(s.select(st), PtbPolicy::kToOne);
}

TEST(DynamicSelector, BarrierSpinnersSelectToAll) {
  DynamicPolicySelector s(pcfg(), 4, 30.0);
  std::vector<ExecState> st{ExecState::kBarrier, ExecState::kBarrier,
                            ExecState::kBusy, ExecState::kBusy};
  EXPECT_EQ(s.select(st), PtbPolicy::kToAll);
}

TEST(DynamicSelector, NoSpinnersDefaultToAll) {
  DynamicPolicySelector s(pcfg(), 4, 30.0);
  std::vector<ExecState> st(4, ExecState::kBusy);
  EXPECT_EQ(s.select(st), PtbPolicy::kToAll);
}

TEST(DynamicSelector, MixedSpinMajorityWins) {
  DynamicPolicySelector s(pcfg(), 5, 30.0);
  std::vector<ExecState> st{ExecState::kLockAcq, ExecState::kLockAcq,
                            ExecState::kBarrier, ExecState::kBusy,
                            ExecState::kBusy};
  EXPECT_EQ(s.select(st), PtbPolicy::kToOne);
  st[1] = ExecState::kBarrier;
  EXPECT_EQ(s.select(st), PtbPolicy::kToAll);
}

TEST(DynamicSelector, CyclesAccounted) {
  DynamicPolicySelector s(pcfg(), 2, 30.0);
  std::vector<ExecState> lock{ExecState::kLockAcq, ExecState::kBusy};
  std::vector<ExecState> busy(2, ExecState::kBusy);
  s.select(lock);
  s.select(lock);
  s.select(busy);
  EXPECT_EQ(s.to_one_cycles, 2u);
  EXPECT_EQ(s.to_all_cycles, 1u);
}

TEST(DynamicSelectorHeuristic, SimultaneousExitsLookLikeBarrier) {
  DynamicPolicySelector s(pcfg(), 4, 30.0);
  std::vector<double> spinning{10.0, 10.0, 10.0, 80.0};
  std::vector<double> released{80.0, 80.0, 80.0, 80.0};
  Cycle t = 0;
  // Establish spinning (detector needs its confirmation window).
  for (int i = 0; i < 64; ++i) s.select_heuristic(t++, spinning);
  // All spinners exit at once -> a barrier-release wave -> ToAll.
  const PtbPolicy p = s.select_heuristic(t++, released);
  EXPECT_EQ(p, PtbPolicy::kToAll);
}

TEST(DynamicSelectorHeuristic, IsolatedExitLooksLikeLockHandoff) {
  DynamicPolicySelector s(pcfg(), 4, 30.0);
  std::vector<double> spinning{10.0, 10.0, 10.0, 80.0};
  Cycle t = 0;
  for (int i = 0; i < 64; ++i) s.select_heuristic(t++, spinning);
  // One spinner exits (lock acquired), the others keep spinning.
  std::vector<double> one_exit{80.0, 10.0, 10.0, 80.0};
  const PtbPolicy p = s.select_heuristic(t++, one_exit);
  EXPECT_EQ(p, PtbPolicy::kToOne);
}

}  // namespace
}  // namespace ptb

// Tests for the stats registry (src/stats): registration/lookup units,
// dump serialization round-trips, diff semantics, and end-to-end
// consistency of a stats-enabled simulation against its RunResult.
#include "stats/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "sim/run_pool.hpp"
#include "stats/dump.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

// --- registry units ---------------------------------------------------------

TEST(StatsRegistry, DottedPathLookupAndBinding) {
  ScopedThreadRole seq(g_sequential_point);  // registration API
  StatsRegistry reg;
  std::uint64_t commits = 0;
  double tokens = 0.0;
  reg.counter("core.0.committed", "commits", &commits);
  reg.gauge("ptb.balancer.in_flight", "tokens in flight", &tokens);
  ASSERT_EQ(reg.size(), 2u);

  const Stat* c = reg.find("core.0.committed");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind(), StatKind::kCounter);
  EXPECT_TRUE(c->integral());
  EXPECT_EQ(c->value_u64(), 0u);
  commits = 42;  // the component keeps incrementing its own field
  EXPECT_EQ(c->value_u64(), 42u);
  EXPECT_DOUBLE_EQ(c->value(), 42.0);

  const Stat* g = reg.find("ptb.balancer.in_flight");
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->integral());
  tokens = 1.5;
  EXPECT_DOUBLE_EQ(g->value(), 1.5);

  EXPECT_EQ(reg.find("core.0"), nullptr);
  EXPECT_EQ(reg.find("core.0.committed.extra"), nullptr);
}

TEST(StatsRegistry, SortedIterationVsRegistrationOrder) {
  ScopedThreadRole seq(g_sequential_point);  // registration API
  StatsRegistry reg;
  std::uint64_t a = 0, b = 0, c = 0;
  reg.counter("zeta", "", &a);
  reg.counter("alpha", "", &b);
  reg.counter("mid.dle", "", &c);
  // at() preserves registration order (run_summary_kv's pinned order)...
  EXPECT_EQ(reg.at(0).name(), "zeta");
  EXPECT_EQ(reg.at(2).name(), "mid.dle");
  // ...sorted() is the deterministic dump order.
  const auto sorted = reg.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0]->name(), "alpha");
  EXPECT_EQ(sorted[1]->name(), "mid.dle");
  EXPECT_EQ(sorted[2]->name(), "zeta");
}

TEST(StatsRegistry, FormulaEvaluatesLazily) {
  ScopedThreadRole seq(g_sequential_point);  // registration API
  StatsRegistry reg;
  std::uint64_t n = 0;
  double sum = 0.0;
  reg.counter("n", "", &n);
  reg.formula("mean", "sum / n",
              [&] { return n == 0 ? 0.0 : sum / static_cast<double>(n); });
  const Stat* mean = reg.find("mean");
  ASSERT_NE(mean, nullptr);
  EXPECT_EQ(mean->kind(), StatKind::kFormula);
  EXPECT_DOUBLE_EQ(mean->value(), 0.0);
  n = 4;
  sum = 10.0;
  EXPECT_DOUBLE_EQ(mean->value(), 2.5);
}

TEST(StatsRegistry, DistributionBucketsAndMoments) {
  ScopedThreadRole seq(g_sequential_point);  // registration API
  StatsRegistry reg;
  Histogram& h = reg.distribution("lat", "latency", 0.0, 10.0, 5);
  h.add(1.0);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(3.5);   // bucket 1
  h.add(9.9);   // bucket 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 17.4);
  const Stat* s = reg.find("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind(), StatKind::kDistribution);
  EXPECT_FALSE(s->scalar());
  ASSERT_NE(s->histogram(), nullptr);
  EXPECT_EQ(s->histogram(), &h);
}

TEST(StatsRegistry, VolatileStatsExcludedFromSampleBuffer) {
  ScopedThreadRole seq(g_sequential_point);  // registration API
  StatsRegistry reg;
  std::uint64_t n = 0;
  reg.counter("n", "", &n);
  reg.gauge_fn("self.seconds", "wall clock", [] { return 1.0; }, 6,
               /*is_volatile=*/true);
  SampleBuffer buf(reg);
  ASSERT_EQ(buf.num_columns(), 1u);
  EXPECT_EQ(buf.columns()[0], "n");
  n = 7;
  buf.sample(100);
  n = 9;
  buf.sample(200);
  ASSERT_EQ(buf.num_samples(), 2u);
  EXPECT_EQ(buf.cycles()[0], 100u);
  EXPECT_DOUBLE_EQ(buf.column(0)[0], 7.0);
  EXPECT_DOUBLE_EQ(buf.column(0)[1], 9.0);
}

TEST(StatsRegistry, KvRenderingPinsPrecision) {
  ScopedThreadRole seq(g_sequential_point);  // registration API
  StatsRegistry reg;
  std::uint64_t n = 3;
  double tokens = 1.25;
  reg.counter("n", "", &n);
  reg.counter("tokens", "", &tokens, 1);
  reg.gauge("budget", "", &tokens, 3);
  EXPECT_EQ(reg.find("n")->kv_string(), "n=3");
  EXPECT_EQ(reg.find("tokens")->kv_string(), "tokens=1.2");
  EXPECT_EQ(reg.find("budget")->kv_string(), "budget=1.250");
  EXPECT_EQ(stats_kv(reg), "n=3\ntokens=1.2\nbudget=1.250\n");
}

// --- dump round-trip / diff -------------------------------------------------

StatsDump tiny_dump() {
  ScopedThreadRole seq(g_sequential_point);  // registration API
  StatsRegistry reg;
  static std::uint64_t n = 5;
  static double x = 0.125;
  reg.counter("events.n", "event count", &n);
  reg.gauge("power.mean", "mean power", &x);
  reg.gauge_fn("self.seconds", "wall clock", [] { return 0.5; }, 6, true);
  Histogram& h = reg.distribution("power.dist", "per-cycle power", 0.0, 8.0,
                                  4);
  h.add(1.0);
  h.add(7.0);
  StatsDump d = StatsDump::snapshot(reg, nullptr, 0);
  d.bench = "tiny";
  d.num_cores = 2;
  d.cycles = 100;
  d.config_fingerprint = 0xdeadbeefcafef00dull;
  return d;
}

TEST(StatsDump, JsonRoundTripPreservesEverything) {
  const StatsDump d = tiny_dump();
  const std::string json = d.to_json();
  StatsDump back;
  ASSERT_TRUE(StatsDump::parse_json(json, back));
  EXPECT_EQ(back.bench, "tiny");
  EXPECT_EQ(back.num_cores, 2u);
  EXPECT_EQ(back.cycles, 100u);
  EXPECT_EQ(back.config_fingerprint, 0xdeadbeefcafef00dull);
  ASSERT_EQ(back.scalars.size(), d.scalars.size());
  for (std::size_t i = 0; i < d.scalars.size(); ++i) {
    EXPECT_EQ(back.scalars[i].name, d.scalars[i].name);
    EXPECT_EQ(back.scalars[i].kind, d.scalars[i].kind);
    EXPECT_EQ(back.scalars[i].is_volatile, d.scalars[i].is_volatile);
    EXPECT_EQ(back.scalars[i].integral, d.scalars[i].integral);
    EXPECT_DOUBLE_EQ(back.scalars[i].value, d.scalars[i].value);
    EXPECT_EQ(back.scalars[i].u64, d.scalars[i].u64);
  }
  ASSERT_EQ(back.dists.size(), 1u);
  EXPECT_EQ(back.dists[0].name, "power.dist");
  EXPECT_EQ(back.dists[0].total, 2u);
  EXPECT_DOUBLE_EQ(back.dists[0].sum, 8.0);
  ASSERT_EQ(back.dists[0].counts.size(), 4u);
  EXPECT_EQ(back.dists[0].counts[0], 1u);
  EXPECT_EQ(back.dists[0].counts[3], 1u);
  // Re-serializing the parsed dump reproduces the bytes (canonical form).
  EXPECT_EQ(back.to_json(), json);
}

TEST(StatsDump, VolatileStatsDroppedFromDeterministicJson) {
  const StatsDump d = tiny_dump();
  const std::string det = d.to_json(/*include_volatile=*/false);
  EXPECT_EQ(det.find("self.seconds"), std::string::npos);
  StatsDump back;
  ASSERT_TRUE(StatsDump::parse_json(det, back));
  EXPECT_EQ(back.find("self.seconds"), nullptr);
  ASSERT_NE(back.find("events.n"), nullptr);
  EXPECT_EQ(back.find("events.n")->u64, 5u);
}

TEST(StatsDump, ParseRejectsGarbage) {
  StatsDump out;
  EXPECT_FALSE(StatsDump::parse_json("", out));
  EXPECT_FALSE(StatsDump::parse_json("{}", out));
  EXPECT_FALSE(StatsDump::parse_json("not json", out));
  EXPECT_FALSE(StatsDump::parse_json(
      "{\"kind\":\"ptb-stats\",\"schema_version\":999}", out));
  const std::string good = tiny_dump().to_json();
  EXPECT_FALSE(StatsDump::parse_json(good + "trailing", out));
  EXPECT_TRUE(StatsDump::parse_json(good, out));
}

TEST(StatsDiff, ExactAndToleranced) {
  const StatsDump a = tiny_dump();
  StatsDump b = a;
  EXPECT_TRUE(diff_stats(a, b, 0.0).empty());

  // A 1% drift on power.mean: caught at tol 0, passed at tol 0.02.
  for (auto& s : b.scalars)
    if (s.name == "power.mean") s.value *= 1.01;
  const auto exact = diff_stats(a, b, 0.0);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0].name, "power.mean");
  EXPECT_FALSE(exact[0].only_in_a);
  EXPECT_FALSE(exact[0].only_in_b);
  EXPECT_NEAR(exact[0].rel, 0.01, 1e-3);
  EXPECT_TRUE(diff_stats(a, b, 0.02).empty());
}

TEST(StatsDiff, OneSidedKeysAndVolatileSkip) {
  const StatsDump a = tiny_dump();
  StatsDump b = a;
  // Volatile scalars differing is not a difference by default.
  for (auto& s : b.scalars)
    if (s.is_volatile) s.value += 100.0;
  EXPECT_TRUE(diff_stats(a, b, 0.0).empty());
  ASSERT_EQ(diff_stats(a, b, 0.0, /*include_volatile=*/true).size(), 1u);

  // Removing a stat from b reports only_in_a.
  b = a;
  b.scalars.erase(b.scalars.begin());  // name-sorted: "events.n"
  const auto diff = diff_stats(a, b, 0.0);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].name, "events.n");
  EXPECT_TRUE(diff[0].only_in_a);
  EXPECT_FALSE(diff[0].only_in_b);
}

// --- simulation integration -------------------------------------------------

WorkloadProfile small_profile() {
  WorkloadProfile p;
  p.name = "small";
  p.iterations = 2;
  p.ops_per_iteration = 4000;
  p.imbalance = 0.1;
  p.num_locks = 2;
  p.cs_per_1k_ops = 4.0;
  p.cs_len_ops = 10;
  return p;
}

SimConfig ptb_cfg(std::uint32_t cores) {
  TechniqueSpec t{"ptb", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                  0.0};
  SimConfig cfg = make_sim_config(cores, t);
  cfg.max_cycles = 500000;
  return cfg;
}

TEST(SimulatorStats, DumpMatchesRunResult) {
  RunOptions opts;
  opts.stats = true;
  const WorkloadProfile p = small_profile();
  const RunResult r = CmpSimulator(ptb_cfg(4), p).run(opts);
  ASSERT_NE(r.stats, nullptr);
  const StatsDump& d = *r.stats;
  EXPECT_EQ(d.bench, p.name);
  EXPECT_EQ(d.num_cores, 4u);
  EXPECT_EQ(d.cycles, r.cycles);

  const auto* cycles = d.find("sim.cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->u64, r.cycles);
  const auto* energy = d.find("sim.energy.total");
  ASSERT_NE(energy, nullptr);
  EXPECT_DOUBLE_EQ(energy->value, r.energy);
  const auto* granted = d.find("ptb.balancer.tokens_granted");
  ASSERT_NE(granted, nullptr);
  EXPECT_DOUBLE_EQ(granted->value, r.tokens_granted);

  // Per-core commits sum to the RunResult total.
  std::uint64_t committed = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    const auto* s = d.find("core." + std::to_string(c) + ".committed");
    ASSERT_NE(s, nullptr);
    committed += s->u64;
  }
  EXPECT_EQ(committed, r.total_committed);

  // The per-cycle power histogram saw every simulated cycle.
  bool found = false;
  for (const auto& h : d.dists) {
    if (h.name == "sim.power.dist") {
      EXPECT_EQ(h.total, r.cycles);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimulatorStats, EnablingStatsNeverChangesResults) {
  const WorkloadProfile p = small_profile();
  const RunResult off = CmpSimulator(ptb_cfg(4), p).run();
  RunOptions opts;
  opts.stats = true;
  opts.stats_sample_every = 512;
  const RunResult on = CmpSimulator(ptb_cfg(4), p).run(opts);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.total_committed, off.total_committed);
  EXPECT_EQ(on.energy, off.energy);  // bit-exact, not approximate
  EXPECT_EQ(on.aopb, off.aopb);
  EXPECT_EQ(on.tokens_donated, off.tokens_donated);
  EXPECT_EQ(on.tokens_granted, off.tokens_granted);
  EXPECT_EQ(on.dvfs_transitions, off.dvfs_transitions);
}

TEST(SimulatorStats, SamplingFillsTheTimeSeries) {
  RunOptions opts;
  opts.stats_sample_every = 1000;  // implies stats
  const RunResult r = CmpSimulator(ptb_cfg(2), small_profile()).run(opts);
  ASSERT_NE(r.stats, nullptr);
  const StatsDump& d = *r.stats;
  EXPECT_EQ(d.sample_every, 1000u);
  EXPECT_EQ(d.sample_cycles.size(), r.cycles / 1000);
  ASSERT_FALSE(d.sample_columns.empty());
  ASSERT_EQ(d.sample_values.size(), d.sample_columns.size());
  for (const auto& col : d.sample_values)
    EXPECT_EQ(col.size(), d.sample_cycles.size());
  // Sampled cycles are the 1000-grid, and sim.cycles is monotone along it.
  for (std::size_t i = 0; i < d.sample_cycles.size(); ++i)
    EXPECT_EQ(d.sample_cycles[i], (i + 1) * 1000 - 1);
  for (std::size_t c = 0; c < d.sample_columns.size(); ++c) {
    if (d.sample_columns[c] != "sim.cycles") continue;
    for (std::size_t i = 1; i < d.sample_values[c].size(); ++i)
      EXPECT_GT(d.sample_values[c][i], d.sample_values[c][i - 1]);
  }
}

TEST(SimulatorStats, DumpBytesIdenticalAcrossJobs) {
  // The deterministic serialization is a pure function of
  // (profile, config, seed): running under 1 worker and 4 workers must
  // produce byte-identical dumps once volatile stats are excluded.
  const WorkloadProfile p = small_profile();
  const SimConfig cfg = ptb_cfg(4);
  RunOptions opts;
  opts.stats = true;
  opts.stats_sample_every = 512;
  std::string bytes[2];
  unsigned jobs[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    RunPool pool(jobs[i]);
    pool.submit([&] { return CmpSimulator(cfg, p).run(opts); });
    std::vector<RunResult> rs = pool.wait_all();
    bytes[i] = stats_json(rs.at(0), /*include_volatile=*/false);
  }
  EXPECT_FALSE(bytes[0].empty());
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(SimulatorStats, ReportingWrappers) {
  RunOptions opts;
  opts.stats = true;
  const RunResult r = CmpSimulator(ptb_cfg(2), small_profile()).run(opts);
  const std::string json = stats_json(r);
  StatsDump back;
  ASSERT_TRUE(StatsDump::parse_json(json, back));
  EXPECT_EQ(back.num_cores, 2u);
  const std::string prom = stats_prometheus(r);
  EXPECT_NE(prom.find("# TYPE ptb_sim_cycles counter"), std::string::npos);
  EXPECT_NE(prom.find("ptb_run_info{bench=\"small\""), std::string::npos);
  EXPECT_NE(prom.find("ptb_sim_power_dist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  // No stats requested -> empty expositions, not crashes.
  const RunResult bare = CmpSimulator(ptb_cfg(2), small_profile()).run();
  EXPECT_EQ(bare.stats, nullptr);
  EXPECT_TRUE(stats_json(bare).empty());
  EXPECT_TRUE(stats_prometheus(bare).empty());
}

}  // namespace
}  // namespace ptb

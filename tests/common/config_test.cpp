// Asserts the default configuration reproduces Table 1 of the paper.
#include "common/config.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(Table1, CoreParameters) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.core.rob_entries, 128u);       // 128-entry instruction window
  EXPECT_EQ(cfg.core.lsq_entries, 64u);        // + 64 load/store queue
  EXPECT_EQ(cfg.core.fetch_width, 4u);         // decode 4 inst/cycle
  EXPECT_EQ(cfg.core.issue_width, 4u);         // issue 4 inst/cycle
  EXPECT_EQ(cfg.core.int_alu, 6u);
  EXPECT_EQ(cfg.core.int_mult, 2u);
  EXPECT_EQ(cfg.core.fp_alu, 4u);
  EXPECT_EQ(cfg.core.fp_mult, 4u);
  EXPECT_EQ(cfg.core.pipeline_stages, 14u);
  EXPECT_EQ(cfg.core.bp_history_bits, 16u);    // 16-bit gshare
  EXPECT_EQ(cfg.core.bp_table_bytes, 64u * 1024u);  // 64 KB
}

TEST(Table1, MemoryHierarchy) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.mem.dram_latency, 300u);             // 300-cycle memory
  EXPECT_EQ(cfg.l1i.size_bytes, 64u * 1024u);        // 64 KB L1I
  EXPECT_EQ(cfg.l1i.assoc, 2u);
  EXPECT_EQ(cfg.l1i.hit_latency, 1u);
  EXPECT_EQ(cfg.l1d.size_bytes, 64u * 1024u);        // 64 KB L1D
  EXPECT_EQ(cfg.l1d.assoc, 2u);
  EXPECT_EQ(cfg.l2.size_bytes_per_core, 1024u * 1024u);  // 1 MB/core L2
  EXPECT_EQ(cfg.l2.assoc, 4u);
  EXPECT_EQ(cfg.l2.hit_latency, 12u);
}

TEST(Table1, NetworkParameters) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.noc.link_latency, 4u);          // 4-cycle links
  EXPECT_EQ(cfg.noc.flit_bytes, 4u);            // 4-byte flits
  EXPECT_EQ(cfg.noc.link_flits_per_cycle, 1u);  // 1 flit/cycle
}

TEST(Table1, PowerAndProcess) {
  const SimConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.power.vdd_nominal, 0.9);        // 0.9 V
  EXPECT_DOUBLE_EQ(cfg.power.freq_nominal_ghz, 3.0);   // 3 GHz
  EXPECT_EQ(cfg.power.ptht_entries, 8192u);            // 8K-entry PTHT
  EXPECT_EQ(cfg.power.kmeans_groups, 8u);              // 8 k-means groups
  EXPECT_DOUBLE_EQ(cfg.budget_fraction, 0.5);          // 50% power budget
}

TEST(MeshGeometry, SquarestFactorization) {
  SimConfig cfg;
  cfg.num_cores = 16;
  EXPECT_EQ(cfg.mesh_width(), 4u);
  EXPECT_EQ(cfg.mesh_height(), 4u);
  cfg.num_cores = 8;
  EXPECT_EQ(cfg.mesh_width() * cfg.mesh_height(), 8u);
  EXPECT_EQ(cfg.mesh_width(), 4u);
  EXPECT_EQ(cfg.mesh_height(), 2u);
  cfg.num_cores = 2;
  EXPECT_EQ(cfg.mesh_width(), 2u);
  EXPECT_EQ(cfg.mesh_height(), 1u);
  cfg.num_cores = 1;
  EXPECT_EQ(cfg.mesh_width(), 1u);
  EXPECT_EQ(cfg.mesh_height(), 1u);
}

}  // namespace
}  // namespace ptb

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ptb {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng r(29);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, ReseedReproduces) {
  Rng r(31);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(r.next_u64());
  r.reseed(31);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.next_u64(), first[i]);
}

}  // namespace
}  // namespace ptb

#include "common/table.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(Table, BasicCells) {
  Table t({"name", "value"});
  const auto r = t.add_row();
  t.set(r, 0, "alpha");
  t.set(r, 1, 3.14159, 2);
  EXPECT_EQ(t.cell(r, 0), "alpha");
  EXPECT_EQ(t.cell(r, 1), "3.14");
}

TEST(Table, IntegerFormatting) {
  Table t({"k", "v"});
  const auto r = t.add_row();
  t.set(r, 1, static_cast<std::int64_t>(-42));
  EXPECT_EQ(t.cell(r, 1), "-42");
}

TEST(Table, AddFullRow) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 2), "3");
}

TEST(Table, TextContainsHeaderAndData) {
  Table t({"bench", "energy"});
  t.add_row({"fft", "-2.93"});
  const std::string text = t.to_text("Figure 9");
  EXPECT_NE(text.find("Figure 9"), std::string::npos);
  EXPECT_NE(text.find("bench"), std::string::npos);
  EXPECT_NE(text.find("fft"), std::string::npos);
  EXPECT_NE(text.find("-2.93"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"x", "1.5"});
  t.add_row({"y", "2.5"});
  EXPECT_EQ(t.to_csv(), "a,b\nx,1.5\ny,2.5\n");
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.005, 1), "1.0");
  EXPECT_EQ(format_double(-3.14159, 3), "-3.142");
  EXPECT_EQ(format_double(0.0, 0), "0");
}

}  // namespace
}  // namespace ptb

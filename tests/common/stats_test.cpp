#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ptb {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, WelfordMatchesNaiveOnManySamples) {
  RunningStat s;
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double v = std::sin(i * 0.1) * 100 + i * 0.001;
    s.add(v);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kN;
  const double var = (sum2 - kN * mean * mean) / (kN - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, var * 1e-9);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps to bucket 0
  h.add(0.5);    // bucket 0
  h.add(9.5);    // bucket 9
  h.add(100.0);  // clamps to bucket 9
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100);
  EXPECT_LE(h.percentile(0.25), h.percentile(0.5));
  EXPECT_LE(h.percentile(0.5), h.percentile(0.95));
  EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
}

TEST(TimeSeries, RecordsAll) {
  TimeSeries ts(1024);
  for (int i = 0; i < 100; ++i) ts.add(i, i * 2.0);
  ASSERT_EQ(ts.size(), 100u);
  EXPECT_DOUBLE_EQ(ts.values()[7], 14.0);
}

TEST(TimeSeries, DecimatesWhenFull) {
  TimeSeries ts(16);
  for (int i = 0; i < 10000; ++i) ts.add(i, i);
  EXPECT_LE(ts.size(), 16u);
  EXPECT_GE(ts.size(), 4u);
  // Retained points are still time-ordered.
  for (std::size_t i = 1; i < ts.size(); ++i)
    EXPECT_LT(ts.times()[i - 1], ts.times()[i]);
}

}  // namespace
}  // namespace ptb

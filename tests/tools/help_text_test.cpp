// Golden test for the ptb-* tools' --help output (tools/help_text.hpp).
// The tools print these strings verbatim, so pinning the header pins the
// binaries' help: an edit to the help text must come through here too.
//
// Beyond the byte-pin, the test enforces the documentation contract the
// ISSUE called out: the help must name every subcommand the tool actually
// dispatches, and must document the two validation behaviors users hit in
// practice — ptb-trace rejecting traces with a mismatched format version,
// and ptb-stats diff/regress checking the embedded config fingerprint.
#include "help_text.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

std::string rendered(const char* fmt) {
  char buf[4096];
  const int n = std::snprintf(buf, sizeof(buf), fmt, "ptb-tool");
  EXPECT_GT(n, 0);
  EXPECT_LT(static_cast<std::size_t>(n), sizeof(buf));
  return std::string(buf, static_cast<std::size_t>(n));
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  EXPECT_TRUE(cur.empty()) << "help text must end with a newline";
  return lines;
}

void expect_well_formed(const std::string& text) {
  EXPECT_EQ(text.find('\t'), std::string::npos) << "spaces only, no tabs";
  for (const std::string& line : lines_of(text)) {
    EXPECT_LE(line.size(), 80u) << "line overflows 80 columns: " << line;
    if (!line.empty()) {
      EXPECT_NE(line.back(), ' ') << "trailing whitespace: " << line;
    }
  }
}

TEST(HelpText, TraceHelpDocumentsEverySubcommand) {
  const std::string h = rendered(ptb::tools::kTraceUsage);
  // One entry per dispatch branch in tools/ptb_trace.cpp main().
  for (const char* cmd : {"summary", "flows", "dvfs", "spin", "deficit",
                          "export-json", "export-csv", "serve"}) {
    EXPECT_NE(h.find(cmd), std::string::npos) << cmd;
  }
  EXPECT_NE(h.find("--core"), std::string::npos);
}

TEST(HelpText, TraceHelpDocumentsFormatVersionRejection) {
  const std::string h = rendered(ptb::tools::kTraceUsage);
  EXPECT_NE(h.find("format version"), std::string::npos);
  EXPECT_NE(h.find("rejected"), std::string::npos);
  EXPECT_NE(h.find("exit status"), std::string::npos);
}

TEST(HelpText, StatsHelpDocumentsEverySubcommand) {
  const std::string h = rendered(ptb::tools::kStatsUsage);
  // One entry per dispatch branch in tools/ptb_stats.cpp main().
  for (const char* cmd : {"dump", "diff", "regress"}) {
    EXPECT_NE(h.find(cmd), std::string::npos) << cmd;
  }
  for (const char* flag : {"--json", "--no-volatile", "--tol", "--all"}) {
    EXPECT_NE(h.find(flag), std::string::npos) << flag;
  }
}

TEST(HelpText, StatsHelpDocumentsFingerprintCheck) {
  const std::string h = rendered(ptb::tools::kStatsUsage);
  EXPECT_NE(h.find("config fingerprint"), std::string::npos);
  // diff warns-and-continues; regress hard-fails — both must be spelled out.
  EXPECT_NE(h.find("diffs anyway"), std::string::npos);
  EXPECT_NE(h.find("failure"), std::string::npos);
  EXPECT_NE(h.find("exit status"), std::string::npos);
}

TEST(HelpText, ServeHelpDocumentsEveryFlagAndRoute) {
  const std::string h = rendered(ptb::tools::kServeUsage);
  // One entry per flag the daemon's argv loop dispatches
  // (tools/ptb_serve.cpp main()).
  for (const char* flag :
       {"--listen", "--port", "--jobs", "--host-tokens", "--policy",
        "--cache-dir", "--cache-max-bytes", "--queue-max", "--http-threads",
        "--trace-spans", "--progress-cycles", "--log-file", "--log-level"}) {
    EXPECT_NE(h.find(flag), std::string::npos) << flag;
  }
  // One entry per route Server::handle dispatches.
  for (const char* route :
       {"/v1/run", "/v1/sweep", "/v1/jobs/{id}", "/v1/jobs/{id}/events",
        "/v1/results/{key}", "/v1/trace", "/metrics", "/healthz"}) {
    EXPECT_NE(h.find(route), std::string::npos) << route;
  }
}

TEST(HelpText, ServeHelpDocumentsCacheAndDrainBehavior) {
  const std::string h = rendered(ptb::tools::kServeUsage);
  // The two behaviors an operator would otherwise discover by surprise:
  // repeat answers come from the cache byte-identically (corrupt entries
  // re-simulate, never serve), and shutdown drains rather than kills.
  EXPECT_NE(h.find("byte-identically"), std::string::npos);
  EXPECT_NE(h.find("corrupt"), std::string::npos);
  EXPECT_NE(h.find("re-simulated"), std::string::npos);
  EXPECT_NE(h.find("drain"), std::string::npos);
  EXPECT_NE(h.find("exit status"), std::string::npos);
}

TEST(HelpText, FormattingContract) {
  expect_well_formed(rendered(ptb::tools::kTraceUsage));
  expect_well_formed(rendered(ptb::tools::kStatsUsage));
  expect_well_formed(rendered(ptb::tools::kServeUsage));
}

// The byte-pin: sizes change whenever the text changes, which is enough to
// force a deliberate visit here (the substring tests above then re-verify
// the documentation contract) without duplicating the whole blob.
TEST(HelpText, GoldenShape) {
  const std::string trace = rendered(ptb::tools::kTraceUsage);
  const std::string stats = rendered(ptb::tools::kStatsUsage);
  const std::string serve = rendered(ptb::tools::kServeUsage);
  EXPECT_EQ(lines_of(trace).size(), 16u);
  EXPECT_EQ(lines_of(stats).size(), 14u);
  EXPECT_EQ(lines_of(serve).size(), 33u);
}

}  // namespace

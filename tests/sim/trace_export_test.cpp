#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/experiment.hpp"

namespace ptb {
namespace {

RunResult traced_run() {
  WorkloadProfile p;
  p.name = "traced";
  p.iterations = 1;
  p.ops_per_iteration = 3000;
  p.barrier_per_iter = false;
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  CmpSimulator sim(make_sim_config(2, none), p);
  RunOptions opts;
  opts.record_cmp_trace = true;
  opts.record_core_traces = true;
  return sim.run(opts);
}

TEST(TraceExport, CsvHeaderAndShape) {
  const RunResult r = traced_run();
  const std::string csv = power_trace_csv(r);
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "cycle,cmp_power,core0,core1");
  std::size_t rows = 0;
  std::string line;
  double prev_cycle = -1.0;
  while (std::getline(in, line)) {
    ++rows;
    const double cyc = std::stod(line.substr(0, line.find(',')));
    EXPECT_GT(cyc, prev_cycle);  // strictly increasing timestamps
    prev_cycle = cyc;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3);
  }
  EXPECT_EQ(rows, r.cmp_power_trace.size());
  EXPECT_GT(rows, 10u);
}

TEST(TraceExport, SummaryContainsCoreMetrics) {
  const RunResult r = traced_run();
  const std::string kv = run_summary_kv(r);
  EXPECT_NE(kv.find("benchmark=traced\n"), std::string::npos);
  EXPECT_NE(kv.find("num_cores=2\n"), std::string::npos);
  EXPECT_NE(kv.find("cycles=" + std::to_string(r.cycles)), std::string::npos);
  EXPECT_NE(kv.find("energy_tokens="), std::string::npos);
  EXPECT_NE(kv.find("aopb_tokens="), std::string::npos);
  EXPECT_NE(kv.find("cycles_busy="), std::string::npos);
  EXPECT_NE(kv.find("cycles_barrier="), std::string::npos);
}

TEST(TraceExport, WritesFiles) {
  const RunResult r = traced_run();
  ASSERT_TRUE(export_run(r, testing::TempDir()));
  const std::string stem = testing::TempDir() + "/traced_2c";
  std::ifstream csv(stem + "_trace.csv");
  std::ifstream kv(stem + "_summary.txt");
  EXPECT_TRUE(csv.good());
  EXPECT_TRUE(kv.good());
  std::remove((stem + "_trace.csv").c_str());
  std::remove((stem + "_summary.txt").c_str());
}

TEST(TraceExport, FailsGracefullyOnBadDirectory) {
  const RunResult r = traced_run();
  EXPECT_FALSE(export_run(r, "/nonexistent/deeply/nested"));
}

}  // namespace
}  // namespace ptb

#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/experiment.hpp"

namespace ptb {
namespace {

RunResult traced_run() {
  WorkloadProfile p;
  p.name = "traced";
  p.iterations = 1;
  p.ops_per_iteration = 3000;
  p.barrier_per_iter = false;
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  CmpSimulator sim(make_sim_config(2, none), p);
  RunOptions opts;
  opts.record_cmp_trace = true;
  opts.record_core_traces = true;
  return sim.run(opts);
}

TEST(TraceExport, CsvHeaderAndShape) {
  const RunResult r = traced_run();
  const std::string csv = power_trace_csv(r);
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "cycle,cmp_power,core0,core1");
  std::size_t rows = 0;
  std::string line;
  double prev_cycle = -1.0;
  while (std::getline(in, line)) {
    ++rows;
    const double cyc = std::stod(line.substr(0, line.find(',')));
    EXPECT_GT(cyc, prev_cycle);  // strictly increasing timestamps
    prev_cycle = cyc;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3);
  }
  EXPECT_EQ(rows, r.cmp_power_trace.size());
  EXPECT_GT(rows, 10u);
}

TEST(TraceExport, SummaryContainsCoreMetrics) {
  const RunResult r = traced_run();
  const std::string kv = run_summary_kv(r);
  EXPECT_NE(kv.find("benchmark=traced\n"), std::string::npos);
  EXPECT_NE(kv.find("num_cores=2\n"), std::string::npos);
  EXPECT_NE(kv.find("cycles=" + std::to_string(r.cycles)), std::string::npos);
  EXPECT_NE(kv.find("energy_tokens="), std::string::npos);
  EXPECT_NE(kv.find("aopb_tokens="), std::string::npos);
  EXPECT_NE(kv.find("cycles_busy="), std::string::npos);
  EXPECT_NE(kv.find("cycles_barrier="), std::string::npos);
}

TEST(TraceExport, SummaryContainsMechanismCounters) {
  const RunResult r = traced_run();
  const std::string kv = run_summary_kv(r);
  EXPECT_NE(kv.find("tokens_donated="), std::string::npos);
  EXPECT_NE(kv.find("tokens_granted="), std::string::npos);
  EXPECT_NE(kv.find("tokens_evaporated="), std::string::npos);
  EXPECT_NE(kv.find("spin_gated_cycles="), std::string::npos);
  EXPECT_NE(kv.find("barrier_sleep_cycles="), std::string::npos);
  EXPECT_NE(kv.find("meeting_point_episodes="), std::string::npos);
  EXPECT_NE(kv.find("audit_checks=" + std::to_string(r.audit_checks)),
            std::string::npos);
}

// Golden output: a hand-built result pins the exact bytes, including the
// hold-last alignment of per-core rows onto the CMP trace's timestamps.
TEST(TraceExport, CsvGoldenOutput) {
  RunResult r;
  r.cmp_power_trace.add(0.0, 10.0);
  r.cmp_power_trace.add(4.0, 12.5);
  r.cmp_power_trace.add(8.0, 11.0);
  r.core_power_traces.resize(2);
  r.core_power_traces[0].add(0.0, 5.0);
  r.core_power_traces[0].add(8.0, 6.0);   // holds 5.0 through cycle 4
  r.core_power_traces[1].add(0.0, 5.0);
  r.core_power_traces[1].add(3.0, 6.5);   // already 6.5 by cycle 4
  r.core_power_traces[1].add(7.0, 4.5);   // already 4.5 by cycle 8
  EXPECT_EQ(power_trace_csv(r),
            "cycle,cmp_power,core0,core1\n"
            "0,10.000,5.000,5.000\n"
            "4,12.500,5.000,6.500\n"
            "8,11.000,6.000,4.500\n");
}

TEST(SampleAt, EmptySeriesYieldsZero) {
  TimeSeries s;
  std::size_t cursor = 0;
  EXPECT_EQ(sample_at(s, 5.0, cursor), 0.0);
  EXPECT_EQ(cursor, 0u);
}

TEST(SampleAt, HoldsLastValueAtOrBeforeT) {
  TimeSeries s;
  s.add(0.0, 1.0);
  s.add(10.0, 2.0);
  s.add(20.0, 3.0);
  std::size_t cursor = 0;
  EXPECT_EQ(sample_at(s, 0.0, cursor), 1.0);
  EXPECT_EQ(sample_at(s, 9.9, cursor), 1.0);
  EXPECT_EQ(sample_at(s, 10.0, cursor), 2.0);  // boundary: <= advances
  EXPECT_EQ(sample_at(s, 19.0, cursor), 2.0);
  EXPECT_EQ(sample_at(s, 1000.0, cursor), 3.0);
  EXPECT_EQ(cursor, 2u);
}

TEST(SampleAt, CursorNeverRewinds) {
  TimeSeries s;
  s.add(0.0, 1.0);
  s.add(10.0, 2.0);
  std::size_t cursor = 0;
  EXPECT_EQ(sample_at(s, 15.0, cursor), 2.0);
  EXPECT_EQ(cursor, 1u);
  // Out-of-order query: the cursor stays put, so the value at the cursor
  // comes back — documented behavior for the monotone-scan use case.
  EXPECT_EQ(sample_at(s, 0.0, cursor), 2.0);
  EXPECT_EQ(cursor, 1u);
}

TEST(TraceExport, WritesFiles) {
  const RunResult r = traced_run();
  ASSERT_TRUE(export_run(r, testing::TempDir()));
  const std::string stem = testing::TempDir() + "/traced_2c";
  std::ifstream csv(stem + "_trace.csv");
  std::ifstream kv(stem + "_summary.txt");
  EXPECT_TRUE(csv.good());
  EXPECT_TRUE(kv.good());
  std::remove((stem + "_trace.csv").c_str());
  std::remove((stem + "_summary.txt").c_str());
}

TEST(TraceExport, FailsGracefullyOnBadDirectory) {
  const RunResult r = traced_run();
  EXPECT_FALSE(export_run(r, "/nonexistent/deeply/nested"));
}

}  // namespace
}  // namespace ptb

#include "sim/run_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

// The determinism contract (DESIGN.md "Experiment execution"): results come
// back in submission order, never completion order.
TEST(RunPool, ResultsInSubmissionOrder) {
  RunPool pool(4);
  constexpr std::size_t kTasks = 64;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([i] {
      RunResult r;
      r.benchmark = "task" + std::to_string(i);
      r.cycles = i;
      return r;
    });
  }
  const std::vector<RunResult> results = pool.wait_all();
  ASSERT_EQ(results.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[i].cycles, i);
    EXPECT_EQ(results[i].benchmark, "task" + std::to_string(i));
  }
}

TEST(RunPool, ReusableAcrossBatches) {
  RunPool pool(2);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 5; ++i) {
      pool.submit([batch, i] {
        RunResult r;
        r.cycles = static_cast<Cycle>(batch * 100 + i);
        return r;
      });
    }
    const auto results = pool.wait_all();
    ASSERT_EQ(results.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(results[i].cycles, static_cast<Cycle>(batch * 100 + i));
    }
  }
}

TEST(RunPool, WaitAllOnEmptyBatchReturnsEmpty) {
  RunPool pool(2);
  EXPECT_TRUE(pool.wait_all().empty());
}

// submit() is documented thread-safe: a non-main thread may append to a
// batch that is already in flight (workers mid-task, queue half-drained).
// The batch must absorb the late tasks and wait_all() must still hand every
// result back by submission index.
TEST(RunPool, SubmitRacesInFlightBatchFromSecondThread) {
  RunPool pool(2);
  std::atomic<bool> release{false};
  for (std::uint64_t i = 0; i < 4; ++i) {
    pool.submit([&release, i] {
      // Hold the workers mid-task until the racing submitter is done, so
      // the late submits genuinely overlap an in-flight batch.
      while (!release.load(std::memory_order_acquire))
        std::this_thread::yield();
      RunResult r;
      r.cycles = i;
      return r;
    });
  }
  std::vector<std::size_t> extra_index(4);
  std::thread submitter([&pool, &extra_index, &release] {
    for (std::uint64_t i = 0; i < 4; ++i) {
      extra_index[i] = pool.submit([i] {
        RunResult r;
        r.cycles = 100 + i;
        return r;
      });
    }
    release.store(true, std::memory_order_release);
  });
  submitter.join();
  const std::vector<RunResult> results = pool.wait_all();
  ASSERT_EQ(results.size(), 8u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].cycles, i);
    ASSERT_LT(extra_index[i], results.size());
    EXPECT_EQ(results[extra_index[i]].cycles, 100 + i);
  }
}

TEST(RunPool, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(RunPool::default_jobs(), 1u);
  RunPool pool;  // jobs = 0 -> default
  EXPECT_GE(pool.jobs(), 1u);
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.num_cores, b.num_cores);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.aopb, b.aopb);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.spin_energy, b.spin_energy);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.tokens_donated, b.tokens_donated);
  EXPECT_EQ(a.tokens_granted, b.tokens_granted);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
}

// Each simulation is a pure function of (profile, config, seed), so a
// 1-worker pool and an N-worker pool must produce bit-identical results --
// this is the property that lets `--jobs N` match `--jobs 1` byte for byte.
TEST(RunPool, OneWorkerAndManyWorkersBitIdentical) {
  const std::vector<TechniqueSpec> techs = standard_techniques(PtbPolicy::kToAll);
  const auto& fft = benchmark_by_name("fft");
  const auto& black = benchmark_by_name("blackscholes");

  auto run_with = [&](unsigned jobs) {
    RunPool pool(jobs);
    for (const auto* p : {&fft, &black}) {
      for (const auto& t : techs) {
        pool.submit(*p, make_sim_config(4, t));
      }
    }
    return pool.wait_all();
  };

  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
  }
}

// The suite-level wrappers and the JSON exporter must also be worker-count
// invariant: identical grids, and byte-identical serialized JSON.
TEST(RunPool, SuiteGridAndJsonWorkerCountInvariant) {
  const std::vector<TechniqueSpec> techs = naive_techniques();

  auto grid_json_with = [&](unsigned jobs) {
    RunPool pool(jobs);
    BaseRunCache cache;
    FigureGrid g = run_suite_grid(4, techs, cache, pool);
    g.append_average();
    return figure_grid_json(g, "determinism probe");
  };

  const std::string j1 = grid_json_with(1);
  const std::string j4 = grid_json_with(4);
  EXPECT_EQ(j1, j4);
}

// Hammer one cache key from many threads: every caller must observe the same
// result object, and the underlying simulation must run exactly once per
// distinct (name, cores, seed) key.
TEST(BaseRunCache, ConcurrentGetComputesOncePerKey) {
  BaseRunCache cache;
  const auto& profile = benchmark_by_name("blackscholes");
  constexpr unsigned kThreads = 8;
  std::vector<const RunResult*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ++ready;
      while (ready.load() < static_cast<int>(kThreads)) {
      }  // start roughly together
      seen[t] = &cache.get(profile, 4);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.computed(), 1u);
  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);  // same cached entry, not a copy
  }
  // A different core count or seed is a distinct key.
  cache.get(profile, 8);
  cache.get(profile, 4, /*seed=*/2);
  EXPECT_EQ(cache.computed(), 3u);
  // Re-reads stay cached.
  cache.get(profile, 4);
  EXPECT_EQ(cache.computed(), 3u);
}

}  // namespace
}  // namespace ptb

// Checkpoint/restore exactness and fault-injection tests
// (sim/checkpoint.hpp):
//
//   - frame plumbing: round-trip, and every corruption class rejected
//     cleanly (truncation, bit-flips, wrong magic/version, bogus section
//     tables) — never UB, never a partial accept;
//   - identity validation: a frame restores only into a simulator with the
//     same core count / benchmark / machine fingerprint / seed, and a
//     mid-run frame additionally pins the full config fingerprint;
//   - the headline guarantee: a run restored from a mid-run checkpoint
//     finishes bit-identical — RunResult fields, serialized event-trace
//     bytes and the deterministic stats dump — to the uninterrupted run,
//     at every --sim-threads value;
//   - warm forking: a cycle-0 post-warmup frame captured under one
//     technique restores under another and reproduces that technique's
//     from-scratch results exactly;
//   - sampled simulation: fast-forward windows preserve completion timing,
//     stay deterministic across shard counts, and fold into the config
//     fingerprint.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "trace/trace.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

WorkloadProfile small_profile() {
  WorkloadProfile p;
  p.name = "ckpt";
  p.iterations = 2;
  p.ops_per_iteration = 3000;
  p.imbalance = 0.2;
  p.num_locks = 2;
  p.cs_per_1k_ops = 4.0;
  p.cs_len_ops = 10;
  p.hot_lock_frac = 0.5;
  return p;
}

TechniqueSpec base_spec() {
  return {"base", TechniqueKind::kNone, false, PtbPolicy::kToAll, 0.0};
}

TechniqueSpec ptb_spec() {
  return {"ptb+2l(dyn)", TechniqueKind::kTwoLevel, true, PtbPolicy::kDynamic,
          0.0};
}

// Bitwise comparison of every deterministic RunResult field (the
// sim_threads identity hammer's comparator, reused for restore identity).
void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.num_cores, b.num_cores);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.hit_max_cycles, b.hit_max_cycles);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.aopb, b.aopb);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.power.count(), b.power.count());
  EXPECT_EQ(a.power.mean(), b.power.mean());
  EXPECT_EQ(a.power.max(), b.power.max());
  EXPECT_EQ(a.power.variance(), b.power.variance());
  EXPECT_EQ(a.spin_energy, b.spin_energy);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.tokens_donated, b.tokens_donated);
  EXPECT_EQ(a.tokens_granted, b.tokens_granted);
  EXPECT_EQ(a.tokens_evaporated, b.tokens_evaporated);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
  EXPECT_EQ(a.to_one_cycles, b.to_one_cycles);
  EXPECT_EQ(a.to_all_cycles, b.to_all_cycles);
  EXPECT_EQ(a.spin_gated_cycles, b.spin_gated_cycles);
  EXPECT_EQ(a.machine_fingerprint, b.machine_fingerprint);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    SCOPED_TRACE(i);
    const CoreResult& x = a.cores[i];
    const CoreResult& y = b.cores[i];
    EXPECT_EQ(x.finish_cycle, y.finish_cycle);
    EXPECT_EQ(x.committed, y.committed);
    EXPECT_EQ(x.flushes, y.flushes);
    for (std::uint32_t s = 0; s < kNumExecStates; ++s) {
      EXPECT_EQ(x.state_cycles[s], y.state_cycles[s]);
    }
    EXPECT_EQ(x.spin_energy, y.spin_energy);
    EXPECT_EQ(x.energy, y.energy);
    EXPECT_EQ(x.temp_mean, y.temp_mean);
    EXPECT_EQ(x.temp_std, y.temp_std);
  }
}

// --- frame plumbing ---------------------------------------------------------

std::string tiny_frame() {
  CheckpointHeader h;
  h.checkpoint_fp = 0x1111;
  h.machine_fp = 0x2222;
  h.config_fp = 0x3333;
  h.seed = 7;
  h.num_cores = 4;
  h.cycle = 42;
  h.benchmark = "fft";
  CheckpointWriter w(h);
  {
    ByteWriter& s = w.section(CkptSection::kCores);
    s.u64(0xdeadbeef);
  }
  {
    ByteWriter& s = w.section(CkptSection::kThermal);
    s.f64(1.5);
    s.str("tail");
  }
  return w.finish();
}

TEST(CheckpointFrame, RoundTripHeaderAndSections) {
  const std::string bytes = tiny_frame();
  CheckpointReader r;
  ASSERT_TRUE(r.parse(bytes)) << r.error();
  EXPECT_EQ(r.header().checkpoint_fp, 0x1111u);
  EXPECT_EQ(r.header().machine_fp, 0x2222u);
  EXPECT_EQ(r.header().config_fp, 0x3333u);
  EXPECT_EQ(r.header().seed, 7u);
  EXPECT_EQ(r.header().num_cores, 4u);
  EXPECT_EQ(r.header().cycle, 42u);
  EXPECT_EQ(r.header().benchmark, "fft");
  ASSERT_TRUE(r.has_section(CkptSection::kCores));
  ASSERT_TRUE(r.has_section(CkptSection::kThermal));
  EXPECT_FALSE(r.has_section(CkptSection::kMem));
  ByteReader cores(r.section(CkptSection::kCores));
  EXPECT_EQ(cores.u64(), 0xdeadbeefu);
  EXPECT_TRUE(cores.empty());
  ByteReader th(r.section(CkptSection::kThermal));
  EXPECT_EQ(th.f64(), 1.5);
  EXPECT_EQ(th.str(), "tail");
  EXPECT_TRUE(th.ok());
}

TEST(CheckpointFrame, FrameBytesAreDeterministic) {
  EXPECT_EQ(tiny_frame(), tiny_frame());
}

TEST(CheckpointFrame, EveryTruncationLengthRejected) {
  const std::string bytes = tiny_frame();
  CheckpointReader r;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(r.parse(std::string_view(bytes).substr(0, len)))
        << "accepted a frame truncated to " << len << " bytes";
    EXPECT_FALSE(r.error().empty());
  }
}

TEST(CheckpointFrame, EverySingleBitFlipRejected) {
  const std::string bytes = tiny_frame();
  // The magic/version/length words reject structurally; every payload bit
  // is caught by the FNV checksum. Appended garbage is a length mismatch.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string mut = bytes;
      mut[i] = static_cast<char>(mut[i] ^ (1 << bit));
      CheckpointReader r;
      EXPECT_FALSE(r.parse(mut))
          << "accepted a frame with byte " << i << " bit " << bit
          << " flipped";
    }
  }
  CheckpointReader r;
  EXPECT_FALSE(r.parse(bytes + "x"));
}

TEST(CheckpointFrame, WrongMagicAndVersionDiagnosed) {
  std::string bytes = tiny_frame();
  {
    std::string mut = bytes;
    mut[0] = 'X';
    CheckpointReader r;
    ASSERT_FALSE(r.parse(mut));
    EXPECT_NE(r.error().find("magic"), std::string::npos) << r.error();
  }
  {
    std::string mut = bytes;
    mut[4] = static_cast<char>(kCheckpointVersion + 1);
    CheckpointReader r;
    ASSERT_FALSE(r.parse(mut));
    EXPECT_NE(r.error().find("version"), std::string::npos) << r.error();
  }
}

TEST(CheckpointFrame, FileRoundTripAndMissingFile) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/ckpt_roundtrip.ptbc";
  const std::string bytes = tiny_frame();
  std::string err;
  ASSERT_TRUE(save_checkpoint_file(path, bytes, &err)) << err;
  std::string back;
  ASSERT_TRUE(load_checkpoint_file(path, back, &err)) << err;
  EXPECT_EQ(back, bytes);
  EXPECT_FALSE(load_checkpoint_file(dir + "/absent.ptbc", back, &err));
  EXPECT_FALSE(err.empty());
}

// --- identity validation ----------------------------------------------------

std::string capture_at(const WorkloadProfile& p, const SimConfig& cfg,
                       Cycle at, const RunOptions& base = {}) {
  CmpSimulator sim(cfg, p);
  std::string ckpt;
  RunOptions opts = base;
  opts.checkpoint_at = at;
  opts.checkpoint_out = &ckpt;
  sim.run(opts);
  return ckpt;
}

TEST(CheckpointRestore, IdentityMismatchesRejected) {
  const WorkloadProfile p = small_profile();
  const SimConfig cfg = make_sim_config(4, ptb_spec());
  const std::string ckpt = capture_at(p, cfg, 500);
  ASSERT_FALSE(ckpt.empty());

  std::string err;
  {  // different core count
    CmpSimulator sim(make_sim_config(8, ptb_spec()), p);
    EXPECT_FALSE(sim.restore_checkpoint(ckpt, &err));
    EXPECT_NE(err.find("core count"), std::string::npos) << err;
  }
  {  // different benchmark
    WorkloadProfile q = p;
    q.name = "other";
    CmpSimulator sim(cfg, q);
    EXPECT_FALSE(sim.restore_checkpoint(ckpt, &err));
    EXPECT_NE(err.find("benchmark"), std::string::npos) << err;
  }
  {  // different machine
    SimConfig m = cfg;
    m.core.rob_entries *= 2;
    CmpSimulator sim(m, p);
    EXPECT_FALSE(sim.restore_checkpoint(ckpt, &err));
    EXPECT_NE(err.find("machine"), std::string::npos) << err;
  }
  {  // different seed
    SimConfig s = cfg;
    s.seed = cfg.seed + 1;
    CmpSimulator sim(s, p);
    EXPECT_FALSE(sim.restore_checkpoint(ckpt, &err));
    EXPECT_NE(err.find("seed"), std::string::npos) << err;
  }
  {  // mid-run frame under a different technique: config fp pinned
    CmpSimulator sim(make_sim_config(4, base_spec()), p);
    EXPECT_FALSE(sim.restore_checkpoint(ckpt, &err));
    EXPECT_NE(err.find("config fingerprint"), std::string::npos) << err;
  }
}

TEST(CheckpointRestore, CorruptFrameRejectedWithDiagnostic) {
  const WorkloadProfile p = small_profile();
  const SimConfig cfg = make_sim_config(4, ptb_spec());
  std::string ckpt = capture_at(p, cfg, 500);
  ASSERT_FALSE(ckpt.empty());
  ckpt[ckpt.size() / 2] ^= 0x10;  // payload bit-flip -> checksum
  CmpSimulator sim(cfg, p);
  std::string err;
  EXPECT_FALSE(sim.restore_checkpoint(ckpt, &err));
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

// --- restore-vs-continuous exactness ----------------------------------------

// The hammer: capture at C under shard count S1, restore into a fresh
// simulator running at shard count S2, and require the resumed run to be
// bit-identical to the uninterrupted run — results, trace bytes, stats
// dump. Covers the {1,4} x {1,4} grid for both a PTB technique and the
// thrifty baseline (different sequential-pre-pass shape).
void restore_hammer(const TechniqueSpec& tech) {
  const WorkloadProfile p = small_profile();
  RunOptions opts;
  opts.trace_categories = kTraceAll;
  opts.stats = true;
  opts.stats_sample_every = 256;

  for (const std::uint32_t capture_threads : {1u, 4u}) {
    SimConfig cfg = make_sim_config(4, tech);
    cfg.sim_threads = capture_threads;
    const RunResult full = CmpSimulator(cfg, p).run(opts);
    ASSERT_FALSE(full.hit_max_cycles);
    const Cycle mid = full.cycles / 2;
    const std::string ckpt = capture_at(p, cfg, mid, opts);
    ASSERT_FALSE(ckpt.empty());

    for (const std::uint32_t resume_threads : {1u, 4u}) {
      SCOPED_TRACE(std::to_string(capture_threads) + " threads -> " +
                   std::to_string(resume_threads));
      SimConfig rcfg = cfg;
      rcfg.sim_threads = resume_threads;
      CmpSimulator sim(rcfg, p);
      std::string err;
      ASSERT_TRUE(sim.restore_checkpoint(ckpt, &err)) << err;
      const RunResult resumed = sim.run(opts);
      expect_bit_identical(full, resumed);
      ASSERT_NE(full.trace, nullptr);
      ASSERT_NE(resumed.trace, nullptr);
      EXPECT_EQ(full.trace->serialize(), resumed.trace->serialize());
      ASSERT_NE(resumed.stats, nullptr);
      EXPECT_EQ(stats_json(full, /*include_volatile=*/false),
                stats_json(resumed, /*include_volatile=*/false));
    }
  }
}

TEST(CheckpointRestore, MidRunResumeBitIdenticalPtb) {
  restore_hammer(ptb_spec());
}

TEST(CheckpointRestore, MidRunResumeBitIdenticalThrifty) {
  restore_hammer({"thrifty", TechniqueKind::kThriftyBarrier, false,
                  PtbPolicy::kToAll, 0.0});
}

// A restored simulator consumes its carry: the frame only redirects the
// next run().
TEST(CheckpointRestore, CarryConsumedBySingleRun) {
  const WorkloadProfile p = small_profile();
  const SimConfig cfg = make_sim_config(4, ptb_spec());
  const RunResult full = CmpSimulator(cfg, p).run();
  const std::string ckpt = capture_at(p, cfg, full.cycles / 2);
  CmpSimulator sim(cfg, p);
  ASSERT_TRUE(sim.restore_checkpoint(ckpt));
  const RunResult resumed = sim.run();
  expect_bit_identical(full, resumed);
}

// --- warm forking -----------------------------------------------------------

// A cycle-0 frame captured right after functional warmup under the *base*
// technique restores under a PTB config (different config fingerprint) and
// reproduces the PTB run's from-scratch results bit for bit: the warmed
// image is technique/budget-independent, so one image serves a sweep.
TEST(CheckpointRestore, WarmFrameForksAcrossTechniques) {
  const WorkloadProfile p = small_profile();
  const std::string warm = capture_at(p, make_sim_config(4, base_spec()), 0);
  ASSERT_FALSE(warm.empty());

  for (const TechniqueSpec& tech :
       {ptb_spec(),
        TechniqueSpec{"dvfs", TechniqueKind::kDvfs, false, PtbPolicy::kToAll,
                      0.0}}) {
    SCOPED_TRACE(tech.label);
    const SimConfig cfg = make_sim_config(4, tech);
    const RunResult scratch = CmpSimulator(cfg, p).run();
    CmpSimulator sim(cfg, p);
    std::string err;
    ASSERT_TRUE(sim.restore_checkpoint(warm, &err)) << err;
    expect_bit_identical(scratch, sim.run());
  }
}

TEST(CheckpointFingerprint, ExcludesTechniqueIncludesCycle) {
  const SimConfig a = make_sim_config(4, base_spec());
  const SimConfig b = make_sim_config(4, ptb_spec());
  EXPECT_EQ(checkpoint_fingerprint(a, "fft", 0),
            checkpoint_fingerprint(b, "fft", 0));
  EXPECT_NE(checkpoint_fingerprint(a, "fft", 0),
            checkpoint_fingerprint(a, "fft", 1000));
  EXPECT_NE(checkpoint_fingerprint(a, "fft", 0),
            checkpoint_fingerprint(a, "lu", 0));
  SimConfig c = a;
  c.seed = a.seed + 1;
  EXPECT_NE(checkpoint_fingerprint(a, "fft", 0),
            checkpoint_fingerprint(c, "fft", 0));
}

// --- sampled simulation -----------------------------------------------------

TEST(SampledSim, PreservesCompletionAndScalesEnergy) {
  const WorkloadProfile p = small_profile();
  SimConfig full_cfg = make_sim_config(4, base_spec());
  const RunResult full = CmpSimulator(full_cfg, p).run();
  ASSERT_FALSE(full.hit_max_cycles);

  SimConfig cfg = full_cfg;
  cfg.sample_detail = 200;
  cfg.sample_period = 1000;
  const RunResult sampled = CmpSimulator(cfg, p).run();
  ASSERT_FALSE(sampled.hit_max_cycles);
  // Fast-forward never skips an architectural tick: completion timing is
  // exact, per-core committed counts included.
  EXPECT_EQ(sampled.cycles, full.cycles);
  EXPECT_EQ(sampled.total_committed, full.total_committed);
  for (std::size_t i = 0; i < full.cores.size(); ++i) {
    EXPECT_EQ(sampled.cores[i].finish_cycle, full.cores[i].finish_cycle);
    EXPECT_EQ(sampled.cores[i].committed, full.cores[i].committed);
  }
  // Energy is extrapolated from a 20% duty cycle: approximate, but it must
  // land in the right ballpark (EXPERIMENTS.md quantifies the error).
  EXPECT_GT(sampled.energy, 0.5 * full.energy);
  EXPECT_LT(sampled.energy, 2.0 * full.energy);
}

TEST(SampledSim, DeterministicAcrossShardCounts) {
  const WorkloadProfile p = small_profile();
  SimConfig cfg = make_sim_config(4, ptb_spec());
  cfg.sample_detail = 250;
  cfg.sample_period = 1000;
  SimConfig four = cfg;
  four.sim_threads = 4;
  expect_bit_identical(CmpSimulator(cfg, p).run(),
                       CmpSimulator(four, p).run());
}

TEST(SampledSim, KnobsFoldIntoConfigFingerprintWhenActive) {
  const SimConfig off = make_sim_config(4, base_spec());
  SimConfig on = off;
  on.sample_detail = 200;
  on.sample_period = 1000;
  // Result-changing -> distinct config fingerprint; machine unchanged.
  EXPECT_NE(config_fingerprint(off), config_fingerprint(on));
  EXPECT_EQ(machine_fingerprint(off), machine_fingerprint(on));
  SimConfig other = on;
  other.sample_detail = 400;
  EXPECT_NE(config_fingerprint(on), config_fingerprint(other));
}

}  // namespace
}  // namespace ptb

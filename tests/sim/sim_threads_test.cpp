// Byte-identity hammers for the intra-run sharded cycle loop
// (SimConfig::sim_threads, sim/shard_pool.hpp): the determinism contract
// (DESIGN.md "Threading model & determinism contract") promises that every
// result byte — RunResult metrics, serialized event traces, stats dumps —
// is a pure function of (profile, config, seed) and independent of how many
// host threads the cycle loop is sharded across. These tests pin that
// promise across the technique space (the controllers differ in how much
// of the cycle must run sequentially) and stress the epoch barriers with
// randomized worker jitter, which is what the TSan preset chews on.
#include "sim/shard_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "trace/trace.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

// Lock- and barrier-heavy so the sequential pre-pass (sync completions,
// thrifty/meeting gating) is genuinely exercised, not just the fast path.
WorkloadProfile sync_heavy_profile() {
  WorkloadProfile p;
  p.name = "shards";
  p.iterations = 3;
  p.ops_per_iteration = 4000;
  p.imbalance = 0.25;
  p.num_locks = 2;
  p.cs_per_1k_ops = 4.0;
  p.cs_len_ops = 12;
  p.hot_lock_frac = 0.5;
  return p;
}

// One technique per controller family: each family moves a different set of
// per-cycle work between the parallel region and the sequential point.
std::vector<TechniqueSpec> sweep_techniques() {
  return {
      {"base", TechniqueKind::kNone, false, PtbPolicy::kToAll, 0.0},
      {"dvfs", TechniqueKind::kDvfs, false, PtbPolicy::kToAll, 0.0},
      {"ptb+2l(dyn)", TechniqueKind::kTwoLevel, true, PtbPolicy::kDynamic,
       0.0},
      {"thrifty", TechniqueKind::kThriftyBarrier, false, PtbPolicy::kToAll,
       0.0},
      {"meeting", TechniqueKind::kMeetingPoints, false, PtbPolicy::kToAll,
       0.0},
  };
}

RunResult run_sharded(const WorkloadProfile& p, SimConfig cfg,
                      std::uint32_t threads, const RunOptions& opts = {}) {
  cfg.sim_threads = threads;
  return CmpSimulator(cfg, p).run(opts);
}

// Exact (bitwise, EXPECT_EQ on doubles) comparison of every deterministic
// RunResult field, including the per-core breakdowns the figures consume.
void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.num_cores, b.num_cores);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.hit_max_cycles, b.hit_max_cycles);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.aopb, b.aopb);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.peak_power, b.peak_power);
  EXPECT_EQ(a.power.count(), b.power.count());
  EXPECT_EQ(a.power.mean(), b.power.mean());
  EXPECT_EQ(a.power.max(), b.power.max());
  EXPECT_EQ(a.power.variance(), b.power.variance());
  EXPECT_EQ(a.spin_energy, b.spin_energy);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.tokens_donated, b.tokens_donated);
  EXPECT_EQ(a.tokens_granted, b.tokens_granted);
  EXPECT_EQ(a.tokens_evaporated, b.tokens_evaporated);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
  EXPECT_EQ(a.to_one_cycles, b.to_one_cycles);
  EXPECT_EQ(a.to_all_cycles, b.to_all_cycles);
  EXPECT_EQ(a.spin_gated_cycles, b.spin_gated_cycles);
  EXPECT_EQ(a.barrier_sleep_cycles, b.barrier_sleep_cycles);
  EXPECT_EQ(a.meeting_point_episodes, b.meeting_point_episodes);
  EXPECT_EQ(a.machine_fingerprint, b.machine_fingerprint);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    SCOPED_TRACE(i);
    const CoreResult& x = a.cores[i];
    const CoreResult& y = b.cores[i];
    EXPECT_EQ(x.finish_cycle, y.finish_cycle);
    EXPECT_EQ(x.committed, y.committed);
    EXPECT_EQ(x.flushes, y.flushes);
    for (std::uint32_t s = 0; s < kNumExecStates; ++s) {
      EXPECT_EQ(x.state_cycles[s], y.state_cycles[s]);
    }
    EXPECT_EQ(x.spin_energy, y.spin_energy);
    EXPECT_EQ(x.energy, y.energy);
    EXPECT_EQ(x.temp_mean, y.temp_mean);
    EXPECT_EQ(x.temp_std, y.temp_std);
  }
}

// --- the pool itself --------------------------------------------------------

TEST(ShardPool, SerialFastPathRunsInline) {
  ScopedThreadRole seq(g_sequential_point);  // we orchestrate
  ShardPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  int calls = 0;
  pool.run([&](std::uint32_t s) {
    EXPECT_EQ(s, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ShardPool, EveryShardRunsOncePerEpoch) {
  constexpr std::uint32_t kThreads = 4;
  ScopedThreadRole seq(g_sequential_point);  // we orchestrate
  ShardPool pool(kThreads);
  std::vector<std::atomic<std::uint32_t>> hits(kThreads);
  for (auto& h : hits) h.store(0);
  for (int epoch = 0; epoch < 100; ++epoch) {
    pool.run([&](std::uint32_t s) { ++hits[s]; });
  }
  for (std::uint32_t s = 0; s < kThreads; ++s) {
    EXPECT_EQ(hits[s].load(), 100u) << "shard " << s;
  }
}

TEST(ShardPool, EpochBarrierPublishesShardWrites) {
  // Main must observe every worker's write after run() returns, and
  // workers must observe main's writes from before run() — the visibility
  // contract the cycle loop leans on for the CycleFrame.
  ScopedThreadRole seq(g_sequential_point);  // we orchestrate
  ShardPool pool(4);
  std::vector<std::uint64_t> slot(4, 0);
  std::uint64_t input = 0;
  for (std::uint64_t round = 1; round <= 200; ++round) {
    input = round * 3;
    pool.run([&](std::uint32_t s) { slot[s] = input + s; });
    for (std::uint32_t s = 0; s < 4; ++s) {
      ASSERT_EQ(slot[s], round * 3 + s);
    }
  }
}

// --- RunResult identity -----------------------------------------------------

// The headline guarantee: --sim-threads 1 and --sim-threads 4 produce
// bit-identical results for every technique family.
TEST(SimThreads, OneVsFourBitIdenticalAcrossTechniques) {
  const WorkloadProfile p = sync_heavy_profile();
  for (const TechniqueSpec& t : sweep_techniques()) {
    SCOPED_TRACE(t.label);
    const SimConfig cfg = make_sim_config(8, t);
    const RunResult serial = run_sharded(p, cfg, 1);
    const RunResult sharded = run_sharded(p, cfg, 4);
    expect_bit_identical(serial, sharded);
  }
}

// Ragged shard boundaries (cores not divisible by threads) and a thread
// count above the core count (clamped) must not change a byte either.
TEST(SimThreads, RaggedAndOversizedShardCounts) {
  const WorkloadProfile p = sync_heavy_profile();
  const SimConfig cfg =
      make_sim_config(4, sweep_techniques()[2]);  // PTB+2Level(dyn)
  const RunResult one = run_sharded(p, cfg, 1);
  for (const std::uint32_t threads : {2u, 3u, 7u}) {
    SCOPED_TRACE(threads);
    expect_bit_identical(one, run_sharded(p, cfg, threads));
  }
}

// The clustered balancer variant aggregates per-cluster at the sequential
// point; shard boundaries deliberately straddle cluster boundaries here.
TEST(SimThreads, ClusteredBalancerBitIdentical) {
  const WorkloadProfile p = sync_heavy_profile();
  SimConfig cfg = make_sim_config(8, sweep_techniques()[2]);
  cfg.ptb.cluster_size = 4;
  expect_bit_identical(run_sharded(p, cfg, 1), run_sharded(p, cfg, 3));
}

// sim_threads is a wall-clock knob, not an experiment parameter: it must
// not contribute to either fingerprint (a sharded run normalizes against a
// serial base run).
TEST(SimThreads, ExcludedFromFingerprints) {
  SimConfig a = make_sim_config(8, sweep_techniques()[2]);
  SimConfig b = a;
  a.sim_threads = 1;
  b.sim_threads = 4;
  EXPECT_EQ(machine_fingerprint(a), machine_fingerprint(b));
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));
}

// Full-level auditing at 4 shards: the per-cycle audit point also verifies
// the shard merges (finished recount, drained deferral queues), so a clean
// audited run is direct evidence the merge invariants held every cycle.
TEST(SimThreads, AuditedShardedRunIsClean) {
  const WorkloadProfile p = sync_heavy_profile();
  SimConfig cfg = make_sim_config(8, sweep_techniques()[2]);
  cfg.audit_level = AuditLevel::kFull;
  const RunResult r = run_sharded(p, cfg, 4);
  EXPECT_FALSE(r.hit_max_cycles);
#if PTB_AUDIT_ENABLED
  EXPECT_GT(r.audit_checks, 0u);
#endif
}

// --- trace / stats identity -------------------------------------------------

// The serialized event trace — emission order included — must be
// byte-identical across shard counts (per-core staging, flushed in core
// order at the sequential point).
TEST(SimThreads, TraceBytesIdenticalAcrossShardCounts) {
  const WorkloadProfile p = sync_heavy_profile();
  const SimConfig cfg = make_sim_config(8, sweep_techniques()[2]);
  RunOptions opts;
  opts.trace_categories = kTraceAll;
  const RunResult one = run_sharded(p, cfg, 1, opts);
  const RunResult four = run_sharded(p, cfg, 4, opts);
  ASSERT_NE(one.trace, nullptr);
  ASSERT_NE(four.trace, nullptr);
  EXPECT_EQ(one.trace->serialize(), four.trace->serialize());
}

// The deterministic stats dump (counters, distributions, sampled series)
// must match byte for byte as well.
TEST(SimThreads, StatsDumpBytesIdenticalAcrossShardCounts) {
  const WorkloadProfile p = sync_heavy_profile();
  const SimConfig cfg = make_sim_config(8, sweep_techniques()[2]);
  RunOptions opts;
  opts.stats = true;
  opts.stats_sample_every = 512;
  const RunResult one = run_sharded(p, cfg, 1, opts);
  const RunResult four = run_sharded(p, cfg, 4, opts);
  ASSERT_NE(one.stats, nullptr);
  ASSERT_NE(four.stats, nullptr);
  EXPECT_EQ(stats_json(one, /*include_volatile=*/false),
            stats_json(four, /*include_volatile=*/false));
}

// --- scheduling stress (the TSan workhorse) ---------------------------------

// Randomized per-epoch worker jitter shuffles which shard reaches each
// phase first without changing any simulated value; repeated runs must
// still match the unjittered serial run bit for bit. Under the tsan preset
// this doubles as a data-race hunt over the whole phased loop.
TEST(SimThreads, JitteredWorkersStayBitIdentical) {
  const WorkloadProfile p = sync_heavy_profile();
  const SimConfig cfg = make_sim_config(8, sweep_techniques()[2]);
  RunOptions opts;
  opts.trace_categories = kTraceAll;
  const RunResult base = run_sharded(p, cfg, 1, opts);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    RunOptions jittered = opts;
    jittered.shard_jitter_ns = 2000;
    const RunResult r = run_sharded(p, cfg, 4, jittered);
    expect_bit_identical(base, r);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_EQ(base.trace->serialize(), r.trace->serialize());
  }
}

}  // namespace
}  // namespace ptb

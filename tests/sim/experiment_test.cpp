#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "sim/reporting.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

TEST(Techniques, StandardMatrixShape) {
  const auto t = standard_techniques(PtbPolicy::kToAll);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].label, "DVFS");
  EXPECT_EQ(t[1].label, "DFS");
  EXPECT_EQ(t[2].label, "2Level");
  EXPECT_EQ(t[3].label, "PTB+2Level");
  EXPECT_TRUE(t[3].ptb);
  EXPECT_FALSE(t[0].ptb);
  EXPECT_EQ(t[0].kind, TechniqueKind::kDvfs);
  EXPECT_EQ(t[1].kind, TechniqueKind::kDfs);
  EXPECT_EQ(t[2].kind, TechniqueKind::kTwoLevel);
  EXPECT_EQ(t[3].kind, TechniqueKind::kTwoLevel);
}

TEST(Techniques, NaiveMatrixHasNoPtb) {
  for (const auto& t : naive_techniques()) EXPECT_FALSE(t.ptb);
}

TEST(MakeSimConfig, AppliesSpec) {
  TechniqueSpec t{"PTB", TechniqueKind::kTwoLevel, true, PtbPolicy::kToOne,
                  0.2};
  const SimConfig cfg = make_sim_config(8, t, 77);
  EXPECT_EQ(cfg.num_cores, 8u);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.technique, TechniqueKind::kTwoLevel);
  EXPECT_TRUE(cfg.ptb.enabled);
  EXPECT_EQ(cfg.ptb.policy, PtbPolicy::kToOne);
  EXPECT_DOUBLE_EQ(cfg.ptb.relax_threshold, 0.2);
}

TEST(Normalize, FigureSemantics) {
  RunResult base, r;
  base.energy = 1000.0;
  base.aopb = 200.0;
  base.cycles = 10000;
  r.energy = 970.0;
  r.aopb = 16.0;
  r.cycles = 10300;
  const Normalized n = normalize(base, r);
  EXPECT_NEAR(n.energy_pct, -3.0, 1e-9);
  EXPECT_NEAR(n.aopb_pct, 8.0, 1e-9);
  EXPECT_NEAR(n.slowdown_pct, 3.0, 1e-9);
}

TEST(Normalize, ZeroBaseAopbReportsZero) {
  RunResult base, r;
  base.energy = 100.0;
  base.aopb = 0.0;
  base.cycles = 100;
  r = base;
  EXPECT_DOUBLE_EQ(normalize(base, r).aopb_pct, 0.0);
}

TEST(BaseRunCache, CachesByBenchmarkAndCores) {
  BaseRunCache cache;
  const auto& p = benchmark_by_name("blackscholes");
  const RunResult& a = cache.get(p, 2);
  const RunResult& b = cache.get(p, 2);
  EXPECT_EQ(&a, &b);  // same object: cached
  const RunResult& c = cache.get(p, 4);
  EXPECT_NE(&a, &c);
}

TEST(FigureGrid, AverageRow) {
  FigureGrid g;
  g.technique_labels = {"A", "B"};
  g.row_labels = {"x", "y"};
  g.grid = {{{10.0, 20.0, 1.0}, {30.0, 40.0, 2.0}},
            {{20.0, 40.0, 3.0}, {10.0, 20.0, 4.0}}};
  g.append_average();
  ASSERT_EQ(g.row_labels.back(), "Avg.");
  EXPECT_NEAR(g.grid.back()[0].energy_pct, 15.0, 1e-9);
  EXPECT_NEAR(g.grid.back()[0].aopb_pct, 30.0, 1e-9);
  EXPECT_NEAR(g.grid.back()[1].slowdown_pct, 3.0, 1e-9);
}

}  // namespace
}  // namespace ptb

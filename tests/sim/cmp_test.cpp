// CMP simulator end-to-end behaviour on small configurations.
#include "sim/cmp.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

WorkloadProfile small_profile() {
  WorkloadProfile p;
  p.name = "small";
  p.iterations = 2;
  p.ops_per_iteration = 4000;
  p.imbalance = 0.1;
  p.num_locks = 2;
  p.cs_per_1k_ops = 4.0;
  p.cs_len_ops = 10;
  return p;
}

SimConfig cfg_for(std::uint32_t cores,
                  TechniqueKind kind = TechniqueKind::kNone,
                  bool ptb = false) {
  TechniqueSpec t{"t", kind, ptb, PtbPolicy::kToAll, 0.0};
  SimConfig cfg = make_sim_config(cores, t);
  cfg.max_cycles = 500000;
  return cfg;
}

TEST(CmpSimulator, RunsToCompletion) {
  CmpSimulator sim(cfg_for(4), small_profile());
  const RunResult r = sim.run();
  EXPECT_FALSE(r.hit_max_cycles);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.total_committed, 2u * 4000u);
  EXPECT_GT(r.energy, 0.0);
}

TEST(CmpSimulator, DeterministicAcrossRuns) {
  const WorkloadProfile p = small_profile();
  const RunResult a = CmpSimulator(cfg_for(4), p).run();
  const RunResult b = CmpSimulator(cfg_for(4), p).run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_DOUBLE_EQ(a.aopb, b.aopb);
  EXPECT_EQ(a.total_committed, b.total_committed);
}

TEST(CmpSimulator, SeedChangesExecution) {
  const WorkloadProfile p = small_profile();
  SimConfig c1 = cfg_for(4), c2 = cfg_for(4);
  c2.seed = 999;
  const RunResult a = CmpSimulator(c1, p).run();
  const RunResult b = CmpSimulator(c2, p).run();
  EXPECT_NE(a.energy, b.energy);
}

TEST(CmpSimulator, EnergyEqualsPowerIntegral) {
  CmpSimulator sim(cfg_for(2), small_profile());
  const RunResult r = sim.run();
  EXPECT_NEAR(r.energy, r.power.mean() * static_cast<double>(r.cycles),
              r.energy * 1e-9);
}

TEST(CmpSimulator, AopbIsZeroWithInfiniteBudget) {
  SimConfig cfg = cfg_for(2);
  cfg.budget_fraction = 100.0;  // budget far above any possible power
  CmpSimulator sim(cfg, small_profile());
  const RunResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.aopb, 0.0);
}

TEST(CmpSimulator, SpinEnergyPositiveWithContention) {
  WorkloadProfile p = small_profile();
  p.cs_per_1k_ops = 20.0;
  p.hot_lock_frac = 1.0;
  CmpSimulator sim(cfg_for(4), p);
  const RunResult r = sim.run();
  EXPECT_GT(r.spin_energy, 0.0);
  EXPECT_LT(r.spin_energy, r.energy);
}

TEST(CmpSimulator, AllCoresCommitWork) {
  CmpSimulator sim(cfg_for(4), small_profile());
  const RunResult r = sim.run();
  for (const auto& c : r.cores) {
    EXPECT_GT(c.committed, 1000u);
    EXPECT_GT(c.finish_cycle, 0u);
  }
}

TEST(CmpSimulator, CoherenceInvariantHoldsAfterRun) {
  CmpSimulator sim(cfg_for(4), small_profile());
  sim.run();
  sim.memory().check_swmr();
}

TEST(CmpSimulator, PtbBalancerMovesTokensUnderContention) {
  WorkloadProfile p = small_profile();
  p.cs_per_1k_ops = 20.0;
  p.hot_lock_frac = 1.0;
  CmpSimulator sim(cfg_for(4, TechniqueKind::kTwoLevel, true), p);
  const RunResult r = sim.run();
  EXPECT_GT(r.tokens_donated, 0.0);
  EXPECT_GT(r.tokens_granted, 0.0);
  EXPECT_LE(r.tokens_granted, r.tokens_donated + 1e-6);
}

TEST(CmpSimulator, TracesRecordedOnRequest) {
  RunOptions opts;
  opts.record_cmp_trace = true;
  opts.record_core_traces = true;
  CmpSimulator sim(cfg_for(2), small_profile());
  const RunResult r = sim.run(opts);
  EXPECT_GT(r.cmp_power_trace.size(), 10u);
  ASSERT_EQ(r.core_power_traces.size(), 2u);
  EXPECT_GT(r.core_power_traces[0].size(), 10u);
}

TEST(CmpSimulator, ThermalTracksEnergy) {
  CmpSimulator sim(cfg_for(2), small_profile());
  const RunResult r = sim.run();
  for (const auto& c : r.cores) {
    EXPECT_GT(c.temp_mean, 0.0);
  }
}

TEST(CmpSimulator, DvfsTechniqueChangesModes) {
  // Force a crushing budget so DVFS must engage.
  SimConfig cfg = cfg_for(4, TechniqueKind::kDvfs);
  cfg.budget_fraction = 0.2;
  CmpSimulator sim(cfg, small_profile());
  const RunResult r = sim.run();
  EXPECT_GT(r.dvfs_transitions, 0u);
}

TEST(CmpSimulator, TightBudgetSlowsExecution) {
  const WorkloadProfile p = small_profile();
  SimConfig free_cfg = cfg_for(4, TechniqueKind::kNone);
  SimConfig tight = cfg_for(4, TechniqueKind::kTwoLevel);
  tight.budget_fraction = 0.25;
  const RunResult a = CmpSimulator(free_cfg, p).run();
  const RunResult b = CmpSimulator(tight, p).run();
  EXPECT_GT(b.cycles, a.cycles);
  // And it does cut over-budget energy relative to the budget line.
  EXPECT_LT(b.power.mean(), a.power.mean());
}

TEST(CmpSimulator, SingleCoreDegenerateCaseWorks) {
  WorkloadProfile p = small_profile();
  p.num_locks = 1;
  CmpSimulator sim(cfg_for(1), p);
  const RunResult r = sim.run();
  EXPECT_FALSE(r.hit_max_cycles);
  EXPECT_EQ(r.cores.size(), 1u);
}

}  // namespace
}  // namespace ptb

#include "sim/reporting.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

FigureGrid sample_grid() {
  FigureGrid g;
  g.technique_labels = {"DVFS", "PTB"};
  g.row_labels = {"fft", "ocean"};
  g.grid = {{{1.5, 88.0, 0.2}, {-2.0, 8.0, 1.0}},
            {{0.5, 80.0, 0.0}, {-1.0, 12.0, 2.0}}};
  return g;
}

TEST(FigureGrid, AverageAppendsRow) {
  FigureGrid g = sample_grid();
  g.append_average();
  ASSERT_EQ(g.grid.size(), 3u);
  EXPECT_EQ(g.row_labels.back(), "Avg.");
  EXPECT_NEAR(g.grid.back()[0].energy_pct, 1.0, 1e-12);
  EXPECT_NEAR(g.grid.back()[1].aopb_pct, 10.0, 1e-12);
}

TEST(FigureGridDeath, EmptyGridCannotAverage) {
  FigureGrid g;
  g.technique_labels = {"A"};
  EXPECT_DEATH(g.append_average(), "empty grid");
}

TEST(Reporting, PrintFunctionsDoNotCrash) {
  // Smoke: the renderers must handle a normal grid without aborting.
  FigureGrid g = sample_grid();
  g.append_average();
  testing::internal::CaptureStdout();
  print_energy_aopb(g, "Test figure");
  print_slowdown(g, "Test figure");
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Test figure"), std::string::npos);
  EXPECT_NE(out.find("Normalized Energy"), std::string::npos);
  EXPECT_NE(out.find("Normalized AoPB"), std::string::npos);
  EXPECT_NE(out.find("Performance Slowdown"), std::string::npos);
  EXPECT_NE(out.find("fft"), std::string::npos);
  EXPECT_NE(out.find("Avg."), std::string::npos);
}

TEST(ReplicatedResult, AggregatesAcrossSeeds) {
  // Two seeds of a tiny run: stats must have count 2 and finite moments.
  WorkloadProfile p;
  p.name = "rep";
  p.iterations = 1;
  p.ops_per_iteration = 2000;
  p.barrier_per_iter = false;
  TechniqueSpec t{"2l", TechniqueKind::kTwoLevel, false, PtbPolicy::kToAll,
                  0.0};
  RunPool pool(2);
  const ReplicatedResult r = run_replicated(p, 2, t, 2, pool);
  EXPECT_EQ(r.energy_pct.count(), 2u);
  EXPECT_EQ(r.aopb_pct.count(), 2u);
  EXPECT_EQ(r.slowdown_pct.count(), 2u);
  EXPECT_GE(r.aopb_pct.min(), 0.0);
}

}  // namespace
}  // namespace ptb

// DiskRunCache + RunArtifact (sim/experiment.hpp, sim/disk_cache.cpp): the
// persistent content-addressed store behind ptb-serve. The cases pin the
// contract the daemon's byte-identity guarantee rests on:
//   - a cached answer is byte-identical to a live re-simulation;
//   - a truncated or bit-flipped entry is rejected (counted, unlinked) and
//     transparently re-simulated — corrupt bytes are never served;
//   - concurrent readers/writers of one key race benignly (the TSan preset
//     chews on the hammer case).
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "sim/checkpoint.hpp"
#include "sim/cmp.hpp"
#include "sim/reporting.hpp"
#include "sim/trace_export.hpp"
#include "workloads/phases.hpp"

namespace ptb {
namespace {

// Small but non-trivial: lock contention so the artifact carries real
// spin/energy numbers, ~milliseconds per simulation.
WorkloadProfile fast_profile() {
  WorkloadProfile p;
  p.name = "cachetest";
  p.iterations = 3;
  p.ops_per_iteration = 4000;
  p.imbalance = 0.25;
  p.num_locks = 2;
  p.cs_per_1k_ops = 4.0;
  p.cs_len_ops = 12;
  p.hot_lock_frac = 0.5;
  return p;
}

SimConfig fast_config() {
  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.max_cycles = 50000;
  return cfg;
}

std::string temp_cache_dir(const char* tag) {
  // TempDir() outlives the process: wipe the slot so a "fresh cache" case
  // stays fresh on re-runs.
  const std::string dir = testing::TempDir() + "/ptb_disk_cache_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

void corrupt_file_at(const std::string& path, std::size_t offset,
                     char byte) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
}

// XORs one byte so the corruption is guaranteed to change the file
// (corrupt_file_at with a fixed byte is a no-op when it already matches).
void flip_byte_at(const std::string& path, std::size_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  char b = 0;
  ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
  b = static_cast<char>(b ^ 0x01);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(RunArtifact, PayloadParseRoundTrip) {
  const WorkloadProfile p = fast_profile();
  const SimConfig cfg = fast_config();
  RunOptions opts;
  opts.stats = true;
  const RunResult r = run_one(p, cfg, opts);
  const RunArtifact a = RunArtifact::from_result(p.name, cfg, r);
  EXPECT_EQ(a.key, DiskRunCache::run_key(p.name, cfg));
  EXPECT_EQ(a.config_fingerprint, config_fingerprint(cfg));
  EXPECT_FALSE(a.stats_json.empty()) << "stats-enabled run lost its dump";

  RunArtifact back;
  ASSERT_TRUE(RunArtifact::parse(a.to_payload(), back));
  // Canonical emission: re-serializing the parsed artifact reproduces the
  // payload byte for byte.
  EXPECT_EQ(back.to_payload(), a.to_payload());
  EXPECT_EQ(back.cycles, r.cycles);
  EXPECT_EQ(back.summary_kv, run_summary_kv(r));

  RunArtifact junk;
  EXPECT_FALSE(RunArtifact::parse("not json", junk));
  EXPECT_FALSE(RunArtifact::parse("{\"schema_version\":999}", junk));
}

TEST(DiskRunCache, MissThenHitIsByteIdentical) {
  const DiskRunCache cache(temp_cache_dir("roundtrip"));
  const WorkloadProfile p = fast_profile();
  const SimConfig cfg = fast_config();

  bool hit = true;
  const std::string first = cached_run_payload(cache, p, cfg, hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stores(), 1u);

  const std::string second = cached_run_payload(cache, p, cfg, hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(second, first) << "cached payload differs from live run";

  // And the cached bytes really are a fresh simulation's bytes.
  RunOptions opts;
  opts.stats = true;
  const RunResult r = run_one(p, cfg, opts);
  EXPECT_EQ(RunArtifact::from_result(p.name, cfg, r).to_payload(), first);
}

TEST(DiskRunCache, DifferentConfigsGetDifferentAddresses) {
  const WorkloadProfile p = fast_profile();
  SimConfig a = fast_config();
  SimConfig b = fast_config();
  b.seed = 99;  // fingerprinted field -> new address
  EXPECT_NE(DiskRunCache::run_key(p.name, a),
            DiskRunCache::run_key(p.name, b));
  EXPECT_NE(DiskRunCache::run_key("fft", a),
            DiskRunCache::run_key("radix", a));
}

TEST(DiskRunCache, TruncatedEntryRejectedAndResimulated) {
  const DiskRunCache cache(temp_cache_dir("truncated"));
  const WorkloadProfile p = fast_profile();
  const SimConfig cfg = fast_config();
  const std::uint64_t key = DiskRunCache::run_key(p.name, cfg);

  bool hit = true;
  const std::string good = cached_run_payload(cache, p, cfg, hit);
  ASSERT_FALSE(hit);

  // Simulate a crashed writer published by a buggy rename: chop the file
  // mid-payload. The length field no longer matches -> corrupt, unlinked.
  const std::string path = cache.path_for(key);
  std::filesystem::resize_file(path, 24 + good.size() / 2);
  std::string payload;
  EXPECT_FALSE(cache.load(key, payload));
  EXPECT_EQ(cache.corrupt(), 1u);
  EXPECT_FALSE(std::filesystem::exists(path)) << "corrupt entry not healed";

  // The service path transparently re-simulates and re-stores.
  const std::string again = cached_run_payload(cache, p, cfg, hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(again, good);
  EXPECT_TRUE(cache.load(key, payload));
  EXPECT_EQ(payload, good);
}

TEST(DiskRunCache, BitFlipAndForeignFileRejected) {
  const DiskRunCache cache(temp_cache_dir("bitflip"));
  const WorkloadProfile p = fast_profile();
  const SimConfig cfg = fast_config();
  const std::uint64_t key = DiskRunCache::run_key(p.name, cfg);

  bool hit = true;
  cached_run_payload(cache, p, cfg, hit);
  const std::string path = cache.path_for(key);

  // Payload-level bit flip: framing is intact, so only the artifact-parse
  // backstop can catch it. '\0' mid-JSON is unparseable by construction.
  corrupt_file_at(path, 24 + 5, '\0');
  std::string payload;
  EXPECT_FALSE(cache.load(key, payload));
  EXPECT_EQ(cache.corrupt(), 1u);

  // Foreign magic: refill the slot, then stamp a wrong magic byte.
  cached_run_payload(cache, p, cfg, hit);
  corrupt_file_at(path, 0, 'X');
  EXPECT_FALSE(cache.load(key, payload));
  EXPECT_EQ(cache.corrupt(), 2u);

  // A key mismatch (entry filed under the wrong address) is also corrupt.
  cached_run_payload(cache, p, cfg, hit);
  std::filesystem::rename(path, cache.path_for(key ^ 1));
  EXPECT_FALSE(cache.load(key ^ 1, payload));
  EXPECT_EQ(cache.corrupt(), 3u);
}

TEST(DiskRunCache, ConcurrentReadersAndWritersOneKey) {
  // The benign-race contract: rename is atomic, so under any interleaving
  // of loads and stores a reader sees a miss or one complete, valid
  // payload — never torn bytes. TSan runs this test too (tests tier).
  const DiskRunCache cache(temp_cache_dir("hammer"));
  const std::uint64_t key = 0x1234abcd5678ef90ull;

  // A synthetic-but-valid artifact payload (load() parses the payload, so
  // raw junk would read as corrupt, not as a hit).
  RunArtifact a;
  a.benchmark = "hammer";
  a.num_cores = 2;
  a.key = key;
  a.summary_kv = "cycles=1";
  const std::string payload = a.to_payload();
  {
    RunArtifact check;
    ASSERT_TRUE(RunArtifact::parse(payload, check));
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::atomic<int> torn{0};
  std::vector<std::thread> ts;
  ts.reserve(kThreads * 2);
  for (int w = 0; w < kThreads; ++w) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        EXPECT_TRUE(cache.store(key, payload));
      }
    });
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::string got;
        if (cache.load(key, got) && got != payload) torn.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(torn.load(), 0) << "reader observed torn cache bytes";
  std::string got;
  EXPECT_TRUE(cache.load(key, got));
  EXPECT_EQ(got, payload);
}

TEST(DiskRunCache, QuotaEvictsOldestPublishedEntriesFirst) {
  DiskRunCache cache(temp_cache_dir("quota"));
  namespace fs = std::filesystem;

  // Four same-size synthetic artifacts under distinct keys; ages are
  // pinned explicitly so (mtime, name) eviction order is deterministic
  // regardless of how fast the stores land.
  const auto payload_for = [](std::uint64_t key) {
    RunArtifact a;
    a.benchmark = "quota";
    a.num_cores = 2;
    a.key = key;  // load() cross-checks the embedded key
    a.summary_kv = "pad=" + std::string(1000, 'x');
    return a.to_payload();  // fixed-width key -> same size for every key
  };
  const std::uint64_t k1 = 0xa000000000000001ull;
  const std::uint64_t k2 = 0xa000000000000002ull;
  const std::uint64_t k3 = 0xa000000000000003ull;
  const std::uint64_t k4 = 0xa000000000000004ull;
  ASSERT_TRUE(cache.store(k1, payload_for(k1)));  // quota 0 = unbounded
  ASSERT_TRUE(cache.store(k2, payload_for(k2)));
  ASSERT_TRUE(cache.store(k3, payload_for(k3)));
  const std::uint64_t entry = fs::file_size(cache.path_for(k1));
  const auto now = fs::last_write_time(cache.path_for(k3));
  fs::last_write_time(cache.path_for(k1), now - std::chrono::minutes(3));
  fs::last_write_time(cache.path_for(k2), now - std::chrono::minutes(2));
  fs::last_write_time(cache.path_for(k3), now - std::chrono::minutes(1));

  // Room for three and a half entries: publishing the fourth must evict
  // exactly the oldest (k1) and nothing else.
  cache.set_max_bytes(3 * entry + entry / 2);
  ASSERT_TRUE(cache.store(k4, payload_for(k4)));
  EXPECT_FALSE(fs::exists(cache.path_for(k1))) << "oldest entry survived";
  EXPECT_TRUE(fs::exists(cache.path_for(k2)));
  EXPECT_TRUE(fs::exists(cache.path_for(k3)));
  EXPECT_TRUE(fs::exists(cache.path_for(k4)));
  EXPECT_EQ(cache.evicted(), 1u);

  // Shrink the quota to a single entry: the next publish keeps only
  // itself (k4's pinned age makes it older than the fresh k5).
  fs::last_write_time(cache.path_for(k4), now - std::chrono::seconds(30));
  cache.set_max_bytes(entry + entry / 2);
  const std::uint64_t k5 = 0xa000000000000005ull;
  ASSERT_TRUE(cache.store(k5, payload_for(k5)));
  EXPECT_FALSE(fs::exists(cache.path_for(k2)));
  EXPECT_FALSE(fs::exists(cache.path_for(k3)));
  EXPECT_FALSE(fs::exists(cache.path_for(k4)));
  EXPECT_TRUE(fs::exists(cache.path_for(k5)));
  EXPECT_EQ(cache.evicted(), 4u);

  // Evicted keys are plain misses — the read path re-simulates, it never
  // errors.
  std::string got;
  EXPECT_FALSE(cache.load(k2, got));
  EXPECT_TRUE(cache.load(k5, got));
  EXPECT_EQ(got, payload_for(k5));
}

TEST(DiskRunCache, WarmCheckpointRoundTripRejectsCorruptAndForeign) {
  const DiskRunCache cache(temp_cache_dir("warm"));
  const WorkloadProfile p = fast_profile();
  const SimConfig cfg = fast_config();

  // A genuine cycle-0 warm frame, captured the way run_one captures it.
  std::string frame;
  RunOptions opts;
  opts.checkpoint_at = 0;
  opts.checkpoint_out = &frame;
  CmpSimulator sim(cfg, p);
  (void)sim.run(opts);
  ASSERT_FALSE(frame.empty());
  const std::uint64_t fp = checkpoint_fingerprint(cfg, p.name, 0);

  std::string got;
  EXPECT_FALSE(cache.load_warm_checkpoint(fp, got));
  EXPECT_EQ(cache.warm_misses(), 1u);
  ASSERT_TRUE(cache.store_warm_checkpoint(fp, frame));
  EXPECT_EQ(cache.warm_stores(), 1u);
  ASSERT_TRUE(cache.load_warm_checkpoint(fp, got));
  EXPECT_EQ(got, frame) << "warm image not byte-identical";
  EXPECT_EQ(cache.warm_hits(), 1u);

  // Filed under the wrong fingerprint: the embedded checkpoint_fp check
  // rejects it, counts it corrupt and heals the slot by unlinking.
  std::filesystem::rename(cache.warm_checkpoint_path(fp),
                          cache.warm_checkpoint_path(fp ^ 1));
  EXPECT_FALSE(cache.load_warm_checkpoint(fp ^ 1, got));
  EXPECT_EQ(cache.corrupt(), 1u);
  EXPECT_FALSE(std::filesystem::exists(cache.warm_checkpoint_path(fp ^ 1)));

  // A bit flip mid-frame fails the frame checksum: corrupt, unlinked,
  // and the next lookup is a clean miss.
  ASSERT_TRUE(cache.store_warm_checkpoint(fp, frame));
  flip_byte_at(cache.warm_checkpoint_path(fp), frame.size() / 2);
  EXPECT_FALSE(cache.load_warm_checkpoint(fp, got));
  EXPECT_EQ(cache.corrupt(), 2u);
  EXPECT_FALSE(std::filesystem::exists(cache.warm_checkpoint_path(fp)));
}

TEST(RunOne, WarmCheckpointDirSkipsWarmupByteIdentically) {
  const WorkloadProfile p = fast_profile();
  const SimConfig cfg = fast_config();
  ASSERT_TRUE(cfg.functional_warmup);
  RunOptions opts;
  opts.stats = true;

  // Scratch references with no warm cache configured: the base config and
  // a different technique on the same machine/seed/benchmark.
  const RunResult cold = run_one(p, cfg, opts);
  const std::string cold_payload =
      RunArtifact::from_result(p.name, cfg, cold).to_payload();
  SimConfig dvfs = cfg;
  dvfs.technique = TechniqueKind::kDvfs;
  const RunResult dvfs_cold = run_one(p, dvfs, opts);

  const std::string dir = temp_cache_dir("warmdir");
  set_default_warm_checkpoint_dir(dir);
  const DiskRunCache* warm = default_warm_checkpoint_cache();
  ASSERT_NE(warm, nullptr);

  // First run through the warm path publishes the post-warmup image …
  const RunResult first = run_one(p, cfg, opts);
  EXPECT_EQ(warm->warm_stores(), 1u);
  EXPECT_EQ(RunArtifact::from_result(p.name, cfg, first).to_payload(),
            cold_payload);

  // … and the second restores it instead of re-warming, byte-identically.
  const RunResult second = run_one(p, cfg, opts);
  EXPECT_EQ(warm->warm_hits(), 1u);
  EXPECT_EQ(RunArtifact::from_result(p.name, cfg, second).to_payload(),
            cold_payload);

  // A different technique forks off the same warm image (the cycle-0
  // fingerprint excludes technique and budget) and still reproduces its
  // own scratch run exactly.
  const RunResult forked = run_one(p, dvfs, opts);
  EXPECT_EQ(warm->warm_hits(), 2u);
  EXPECT_EQ(RunArtifact::from_result(p.name, dvfs, forked).to_payload(),
            RunArtifact::from_result(p.name, dvfs, dvfs_cold).to_payload());

  set_default_warm_checkpoint_dir("");  // leave no global state behind
  ASSERT_EQ(default_warm_checkpoint_cache(), nullptr);
}

}  // namespace
}  // namespace ptb

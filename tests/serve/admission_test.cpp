// TokenAdmission (serve/admission.hpp): the host-side token balancer that
// caps concurrent simulations per tenant. plan() is a pure function of the
// demand map, so every case here is exact — the invariants in the header
// (sum(grant) <= budget, grant <= demand, full grants when everybody fits)
// are asserted across the policy space and a brute-force sweep.
#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

namespace ptb::serve {
namespace {

using Demand = std::map<std::string, std::uint32_t>;

std::uint64_t total(const Demand& m) {
  std::uint64_t t = 0;
  for (const auto& [k, v] : m) t += v;
  return t;
}

void check_invariants(const TokenAdmission& adm, const Demand& demand) {
  const Demand grant = adm.plan(demand);
  ASSERT_EQ(grant.size(), demand.size());
  std::uint64_t granted = 0;
  for (const auto& [tenant, d] : demand) {
    const auto it = grant.find(tenant);
    ASSERT_NE(it, grant.end()) << tenant;
    EXPECT_LE(it->second, d) << tenant << ": granted above demand";
    if (d == 0) {
      EXPECT_EQ(it->second, 0u) << tenant;
    }
    granted += it->second;
  }
  EXPECT_LE(granted, adm.host_tokens()) << "budget overrun";
  if (total(demand) <= adm.host_tokens()) {
    EXPECT_EQ(granted, total(demand)) << "under-subscribed demand stranded";
  } else {
    // Over-subscribed: aggregate residual demand exceeds the spare, so the
    // whole budget must be handed out under BOTH policies — to_all via its
    // re-split rounds, to_one via the neediest-first cascade. No worker
    // idles while any tenant queues.
    EXPECT_EQ(granted, adm.host_tokens()) << "tokens stranded";
  }
}

TEST(TokenAdmission, ZeroDemandGetsZeroGrant) {
  const TokenAdmission adm(4, PtbPolicy::kToAll);
  const Demand grant = adm.plan({{"a", 0}, {"b", 0}});
  EXPECT_EQ(grant.at("a"), 0u);
  EXPECT_EQ(grant.at("b"), 0u);
}

TEST(TokenAdmission, EverybodyFitsGetsFullDemand) {
  const TokenAdmission adm(8, PtbPolicy::kToAll);
  const Demand grant = adm.plan({{"a", 3}, {"b", 5}});
  EXPECT_EQ(grant.at("a"), 3u);
  EXPECT_EQ(grant.at("b"), 5u);
}

TEST(TokenAdmission, OversubscribedFairShare) {
  // 4 tokens, two tenants each wanting 4: fair split, 2 apiece, under both
  // policies (no spare remains after the fair pass).
  for (const PtbPolicy p : {PtbPolicy::kToAll, PtbPolicy::kToOne}) {
    const TokenAdmission adm(4, p);
    const Demand grant = adm.plan({{"a", 4}, {"b", 4}});
    EXPECT_EQ(grant.at("a"), 2u);
    EXPECT_EQ(grant.at("b"), 2u);
  }
}

TEST(TokenAdmission, ToOneSpareGoesToNeediestTenant) {
  // 8 tokens, fair share 2 each; a and b are satisfied at 1, c and d are
  // capped at 2. Spare = 2; to_one hands all of it to the largest residual
  // (d, residual 8) in one piece.
  const TokenAdmission adm(8, PtbPolicy::kToOne);
  const Demand grant = adm.plan({{"a", 1}, {"b", 1}, {"c", 4}, {"d", 10}});
  EXPECT_EQ(grant.at("a"), 1u);
  EXPECT_EQ(grant.at("b"), 1u);
  EXPECT_EQ(grant.at("c"), 2u);
  EXPECT_EQ(grant.at("d"), 4u);
}

TEST(TokenAdmission, ToOneCascadesSpareWhenNeediestSaturates) {
  // Regression: 12 tokens, fair share 3; a and b cap at 3, c and d are
  // satisfied at 1, leaving spare = 4 against residuals a:3, b:2. The old
  // single-grant code gave a its 3 and stranded the last token while b
  // still queued; the cascade saturates a, then moves on to b.
  const TokenAdmission adm(12, PtbPolicy::kToOne);
  const Demand grant = adm.plan({{"a", 6}, {"b", 5}, {"c", 1}, {"d", 1}});
  EXPECT_EQ(grant.at("a"), 6u);
  EXPECT_EQ(grant.at("b"), 4u);  // fair 3 + the token a could not absorb
  EXPECT_EQ(grant.at("c"), 1u);
  EXPECT_EQ(grant.at("d"), 1u);
}

TEST(TokenAdmission, ToOneTieBreaksToFirstTenantInMapOrder) {
  // Equal residuals: the lexicographically first tenant wins (std::map
  // order), which keeps the plan deterministic across runs.
  const TokenAdmission adm(5, PtbPolicy::kToOne);
  const Demand grant = adm.plan({{"a", 1}, {"x", 4}, {"y", 4}});
  EXPECT_EQ(grant.at("a"), 1u);
  EXPECT_EQ(grant.at("x"), 3u);  // fair 1 + all 2 spare
  EXPECT_EQ(grant.at("y"), 1u);
}

TEST(TokenAdmission, ToAllSplitsSpareAcrossNeedyTenants) {
  // Same demand as the to_one case: to_all spreads the 2 spare tokens one
  // each over the needy tenants {c, d} instead of piling them on d.
  const TokenAdmission adm(8, PtbPolicy::kToAll);
  const Demand grant = adm.plan({{"a", 1}, {"b", 1}, {"c", 4}, {"d", 10}});
  EXPECT_EQ(grant.at("a"), 1u);
  EXPECT_EQ(grant.at("b"), 1u);
  EXPECT_EQ(grant.at("c"), 3u);
  EXPECT_EQ(grant.at("d"), 3u);
}

TEST(TokenAdmission, ToAllResplitRoundsDrainTheSpare) {
  // First-round share would strand tokens on the nearly-satisfied tenant;
  // the bounded re-split rounds must push the rest to the still-needy one.
  const TokenAdmission adm(9, PtbPolicy::kToAll);
  const Demand grant = adm.plan({{"a", 1}, {"b", 9}, {"c", 1}});
  EXPECT_EQ(grant.at("a"), 1u);
  EXPECT_EQ(grant.at("c"), 1u);
  EXPECT_EQ(grant.at("b"), 7u);  // everything the others left behind
}

TEST(TokenAdmission, MoreTenantsThanTokens) {
  // fair = max(1, 2/3) = 1: the first two tenants in map order get one
  // token each, the third waits. Deterministic, never over budget.
  const TokenAdmission adm(2, PtbPolicy::kToAll);
  const Demand grant = adm.plan({{"a", 5}, {"b", 5}, {"c", 5}});
  EXPECT_EQ(grant.at("a"), 1u);
  EXPECT_EQ(grant.at("b"), 1u);
  EXPECT_EQ(grant.at("c"), 0u);
}

TEST(TokenAdmission, InvariantSweep) {
  // Brute-force the invariants over a small demand lattice for both
  // policies and several budgets. plan() is pure, so this is exhaustive
  // for the covered shapes, not statistical.
  for (const PtbPolicy p : {PtbPolicy::kToAll, PtbPolicy::kToOne}) {
    for (const std::uint32_t tokens : {1u, 2u, 3u, 5u, 8u}) {
      const TokenAdmission adm(tokens, p);
      for (std::uint32_t a = 0; a <= 4; ++a) {
        for (std::uint32_t b = 0; b <= 4; ++b) {
          for (std::uint32_t c = 0; c <= 4; ++c) {
            check_invariants(adm, {{"a", a}, {"b", b}, {"c", c}});
          }
        }
      }
    }
  }
}

TEST(TokenAdmission, PlanIsDeterministic) {
  const TokenAdmission adm(6, PtbPolicy::kToAll);
  const Demand demand = {{"p", 3}, {"q", 7}, {"r", 2}};
  EXPECT_EQ(adm.plan(demand), adm.plan(demand));
}

}  // namespace
}  // namespace ptb::serve

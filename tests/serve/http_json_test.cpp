// Transport-layer parsing (serve/http.hpp) and the SimConfig JSON codec
// (serve/config_json.hpp) — everything the daemon decodes off the wire,
// exercised without sockets. The codec tests pin the strictness contract:
// unknown keys, bad enum strings and observe-only knobs reject the whole
// document, and parse(to_json(cfg)) is the identity (checked through the
// fingerprints, which cover every field the codec may touch).
#include <gtest/gtest.h>

#include <string>

#include "common/config.hpp"
#include "common/json.hpp"
#include "serve/config_json.hpp"
#include "serve/http.hpp"
#include "sim/reporting.hpp"

namespace ptb::serve {
namespace {

// --- HTTP head parsing ------------------------------------------------------

TEST(HttpHead, ParsesRequestLineQueryAndHeaders) {
  HttpRequest req;
  std::string err;
  ASSERT_TRUE(parse_http_head(
      "POST /v1/run?wait=1&x=2 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Ptb-Tenant: teamA\r\n"
      "Content-Length: 12\r\n"
      "\r\n",
      req, err))
      << err;
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/v1/run");
  EXPECT_EQ(req.query, "wait=1&x=2");
  EXPECT_EQ(req.query_param("wait"), "1");
  EXPECT_EQ(req.query_param("x"), "2");
  EXPECT_EQ(req.query_param("absent"), "");
  // Header names are lowercased on parse; lookup is by lowercase name.
  ASSERT_NE(req.header("x-ptb-tenant"), nullptr);
  EXPECT_EQ(*req.header("x-ptb-tenant"), "teamA");
  ASSERT_NE(req.header("content-length"), nullptr);
  EXPECT_EQ(*req.header("content-length"), "12");
  EXPECT_EQ(req.header("x-absent"), nullptr);
}

TEST(HttpHead, FlagStyleQueryKeyReadsAsOne) {
  HttpRequest req;
  std::string err;
  ASSERT_TRUE(
      parse_http_head("GET /v1/jobs/j00000001?wait HTTP/1.1\r\n\r\n", req,
                      err));
  EXPECT_EQ(req.path, "/v1/jobs/j00000001");
  EXPECT_EQ(req.query_param("wait"), "1");
}

TEST(HttpHead, RejectsMalformedInput) {
  HttpRequest req;
  std::string err;
  EXPECT_FALSE(parse_http_head("", req, err));
  EXPECT_FALSE(parse_http_head("GET\r\n\r\n", req, err));
  EXPECT_FALSE(parse_http_head("GET /x\r\n\r\n", req, err));  // no version
  EXPECT_FALSE(
      parse_http_head("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", req, err));
}

TEST(HttpResponseRender, CarriesStatusLengthAndClose) {
  HttpResponse r;
  r.status = 404;
  r.body = "{\"error\":\"no\"}";
  const std::string wire = render_http_response(r);
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - r.body.size()), r.body);
}

TEST(HttpResponseRender, StreamHeadUsesChunkedWithoutLength) {
  HttpResponse r;
  r.content_type = "text/event-stream";
  r.headers.emplace_back("Cache-Control", "no-store");
  const std::string head = render_http_stream_head(r);
  EXPECT_NE(head.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_NE(head.find("Cache-Control: no-store\r\n"), std::string::npos);
  EXPECT_EQ(head.find("Content-Length"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n") << "head only, no body";
}

// --- chunked transfer decoding ----------------------------------------------

TEST(HttpDechunk, ReassemblesMultipleChunksAndIgnoresExtensions) {
  std::string out, err;
  // Sizes are hex; ";ext=1" is a legal chunk extension; trailers after the
  // terminal chunk are discarded.
  ASSERT_TRUE(http_dechunk(
      "5\r\nhello\r\n6;ext=1\r\n world\r\nB\r\n, streaming\r\n0\r\n"
      "X-Trailer: 1\r\n\r\n",
      out, err))
      << err;
  EXPECT_EQ(out, "hello world, streaming");
}

TEST(HttpDechunk, EmptyBodyIsJustTheTerminalChunk) {
  std::string out = "sentinel", err;
  ASSERT_TRUE(http_dechunk("0\r\n\r\n", out, err)) << err;
  EXPECT_TRUE(out.empty());
}

TEST(HttpDechunk, RejectsMalformedFraming) {
  std::string out, err;
  EXPECT_FALSE(http_dechunk("", out, err));            // no size line
  EXPECT_FALSE(http_dechunk("zz\r\nhi\r\n", out, err));  // bad hex
  EXPECT_FALSE(http_dechunk("5\r\nhi", out, err));     // truncated data
  EXPECT_FALSE(http_dechunk("2\r\nhiX\r\n0\r\n\r\n", out, err))
      << "chunk data must end with CRLF";
  EXPECT_FALSE(http_dechunk("5\r\nhello\r\n", out, err))
      << "missing terminal chunk";
}

// --- enum codecs ------------------------------------------------------------

TEST(EnumCodec, RoundTripsAndRejects) {
  TechniqueKind k = TechniqueKind::kNone;
  for (const char* name : {"none", "dvfs", "dfs", "two_level",
                           "thrifty_barrier", "meeting_points"}) {
    ASSERT_TRUE(parse_technique_kind(name, k)) << name;
    EXPECT_STREQ(technique_kind_name(k), name);
  }
  EXPECT_FALSE(parse_technique_kind("DVFS", k));  // strict: no case folding

  PtbPolicy p = PtbPolicy::kToAll;
  for (const char* name : {"to_all", "to_one", "dynamic"}) {
    ASSERT_TRUE(parse_ptb_policy(name, p)) << name;
    EXPECT_STREQ(ptb_policy_name(p), name);
  }
  EXPECT_FALSE(parse_ptb_policy("toall", p));
}

// --- SimConfig codec --------------------------------------------------------

SimConfig parse_or_die(const std::string& text) {
  SimConfig cfg;
  std::string err;
  EXPECT_TRUE(sim_config_from_json(text, cfg, err)) << err;
  return cfg;
}

TEST(ConfigCodec, EmptyObjectIsTableOneDefaults) {
  const SimConfig cfg = parse_or_die("{}");
  const SimConfig defaults;
  EXPECT_EQ(config_fingerprint(cfg), config_fingerprint(defaults));
  EXPECT_EQ(machine_fingerprint(cfg), machine_fingerprint(defaults));
}

TEST(ConfigCodec, OverridesApplyAndChangeTheFingerprint) {
  const SimConfig defaults;
  const SimConfig cfg = parse_or_die(
      "{\"num_cores\":8,\"technique\":\"dvfs\",\"ptb\":{\"enabled\":true,"
      "\"policy\":\"to_one\"},\"budget_fraction\":0.5,\"seed\":7,"
      "\"max_cycles\":100000}");
  EXPECT_EQ(cfg.num_cores, 8u);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_NE(config_fingerprint(cfg), config_fingerprint(defaults));
}

TEST(ConfigCodec, CanonicalEmissionRoundTripsEveryField) {
  // Perturb one field per codec section, emit, re-parse, re-emit: the
  // fingerprints and the canonical text must both survive the loop. This
  // is the identity that makes cache addresses wire-stable.
  SimConfig cfg;
  cfg.num_cores = 8;
  cfg.seed = 11;
  cfg.technique = TechniqueKind::kTwoLevel;
  cfg.ptb.enabled = true;
  cfg.ptb.policy = PtbPolicy::kToOne;
  cfg.budget_fraction = 0.6;
  const std::string text = sim_config_to_json(cfg);
  const SimConfig back = parse_or_die(text);
  EXPECT_EQ(config_fingerprint(back), config_fingerprint(cfg));
  EXPECT_EQ(machine_fingerprint(back), machine_fingerprint(cfg));
  EXPECT_EQ(sim_config_to_json(back), text) << "emission not canonical";
}

TEST(ConfigCodec, RejectsUnknownKeysWithPositionedError) {
  SimConfig cfg;
  std::string err;
  // The classic typo the strictness exists for: silently ignoring
  // "num_core" would simulate (and cache!) the wrong machine.
  EXPECT_FALSE(sim_config_from_json("{\"num_core\":8}", cfg, err));
  EXPECT_NE(err.find("num_core"), std::string::npos) << err;
}

TEST(ConfigCodec, RejectsObserveOnlyKnobs) {
  SimConfig cfg;
  std::string err;
  for (const char* knob : {"audit_level", "sim_threads", "trace"}) {
    const std::string body = std::string("{\"") + knob + "\":1}";
    EXPECT_FALSE(sim_config_from_json(body, cfg, err)) << knob;
    EXPECT_NE(err.find("observe-only"), std::string::npos) << err;
  }
}

TEST(ConfigCodec, RejectsOutOfDomainValues) {
  SimConfig cfg;
  std::string err;
  EXPECT_FALSE(sim_config_from_json("{\"num_cores\":0}", cfg, err));
  EXPECT_FALSE(sim_config_from_json("{\"budget_fraction\":0.0}", cfg, err));
  EXPECT_FALSE(sim_config_from_json("{\"budget_fraction\":1.5}", cfg, err));
  EXPECT_FALSE(
      sim_config_from_json("{\"technique\":\"warp_drive\"}", cfg, err));
  EXPECT_NE(err.find("technique"), std::string::npos) << err;
}

// --- run / sweep request parsing --------------------------------------------

json::Value parse_doc(const std::string& text) {
  json::Value doc;
  std::string err;
  EXPECT_TRUE(json::parse(text, doc, err)) << err;
  return doc;
}

TEST(RunRequestParse, AcceptsSuiteBenchmarkWithDefaults) {
  RunRequest req;
  std::string err;
  ASSERT_TRUE(
      parse_run_request(parse_doc("{\"benchmark\":\"fft\"}"), req, err))
      << err;
  EXPECT_EQ(req.benchmark, "fft");
  EXPECT_EQ(config_fingerprint(req.config),
            config_fingerprint(SimConfig{}));
}

TEST(RunRequestParse, RejectsUnknownBenchmark) {
  // benchmark_by_name aborts on unknown names — the codec must catch this
  // at parse time so a bad request can never take the daemon down.
  RunRequest req;
  std::string err;
  EXPECT_FALSE(parse_run_request(
      parse_doc("{\"benchmark\":\"no_such_bench\"}"), req, err));
  EXPECT_NE(err.find("no_such_bench"), std::string::npos) << err;
}

TEST(RunRequestParse, RejectsMissingBenchmarkAndBadConfig) {
  RunRequest req;
  std::string err;
  EXPECT_FALSE(parse_run_request(parse_doc("{}"), req, err));
  EXPECT_FALSE(parse_run_request(
      parse_doc("{\"benchmark\":\"fft\",\"config\":{\"bogus\":1}}"), req,
      err));
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
}

TEST(SweepRequestParse, ParsesRequestListAndPositionsErrors) {
  std::vector<RunRequest> reqs;
  std::string err;
  ASSERT_TRUE(parse_sweep_request(
      parse_doc("{\"requests\":[{\"benchmark\":\"fft\"},"
                "{\"benchmark\":\"radix\"}]}"),
      reqs, err))
      << err;
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].benchmark, "fft");
  EXPECT_EQ(reqs[1].benchmark, "radix");

  reqs.clear();
  EXPECT_FALSE(parse_sweep_request(parse_doc("{\"requests\":[]}"), reqs,
                                   err));
  EXPECT_FALSE(parse_sweep_request(
      parse_doc("{\"requests\":[{\"benchmark\":\"fft\"},"
                "{\"benchmark\":\"nope\"}]}"),
      reqs, err));
  // Errors name the failing entry so a sweep client can fix the right one.
  EXPECT_NE(err.find("requests[1]"), std::string::npos) << err;
}

}  // namespace
}  // namespace ptb::serve

// Serve-plane tracing data model and recorder: ServeSpanLog round-trip and
// corrupt-rejection (trace/serve_span.hpp — the byte-stable frame idiom of
// the trace subsystem) plus the SpanRecorder ring (serve/span.hpp —
// bounded, thread-safe, drop-accounted). The end-to-end span *content*
// (what a real request records) is covered in serve_e2e_test.cpp; this
// file pins the container semantics.
#include "serve/span.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "trace/serve_span.hpp"

namespace ptb::serve {
namespace {

ServeSpan span(std::uint64_t trace, std::uint32_t id, std::uint32_t parent,
               const char* name, double t0, double t1,
               const char* note = "") {
  ServeSpan s;
  s.trace_id = trace;
  s.span_id = id;
  s.parent_id = parent;
  s.start_ms = t0;
  s.end_ms = t1;
  s.name = name;
  s.note = note;
  return s;
}

TEST(ServeSpanLog, SerializeRoundTripsEveryField) {
  ServeSpanLog log;
  log.emitted = 5;
  log.dropped = 2;
  log.spans.push_back(span(7, 2, 1, "simulate", 10.25, 42.75, "fft"));
  log.spans.push_back(
      span(7, 1, 0, "request", 10.0, 43.0, "POST /v1/run -> 200"));
  log.spans.push_back(span(8, 3, 0, "request", 50.5, 51.5));

  ServeSpanLog back;
  ASSERT_TRUE(ServeSpanLog::deserialize(log.serialize(), back));
  EXPECT_EQ(back.emitted, 5u);
  EXPECT_EQ(back.dropped, 2u);
  ASSERT_EQ(back.spans.size(), 3u);
  EXPECT_EQ(back.spans[0].trace_id, 7u);
  EXPECT_EQ(back.spans[0].span_id, 2u);
  EXPECT_EQ(back.spans[0].parent_id, 1u);
  EXPECT_EQ(back.spans[0].start_ms, 10.25);
  EXPECT_EQ(back.spans[0].end_ms, 42.75);
  EXPECT_EQ(back.spans[0].name, "simulate");
  EXPECT_EQ(back.spans[0].note, "fft");
  EXPECT_EQ(back.spans[1].note, "POST /v1/run -> 200");
  EXPECT_TRUE(back.spans[2].note.empty());

  // Byte-stable: equal logical state serializes to equal bytes.
  EXPECT_EQ(log.serialize(), back.serialize());
}

TEST(ServeSpanLog, DeserializeRejectsCorruptInput) {
  ServeSpanLog log;
  log.emitted = 1;
  log.spans.push_back(span(1, 1, 0, "request", 0.0, 1.0));
  const std::string bytes = log.serialize();

  ServeSpanLog out;
  EXPECT_FALSE(ServeSpanLog::deserialize("", out));
  EXPECT_FALSE(ServeSpanLog::deserialize("not a span log", out));

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(ServeSpanLog::deserialize(wrong_magic, out));

  std::string wrong_version = bytes;
  wrong_version[8] = static_cast<char>(0x7f);
  EXPECT_FALSE(ServeSpanLog::deserialize(wrong_version, out));

  // Every truncation point rejects — no partial parse is ever accepted.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        ServeSpanLog::deserialize(std::string_view(bytes).substr(0, cut),
                                  out))
        << "accepted a prefix of " << cut << " bytes";
  }
  EXPECT_FALSE(ServeSpanLog::deserialize(bytes + "x", out))
      << "trailing bytes must reject";

  // An implausible span count (larger than the remaining bytes could ever
  // hold) must reject before reserving memory.
  std::string huge_count = bytes.substr(0, 8 + 4 + 8 + 8);
  for (int i = 0; i < 8; ++i) huge_count += static_cast<char>(0xff);
  EXPECT_FALSE(ServeSpanLog::deserialize(huge_count, out));
}

TEST(ServeSpanLog, SaveLoadRoundTripsThroughDisk) {
  ServeSpanLog log;
  log.emitted = 2;
  log.spans.push_back(span(1, 1, 0, "request", 0.0, 1.0, "GET /healthz"));
  log.spans.push_back(span(1, 2, 1, "parse", 0.0, 0.5));

  const std::string path = testing::TempDir() + "/ptb_serve_span_log.bin";
  ASSERT_TRUE(log.save(path));
  ServeSpanLog back;
  ASSERT_TRUE(ServeSpanLog::load(path, back));
  EXPECT_EQ(back.serialize(), log.serialize());
  EXPECT_FALSE(ServeSpanLog::load(path + ".does-not-exist", back));
}

TEST(SpanRecorder, RingKeepsNewestAndCountsDrops) {
  SpanRecorder rec(3);
  for (std::uint32_t i = 1; i <= 5; ++i) {
    rec.emit(span(1, i, 0, "request", i, i + 1.0));
  }
  const ServeSpanLog log = rec.snapshot();
  EXPECT_EQ(log.emitted, 5u);
  EXPECT_EQ(log.dropped, 2u);
  ASSERT_EQ(log.spans.size(), 3u);
  // Oldest dropped first: spans 3,4,5 survive in emission order.
  EXPECT_EQ(log.spans[0].span_id, 3u);
  EXPECT_EQ(log.spans[2].span_id, 5u);
}

TEST(SpanRecorder, IdsAreUniqueAcrossThreads) {
  SpanRecorder rec(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t trace = rec.begin_trace();
        rec.emit(span(trace, rec.next_span_id(), 0, "request", 0.0, 1.0));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const ServeSpanLog log = rec.snapshot();
  ASSERT_EQ(log.spans.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(log.dropped, 0u);
  std::vector<bool> seen_span(kThreads * kPerThread + 1, false);
  std::vector<bool> seen_trace(kThreads * kPerThread + 1, false);
  for (const ServeSpan& s : log.spans) {
    ASSERT_GE(s.span_id, 1u);
    ASSERT_LE(s.span_id, static_cast<std::uint32_t>(kThreads * kPerThread));
    EXPECT_FALSE(seen_span[s.span_id]) << "duplicate span id " << s.span_id;
    seen_span[s.span_id] = true;
    ASSERT_GE(s.trace_id, 1u);
    ASSERT_LE(s.trace_id,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_FALSE(seen_trace[s.trace_id]) << "duplicate trace " << s.trace_id;
    seen_trace[s.trace_id] = true;
  }
}

TEST(ServeSpanChromeJson, RendersTracksAndCompleteEvents) {
  ServeSpanLog log;
  log.emitted = 3;
  log.spans.push_back(span(9, 2, 1, "simulate", 1.0, 2.0, "fft"));
  log.spans.push_back(
      span(9, 1, 0, "request", 0.5, 2.5, "POST /v1/run -> 200"));
  log.spans.push_back(span(12, 3, 0, "request", 3.0, 4.0));

  const std::string json = serve_spans_chrome_json(log);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  // Track label carries the trace id and the root note.
  EXPECT_NE(json.find("trace 0000000000000009 POST /v1/run -> 200"),
            std::string::npos)
      << json;
  // Complete events in microseconds: 1.0ms -> ts 1000.000.
  EXPECT_NE(json.find("\"name\":\"simulate\",\"ph\":\"X\",\"pid\":0,"
                      "\"tid\":1,\"ts\":1000.000,\"dur\":1000.000"),
            std::string::npos)
      << json;
  // Parent linkage is preserved in args; second trace gets its own track.
  EXPECT_NE(json.find("\"span\":2,\"parent\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

}  // namespace
}  // namespace ptb::serve

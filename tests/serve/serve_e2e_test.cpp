// End-to-end ptb-serve tests: a real Server (sockets on 127.0.0.1, port 0)
// driven through the in-repo HTTP client. The acceptance case for the
// service plane lives here: a daemon *restart* between two identical
// POST /v1/run requests, with the second answered from the persistent
// DiskRunCache byte-identically to the first — the cache, not the process,
// is the source of truth. The remaining cases cover /metrics exposition,
// the admission cap, the sweep route and the error surface (routing is
// also exercised without sockets through Server::handle).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"

namespace ptb::serve {
namespace {

// 2 cores x 20k cycles: a few milliseconds per simulation.
const char* kRunBody =
    "{\"benchmark\":\"fft\","
    "\"config\":{\"num_cores\":2,\"max_cycles\":20000}}";

ServiceOptions test_opts(const std::string& cache_dir) {
  ServiceOptions o;
  o.cache_dir = cache_dir;
  o.sim_workers = 2;
  o.host_tokens = 2;
  o.queue_max = 64;
  return o;
}

std::string fresh_cache_dir(const char* tag) {
  // TempDir() outlives the process: wipe the slot so a "fresh cache" case
  // stays fresh on re-runs.
  const std::string dir = testing::TempDir() + "/ptb_serve_e2e_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

const std::string* find_header(const HttpResponse& r, const char* name) {
  for (const auto& [k, v] : r.headers) {
    if (k == name) return &v;  // client lowercases names
  }
  return nullptr;
}

HttpResponse must_request(std::uint16_t port, const std::string& method,
                          const std::string& target,
                          const std::string& body = "") {
  HttpResponse resp;
  std::string err;
  EXPECT_TRUE(
      http_request("127.0.0.1", port, method, target, body, {}, resp, err))
      << method << " " << target << ": " << err;
  return resp;
}

// The acceptance test: byte-identical answers from the persistent cache
// across a full daemon restart.
TEST(ServeE2E, RestartServesByteIdenticalFromPersistentCache) {
  const std::string cache_dir = fresh_cache_dir("restart");

  std::string first_body;
  std::string key;
  {
    Server server(test_opts(cache_dir), "127.0.0.1", 0, 2);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    const HttpResponse r =
        must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody);
    ASSERT_EQ(r.status, 200) << r.body;
    const std::string* cache = find_header(r, "x-ptb-cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(*cache, "miss") << "fresh cache dir cannot hit";
    const std::string* k = find_header(r, "x-ptb-key");
    ASSERT_NE(k, nullptr);
    key = *k;
    first_body = r.body;
    ASSERT_FALSE(first_body.empty());
    server.stop();
  }  // daemon gone; only the cache directory survives

  {
    Server server(test_opts(cache_dir), "127.0.0.1", 0, 2);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    const HttpResponse r =
        must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody);
    ASSERT_EQ(r.status, 200) << r.body;
    const std::string* cache = find_header(r, "x-ptb-cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(*cache, "hit") << "restart lost the persistent cache";
    EXPECT_EQ(r.body, first_body) << "cached answer not byte-identical";

    // The content address is stable across processes too.
    const HttpResponse by_key =
        must_request(server.port(), "GET", "/v1/results/" + key);
    ASSERT_EQ(by_key.status, 200);
    EXPECT_EQ(by_key.body, first_body);
    server.stop();
  }
}

TEST(ServeE2E, MetricsExposeRequestCacheAndQueueSeries) {
  Server server(test_opts(fresh_cache_dir("metrics")), "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  ASSERT_EQ(must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody)
                .status,
            200);
  const HttpResponse m = must_request(server.port(), "GET", "/metrics");
  ASSERT_EQ(m.status, 200);
  EXPECT_NE(m.content_type.find("text/plain"), std::string::npos);
  for (const char* series :
       {"ptb_serve_http_requests", "ptb_serve_jobs_submitted",
        "ptb_serve_cache_hits", "ptb_serve_cache_misses",
        "ptb_serve_cache_corrupt", "ptb_serve_queue_depth",
        "ptb_serve_jobs_in_flight", "ptb_serve_admission_host_tokens",
        "ptb_serve_http_request_ms"}) {
    EXPECT_NE(m.body.find(series), std::string::npos) << series;
  }
  // The one run above was a miss; the counter must say so.
  EXPECT_NE(m.body.find("ptb_serve_cache_misses 1"), std::string::npos)
      << m.body;
  server.stop();
}

// Extracts the value of `series` from a Prometheus exposition ("" absent).
std::string series_value(const std::string& text,
                         const std::string& series) {
  const std::size_t at = text.find("\n" + series + " ");
  if (at == std::string::npos) return "";
  const std::size_t start = at + 1 + series.size() + 1;
  return text.substr(start, text.find('\n', start) - start);
}

TEST(ServeE2E, AdmissionCapsInFlightSimulationsAtHostTokens) {
  // 2 workers but a host budget of 1: the scheduler may never have more
  // than one simulation in flight even with a deep single-tenant queue.
  // A poller samples the in-flight gauge while the sweep runs; sampling
  // can only under-observe a violation, never invent one, so a pass is
  // sound and a violation is caught with high probability.
  ServiceOptions opts = test_opts(fresh_cache_dir("admission"));
  opts.host_tokens = 1;
  Service service(opts);

  std::vector<RunRequest> reqs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunRequest r;
    r.benchmark = "fft";
    r.config.num_cores = 2;
    r.config.max_cycles = 20000;
    r.config.seed = seed;  // distinct addresses: all six really simulate
    reqs.push_back(r);
  }

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread poller([&] {
    while (!done.load()) {
      const std::string v =
          series_value(service.metrics_text(), "ptb_serve_jobs_in_flight");
      if (!v.empty() && std::strtod(v.c_str(), nullptr) > 1.0) {
        violations.fetch_add(1);
      }
    }
  });

  Service::Submitted submitted;
  std::string err;
  ASSERT_TRUE(service.submit("tenant-a", reqs, submitted, err)) << err;
  ASSERT_TRUE(service.wait(submitted.job_id));
  done.store(true);
  poller.join();

  EXPECT_EQ(violations.load(), 0) << "in-flight exceeded the token budget";
  const std::string status = service.job_status_json(submitted.job_id);
  EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos) << status;
  service.stop();
}

TEST(ServeE2E, SweepWaitReturnsEveryArtifactAndSecondSweepHits) {
  Server server(test_opts(fresh_cache_dir("sweep")), "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const std::string body =
      "{\"requests\":["
      "{\"benchmark\":\"fft\",\"config\":{\"num_cores\":2,"
      "\"max_cycles\":20000}},"
      "{\"benchmark\":\"radix\",\"config\":{\"num_cores\":2,"
      "\"max_cycles\":20000}}]}";
  const HttpResponse first =
      must_request(server.port(), "POST", "/v1/sweep?wait=1", body);
  ASSERT_EQ(first.status, 200) << first.body;
  EXPECT_NE(first.body.find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(first.body.find("\"artifact\":{"), std::string::npos);

  const HttpResponse second =
      must_request(server.port(), "POST", "/v1/sweep?wait=1", body);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(second.body.find("\"cache\":\"miss\""), std::string::npos)
      << "second sweep re-simulated";
  // Embedded artifacts are the same bytes, so the whole response document
  // is identical apart from the job id.
  EXPECT_NE(second.body.find("\"cache\":\"hit\""), std::string::npos);
  server.stop();
}

TEST(ServeE2E, AsyncSubmitThenPollJob) {
  Server server(test_opts(fresh_cache_dir("async")), "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const HttpResponse accepted =
      must_request(server.port(), "POST", "/v1/run", kRunBody);
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::string* job = find_header(accepted, "x-ptb-job");
  ASSERT_NE(job, nullptr);

  // Poll through the real route until the job lands (bounded by the test
  // timeout; each unit is milliseconds).
  std::string status;
  for (;;) {
    const HttpResponse r =
        must_request(server.port(), "GET", "/v1/jobs/" + *job);
    ASSERT_EQ(r.status, 200);
    status = r.body;
    if (status.find("\"state\":\"done\"") != std::string::npos ||
        status.find("\"state\":\"failed\"") != std::string::npos) {
      break;
    }
    // Gentle poll: a tight loop would churn thousands of one-shot
    // connections into TIME_WAIT while a sanitizer build simulates.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos) << status;
  EXPECT_NE(status.find("\"completed\":1"), std::string::npos) << status;
  server.stop();
}

// Routing error surface, exercised without sockets through handle().
// Raw-socket request for wire-level cases the structured client cannot
// express (here: a Content-Length the server must refuse to buffer).
// Sends `bytes`, reads to EOF, returns everything the server answered.
std::string raw_request(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ServeE2E, OversizedContentLengthRejectedWith413) {
  // The body cap must trip on the declared Content-Length alone — the
  // server answers 413 and closes without waiting for (or buffering) the
  // advertised megabytes. Only the request head is ever sent here, so a
  // hang would mean the server tried to read the body.
  Server server(test_opts(fresh_cache_dir("toolarge")), "127.0.0.1", 0, 1);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const std::string head =
      "POST /v1/run HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Content-Length: 1048577\r\n"  // 1 MiB cap + 1
      "Connection: close\r\n"
      "\r\n";
  const std::string resp = raw_request(server.port(), head);
  ASSERT_FALSE(resp.empty()) << "no response to oversized request";
  EXPECT_EQ(resp.rfind("HTTP/1.1 413 ", 0), 0u) << resp;

  // A request at the cap's edge with a *lying* (absent) body also cannot
  // wedge the worker: a fresh, well-formed request still gets served.
  EXPECT_EQ(must_request(server.port(), "GET", "/healthz").status, 200);
  server.stop();
}

TEST(ServeE2E, HandleErrorSurface) {
  Server server(test_opts(fresh_cache_dir("errors")), "127.0.0.1", 0, 1);

  const auto req = [](const char* method, const char* path,
                      const char* body = "") {
    HttpRequest r;
    r.method = method;
    r.path = path;
    r.body = body;
    return r;
  };

  EXPECT_EQ(server.handle(req("GET", "/healthz")).status, 200);
  EXPECT_EQ(server.handle(req("GET", "/no/such/route")).status, 404);
  EXPECT_EQ(server.handle(req("GET", "/v1/run")).status, 405);
  EXPECT_EQ(server.handle(req("POST", "/v1/run", "{not json")).status, 400);
  EXPECT_EQ(
      server.handle(req("POST", "/v1/run", "{\"benchmark\":\"nope\"}"))
          .status,
      400);
  EXPECT_EQ(server.handle(req("GET", "/v1/jobs/j99999999")).status, 404);
  EXPECT_EQ(
      server.handle(req("GET", "/v1/results/0123456789abcdef")).status,
      404);
  EXPECT_EQ(server.handle(req("GET", "/v1/results/not-a-key")).status, 404);

  // Drained service answers 503, not a hang.
  server.service().stop();
  EXPECT_EQ(server.handle(req("POST", "/v1/run", kRunBody)).status, 503);
}

}  // namespace
}  // namespace ptb::serve

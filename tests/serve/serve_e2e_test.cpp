// End-to-end ptb-serve tests: a real Server (sockets on 127.0.0.1, port 0)
// driven through the in-repo HTTP client. The acceptance case for the
// service plane lives here: a daemon *restart* between two identical
// POST /v1/run requests, with the second answered from the persistent
// DiskRunCache byte-identically to the first — the cache, not the process,
// is the source of truth. The remaining cases cover /metrics exposition,
// the admission cap, the sweep route and the error surface (routing is
// also exercised without sockets through Server::handle).
//
// The observability plane is pinned here too: the live job event stream
// (progress before terminal; "aborted" on drain), span-tree structural
// determinism across identical requests, byte-identical artifacts with
// tracing on vs off (the observe-only contract), and the structured
// access log.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "serve/http.hpp"
#include "trace/serve_span.hpp"

namespace ptb::serve {
namespace {

// 2 cores x 20k cycles: a few milliseconds per simulation.
const char* kRunBody =
    "{\"benchmark\":\"fft\","
    "\"config\":{\"num_cores\":2,\"max_cycles\":20000}}";

ServiceOptions test_opts(const std::string& cache_dir) {
  ServiceOptions o;
  o.cache_dir = cache_dir;
  o.sim_workers = 2;
  o.host_tokens = 2;
  o.queue_max = 64;
  return o;
}

std::string fresh_cache_dir(const char* tag) {
  // TempDir() outlives the process: wipe the slot so a "fresh cache" case
  // stays fresh on re-runs.
  const std::string dir = testing::TempDir() + "/ptb_serve_e2e_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

const std::string* find_header(const HttpResponse& r, const char* name) {
  for (const auto& [k, v] : r.headers) {
    if (k == name) return &v;  // client lowercases names
  }
  return nullptr;
}

HttpResponse must_request(std::uint16_t port, const std::string& method,
                          const std::string& target,
                          const std::string& body = "") {
  HttpResponse resp;
  std::string err;
  EXPECT_TRUE(
      http_request("127.0.0.1", port, method, target, body, {}, resp, err))
      << method << " " << target << ": " << err;
  return resp;
}

// The acceptance test: byte-identical answers from the persistent cache
// across a full daemon restart.
TEST(ServeE2E, RestartServesByteIdenticalFromPersistentCache) {
  const std::string cache_dir = fresh_cache_dir("restart");

  std::string first_body;
  std::string key;
  {
    Server server(test_opts(cache_dir), "127.0.0.1", 0, 2);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    const HttpResponse r =
        must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody);
    ASSERT_EQ(r.status, 200) << r.body;
    const std::string* cache = find_header(r, "x-ptb-cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(*cache, "miss") << "fresh cache dir cannot hit";
    const std::string* k = find_header(r, "x-ptb-key");
    ASSERT_NE(k, nullptr);
    key = *k;
    first_body = r.body;
    ASSERT_FALSE(first_body.empty());
    server.stop();
  }  // daemon gone; only the cache directory survives

  {
    Server server(test_opts(cache_dir), "127.0.0.1", 0, 2);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    const HttpResponse r =
        must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody);
    ASSERT_EQ(r.status, 200) << r.body;
    const std::string* cache = find_header(r, "x-ptb-cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(*cache, "hit") << "restart lost the persistent cache";
    EXPECT_EQ(r.body, first_body) << "cached answer not byte-identical";

    // The content address is stable across processes too.
    const HttpResponse by_key =
        must_request(server.port(), "GET", "/v1/results/" + key);
    ASSERT_EQ(by_key.status, 200);
    EXPECT_EQ(by_key.body, first_body);
    server.stop();
  }
}

TEST(ServeE2E, MetricsExposeRequestCacheAndQueueSeries) {
  Server server(test_opts(fresh_cache_dir("metrics")), "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  ASSERT_EQ(must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody)
                .status,
            200);
  const HttpResponse m = must_request(server.port(), "GET", "/metrics");
  ASSERT_EQ(m.status, 200);
  EXPECT_NE(m.content_type.find("text/plain"), std::string::npos);
  for (const char* series :
       {"ptb_serve_http_requests", "ptb_serve_jobs_submitted",
        "ptb_serve_cache_hits", "ptb_serve_cache_misses",
        "ptb_serve_cache_corrupt", "ptb_serve_queue_depth",
        "ptb_serve_jobs_in_flight", "ptb_serve_admission_host_tokens",
        "ptb_serve_http_request_ms"}) {
    EXPECT_NE(m.body.find(series), std::string::npos) << series;
  }
  // The one run above was a miss; the counter must say so.
  EXPECT_NE(m.body.find("ptb_serve_cache_misses 1"), std::string::npos)
      << m.body;
  server.stop();
}

// Extracts the value of `series` from a Prometheus exposition ("" absent).
std::string series_value(const std::string& text,
                         const std::string& series) {
  const std::size_t at = text.find("\n" + series + " ");
  if (at == std::string::npos) return "";
  const std::size_t start = at + 1 + series.size() + 1;
  return text.substr(start, text.find('\n', start) - start);
}

TEST(ServeE2E, AdmissionCapsInFlightSimulationsAtHostTokens) {
  // 2 workers but a host budget of 1: the scheduler may never have more
  // than one simulation in flight even with a deep single-tenant queue.
  // A poller samples the in-flight gauge while the sweep runs; sampling
  // can only under-observe a violation, never invent one, so a pass is
  // sound and a violation is caught with high probability.
  ServiceOptions opts = test_opts(fresh_cache_dir("admission"));
  opts.host_tokens = 1;
  Service service(opts);

  std::vector<RunRequest> reqs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunRequest r;
    r.benchmark = "fft";
    r.config.num_cores = 2;
    r.config.max_cycles = 20000;
    r.config.seed = seed;  // distinct addresses: all six really simulate
    reqs.push_back(r);
  }

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread poller([&] {
    while (!done.load()) {
      const std::string v =
          series_value(service.metrics_text(), "ptb_serve_jobs_in_flight");
      if (!v.empty() && std::strtod(v.c_str(), nullptr) > 1.0) {
        violations.fetch_add(1);
      }
    }
  });

  Service::Submitted submitted;
  std::string err;
  ASSERT_TRUE(service.submit("tenant-a", reqs, submitted, err)) << err;
  ASSERT_TRUE(service.wait(submitted.job_id));
  done.store(true);
  poller.join();

  EXPECT_EQ(violations.load(), 0) << "in-flight exceeded the token budget";
  const std::string status = service.job_status_json(submitted.job_id);
  EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos) << status;
  service.stop();
}

TEST(ServeE2E, SweepWaitReturnsEveryArtifactAndSecondSweepHits) {
  Server server(test_opts(fresh_cache_dir("sweep")), "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const std::string body =
      "{\"requests\":["
      "{\"benchmark\":\"fft\",\"config\":{\"num_cores\":2,"
      "\"max_cycles\":20000}},"
      "{\"benchmark\":\"radix\",\"config\":{\"num_cores\":2,"
      "\"max_cycles\":20000}}]}";
  const HttpResponse first =
      must_request(server.port(), "POST", "/v1/sweep?wait=1", body);
  ASSERT_EQ(first.status, 200) << first.body;
  EXPECT_NE(first.body.find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(first.body.find("\"artifact\":{"), std::string::npos);

  const HttpResponse second =
      must_request(server.port(), "POST", "/v1/sweep?wait=1", body);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(second.body.find("\"cache\":\"miss\""), std::string::npos)
      << "second sweep re-simulated";
  // Embedded artifacts are the same bytes, so the whole response document
  // is identical apart from the job id.
  EXPECT_NE(second.body.find("\"cache\":\"hit\""), std::string::npos);
  server.stop();
}

TEST(ServeE2E, AsyncSubmitThenPollJob) {
  Server server(test_opts(fresh_cache_dir("async")), "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const HttpResponse accepted =
      must_request(server.port(), "POST", "/v1/run", kRunBody);
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::string* job = find_header(accepted, "x-ptb-job");
  ASSERT_NE(job, nullptr);

  // Poll through the real route until the job lands (bounded by the test
  // timeout; each unit is milliseconds).
  std::string status;
  for (;;) {
    const HttpResponse r =
        must_request(server.port(), "GET", "/v1/jobs/" + *job);
    ASSERT_EQ(r.status, 200);
    status = r.body;
    if (status.find("\"state\":\"done\"") != std::string::npos ||
        status.find("\"state\":\"failed\"") != std::string::npos) {
      break;
    }
    // Gentle poll: a tight loop would churn thousands of one-shot
    // connections into TIME_WAIT while a sanitizer build simulates.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos) << status;
  EXPECT_NE(status.find("\"completed\":1"), std::string::npos) << status;
  server.stop();
}

// The request's trace id from the X-Ptb-Trace response header (0 when the
// header is absent, i.e. tracing off — span ids are minted from 1).
std::uint64_t trace_id_of(const HttpResponse& r) {
  const std::string* t = find_header(r, "x-ptb-trace");
  return t == nullptr ? 0 : std::strtoull(t->c_str(), nullptr, 16);
}

// Sorted root-relative name paths ("request/simulate/...") of every span
// in `trace_id`: the tree's *structure*, with all timing erased.
std::vector<std::string> span_paths(const ServeSpanLog& log,
                                    std::uint64_t trace_id) {
  std::map<std::uint32_t, const ServeSpan*> by_id;
  for (const ServeSpan& s : log.spans) {
    if (s.trace_id == trace_id) by_id[s.span_id] = &s;
  }
  std::vector<std::string> paths;
  for (const auto& [id, s] : by_id) {
    std::string path = s->name;
    for (const ServeSpan* p = s; p->parent_id != 0;) {
      const auto parent = by_id.find(p->parent_id);
      if (parent == by_id.end()) break;
      p = parent->second;
      path = p->name + "/" + path;
    }
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(ServeE2E, EventsStreamProgressThenTerminal) {
  ServiceOptions opts = test_opts(fresh_cache_dir("events"));
  opts.progress_every_cycles = 2000;  // ~10 progress events over 20k cycles
  Server server(opts, "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const HttpResponse accepted =
      must_request(server.port(), "POST", "/v1/run", kRunBody);
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::string* job = find_header(accepted, "x-ptb-job");
  ASSERT_NE(job, nullptr);

  // The stream replays the job's retained feed from seq 1 and then blocks
  // until the terminal event, so this single blocking GET is race-free no
  // matter how fast the simulation finished. The client de-chunks
  // transparently (the streaming response has no Content-Length).
  const HttpResponse stream = must_request(
      server.port(), "GET", "/v1/jobs/" + *job + "/events");
  ASSERT_EQ(stream.status, 200);
  EXPECT_NE(stream.content_type.find("text/event-stream"),
            std::string::npos);
  const std::string* te = find_header(stream, "transfer-encoding");
  ASSERT_NE(te, nullptr) << "stream must use chunked transfer-encoding";
  EXPECT_NE(te->find("chunked"), std::string::npos);

  const std::size_t progress = stream.body.find("event: progress");
  const std::size_t unit = stream.body.find("event: unit");
  const std::size_t done = stream.body.find("event: done");
  ASSERT_NE(progress, std::string::npos) << stream.body;
  ASSERT_NE(unit, std::string::npos) << stream.body;
  ASSERT_NE(done, std::string::npos) << stream.body;
  EXPECT_LT(progress, done) << "progress must precede the terminal event";
  EXPECT_LT(unit, done);
  // Progress payloads carry the live simulation counters.
  for (const char* field : {"\"cycle\":", "\"max_cycles\":", "\"ipc\":",
                            "\"watts\":", "\"phase\":"}) {
    EXPECT_NE(stream.body.find(field), std::string::npos) << field;
  }
  EXPECT_NE(stream.body.find("\"state\":\"done\""), std::string::npos);
  // Seq numbers start dense from 1.
  EXPECT_NE(stream.body.find("id: 1\n"), std::string::npos);

  // The stream counted as a streaming response, not a latency sample. The
  // transport bumps the counter after closing the stream's socket, so the
  // client can observe its own EOF first: poll briefly.
  std::string streams;
  for (int i = 0; i < 200 && streams != "1"; ++i) {
    streams = series_value(must_request(server.port(), "GET", "/metrics").body,
                           "ptb_serve_http_streams");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(streams, "1");
  server.stop();
}

TEST(ServeE2E, EventsStreamGetsAbortedOnDrain) {
  // One worker, two long units: unit 0 is still simulating and unit 1
  // still queued when the server drains. stop() must fail the queued unit
  // and emit a terminal "aborted" event so the open stream closes instead
  // of hanging until the client gives up (the satellite contract).
  ServiceOptions opts = test_opts(fresh_cache_dir("aborted"));
  opts.sim_workers = 1;
  opts.host_tokens = 1;
  Server server(opts, "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const std::string body =
      "{\"requests\":["
      "{\"benchmark\":\"fft\",\"config\":{\"num_cores\":2,"
      "\"max_cycles\":1500000}},"
      "{\"benchmark\":\"fft\",\"config\":{\"num_cores\":2,"
      "\"max_cycles\":1600000}}]}";
  const HttpResponse accepted =
      must_request(server.port(), "POST", "/v1/sweep", body);
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::string* jobp = find_header(accepted, "x-ptb-job");
  ASSERT_NE(jobp, nullptr);
  const std::string job = *jobp;

  const std::uint16_t port = server.port();
  std::string stream_body;
  std::thread streamer([&] {
    HttpResponse resp;
    std::string serr;
    if (http_request("127.0.0.1", port, "GET", "/v1/jobs/" + job + "/events",
                     "", {}, resp, serr)) {
      stream_body = resp.body;
    }
  });
  // Let the stream attach and unit 0 start; unit 1 (1.6M cycles behind a
  // single worker) cannot have been picked up yet.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();  // finishes unit 0, fails unit 1, aborts open feeds
  streamer.join();

  EXPECT_NE(stream_body.find("event: aborted"), std::string::npos)
      << stream_body;
  EXPECT_NE(stream_body.find("\"state\":\"aborted\""), std::string::npos);
  const std::string status = server.service().job_status_json(job);
  EXPECT_NE(status.find("\"state\":\"failed\""), std::string::npos) << status;
  EXPECT_NE(status.find("service shutting down"), std::string::npos)
      << status;
}

TEST(ServeE2E, SpanTreesAreStructurallyDeterministic) {
  Server server(test_opts(fresh_cache_dir("spans")), "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const HttpResponse miss =
      must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody);
  ASSERT_EQ(miss.status, 200);
  const HttpResponse hit1 =
      must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody);
  const HttpResponse hit2 =
      must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody);
  ASSERT_EQ(hit1.status, 200);
  ASSERT_EQ(hit2.status, 200);

  const std::uint64_t t_miss = trace_id_of(miss);
  const std::uint64_t t_hit1 = trace_id_of(hit1);
  const std::uint64_t t_hit2 = trace_id_of(hit2);
  ASSERT_NE(t_miss, 0u) << "tracing is on by default";
  ASSERT_NE(t_hit1, 0u);
  ASSERT_NE(t_hit2, 0u);
  ASSERT_NE(t_hit1, t_hit2) << "each request gets its own trace";

  const HttpResponse tr = must_request(server.port(), "GET", "/v1/trace");
  ASSERT_EQ(tr.status, 200);
  EXPECT_NE(tr.content_type.find("application/octet-stream"),
            std::string::npos);
  ServeSpanLog log;
  ASSERT_TRUE(ServeSpanLog::deserialize(tr.body, log))
      << "GET /v1/trace bytes must round-trip through ServeSpanLog";

  // The miss ran the full pipeline: every stage nests under the root (the
  // acceptance bar is >= 6 nested stage spans for a cache-miss run).
  const std::vector<std::string> miss_paths = span_paths(log, t_miss);
  for (const char* path :
       {"request", "request/parse", "request/queue_wait",
        "request/admission_wait", "request/cache_probe", "request/simulate",
        "request/serialize", "request/cache_publish"}) {
    EXPECT_NE(std::find(miss_paths.begin(), miss_paths.end(), path),
              miss_paths.end())
        << path;
  }
  std::size_t nested = 0;
  for (const std::string& p : miss_paths) {
    if (p.find('/') != std::string::npos) ++nested;
  }
  EXPECT_GE(nested, 6u);

  // Two identical cache-hit requests produce *structurally identical*
  // trees — same names, same nesting — regardless of scheduler timing
  // (admission_wait is always emitted, zero-length when never blocked).
  const std::vector<std::string> p1 = span_paths(log, t_hit1);
  const std::vector<std::string> p2 = span_paths(log, t_hit2);
  ASSERT_FALSE(p1.empty());
  EXPECT_EQ(p1, p2);
  EXPECT_NE(std::find(p1.begin(), p1.end(), "request/cache_probe"),
            p1.end());
  for (const std::string& p : p1) {
    EXPECT_EQ(p.find("simulate"), std::string::npos)
        << "a cache hit must not simulate: " << p;
  }

  // The Perfetto rendering of the same snapshot names the stages.
  const HttpResponse pj =
      must_request(server.port(), "GET", "/v1/trace?format=json");
  ASSERT_EQ(pj.status, 200);
  EXPECT_NE(pj.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(pj.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(pj.body.find("\"name\":\"simulate\""), std::string::npos);
  server.stop();
}

TEST(ServeE2E, TracingOnOffProducesByteIdenticalArtifacts) {
  // The observe-only contract: a daemon with the whole observability plane
  // disabled answers the same request with the same bytes. Fresh cache
  // dirs on both sides, so both simulate.
  ServiceOptions off = test_opts(fresh_cache_dir("obs_off"));
  off.trace_spans = 0;
  off.progress_every_cycles = 0;
  Server traced(test_opts(fresh_cache_dir("obs_on")), "127.0.0.1", 0, 2);
  Server dark(off, "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(traced.start(err)) << err;
  ASSERT_TRUE(dark.start(err)) << err;

  const HttpResponse a =
      must_request(traced.port(), "POST", "/v1/run?wait=1", kRunBody);
  const HttpResponse b =
      must_request(dark.port(), "POST", "/v1/run?wait=1", kRunBody);
  ASSERT_EQ(a.status, 200);
  ASSERT_EQ(b.status, 200);
  EXPECT_EQ(*find_header(a, "x-ptb-cache"), "miss");
  EXPECT_EQ(*find_header(b, "x-ptb-cache"), "miss");
  EXPECT_EQ(a.body, b.body)
      << "tracing must not perturb the simulation artifact";

  EXPECT_NE(find_header(a, "x-ptb-trace"), nullptr);
  EXPECT_EQ(find_header(b, "x-ptb-trace"), nullptr)
      << "no trace ids when tracing is off";
  EXPECT_EQ(must_request(dark.port(), "GET", "/v1/trace").status, 404);
  traced.stop();
  dark.stop();
}

TEST(ServeE2E, AccessLogWritesOneJsonLinePerRequest) {
  const std::string log_path =
      testing::TempDir() + "/ptb_serve_e2e_access.jsonl";
  std::filesystem::remove(log_path);
  ServiceOptions opts = test_opts(fresh_cache_dir("accesslog"));
  opts.log_file = log_path;
  opts.log_level = LogLevel::kDebug;
  Server server(opts, "127.0.0.1", 0, 2);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  ASSERT_EQ(must_request(server.port(), "POST", "/v1/run?wait=1", kRunBody)
                .status,
            200);
  ASSERT_EQ(must_request(server.port(), "GET", "/healthz").status, 200);
  server.stop();

  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open()) << log_path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u) << "one line per logged request";

  // Every line is a complete JSON document.
  for (const std::string& l : lines) {
    json::Value doc;
    std::string jerr;
    EXPECT_TRUE(json::parse(l, doc, jerr)) << jerr << ": " << l;
  }
  const std::string& run = lines[0];
  for (const char* field :
       {"\"ts_ms\":", "\"trace\":\"", "\"tenant\":\"default\"",
        "\"method\":\"POST\"", "\"path\":\"/v1/run\"",
        "\"query\":\"wait=1\"", "\"status\":200", "\"dur_ms\":",
        "\"cache\":\"miss\"", "\"job\":\"j"}) {
    EXPECT_NE(run.find(field), std::string::npos) << field << " in " << run;
  }
  // Debug level enriches job-bearing lines with the admission footprint
  // and the summed per-stage durations.
  EXPECT_NE(run.find("\"tokens_held\":1"), std::string::npos) << run;
  EXPECT_NE(run.find("\"stages\":{"), std::string::npos) << run;
  EXPECT_NE(run.find("\"simulate\":"), std::string::npos) << run;
  EXPECT_NE(lines[1].find("\"path\":\"/healthz\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"stages\""), std::string::npos)
      << "no job, no stage breakdown";
}

// Routing error surface, exercised without sockets through handle().
// Raw-socket request for wire-level cases the structured client cannot
// express (here: a Content-Length the server must refuse to buffer).
// Sends `bytes`, reads to EOF, returns everything the server answered.
std::string raw_request(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ServeE2E, OversizedContentLengthRejectedWith413) {
  // The body cap must trip on the declared Content-Length alone — the
  // server answers 413 and closes without waiting for (or buffering) the
  // advertised megabytes. Only the request head is ever sent here, so a
  // hang would mean the server tried to read the body.
  Server server(test_opts(fresh_cache_dir("toolarge")), "127.0.0.1", 0, 1);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;

  const std::string head =
      "POST /v1/run HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Content-Length: 1048577\r\n"  // 1 MiB cap + 1
      "Connection: close\r\n"
      "\r\n";
  const std::string resp = raw_request(server.port(), head);
  ASSERT_FALSE(resp.empty()) << "no response to oversized request";
  EXPECT_EQ(resp.rfind("HTTP/1.1 413 ", 0), 0u) << resp;

  // A request at the cap's edge with a *lying* (absent) body also cannot
  // wedge the worker: a fresh, well-formed request still gets served.
  EXPECT_EQ(must_request(server.port(), "GET", "/healthz").status, 200);
  server.stop();
}

TEST(ServeE2E, HandleErrorSurface) {
  Server server(test_opts(fresh_cache_dir("errors")), "127.0.0.1", 0, 1);

  const auto req = [](const char* method, const char* path,
                      const char* body = "") {
    HttpRequest r;
    r.method = method;
    r.path = path;
    r.body = body;
    return r;
  };

  EXPECT_EQ(server.handle(req("GET", "/healthz")).status, 200);
  EXPECT_EQ(server.handle(req("GET", "/no/such/route")).status, 404);
  EXPECT_EQ(server.handle(req("GET", "/v1/run")).status, 405);
  EXPECT_EQ(server.handle(req("POST", "/v1/run", "{not json")).status, 400);
  EXPECT_EQ(
      server.handle(req("POST", "/v1/run", "{\"benchmark\":\"nope\"}"))
          .status,
      400);
  EXPECT_EQ(server.handle(req("GET", "/v1/jobs/j99999999")).status, 404);
  EXPECT_EQ(
      server.handle(req("GET", "/v1/results/0123456789abcdef")).status,
      404);
  EXPECT_EQ(server.handle(req("GET", "/v1/results/not-a-key")).status, 404);

  // Drained service answers 503, not a hang.
  server.service().stop();
  EXPECT_EQ(server.handle(req("POST", "/v1/run", kRunBody)).status, 503);
}

}  // namespace
}  // namespace ptb::serve

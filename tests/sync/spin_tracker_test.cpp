#include "sync/spin_tracker.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(SpinTracker, DefaultBusy) {
  SpinTracker t;
  EXPECT_EQ(t.state(), ExecState::kBusy);
  EXPECT_FALSE(t.spinning());
}

TEST(SpinTracker, AttributesCyclesAndPower) {
  SpinTracker t;
  t.attribute_cycle(10.0);
  t.set_state(ExecState::kLockAcq);
  t.attribute_cycle(3.0);
  t.attribute_cycle(3.0);
  t.set_state(ExecState::kBarrier);
  t.attribute_cycle(2.0);
  EXPECT_EQ(t.cycles_in(ExecState::kBusy), 1u);
  EXPECT_EQ(t.cycles_in(ExecState::kLockAcq), 2u);
  EXPECT_EQ(t.cycles_in(ExecState::kBarrier), 1u);
  EXPECT_DOUBLE_EQ(t.power_in(ExecState::kLockAcq), 6.0);
  EXPECT_EQ(t.total_cycles(), 4u);
  EXPECT_DOUBLE_EQ(t.total_power(), 18.0);
  EXPECT_DOUBLE_EQ(t.spin_power(), 8.0);
}

TEST(SpinTracker, SpinningStates) {
  SpinTracker t;
  t.set_state(ExecState::kLockAcq);
  EXPECT_TRUE(t.spinning());
  t.set_state(ExecState::kLockRel);
  EXPECT_TRUE(t.spinning());
  t.set_state(ExecState::kBarrier);
  EXPECT_TRUE(t.spinning());
  t.set_state(ExecState::kBusy);
  EXPECT_FALSE(t.spinning());
}

TEST(ExecStateNames, AllNamed) {
  EXPECT_STREQ(exec_state_name(ExecState::kBusy), "Busy");
  EXPECT_STREQ(exec_state_name(ExecState::kLockAcq), "Lock-Acquisition");
  EXPECT_STREQ(exec_state_name(ExecState::kLockRel), "Lock-Release");
  EXPECT_STREQ(exec_state_name(ExecState::kBarrier), "Barrier");
}

}  // namespace
}  // namespace ptb

#include "sync/sync_state.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(SyncState, AddressesAreLineSeparated) {
  SyncState s(4, 2, 8);
  EXPECT_EQ(s.lock_addr(1) - s.lock_addr(0), SyncState::kLineBytes);
  EXPECT_EQ(s.barrier_addr(0) - s.lock_addr(3), SyncState::kLineBytes);
  // Counter and sense share a line (centralized barrier layout).
  EXPECT_EQ(s.barrier_sense_addr(0) / 64, s.barrier_addr(0) / 64);
}

TEST(SyncState, LockAcquireRelease) {
  SyncState s(1, 1, 2);
  EXPECT_EQ(s.read_lock(0), 0u);
  EXPECT_EQ(s.try_acquire(0, 3), 0u);  // old value 0 -> acquired
  EXPECT_EQ(s.read_lock(0), 1u);
  EXPECT_EQ(s.lock_holder(0), 3u);
  s.release(0, 3);
  EXPECT_EQ(s.read_lock(0), 0u);
  EXPECT_EQ(s.lock_holder(0), kNoCore);
}

TEST(SyncState, ContendedAcquireFails) {
  SyncState s(1, 1, 2);
  EXPECT_EQ(s.try_acquire(0, 0), 0u);
  EXPECT_EQ(s.try_acquire(0, 1), 1u);  // old value 1 -> failed
  EXPECT_EQ(s.lock_holder(0), 0u);
  EXPECT_EQ(s.acquisitions, 1u);
  EXPECT_EQ(s.failed_acquires, 1u);
}

TEST(SyncStateDeath, ReleaseByNonHolderAborts) {
  SyncState s(1, 1, 2);
  s.try_acquire(0, 0);
  EXPECT_DEATH(s.release(0, 1), "held by core");
}

TEST(SyncStateDeath, ReleaseOfFreeLockAborts) {
  SyncState s(1, 1, 2);
  EXPECT_DEATH(s.release(0, 0), "free lock");
}

TEST(SyncState, BarrierSenseReversal) {
  SyncState s(1, 1, 3);
  EXPECT_EQ(s.read_sense(0), 0u);
  EXPECT_EQ(s.arrive(0), 0u);        // sense 0, not last
  EXPECT_EQ(s.arrive(0), 0u);        // sense 0, not last
  const auto last = s.arrive(0);     // third of three
  EXPECT_EQ(last & 1u, 0u);          // sense at arrival was still 0
  EXPECT_NE(last & 2u, 0u);          // last flag
  EXPECT_EQ(s.read_sense(0), 1u);    // sense flipped
  EXPECT_EQ(s.barrier_episodes, 1u);
}

TEST(SyncState, BarrierReusableAcrossEpisodes) {
  SyncState s(1, 1, 2);
  for (int episode = 0; episode < 5; ++episode) {
    const auto a = s.arrive(0);
    const auto b = s.arrive(0);
    EXPECT_EQ(a & 2u, 0u);
    EXPECT_NE(b & 2u, 0u);
    EXPECT_EQ(static_cast<std::uint64_t>(a & 1u),
              static_cast<std::uint64_t>(episode % 2));
  }
  EXPECT_EQ(s.barrier_episodes, 5u);
}

TEST(SyncState, SingleThreadBarrierAlwaysLast) {
  SyncState s(1, 1, 1);
  EXPECT_NE(s.arrive(0) & 2u, 0u);
  EXPECT_NE(s.arrive(0) & 2u, 0u);
}

}  // namespace
}  // namespace ptb

// BCT spin detection (Li et al., TPDS 2006 — reference [12]).
#include "sync/bct_detector.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

MicroOp spin_load(Addr a) {
  MicroOp op;
  op.pc = 0x100;
  op.cls = OpClass::kLoad;
  op.addr = a;
  return op;
}

MicroOp spin_branch(bool taken) {
  MicroOp op;
  op.pc = 0x104;
  op.cls = OpClass::kBranch;
  op.branch_taken = taken;
  return op;
}

MicroOp compute(Pc pc, Addr a) {
  MicroOp op;
  op.pc = pc;
  op.cls = OpClass::kIntAlu;
  op.addr = a;
  return op;
}

TEST(BctDetector, DetectsIdenticalSpinIterations) {
  BctDetector d(3);
  for (int i = 0; i < 10; ++i) {
    d.on_commit(spin_load(0x8000));
    d.on_commit(spin_branch(true));
  }
  EXPECT_TRUE(d.spinning());
  EXPECT_EQ(d.detections(), 1u);
}

TEST(BctDetector, NoDetectionBeforeThreshold) {
  BctDetector d(5);
  for (int i = 0; i < 4; ++i) {
    d.on_commit(spin_load(0x8000));
    d.on_commit(spin_branch(true));
  }
  EXPECT_FALSE(d.spinning());
}

TEST(BctDetector, SpinExitClearsVerdict) {
  BctDetector d(3);
  for (int i = 0; i < 10; ++i) {
    d.on_commit(spin_load(0x8000));
    d.on_commit(spin_branch(true));
  }
  ASSERT_TRUE(d.spinning());
  d.on_commit(spin_load(0x8000));
  d.on_commit(spin_branch(false));  // loop exit: not-taken
  EXPECT_FALSE(d.spinning());
}

TEST(BctDetector, VaryingWorkIsNotSpinning) {
  BctDetector d(3);
  for (int i = 0; i < 50; ++i) {
    // Loop with changing machine state (different addresses).
    d.on_commit(compute(0x200, 0x1000 + i * 64));
    d.on_commit(spin_branch(true));
  }
  EXPECT_FALSE(d.spinning());
}

TEST(BctDetector, ReDetectsAfterExit) {
  BctDetector d(2);
  auto spin_for = [&](int iters) {
    for (int i = 0; i < iters; ++i) {
      d.on_commit(spin_load(0x8000));
      d.on_commit(spin_branch(true));
    }
  };
  spin_for(6);
  EXPECT_TRUE(d.spinning());
  d.on_commit(spin_branch(false));
  EXPECT_FALSE(d.spinning());
  spin_for(6);
  EXPECT_TRUE(d.spinning());
  EXPECT_EQ(d.detections(), 2u);
}

}  // namespace
}  // namespace ptb

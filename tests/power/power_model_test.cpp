#include "power/power_model.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

PowerConfig pcfg() { return PowerConfig{}; }

TEST(BaseEnergyModel, ClassMeansMatchConfig) {
  const PowerConfig cfg = pcfg();
  BaseEnergyModel m(cfg, 1);
  EXPECT_DOUBLE_EQ(m.class_mean(OpClass::kIntAlu), cfg.base_int_alu);
  EXPECT_DOUBLE_EQ(m.class_mean(OpClass::kFpMult), cfg.base_fp_mult);
  EXPECT_DOUBLE_EQ(m.class_mean(OpClass::kLoad), cfg.base_load);
}

TEST(BaseEnergyModel, JitterBounded) {
  const PowerConfig cfg = pcfg();
  BaseEnergyModel m(cfg, 1);
  for (Pc pc = 0; pc < 4096; pc += 4) {
    const double e = m.exact_base(OpClass::kLoad, pc);
    EXPECT_GE(e, cfg.base_load * (1.0 - cfg.base_jitter) - 1e-9);
    EXPECT_LE(e, cfg.base_load * (1.0 + cfg.base_jitter) + 1e-9);
  }
}

TEST(BaseEnergyModel, DeterministicPerPc) {
  BaseEnergyModel m(pcfg(), 1);
  EXPECT_DOUBLE_EQ(m.exact_base(OpClass::kFpAlu, 0x1234),
                   m.exact_base(OpClass::kFpAlu, 0x1234));
}

TEST(BaseEnergyModel, EightCentroids) {
  BaseEnergyModel m(pcfg(), 1);
  EXPECT_EQ(m.centroids().size(), 8u);
}

TEST(BaseEnergyModel, GroupingErrorUnderOnePercent) {
  // The paper: 8 k-means groups reproduce exact accounting with <1% error.
  BaseEnergyModel m(pcfg(), 1);
  EXPECT_LT(m.grouping_error(), 0.01);
}

TEST(BaseEnergyModel, PerInstructionErrorDiscriminatesGroupCounts) {
  PowerConfig few = pcfg(), many = pcfg();
  few.kmeans_groups = 2;
  many.kmeans_groups = 16;
  BaseEnergyModel m_few(few, 1), m_many(many, 1), m_eight(pcfg(), 1);
  EXPECT_GT(m_few.grouping_abs_error(), m_eight.grouping_abs_error());
  EXPECT_GT(m_eight.grouping_abs_error(), m_many.grouping_abs_error());
  // At the paper's 8 groups, per-instruction error is still small.
  EXPECT_LT(m_eight.grouping_abs_error(), 0.10);
}

TEST(BaseEnergyModel, GroupedIsNearestCentroid) {
  BaseEnergyModel m(pcfg(), 1);
  for (Pc pc = 0; pc < 256; pc += 4) {
    const double g = m.grouped_base(OpClass::kIntMult, pc);
    bool is_centroid = false;
    for (double c : m.centroids())
      if (c == g) is_centroid = true;
    EXPECT_TRUE(is_centroid);
  }
}

TEST(CoreCyclePower, InactiveCorePaysOnlyStatic) {
  const PowerConfig cfg = pcfg();
  CoreActivity a;
  a.active = false;
  a.gated = true;
  a.fetch_tokens = 999.0;  // must be ignored
  const double p = core_cycle_power(cfg, a);
  EXPECT_DOUBLE_EQ(p, cfg.leakage_per_core + cfg.uncore_per_core);
}

TEST(CoreCyclePower, GatedCorePaysResidual) {
  const PowerConfig cfg = pcfg();
  CoreActivity a;
  a.active = true;
  a.gated = true;
  const double p = core_cycle_power(cfg, a);
  EXPECT_DOUBLE_EQ(
      p, cfg.leakage_per_core + cfg.uncore_per_core + cfg.clock_gated_dynamic);
}

TEST(CoreCyclePower, ActivePowerScalesWithFetchTokens) {
  const PowerConfig cfg = pcfg();
  CoreActivity a;
  a.active = true;
  a.fetch_tokens = 10.0;
  const double p10 = core_cycle_power(cfg, a);
  a.fetch_tokens = 20.0;
  const double p20 = core_cycle_power(cfg, a);
  EXPECT_GT(p20, p10);
  EXPECT_NEAR(p20 - p10, 10.0 * (1.0 + cfg.ptht_overhead_frac), 1e-9);
}

TEST(CoreCyclePower, VddScalesQuadratically) {
  const PowerConfig cfg = pcfg();
  CoreActivity a;
  a.active = true;
  a.fetch_tokens = 100.0;
  a.vdd_ratio = 1.0;
  const double p1 = core_cycle_power(cfg, a);
  a.vdd_ratio = 0.9;
  const double p09 = core_cycle_power(cfg, a);
  const double dyn1 = p1 - cfg.leakage_per_core - cfg.uncore_per_core;
  const double dyn09 = p09 - 0.9 * cfg.leakage_per_core - cfg.uncore_per_core;
  EXPECT_NEAR(dyn09 / dyn1, 0.81, 1e-9);
}

TEST(CoreCyclePower, RobResidencyCharged) {
  const PowerConfig cfg = pcfg();
  CoreActivity a;
  a.active = true;
  a.rob_occupancy = 100;
  const double p = core_cycle_power(cfg, a);
  EXPECT_NEAR(p - cfg.leakage_per_core - cfg.uncore_per_core,
              100 * cfg.residency_token * (1.0 + cfg.ptht_overhead_frac),
              1e-9);
}

TEST(AnalyticPeak, AboveStaticAndReasonable) {
  const PowerConfig cfg = pcfg();
  const CoreConfig core;
  const double peak = analytic_peak_core_power(cfg, core);
  EXPECT_GT(peak, cfg.leakage_per_core + cfg.uncore_per_core);
  EXPECT_LT(peak, 1000.0);
}

TEST(AnalyticPeak, GrowsWithFetchWidth) {
  const PowerConfig cfg = pcfg();
  CoreConfig narrow, wide;
  narrow.fetch_width = 2;
  wide.fetch_width = 8;
  EXPECT_LT(analytic_peak_core_power(cfg, narrow),
            analytic_peak_core_power(cfg, wide));
}

}  // namespace
}  // namespace ptb

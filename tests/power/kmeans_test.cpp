#include "power/kmeans.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ptb {
namespace {

TEST(KMeans, SingleCluster) {
  Rng rng(1);
  std::vector<double> s{5.0, 5.1, 4.9, 5.05};
  const auto r = kmeans_1d(s, 1, 32, rng);
  ASSERT_EQ(r.centroids.size(), 1u);
  EXPECT_NEAR(r.centroids[0], 5.0125, 1e-9);
}

TEST(KMeans, SeparatesTwoObviousClusters) {
  Rng rng(2);
  std::vector<double> s;
  for (int i = 0; i < 50; ++i) s.push_back(1.0 + i * 0.001);
  for (int i = 0; i < 50; ++i) s.push_back(100.0 + i * 0.001);
  const auto r = kmeans_1d(s, 2, 64, rng);
  ASSERT_EQ(r.centroids.size(), 2u);
  EXPECT_NEAR(r.centroids[0], 1.0245, 0.01);
  EXPECT_NEAR(r.centroids[1], 100.0245, 0.01);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(r.assignment[i], 0u);
  for (std::size_t i = 50; i < 100; ++i) EXPECT_EQ(r.assignment[i], 1u);
}

TEST(KMeans, CentroidsSorted) {
  Rng rng(3);
  std::vector<double> s;
  for (int i = 0; i < 500; ++i) s.push_back((i * 37) % 100);
  const auto r = kmeans_1d(s, 8, 64, rng);
  EXPECT_TRUE(std::is_sorted(r.centroids.begin(), r.centroids.end()));
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  std::vector<double> s;
  Rng data(4);
  for (int i = 0; i < 1000; ++i) s.push_back(data.next_double() * 100);
  Rng r1(5), r2(5);
  const double i2 = kmeans_1d(s, 2, 64, r1).inertia;
  const double i8 = kmeans_1d(s, 8, 64, r2).inertia;
  EXPECT_LT(i8, i2);
}

TEST(KMeans, AssignmentIsNearest) {
  Rng rng(6);
  std::vector<double> s;
  for (int i = 0; i < 300; ++i) s.push_back((i % 30) * 3.3);
  const auto r = kmeans_1d(s, 5, 64, rng);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto a = r.assignment[i];
    const double d = std::abs(s[i] - r.centroids[a]);
    for (double c : r.centroids) {
      EXPECT_LE(d, std::abs(s[i] - c) + 1e-12);
    }
  }
}

TEST(NearestCentroid, BinarySearchCorrect) {
  const std::vector<double> c{1.0, 5.0, 10.0, 50.0};
  EXPECT_EQ(nearest_centroid(c, -10.0), 0u);
  EXPECT_EQ(nearest_centroid(c, 2.9), 0u);
  EXPECT_EQ(nearest_centroid(c, 3.1), 1u);
  EXPECT_EQ(nearest_centroid(c, 7.4), 1u);
  EXPECT_EQ(nearest_centroid(c, 7.6), 2u);
  EXPECT_EQ(nearest_centroid(c, 29.0), 2u);
  EXPECT_EQ(nearest_centroid(c, 31.0), 3u);
  EXPECT_EQ(nearest_centroid(c, 1e9), 3u);
}

TEST(NearestCentroid, ExactHits) {
  const std::vector<double> c{1.0, 5.0, 10.0};
  EXPECT_EQ(nearest_centroid(c, 1.0), 0u);
  EXPECT_EQ(nearest_centroid(c, 5.0), 1u);
  EXPECT_EQ(nearest_centroid(c, 10.0), 2u);
}

TEST(KMeans, DeterministicGivenSeed) {
  std::vector<double> s;
  Rng data(7);
  for (int i = 0; i < 200; ++i) s.push_back(data.next_double());
  Rng r1(8), r2(8);
  const auto a = kmeans_1d(s, 4, 64, r1);
  const auto b = kmeans_1d(s, 4, 64, r2);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace ptb

#include "power/ptht.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(Ptht, ColdLookupReturnsDefault) {
  Ptht t(8192);
  EXPECT_DOUBLE_EQ(t.lookup(0x1000, 42.0), 42.0);
  EXPECT_EQ(t.cold_misses, 1u);
}

TEST(Ptht, UpdateThenLookup) {
  Ptht t(8192);
  t.update(0x1000, 55.5);
  EXPECT_NEAR(t.lookup(0x1000, 0.0), 55.5, 1e-4);
}

TEST(Ptht, LastExecutionWins) {
  Ptht t(8192);
  t.update(0x1000, 10.0);
  t.update(0x1000, 99.0);
  EXPECT_NEAR(t.lookup(0x1000, 0.0), 99.0, 1e-4);
}

TEST(Ptht, TagMismatchFallsBackToDefault) {
  Ptht t(8192);
  // Two PCs that alias to the same entry (8192 entries, pc>>2 index).
  const Pc a = 0x1000;
  const Pc b = a + 8192 * 4;
  t.update(a, 33.0);
  EXPECT_DOUBLE_EQ(t.lookup(b, 7.0), 7.0);  // tagged for a, not b
  t.update(b, 44.0);
  EXPECT_NEAR(t.lookup(b, 0.0), 44.0, 1e-4);
  EXPECT_DOUBLE_EQ(t.lookup(a, 7.0), 7.0);  // b displaced a
}

TEST(Ptht, PaperSize8K) {
  Ptht t(8192);
  EXPECT_EQ(t.entries(), 8192u);
}

TEST(Ptht, ManyDistinctPcsWithinCapacity) {
  Ptht t(8192);
  for (Pc pc = 0; pc < 8192; ++pc) t.update(pc * 4, static_cast<double>(pc));
  int correct = 0;
  for (Pc pc = 0; pc < 8192; ++pc) {
    if (t.lookup(pc * 4, -1.0) >= 0.0) ++correct;
  }
  EXPECT_EQ(correct, 8192);
}

TEST(Ptht, StatsCount) {
  Ptht t(1024);
  t.update(0x10, 1.0);
  t.lookup(0x10, 0.0);
  t.lookup(0x20, 0.0);
  EXPECT_EQ(t.updates, 1u);
  EXPECT_EQ(t.lookups, 2u);
  EXPECT_EQ(t.cold_misses, 1u);
}

}  // namespace
}  // namespace ptb

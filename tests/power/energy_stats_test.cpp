#include "power/energy_stats.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(EnergyAccounting, EnergyIntegratesPower) {
  EnergyAccounting acct(100.0);
  acct.record_cycle(50.0);
  acct.record_cycle(150.0);
  acct.record_cycle(100.0);
  EXPECT_DOUBLE_EQ(acct.energy(), 300.0);
}

TEST(EnergyAccounting, AopbCountsOnlyOverBudget) {
  EnergyAccounting acct(100.0);
  acct.record_cycle(50.0);   // under: no AoPB
  acct.record_cycle(150.0);  // +50
  acct.record_cycle(100.0);  // exactly at budget: no AoPB
  acct.record_cycle(120.0);  // +20
  EXPECT_DOUBLE_EQ(acct.aopb(), 70.0);
}

TEST(EnergyAccounting, IdealEnforcerHasZeroAopb) {
  EnergyAccounting acct(100.0);
  for (int i = 0; i < 1000; ++i) acct.record_cycle(99.9);
  EXPECT_DOUBLE_EQ(acct.aopb(), 0.0);
}

TEST(EnergyAccounting, PowerStatTracksMoments) {
  EnergyAccounting acct(10.0);
  acct.record_cycle(5.0);
  acct.record_cycle(15.0);
  EXPECT_DOUBLE_EQ(acct.power_stat().mean(), 10.0);
  EXPECT_DOUBLE_EQ(acct.power_stat().max(), 15.0);
  EXPECT_DOUBLE_EQ(acct.power_stat().min(), 5.0);
}

TEST(EnergyAccounting, AopbNeverExceedsEnergy) {
  EnergyAccounting acct(1.0);
  for (int i = 0; i < 100; ++i) acct.record_cycle(static_cast<double>(i));
  EXPECT_LE(acct.aopb(), acct.energy());
  EXPECT_GT(acct.aopb(), 0.0);
}

}  // namespace
}  // namespace ptb

#include "power/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ptb {
namespace {

ThermalConfig tcfg() { return ThermalConfig{}; }

TEST(Thermal, StartsAtAmbient) {
  ThermalModel m(tcfg(), 4);
  for (CoreId c = 0; c < 4; ++c)
    EXPECT_DOUBLE_EQ(m.temperature(c), tcfg().ambient_c);
}

TEST(Thermal, ConvergesToSteadyState) {
  const ThermalConfig cfg = tcfg();
  ThermalModel m(cfg, 1);
  const double power = 100.0;
  // Step for many time constants.
  for (int i = 0; i < 100; ++i) m.step(0, power, cfg.tau_cycles);
  EXPECT_NEAR(m.temperature(0), cfg.ambient_c + cfg.r_thermal * power, 1e-6);
}

TEST(Thermal, MonotoneRiseUnderConstantPower) {
  ThermalModel m(tcfg(), 1);
  double prev = m.temperature(0);
  for (int i = 0; i < 20; ++i) {
    m.step(0, 80.0, 1000.0);
    EXPECT_GT(m.temperature(0), prev);
    prev = m.temperature(0);
  }
}

TEST(Thermal, CoolsWhenPowerDrops) {
  ThermalModel m(tcfg(), 1);
  for (int i = 0; i < 50; ++i) m.step(0, 100.0, 10000.0);
  const double hot = m.temperature(0);
  m.step(0, 0.0, 10000.0);
  EXPECT_LT(m.temperature(0), hot);
}

TEST(Thermal, ExactExponentialStep) {
  const ThermalConfig cfg = tcfg();
  ThermalModel m(cfg, 1);
  const double p = 50.0;
  m.step(0, p, cfg.tau_cycles);  // exactly one time constant
  const double steady = cfg.ambient_c + cfg.r_thermal * p;
  const double expected =
      steady + (cfg.ambient_c - steady) * std::exp(-1.0);
  EXPECT_NEAR(m.temperature(0), expected, 1e-9);
}

TEST(Thermal, StableMaxWithUniformCores) {
  ThermalModel m(tcfg(), 4);
  for (CoreId c = 0; c < 4; ++c) m.step(c, 60.0, 5000.0);
  EXPECT_DOUBLE_EQ(m.max_temperature(), m.temperature(0));
}

TEST(Thermal, HistoryRecordsSamples) {
  ThermalModel m(tcfg(), 1);
  for (int i = 0; i < 10; ++i) m.step(0, 50.0, 100.0);
  EXPECT_EQ(m.history(0).count(), 10u);
  EXPECT_GT(m.history(0).mean(), tcfg().ambient_c);
}

// A steadier power trace yields a lower temperature std-dev than an
// oscillating one with the same mean — the paper's temperature-stability
// claim for PTB in miniature.
TEST(Thermal, SteadyPowerHasLowerStdDevThanOscillating) {
  ThermalModel steady(tcfg(), 1), osc(tcfg(), 1);
  for (int i = 0; i < 2000; ++i) {
    steady.step(0, 50.0, 1000.0);
    osc.step(0, (i % 20 < 10) ? 0.0 : 100.0, 1000.0);
  }
  EXPECT_LT(steady.history(0).stddev(), osc.history(0).stddev());
}

}  // namespace
}  // namespace ptb

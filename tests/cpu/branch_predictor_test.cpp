#include "cpu/branch_predictor.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

CoreConfig core_cfg() { return CoreConfig{}; }

TEST(Gshare, LearnsAlwaysTaken) {
  GsharePredictor bp(core_cfg());
  const Pc pc = 0x1000;
  // A single always-taken branch saturates the 16-bit history register to
  // all-ones after 16 updates; train past that point so predict() indexes
  // a trained entry.
  for (int i = 0; i < 24; ++i) bp.update(pc, true);
  EXPECT_TRUE(bp.predict(pc));
}

TEST(Gshare, LearnsAlwaysNotTaken) {
  GsharePredictor bp(core_cfg());
  const Pc pc = 0x1000;
  for (int i = 0; i < 8; ++i) bp.update(pc, false);
  EXPECT_FALSE(bp.predict(pc));
}

TEST(Gshare, SaturatingCountersNeedTwoFlips) {
  GsharePredictor bp(core_cfg());
  const Pc pc = 0x2000;
  // Drive strongly taken until the history register saturates and the
  // stable entry is trained.
  for (int i = 0; i < 24; ++i) bp.update(pc, true);
  // One contrary outcome must not flip a saturated counter... note the
  // history shifts, so re-check at the same history point by saturating
  // every entry the branch touches.
  EXPECT_TRUE(bp.predict(pc));
}

TEST(Gshare, MispredictCounting) {
  GsharePredictor bp(core_cfg());
  const Pc pc = 0x3000;
  bp.update(pc, true);   // cold entry (weakly not-taken) -> mispredict
  EXPECT_GE(bp.mispredicts, 1u);
  const auto before = bp.mispredicts;
  for (int i = 0; i < 32; ++i) bp.update(pc, true);
  // After warm-up with a stable pattern, mispredicts stop accumulating.
  const auto during = bp.mispredicts;
  for (int i = 0; i < 32; ++i) bp.update(pc, true);
  EXPECT_EQ(bp.mispredicts, during);
  EXPECT_GE(during, before);
}

TEST(Gshare, HighAccuracyOnBiasedStream) {
  GsharePredictor bp(core_cfg());
  // 16 static branches, each with a fixed direction, visited round-robin.
  const int kBranches = 16;
  int mispredicts = 0, total = 0;
  for (int round = 0; round < 200; ++round) {
    for (int b = 0; b < kBranches; ++b) {
      const Pc pc = 0x4000 + b * 4;
      const bool actual = (b % 3) != 0;
      if (round > 4) {  // measure after warmup
        ++total;
        if (bp.predict(pc) != actual) ++mispredicts;
      }
      bp.update(pc, actual);
    }
  }
  EXPECT_LT(static_cast<double>(mispredicts) / total, 0.03);
}

TEST(Gshare, LookupCounterAdvances) {
  GsharePredictor bp(core_cfg());
  bp.predict(0x100);
  bp.predict(0x200);
  EXPECT_EQ(bp.lookups, 2u);
}

}  // namespace
}  // namespace ptb

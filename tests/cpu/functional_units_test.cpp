#include "cpu/functional_units.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(FunctionalUnits, PoolLimitsPerCycle) {
  const CoreConfig cfg;  // 6 IntAlu, 2 IntMult, 4 FpAlu, 4 FpMult
  FunctionalUnits fus(cfg);
  fus.begin_cycle();
  for (std::uint32_t i = 0; i < cfg.int_mult; ++i)
    EXPECT_TRUE(fus.try_issue(OpClass::kIntMult));
  EXPECT_FALSE(fus.try_issue(OpClass::kIntMult));
}

TEST(FunctionalUnits, BeginCycleResets) {
  FunctionalUnits fus(CoreConfig{});
  fus.begin_cycle();
  EXPECT_TRUE(fus.try_issue(OpClass::kIntMult));
  EXPECT_TRUE(fus.try_issue(OpClass::kIntMult));
  EXPECT_FALSE(fus.try_issue(OpClass::kIntMult));
  fus.begin_cycle();
  EXPECT_TRUE(fus.try_issue(OpClass::kIntMult));
}

TEST(FunctionalUnits, IndependentPools) {
  const CoreConfig cfg;
  FunctionalUnits fus(cfg);
  fus.begin_cycle();
  for (std::uint32_t i = 0; i < cfg.int_mult; ++i)
    ASSERT_TRUE(fus.try_issue(OpClass::kIntMult));
  // Exhausting IntMult must not affect FpMult.
  EXPECT_TRUE(fus.try_issue(OpClass::kFpMult));
}

TEST(FunctionalUnits, MemoryOpsShareL1Ports) {
  const CoreConfig cfg;  // 2 L1D ports
  FunctionalUnits fus(cfg);
  fus.begin_cycle();
  EXPECT_TRUE(fus.try_issue(OpClass::kLoad));
  EXPECT_TRUE(fus.try_issue(OpClass::kStore));
  // Loads, stores, and atomics each draw from their own class counter in
  // this model, but each class is individually port-limited.
  EXPECT_FALSE(fus.try_issue(OpClass::kLoad) &&
               fus.try_issue(OpClass::kLoad));
}

TEST(FunctionalUnits, Latencies) {
  FunctionalUnits fus(CoreConfig{});
  EXPECT_EQ(fus.latency(OpClass::kIntAlu), 1u);
  EXPECT_EQ(fus.latency(OpClass::kIntMult), 3u);
  EXPECT_EQ(fus.latency(OpClass::kFpAlu), 2u);
  EXPECT_EQ(fus.latency(OpClass::kFpMult), 4u);
  EXPECT_EQ(fus.latency(OpClass::kBranch), 1u);
}

}  // namespace
}  // namespace ptb

// Core pipeline behaviour driven by scripted micro-op programs.
#include "cpu/core.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_system.hpp"
#include "noc/mesh.hpp"
#include "power/power_model.hpp"
#include "sync/sync_state.hpp"

namespace ptb {
namespace {

/// Scripted program: plays back a fixed op list, optionally blocking.
class ScriptProgram final : public ThreadProgram {
 public:
  explicit ScriptProgram(std::vector<MicroOp> ops) : ops_(std::move(ops)) {}

  FetchStatus next(MicroOp& out) override {
    if (waiting_) return FetchStatus::kStall;
    if (pos_ >= ops_.size()) return FetchStatus::kFinished;
    out = ops_[pos_++];
    if (out.blocks_generation) waiting_ = true;
    return FetchStatus::kOp;
  }

  void on_value(const MicroOp&, std::uint64_t value) override {
    waiting_ = false;
    last_value_ = value;
    ++values_seen_;
  }

  bool finished() const override {
    return pos_ >= ops_.size() && !waiting_;
  }

  std::uint64_t last_value_ = 0;
  int values_seen_ = 0;

 private:
  std::vector<MicroOp> ops_;
  std::size_t pos_ = 0;
  bool waiting_ = false;
};

MicroOp alu(Pc pc, std::uint8_t dep = 0) {
  MicroOp op;
  op.pc = pc;
  op.cls = OpClass::kIntAlu;
  op.dep1 = dep;
  return op;
}

MicroOp load(Pc pc, Addr a) {
  MicroOp op;
  op.pc = pc;
  op.cls = OpClass::kLoad;
  op.addr = a;
  return op;
}

class CoreTest : public ::testing::Test {
 protected:
  CoreTest()
      : cfg_(make_cfg()), mesh_(cfg_.noc, 2, 1), mem_(cfg_, mesh_),
        sync_(4, 1, 2), energy_(cfg_.power, 1) {}

  static SimConfig make_cfg() {
    SimConfig c;
    c.num_cores = 2;
    return c;
  }

  /// Functionally warms the instruction lines of [base, base+bytes) for a
  /// core, so timing tests measure the pipeline rather than cold I-misses.
  void warm_code(CoreId c, Pc base, std::uint32_t bytes) {
    for (Addr a = base & ~Addr{63}; a < base + bytes; a += 64) {
      mem_.directory().warm(c, a / 64, /*instruction=*/true, false);
    }
  }

  /// Runs the core until finished or `max` cycles.
  Cycle run_to_completion(Core& core, Cycle max = 100000) {
    Cycle t = 0;
    for (; t < max && !core.finished(); ++t) core.tick(t);
    return t;
  }

  SimConfig cfg_;
  Mesh mesh_;
  MemorySystem mem_;
  SyncState sync_;
  BaseEnergyModel energy_;
};

TEST_F(CoreTest, ExecutesStraightLineCode) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 100; ++i) ops.push_back(alu(0x1000 + i * 4));
  ScriptProgram prog(ops);
  Core core(0, cfg_, mem_, sync_, prog, energy_);
  warm_code(0, 0x1000, 100 * 4);
  const Cycle t = run_to_completion(core);
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(core.committed, 100u);
  EXPECT_LT(t, 200u);  // independent ALU ops: way under 2 CPI
}

TEST_F(CoreTest, DependencyChainSerializes) {
  // 64 ops each depending on the previous: takes >= 64 cycles beyond the
  // parallel case.
  std::vector<MicroOp> chain, parallel;
  for (int i = 0; i < 64; ++i) {
    chain.push_back(alu(0x1000 + i * 4, 1));
    parallel.push_back(alu(0x1000 + i * 4, 0));
  }
  ScriptProgram p1(chain), p2(parallel);
  Core c1(0, cfg_, mem_, sync_, p1, energy_);
  Core c2(1, cfg_, mem_, sync_, p2, energy_);
  warm_code(0, 0x1000, 64 * 4);
  warm_code(1, 0x1000, 64 * 4);
  const Cycle t1 = run_to_completion(c1);
  const Cycle t2 = run_to_completion(c2);
  EXPECT_GT(t1, t2);
  EXPECT_GE(t1, 64u);
}

TEST_F(CoreTest, FetchLimitThrottles) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 200; ++i) ops.push_back(alu(0x1000 + i * 4));
  ScriptProgram p1(ops), p2(ops);
  Core fast(0, cfg_, mem_, sync_, p1, energy_);
  Core slow(1, cfg_, mem_, sync_, p2, energy_);
  warm_code(0, 0x1000, 200 * 4);
  warm_code(1, 0x1000, 200 * 4);
  slow.set_fetch_limit(1);
  const Cycle t_fast = run_to_completion(fast);
  const Cycle t_slow = run_to_completion(slow);
  EXPECT_GT(t_slow, t_fast);
  EXPECT_GE(t_slow, 200u);  // 1 op/cycle at most
}

TEST_F(CoreTest, FetchGateStallsCompletely) {
  std::vector<MicroOp> ops{alu(0x1000)};
  ScriptProgram prog(ops);
  Core core(0, cfg_, mem_, sync_, prog, energy_);
  core.set_fetch_limit(0);
  for (Cycle t = 0; t < 100; ++t) core.tick(t);
  EXPECT_FALSE(core.finished());
  EXPECT_EQ(core.fetched, 0u);
  core.set_fetch_limit(4);
  run_to_completion(core);
  EXPECT_TRUE(core.finished());
}

TEST_F(CoreTest, MispredictCausesFlushBubble) {
  // A mispredicted branch (cold predictor defaults to not-taken; actual
  // taken) must cost at least the refill penalty.
  std::vector<MicroOp> with_branch, without;
  for (int i = 0; i < 8; ++i) with_branch.push_back(alu(0x1000 + i * 4));
  MicroOp br;
  br.pc = 0x2000;
  br.cls = OpClass::kBranch;
  br.branch_taken = true;  // cold gshare predicts not-taken -> mispredict
  with_branch.push_back(br);
  for (int i = 0; i < 8; ++i)
    with_branch.push_back(alu(0x3000 + i * 4));
  without = with_branch;
  without[8].branch_taken = false;  // correctly predicted

  ScriptProgram p1(with_branch), p2(without);
  Core c1(0, cfg_, mem_, sync_, p1, energy_);
  Core c2(1, cfg_, mem_, sync_, p2, energy_);
  const Cycle t_miss = run_to_completion(c1);
  const Cycle t_hit = run_to_completion(c2);
  EXPECT_EQ(c1.flushes, 1u);
  EXPECT_EQ(c2.flushes, 0u);
  EXPECT_GE(t_miss, t_hit + cfg_.core.pipeline_stages - 2);
}

TEST_F(CoreTest, BlockingLoadStallsGeneration) {
  std::vector<MicroOp> ops;
  MicroOp bl = load(0x1000, 0x80000);
  bl.blocks_generation = true;
  ops.push_back(bl);
  ops.push_back(alu(0x1004));
  ScriptProgram prog(ops);
  Core core(0, cfg_, mem_, sync_, prog, energy_);
  const Cycle t = run_to_completion(core);
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(prog.values_seen_, 1);
  // Cold-miss latency (>= DRAM) is on the critical path.
  EXPECT_GE(t, cfg_.mem.dram_latency);
}

TEST_F(CoreTest, SyncRmwAppliesLockSemantics) {
  MicroOp rmw;
  rmw.pc = 0x1000;
  rmw.cls = OpClass::kAtomicRmw;
  rmw.addr = sync_.lock_addr(0);
  rmw.blocks_generation = true;
  rmw.sync = SyncRole::kLockTryAcquire;
  rmw.sync_id = 0;
  ScriptProgram prog({rmw});
  Core core(0, cfg_, mem_, sync_, prog, energy_);
  run_to_completion(core);
  EXPECT_EQ(prog.last_value_, 0u);       // old value: lock was free
  EXPECT_EQ(sync_.read_lock(0), 1u);     // now held
  EXPECT_EQ(sync_.lock_holder(0), 0u);
}

TEST_F(CoreTest, PthtUpdatedAtCommit) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 10; ++i) ops.push_back(alu(0x1000));
  ScriptProgram prog(ops);
  Core core(0, cfg_, mem_, sync_, prog, energy_);
  run_to_completion(core);
  EXPECT_GE(core.ptht().updates, 10u);
  // The stored cost must be at least the instruction's grouped base.
  const double stored = core.ptht().lookup(0x1000, -1.0);
  EXPECT_GE(stored, energy_.grouped_base(OpClass::kIntAlu, 0x1000));
}

TEST_F(CoreTest, IdleWhenNothingToDo) {
  ScriptProgram prog({});
  Core core(0, cfg_, mem_, sync_, prog, energy_);
  core.tick(0);
  EXPECT_TRUE(core.idle());
  EXPECT_TRUE(core.finished());
}

TEST_F(CoreTest, RobOccupancyBounded) {
  std::vector<MicroOp> ops;
  // Long-latency loads (cold misses) back up the ROB.
  for (int i = 0; i < 400; ++i)
    ops.push_back(load(0x1000 + i * 4, 0x200000 + i * 4096));
  ScriptProgram prog(ops);
  Core core(0, cfg_, mem_, sync_, prog, energy_);
  warm_code(0, 0x1000, 400 * 4);
  std::uint32_t max_occ = 0;
  for (Cycle t = 0; t < 20000 && !core.finished(); ++t) {
    core.tick(t);
    max_occ = std::max(max_occ, core.rob_occupancy());
  }
  EXPECT_LE(max_occ, cfg_.core.rob_entries);
  EXPECT_GT(max_occ, cfg_.core.lsq_entries / 2);  // misses do back it up
}

}  // namespace
}  // namespace ptb

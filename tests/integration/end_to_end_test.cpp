// Cross-module integration: real benchmarks through the full stack, with
// shape assertions matching the paper's qualitative claims. Core counts and
// workloads are kept small so the whole suite stays fast.
#include <gtest/gtest.h>

#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

RunResult run_tech(const WorkloadProfile& p, std::uint32_t cores,
                   TechniqueKind kind, bool ptb,
                   PtbPolicy pol = PtbPolicy::kToAll, double relax = 0.0) {
  TechniqueSpec t{"t", kind, ptb, pol, relax};
  return run_one(p, make_sim_config(cores, t));
}

TEST(EndToEnd, AllBenchmarksFinishOnFourCores) {
  for (const auto& p : benchmark_suite()) {
    SimConfig cfg = make_sim_config(
        4, TechniqueSpec{"none", TechniqueKind::kNone, false,
                         PtbPolicy::kToAll, 0.0});
    const RunResult r = run_one(p, cfg);
    EXPECT_FALSE(r.hit_max_cycles) << p.name;
    EXPECT_GT(r.total_committed, p.ops_per_iteration) << p.name;
  }
}

TEST(EndToEnd, PtbBeatsNaiveTwoLevelOnAccuracy) {
  // The paper's core claim (Figures 9-11): PTB+2Level matches the budget
  // far more accurately than the same local techniques without balancing.
  const auto& p = benchmark_by_name("fft");
  const RunResult base = run_tech(p, 8, TechniqueKind::kNone, false);
  const RunResult naive = run_tech(p, 8, TechniqueKind::kTwoLevel, false);
  const RunResult ptb = run_tech(p, 8, TechniqueKind::kTwoLevel, true);
  ASSERT_GT(base.aopb, 0.0);
  const double naive_pct = naive.aopb / base.aopb;
  const double ptb_pct = ptb.aopb / base.aopb;
  EXPECT_LT(ptb_pct, 0.5 * naive_pct);
  EXPECT_LT(ptb_pct, 0.35);  // strong accuracy, paper reports ~0.1
}

TEST(EndToEnd, PtbEnergyCostIsSmall) {
  const auto& p = benchmark_by_name("ocean");
  const RunResult base = run_tech(p, 8, TechniqueKind::kNone, false);
  const RunResult ptb = run_tech(p, 8, TechniqueKind::kTwoLevel, true);
  const double energy_delta = (ptb.energy - base.energy) / base.energy;
  EXPECT_LT(std::abs(energy_delta), 0.10);  // paper: ~±3%
}

TEST(EndToEnd, SpinTimeGrowsWithCoreCount) {
  // Figure 3: the spinning fraction grows with the number of cores.
  const auto& p = benchmark_by_name("unstructured");
  double frac2 = 0.0, frac8 = 0.0;
  for (std::uint32_t cores : {2u, 8u}) {
    SimConfig cfg = make_sim_config(
        cores, TechniqueSpec{"none", TechniqueKind::kNone, false,
                             PtbPolicy::kToAll, 0.0});
    const RunResult r = run_one(p, cfg);
    Cycle spin = 0, total = 0;
    for (const auto& c : r.cores) {
      spin += c.state_cycles[1] + c.state_cycles[2] + c.state_cycles[3];
      for (auto sc : c.state_cycles) total += sc;
    }
    const double frac = static_cast<double>(spin) / total;
    if (cores == 2) frac2 = frac; else frac8 = frac;
  }
  EXPECT_GT(frac8, frac2);
}

TEST(EndToEnd, LockBoundAppsSpinInLockAcquisition) {
  const auto& p = benchmark_by_name("fluidanimate");
  const RunResult r = run_tech(p, 8, TechniqueKind::kNone, false);
  Cycle lock_acq = 0, barrier = 0;
  for (const auto& c : r.cores) {
    lock_acq += c.state_cycles[1];
    barrier += c.state_cycles[3];
  }
  EXPECT_GT(lock_acq, barrier);
}

TEST(EndToEnd, BarrierAppsSpinInBarriers) {
  const auto& p = benchmark_by_name("ocean");
  const RunResult r = run_tech(p, 8, TechniqueKind::kNone, false);
  Cycle lock_acq = 0, barrier = 0;
  for (const auto& c : r.cores) {
    lock_acq += c.state_cycles[1];
    barrier += c.state_cycles[3];
  }
  EXPECT_GT(barrier, lock_acq);
}

TEST(EndToEnd, NoContentionAppsBarelySpin) {
  const auto& p = benchmark_by_name("swaptions");
  const RunResult r = run_tech(p, 8, TechniqueKind::kNone, false);
  Cycle spin = 0, total = 0;
  for (const auto& c : r.cores) {
    spin += c.state_cycles[1] + c.state_cycles[2] + c.state_cycles[3];
    for (auto sc : c.state_cycles) total += sc;
  }
  EXPECT_LT(static_cast<double>(spin) / total, 0.25);
}

TEST(EndToEnd, RelaxedPtbSavesEnergyVsStrict) {
  // Section IV.C: relaxing the accuracy constraint trades AoPB for energy.
  const auto& p = benchmark_by_name("blackscholes");
  const RunResult strict =
      run_tech(p, 8, TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll, 0.0);
  const RunResult relaxed =
      run_tech(p, 8, TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll, 0.2);
  EXPECT_LE(relaxed.energy, strict.energy * 1.02);
  EXPECT_GE(relaxed.aopb, strict.aopb);  // accuracy given up
}

TEST(EndToEnd, DynamicPolicyRunsAndSelectsBoth) {
  const auto& p = benchmark_by_name("waternsq");
  const RunResult r =
      run_tech(p, 8, TechniqueKind::kTwoLevel, true, PtbPolicy::kDynamic);
  EXPECT_FALSE(r.hit_max_cycles);
  EXPECT_GT(r.to_one_cycles + r.to_all_cycles, 0u);
  EXPECT_GT(r.to_one_cycles, 0u);  // lock phases
  EXPECT_GT(r.to_all_cycles, 0u);  // barrier phases
}

TEST(EndToEnd, ThriftyBarrierSavesEnergyButNotAopb) {
  // Section II.C: prior low-power-spinning art reduces energy but cannot
  // match a power budget.
  const auto& p = benchmark_by_name("ocean");
  const RunResult base = run_tech(p, 8, TechniqueKind::kNone, false);
  const RunResult tb = run_tech(p, 8, TechniqueKind::kThriftyBarrier, false);
  EXPECT_FALSE(tb.hit_max_cycles);
  EXPECT_GT(tb.barrier_sleep_cycles, 0u);
  EXPECT_LT(tb.energy, base.energy);
  // The budget error barely moves (no enforcement).
  EXPECT_GT(tb.aopb, 0.6 * base.aopb);
}

TEST(EndToEnd, MeetingPointsDelaysNonCriticalThreads) {
  const auto& p = benchmark_by_name("radix");  // high imbalance
  const RunResult base = run_tech(p, 8, TechniqueKind::kNone, false);
  const RunResult mp = run_tech(p, 8, TechniqueKind::kMeetingPoints, false);
  EXPECT_FALSE(mp.hit_max_cycles);
  EXPECT_GT(mp.meeting_point_episodes, 0u);
  EXPECT_LT(mp.energy, base.energy);  // slack converted into savings
  // Thread delaying must not blow up the critical path.
  EXPECT_LT(static_cast<double>(mp.cycles),
            1.15 * static_cast<double>(base.cycles));
}

TEST(EndToEnd, SpinnerGatingSavesEnergyOnLockBoundApp) {
  // The paper's future work: PTB as a spin detector that gates spinners.
  const auto& p = benchmark_by_name("fluidanimate");
  TechniqueSpec ptb{"ptb", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  const RunResult plain = run_one(p, make_sim_config(8, ptb));
  SimConfig gated_cfg = make_sim_config(8, ptb);
  gated_cfg.ptb.gate_spinners = true;
  const RunResult gated = run_one(p, gated_cfg);
  EXPECT_GT(gated.spin_gated_cycles, 0u);
  EXPECT_LT(gated.energy, plain.energy);  // the point of the extension
  // And it must not deadlock or blow up the runtime.
  EXPECT_FALSE(gated.hit_max_cycles);
  EXPECT_LT(static_cast<double>(gated.cycles),
            1.25 * static_cast<double>(plain.cycles));
}

TEST(EndToEnd, SpinnerGatingHarmlessWithoutSpinning) {
  const auto& p = benchmark_by_name("swaptions");
  TechniqueSpec ptb{"ptb", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  SimConfig gated_cfg = make_sim_config(4, ptb);
  gated_cfg.ptb.gate_spinners = true;
  const RunResult gated = run_one(p, gated_cfg);
  EXPECT_FALSE(gated.hit_max_cycles);
}

TEST(EndToEnd, PtbAccuracyImprovesWithCoreCount) {
  // Paper Section IV.A: accuracy on matching the budget increases with the
  // number of cores (more donors to draw from).
  const auto& p = benchmark_by_name("barnes");
  double pct4 = 0.0, pct16 = 0.0;
  for (std::uint32_t cores : {4u, 16u}) {
    const RunResult base = run_tech(p, cores, TechniqueKind::kNone, false);
    const RunResult ptb = run_tech(p, cores, TechniqueKind::kTwoLevel, true);
    const double pct = base.aopb > 0 ? ptb.aopb / base.aopb : 0.0;
    if (cores == 4) pct4 = pct; else pct16 = pct;
  }
  EXPECT_LT(pct16, pct4 + 0.05);
}

}  // namespace
}  // namespace ptb

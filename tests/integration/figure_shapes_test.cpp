// Shape assertions for the paper's figures at reduced scale (8 cores, a
// benchmark subset) so the reproduction cannot silently drift: if a
// calibration change breaks a figure's qualitative story, a test fails.
#include <gtest/gtest.h>

#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

RunResult run_cfg(const WorkloadProfile& p, std::uint32_t cores,
                  const TechniqueSpec& t) {
  return run_one(p, make_sim_config(cores, t));
}

const TechniqueSpec kNone{"none", TechniqueKind::kNone, false,
                          PtbPolicy::kToAll, 0.0};
const TechniqueSpec kPtb{"ptb", TechniqueKind::kTwoLevel, true,
                         PtbPolicy::kToAll, 0.0};
const TechniqueSpec kDvfsSpec{"dvfs", TechniqueKind::kDvfs, false,
                              PtbPolicy::kToAll, 0.0};

// Figure 4's trend: spin power share grows with core count.
TEST(FigureShapes, SpinPowerShareGrowsWithCores) {
  const auto& p = benchmark_by_name("waternsq");
  double share2 = 0.0, share8 = 0.0;
  for (std::uint32_t cores : {2u, 8u}) {
    const RunResult r = run_cfg(p, cores, kNone);
    const double share = r.spin_energy / r.energy;
    (cores == 2 ? share2 : share8) = share;
  }
  EXPECT_GT(share8, share2);
}

// Figure 2/10's contrast: for a barrier-bound app, PTB beats DVFS on AoPB
// by a large factor.
TEST(FigureShapes, PtbBeatsDvfsOnBarrierApp) {
  const auto& p = benchmark_by_name("ocean");
  const RunResult base = run_cfg(p, 8, kNone);
  const RunResult dvfs = run_cfg(p, 8, kDvfsSpec);
  const RunResult ptb = run_cfg(p, 8, kPtb);
  ASSERT_GT(base.aopb, 0.0);
  EXPECT_LT(ptb.aopb * 2.0, dvfs.aopb);  // at least 2x more accurate
}

// Figure 6's premise: a mostly-spinning core consumes well under the local
// budget on average.
TEST(FigureShapes, SpinningCoresSitUnderTheLocalBudget) {
  const auto& p = benchmark_by_name("unstructured");
  SimConfig cfg = make_sim_config(8, kNone);
  CmpSimulator sim(cfg, p);
  const RunResult r = sim.run();
  const double local_budget = sim.budgets().local_budget();
  // CMP mean power per core stays under the local budget for this
  // spin-dominated benchmark.
  EXPECT_LT(r.power.mean() / 8.0, local_budget);
}

// Figure 9's monotonicity at reduced scale: PTB AoPB at 8 cores is no
// worse than at 2 cores (it improves with more donors).
TEST(FigureShapes, PtbAccuracyNotWorseWithMoreCores) {
  const auto& p = benchmark_by_name("tomcatv");
  double pct2 = 0.0, pct8 = 0.0;
  for (std::uint32_t cores : {2u, 8u}) {
    const RunResult base = run_cfg(p, cores, kNone);
    const RunResult ptb = run_cfg(p, cores, kPtb);
    const double pct = base.aopb > 0 ? ptb.aopb / base.aopb : 0.0;
    (cores == 2 ? pct2 : pct8) = pct;
  }
  EXPECT_LE(pct8, pct2 + 0.05);
}

// Section IV.D's arithmetic: a lower AoPB error admits more cores per TDP.
TEST(FigureShapes, TdpCoreCountMonotoneInAccuracy) {
  auto cores_at = [](double err) {
    const double per_core = 100.0 / 16.0 * 0.5 * (1.0 + err);
    return static_cast<int>(100.0 / per_core);
  };
  EXPECT_GT(cores_at(0.08), cores_at(0.40));
  EXPECT_GT(cores_at(0.40), cores_at(0.90));
  EXPECT_EQ(cores_at(0.0), 32);
}

// The PTB wire-power overhead (+1%) is actually charged: with everything
// else equal and no balancing possible (1 benchmark where nobody spins and
// the budget never binds), PTB energy is >= the naive runs's.
TEST(FigureShapes, PtbWireOverheadIsCharged) {
  WorkloadProfile p;
  p.name = "flat";
  p.iterations = 1;
  p.ops_per_iteration = 3000;
  p.barrier_per_iter = false;
  SimConfig with = make_sim_config(2, kPtb);
  SimConfig without = make_sim_config(2, kNone);
  with.budget_fraction = 50.0;  // budget never binds: pure overhead case
  without.budget_fraction = 50.0;
  const RunResult a = run_one(p, without);
  const RunResult b = run_one(p, with);
  EXPECT_GT(b.energy, a.energy * 1.002);
}

}  // namespace
}  // namespace ptb

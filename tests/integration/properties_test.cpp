// Property-style sweeps across configurations (parameterized gtest).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

WorkloadProfile prop_profile() {
  WorkloadProfile p;
  p.name = "prop";
  p.iterations = 2;
  p.ops_per_iteration = 3000;
  p.imbalance = 0.15;
  p.num_locks = 2;
  p.cs_per_1k_ops = 3.0;
  return p;
}

// --- Property: determinism holds for every (cores, technique) pair. ---
class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(DeterminismSweep, TwoRunsBitIdentical) {
  const auto [cores, tech] = GetParam();
  TechniqueSpec t{"t", static_cast<TechniqueKind>(tech), tech == 3,
                  PtbPolicy::kToAll, 0.0};
  if (tech == 3) t.kind = TechniqueKind::kTwoLevel;
  const SimConfig cfg = make_sim_config(cores, t);
  const WorkloadProfile p = prop_profile();
  const RunResult a = run_one(p, cfg);
  const RunResult b = run_one(p, cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_DOUBLE_EQ(a.aopb, b.aopb);
}

INSTANTIATE_TEST_SUITE_P(
    CoresAndTechniques, DeterminismSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(0, 1, 2, 3)));

// --- Property: AoPB <= energy, power bounds sane, for all techniques. ---
class SanitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SanitySweep, EnergyAopbPowerInvariants) {
  const int tech = GetParam();
  TechniqueSpec t{"t",
                  tech == 3 ? TechniqueKind::kTwoLevel
                            : static_cast<TechniqueKind>(tech),
                  tech == 3, PtbPolicy::kToAll, 0.0};
  const RunResult r = run_one(prop_profile(), make_sim_config(4, t));
  EXPECT_GE(r.aopb, 0.0);
  EXPECT_LE(r.aopb, r.energy);
  EXPECT_GT(r.power.min(), 0.0);           // static power is always paid
  EXPECT_LE(r.power.mean(), r.power.max());
  EXPECT_GE(r.power.mean(), r.power.min());
  // Energy integrates the power curve exactly.
  EXPECT_NEAR(r.energy, r.power.mean() * static_cast<double>(r.cycles),
              r.energy * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Techniques, SanitySweep,
                         ::testing::Values(0, 1, 2, 3));

// --- Property: committed work is invariant under power management. ---
class WorkInvarianceSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkInvarianceSweep, SameComputeOpsCommitted) {
  const int tech = GetParam();
  TechniqueSpec none{"n", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  TechniqueSpec t{"t",
                  tech == 3 ? TechniqueKind::kTwoLevel
                            : static_cast<TechniqueKind>(tech),
                  tech == 3, PtbPolicy::kToAll, 0.0};
  WorkloadProfile p = prop_profile();
  p.num_locks = 0;
  p.cs_per_1k_ops = 0.0;  // no spin retries -> op counts comparable
  const RunResult a = run_one(p, make_sim_config(2, none));
  const RunResult b = run_one(p, make_sim_config(2, t));
  // Barrier spin iterations differ with timing; compute work must not.
  // Allow only the spin-op slack.
  EXPECT_NEAR(static_cast<double>(a.total_committed),
              static_cast<double>(b.total_committed),
              0.25 * static_cast<double>(a.total_committed));
}

INSTANTIATE_TEST_SUITE_P(Techniques, WorkInvarianceSweep,
                         ::testing::Values(1, 2, 3));

// --- Property: budget fraction monotonicity. Lower budget -> lower mean
// power under the 2-level enforcer. ---
class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, MeanPowerTracksBudget) {
  const double frac = GetParam();
  TechniqueSpec t{"2l", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                  0.0};
  SimConfig cfg = make_sim_config(4, t);
  cfg.budget_fraction = frac;
  const RunResult r = run_one(prop_profile(), cfg);
  // Mean power never exceeds ~1.6x the budget under enforcement, and the
  // run still completes.
  EXPECT_FALSE(r.hit_max_cycles);
  if (frac <= 0.4) {
    EXPECT_LT(r.power.mean(), r.budget * 1.8);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, BudgetSweep,
                         ::testing::Values(0.3, 0.4, 0.5, 0.7, 0.9));

// --- Property: relax threshold trades AoPB monotonically. ---
class RelaxSweep : public ::testing::TestWithParam<double> {};

TEST_P(RelaxSweep, RelaxNeverReducesAopb) {
  const double relax = GetParam();
  TechniqueSpec strict{"p", TechniqueKind::kTwoLevel, true,
                       PtbPolicy::kToAll, 0.0};
  TechniqueSpec relaxed{"p", TechniqueKind::kTwoLevel, true,
                        PtbPolicy::kToAll, relax};
  const WorkloadProfile p = prop_profile();
  const RunResult a = run_one(p, make_sim_config(4, strict));
  const RunResult b = run_one(p, make_sim_config(4, relaxed));
  EXPECT_GE(b.aopb, a.aopb * 0.9);  // allow timing noise, no big decrease
}

INSTANTIATE_TEST_SUITE_P(Thresholds, RelaxSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5));

// --- Property: PTB wire-latency sensitivity — even the paper's pessimistic
// 10-cycle (and worse) latencies keep PTB ahead of the naive split. ---
class WireLatencySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WireLatencySweep, PtbStillBeatsNaive) {
  const std::uint32_t latency = GetParam();
  const WorkloadProfile p = prop_profile();
  TechniqueSpec naive{"2l", TechniqueKind::kTwoLevel, false,
                      PtbPolicy::kToAll, 0.0};
  TechniqueSpec ptb{"ptb", TechniqueKind::kTwoLevel, true, PtbPolicy::kToAll,
                    0.0};
  SimConfig ptb_cfg = make_sim_config(4, ptb);
  ptb_cfg.ptb.wire_latency_override = latency;
  const RunResult n = run_one(p, make_sim_config(4, naive));
  const RunResult b = run_one(p, ptb_cfg);
  EXPECT_LT(b.aopb, n.aopb);
}

INSTANTIATE_TEST_SUITE_P(Latencies, WireLatencySweep,
                         ::testing::Values(3u, 5u, 10u, 20u));

}  // namespace
}  // namespace ptb

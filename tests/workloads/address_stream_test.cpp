// Address-stream properties of the synthetic programs: region layout,
// partitioning, and locality — the properties the memory-system results
// depend on.
#include <gtest/gtest.h>

#include <set>

#include "workloads/program.hpp"
#include "workloads/suite.hpp"

namespace ptb {
namespace {

WorkloadProfile stream_profile() {
  WorkloadProfile p;
  p.name = "stream";
  p.iterations = 1;
  p.ops_per_iteration = 20000;
  p.barrier_per_iter = false;
  p.shared_frac = 0.3;
  p.ws_private_lines = 64;
  p.ws_shared_lines = 256;
  return p;
}

/// Collects data addresses from one thread's stream (feeding sync values
/// directly so generation never stalls).
std::vector<Addr> collect_addresses(std::uint32_t tid, std::uint32_t nthreads,
                                    int count) {
  const WorkloadProfile p = stream_profile();
  SyncState local_sync(1, 1, 1);  // single-arriver barrier: never blocks
  SpinTracker tracker;
  SyntheticProgram prog(p, tid, nthreads, local_sync, tracker, 1);
  std::vector<Addr> out;
  MicroOp op;
  while (static_cast<int>(out.size()) < count) {
    const auto st = prog.next(op);
    if (st == ThreadProgram::FetchStatus::kFinished) break;
    if (st == ThreadProgram::FetchStatus::kStall) continue;
    if (op.is_memory() && op.sync == SyncRole::kNone) out.push_back(op.addr);
    if (op.blocks_generation) {
      std::uint64_t v = 0;
      if (op.sync == SyncRole::kBarrierArrive) v = local_sync.arrive(0);
      prog.on_value(op, v);
    }
  }
  return out;
}

TEST(AddressStream, RegionsAreDisjoint) {
  const auto addrs = collect_addresses(0, 4, 2000);
  ASSERT_FALSE(addrs.empty());
  for (Addr a : addrs) {
    const bool shared = a >= SyntheticProgram::kSharedBase &&
                        a < SyntheticProgram::kPrivateBase;
    const bool priv = a >= SyntheticProgram::kPrivateBase &&
                      a < SyntheticProgram::kCodeBase;
    EXPECT_TRUE(shared || priv) << std::hex << a;
  }
}

TEST(AddressStream, PrivateRegionsPerThreadDisjoint) {
  const auto a0 = collect_addresses(0, 4, 2000);
  const auto a1 = collect_addresses(1, 4, 2000);
  auto private_lines = [](const std::vector<Addr>& v) {
    std::set<Addr> lines;
    for (Addr a : v)
      if (a >= SyntheticProgram::kPrivateBase) lines.insert(a / 64);
    return lines;
  };
  const auto p0 = private_lines(a0);
  const auto p1 = private_lines(a1);
  ASSERT_FALSE(p0.empty());
  ASSERT_FALSE(p1.empty());
  for (Addr l : p0) EXPECT_EQ(p1.count(l), 0u);
}

TEST(AddressStream, SharedPartitionsStartApart) {
  // Threads stream disjoint partitions of the shared array: their first
  // shared strided addresses must differ.
  auto first_shared = [](std::uint32_t tid) -> Addr {
    const auto addrs = collect_addresses(tid, 4, 4000);
    for (Addr a : addrs)
      if (a < SyntheticProgram::kPrivateBase) return a;
    return 0;
  };
  const Addr s0 = first_shared(0);
  const Addr s2 = first_shared(2);
  ASSERT_NE(s0, 0u);
  ASSERT_NE(s2, 0u);
  EXPECT_NE(s0 / 64, s2 / 64);
}

TEST(AddressStream, WorkingSetRespected) {
  const WorkloadProfile p = stream_profile();
  const auto addrs = collect_addresses(0, 1, 4000);
  for (Addr a : addrs) {
    if (a >= SyntheticProgram::kPrivateBase) {
      EXPECT_LT(a, SyntheticProgram::kPrivateBase +
                       static_cast<Addr>(p.ws_private_lines) * 64);
    } else {
      EXPECT_LT(a, SyntheticProgram::kSharedBase +
                       static_cast<Addr>(p.ws_shared_lines) * 64);
    }
  }
}

TEST(AddressStream, StrideProducesLineReuse) {
  // With stride_frac near 1, consecutive accesses mostly stay within a
  // line for 8 words: distinct lines << accesses.
  WorkloadProfile p = stream_profile();
  p.stride_frac = 1.0;
  p.shared_frac = 0.0;
  SyncState sync(1, 1, 1);
  SpinTracker tracker;
  SyntheticProgram prog(p, 0, 1, sync, tracker, 1);
  std::set<Addr> lines;
  int mem_ops = 0;
  MicroOp op;
  while (mem_ops < 1600) {
    const auto st = prog.next(op);
    if (st != ThreadProgram::FetchStatus::kOp) {
      if (st == ThreadProgram::FetchStatus::kFinished) break;
      if (op.blocks_generation) prog.on_value(op, sync.arrive(0));
      continue;
    }
    if (op.is_memory() && op.sync == SyncRole::kNone) {
      lines.insert(op.addr / 64);
      ++mem_ops;
    }
    if (op.blocks_generation) prog.on_value(op, sync.arrive(0));
  }
  ASSERT_GT(mem_ops, 800);
  EXPECT_LT(lines.size() * 4, static_cast<std::size_t>(mem_ops));
}

}  // namespace
}  // namespace ptb

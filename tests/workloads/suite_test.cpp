// The benchmark catalog (Table 2 of the paper).
#include "workloads/suite.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ptb {
namespace {

TEST(Suite, FourteenBenchmarks) {
  EXPECT_EQ(benchmark_suite().size(), 14u);
}

TEST(Suite, Table2Names) {
  const std::set<std::string> expected{
      "barnes", "cholesky", "fft", "ocean", "radix", "raytrace", "tomcatv",
      "unstructured", "waternsq", "watersp", "blackscholes", "fluidanimate",
      "swaptions", "x264"};
  std::set<std::string> actual;
  for (const auto& n : benchmark_names()) actual.insert(n);
  EXPECT_EQ(actual, expected);
}

TEST(Suite, Table2InputSizes) {
  EXPECT_EQ(benchmark_by_name("barnes").input_desc,
            "8192 bodies, 4 time steps");
  EXPECT_EQ(benchmark_by_name("cholesky").input_desc, "tk16.0");
  EXPECT_EQ(benchmark_by_name("fft").input_desc, "256K complex doubles");
  EXPECT_EQ(benchmark_by_name("ocean").input_desc, "258x258 ocean");
  EXPECT_EQ(benchmark_by_name("radix").input_desc, "1M keys, 1024 radix");
  EXPECT_EQ(benchmark_by_name("raytrace").input_desc, "Teapot");
  EXPECT_EQ(benchmark_by_name("unstructured").input_desc,
            "Mesh.2K, 5 time steps");
  EXPECT_EQ(benchmark_by_name("blackscholes").input_desc, "simsmall");
}

TEST(Suite, LookupReturnsSameObject) {
  const auto& a = benchmark_by_name("fft");
  const auto& b = benchmark_by_name("fft");
  EXPECT_EQ(&a, &b);
}

TEST(Suite, LockHeavyBenchmarksAreContended) {
  // Figure 3's lock-dominated benchmarks must model hot-lock contention.
  for (const char* name : {"unstructured", "fluidanimate"}) {
    const auto& p = benchmark_by_name(name);
    EXPECT_GT(p.cs_per_1k_ops, 1.0) << name;
    EXPECT_GT(p.hot_lock_frac, 0.5) << name;
  }
}

TEST(Suite, EmbarrassinglyParallelHaveNoPerIterBarrier) {
  for (const char* name : {"blackscholes", "swaptions", "cholesky", "x264"}) {
    const auto& p = benchmark_by_name(name);
    EXPECT_FALSE(p.barrier_per_iter) << name;
  }
}

TEST(Suite, BarrierHeavyBenchmarksIterate) {
  for (const char* name : {"ocean", "barnes", "tomcatv", "radix"}) {
    const auto& p = benchmark_by_name(name);
    EXPECT_TRUE(p.barrier_per_iter) << name;
    EXPECT_GE(p.iterations, 4u) << name;
  }
}

TEST(Suite, AllProfilesWellFormed) {
  for (const auto& p : benchmark_suite()) {
    EXPECT_GT(p.ops_per_iteration, 0u) << p.name;
    EXPECT_GE(p.iterations, 1u) << p.name;
    EXPECT_GE(p.imbalance, 0.0) << p.name;
    EXPECT_LE(p.imbalance, 1.0) << p.name;
    EXPECT_GT(p.code_footprint, 0u) << p.name;
    if (p.cs_per_1k_ops > 0) {
      EXPECT_GT(p.num_locks, 0u) << p.name;
    }
    const auto& m = p.mix;
    const double total = m.int_alu + m.int_mult + m.fp_alu + m.fp_mult +
                         m.load + m.store + m.branch;
    EXPECT_NEAR(total, 1.0, 0.05) << p.name;
  }
}

TEST(SuiteDeath, UnknownNameAborts) {
  EXPECT_DEATH(benchmark_by_name("doom"), "unknown benchmark");
}

}  // namespace
}  // namespace ptb

// SyntheticProgram generator state machine, exercised standalone (values
// fed back directly, no core model).
#include "workloads/program.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/suite.hpp"

namespace ptb {
namespace {

/// Drives a program as an ideal machine: every blocking op's semantics are
/// applied immediately against the SyncState.
class DirectDriver {
 public:
  DirectDriver(SyntheticProgram& prog, SyncState& sync, CoreId id)
      : prog_(prog), sync_(sync), id_(id) {}

  /// Pulls and "executes" up to `n` ops; returns ops pulled.
  int drive(int n) {
    int pulled = 0;
    while (pulled < n && !prog_.finished()) {
      MicroOp op;
      const auto st = prog_.next(op);
      if (st == ThreadProgram::FetchStatus::kFinished) break;
      if (st == ThreadProgram::FetchStatus::kStall) {
        ++stalls_;
        if (stalls_ > 1000000) break;  // would deadlock standalone
        continue;
      }
      ++pulled;
      ops_by_class_[op.cls] += 1;
      if (op.blocks_generation) apply(op);
    }
    return pulled;
  }

  std::uint64_t class_count(OpClass c) const {
    const auto it = ops_by_class_.find(c);
    return it == ops_by_class_.end() ? 0 : it->second;
  }

 private:
  void apply(const MicroOp& op) {
    std::uint64_t v = 0;
    switch (op.sync) {
      case SyncRole::kLockTestLoad: v = sync_.read_lock(op.sync_id); break;
      case SyncRole::kLockTryAcquire:
        v = sync_.try_acquire(op.sync_id, id_);
        break;
      case SyncRole::kLockRelease: sync_.release(op.sync_id, id_); break;
      case SyncRole::kBarrierArrive: v = sync_.arrive(op.sync_id); break;
      case SyncRole::kBarrierSpinLoad: v = sync_.read_sense(op.sync_id); break;
      case SyncRole::kNone: break;
    }
    prog_.on_value(op, v);
  }

  SyntheticProgram& prog_;
  SyncState& sync_;
  CoreId id_;
  std::uint64_t stalls_ = 0;
  std::map<OpClass, std::uint64_t> ops_by_class_;
};

WorkloadProfile tiny_profile() {
  WorkloadProfile p;
  p.name = "tiny";
  p.iterations = 2;
  p.ops_per_iteration = 400;
  p.imbalance = 0.0;
  p.num_locks = 2;
  p.cs_per_1k_ops = 10.0;
  p.cs_len_ops = 5;
  p.code_footprint = 64;
  return p;
}

TEST(SyntheticProgram, SingleThreadRunsToCompletion) {
  const WorkloadProfile p = tiny_profile();
  SyncState sync(2, 1, 1);
  SpinTracker tracker;
  SyntheticProgram prog(p, 0, 1, sync, tracker, 1);
  DirectDriver d(prog, sync, 0);
  d.drive(1000000);
  EXPECT_TRUE(prog.finished());
  EXPECT_EQ(prog.iteration(), 2u);
  // Both iterations' compute work was emitted.
  EXPECT_GE(prog.compute_ops_emitted(), 2u * 400u);
}

TEST(SyntheticProgram, EmitsCriticalSections) {
  const WorkloadProfile p = tiny_profile();
  SyncState sync(2, 1, 1);
  SpinTracker tracker;
  SyntheticProgram prog(p, 0, 1, sync, tracker, 1);
  DirectDriver d(prog, sync, 0);
  d.drive(1000000);
  // ~10 sections per 1000 ops * 800 ops -> around 8; allow slack.
  EXPECT_GE(prog.lock_sections_entered(), 3u);
  EXPECT_GT(d.class_count(OpClass::kAtomicRmw), 0u);
}

TEST(SyntheticProgram, NoLocksMeansNoAtomicsExceptBarrier) {
  WorkloadProfile p = tiny_profile();
  p.num_locks = 0;
  p.cs_per_1k_ops = 0.0;
  p.barrier_per_iter = false;
  SyncState sync(1, 1, 1);
  SpinTracker tracker;
  SyntheticProgram prog(p, 0, 1, sync, tracker, 1);
  DirectDriver d(prog, sync, 0);
  d.drive(1000000);
  EXPECT_TRUE(prog.finished());
  // Only the final barrier's arrive is an atomic.
  EXPECT_EQ(d.class_count(OpClass::kAtomicRmw), 1u);
}

TEST(SyntheticProgram, TwoThreadsMeetAtBarrier) {
  WorkloadProfile p = tiny_profile();
  p.num_locks = 0;
  p.cs_per_1k_ops = 0.0;
  SyncState sync(1, 1, 2);
  SpinTracker t0, t1;
  SyntheticProgram a(p, 0, 2, sync, t0, 1);
  SyntheticProgram b(p, 1, 2, sync, t1, 1);
  DirectDriver da(a, sync, 0), db(b, sync, 1);
  // Interleave both threads; neither can pass a barrier alone.
  for (int round = 0; round < 10000 && !(a.finished() && b.finished());
       ++round) {
    da.drive(4);
    db.drive(4);
  }
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
  EXPECT_EQ(sync.barrier_episodes, 2u);  // one per iteration
}

TEST(SyntheticProgram, DeterministicForSeed) {
  const WorkloadProfile p = tiny_profile();
  SyncState s1(2, 1, 1), s2(2, 1, 1);
  SpinTracker t1, t2;
  SyntheticProgram a(p, 0, 1, s1, t1, 7);
  SyntheticProgram b(p, 0, 1, s2, t2, 7);
  for (int i = 0; i < 500; ++i) {
    MicroOp oa, ob;
    const auto sa = a.next(oa);
    const auto sb = b.next(ob);
    ASSERT_EQ(static_cast<int>(sa), static_cast<int>(sb));
    if (sa == ThreadProgram::FetchStatus::kOp) {
      EXPECT_EQ(oa.pc, ob.pc);
      EXPECT_EQ(oa.cls, ob.cls);
      EXPECT_EQ(oa.addr, ob.addr);
    }
    if (sa == ThreadProgram::FetchStatus::kOp && oa.blocks_generation) {
      a.on_value(oa, 0);
      b.on_value(ob, 0);
    }
  }
}

TEST(SyntheticProgram, ImbalanceSpreadsWork) {
  WorkloadProfile p = tiny_profile();
  p.imbalance = 0.4;
  p.ops_per_iteration = 10000;
  p.num_locks = 0;
  p.cs_per_1k_ops = 0.0;
  SyncState sync(2, 1, 4);
  // Different threads get different per-iteration op counts.
  std::set<std::uint64_t> distinct;
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    SpinTracker t;
    SyntheticProgram prog(p, tid, 4, sync, t, 1);
    MicroOp op;
    std::uint64_t count = 0;
    // Count compute ops until the thread blocks on the barrier.
    while (prog.next(op) == ThreadProgram::FetchStatus::kOp &&
           op.sync != SyncRole::kBarrierArrive) {
      ++count;
    }
    distinct.insert(count);
  }
  EXPECT_GE(distinct.size(), 3u);
}

TEST(SyntheticProgram, TrackerFollowsSyncStates) {
  WorkloadProfile p = tiny_profile();
  p.num_locks = 1;
  p.cs_per_1k_ops = 50.0;
  p.hot_lock_frac = 1.0;
  SyncState sync(1, 1, 2);
  SpinTracker tracker;
  SyntheticProgram prog(p, 0, 2, sync, tracker, 1);
  // Hold the lock externally so the program must spin.
  sync.try_acquire(0, 1);
  MicroOp op;
  bool saw_lock_acq = false;
  for (int i = 0; i < 10000 && !saw_lock_acq; ++i) {
    const auto st = prog.next(op);
    if (st == ThreadProgram::FetchStatus::kOp && op.blocks_generation) {
      if (op.sync == SyncRole::kLockTestLoad) {
        saw_lock_acq = (tracker.state() == ExecState::kLockAcq);
        prog.on_value(op, sync.read_lock(op.sync_id));
      } else if (op.sync == SyncRole::kBarrierArrive) {
        break;
      } else {
        prog.on_value(op, 0);
      }
    }
  }
  EXPECT_TRUE(saw_lock_acq);
}

}  // namespace
}  // namespace ptb

#include "isa/microop.hpp"

#include <gtest/gtest.h>

namespace ptb {
namespace {

TEST(MicroOp, DefaultsAreInert) {
  MicroOp op;
  EXPECT_EQ(op.cls, OpClass::kNop);
  EXPECT_FALSE(op.is_memory());
  EXPECT_FALSE(op.is_branch());
  EXPECT_FALSE(op.blocks_generation);
  EXPECT_EQ(op.sync, SyncRole::kNone);
  EXPECT_EQ(op.dep1, 0);
  EXPECT_EQ(op.dep2, 0);
}

TEST(MicroOp, MemoryClassification) {
  MicroOp op;
  for (OpClass c : {OpClass::kLoad, OpClass::kStore, OpClass::kAtomicRmw}) {
    op.cls = c;
    EXPECT_TRUE(op.is_memory()) << op_class_name(c);
  }
  for (OpClass c : {OpClass::kIntAlu, OpClass::kIntMult, OpClass::kFpAlu,
                    OpClass::kFpMult, OpClass::kBranch, OpClass::kNop}) {
    op.cls = c;
    EXPECT_FALSE(op.is_memory()) << op_class_name(c);
  }
}

TEST(MicroOp, BranchClassification) {
  MicroOp op;
  op.cls = OpClass::kBranch;
  EXPECT_TRUE(op.is_branch());
  op.cls = OpClass::kLoad;
  EXPECT_FALSE(op.is_branch());
}

TEST(OpClassNames, AllDistinctAndNamed) {
  for (std::uint32_t i = 0; i < kNumOpClasses; ++i) {
    const char* name = op_class_name(static_cast<OpClass>(i));
    EXPECT_STRNE(name, "?");
  }
  EXPECT_STREQ(op_class_name(OpClass::kIntAlu), "IntAlu");
  EXPECT_STREQ(op_class_name(OpClass::kAtomicRmw), "AtomicRmw");
}

TEST(OpClassCount, MatchesEnum) {
  EXPECT_EQ(kNumOpClasses, 9u);
}

}  // namespace
}  // namespace ptb

// Tests for the event-trace subsystem (src/trace): ring/serialization
// units, exporter structure, and end-to-end consistency of the analyzers
// against the RunResult counters of the run that produced the trace.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/run_pool.hpp"
#include "sim/trace_export.hpp"
#include "sync/spin_tracker.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"

namespace ptb {
namespace {

TraceEvent ev(Cycle cycle, TraceEventType t, std::uint32_t core,
              std::uint64_t arg, double value) {
  TraceEvent e;
  e.cycle = cycle;
  e.type = t;
  e.core = core;
  e.arg = arg;
  e.value = value;
  return e;
}

// --- units ------------------------------------------------------------------

TEST(TraceRing, KeepsNewestAndCountsDrops) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    ring.push(ev(i, TraceEventType::kDonate, 0, i, double(i)));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> kept = ring.in_order();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[i].cycle, 6u + i);  // oldest kept -> newest
    EXPECT_EQ(kept[i].arg, 6u + i);
  }
}

TEST(TraceRing, NoDropsBelowCapacity) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i)
    ring.push(ev(i, TraceEventType::kGrant, 1, 0, 1.0));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.in_order().front().cycle, 0u);
  EXPECT_EQ(ring.in_order().back().cycle, 4u);
}

TEST(TraceCategories, ParseAndRenderRoundTrip) {
  std::uint32_t mask = 0;
  ASSERT_TRUE(parse_trace_categories("token,dvfs,sync", mask));
  EXPECT_EQ(mask, trace_category_bit(TraceCategory::kToken) |
                      trace_category_bit(TraceCategory::kDvfs) |
                      trace_category_bit(TraceCategory::kSync));
  // Render -> parse is the identity on any mask.
  std::uint32_t back = 0;
  ASSERT_TRUE(parse_trace_categories(trace_categories_string(mask), back));
  EXPECT_EQ(back, mask);

  ASSERT_TRUE(parse_trace_categories("all", mask));
  EXPECT_EQ(mask, kTraceAll);
  EXPECT_EQ(trace_categories_string(kTraceAll), "all");

  mask = 0xdead;
  EXPECT_FALSE(parse_trace_categories("token,bogus", mask));
  EXPECT_FALSE(parse_trace_categories("", mask));
  EXPECT_EQ(mask, 0xdeadu);  // untouched on failure
}

TEST(TraceCategories, EveryEventTypeMapsToItsCategory) {
  for (std::uint32_t t = 0; t < kNumTraceEventTypes; ++t) {
    const TraceCategory c =
        trace_event_category(static_cast<TraceEventType>(t));
    EXPECT_LT(static_cast<std::uint32_t>(c), kNumTraceCategories);
    EXPECT_STRNE(trace_event_name(static_cast<TraceEventType>(t)), "");
  }
}

TEST(EventTracer, MaskFiltersCategories) {
  EventTracer tracer(trace_category_bit(TraceCategory::kToken), 16);
  EXPECT_TRUE(tracer.enabled(TraceCategory::kToken));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kDvfs));
  tracer.begin_cycle(7);
  tracer.emit(TraceEventType::kDonate, 2, 0, 1.5);
  tracer.emit(TraceEventType::kDvfsTransition, 2, 1, 0.0);  // masked out
  const EventTrace t = tracer.finish(4, 100, 3);
  const auto& token = t.logs[static_cast<std::size_t>(TraceCategory::kToken)];
  const auto& dvfs = t.logs[static_cast<std::size_t>(TraceCategory::kDvfs)];
  ASSERT_EQ(token.events.size(), 1u);
  EXPECT_EQ(token.events[0].cycle, 7u);
  EXPECT_EQ(token.events[0].core, 2u);
  EXPECT_DOUBLE_EQ(token.events[0].value, 1.5);
  EXPECT_EQ(dvfs.events.size(), 0u);
  EXPECT_EQ(dvfs.emitted, 0u);  // masked emits are not even counted
  EXPECT_EQ(t.num_cores, 4u);
  EXPECT_EQ(t.end_cycle, 100u);
  EXPECT_EQ(t.wire_latency, 3u);
}

EventTrace small_trace() {
  EventTracer tracer(kTraceAll, 32);
  tracer.begin_cycle(0);
  tracer.emit(TraceEventType::kPolicySwitch, kNoCore, 0x0ff00u | 0, 2.0);
  tracer.emit(TraceEventType::kDonate, 1, 0, 2.25);
  tracer.begin_cycle(3);
  tracer.emit(TraceEventType::kGrant, 0, 0, 2.0);
  tracer.emit(TraceEventType::kEvaporate, kNoCore, 0, 0.25);
  tracer.emit(TraceEventType::kDvfsTransition, 1, (0u << 8) | 2u, 10.0);
  tracer.begin_cycle(5);
  tracer.emit(TraceEventType::kLockAcquire, 0, 7, 0.0);
  return tracer.finish(2, 10, 3);
}

TEST(EventTrace, SerializeRoundTrip) {
  const EventTrace t = small_trace();
  const std::string bytes = t.serialize();
  EventTrace back;
  ASSERT_TRUE(EventTrace::deserialize(bytes, back));
  EXPECT_EQ(back.num_cores, t.num_cores);
  EXPECT_EQ(back.categories, t.categories);
  EXPECT_EQ(back.end_cycle, t.end_cycle);
  EXPECT_EQ(back.wire_latency, t.wire_latency);
  for (std::uint32_t c = 0; c < kNumTraceCategories; ++c) {
    ASSERT_EQ(back.logs[c].events.size(), t.logs[c].events.size());
    EXPECT_EQ(back.logs[c].emitted, t.logs[c].emitted);
    EXPECT_EQ(back.logs[c].dropped, t.logs[c].dropped);
    for (std::size_t i = 0; i < t.logs[c].events.size(); ++i) {
      EXPECT_EQ(back.logs[c].events[i].cycle, t.logs[c].events[i].cycle);
      EXPECT_EQ(back.logs[c].events[i].type, t.logs[c].events[i].type);
      EXPECT_EQ(back.logs[c].events[i].core, t.logs[c].events[i].core);
      EXPECT_EQ(back.logs[c].events[i].arg, t.logs[c].events[i].arg);
      EXPECT_DOUBLE_EQ(back.logs[c].events[i].value,
                       t.logs[c].events[i].value);
    }
  }
  // Byte-stable: re-serializing the round-tripped trace is the identity.
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(EventTrace, RejectsCorruptInput) {
  const EventTrace t = small_trace();
  const std::string bytes = t.serialize();
  EventTrace out;
  out.num_cores = 77;  // sentinel: must stay untouched on failure

  std::string bad = bytes;
  bad[0] = 'X';  // magic
  EXPECT_FALSE(EventTrace::deserialize(bad, out));

  bad = bytes;
  bad[8] = char(0xee);  // version
  EXPECT_FALSE(EventTrace::deserialize(bad, out));

  EXPECT_FALSE(EventTrace::deserialize(bytes.substr(0, 10), out));
  EXPECT_FALSE(
      EventTrace::deserialize(bytes.substr(0, bytes.size() - 1), out));
  EXPECT_FALSE(EventTrace::deserialize(bytes + "x", out));
  EXPECT_FALSE(EventTrace::deserialize("", out));
  EXPECT_EQ(out.num_cores, 77u);
}

TEST(EventTrace, MergedSortsByCycleStably) {
  const EventTrace t = small_trace();
  const std::vector<TraceEvent> m = t.merged();
  ASSERT_EQ(m.size(), t.total_events());
  for (std::size_t i = 1; i < m.size(); ++i)
    EXPECT_LE(m[i - 1].cycle, m[i].cycle);
  // Ties keep category-major order: the cycle-0 policy event (category
  // kPolicy) sorts after the cycle-0 donate (category kToken).
  EXPECT_EQ(m[0].type, TraceEventType::kDonate);
  EXPECT_EQ(m[1].type, TraceEventType::kPolicySwitch);
}

// --- end-to-end: traced simulation runs -------------------------------------

WorkloadProfile sync_heavy_profile() {
  WorkloadProfile p;
  p.name = "traced";
  p.iterations = 3;
  p.ops_per_iteration = 4000;
  p.imbalance = 0.25;
  p.num_locks = 2;
  p.cs_per_1k_ops = 4.0;
  p.cs_len_ops = 12;
  p.hot_lock_frac = 0.5;
  return p;
}

SimConfig traced_cfg(std::uint32_t cores, PtbPolicy policy) {
  TechniqueSpec t{"t", TechniqueKind::kTwoLevel, true, policy, 0.0};
  SimConfig cfg = make_sim_config(cores, t);
  cfg.max_cycles = 2'000'000;
  return cfg;
}

RunOptions traced_opts(std::uint32_t mask = kTraceAll) {
  RunOptions opts;
  opts.trace_categories = mask;
  return opts;
}

TEST(TraceEndToEnd, TokenSumsMatchRunCounters) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kToAll), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.trace->total_dropped(), 0u) << "grow TraceConfig for this test";
  const TokenTotals tt = token_totals(*r.trace);
  EXPECT_NEAR(tt.donated, r.tokens_donated, 1e-6);
  EXPECT_NEAR(tt.granted, r.tokens_granted, 1e-6);
  EXPECT_NEAR(tt.evaporated, r.tokens_evaporated, 1e-6);
  EXPECT_GT(tt.donated, 0.0);
  // Conservation: every donated token is granted or evaporates.
  EXPECT_NEAR(tt.donated, tt.granted + tt.evaporated, 1e-6);
}

TEST(TraceEndToEnd, FlowMatrixConservesTokens) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kToOne), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.trace->total_dropped(), 0u);
  const TokenFlowMatrix m = token_flow_matrix(*r.trace);
  ASSERT_EQ(m.num_cores, 4u);
  double flow_sum = 0.0;
  for (double f : m.flow) {
    EXPECT_GE(f, 0.0);
    flow_sum += f;
  }
  double evap_sum = 0.0;
  for (double e : m.evaporated_by_donor) evap_sum += e;
  EXPECT_DOUBLE_EQ(m.unattributed, 0.0);
  EXPECT_NEAR(flow_sum, m.total_granted, 1e-6);
  EXPECT_NEAR(evap_sum, m.total_evaporated, 1e-6);
  EXPECT_NEAR(m.total_granted, r.tokens_granted, 1e-6);
  EXPECT_NEAR(m.total_donated, r.tokens_donated, 1e-6);
}

TEST(TraceEndToEnd, PolicyResidencyMatchesSelectorCounters) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kDynamic), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.trace->total_dropped(), 0u);
  const PolicyResidency pr = policy_residency(*r.trace);
  EXPECT_EQ(pr.to_all_cycles, r.to_all_cycles);
  EXPECT_EQ(pr.to_one_cycles, r.to_one_cycles);
  EXPECT_EQ(pr.to_all_cycles + pr.to_one_cycles, r.cycles);
}

TEST(TraceEndToEnd, DvfsResidencyAccountsEveryCycle) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kToAll), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.trace->total_dropped(), 0u);
  const DvfsResidency d = dvfs_residency(*r.trace);
  ASSERT_EQ(d.mode_cycles.size(), 4u);
  EXPECT_EQ(d.transitions, r.dvfs_transitions);
  for (std::uint32_t c = 0; c < 4; ++c) {
    Cycle total = 0;
    for (Cycle m : d.mode_cycles[c]) total += m;
    EXPECT_EQ(total, r.cycles) << "core " << c;
  }
}

TEST(TraceEndToEnd, SpinTimelineIsWellFormed) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kToAll), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  const std::vector<SpinInterval> tl = spin_timeline(*r.trace);
  ASSERT_FALSE(tl.empty());  // a lock-heavy profile spins
  std::map<std::uint32_t, Cycle> last_end;
  Cycle prev_begin = 0;
  for (const SpinInterval& iv : tl) {
    EXPECT_LT(iv.core, 4u);
    EXPECT_LE(iv.begin, iv.end);
    EXPECT_LE(iv.end, r.cycles);
    EXPECT_GE(iv.begin, prev_begin);  // sorted by begin
    prev_begin = iv.begin;
    // One of the spin ExecStates, never kBusy.
    EXPECT_TRUE(iv.state == static_cast<std::uint64_t>(ExecState::kLockAcq) ||
                iv.state == static_cast<std::uint64_t>(ExecState::kLockRel) ||
                iv.state == static_cast<std::uint64_t>(ExecState::kBarrier))
        << iv.state;
    // Per-core intervals never overlap (a core is in one state at a time).
    auto it = last_end.find(iv.core);
    if (it != last_end.end()) {
      EXPECT_GE(iv.begin, it->second);
    }
    last_end[iv.core] = iv.end;
  }
}

TEST(TraceEndToEnd, SyncEventsMatchSyncCounters) {
  const WorkloadProfile p = sync_heavy_profile();
  CmpSimulator sim(traced_cfg(4, PtbPolicy::kToAll), p);
  const RunResult r = sim.run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.trace->total_dropped(), 0u);
  const auto& log =
      r.trace->logs[static_cast<std::size_t>(TraceCategory::kSync)];
  std::uint64_t acquires = 0, releases = 0, barrier_releases = 0;
  for (const TraceEvent& e : log.events) {
    if (e.type == TraceEventType::kLockAcquire) ++acquires;
    if (e.type == TraceEventType::kLockRelease) ++releases;
    if (e.type == TraceEventType::kBarrierRelease) ++barrier_releases;
  }
  EXPECT_EQ(acquires, sim.sync().acquisitions);
  EXPECT_EQ(releases, acquires);  // every acquired lock is released
  EXPECT_EQ(barrier_releases, sim.sync().barrier_episodes);
  EXPECT_GT(acquires, 0u);
}

TEST(TraceEndToEnd, TracingNeverChangesResults) {
  const WorkloadProfile p = sync_heavy_profile();
  const SimConfig cfg = traced_cfg(4, PtbPolicy::kDynamic);
  RunOptions plain;
  plain.record_cmp_trace = true;
  RunOptions traced = plain;
  traced.trace_categories = kTraceAll;
  const RunResult a = CmpSimulator(cfg, p).run(plain);
  const RunResult b = CmpSimulator(cfg, p).run(traced);
  EXPECT_EQ(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  // Byte-identical exports, not just equal headline numbers.
  EXPECT_EQ(run_summary_kv(a), run_summary_kv(b));
  EXPECT_EQ(power_trace_csv(a), power_trace_csv(b));
}

TEST(TraceEndToEnd, RingOverflowDropsOldestButKeepsAnalyzersSane) {
  WorkloadProfile p = sync_heavy_profile();
  SimConfig cfg = traced_cfg(4, PtbPolicy::kToAll);
  cfg.trace.buffer_events = 64;  // force overflow on the token ring
  const RunResult r = CmpSimulator(cfg, p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  const auto& token =
      r.trace->logs[static_cast<std::size_t>(TraceCategory::kToken)];
  EXPECT_EQ(token.events.size(), 64u);
  EXPECT_GT(token.dropped, 0u);
  EXPECT_EQ(token.emitted, token.events.size() + token.dropped);
  // The analyzers must still work on a truncated trace; grants whose
  // donors were overwritten go to `unattributed`, never to a wrong core.
  const TokenFlowMatrix m = token_flow_matrix(*r.trace);
  double flow_sum = 0.0;
  for (double f : m.flow) flow_sum += f;
  for (double e : m.evaporated_by_donor) flow_sum += e;
  EXPECT_NEAR(flow_sum + m.unattributed,
              m.total_granted + m.total_evaporated, 1e-6);
}

TEST(TraceEndToEnd, CategoryMaskLimitsRecording) {
  const WorkloadProfile p = sync_heavy_profile();
  const std::uint32_t mask = trace_category_bit(TraceCategory::kToken);
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kToAll), p).run(traced_opts(mask));
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.trace->categories, mask);
  for (std::uint32_t c = 0; c < kNumTraceCategories; ++c) {
    if (c == static_cast<std::uint32_t>(TraceCategory::kToken)) {
      EXPECT_GT(r.trace->logs[c].emitted, 0u);
    } else {
      EXPECT_EQ(r.trace->logs[c].emitted, 0u);
    }
  }
}

// The determinism hammer: the serialized trace bytes are a pure function of
// (profile, config, seed) — byte-identical across RunPool worker counts,
// like the results themselves (run_pool_test.cpp).
TEST(TraceEndToEnd, TraceBytesIdenticalAcrossJobs) {
  const WorkloadProfile p = sync_heavy_profile();
  const SimConfig cfg = traced_cfg(4, PtbPolicy::kDynamic);
  auto batch = [&](unsigned jobs) {
    RunPool pool(jobs);
    for (int i = 0; i < 6; ++i) pool.submit(p, cfg, traced_opts());
    std::vector<std::string> bytes;
    for (const RunResult& r : pool.wait_all()) {
      EXPECT_NE(r.trace, nullptr);
      bytes.push_back(r.trace->serialize());
    }
    return bytes;
  };
  const std::vector<std::string> one = batch(1);
  const std::vector<std::string> four = batch(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << "task " << i;
    EXPECT_EQ(one[i], one[0]) << "same inputs, same trace";
  }
}

// --- exporters and remaining analyzers --------------------------------------

TEST(TraceExporters, ChromeJsonStructure) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kDynamic), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  const std::string json = trace_chrome_json(*r.trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"balancer\""), std::string::npos);
  EXPECT_NE(json.find("\"core 0\""), std::string::npos);
  EXPECT_NE(json.find("\"core 3\""), std::string::npos);
  // Every spin slice that opens ("B") also closes ("E").
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
      ++n;
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_GT(count("\"ph\":\"C\""), 0u);  // budget/DVFS counter tracks
  // Balanced braces/brackets => structurally parseable.
  EXPECT_EQ(count("{"), count("}"));
  EXPECT_EQ(count("["), count("]"));
}

TEST(TraceExporters, CsvOneRowPerKeptEvent) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kToAll), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  const std::string csv = trace_csv(*r.trace);
  std::size_t rows = 0;
  std::size_t pos = 0;
  std::string first;
  while (pos < csv.size()) {
    const std::size_t nl = csv.find('\n', pos);
    const std::string line = csv.substr(pos, nl - pos);
    if (rows == 0) first = line;
    if (rows > 0) {
      EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5) << line;
    }
    ++rows;
    pos = nl + 1;
  }
  EXPECT_EQ(first, "cycle,category,event,core,arg,value");
  EXPECT_EQ(rows - 1, r.trace->total_events());
}

TEST(TraceAnalysis, DeficitHistogramCountsAllSamples) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kToAll), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  const DeficitHistogram h = deficit_histogram(*r.trace, 8);
  ASSERT_EQ(h.counts.size(), 8u);
  std::uint64_t total = 0;
  for (std::uint64_t c : h.counts) total += c;
  EXPECT_EQ(total, h.samples);
  EXPECT_GT(h.samples, 0u);
  EXPECT_LE(h.min, h.mean);
  EXPECT_LE(h.mean, h.max);
  EXPECT_GE(h.over_budget_frac, 0.0);
  EXPECT_LE(h.over_budget_frac, 1.0);
}

TEST(TraceAnalysis, RenderersProduceNonEmptyText) {
  const WorkloadProfile p = sync_heavy_profile();
  const RunResult r =
      CmpSimulator(traced_cfg(4, PtbPolicy::kDynamic), p).run(traced_opts());
  ASSERT_NE(r.trace, nullptr);
  EXPECT_NE(render_summary(*r.trace).find("tokens:"), std::string::npos);
  EXPECT_NE(render_flows(*r.trace).find("donor"), std::string::npos);
  EXPECT_NE(render_dvfs(*r.trace).find("stall"), std::string::npos);
  EXPECT_FALSE(render_spin(*r.trace, kNoCore).empty());
  EXPECT_NE(render_deficit(*r.trace).find("samples="), std::string::npos);
}

}  // namespace
}  // namespace ptb

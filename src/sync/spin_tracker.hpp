// Per-core execution-state bookkeeping for the Figure 3 time breakdown
// (lock-acquisition / lock-release / barrier / busy) and the Figure 4
// spinlock-power analysis.
//
// The *program* knows its own state (it is the one spinning); it updates the
// tracker as it transitions. The CMP attributes each cycle (and that cycle's
// power) to the core's current state.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace ptb {

class StatsRegistry;

enum class ExecState : std::uint8_t {
  kBusy = 0,
  kLockAcq,
  kLockRel,
  kBarrier,
  kCount,
};

inline constexpr std::uint32_t kNumExecStates =
    static_cast<std::uint32_t>(ExecState::kCount);

const char* exec_state_name(ExecState s);

class SpinTracker {
 public:
  void set_state(ExecState s) {
    if (s == state_) return;
    if (tracer_) {
      // A spin *phase* is any non-busy interval: exiting one state and
      // entering another (lock-release right after lock-acquisition) emits
      // both edges at the same cycle.
      if (state_ != ExecState::kBusy) {
        tracer_->emit(TraceEventType::kSpinExit, core_,
                      static_cast<std::uint64_t>(state_), 0.0);
      }
      if (s != ExecState::kBusy) {
        tracer_->emit(TraceEventType::kSpinEnter, core_,
                      static_cast<std::uint64_t>(s), 0.0);
      }
    }
    state_ = s;
  }
  ExecState state() const { return state_; }

  /// Attach/detach the event tracer (src/trace) for this tracker's core.
  void set_tracer(EventTracer* t, std::uint32_t core) {
    tracer_ = t;
    core_ = core;
  }

  /// True while the core is in any spinning/synchronization state.
  bool spinning() const { return state_ != ExecState::kBusy; }

  /// Attribute one global cycle at power `p` to the current state.
  void attribute_cycle(double p) {
    const auto i = static_cast<std::size_t>(state_);
    cycles_[i] += 1;
    power_[i] += p;
  }

  Cycle cycles_in(ExecState s) const {
    return cycles_[static_cast<std::size_t>(s)];
  }
  double power_in(ExecState s) const {
    return power_[static_cast<std::size_t>(s)];
  }
  Cycle total_cycles() const {
    Cycle t = 0;
    for (auto c : cycles_) t += c;
    return t;
  }
  double total_power() const {
    double t = 0;
    for (auto p : power_) t += p;
    return t;
  }
  /// Energy spent while in spin states (everything but kBusy).
  double spin_power() const {
    return total_power() - power_[static_cast<std::size_t>(ExecState::kBusy)];
  }

  /// Registers per-state cycle counters and energy gauges under `prefix`
  /// (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support (tracer wiring is per-run, not state).
  void save_state(ByteWriter& w) const {
    w.u8(static_cast<std::uint8_t>(state_));
    for (const Cycle c : cycles_) w.u64(c);
    for (const double p : power_) w.f64(p);
  }
  void load_state(ByteReader& r) {
    const std::uint8_t s = r.u8();
    if (s >= kNumExecStates) {
      r.fail();
      return;
    }
    state_ = static_cast<ExecState>(s);
    for (Cycle& c : cycles_) c = r.u64();
    for (double& p : power_) p = r.f64();
  }

 private:
  ExecState state_ = ExecState::kBusy;
  std::array<Cycle, kNumExecStates> cycles_{};
  std::array<double, kNumExecStates> power_{};
  EventTracer* tracer_ = nullptr;  // owned by the running simulator
  std::uint32_t core_ = 0;
};

}  // namespace ptb

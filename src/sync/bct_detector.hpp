// Backward-Control-Transfer (BCT) spin-detection hardware, after
// Li, Lebeck & Sorin, IEEE TPDS 2006 (reference [12] of the paper).
//
// The mechanism observes committed backward branches; if the "machine
// state" (here: a rolling signature of committed ops) is identical across
// several consecutive BCT intervals, the core is declared spinning. The
// paper uses it as the prior-art comparison for PTB's indirect power-based
// spin detection.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "isa/microop.hpp"

namespace ptb {

class BctDetector {
 public:
  /// `repeats` = identical BCT intervals required to declare spinning.
  explicit BctDetector(std::uint32_t repeats = 3) : repeats_(repeats) {}

  /// Feed every committed op in order. Returns the current verdict.
  bool on_commit(const MicroOp& op);

  bool spinning() const { return spinning_; }
  std::uint64_t detections() const { return detections_; }

  // Checkpoint support.
  void save_state(ByteWriter& w) const {
    w.u64(interval_hash_);
    w.u64(last_hash_);
    w.u64(last_bct_pc_);
    w.u32(identical_);
    w.boolean(spinning_);
    w.u64(detections_);
  }
  void load_state(ByteReader& r) {
    interval_hash_ = r.u64();
    last_hash_ = r.u64();
    last_bct_pc_ = r.u64();
    identical_ = r.u32();
    spinning_ = r.boolean();
    detections_ = r.u64();
  }

 private:
  static std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }

  std::uint32_t repeats_;
  std::uint64_t interval_hash_ = 0;
  std::uint64_t last_hash_ = 0;
  Pc last_bct_pc_ = 0;
  std::uint32_t identical_ = 0;
  bool spinning_ = false;
  std::uint64_t detections_ = 0;
};

}  // namespace ptb

#include "sync/bct_detector.hpp"

namespace ptb {

bool BctDetector::on_commit(const MicroOp& op) {
  // Accumulate a signature of the committed stream since the last BCT.
  interval_hash_ = mix(interval_hash_, op.pc);
  interval_hash_ = mix(interval_hash_, static_cast<std::uint64_t>(op.cls));
  interval_hash_ = mix(interval_hash_, op.addr);

  // A taken branch to the same (or lower) PC region is a backward control
  // transfer; the synthetic ISA marks loop-closing branches as taken with
  // target == a previous PC, so "taken branch with repeated pc" works.
  if (op.is_branch() && op.branch_taken) {
    if (op.pc == last_bct_pc_ && interval_hash_ == last_hash_) {
      if (++identical_ >= repeats_ && !spinning_) {
        spinning_ = true;
        ++detections_;
      }
    } else {
      identical_ = 0;
      spinning_ = false;
    }
    last_bct_pc_ = op.pc;
    last_hash_ = interval_hash_;
    interval_hash_ = 0;
  } else if (!op.is_branch()) {
    // Non-branch commits keep accumulating into the interval hash.
  } else {
    // Not-taken branch: breaks the repetition.
    identical_ = 0;
    spinning_ = false;
    last_bct_pc_ = 0;
    last_hash_ = 0;
    interval_hash_ = 0;
  }
  return spinning_;
}

}  // namespace ptb

#include "sync/sync_state.hpp"

#include "trace/trace.hpp"

namespace ptb {

SyncState::SyncState(std::uint32_t num_locks, std::uint32_t num_barriers,
                     std::uint32_t num_threads)
    : locks_(num_locks), barriers_(num_barriers), num_threads_(num_threads) {
  PTB_ASSERT(num_threads >= 1, "need at least one thread");
}

Addr SyncState::lock_addr(std::uint32_t id) const {
  PTB_ASSERT(id < locks_.size(), "lock id out of range");
  return kRegionBase + static_cast<Addr>(id) * kLineBytes;
}

Addr SyncState::barrier_addr(std::uint32_t id) const {
  PTB_ASSERT(id < barriers_.size(), "barrier id out of range");
  return kRegionBase + (locks_.size() + id) * kLineBytes;
}

std::uint64_t SyncState::try_acquire(std::uint32_t id, CoreId by) {
  Lock& l = locks_[id];
  const std::uint64_t old = l.held;
  if (old == 0) {
    l.held = 1;
    l.holder = by;
    ++acquisitions;
    if (tracer_) tracer_->emit(TraceEventType::kLockAcquire, by, id, 0.0);
  } else {
    ++failed_acquires;
  }
  return old;
}

void SyncState::release(std::uint32_t id, CoreId by) {
  Lock& l = locks_[id];
  PTB_ASSERTF(l.held == 1, "core %u released free lock %u", by, id);
  PTB_ASSERTF(l.holder == by,
              "core %u released lock %u held by core %u", by, id, l.holder);
  l.held = 0;
  l.holder = kNoCore;
  if (tracer_) tracer_->emit(TraceEventType::kLockRelease, by, id, 0.0);
}

std::uint64_t SyncState::arrive(std::uint32_t id, CoreId by) {
  Barrier& b = barriers_[id];
  const std::uint64_t sense_at_arrival = b.sense;
  const bool last = (++b.count == num_threads_);
  if (tracer_) tracer_->emit(TraceEventType::kBarrierArrive, by, id, 0.0);
  if (last) {
    b.count = 0;
    b.sense ^= 1;
    ++barrier_episodes;
    if (tracer_) tracer_->emit(TraceEventType::kBarrierRelease, by, id, 0.0);
  }
  return sense_at_arrival | (last ? 2u : 0u);
}

}  // namespace ptb

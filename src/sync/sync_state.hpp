// Architectural state of synchronization variables (locks and barriers).
//
// The workload programs synchronize through test-and-test-and-set spinlocks
// and sense-reversing centralized barriers implemented with ordinary memory
// micro-ops through the coherent memory hierarchy. This class holds the
// *values* of those variables; timing and coherence traffic come from the
// memory system. Reads happen when a (blocking) load completes, writes when
// a store/RMW completes; per-line transaction serialization in the memory
// system makes that order coherent.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"

namespace ptb {

class EventTracer;

class SyncState {
 public:
  /// Sync variables live in a dedicated address region, one cache line each
  /// (no false sharing; all contention is true sharing).
  static constexpr Addr kRegionBase = 0x0001'0000;
  static constexpr Addr kLineBytes = 64;

  SyncState(std::uint32_t num_locks, std::uint32_t num_barriers,
            std::uint32_t num_threads);

  std::uint32_t num_locks() const {
    return static_cast<std::uint32_t>(locks_.size());
  }
  std::uint32_t num_barriers() const {
    return static_cast<std::uint32_t>(barriers_.size());
  }

  Addr lock_addr(std::uint32_t id) const;
  /// Address of the barrier's arrival counter (RMW target).
  Addr barrier_addr(std::uint32_t id) const;
  /// Address of the barrier's sense word (spin target). Same line as the
  /// counter — the classic centralized barrier layout.
  Addr barrier_sense_addr(std::uint32_t id) const {
    return barrier_addr(id) + 8;
  }

  // --- lock operations ---
  std::uint64_t read_lock(std::uint32_t id) const { return locks_[id].held; }
  /// Test&set; returns the *old* value (0 => acquired).
  std::uint64_t try_acquire(std::uint32_t id, CoreId by);
  void release(std::uint32_t id, CoreId by);
  CoreId lock_holder(std::uint32_t id) const { return locks_[id].holder; }

  // --- barrier operations ---
  std::uint64_t read_sense(std::uint32_t id) const {
    return barriers_[id].sense;
  }
  /// Atomic arrival. Returns the sense value *at arrival* in bit 0 and
  /// "was last" in bit 1; the last arriver resets the count and flips sense.
  /// `by` identifies the arriving core for the event trace only.
  std::uint64_t arrive(std::uint32_t id, CoreId by = kNoCore);

  /// Attach/detach the event tracer (src/trace): successful lock acquires,
  /// releases and barrier arrivals/releases emit kSync events.
  void set_tracer(EventTracer* t) { tracer_ = t; }

  // Statistics.
  std::uint64_t acquisitions = 0;
  std::uint64_t failed_acquires = 0;
  std::uint64_t barrier_episodes = 0;

  // Checkpoint support: lock/barrier values + statistics.
  void save_state(ByteWriter& w) const {
    w.u64(locks_.size());
    for (const Lock& l : locks_) {
      w.u64(l.held);
      w.u32(l.holder);
    }
    w.u64(barriers_.size());
    for (const Barrier& b : barriers_) {
      w.u32(b.count);
      w.u64(b.sense);
    }
    w.u64(acquisitions);
    w.u64(failed_acquires);
    w.u64(barrier_episodes);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != locks_.size()) {
      r.fail();
      return;
    }
    for (Lock& l : locks_) {
      l.held = r.u64();
      l.holder = r.u32();
    }
    if (r.u64() != barriers_.size()) {
      r.fail();
      return;
    }
    for (Barrier& b : barriers_) {
      b.count = r.u32();
      b.sense = r.u64();
    }
    acquisitions = r.u64();
    failed_acquires = r.u64();
    barrier_episodes = r.u64();
  }

 private:
  struct Lock {
    std::uint64_t held = 0;
    CoreId holder = kNoCore;
  };
  struct Barrier {
    std::uint32_t count = 0;
    std::uint64_t sense = 0;
  };

  std::vector<Lock> locks_;
  std::vector<Barrier> barriers_;
  std::uint32_t num_threads_;
  EventTracer* tracer_ = nullptr;  // owned by the running simulator
};

}  // namespace ptb

#include "sync/spin_tracker.hpp"

namespace ptb {

const char* exec_state_name(ExecState s) {
  switch (s) {
    case ExecState::kBusy: return "Busy";
    case ExecState::kLockAcq: return "Lock-Acquisition";
    case ExecState::kLockRel: return "Lock-Release";
    case ExecState::kBarrier: return "Barrier";
    case ExecState::kCount: break;
  }
  return "?";
}

}  // namespace ptb

#include "sync/spin_tracker.hpp"

#include "stats/stats.hpp"

namespace ptb {

const char* exec_state_name(ExecState s) {
  switch (s) {
    case ExecState::kBusy: return "Busy";
    case ExecState::kLockAcq: return "Lock-Acquisition";
    case ExecState::kLockRel: return "Lock-Release";
    case ExecState::kBarrier: return "Barrier";
    case ExecState::kCount: break;
  }
  return "?";
}

void SpinTracker::register_stats(StatsRegistry& reg,
                                 const std::string& prefix) const {
  // Dotted names stay lowercase/underscore like every other stat.
  static constexpr const char* kSlug[kNumExecStates] = {
      "busy", "lock_acq", "lock_rel", "barrier"};
  for (std::uint32_t s = 0; s < kNumExecStates; ++s) {
    reg.counter(prefix + ".cycles." + kSlug[s],
                std::string("cycles attributed to ") +
                    exec_state_name(static_cast<ExecState>(s)),
                &cycles_[s]);
    reg.counter(prefix + ".energy." + kSlug[s],
                std::string("energy attributed to ") +
                    exec_state_name(static_cast<ExecState>(s)),
                &power_[s], 1);
  }
  reg.formula(prefix + ".spin_energy",
              "energy spent in all spin states",
              [this] { return spin_power(); }, 1);
}

}  // namespace ptb

#include "stats/stats.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace ptb {

const char* stat_kind_name(StatKind k) {
  switch (k) {
    case StatKind::kCounter: return "counter";
    case StatKind::kGauge: return "gauge";
    case StatKind::kDistribution: return "distribution";
    case StatKind::kFormula: return "formula";
  }
  return "?";
}

bool parse_stat_kind(std::string_view s, StatKind& out) {
  if (s == "counter") out = StatKind::kCounter;
  else if (s == "gauge") out = StatKind::kGauge;
  else if (s == "distribution") out = StatKind::kDistribution;
  else if (s == "formula") out = StatKind::kFormula;
  else return false;
  return true;
}

double Stat::value() const {
  if (u64_ != nullptr) return static_cast<double>(*u64_);
  if (u32_ != nullptr) return static_cast<double>(*u32_);
  if (f64_ != nullptr) return *f64_;
  if (fn_) return fn_();
  return 0.0;  // distribution stats have no scalar value
}

std::uint64_t Stat::value_u64() const {
  if (u64_ != nullptr) return *u64_;
  if (u32_ != nullptr) return *u32_;
  return static_cast<std::uint64_t>(value());
}

std::string Stat::kv_string() const {
  if (integral()) return name_ + "=" + std::to_string(value_u64());
  return name_ + "=" + format_fixed(value(), kv_precision_);
}

Stat& StatsRegistry::add(std::string name, std::string desc, StatKind kind) {
  PTB_ASSERT(!name.empty(), "stat name must be non-empty");
  PTB_ASSERTF(name.find_first_of("= \n\t") == std::string::npos,
              "stat name '%s' contains a reserved character", name.c_str());
  const auto [it, inserted] = index_.emplace(name, stats_.size());
  PTB_ASSERTF(inserted, "duplicate stat name '%s'", name.c_str());
  (void)it;
  stats_.push_back(std::unique_ptr<Stat>(new Stat()));
  Stat& s = *stats_.back();
  s.name_ = std::move(name);
  s.desc_ = std::move(desc);
  s.kind_ = kind;
  return s;
}

void StatsRegistry::counter(std::string name, std::string desc,
                            const std::uint64_t* src) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kCounter);
  s.u64_ = src;
}

void StatsRegistry::counter(std::string name, std::string desc,
                            const std::uint32_t* src) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kCounter);
  s.u32_ = src;
}

void StatsRegistry::counter(std::string name, std::string desc,
                            const double* src, int kv_precision) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kCounter);
  s.f64_ = src;
  s.kv_precision_ = kv_precision;
}

void StatsRegistry::counter_fn(std::string name, std::string desc,
                               std::function<double()> fn) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kCounter);
  s.fn_ = std::move(fn);
  s.integral_fn_ = true;
}

void StatsRegistry::gauge(std::string name, std::string desc,
                          const double* src, int kv_precision) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kGauge);
  s.f64_ = src;
  s.kv_precision_ = kv_precision;
}

void StatsRegistry::gauge_fn(std::string name, std::string desc,
                             std::function<double()> fn, int kv_precision,
                             bool is_volatile) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kGauge);
  s.fn_ = std::move(fn);
  s.kv_precision_ = kv_precision;
  s.volatile_ = is_volatile;
}

Histogram& StatsRegistry::distribution(std::string name, std::string desc,
                                       double lo, double hi,
                                       std::size_t buckets) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kDistribution);
  s.hist_ = std::make_unique<Histogram>(lo, hi, buckets);
  return *s.hist_;
}

void StatsRegistry::formula(std::string name, std::string desc,
                            std::function<double()> fn, int kv_precision) {
  Stat& s = add(std::move(name), std::move(desc), StatKind::kFormula);
  s.fn_ = std::move(fn);
  s.kv_precision_ = kv_precision;
}

const Stat* StatsRegistry::find(std::string_view dotted_name) const {
  const auto it = index_.find(dotted_name);
  return it == index_.end() ? nullptr : stats_[it->second].get();
}

std::vector<const Stat*> StatsRegistry::sorted() const {
  std::vector<const Stat*> out;
  out.reserve(stats_.size());
  for (const auto& [name, idx] : index_) out.push_back(stats_[idx].get());
  return out;
}

SampleBuffer::SampleBuffer(const StatsRegistry& reg) {
  for (const Stat* s : reg.sorted()) {
    if (!s->scalar() || s->is_volatile()) continue;
    stats_.push_back(s);
    columns_.push_back(s->name());
  }
  data_.resize(stats_.size());
}

void SampleBuffer::sample(Cycle now) {
  cycles_.push_back(now);
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    data_[i].push_back(stats_[i]->value());
  }
}

std::string stats_kv(const StatsRegistry& reg) {
  std::string out;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const Stat& s = reg.at(i);
    if (!s.scalar()) continue;
    out += s.kv_string();
    out += '\n';
  }
  return out;
}

}  // namespace ptb

// Immutable snapshot of a run's stats registry — the artifact carried out
// of a run (RunResult::stats), written to disk by the bench binaries'
// --stats flag, and consumed by the ptb-stats CLI (dump | diff | regress).
//
// Two expositions:
//   - JSON (the on-disk interchange format; parse_json reads it back), with
//     name-sorted stats so equal registries serialize to equal bytes. The
//     wall-clock self-profiling gauges are marked volatile; serializing
//     with include_volatile=false yields a dump that is a pure function of
//     (profile, config, seed) — byte-identical at any --jobs value.
//   - Prometheus text exposition (counters/gauges + histogram buckets),
//     for scraping a fleet of simulation runners.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "stats/stats.hpp"

namespace ptb {

struct StatsDump {
  static constexpr std::uint32_t kSchemaVersion = 1;

  // Run metadata (stamped by the producer).
  std::string bench;
  std::uint32_t num_cores = 0;
  std::uint64_t cycles = 0;
  /// sim/reporting.hpp config_fingerprint of the producing run; diff and
  /// regress use it to tell "code changed" from "configuration changed".
  std::uint64_t config_fingerprint = 0;

  struct Scalar {
    std::string name;
    std::string desc;
    StatKind kind = StatKind::kGauge;
    bool is_volatile = false;
    bool integral = false;
    double value = 0.0;
    std::uint64_t u64 = 0;  // exact value when integral
  };
  struct Dist {
    std::string name;
    std::string desc;
    double lo = 0.0;
    double hi = 0.0;
    double sum = 0.0;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> counts;
  };

  std::vector<Scalar> scalars;  // name-sorted
  std::vector<Dist> dists;      // name-sorted

  // Columnar time series (empty unless RunOptions::stats_sample_every).
  Cycle sample_every = 0;
  std::vector<Cycle> sample_cycles;
  std::vector<std::string> sample_columns;
  std::vector<std::vector<double>> sample_values;  // column-major

  /// Snapshots `reg` (name-sorted); `samples` may be null.
  static StatsDump snapshot(const StatsRegistry& reg,
                            const SampleBuffer* samples, Cycle sample_every);

  const Scalar* find(std::string_view name) const;

  std::string to_json(bool include_volatile = true) const;
  std::string to_prometheus() const;
  /// Parses to_json output; returns false (out untouched) on malformed or
  /// schema-mismatched input.
  static bool parse_json(std::string_view text, StatsDump& out);
};

/// One differing stat between two dumps.
struct StatsDiffEntry {
  std::string name;
  bool only_in_a = false;
  bool only_in_b = false;
  double a = 0.0;
  double b = 0.0;
  double rel = 0.0;  // |a-b| / max(|a|,|b|); 0 when only on one side
};

/// Compares the non-volatile scalars of two dumps (include_volatile widens
/// to all scalars). A stat differs when its relative difference exceeds
/// `rel_tolerance` (exact comparison at 0.0). Entries are name-sorted.
std::vector<StatsDiffEntry> diff_stats(const StatsDump& a, const StatsDump& b,
                                       double rel_tolerance,
                                       bool include_volatile = false);

}  // namespace ptb

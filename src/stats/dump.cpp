#include "stats/dump.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace ptb {

namespace {

// --- tiny JSON writer helpers ------------------------------------------

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

// --- tiny JSON reader ----------------------------------------------------
// Recursive-descent parser for exactly the documents to_json emits (plus
// whitespace tolerance). Numbers parse as doubles; objects keep insertion
// order. Strict enough to reject truncated/corrupt dumps.

struct Json {
  enum class T : std::uint8_t { kNull, kBool, kNum, kStr, kArr, kObj };
  T t = T::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* get(std::string_view key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  bool parse(Json& out) {
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Our writer only escapes control chars; anything in the BMP
            // below 0x80 round-trips, the rest is preserved as UTF-8.
            if (v < 0x80) {
              out += static_cast<char>(v);
            } else if (v < 0x800) {
              out += static_cast<char>(0xC0 | (v >> 6));
              out += static_cast<char>(0x80 | (v & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (v >> 12));
              out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (v & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.t = Json::T::kObj;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        std::string key;
        if (!string(key) || !eat(':')) return false;
        Json v;
        if (!value(v)) return false;
        out.obj.emplace_back(std::move(key), std::move(v));
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.t = Json::T::kArr;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        Json v;
        if (!value(v)) return false;
        out.arr.push_back(std::move(v));
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.t = Json::T::kStr;
      return string(out.str);
    }
    if (c == 't') { out.t = Json::T::kBool; out.b = true;
                    return literal("true"); }
    if (c == 'f') { out.t = Json::T::kBool; out.b = false;
                    return literal("false"); }
    if (c == 'n') { out.t = Json::T::kNull; return literal("null"); }
    // number
    const std::size_t start = pos_;
    if (c == '-' || c == '+') ++pos_;
    bool digits = false;
    bool dot = false;
    bool exp = false;
    while (pos_ < s_.size()) {
      const char d = s_[pos_];
      if (d >= '0' && d <= '9') { digits = true; ++pos_; }
      else if (d == '.' && !dot && !exp) { dot = true; ++pos_; }
      else if ((d == 'e' || d == 'E') && digits && !exp) {
        exp = true;
        ++pos_;
        if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return false;
    out.t = Json::T::kNum;
    out.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                          nullptr);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool get_num(const Json& obj, std::string_view key, double& out) {
  const Json* v = obj.get(key);
  if (v == nullptr || v->t != Json::T::kNum) return false;
  out = v->num;
  return true;
}

bool get_str(const Json& obj, std::string_view key, std::string& out) {
  const Json* v = obj.get(key);
  if (v == nullptr || v->t != Json::T::kStr) return false;
  out = v->str;
  return true;
}

/// Prometheus metric name: "ptb_" + name with every non-[a-zA-Z0-9_]
/// character replaced by '_'.
std::string prom_name(const std::string& name) {
  std::string out = "ptb_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fp);
  return buf;
}

}  // namespace

StatsDump StatsDump::snapshot(const StatsRegistry& reg,
                              const SampleBuffer* samples,
                              Cycle sample_every) {
  StatsDump d;
  for (const Stat* s : reg.sorted()) {
    if (s->kind() == StatKind::kDistribution) {
      const Histogram& h = *s->histogram();
      Dist dist;
      dist.name = s->name();
      dist.desc = s->desc();
      dist.lo = h.lo();
      dist.hi = h.hi();
      dist.sum = h.sum();
      dist.total = h.total();
      dist.counts.resize(h.buckets());
      for (std::size_t i = 0; i < h.buckets(); ++i)
        dist.counts[i] = h.bucket_count(i);
      d.dists.push_back(std::move(dist));
    } else {
      Scalar sc;
      sc.name = s->name();
      sc.desc = s->desc();
      sc.kind = s->kind();
      sc.is_volatile = s->is_volatile();
      sc.integral = s->integral();
      sc.value = s->value();
      sc.u64 = s->integral() ? s->value_u64() : 0;
      d.scalars.push_back(std::move(sc));
    }
  }
  if (samples != nullptr) {
    d.sample_every = sample_every;
    d.sample_cycles = samples->cycles();
    d.sample_columns = samples->columns();
    d.sample_values.resize(samples->num_columns());
    for (std::size_t i = 0; i < samples->num_columns(); ++i)
      d.sample_values[i] = samples->column(i);
  }
  return d;
}

const StatsDump::Scalar* StatsDump::find(std::string_view name) const {
  const auto it = std::lower_bound(
      scalars.begin(), scalars.end(), name,
      [](const Scalar& s, std::string_view n) { return s.name < n; });
  return (it != scalars.end() && it->name == name) ? &*it : nullptr;
}

std::string StatsDump::to_json(bool include_volatile) const {
  std::string out = "{";
  out += "\"kind\":\"ptb-stats\",";
  out += "\"schema_version\":" + std::to_string(kSchemaVersion) + ",";
  out += "\"bench\":" + jstr(bench) + ",";
  out += "\"num_cores\":" + std::to_string(num_cores) + ",";
  out += "\"cycles\":" + std::to_string(cycles) + ",";
  out += "\"config_fingerprint\":\"" + fingerprint_hex(config_fingerprint) +
         "\",";
  out += "\"stats\":[";
  bool first = true;
  for (const Scalar& s : scalars) {
    if (s.is_volatile && !include_volatile) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + jstr(s.name);
    out += ",\"kind\":\"";
    out += stat_kind_name(s.kind);
    out += "\"";
    if (!s.desc.empty()) out += ",\"desc\":" + jstr(s.desc);
    if (s.is_volatile) out += ",\"volatile\":true";
    if (s.integral) out += ",\"integral\":true";
    out += ",\"value\":";
    out += s.integral ? std::to_string(s.u64) : format_g17(s.value);
    out += "}";
  }
  out += "],\"distributions\":[";
  for (std::size_t i = 0; i < dists.size(); ++i) {
    const Dist& h = dists[i];
    if (i) out += ",";
    out += "{\"name\":" + jstr(h.name);
    if (!h.desc.empty()) out += ",\"desc\":" + jstr(h.desc);
    out += ",\"lo\":" + format_g17(h.lo);
    out += ",\"hi\":" + format_g17(h.hi);
    out += ",\"sum\":" + format_g17(h.sum);
    out += ",\"total\":" + std::to_string(h.total);
    out += ",\"counts\":[";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j) out += ",";
      out += std::to_string(h.counts[j]);
    }
    out += "]}";
  }
  out += "],\"samples\":{";
  out += "\"every\":" + std::to_string(sample_every) + ",";
  out += "\"cycles\":[";
  for (std::size_t i = 0; i < sample_cycles.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(sample_cycles[i]);
  }
  out += "],\"columns\":[";
  for (std::size_t i = 0; i < sample_columns.size(); ++i) {
    if (i) out += ",";
    out += jstr(sample_columns[i]);
  }
  out += "],\"values\":[";
  for (std::size_t i = 0; i < sample_values.size(); ++i) {
    if (i) out += ",";
    out += "[";
    for (std::size_t j = 0; j < sample_values[i].size(); ++j) {
      if (j) out += ",";
      out += format_g17(sample_values[i][j]);
    }
    out += "]";
  }
  out += "]}}\n";
  return out;
}

std::string StatsDump::to_prometheus() const {
  std::string out;
  out += "# ptb-stats exposition: bench " + jstr(bench) + ", " +
         std::to_string(num_cores) + " cores, " + std::to_string(cycles) +
         " cycles\n";
  out += "# TYPE ptb_run_info gauge\n";
  out += "ptb_run_info{bench=" + jstr(bench) + ",config_fingerprint=\"" +
         fingerprint_hex(config_fingerprint) + "\"} 1\n";
  for (const Scalar& s : scalars) {
    const std::string n = prom_name(s.name);
    if (!s.desc.empty()) out += "# HELP " + n + " " + s.desc + "\n";
    // Prometheus has no formula type; derived metrics expose as gauges.
    out += "# TYPE " + n + " " +
           (s.kind == StatKind::kCounter ? "counter" : "gauge") + "\n";
    out += n + " " +
           (s.integral ? std::to_string(s.u64) : format_g17(s.value)) + "\n";
  }
  for (const Dist& h : dists) {
    const std::string n = prom_name(h.name);
    if (!h.desc.empty()) out += "# HELP " + n + " " + h.desc + "\n";
    out += "# TYPE " + n + " histogram\n";
    const double width =
        (h.hi - h.lo) / static_cast<double>(h.counts.empty()
                                                ? 1
                                                : h.counts.size());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      const double le = h.lo + width * static_cast<double>(i + 1);
      out += n + "_bucket{le=\"" + format_g17(le) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.total) + "\n";
    out += n + "_sum " + format_g17(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.total) + "\n";
  }
  return out;
}

bool StatsDump::parse_json(std::string_view text, StatsDump& out) {
  Json root;
  if (!JsonParser(text).parse(root) || root.t != Json::T::kObj) return false;
  std::string kind;
  if (!get_str(root, "kind", kind) || kind != "ptb-stats") return false;
  double schema = 0.0;
  if (!get_num(root, "schema_version", schema) ||
      static_cast<std::uint32_t>(schema) != kSchemaVersion) {
    return false;
  }
  StatsDump d;
  if (!get_str(root, "bench", d.bench)) return false;
  double num = 0.0;
  if (!get_num(root, "num_cores", num)) return false;
  d.num_cores = static_cast<std::uint32_t>(num);
  if (!get_num(root, "cycles", num)) return false;
  d.cycles = static_cast<std::uint64_t>(num);
  std::string fp;
  if (!get_str(root, "config_fingerprint", fp)) return false;
  d.config_fingerprint = std::strtoull(fp.c_str(), nullptr, 16);

  const Json* stats = root.get("stats");
  if (stats == nullptr || stats->t != Json::T::kArr) return false;
  for (const Json& e : stats->arr) {
    if (e.t != Json::T::kObj) return false;
    Scalar s;
    if (!get_str(e, "name", s.name)) return false;
    std::string ks;
    if (!get_str(e, "kind", ks) || !parse_stat_kind(ks, s.kind)) return false;
    get_str(e, "desc", s.desc);
    if (const Json* v = e.get("volatile"); v != nullptr)
      s.is_volatile = v->t == Json::T::kBool && v->b;
    if (const Json* v = e.get("integral"); v != nullptr)
      s.integral = v->t == Json::T::kBool && v->b;
    if (!get_num(e, "value", s.value)) return false;
    if (s.integral) s.u64 = static_cast<std::uint64_t>(s.value);
    d.scalars.push_back(std::move(s));
  }
  const Json* dists = root.get("distributions");
  if (dists == nullptr || dists->t != Json::T::kArr) return false;
  for (const Json& e : dists->arr) {
    if (e.t != Json::T::kObj) return false;
    Dist h;
    if (!get_str(e, "name", h.name)) return false;
    get_str(e, "desc", h.desc);
    if (!get_num(e, "lo", h.lo) || !get_num(e, "hi", h.hi) ||
        !get_num(e, "sum", h.sum)) {
      return false;
    }
    if (!get_num(e, "total", num)) return false;
    h.total = static_cast<std::uint64_t>(num);
    const Json* counts = e.get("counts");
    if (counts == nullptr || counts->t != Json::T::kArr) return false;
    for (const Json& c : counts->arr) {
      if (c.t != Json::T::kNum) return false;
      h.counts.push_back(static_cast<std::uint64_t>(c.num));
    }
    d.dists.push_back(std::move(h));
  }
  const Json* samples = root.get("samples");
  if (samples == nullptr || samples->t != Json::T::kObj) return false;
  if (!get_num(*samples, "every", num)) return false;
  d.sample_every = static_cast<Cycle>(num);
  const Json* cycles = samples->get("cycles");
  const Json* columns = samples->get("columns");
  const Json* values = samples->get("values");
  if (cycles == nullptr || cycles->t != Json::T::kArr || columns == nullptr ||
      columns->t != Json::T::kArr || values == nullptr ||
      values->t != Json::T::kArr) {
    return false;
  }
  for (const Json& c : cycles->arr) {
    if (c.t != Json::T::kNum) return false;
    d.sample_cycles.push_back(static_cast<Cycle>(c.num));
  }
  for (const Json& c : columns->arr) {
    if (c.t != Json::T::kStr) return false;
    d.sample_columns.push_back(c.str);
  }
  for (const Json& col : values->arr) {
    if (col.t != Json::T::kArr) return false;
    std::vector<double> v;
    for (const Json& c : col.arr) {
      if (c.t != Json::T::kNum) return false;
      v.push_back(c.num);
    }
    d.sample_values.push_back(std::move(v));
  }
  if (d.sample_values.size() != d.sample_columns.size()) return false;
  out = std::move(d);
  return true;
}

std::vector<StatsDiffEntry> diff_stats(const StatsDump& a, const StatsDump& b,
                                       double rel_tolerance,
                                       bool include_volatile) {
  std::vector<StatsDiffEntry> out;
  std::size_t i = 0;
  std::size_t j = 0;
  const auto skip = [&](const StatsDump::Scalar& s) {
    return s.is_volatile && !include_volatile;
  };
  while (i < a.scalars.size() || j < b.scalars.size()) {
    if (i < a.scalars.size() && skip(a.scalars[i])) { ++i; continue; }
    if (j < b.scalars.size() && skip(b.scalars[j])) { ++j; continue; }
    const bool have_a = i < a.scalars.size();
    const bool have_b = j < b.scalars.size();
    int cmp;
    if (have_a && have_b) {
      cmp = a.scalars[i].name.compare(b.scalars[j].name);
    } else {
      cmp = have_a ? -1 : 1;
    }
    StatsDiffEntry e;
    if (cmp < 0) {
      e.name = a.scalars[i].name;
      e.only_in_a = true;
      e.a = a.scalars[i].value;
      out.push_back(std::move(e));
      ++i;
    } else if (cmp > 0) {
      e.name = b.scalars[j].name;
      e.only_in_b = true;
      e.b = b.scalars[j].value;
      out.push_back(std::move(e));
      ++j;
    } else {
      const double va = a.scalars[i].value;
      const double vb = b.scalars[j].value;
      const double mag = std::max(std::fabs(va), std::fabs(vb));
      const double rel = (va == vb) ? 0.0 : std::fabs(va - vb) / mag;
      if (rel > rel_tolerance) {
        e.name = a.scalars[i].name;
        e.a = va;
        e.b = vb;
        e.rel = rel;
        out.push_back(std::move(e));
      }
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace ptb

// Hierarchical stats registry (gem5-style) — the typed metrics plane over
// the simulator. Components *register* their existing counters once per
// run; the registry never sits on the hot path:
//
//   - a Counter/Gauge binds to the owning component's member (the component
//     keeps incrementing its own field exactly as before; the registry
//     reads it at sample/dump time), or to a pull callback;
//   - a Distribution is a registry-owned Histogram the owner pushes into
//     behind its own `if (stats)` guard (the audit/trace hook pattern);
//   - a Formula is a derived metric evaluated lazily at sample/dump time
//     (AoPB fraction, IPC, token grant ratio, ...).
//
// Zero overhead when disabled: no registry is allocated unless
// RunOptions::stats is set, and nothing in the cycle loop changes.
//
// Names are dotted paths ("core.3.rob.occupancy",
// "ptb.balancer.tokens_granted"). Iteration is deterministic: dumps walk
// the name-sorted index (byte-stable across --jobs and across sessions),
// while `at()` preserves registration order for consumers that pin their
// own order (run_summary_kv).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

enum class StatKind : std::uint8_t { kCounter, kGauge, kDistribution,
                                     kFormula };

const char* stat_kind_name(StatKind k);

/// Parses stat_kind_name output; returns false on anything else.
bool parse_stat_kind(std::string_view s, StatKind& out);

/// One registered stat. Scalar stats (counter/gauge/formula) produce a
/// double via value(); integral counters additionally expose the exact
/// 64-bit value. Distribution stats expose their Histogram instead.
class Stat {
 public:
  const std::string& name() const { return name_; }
  const std::string& desc() const { return desc_; }
  StatKind kind() const { return kind_; }
  /// Volatile stats (wall-clock self-profiling) are not deterministic
  /// functions of (profile, config, seed); deterministic dumps and the
  /// sample buffer exclude them.
  bool is_volatile() const { return volatile_; }
  bool scalar() const { return kind_ != StatKind::kDistribution; }
  /// True when backed by an integer source (prints without a decimal
  /// point; exact via value_u64).
  bool integral() const { return u64_ != nullptr || u32_ != nullptr ||
                                 integral_fn_; }

  double value() const;
  std::uint64_t value_u64() const;
  const Histogram* histogram() const { return hist_.get(); }

  /// Fixed precision for flat key=value rendering (run_summary_kv).
  int kv_precision() const { return kv_precision_; }
  /// `name=value` with pinned, locale-independent formatting.
  std::string kv_string() const;

 private:
  friend class StatsRegistry;
  Stat() = default;

  std::string name_;
  std::string desc_;
  StatKind kind_ = StatKind::kGauge;
  bool volatile_ = false;
  bool integral_fn_ = false;
  int kv_precision_ = 3;
  const std::uint64_t* u64_ = nullptr;
  const std::uint32_t* u32_ = nullptr;
  const double* f64_ = nullptr;
  std::function<double()> fn_;
  std::unique_ptr<Histogram> hist_;
};

class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  // --- registration -----------------------------------------------------
  // Bound sources must outlive the registry (they are read at sample /
  // dump time). Duplicate or empty names abort via PTB_ASSERT.
  // Registration binds raw member pointers, so it may only run at a
  // sequential point of the cycle loop (never from the parallel shard
  // region) — enforced at compile time by the g_sequential_point role
  // (common/thread_annotations.hpp) under clang -Wthread-safety.
  void counter(std::string name, std::string desc, const std::uint64_t* src)
      PTB_REQUIRES(g_sequential_point);
  void counter(std::string name, std::string desc, const std::uint32_t* src)
      PTB_REQUIRES(g_sequential_point);
  /// Token totals accumulate as doubles; kv_precision pins their flat
  /// key=value rendering (run_summary_kv compatibility).
  void counter(std::string name, std::string desc, const double* src,
               int kv_precision = 1) PTB_REQUIRES(g_sequential_point);
  /// Pull-callback counter rendered as an integer (derived event counts).
  void counter_fn(std::string name, std::string desc,
                  std::function<double()> fn) PTB_REQUIRES(g_sequential_point);
  void gauge(std::string name, std::string desc, const double* src,
             int kv_precision = 3) PTB_REQUIRES(g_sequential_point);
  void gauge_fn(std::string name, std::string desc,
                std::function<double()> fn, int kv_precision = 3,
                bool is_volatile = false) PTB_REQUIRES(g_sequential_point);
  /// Registry-owned histogram; the returned reference stays valid for the
  /// registry's lifetime (push samples behind your own stats guard).
  Histogram& distribution(std::string name, std::string desc, double lo,
                          double hi, std::size_t buckets)
      PTB_REQUIRES(g_sequential_point);
  /// Derived metric; evaluate other stats / captured state lazily.
  void formula(std::string name, std::string desc,
               std::function<double()> fn, int kv_precision = 3)
      PTB_REQUIRES(g_sequential_point);

  // --- lookup / iteration ----------------------------------------------
  /// Dotted-path lookup; null when absent.
  const Stat* find(std::string_view dotted_name) const;
  std::size_t size() const { return stats_.size(); }
  /// Registration order (pinned by the registering code).
  const Stat& at(std::size_t i) const { return *stats_[i]; }
  /// Name-sorted order — the deterministic dump/sample order.
  std::vector<const Stat*> sorted() const;

 private:
  Stat& add(std::string name, std::string desc, StatKind kind)
      PTB_REQUIRES(g_sequential_point);

  std::vector<std::unique_ptr<Stat>> stats_;           // registration order
  std::map<std::string, std::size_t, std::less<>> index_;  // name-sorted
};

/// Columnar time-series buffer over a registry's deterministic (sorted,
/// non-volatile) scalar stats: one column per stat, one row per sample.
/// Drives RunOptions::stats_sample_every.
class SampleBuffer {
 public:
  explicit SampleBuffer(const StatsRegistry& reg)
      PTB_REQUIRES(g_sequential_point);

  /// Appends one row: every column's current value at cycle `now`.
  void sample(Cycle now) PTB_REQUIRES(g_sequential_point);

  std::size_t num_columns() const { return stats_.size(); }
  std::size_t num_samples() const { return cycles_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Cycle>& cycles() const { return cycles_; }
  const std::vector<double>& column(std::size_t i) const { return data_[i]; }

  // Checkpoint support (sim/checkpoint): accumulated rows. The column set
  // comes from the (re-registered) registry; a restore into a registry with
  // a different column set fails the reader.
  void save_state(ByteWriter& w) const {
    w.u64(columns_.size());
    for (const std::string& c : columns_) w.str(c);
    w.u64_vec(cycles_);
    for (const std::vector<double>& col : data_) w.f64_vec(col);
  }
  void load_state(ByteReader& r) {
    const std::uint64_t nc = r.u64();
    if (nc != columns_.size()) {
      r.fail();
      return;
    }
    for (const std::string& c : columns_) {
      if (r.str() != c) {
        r.fail();
        return;
      }
    }
    std::vector<Cycle> cyc;
    r.u64_vec(cyc);
    std::vector<std::vector<double>> cols(data_.size());
    for (std::vector<double>& col : cols) {
      r.f64_vec(col);
      if (col.size() != cyc.size()) {
        r.fail();
        return;
      }
    }
    if (!r.ok()) return;
    cycles_ = std::move(cyc);
    data_ = std::move(cols);
  }

 private:
  std::vector<const Stat*> stats_;        // sorted, scalar, non-volatile
  std::vector<std::string> columns_;      // their names
  std::vector<Cycle> cycles_;
  std::vector<std::vector<double>> data_;  // column-major
};

/// Flat `name=value` rendering of the registry in registration order, one
/// stat per line — the single source of truth behind run_summary_kv.
std::string stats_kv(const StatsRegistry& reg);

}  // namespace ptb

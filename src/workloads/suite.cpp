#include "workloads/suite.hpp"

#include "common/assert.hpp"

namespace ptb {

namespace {

// Mixes: scientific SPLASH-2 codes are FP-heavy; integer codecs (x264,
// Radix) are int-heavy; Blackscholes/Swaptions are FP-kernel PARSEC codes.
MixConfig fp_mix() {
  MixConfig m;
  m.int_alu = 0.26; m.int_mult = 0.04; m.fp_alu = 0.24; m.fp_mult = 0.12;
  m.load = 0.18; m.store = 0.07; m.branch = 0.09;
  return m;
}

MixConfig int_mix() {
  MixConfig m;
  m.int_alu = 0.44; m.int_mult = 0.08; m.fp_alu = 0.02; m.fp_mult = 0.01;
  m.load = 0.20; m.store = 0.10; m.branch = 0.15;
  return m;
}

MixConfig mem_mix() {
  MixConfig m;
  m.int_alu = 0.30; m.int_mult = 0.03; m.fp_alu = 0.14; m.fp_mult = 0.06;
  m.load = 0.22; m.store = 0.11; m.branch = 0.14;
  return m;
}

std::vector<WorkloadProfile> build_suite() {
  std::vector<WorkloadProfile> v;

  {  // Barnes: N-body, barrier per timestep, moderate imbalance (tree walk),
     // some tree locks (lightly contended).
    WorkloadProfile p;
    p.name = "barnes";
    p.input_desc = "8192 bodies, 4 time steps";
    p.iterations = 4;
    p.ops_per_iteration = 44'000;
    p.imbalance = 0.15;
    p.mix = fp_mix();
    p.num_locks = 8;
    p.cs_per_1k_ops = 0.8;
    p.cs_len_ops = 18;
    p.hot_lock_frac = 0.15;
    v.push_back(p);
  }
  {  // Cholesky: task-queue code, well balanced, negligible contention,
     // synchronizes only at the end (Figure 3: essentially all busy).
    WorkloadProfile p;
    p.name = "cholesky";
    p.input_desc = "tk16.0";
    p.iterations = 1;
    p.ops_per_iteration = 170'000;
    p.imbalance = 0.03;
    p.barrier_per_iter = false;
    p.mix = fp_mix();
    p.num_locks = 16;
    p.cs_per_1k_ops = 0.5;
    p.cs_len_ops = 10;
    p.hot_lock_frac = 0.05;
    v.push_back(p);
  }
  {  // FFT: few barriers, all-to-all transpose (shared memory traffic),
     // well balanced.
    WorkloadProfile p;
    p.name = "fft";
    p.input_desc = "256K complex doubles";
    p.iterations = 3;
    p.ops_per_iteration = 56'000;
    p.imbalance = 0.08;
    p.mix = mem_mix();
    p.shared_frac = 0.15;
    p.ws_shared_lines = 1536;
    p.stride_frac = 0.85;
    v.push_back(p);
  }
  {  // Ocean: many barriers per timestep (multigrid sweeps), streaming
     // memory; barrier time dominates at high core counts.
    WorkloadProfile p;
    p.name = "ocean";
    p.input_desc = "258x258 ocean";
    p.iterations = 12;
    p.ops_per_iteration = 14'000;
    p.imbalance = 0.18;
    p.mix = mem_mix();
    p.shared_frac = 0.12;
    p.ws_shared_lines = 2048;
    p.stride_frac = 0.90;
    v.push_back(p);
  }
  {  // Radix: sort with permutation phase -> high imbalance + barriers,
     // random (scatter) stores to shared memory.
    WorkloadProfile p;
    p.name = "radix";
    p.input_desc = "1M keys, 1024 radix";
    p.iterations = 6;
    p.ops_per_iteration = 26'000;
    p.imbalance = 0.40;
    p.mix = int_mix();
    p.shared_frac = 0.20;
    p.ws_shared_lines = 2048;
    p.stride_frac = 0.40;
    v.push_back(p);
  }
  {  // Raytrace: work-queue locks with real contention, imbalanced rays.
    WorkloadProfile p;
    p.name = "raytrace";
    p.input_desc = "Teapot";
    p.iterations = 2;
    p.ops_per_iteration = 80'000;
    p.imbalance = 0.28;
    p.barrier_per_iter = false;
    p.mix = fp_mix();
    p.num_locks = 8;
    p.cs_per_1k_ops = 0.6;
    p.cs_len_ops = 12;
    p.hot_lock_frac = 0.35;
    v.push_back(p);
  }
  {  // Tomcatv: vectorized mesh code, barrier every iteration, moderate.
    WorkloadProfile p;
    p.name = "tomcatv";
    p.input_desc = "256 elements, 5 iterations";
    p.iterations = 5;
    p.ops_per_iteration = 30'000;
    p.imbalance = 0.10;
    p.mix = fp_mix();
    p.stride_frac = 0.92;
    v.push_back(p);
  }
  {  // Unstructured: the paper's lock-dominated outlier — heavy contention
     // on a hot lock, many critical sections, strong thread dependences.
    WorkloadProfile p;
    p.name = "unstructured";
    p.input_desc = "Mesh.2K, 5 time steps";
    p.iterations = 5;
    p.ops_per_iteration = 22'000;
    p.imbalance = 0.18;
    p.mix = fp_mix();
    p.num_locks = 4;
    p.cs_per_1k_ops = 1.6;
    p.cs_len_ops = 20;
    p.hot_lock_frac = 0.70;
    v.push_back(p);
  }
  {  // Water-NSQ: O(n^2) forces with per-molecule locks — moderately
     // contended locks plus barriers; unbalanced (prefers ToOne, Fig. 11).
    WorkloadProfile p;
    p.name = "waternsq";
    p.input_desc = "512 molecules, 4 time steps";
    p.iterations = 4;
    p.ops_per_iteration = 34'000;
    p.imbalance = 0.26;
    p.mix = fp_mix();
    p.num_locks = 8;
    p.cs_per_1k_ops = 0.9;
    p.cs_len_ops = 14;
    p.hot_lock_frac = 0.40;
    v.push_back(p);
  }
  {  // Water-SP: spatial version — barriers, few locks.
    WorkloadProfile p;
    p.name = "watersp";
    p.input_desc = "512 molecules, 4 time steps";
    p.iterations = 4;
    p.ops_per_iteration = 36'000;
    p.imbalance = 0.12;
    p.mix = fp_mix();
    p.num_locks = 8;
    p.cs_per_1k_ops = 0.6;
    p.cs_len_ops = 10;
    p.hot_lock_frac = 0.15;
    v.push_back(p);
  }
  {  // Blackscholes: embarrassingly parallel PARSEC kernel, one final
     // barrier, no contention (Figure 3: all busy).
    WorkloadProfile p;
    p.name = "blackscholes";
    p.input_desc = "simsmall";
    p.iterations = 1;
    p.ops_per_iteration = 160'000;
    p.imbalance = 0.02;
    p.barrier_per_iter = false;
    p.mix = fp_mix();
    p.dep_prob = 0.62;        // the B-S formula is a serial FP chain
    p.ws_private_lines = 1024;  // streams the option array (~L1D-sized)
    p.stride_frac = 0.95;
    p.shared_frac = 0.02;
    v.push_back(p);
  }
  {  // Fluidanimate: fine-grained cell locks, very lock-heavy at high core
     // counts (Figure 3's other lock-dominated benchmark).
    WorkloadProfile p;
    p.name = "fluidanimate";
    p.input_desc = "simsmall";
    p.iterations = 5;
    p.ops_per_iteration = 24'000;
    p.imbalance = 0.15;
    p.mix = fp_mix();
    p.num_locks = 6;
    p.cs_per_1k_ops = 1.2;
    p.cs_len_ops = 18;
    p.hot_lock_frac = 0.55;
    v.push_back(p);
  }
  {  // Swaptions: embarrassingly parallel, final sync only.
    WorkloadProfile p;
    p.name = "swaptions";
    p.input_desc = "simsmall";
    p.iterations = 1;
    p.ops_per_iteration = 150'000;
    p.imbalance = 0.04;
    p.barrier_per_iter = false;
    p.mix = fp_mix();
    p.dep_prob = 0.60;        // HJM path-simulation recurrences
    p.ws_private_lines = 1024;  // per-swaption paths (~L1D-sized)
    p.stride_frac = 0.95;
    p.shared_frac = 0.02;
    v.push_back(p);
  }
  {  // x264: pipelined encoder — int-heavy, low contention, syncs at end.
    WorkloadProfile p;
    p.name = "x264";
    p.input_desc = "simsmall";
    p.iterations = 2;
    p.ops_per_iteration = 70'000;
    p.imbalance = 0.10;
    p.barrier_per_iter = false;
    p.mix = int_mix();
    p.num_locks = 8;
    p.cs_per_1k_ops = 0.8;
    p.cs_len_ops = 12;
    p.hot_lock_frac = 0.10;
    v.push_back(p);
  }
  return v;
}

const std::vector<WorkloadProfile>& full_suite() {
  static const std::vector<WorkloadProfile> suite = build_suite();
  return suite;
}

std::string& suite_filter() {
  static std::string filter;
  return filter;
}

bool g_suite_materialized = false;

}  // namespace

bool set_suite_filter(const std::string& name) {
  PTB_ASSERT(!g_suite_materialized,
             "set_suite_filter must run before the first benchmark_suite() "
             "call (the suite is materialized once)");
  if (!name.empty()) {
    bool found = false;
    for (const auto& p : full_suite()) found = found || p.name == name;
    if (!found) return false;
  }
  suite_filter() = name;
  return true;
}

const std::vector<WorkloadProfile>& benchmark_suite() {
  static const std::vector<WorkloadProfile> suite = [] {
    g_suite_materialized = true;
    std::vector<WorkloadProfile> v;
    for (const auto& p : full_suite())
      if (suite_filter().empty() || p.name == suite_filter()) v.push_back(p);
    return v;
  }();
  return suite;
}

const WorkloadProfile& benchmark_by_name(const std::string& name) {
  for (const auto& p : full_suite())
    if (p.name == name) return p;
  PTB_ASSERTF(false, "unknown benchmark name '%s'", name.c_str());
  return full_suite().front();  // unreachable
}

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  for (const auto& p : benchmark_suite()) names.push_back(p.name);
  return names;
}

std::vector<std::string> full_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& p : full_suite()) names.push_back(p.name);
  return names;
}

}  // namespace ptb

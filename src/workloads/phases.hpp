// Workload profile description: the knobs that shape a synthetic
// multithreaded benchmark (instruction mix, working sets, lock/barrier
// structure, imbalance). Each of the paper's 14 SPLASH-2/PARSEC benchmarks
// maps to one WorkloadProfile in workloads/suite.cpp, tuned to match the
// paper's Figure 3 execution-time breakdown qualitatively.
#pragma once

#include <cstdint>
#include <string>

namespace ptb {

/// Dynamic instruction mix; fields are relative weights (normalized at use).
struct MixConfig {
  double int_alu = 0.35;
  double int_mult = 0.08;
  double fp_alu = 0.12;
  double fp_mult = 0.05;
  double load = 0.20;
  double store = 0.10;
  double branch = 0.10;
};

struct WorkloadProfile {
  std::string name;
  std::string input_desc;  // Table 2 "size" column

  // Structure: `iterations` outer timesteps; each ends in a barrier when
  // `barrier_per_iter`; one final barrier always closes the parallel phase.
  std::uint32_t iterations = 4;
  /// Total compute micro-ops per iteration across ALL threads (fixed total
  /// work: per-thread work shrinks as cores grow, as in the real suites).
  std::uint64_t ops_per_iteration = 40'000;
  /// Per-thread, per-iteration work spread: thread work is scaled by
  /// 1 + imbalance * u, u deterministic in [-1, 1]. The max over N threads
  /// grows with N, which is what makes barrier wait grow with core count.
  double imbalance = 0.10;
  bool barrier_per_iter = true;

  MixConfig mix{};

  // Memory behaviour.
  std::uint32_t ws_private_lines = 256;
  std::uint32_t ws_shared_lines = 768;
  double shared_frac = 0.10;   // fraction of memory ops to shared data
  double stride_frac = 0.75;   // sequential-stride fraction (rest random)

  // Branch behaviour.
  double branch_taken_rate = 0.88;
  /// Fraction of static branches that are data-dependent (75/25 outcomes,
  /// essentially unpredictable); the rest are fixed-direction and learned.
  double branch_noise = 0.08;

  // Dependencies (ILP): probability an op depends on a recent older op.
  double dep_prob = 0.45;

  // Locks. cs_per_1k_ops == 0 disables critical sections.
  std::uint32_t num_locks = 0;
  double cs_per_1k_ops = 0.0;
  std::uint32_t cs_len_ops = 40;
  /// Probability a critical section uses the single hot lock (id 0) rather
  /// than a thread-striped lock: 1.0 = fully contended.
  double hot_lock_frac = 0.5;

  /// Static code footprint in micro-ops (PTHT locality comes from this).
  std::uint32_t code_footprint = 1024;
};

}  // namespace ptb

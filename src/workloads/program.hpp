// SyntheticProgram: the reactive micro-op generator implementing one thread
// of a WorkloadProfile (see phases.hpp).
//
// The program is a state machine over: compute -> (test&test&set lock ->
// critical section -> release)* -> barrier arrive -> barrier spin -> next
// iteration. Spin loops are real load/branch loops against sync variables
// through the coherent memory system; the *timing* of lock handoffs and
// barrier releases therefore emerges from the simulated machine.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "cpu/thread_program.hpp"
#include "sync/spin_tracker.hpp"
#include "sync/sync_state.hpp"
#include "workloads/phases.hpp"

namespace ptb {

class SyntheticProgram final : public ThreadProgram {
 public:
  SyntheticProgram(const WorkloadProfile& profile, std::uint32_t tid,
                   std::uint32_t num_threads, SyncState& sync,
                   SpinTracker& tracker, std::uint64_t seed);

  FetchStatus next(MicroOp& out) override;
  void on_value(const MicroOp& op, std::uint64_t value) override;
  bool finished() const override { return state_ == State::kDone; }

  // Introspection for tests.
  std::uint32_t iteration() const { return iter_; }
  std::uint64_t compute_ops_emitted() const { return compute_emitted_; }
  std::uint64_t lock_sections_entered() const { return cs_entered_; }

  // Checkpoint support (sim/checkpoint): the generator state machine, the
  // RNG and the prepared-op queue. The code template and address layout are
  // pure functions of (profile, tid, seed) and are rebuilt, not serialized.
  void save_state(ByteWriter& w) const {
    rng_.save_state(w);
    w.u32(template_pos_);
    w.u64(stride_priv_);
    w.u64(stride_shared_);
    w.u8(static_cast<std::uint8_t>(state_));
    w.u64(queue_.size());
    for (const MicroOp& op : queue_) save_microop(w, op);
    w.boolean(waiting_);
    w.u32(pause_left_);
    w.u32(iter_);
    w.u64(ops_left_);
    w.u64(cs_countdown_);
    w.u64(cs_left_);
    w.u32(current_lock_);
    w.u64(barrier_wait_sense_);
    w.boolean(in_final_barrier_);
    w.u64(compute_emitted_);
    w.u64(cs_entered_);
  }
  void load_state(ByteReader& r) {
    rng_.load_state(r);
    template_pos_ = r.u32();
    stride_priv_ = r.u64();
    stride_shared_ = r.u64();
    const std::uint8_t st = r.u8();
    if (st > static_cast<std::uint8_t>(State::kDone)) {
      r.fail();
      return;
    }
    state_ = static_cast<State>(st);
    const std::uint64_t nq = r.u64();
    if (nq > r.remaining() / 26) {  // 26 = serialized MicroOp bytes
      r.fail();
      return;
    }
    queue_.clear();
    for (std::uint64_t i = 0; i < nq; ++i) {
      MicroOp op;
      if (!load_microop(r, op)) return;
      queue_.push_back(op);
    }
    waiting_ = r.boolean();
    pause_left_ = r.u32();
    iter_ = r.u32();
    ops_left_ = r.u64();
    cs_countdown_ = r.u64();
    cs_left_ = r.u64();
    current_lock_ = r.u32();
    barrier_wait_sense_ = r.u64();
    in_final_barrier_ = r.boolean();
    compute_emitted_ = r.u64();
    cs_entered_ = r.u64();
  }

  // Address layout (public so the simulator can warm caches functionally).
  static constexpr Addr kSharedBase = 0x0100'0000;
  static constexpr Addr kPrivateBase = 0x0800'0000;
  static constexpr Addr kPrivateStride = 0x0100'0000;  // 16 MB per thread
  static constexpr Addr kCodeBase = 0x4000'0000;
  static constexpr Addr kCodeStride = 0x0010'0000;  // 1 MB per thread

  Addr code_base() const { return code_base_; }
  Addr private_base() const { return private_base_; }
  std::uint32_t code_bytes() const {
    return static_cast<std::uint32_t>(template_.size()) * 4;
  }

  /// Trains a branch predictor with each static branch's dominant direction
  /// (functional warmup companion: skips the cold-start mispredict storm on
  /// short measured runs).
  template <typename Predictor>
  void warm_predictor(Predictor& bp, std::uint32_t passes = 3) const {
    for (std::uint32_t p = 0; p < passes; ++p) {
      for (std::size_t i = 0; i < template_.size(); ++i) {
        if (template_[i].cls != OpClass::kBranch) continue;
        bp.update(code_base_ + static_cast<Addr>(i) * 4,
                  template_[i].taken_bias);
      }
    }
  }

 private:
  enum class State : std::uint8_t {
    kCompute,       // emitting compute/template ops
    kWaitingValue,  // a blocking op is in flight
    kDone,
  };

  struct TemplateOp {
    OpClass cls;
    std::uint8_t dep1;
    std::uint8_t dep2;
    bool taken_bias;  // branches: the slot's dominant direction
    bool noisy;       // branches: data-dependent (hard to predict)
  };

  void build_template();
  MicroOp make_compute_op();
  Addr data_address(bool is_store);
  void start_iteration();
  void begin_lock_acquire();
  void begin_barrier();
  void enqueue(MicroOp op);
  void after_release();
  std::uint64_t per_iter_ops(std::uint32_t iter) const;

  // Fixed PCs of the synchronization code (shared across locks/barriers,
  // like a real inlined lock routine).
  Pc pc_lock_test() const { return code_base_ + 0x8000; }
  Pc pc_lock_branch() const { return code_base_ + 0x8004; }
  Pc pc_lock_rmw() const { return code_base_ + 0x8008; }
  Pc pc_lock_release() const { return code_base_ + 0x800c; }
  Pc pc_barrier_arrive() const { return code_base_ + 0x8010; }
  Pc pc_barrier_load() const { return code_base_ + 0x8014; }
  Pc pc_barrier_branch() const { return code_base_ + 0x8018; }

  const WorkloadProfile& profile_;
  std::uint32_t tid_;
  std::uint32_t num_threads_;
  SyncState& sync_;
  SpinTracker& tracker_;
  Rng rng_;

  std::vector<TemplateOp> template_;
  std::uint32_t template_pos_ = 0;
  Addr code_base_;
  Addr private_base_;
  Addr stride_priv_ = 0;
  Addr stride_shared_ = 0;  // starts at this thread's partition

  State state_ = State::kCompute;
  std::deque<MicroOp> queue_;   // prepared ops (sync sequences)
  bool waiting_ = false;        // blocking op in flight
  std::uint32_t pause_left_ = 0;  // spin-loop PAUSE: stall cycles to insert

  /// Cycles of front-end stall between spin probes (models the PAUSE in
  /// real spin loops; lets the core clock-gate while waiting).
  static constexpr std::uint32_t kSpinPause = 6;

  std::uint32_t iter_ = 0;
  std::uint64_t ops_left_ = 0;       // compute ops left this iteration
  std::uint64_t cs_countdown_ = 0;   // compute ops until next lock section
  std::uint64_t cs_left_ = 0;        // >0: inside a critical section
  std::uint32_t current_lock_ = 0;
  std::uint64_t barrier_wait_sense_ = 0;
  bool in_final_barrier_ = false;

  std::uint64_t compute_emitted_ = 0;
  std::uint64_t cs_entered_ = 0;
};

}  // namespace ptb

// The evaluated benchmark suite (Table 2 of the paper): SPLASH-2 (Barnes,
// Cholesky, FFT, Ocean, Radix, Raytrace, Tomcatv, Unstructured, Water-NSQ,
// Water-SP) and PARSEC (Blackscholes, Fluidanimate, Swaptions, x264), each
// mapped to a synthetic WorkloadProfile whose lock/barrier structure and
// imbalance reproduce the paper's Figure 3 breakdown qualitatively.
#pragma once

#include <string>
#include <vector>

#include "workloads/phases.hpp"

namespace ptb {

/// All 14 profiles, in the paper's Figure ordering.
const std::vector<WorkloadProfile>& benchmark_suite();

/// Lookup by (case-sensitive) name; aborts if unknown.
const WorkloadProfile& benchmark_by_name(const std::string& name);

/// Names in suite order.
std::vector<std::string> benchmark_names();

}  // namespace ptb

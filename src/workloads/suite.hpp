// The evaluated benchmark suite (Table 2 of the paper): SPLASH-2 (Barnes,
// Cholesky, FFT, Ocean, Radix, Raytrace, Tomcatv, Unstructured, Water-NSQ,
// Water-SP) and PARSEC (Blackscholes, Fluidanimate, Swaptions, x264), each
// mapped to a synthetic WorkloadProfile whose lock/barrier structure and
// imbalance reproduce the paper's Figure 3 breakdown qualitatively.
#pragma once

#include <string>
#include <vector>

#include "workloads/phases.hpp"

namespace ptb {

/// All 14 profiles, in the paper's Figure ordering — unless a process-wide
/// filter was installed with set_suite_filter, in which case only the
/// selected profile.
const std::vector<WorkloadProfile>& benchmark_suite();

/// Process-wide suite filter (the bench binaries' --only flag, same pattern
/// as set_default_audit_level): after set_suite_filter("fft"),
/// benchmark_suite() returns just that profile. Returns false on an unknown
/// name (filter unchanged). Must be called before the first
/// benchmark_suite() call and is not thread-safe; an empty name clears the
/// filter. benchmark_by_name / full_benchmark_names ignore the filter.
bool set_suite_filter(const std::string& name);

/// Lookup by (case-sensitive) name; aborts if unknown. Ignores the filter.
const WorkloadProfile& benchmark_by_name(const std::string& name);

/// Names in (possibly filtered) suite order.
std::vector<std::string> benchmark_names();

/// Names of the full 14-benchmark suite, ignoring any filter (--list).
std::vector<std::string> full_benchmark_names();

}  // namespace ptb

#include "workloads/program.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ptb {

namespace {

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ull + b;
  x ^= x >> 32;
  x *= 0xd6e8feb86659fd93ull;
  x ^= x >> 32;
  return x;
}

}  // namespace

SyntheticProgram::SyntheticProgram(const WorkloadProfile& profile,
                                   std::uint32_t tid,
                                   std::uint32_t num_threads, SyncState& sync,
                                   SpinTracker& tracker, std::uint64_t seed)
    : profile_(profile), tid_(tid), num_threads_(num_threads), sync_(sync),
      tracker_(tracker), rng_(hash_mix(seed, tid + 1)),
      code_base_(kCodeBase + static_cast<Addr>(tid) * kCodeStride),
      private_base_(kPrivateBase + static_cast<Addr>(tid) * kPrivateStride) {
  PTB_ASSERT(num_threads >= 1, "need at least one thread");
  // Threads stream disjoint partitions of the shared array (as the real
  // data-parallel codes do); contention comes from partition boundaries and
  // the random-access fraction, not from lockstep streaming.
  stride_shared_ = static_cast<Addr>(tid_) *
                   (static_cast<Addr>(profile_.ws_shared_lines) * 8 /
                    num_threads_);
  build_template();
  start_iteration();
}

void SyntheticProgram::build_template() {
  // A fixed static-code template: each slot has a stable op class and
  // dependency shape, so the same PC always maps to the same instruction
  // (which is what makes the PTHT meaningful).
  const MixConfig& m = profile_.mix;
  const double total = m.int_alu + m.int_mult + m.fp_alu + m.fp_mult +
                       m.load + m.store + m.branch;
  PTB_ASSERT(total > 0.0, "empty instruction mix");
  template_.reserve(profile_.code_footprint);
  Rng trng(hash_mix(0xc0de, profile_.code_footprint + tid_));
  for (std::uint32_t i = 0; i < profile_.code_footprint; ++i) {
    const double r = trng.next_double() * total;
    OpClass cls;
    double acc = m.int_alu;
    if (r < acc) cls = OpClass::kIntAlu;
    else if (r < (acc += m.int_mult)) cls = OpClass::kIntMult;
    else if (r < (acc += m.fp_alu)) cls = OpClass::kFpAlu;
    else if (r < (acc += m.fp_mult)) cls = OpClass::kFpMult;
    else if (r < (acc += m.load)) cls = OpClass::kLoad;
    else if (r < (acc += m.store)) cls = OpClass::kStore;
    else cls = OpClass::kBranch;
    TemplateOp t{cls, 0, 0, false, false};
    if (trng.next_double() < profile_.dep_prob)
      t.dep1 = static_cast<std::uint8_t>(1 + trng.next_below(4));
    if (trng.next_double() < profile_.dep_prob * 0.5)
      t.dep2 = static_cast<std::uint8_t>(1 + trng.next_below(8));
    // Most branches behave like loop/guard branches: a fixed per-slot
    // direction a history predictor learns perfectly. A `branch_noise`
    // fraction of branch slots are data-dependent (75/25 outcomes) — those
    // supply the realistic residual mispredicts.
    t.taken_bias = trng.next_double() < profile_.branch_taken_rate;
    t.noisy = trng.next_double() < profile_.branch_noise;
    template_.push_back(t);
  }
}

std::uint64_t SyntheticProgram::per_iter_ops(std::uint32_t iter) const {
  const double base = static_cast<double>(profile_.ops_per_iteration) /
                      static_cast<double>(num_threads_);
  // Deterministic per-(thread, iteration) imbalance factor in
  // [1-imbalance, 1+imbalance].
  const std::uint64_t h = hash_mix(hash_mix(tid_ + 131, iter + 17), 0xbeef);
  const double u =
      2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0;
  const double factor = 1.0 + profile_.imbalance * u;
  return std::max<std::uint64_t>(1,
                                 static_cast<std::uint64_t>(base * factor));
}

void SyntheticProgram::start_iteration() {
  ops_left_ = per_iter_ops(iter_);
  if (profile_.cs_per_1k_ops > 0.0 && profile_.num_locks > 0) {
    const double gap = 1000.0 / profile_.cs_per_1k_ops;
    cs_countdown_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(gap * (0.5 + rng_.next_double())));
  } else {
    cs_countdown_ = ops_left_ + 1;  // never triggers
  }
  tracker_.set_state(ExecState::kBusy);
  state_ = State::kCompute;
}

Addr SyntheticProgram::data_address(bool is_store) {
  const bool shared = rng_.next_double() < profile_.shared_frac;
  const std::uint32_t lines =
      shared ? profile_.ws_shared_lines : profile_.ws_private_lines;
  Addr base = shared ? kSharedBase : private_base_;
  if (rng_.next_double() < profile_.stride_frac) {
    // Sequential walk at word granularity: 8 consecutive accesses land in
    // the same line before moving on (realistic spatial locality).
    const Addr word = shared ? stride_shared_++ : stride_priv_++;
    const Addr line = (word / 8) % lines;
    return base + line * 64 + (word % 8) * 8;
  }
  const Addr line = rng_.next_below(lines);
  (void)is_store;
  return base + line * 64 + (rng_.next_below(8) * 8);
}

MicroOp SyntheticProgram::make_compute_op() {
  const TemplateOp& t = template_[template_pos_];
  MicroOp op;
  op.pc = code_base_ + static_cast<Addr>(template_pos_) * 4;
  template_pos_ = (template_pos_ + 1) % template_.size();
  op.cls = t.cls;
  op.dep1 = t.dep1;
  op.dep2 = t.dep2;
  if (op.cls == OpClass::kLoad || op.cls == OpClass::kStore) {
    op.addr = data_address(op.cls == OpClass::kStore);
  } else if (op.cls == OpClass::kBranch) {
    bool taken = t.taken_bias;
    if (t.noisy && rng_.next_double() < 0.25) taken = !taken;
    op.branch_taken = taken;
  }
  return op;
}

void SyntheticProgram::enqueue(MicroOp op) { queue_.push_back(op); }

void SyntheticProgram::begin_lock_acquire() {
  // Pick the lock: hot (contended) or striped by thread.
  if (rng_.next_double() < profile_.hot_lock_frac) {
    current_lock_ = 0;
  } else {
    current_lock_ = tid_ % profile_.num_locks;
  }
  tracker_.set_state(ExecState::kLockAcq);
  MicroOp test;
  test.pc = pc_lock_test();
  test.cls = OpClass::kLoad;
  test.addr = sync_.lock_addr(current_lock_);
  test.blocks_generation = true;
  test.sync = SyncRole::kLockTestLoad;
  test.sync_id = current_lock_;
  enqueue(test);
}

void SyntheticProgram::begin_barrier() {
  tracker_.set_state(ExecState::kBarrier);
  MicroOp arrive;
  arrive.pc = pc_barrier_arrive();
  arrive.cls = OpClass::kAtomicRmw;
  arrive.addr = sync_.barrier_addr(0);
  arrive.blocks_generation = true;
  arrive.sync = SyncRole::kBarrierArrive;
  arrive.sync_id = 0;
  enqueue(arrive);
}

ThreadProgram::FetchStatus SyntheticProgram::next(MicroOp& out) {
  if (pause_left_ > 0) {
    --pause_left_;
    return FetchStatus::kStall;
  }
  if (!queue_.empty()) {
    out = queue_.front();
    queue_.pop_front();
    if (out.blocks_generation) waiting_ = true;
    return FetchStatus::kOp;
  }
  if (waiting_) return FetchStatus::kStall;
  if (state_ == State::kDone) return FetchStatus::kFinished;
  PTB_ASSERT(state_ == State::kCompute, "unexpected generator state");

  // Critical-section body ops.
  if (cs_left_ > 0) {
    --cs_left_;
    if (cs_left_ == 0) {
      // Emit the body op, then queue the release so it follows immediately.
      MicroOp rel;
      rel.pc = pc_lock_release();
      rel.cls = OpClass::kStore;
      rel.addr = sync_.lock_addr(current_lock_);
      rel.blocks_generation = true;  // release visibility
      rel.sync = SyncRole::kLockRelease;
      rel.sync_id = current_lock_;
      enqueue(rel);
      tracker_.set_state(ExecState::kLockRel);
    }
    out = make_compute_op();
    return FetchStatus::kOp;
  }

  if (ops_left_ == 0) {
    // End of iteration: barrier (per-iteration or final).
    ++iter_;
    const bool last_iter = iter_ >= profile_.iterations;
    if (profile_.barrier_per_iter || last_iter) {
      in_final_barrier_ = last_iter;
      begin_barrier();
      out = queue_.front();
      queue_.pop_front();
      if (out.blocks_generation) waiting_ = true;
      return FetchStatus::kOp;
    }
    start_iteration();
    return next(out);
  }

  if (cs_countdown_ == 0) {
    begin_lock_acquire();
    out = queue_.front();
    queue_.pop_front();
    if (out.blocks_generation) waiting_ = true;
    return FetchStatus::kOp;
  }

  --ops_left_;
  if (cs_countdown_ > 0) --cs_countdown_;
  ++compute_emitted_;
  out = make_compute_op();
  return FetchStatus::kOp;
}

void SyntheticProgram::on_value(const MicroOp& op, std::uint64_t value) {
  waiting_ = false;
  switch (op.sync) {
    case SyncRole::kLockTestLoad: {
      MicroOp br;
      br.pc = pc_lock_branch();
      br.cls = OpClass::kBranch;
      br.dep1 = 1;  // depends on the test load
      br.branch_taken = (value != 0);  // loop back while held
      enqueue(br);
      if (value != 0) {
        // Still held: pause, then the next spin iteration.
        pause_left_ = kSpinPause;
        MicroOp test;
        test.pc = pc_lock_test();
        test.cls = OpClass::kLoad;
        test.addr = sync_.lock_addr(current_lock_);
        test.blocks_generation = true;
        test.sync = SyncRole::kLockTestLoad;
        test.sync_id = current_lock_;
        enqueue(test);
      } else {
        MicroOp rmw;
        rmw.pc = pc_lock_rmw();
        rmw.cls = OpClass::kAtomicRmw;
        rmw.addr = sync_.lock_addr(current_lock_);
        rmw.blocks_generation = true;
        rmw.sync = SyncRole::kLockTryAcquire;
        rmw.sync_id = current_lock_;
        enqueue(rmw);
      }
      break;
    }
    case SyncRole::kLockTryAcquire: {
      if (value == 0) {
        // Acquired.
        ++cs_entered_;
        cs_left_ = std::max<std::uint64_t>(1, profile_.cs_len_ops);
        tracker_.set_state(ExecState::kBusy);
        // Schedule the next critical section.
        const double gap = 1000.0 / profile_.cs_per_1k_ops;
        cs_countdown_ = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(gap * (0.5 + rng_.next_double())));
      } else {
        // Lost the race: back to spinning.
        MicroOp test;
        test.pc = pc_lock_test();
        test.cls = OpClass::kLoad;
        test.addr = sync_.lock_addr(current_lock_);
        test.blocks_generation = true;
        test.sync = SyncRole::kLockTestLoad;
        test.sync_id = current_lock_;
        enqueue(test);
      }
      break;
    }
    case SyncRole::kLockRelease:
      tracker_.set_state(ExecState::kBusy);
      break;
    case SyncRole::kBarrierArrive: {
      const bool last = (value & 2) != 0;
      if (last) {
        if (in_final_barrier_) {
          state_ = State::kDone;
          tracker_.set_state(ExecState::kBusy);
        } else {
          start_iteration();
        }
      } else {
        barrier_wait_sense_ = value & 1;
        MicroOp spin;
        spin.pc = pc_barrier_load();
        spin.cls = OpClass::kLoad;
        spin.addr = sync_.barrier_sense_addr(0);
        spin.blocks_generation = true;
        spin.sync = SyncRole::kBarrierSpinLoad;
        spin.sync_id = 0;
        enqueue(spin);
      }
      break;
    }
    case SyncRole::kBarrierSpinLoad: {
      const bool released = (value & 1) != barrier_wait_sense_;
      MicroOp br;
      br.pc = pc_barrier_branch();
      br.cls = OpClass::kBranch;
      br.dep1 = 1;
      br.branch_taken = !released;  // keep spinning while sense unchanged
      enqueue(br);
      if (released) {
        if (in_final_barrier_) {
          state_ = State::kDone;
          tracker_.set_state(ExecState::kBusy);
        } else {
          start_iteration();
        }
      } else {
        pause_left_ = kSpinPause;
        MicroOp spin;
        spin.pc = pc_barrier_load();
        spin.cls = OpClass::kLoad;
        spin.addr = sync_.barrier_sense_addr(0);
        spin.blocks_generation = true;
        spin.sync = SyncRole::kBarrierSpinLoad;
        spin.sync_id = 0;
        enqueue(spin);
      }
      break;
    }
    case SyncRole::kNone:
      break;
  }
}

}  // namespace ptb

// Gshare branch predictor (Table 1: 64 KB, 16-bit history).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace ptb {

class GsharePredictor {
 public:
  explicit GsharePredictor(const CoreConfig& cfg);

  bool predict(Pc pc) const;

  /// Update with the architected outcome and speculatively shift the history
  /// (simple immediate-update model, standard in fast timing simulators).
  void update(Pc pc, bool taken);

  // Statistics.
  mutable std::uint64_t lookups = 0;
  std::uint64_t mispredicts = 0;

 private:
  std::size_t index_of(Pc pc) const {
    return ((pc >> 2) ^ history_) & mask_;
  }

  std::vector<std::uint8_t> counters_;  // 2-bit saturating
  std::size_t mask_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

}  // namespace ptb

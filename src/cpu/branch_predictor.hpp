// Gshare branch predictor (Table 1: 64 KB, 16-bit history).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace ptb {

class GsharePredictor {
 public:
  explicit GsharePredictor(const CoreConfig& cfg);

  bool predict(Pc pc) const;

  /// Update with the architected outcome and speculatively shift the history
  /// (simple immediate-update model, standard in fast timing simulators).
  void update(Pc pc, bool taken);

  // Statistics.
  mutable std::uint64_t lookups = 0;
  std::uint64_t mispredicts = 0;

  // Checkpoint support: counters table + global history + statistics
  // (masks are configuration, rebuilt by the constructor).
  void save_state(ByteWriter& w) const {
    w.u8_vec(counters_);
    w.u64(history_);
    w.u64(lookups);
    w.u64(mispredicts);
  }
  void load_state(ByteReader& r) {
    std::vector<std::uint8_t> c;
    r.u8_vec(c);
    if (c.size() != counters_.size()) {
      r.fail();
      return;
    }
    counters_ = std::move(c);
    history_ = r.u64();
    lookups = r.u64();
    mispredicts = r.u64();
  }

 private:
  std::size_t index_of(Pc pc) const {
    return ((pc >> 2) ^ history_) & mask_;
  }

  std::vector<std::uint8_t> counters_;  // 2-bit saturating
  std::size_t mask_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

}  // namespace ptb

// Interface between the core model and the workload generators.
//
// A ThreadProgram is a lazy, reactive micro-op stream: the core pulls ops at
// fetch; ops whose result the program needs (spin loads, lock attempts,
// barrier arrivals) are marked blocks_generation — the program returns
// kStall until the core reports the value via on_value() when the op's
// memory access completes. Synchronization thereby unfolds at simulated
// speed: who wins a lock is decided by the coherence protocol's timing.
#pragma once

#include <cstdint>

#include "isa/microop.hpp"

namespace ptb {

class ThreadProgram {
 public:
  virtual ~ThreadProgram() = default;

  enum class FetchStatus : std::uint8_t {
    kOp,        // `out` is valid
    kStall,     // waiting on the value of an in-flight blocking op
    kFinished,  // no more ops
  };

  /// Produce the next micro-op, if available.
  virtual FetchStatus next(MicroOp& out) = 0;

  /// Reports the architectural result of a blocking op at its completion:
  /// loaded value for kLoad, old value for kAtomicRmw (see SyncState for
  /// encodings), 0 for stores (release visibility notification).
  virtual void on_value(const MicroOp& op, std::uint64_t value) = 0;

  virtual bool finished() const = 0;
};

}  // namespace ptb

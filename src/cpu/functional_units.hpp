// Functional-unit pools (Table 1: 6 IntAlu, 2 IntMult, 4 FpAlu, 4 FpMult).
// All units are fully pipelined: the pool bounds issues per class per cycle;
// latency determines completion.
#pragma once

#include <array>
#include <cstdint>

#include "common/config.hpp"
#include "isa/microop.hpp"

namespace ptb {

class FunctionalUnits {
 public:
  explicit FunctionalUnits(const CoreConfig& cfg);

  /// Execution latency in cycles for an op class (memory classes return the
  /// address-generation latency; the cache access is timed separately).
  std::uint32_t latency(OpClass c) const {
    return latency_[static_cast<std::size_t>(c)];
  }

  /// Try to claim a unit for this cycle; call begin_cycle() once per cycle.
  bool try_issue(OpClass c);
  void begin_cycle();

  // Introspection for the invariant auditor (src/audit) and tests.
  std::uint32_t limit(OpClass c) const {
    return limit_[static_cast<std::size_t>(c)];
  }
  /// Units of class `c` claimed since the last begin_cycle().
  std::uint32_t used(OpClass c) const {
    return used_[static_cast<std::size_t>(c)];
  }

 private:
  std::array<std::uint32_t, kNumOpClasses> limit_{};
  std::array<std::uint32_t, kNumOpClasses> used_{};
  std::array<std::uint32_t, kNumOpClasses> latency_{};
};

}  // namespace ptb

#include "cpu/functional_units.hpp"

namespace ptb {

FunctionalUnits::FunctionalUnits(const CoreConfig& cfg) {
  auto set = [&](OpClass c, std::uint32_t lim, std::uint32_t lat) {
    limit_[static_cast<std::size_t>(c)] = lim;
    latency_[static_cast<std::size_t>(c)] = lat;
  };
  set(OpClass::kIntAlu, cfg.int_alu, 1);
  set(OpClass::kIntMult, cfg.int_mult, 3);
  set(OpClass::kFpAlu, cfg.fp_alu, 2);
  set(OpClass::kFpMult, cfg.fp_mult, 4);
  // Memory ops consume an L1D port (address generation on an int ALU is
  // folded into the port limit); branches use an int ALU slot.
  set(OpClass::kLoad, cfg.l1d_ports, 1);
  set(OpClass::kStore, cfg.l1d_ports, 1);
  set(OpClass::kAtomicRmw, cfg.l1d_ports, 1);
  set(OpClass::kBranch, cfg.int_alu, 1);
  set(OpClass::kNop, cfg.issue_width, 1);
}

bool FunctionalUnits::try_issue(OpClass c) {
  auto& used = used_[static_cast<std::size_t>(c)];
  if (used >= limit_[static_cast<std::size_t>(c)]) return false;
  ++used;
  return true;
}

void FunctionalUnits::begin_cycle() { used_.fill(0); }

}  // namespace ptb

// Cycle-level out-of-order core model (GEMS/Opal stand-in).
//
// Four-stage abstraction of the paper's 14-stage, 4-wide OoO pipeline:
//   fetch/dispatch -> issue -> execute (FU or memory) -> commit
// with a 128-entry ROB, a 64-entry LSQ occupancy bound, gshare branch
// prediction (mispredicts flush the front end for the pipeline depth), and
// per-cycle power-token accounting (exact for energy results, PTHT-estimated
// for the control mechanisms — Section III.B of the paper).
//
// The core exposes the throttle knob the 2-level controller drives
// (effective fetch width, 0 = fetch-gated) and reports per-tick activity for
// the power model.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "cpu/branch_predictor.hpp"
#include "cpu/functional_units.hpp"
#include "cpu/thread_program.hpp"
#include "isa/microop.hpp"
#include "mem/memory_system.hpp"
#include "power/power_model.hpp"
#include "power/ptht.hpp"
#include "sync/bct_detector.hpp"
#include "sync/sync_state.hpp"

namespace ptb {

class StatsRegistry;

/// One data/instruction access deferred out of the parallel phases of the
/// sharded cycle loop (sim/shard_pool.hpp) and replayed through
/// MemorySystem::access() at the cycle's sequential memory point, in
/// (core, program) order — i.e. in exactly the order the serial loop would
/// have issued it. `seq` is the ROB sequence number for data accesses
/// (unused for I-fetches).
struct DeferredMemReq {
  Addr addr = 0;
  std::uint64_t seq = 0;
  MemAccessType type = MemAccessType::kLoad;
  bool plain_store = false;  // retires into the store buffer at now + 1
};

class Core {
 public:
  Core(CoreId id, const SimConfig& cfg, MemorySystem& mem, SyncState& sync,
       ThreadProgram& program, const BaseEnergyModel& energy);

  /// Advance the core by one (core-clock) cycle at global cycle `now`.
  /// The caller (CMP) handles frequency scaling by skipping ticks.
  /// Equivalent to tick_commit_phase(now) followed by tick_fetch_phase(now)
  /// (plus resolve_deferred(now) when a deferral queue is attached).
  void tick(Cycle now);

  // --- phased tick for the sharded cycle loop (sim/shard_pool.hpp) ---
  // The CMP splits each tick at the phase boundary: the commit phase
  // (completion delivery + in-order retirement) may touch shared sync
  // state through deliver_value(), so cores with a sync op in flight run
  // it sequentially on the main thread; the fetch phase (issue + fetch)
  // touches only core-private state once memory accesses are deferred, so
  // it always runs in the parallel region.

  /// Phase A: completion processing (incl. value delivery) + commit.
  void tick_commit_phase(Cycle now);
  /// Phase B: issue + fetch. With a deferral queue attached (see
  /// set_mem_defer), every memory access is queued instead of performed and
  /// the L1I probe consults only this core's own cache.
  void tick_fetch_phase(Cycle now);

  /// Attaches/detaches the deferral queue phase B fills. Null (the default)
  /// restores the classic immediate-access behavior of tick().
  void set_mem_defer(std::vector<DeferredMemReq>* q) { mem_defer_ = q; }

  /// Sequential memory point: replays this core's deferred accesses through
  /// the memory system in queue order, assigning completion times and
  /// front-end stall windows, and folds the parallel phase's L1I hit count
  /// into the aggregate fetch counter. Clears the queue.
  void resolve_deferred(Cycle now) PTB_REQUIRES(g_sequential_point);

  /// True while a generation-blocking sync micro-op (lock/barrier) is in
  /// flight: its completion will touch shared SyncState, so this core's
  /// commit phase must run at the sequential point.
  bool sync_pending() const { return sync_inflight_ > 0; }

  /// Auditor hook: the deferral queue must be fully drained at the
  /// end-of-cycle audit point.
  bool deferred_drained() const {
    return mem_defer_ == nullptr || mem_defer_->empty();
  }

  bool finished() const { return program_finished_ && rob_count_ == 0; }

  // --- per-tick activity (valid after tick(); reset at each tick) ---
  /// Exact tokens charged this tick: committed ops' base + ROB residency
  /// (the paper accounts consumption at the commit stage, Section III.B).
  double commit_tokens_exact() const { return commit_exact_; }
  /// PTHT-estimated tokens of the ops fetched this tick (the control
  /// signal: "accumulating the power-tokens of each instruction fetched").
  double fetch_tokens_estimated() const { return fetch_est_; }
  double fetch_tokens_exact() const { return fetch_exact_; }
  std::uint32_t rob_occupancy() const { return rob_count_; }
  /// True when the core did nothing this tick (empty ROB, no fetch): the
  /// clock-gating candidate state.
  bool idle() const { return idle_; }

  // --- introspection for the invariant auditor (src/audit) and tests ---
  std::uint32_t lsq_occupancy() const { return lsq_count_; }
  /// Oldest in-flight sequence number; advances only at commit, so it
  /// always equals `committed` (in-order retirement invariant).
  std::uint64_t head_seq() const { return head_seq_; }
  const FunctionalUnits& fus() const { return fus_; }

  // --- throttle knobs (microarchitectural power-saving techniques) ---
  void set_fetch_limit(std::uint32_t w) { fetch_limit_ = w; }
  std::uint32_t fetch_limit() const { return fetch_limit_; }

  /// Enables/disables accumulation of the PTHT fetch estimate (the control
  /// signal). The simulator turns it off when nothing consumes the estimate
  /// (no PTB, no budget enforcer, no tracer/auditor), which removes the
  /// per-op PTHT lookup from the fetch path. Commit-side PTHT updates
  /// continue regardless, so the table stays warm for introspection.
  void set_estimate_fetch(bool on) { estimate_fetch_ = on; }

  /// One-line diagnostic of the pipeline state (debugging aid).
  std::string debug_string(Cycle now) const;

  CoreId id() const { return id_; }
  Ptht& ptht() { return ptht_; }
  const Ptht& ptht() const { return ptht_; }
  GsharePredictor& predictor() { return predictor_; }
  BctDetector& bct() { return bct_; }

  // --- statistics ---
  std::uint64_t committed = 0;
  std::uint64_t fetched = 0;
  std::uint64_t flushes = 0;
  std::uint64_t ticks = 0;
  // Fetch-stall attribution (ticks where no op was dispatched, by cause).
  std::uint64_t stall_branch = 0;   // waiting on mispredict resolution
  std::uint64_t stall_front = 0;    // fetch_blocked_until_ (I-miss, refill)
  std::uint64_t stall_program = 0;  // generator kStall (blocking op in flight)
  std::uint64_t stall_rob = 0;      // ROB full
  std::uint64_t stall_lsq = 0;      // LSQ full
  Cycle finish_cycle = 0;  // set by the CMP when the program completes

  /// Registers the pipeline counters, occupancy gauges and the PTHT's
  /// counters under `prefix` (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support (sim/checkpoint): pipeline, predictor, PTHT and BCT
  // state. Per-tick scratch, the base-cost memo and the FU pools (reset at
  // the start of every tick) are rebuilt, not serialized. Must only be
  // called at the cycle boundary (deferral queue drained).
  void save_state(ByteWriter& w) const;
  void load_state(ByteReader& r);

 private:
  struct RobEntry {
    MicroOp op;
    Cycle dispatched_at = 0;
    Cycle complete_at = kNeverCycle;
    bool issued = false;
    bool completed = false;
  };

  /// ROB slot for a sequence number. rob_entries is a power of two in every
  /// shipped config, making the wraparound a single AND; the hardware
  /// divide in the generic path dominated the issue-scan profile.
  std::size_t rob_index(std::uint64_t seq) const {
    return rob_mask_ != 0 ? (seq & rob_mask_) : (seq % rob_.size());
  }
  RobEntry& entry(std::uint64_t seq) { return rob_[rob_index(seq)]; }

  // Memo of the energy model's per-static-instruction costs. exact_base is
  // a 64-bit mix + multiply and grouped_of a centroid binary search, both
  // recomputed per fetch and per commit of the same static PCs; a
  // direct-mapped cache makes the repeat cost two loads. Sized so the
  // default workload footprint (1024 template slots at stride 4 plus the
  // sync handlers at +0x8000) maps collision-free; larger footprints only
  // cost recomputes, never correctness (tag-checked on pc and, defensively,
  // cls). Only touched entries occupy data cache.
  struct BaseCost {
    Pc tag = 0;
    std::uint8_t cls_tag = 0;  // OpClass value + 1; 0 = empty
    double exact = 0.0;
    double grouped = 0.0;
  };
  static constexpr std::size_t kBaseCostEntries = 16384;

  const BaseCost& base_cost(OpClass cls, Pc pc) {
    BaseCost& e = base_costs_[(pc >> 2) & (kBaseCostEntries - 1)];
    const std::uint8_t ct = static_cast<std::uint8_t>(cls) + 1;
    if (e.tag != pc || e.cls_tag != ct) {
      e.tag = pc;
      e.cls_tag = ct;
      e.exact = energy_.exact_base(cls, pc);
      e.grouped = energy_.grouped_of(e.exact);
    }
    return e;
  }

  void process_completions(Cycle now);
  void do_commit(Cycle now);
  void do_issue(Cycle now);
  void do_fetch(Cycle now);
  void deliver_value(const MicroOp& op);
  bool deps_ready(std::uint64_t seq, const MicroOp& op) const;

  CoreId id_;
  const SimConfig& cfg_;
  MemorySystem& mem_;
  SyncState& sync_;
  ThreadProgram& program_;
  const BaseEnergyModel& energy_;

  GsharePredictor predictor_;
  FunctionalUnits fus_;
  Ptht ptht_;
  BctDetector bct_;

  std::vector<RobEntry> rob_;
  std::uint64_t rob_mask_ = 0;   // size-1 when size is a power of two
  std::uint64_t head_seq_ = 0;   // oldest in-flight op
  std::uint32_t rob_count_ = 0;
  std::uint32_t lsq_count_ = 0;  // memory ops resident in the ROB

  using CompletionEvent = std::pair<Cycle, std::uint64_t>;  // (cycle, seq)
  std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                      std::greater<>>
      completions_;

  // Fetch state.
  bool program_finished_ = false;
  bool has_pending_op_ = false;  // op pulled from the program, not dispatched
  MicroOp pending_op_{};
  Cycle fetch_blocked_until_ = 0;       // front-end stall (I-miss / refill)
  bool waiting_branch_resolve_ = false; // mispredict in flight
  std::uint64_t mispredict_seq_ = 0;    // seq of the mispredicted branch
  std::uint32_t fetch_limit_;

  // Per-tick power accounting.
  double fetch_exact_ = 0.0;
  double fetch_est_ = 0.0;
  double commit_exact_ = 0.0;
  bool idle_ = false;
  bool estimate_fetch_ = true;
  std::uint32_t tick_rob_before_ = 0;  // ROB occupancy entering the tick

  // Sharded-loop deferral state (null/zero in the classic immediate mode).
  std::vector<DeferredMemReq>* mem_defer_ = nullptr;
  std::uint64_t deferred_ifetch_hits_ = 0;  // probe hits awaiting the merge
  std::uint32_t sync_inflight_ = 0;  // in-flight generation-blocking sync ops

  std::array<BaseCost, kBaseCostEntries> base_costs_{};

  // Issue scan cursor: the oldest sequence number that may be unissued.
  std::uint64_t issue_cursor_ = 0;
};

}  // namespace ptb

#include "cpu/core.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "stats/stats.hpp"

namespace ptb {

namespace {
// Expected ROB residency added to cold PTHT estimates (cycles).
constexpr double kColdResidencyGuess = 16.0;
// Issue-queue scan window past the oldest unissued op.
constexpr std::uint64_t kIssueScanWindow = 32;
}  // namespace

Core::Core(CoreId id, const SimConfig& cfg, MemorySystem& mem,
           SyncState& sync, ThreadProgram& program,
           const BaseEnergyModel& energy)
    : id_(id), cfg_(cfg), mem_(mem), sync_(sync), program_(program),
      energy_(energy), predictor_(cfg.core), fus_(cfg.core),
      ptht_(cfg.power.ptht_entries), rob_(cfg.core.rob_entries),
      rob_mask_((cfg.core.rob_entries & (cfg.core.rob_entries - 1)) == 0
                    ? cfg.core.rob_entries - 1
                    : 0),
      fetch_limit_(cfg.core.fetch_width) {}

bool Core::deps_ready(std::uint64_t seq, const MicroOp& op) const {
  // seq < head_seq_ + dist <=> seq - dist < head_seq_: the producer is
  // already committed (and the test also guards the unsigned underflow).
  const std::uint8_t d1 = op.dep1;
  if (d1 != 0 && seq >= head_seq_ + d1 &&
      !rob_[rob_index(seq - d1)].completed) {
    return false;
  }
  const std::uint8_t d2 = op.dep2;
  if (d2 != 0 && seq >= head_seq_ + d2 &&
      !rob_[rob_index(seq - d2)].completed) {
    return false;
  }
  return true;
}

void Core::deliver_value(const MicroOp& op) {
  std::uint64_t value = 0;
  // Guarded: SyncState is shared, but a core with a sync op in flight is
  // always gated in the sequential pre-pass (sync_pending() check in
  // CmpSimulator::run), so the sync arms below never execute on a shard
  // worker; the kNone arm is the only parallel-phase path through here.
  // ptb-lint: allow-begin(phase-purity)
  switch (op.sync) {
    case SyncRole::kLockTestLoad:
      value = sync_.read_lock(op.sync_id);
      break;
    case SyncRole::kLockTryAcquire:
      value = sync_.try_acquire(op.sync_id, id_);
      break;
    case SyncRole::kLockRelease:
      sync_.release(op.sync_id, id_);
      break;
    case SyncRole::kBarrierArrive:
      value = sync_.arrive(op.sync_id, id_);
      break;
    case SyncRole::kBarrierSpinLoad:
      value = sync_.read_sense(op.sync_id);
      break;
    case SyncRole::kNone:
      break;  // plain blocking load: value is irrelevant to the generator
  }
  // ptb-lint: allow-end
  program_.on_value(op, value);
}

void Core::process_completions(Cycle now) {
  while (!completions_.empty() && completions_.top().first <= now) {
    const std::uint64_t seq = completions_.top().second;
    completions_.pop();
    RobEntry& e = entry(seq);
    e.completed = true;
    if (e.op.blocks_generation) {
      if (e.op.sync != SyncRole::kNone) --sync_inflight_;
      deliver_value(e.op);
    }
    if (waiting_branch_resolve_ && seq == mispredict_seq_) {
      // The front end refills after resolution (14-stage pipeline).
      waiting_branch_resolve_ = false;
      fetch_blocked_until_ =
          std::max(fetch_blocked_until_,
                   e.complete_at + cfg_.core.pipeline_stages);
    }
  }
}

void Core::do_commit(Cycle now) {
  for (std::uint32_t n = 0; n < cfg_.core.commit_width && rob_count_ > 0;
       ++n) {
    RobEntry& e = entry(head_seq_);
    if (!e.completed || e.complete_at > now) break;
    // Power-token accounting at commit: base cost + ROB residency
    // (Section III.B). The PTHT stores the last execution's cost.
    const double residency =
        static_cast<double>(now - e.dispatched_at) *
        cfg_.power.residency_token;
    const BaseCost& bc = base_cost(e.op.cls, e.op.pc);
    ptht_.update(e.op.pc, bc.grouped + residency);
    commit_exact_ += bc.exact + residency;
    bct_.on_commit(e.op);
    if (e.op.is_memory()) --lsq_count_;
    ++head_seq_;
    --rob_count_;
    ++committed;
  }
}

void Core::do_issue(Cycle now) {
  fus_.begin_cycle();
  // Advance the cursor past committed/issued prefix.
  if (issue_cursor_ < head_seq_) issue_cursor_ = head_seq_;
  while (issue_cursor_ < head_seq_ + rob_count_ &&
         entry(issue_cursor_).issued) {
    ++issue_cursor_;
  }
  std::uint32_t issued = 0;
  const std::uint32_t issue_width = cfg_.core.issue_width;
  const std::uint64_t tail = head_seq_ + rob_count_;
  const std::uint64_t scan_end =
      std::min(tail, issue_cursor_ + kIssueScanWindow);
  for (std::uint64_t seq = issue_cursor_;
       seq < scan_end && issued < issue_width; ++seq) {
    RobEntry& e = entry(seq);
    if (e.issued) continue;
    if (!deps_ready(seq, e.op)) continue;
    if (!fus_.try_issue(e.op.cls)) continue;

    Cycle complete_at;
    if (e.op.is_memory()) {
      MemAccessType type;
      switch (e.op.cls) {
        case OpClass::kLoad: type = MemAccessType::kLoad; break;
        case OpClass::kStore: type = MemAccessType::kStore; break;
        default: type = MemAccessType::kAtomicRmw; break;
      }
      // Plain stores retire into the store buffer; the write itself
      // proceeds in the background (its protocol work is already timed).
      const bool plain_store =
          (e.op.cls == OpClass::kStore && e.op.sync == SyncRole::kNone);
      if (mem_defer_ != nullptr) {
        // Parallel phase: park the access. The sequential memory point
        // (resolve_deferred) replays the queue in this order and assigns
        // complete_at; nothing reads complete_at before then (deps_ready
        // and commit look at `completed`, set strictly later).
        mem_defer_->push_back({e.op.addr, seq, type, plain_store});
        e.issued = true;
        e.complete_at = kNeverCycle;
        ++issued;
        continue;
      }
      // +1 cycle of address generation before the cache access. Guarded:
      // in the sharded cycle loop mem_defer_ is always set (the branch
      // above parks the access), so this immediate path only runs from the
      // serial Core::tick API — never on a shard worker.
      // ptb-lint: allow(phase-purity)
      const MemAccessResult r = mem_.access(id_, type, e.op.addr, now + 1);
      complete_at = plain_store ? now + 1 : r.done;
    } else {
      complete_at = now + fus_.latency(e.op.cls);
    }
    e.issued = true;
    e.complete_at = complete_at;
    completions_.emplace(complete_at, seq);
    ++issued;
  }
}

void Core::do_fetch(Cycle now) {
  if (program_finished_ && !has_pending_op_) return;
  if (waiting_branch_resolve_) {
    ++stall_branch;
    return;
  }
  if (now < fetch_blocked_until_) {
    ++stall_front;
    return;
  }

  const std::uint32_t width =
      std::min(fetch_limit_, cfg_.core.fetch_width);
  bool icache_checked = false;
  std::uint32_t dispatched = 0;
  for (std::uint32_t n = 0; n < width; ++n) {
    if (rob_count_ >= rob_.size()) {  // ROB full
      if (dispatched == 0) ++stall_rob;
      break;
    }

    MicroOp op;
    if (has_pending_op_) {
      op = pending_op_;
      has_pending_op_ = false;
    } else {
      MicroOp fresh;
      const auto st = program_.next(fresh);
      if (st == ThreadProgram::FetchStatus::kFinished) {
        program_finished_ = true;
        break;
      }
      if (st == ThreadProgram::FetchStatus::kStall) {
        if (dispatched == 0) ++stall_program;
        break;
      }
      op = fresh;
    }

    // LSQ occupancy bound.
    if (op.is_memory() && lsq_count_ >= cfg_.core.lsq_entries) {
      pending_op_ = op;
      has_pending_op_ = true;
      if (dispatched == 0) ++stall_lsq;
      break;
    }

    // One L1I probe per fetch group; a miss stalls the front end until the
    // fill returns.
    if (!icache_checked) {
      icache_checked = true;
      if (mem_defer_ != nullptr) {
        // Parallel phase: probe only this core's own L1I (shard-safe —
        // no other core writes it mid-phase); a miss is parked and timed
        // at the sequential memory point, which also sets
        // fetch_blocked_until_.
        // ptb-lint: allow(phase-purity)
        if (!mem_.probe_ifetch(id_, op.pc)) {
          pending_op_ = op;
          has_pending_op_ = true;
          mem_defer_->push_back({op.pc, 0, MemAccessType::kIFetch, false});
          break;
        }
        ++deferred_ifetch_hits_;
      } else {
        // Guarded like the do_issue immediate path: mem_defer_ is null
        // only under the serial Core::tick API.
        // ptb-lint: allow-begin(phase-purity)
        const MemAccessResult r =
            mem_.access(id_, MemAccessType::kIFetch, op.pc, now);
        // ptb-lint: allow-end
        if (!r.l1_hit) {
          pending_op_ = op;
          has_pending_op_ = true;
          fetch_blocked_until_ = r.done;
          break;
        }
      }
    }

    // Dispatch.
    const std::uint64_t seq = head_seq_ + rob_count_;
    RobEntry& e = entry(seq);
    e.op = op;
    e.dispatched_at = now;
    e.complete_at = kNeverCycle;
    e.issued = false;
    e.completed = false;
    ++rob_count_;
    if (op.is_memory()) ++lsq_count_;
    ++fetched;
    ++dispatched;
    // A generation-blocking sync op's completion will touch shared
    // SyncState; flag it so the sharded loop runs this core's commit phase
    // at the sequential point until it delivers.
    if (op.blocks_generation && op.sync != SyncRole::kNone) ++sync_inflight_;

    const BaseCost& bc = base_cost(op.cls, op.pc);
    fetch_exact_ += bc.exact;
    if (estimate_fetch_) {
      // Lazy cold default: the grouped cost is only consulted on a PTHT
      // miss, so the warm path is a single inline-cache probe.
      double est;
      fetch_est_ += ptht_.lookup_hit(op.pc, est)
                        ? est
                        : bc.grouped + kColdResidencyGuess;
    }

    if (op.is_branch()) {
      const bool predicted = predictor_.predict(op.pc);
      predictor_.update(op.pc, op.branch_taken);
      if (predicted != op.branch_taken) {
        ++flushes;
        waiting_branch_resolve_ = true;
        mispredict_seq_ = seq;
        break;  // no wrong-path fetch; the bubble lasts until resolve+refill
      }
    }
  }
}

std::string Core::debug_string(Cycle now) const {
  char buf[256];
  const RobEntry* head = rob_count_ ? &rob_[rob_index(head_seq_)] : nullptr;
  std::snprintf(
      buf, sizeof(buf),
      "core%u rob=%u lsq=%u progfin=%d pend=%d fblock=%llu wbr=%d "
      "head={cls=%d issued=%d done=%d at=%llu} now=%llu",
      id_, rob_count_, lsq_count_, program_finished_ ? 1 : 0,
      has_pending_op_ ? 1 : 0,
      static_cast<unsigned long long>(fetch_blocked_until_),
      waiting_branch_resolve_ ? 1 : 0, head ? static_cast<int>(head->op.cls) : -1,
      head ? head->issued : 0, head ? head->completed : 0,
      head ? static_cast<unsigned long long>(head->complete_at) : 0,
      static_cast<unsigned long long>(now));
  return buf;
}

void Core::register_stats(StatsRegistry& reg,
                          const std::string& prefix) const {
  reg.counter(prefix + ".committed", "micro-ops committed", &committed);
  reg.counter(prefix + ".fetched", "micro-ops fetched", &fetched);
  reg.counter(prefix + ".flushes", "pipeline flushes (mispredicts)",
              &flushes);
  reg.counter(prefix + ".ticks", "core-clock cycles executed", &ticks);
  reg.counter(prefix + ".stall.branch",
              "fetch ticks lost to mispredict resolution", &stall_branch);
  reg.counter(prefix + ".stall.front", "fetch ticks lost to I-miss/refill",
              &stall_front);
  reg.counter(prefix + ".stall.program", "fetch ticks lost to blocking ops",
              &stall_program);
  reg.counter(prefix + ".stall.rob", "fetch ticks lost to a full ROB",
              &stall_rob);
  reg.counter(prefix + ".stall.lsq", "fetch ticks lost to a full LSQ",
              &stall_lsq);
  reg.gauge_fn(prefix + ".rob.occupancy", "instructions resident in the ROB",
               [this] { return static_cast<double>(rob_count_); }, 0);
  reg.gauge_fn(prefix + ".lsq.occupancy", "memory ops resident in the ROB",
               [this] { return static_cast<double>(lsq_count_); }, 0);
  ptht_.register_stats(reg, prefix + ".ptht");
}

void Core::tick_commit_phase(Cycle now) {
  ++ticks;
  fetch_exact_ = 0.0;
  fetch_est_ = 0.0;
  commit_exact_ = 0.0;
  tick_rob_before_ = rob_count_;

  process_completions(now);
  do_commit(now);
}

void Core::tick_fetch_phase(Cycle now) {
  do_issue(now);
  do_fetch(now);

  idle_ = (tick_rob_before_ == 0 && rob_count_ == 0);
}

void Core::tick(Cycle now) {
  tick_commit_phase(now);
  tick_fetch_phase(now);
}

void Core::resolve_deferred(Cycle now) {
  if (mem_defer_ == nullptr) return;
  if (deferred_ifetch_hits_ != 0) {
    // Hits probed in the parallel phase skipped access(); fold them into
    // the aggregate fetch counter it would have bumped.
    mem_.ifetches += deferred_ifetch_hits_;
    deferred_ifetch_hits_ = 0;
  }
  for (const DeferredMemReq& req : *mem_defer_) {
    if (req.type == MemAccessType::kIFetch) {
      // The probe missed this core's L1I and no other core can fill it, so
      // the replay takes the same miss path the serial loop would have.
      const MemAccessResult r =
          mem_.access(id_, MemAccessType::kIFetch, req.addr, now);
      fetch_blocked_until_ = r.done;
    } else {
      // +1 cycle of address generation, as in the immediate path.
      const MemAccessResult r = mem_.access(id_, req.type, req.addr, now + 1);
      const Cycle complete_at = req.plain_store ? now + 1 : r.done;
      entry(req.seq).complete_at = complete_at;
      completions_.emplace(complete_at, req.seq);
    }
  }
  mem_defer_->clear();
}

void Core::save_state(ByteWriter& w) const {
  predictor_.save_state(w);
  ptht_.save_state(w);
  bct_.save_state(w);
  // In-flight ROB window: sequence numbers [head_seq_, head_seq_+rob_count_).
  w.u64(head_seq_);
  w.u32(rob_count_);
  w.u32(lsq_count_);
  for (std::uint64_t s = head_seq_; s < head_seq_ + rob_count_; ++s) {
    const RobEntry& e = rob_[rob_index(s)];
    save_microop(w, e.op);
    w.u64(e.dispatched_at);
    w.u64(e.complete_at);
    w.boolean(e.issued);
    w.boolean(e.completed);
  }
  // Completion events, drained from a copy in heap order: pop order is a
  // deterministic function of the (cycle, seq) keys, which are unique.
  {
    auto copy = completions_;
    w.u64(copy.size());
    while (!copy.empty()) {
      w.u64(copy.top().first);
      w.u64(copy.top().second);
      copy.pop();
    }
  }
  w.boolean(program_finished_);
  w.boolean(has_pending_op_);
  save_microop(w, pending_op_);
  w.u64(fetch_blocked_until_);
  w.boolean(waiting_branch_resolve_);
  w.u64(mispredict_seq_);
  w.u32(fetch_limit_);
  w.u64(issue_cursor_);
  w.u32(sync_inflight_);
  w.u64(committed);
  w.u64(fetched);
  w.u64(flushes);
  w.u64(ticks);
  w.u64(stall_branch);
  w.u64(stall_front);
  w.u64(stall_program);
  w.u64(stall_rob);
  w.u64(stall_lsq);
  w.u64(finish_cycle);
}

void Core::load_state(ByteReader& r) {
  predictor_.load_state(r);
  ptht_.load_state(r);
  bct_.load_state(r);
  head_seq_ = r.u64();
  const std::uint32_t nrob = r.u32();
  const std::uint32_t nlsq = r.u32();
  if (!r.ok() || nrob > rob_.size() || nlsq > nrob) {
    r.fail();
    return;
  }
  for (RobEntry& e : rob_) e = RobEntry{};
  rob_count_ = nrob;
  lsq_count_ = nlsq;
  for (std::uint64_t s = head_seq_; s < head_seq_ + rob_count_; ++s) {
    RobEntry& e = rob_[rob_index(s)];
    if (!load_microop(r, e.op)) return;
    e.dispatched_at = r.u64();
    e.complete_at = r.u64();
    e.issued = r.boolean();
    e.completed = r.boolean();
  }
  completions_ = decltype(completions_)();
  const std::uint64_t nc = r.u64();
  if (nc > r.remaining() / 16) {
    r.fail();
    return;
  }
  for (std::uint64_t i = 0; i < nc; ++i) {
    const Cycle at = r.u64();
    const std::uint64_t seq = r.u64();
    completions_.emplace(at, seq);
  }
  program_finished_ = r.boolean();
  has_pending_op_ = r.boolean();
  if (!load_microop(r, pending_op_)) return;
  fetch_blocked_until_ = r.u64();
  waiting_branch_resolve_ = r.boolean();
  mispredict_seq_ = r.u64();
  fetch_limit_ = r.u32();
  issue_cursor_ = r.u64();
  sync_inflight_ = r.u32();
  committed = r.u64();
  fetched = r.u64();
  flushes = r.u64();
  ticks = r.u64();
  stall_branch = r.u64();
  stall_front = r.u64();
  stall_program = r.u64();
  stall_rob = r.u64();
  stall_lsq = r.u64();
  finish_cycle = r.u64();
}

}  // namespace ptb

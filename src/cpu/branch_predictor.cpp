#include "cpu/branch_predictor.hpp"

#include <bit>

#include "common/assert.hpp"

namespace ptb {

GsharePredictor::GsharePredictor(const CoreConfig& cfg) {
  // 64 KB of 2-bit counters ~= 4 counters per byte; we store one per byte
  // for simplicity but size the *index space* as the paper's table.
  const std::uint32_t entries = cfg.bp_table_bytes * 4;
  PTB_ASSERT(std::has_single_bit(entries), "predictor entries power of 2");
  counters_.assign(entries, 1);  // weakly not-taken
  mask_ = entries - 1;
  history_mask_ = (1ull << cfg.bp_history_bits) - 1;
}

bool GsharePredictor::predict(Pc pc) const {
  ++lookups;
  return counters_[index_of(pc)] >= 2;
}

void GsharePredictor::update(Pc pc, bool taken) {
  std::uint8_t& ctr = counters_[index_of(pc)];
  const bool predicted = ctr >= 2;
  if (predicted != taken) ++mispredicts;
  if (taken) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

}  // namespace ptb

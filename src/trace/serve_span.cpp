#include "trace/serve_span.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "common/bytes.hpp"

namespace ptb {

namespace {

// 8-byte magic + version, the trace-frame idiom (trace/trace.cpp).
constexpr char kMagic[8] = {'P', 'T', 'B', 'S', 'P', 'A', 'N', 'L'};

// Serialized floor per span (fixed fields + two empty strings): used to
// bound the span count against the remaining bytes before reserving.
constexpr std::size_t kMinSpanBytes = 8 + 4 + 4 + 8 + 8 + 4 + 4;

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Microseconds as a decimal literal (Perfetto `ts`/`dur` unit), printed
/// with a pinned format so the export is locale-independent.
std::string usec(double ms) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", ms * 1000.0);
  return buf;
}

}  // namespace

std::string ServeSpanLog::serialize() const {
  ByteWriter w;
  w.raw(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);
  w.u64(emitted);
  w.u64(dropped);
  w.u64(spans.size());
  for (const ServeSpan& s : spans) {
    w.u64(s.trace_id);
    w.u32(s.span_id);
    w.u32(s.parent_id);
    w.f64(s.start_ms);
    w.f64(s.end_ms);
    w.str(s.name);
    w.str(s.note);
  }
  return w.take();
}

bool ServeSpanLog::deserialize(std::string_view bytes, ServeSpanLog& out) {
  ByteReader r(bytes);
  const std::string_view magic = r.raw(sizeof(kMagic));
  if (!r.ok() || magic != std::string_view(kMagic, sizeof(kMagic))) {
    return false;
  }
  if (r.u32() != kFormatVersion) return false;
  ServeSpanLog log;
  log.emitted = r.u64();
  log.dropped = r.u64();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > r.remaining() / kMinSpanBytes) return false;
  log.spans.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ServeSpan s;
    s.trace_id = r.u64();
    s.span_id = r.u32();
    s.parent_id = r.u32();
    s.start_ms = r.f64();
    s.end_ms = r.f64();
    s.name = r.str();
    s.note = r.str();
    if (!r.ok()) return false;
    log.spans.push_back(std::move(s));
  }
  if (!r.ok() || !r.empty()) return false;  // trailing bytes: reject
  out = std::move(log);
  return true;
}

bool ServeSpanLog::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string bytes = serialize();
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = n == bytes.size() && std::fclose(f) == 0;
  if (n != bytes.size()) std::fclose(f);
  return ok;
}

bool ServeSpanLog::load(const std::string& path, ServeSpanLog& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string bytes;
  char chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(f);
  return deserialize(bytes, out);
}

std::string serve_spans_chrome_json(const ServeSpanLog& log) {
  // One Perfetto thread track per trace id, in first-seen (completion)
  // order, so concurrent requests render side by side. The track label
  // carries the root span's note (method/route/status) when present.
  std::map<std::uint64_t, std::uint32_t> tid_of;
  std::map<std::uint64_t, std::string> label_of;
  for (const ServeSpan& s : log.spans) {
    if (tid_of.find(s.trace_id) == tid_of.end()) {
      tid_of[s.trace_id] = static_cast<std::uint32_t>(tid_of.size()) + 1;
    }
    if (s.parent_id == 0 && !s.note.empty()) label_of[s.trace_id] = s.note;
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"ptb-serve (ts = host ms)\"}}";
  for (const auto& [trace_id, tid] : tid_of) {
    std::string label = "trace " + hex16(trace_id);
    const auto l = label_of.find(trace_id);
    if (l != label_of.end()) label += " " + l->second;
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << tid << ",\"args\":{\"name\":\"" << json_escape(label) << "\"}}";
  }
  for (const ServeSpan& s : log.spans) {
    out << ",\n{\"name\":\"" << json_escape(s.name)
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << tid_of[s.trace_id]
        << ",\"ts\":" << usec(s.start_ms)
        << ",\"dur\":" << usec(s.end_ms - s.start_ms)
        << ",\"args\":{\"trace\":\"" << hex16(s.trace_id)
        << "\",\"span\":" << s.span_id << ",\"parent\":" << s.parent_id;
    if (!s.note.empty()) out << ",\"note\":\"" << json_escape(s.note) << "\"";
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace ptb

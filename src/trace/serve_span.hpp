// Serve-plane span log: the request-scoped tracing record of the ptb-serve
// daemon (src/serve/span.hpp records into it; `ptb-trace serve` renders it).
//
// A span is one timed stage of one HTTP request — parse, queue_wait,
// admission_wait, cache_probe, warm_restore, simulate, serialize,
// cache_publish — hung under a per-request root span ("request") by parent
// id. Spans share the trace id minted at HTTP ingress, so a whole request
// reads as a single tree even though its stages execute on transport and
// simulation-worker threads alike.
//
// This lives in the trace library (not src/serve) deliberately: the log is
// a pure data model with the trace subsystem's byte-stable little-endian
// serialization and corrupt-rejecting deserialization (common/bytes.hpp
// frame idiom — magic, version, bounds-checked lengths, no trailing
// bytes), and the `ptb-trace` CLI must be able to read it without linking
// the simulator or the HTTP stack.
//
// Timestamps are serve/http.cpp now_ms() milliseconds — monotonic host
// time, the service plane's single sanctioned wall-clock site. Spans
// observe requests only; no simulation result ever flows through them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptb {

/// One completed stage of one request. parent_id 0 marks a root span.
struct ServeSpan {
  std::uint64_t trace_id = 0;  // minted per request at HTTP ingress
  std::uint32_t span_id = 0;   // unique within one recorder's lifetime
  std::uint32_t parent_id = 0;
  double start_ms = 0.0;  // now_ms() timebase (monotonic host ms)
  double end_ms = 0.0;
  std::string name;  // stage: "request", "parse", "simulate", ...
  std::string note;  // detail: "hit", "fft", "POST /v1/run -> 200", ...
};

/// A bounded recorder's snapshot: the retained spans (completion order —
/// reconstruct trees via parent_id, not position) plus drop accounting.
struct ServeSpanLog {
  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint64_t emitted = 0;  // spans ever emitted (>= spans.size())
  std::uint64_t dropped = 0;  // oldest spans overwritten by the ring
  std::vector<ServeSpan> spans;

  /// Byte-stable serialization: equal logical state -> equal bytes.
  std::string serialize() const;
  /// Strict inverse: wrong magic/version, truncated input, implausible
  /// lengths or trailing bytes all reject (false, `out` untouched).
  static bool deserialize(std::string_view bytes, ServeSpanLog& out);

  bool save(const std::string& path) const;
  static bool load(const std::string& path, ServeSpanLog& out);
};

/// Chrome trace-event / Perfetto JSON: one process, one thread track per
/// trace id (first-seen order), every span a complete "X" event with
/// ts/dur in microseconds (now_ms x 1000). Load the output in
/// https://ui.perfetto.dev to see each request as a tree of stage slices.
std::string serve_spans_chrome_json(const ServeSpanLog& log);

}  // namespace ptb

#include "trace/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/table.hpp"
#include "sync/spin_tracker.hpp"

namespace ptb {

namespace {

const std::vector<TraceEvent>& log_of(const EventTrace& t,
                                      TraceCategory c) {
  return t.logs[static_cast<std::size_t>(c)].events;
}

// Builds "c<n>" without the `const char* + std::string&&` concatenation
// that GCC 12's -Wrestrict mis-analyzes under -O3 (false positive).
std::string core_label(std::uint32_t c) {
  std::string s("c");
  s += std::to_string(c);
  return s;
}

const char* exec_state_label(std::uint64_t s) {
  switch (static_cast<ExecState>(s)) {
    case ExecState::kLockAcq: return "lock-acq";
    case ExecState::kLockRel: return "lock-rel";
    case ExecState::kBarrier: return "barrier";
    case ExecState::kBusy: return "busy";
    default: return "?";
  }
}

}  // namespace

TokenFlowMatrix token_flow_matrix(const EventTrace& t) {
  TokenFlowMatrix m;
  m.num_cores = t.num_cores;
  m.flow.assign(static_cast<std::size_t>(t.num_cores) * t.num_cores, 0.0);
  m.evaporated_by_donor.assign(t.num_cores, 0.0);

  // Donations grouped by (pool tag, send cycle): a balancer pools
  // everything donated on one cycle and lands it wire_latency cycles
  // later, so the donor mix of any grant is exactly that send cycle's
  // donation vector (of the same pool; clusters never mix).
  struct DonateGroup {
    double total = 0.0;
    std::vector<std::pair<std::uint32_t, double>> donors;
  };
  std::map<std::uint64_t, DonateGroup> by_cycle;
  for (const TraceEvent& e : log_of(t, TraceCategory::kToken)) {
    switch (e.type) {
      case TraceEventType::kDonate: {
        DonateGroup& g = by_cycle[(e.arg << 48) | e.cycle];
        g.total += e.value;
        g.donors.emplace_back(e.core, e.value);
        m.total_donated += e.value;
        break;
      }
      case TraceEventType::kGrant:
      case TraceEventType::kEvaporate: {
        const bool grant = e.type == TraceEventType::kGrant;
        (grant ? m.total_granted : m.total_evaporated) += e.value;
        const auto it = by_cycle.find(e.arg);  // donate cycle | tag << 48
        if (it == by_cycle.end() || it->second.total <= 0.0) {
          m.unattributed += e.value;
          break;
        }
        for (const auto& [donor, amount] : it->second.donors) {
          const double share = e.value * (amount / it->second.total);
          if (donor >= t.num_cores) {
            m.unattributed += share;
          } else if (grant) {
            m.flow[donor * t.num_cores + e.core] += share;
          } else {
            m.evaporated_by_donor[donor] += share;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return m;
}

DvfsResidency dvfs_residency(const EventTrace& t) {
  DvfsResidency r;
  r.mode_cycles.assign(t.num_cores, {});
  r.stall_cycles.assign(t.num_cores, 0);
  // Every core starts in mode 0 at cycle 0.
  std::vector<std::uint32_t> mode(t.num_cores, 0);
  std::vector<Cycle> since(t.num_cores, 0);
  for (const TraceEvent& e : log_of(t, TraceCategory::kDvfs)) {
    if (e.type != TraceEventType::kDvfsTransition || e.core >= t.num_cores)
      continue;
    ++r.transitions;
    const auto to = static_cast<std::uint32_t>(e.arg & 0xff);
    if (to >= 5) continue;  // defensive: unknown mode table
    r.mode_cycles[e.core][mode[e.core]] += e.cycle - since[e.core];
    mode[e.core] = to;
    since[e.core] = e.cycle;
    r.stall_cycles[e.core] += static_cast<Cycle>(e.value);
  }
  for (std::uint32_t c = 0; c < t.num_cores; ++c)
    r.mode_cycles[c][mode[c]] += t.end_cycle - since[c];
  return r;
}

std::vector<SpinInterval> spin_timeline(const EventTrace& t) {
  std::vector<SpinInterval> out;
  std::vector<SpinInterval> open(t.num_cores);
  std::vector<bool> is_open(t.num_cores, false);
  for (const TraceEvent& e : log_of(t, TraceCategory::kSpin)) {
    if (e.core >= t.num_cores) continue;
    if (e.type == TraceEventType::kSpinEnter) {
      // An enter while open means the matching exit was dropped; close the
      // stale interval at the new enter cycle rather than losing it.
      if (is_open[e.core]) {
        open[e.core].end = e.cycle;
        out.push_back(open[e.core]);
      }
      open[e.core] = SpinInterval{e.core, e.arg, e.cycle, e.cycle};
      is_open[e.core] = true;
    } else if (e.type == TraceEventType::kSpinExit && is_open[e.core]) {
      open[e.core].end = e.cycle;
      out.push_back(open[e.core]);
      is_open[e.core] = false;
    }
  }
  for (std::uint32_t c = 0; c < t.num_cores; ++c) {
    if (!is_open[c]) continue;
    open[c].end = t.end_cycle;
    out.push_back(open[c]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpinInterval& a, const SpinInterval& b) {
                     return a.begin < b.begin;
                   });
  return out;
}

PolicyResidency policy_residency(const EventTrace& t) {
  PolicyResidency r;
  const auto& log = log_of(t, TraceCategory::kPolicy);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const TraceEvent& e = log[i];
    if (e.type != TraceEventType::kPolicySwitch) continue;
    if ((e.arg >> 8) != 0xff) ++r.switches;
    const Cycle until = i + 1 < log.size() ? log[i + 1].cycle : t.end_cycle;
    const Cycle span = until - e.cycle;
    if ((e.arg & 0xff) == 1) {
      r.to_one_cycles += span;
    } else {
      r.to_all_cycles += span;
    }
  }
  return r;
}

DeficitHistogram deficit_histogram(const EventTrace& t,
                                   std::size_t buckets) {
  DeficitHistogram h;
  const auto& log = log_of(t, TraceCategory::kBudget);
  std::vector<double> samples;
  samples.reserve(log.size());
  double sum = 0.0;
  std::uint64_t over = 0;
  for (const TraceEvent& e : log) {
    if (e.type != TraceEventType::kBudgetSample) continue;
    samples.push_back(e.value);
    sum += e.value;
    if (e.value > 0.0) ++over;
  }
  h.samples = samples.size();
  if (samples.empty()) return h;
  const auto [lo_it, hi_it] = std::minmax_element(samples.begin(),
                                                  samples.end());
  h.min = *lo_it;
  h.max = *hi_it;
  h.mean = sum / static_cast<double>(samples.size());
  h.over_budget_frac =
      static_cast<double>(over) / static_cast<double>(samples.size());
  h.lo = h.min;
  h.hi = h.max;
  // Degenerate (constant) sample sets still get one well-formed bucket.
  h.bucket_width =
      h.hi > h.lo ? (h.hi - h.lo) / static_cast<double>(buckets) : 1.0;
  h.counts.assign(buckets, 0);
  for (const double v : samples) {
    auto b = static_cast<std::size_t>((v - h.lo) / h.bucket_width);
    if (b >= buckets) b = buckets - 1;  // v == hi lands in the top bucket
    ++h.counts[b];
  }
  return h;
}

TokenTotals token_totals(const EventTrace& t) {
  TokenTotals s;
  for (const TraceEvent& e : log_of(t, TraceCategory::kToken)) {
    switch (e.type) {
      case TraceEventType::kDonate:
        s.donated += e.value;
        ++s.donate_events;
        break;
      case TraceEventType::kGrant:
        s.granted += e.value;
        ++s.grant_events;
        break;
      case TraceEventType::kEvaporate:
        s.evaporated += e.value;
        ++s.evaporate_events;
        break;
      default:
        break;
    }
  }
  return s;
}

// --- renderings -------------------------------------------------------------

std::string render_summary(const EventTrace& t) {
  std::ostringstream out;
  out << "trace: " << t.num_cores << " cores, " << t.end_cycle
      << " cycles, wire latency " << t.wire_latency << ", categories "
      << trace_categories_string(t.categories) << "\n\n";
  out << "category   kept      emitted   dropped\n";
  for (std::uint32_t c = 0; c < kNumTraceCategories; ++c) {
    const auto& log = t.logs[c];
    char line[128];
    std::snprintf(line, sizeof(line), "%-10s %-9zu %-9llu %llu\n",
                  trace_category_name(static_cast<TraceCategory>(c)),
                  log.events.size(),
                  static_cast<unsigned long long>(log.emitted),
                  static_cast<unsigned long long>(log.dropped));
    out << line;
  }
  const TokenTotals s = token_totals(t);
  out << "\ntokens: donated=" << format_double(s.donated, 1)
      << " granted=" << format_double(s.granted, 1)
      << " evaporated=" << format_double(s.evaporated, 1) << " ("
      << s.donate_events << " donate / " << s.grant_events << " grant / "
      << s.evaporate_events << " evaporate events)\n";
  const PolicyResidency p = policy_residency(t);
  out << "policy: to_all=" << p.to_all_cycles
      << " to_one=" << p.to_one_cycles << " cycles, " << p.switches
      << " switches\n";
  if (t.total_dropped() > 0) {
    out << "\nwarning: " << t.total_dropped()
        << " events dropped (ring overflow) — analyses cover the kept "
           "suffix of each category\n";
  }
  return out.str();
}

std::string render_flows(const EventTrace& t) {
  const TokenFlowMatrix m = token_flow_matrix(t);
  std::ostringstream out;
  std::vector<std::string> head{"donor\\grantee"};
  for (std::uint32_t c = 0; c < m.num_cores; ++c)
    head.push_back(core_label(c));
  head.push_back("evaporated");
  Table tab(head);
  for (std::uint32_t d = 0; d < m.num_cores; ++d) {
    std::vector<std::string> row{core_label(d)};
    for (std::uint32_t g = 0; g < m.num_cores; ++g)
      row.push_back(format_double(m.at(d, g), 1));
    row.push_back(format_double(m.evaporated_by_donor[d], 1));
    tab.add_row(row);
  }
  out << tab.to_text("token flow (rows donate, columns receive; tokens)");
  out << "totals: donated=" << format_double(m.total_donated, 1)
      << " granted=" << format_double(m.total_granted, 1)
      << " evaporated=" << format_double(m.total_evaporated, 1)
      << " unattributed=" << format_double(m.unattributed, 1) << "\n";
  return out.str();
}

std::string render_dvfs(const EventTrace& t) {
  const DvfsResidency r = dvfs_residency(t);
  std::ostringstream out;
  Table tab({"core", "m0 100/100", "m1 95/95", "m2 90/90", "m3 90/75",
             "m4 90/65", "stall"});
  for (std::uint32_t c = 0; c < t.num_cores; ++c) {
    std::vector<std::string> row{core_label(c)};
    for (std::uint32_t m = 0; m < 5; ++m)
      row.push_back(std::to_string(r.mode_cycles[c][m]));
    row.push_back(std::to_string(r.stall_cycles[c]));
    tab.add_row(row);
  }
  out << tab.to_text(
      "DVFS residency (cycles per mode; paper's 5-point (VDD%,F%) table)");
  out << "transitions: " << r.transitions << "\n";
  return out.str();
}

std::string render_spin(const EventTrace& t, std::uint32_t only_core) {
  std::ostringstream out;
  out << "spin-phase timeline (begin..end [cycles] state)\n";
  std::size_t shown = 0;
  for (const SpinInterval& iv : spin_timeline(t)) {
    if (only_core != kNoCore && iv.core != only_core) continue;
    char line[128];
    std::snprintf(line, sizeof(line),
                  "c%-3u %12llu .. %-12llu %8llu  %s\n", iv.core,
                  static_cast<unsigned long long>(iv.begin),
                  static_cast<unsigned long long>(iv.end),
                  static_cast<unsigned long long>(iv.end - iv.begin),
                  exec_state_label(iv.state));
    out << line;
    ++shown;
  }
  if (shown == 0) out << "(no spin phases recorded)\n";
  return out.str();
}

std::string render_deficit(const EventTrace& t) {
  const DeficitHistogram h = deficit_histogram(t);
  std::ostringstream out;
  out << "budget-deficit histogram (estimated CMP power - global budget, "
         "decimated samples)\n";
  if (h.samples == 0) {
    out << "(no budget samples recorded)\n";
    return out.str();
  }
  out << "samples=" << h.samples << " min=" << format_double(h.min, 3)
      << " mean=" << format_double(h.mean, 3)
      << " max=" << format_double(h.max, 3)
      << " over-budget=" << format_double(100.0 * h.over_budget_frac, 1)
      << "%\n";
  std::uint64_t peak = 1;
  for (const std::uint64_t c : h.counts) peak = std::max(peak, c);
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const double lo = h.lo + h.bucket_width * static_cast<double>(b);
    char head[64];
    std::snprintf(head, sizeof(head), "%10.3f .. %-10.3f %8llu ", lo,
                  lo + h.bucket_width,
                  static_cast<unsigned long long>(h.counts[b]));
    out << head
        << std::string((h.counts[b] * 50) / peak, '#') << "\n";
  }
  return out.str();
}

}  // namespace ptb

// Structured event-trace recorder for the simulator (the observability
// layer the figures' *dynamics* claims rest on: which cores donate tokens
// during lock vs. barrier spinning, when the dynamic selector flips
// ToOne/ToAll, how DVFS residency tracks the budget).
//
// Design, mirroring the audit hook (src/audit):
//   - zero cost when disabled: emit sites are `if (tracer_) tracer_->...` —
//     one predictable branch per site, no tracer object allocated;
//   - bounded memory: one fixed-size ring per category that overwrites the
//     oldest events and counts the drops (a diagnosable trace of the *end*
//     of a run beats an unbounded one that OOMs it);
//   - read-only: tracing observes the run and never changes a result byte
//     (asserted in tests/trace); TraceConfig is therefore excluded from the
//     config fingerprint, exactly like SimConfig::audit_level;
//   - deterministic: emission order — and hence the serialized trace — is a
//     pure function of (profile, config, seed), byte-identical at any
//     --jobs value and at any --sim-threads value (asserted by the hammer
//     tests). The sharded cycle loop (sim/shard_pool.hpp) keeps that true
//     with per-core staging buffers: emits from the parallel per-core
//     phases land in the emitting core's slot and are flushed into the
//     rings in core order at the cycle's sequential point, reproducing the
//     serial core-major emission order exactly.
//
// The recorded EventTrace is carried out of the run by RunResult::trace,
// serialized to a compact binary file, and consumed by the exporters
// (trace/export.hpp: Chrome/Perfetto JSON, CSV), the analyzers
// (trace/analysis.hpp) and the `ptb-trace` CLI (tools/ptb_trace.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

/// Event categories; each has its own ring buffer and enable bit.
enum class TraceCategory : std::uint8_t {
  kToken = 0,   // balancer Donate / Grant / Evaporate
  kPolicy,      // dynamic-selector ToOne <-> ToAll switches
  kDvfs,        // DVFS/DFS mode transitions (and their stall windows)
  kSpin,        // per-core spin-phase enter/exit (lock vs. barrier)
  kEnforcer,    // 2-level microarchitectural throttle level changes
  kSync,        // lock acquire/release, barrier arrive/release
  kBudget,      // decimated CMP budget-deficit samples
  kCount,
};

inline constexpr std::uint32_t kNumTraceCategories =
    static_cast<std::uint32_t>(TraceCategory::kCount);

/// Category mask with every category enabled.
inline constexpr std::uint32_t kTraceAll = (1u << kNumTraceCategories) - 1;

inline constexpr std::uint32_t trace_category_bit(TraceCategory c) {
  return 1u << static_cast<std::uint32_t>(c);
}

const char* trace_category_name(TraceCategory c);

/// Parses a comma-separated category list ("token,dvfs,sync"), or "all";
/// returns false (out untouched) on any unknown name or an empty list.
bool parse_trace_categories(std::string_view s, std::uint32_t& out_mask);

/// Renders a mask as the comma-separated list parse_trace_categories reads.
std::string trace_categories_string(std::uint32_t mask);

/// Typed events. The `arg` / `value` meaning per type is documented inline;
/// `core` is the core the event concerns (kNoCore for CMP-level events).
enum class TraceEventType : std::uint8_t {
  // kToken -------------------------------------------------------------
  // Token events identify the balancer pool a grant came from so the
  // analyzer can attribute flows: a kGrant/kEvaporate's arg is the cycle
  // the arriving pool was donated on, OR'd with the donating balancer's
  // pool tag << 48 (tag 0 for the monolithic balancer, cluster index for
  // the clustered one — so clusters never cross-attribute). kDonate's arg
  // is the bare pool tag (its cycle is the event cycle).
  kDonate = 0,      // core=donor, arg=pool tag, value=tokens on the wires
  kGrant,           // core=grantee, value=tokens granted,
                    // arg=donate cycle | pool tag << 48
  kEvaporate,       // core=kNoCore, value=undeliverable tokens,
                    // arg=donate cycle | pool tag << 48
  // kPolicy ------------------------------------------------------------
  kPolicySwitch,    // arg = new_policy | old_policy << 8 (old 0xff on the
                    // first selection); value = spinning cores observed
  // kDvfs --------------------------------------------------------------
  kDvfsTransition,  // core, arg = from_mode << 8 | to_mode,
                    // value = regulator stall window in cycles
  // kSpin --------------------------------------------------------------
  kSpinEnter,       // core, arg = ExecState entered (kLockAcq/kLockRel/
                    //             kBarrier as integers)
  kSpinExit,        // core, arg = ExecState left
  // kEnforcer ----------------------------------------------------------
  kThrottleLevel,   // core, arg = new microarch level (0..3),
                    // value = estimated power that triggered it
  // kSync --------------------------------------------------------------
  kLockAcquire,     // core, arg = lock id
  kLockRelease,     // core, arg = lock id
  kBarrierArrive,   // core, arg = barrier id
  kBarrierRelease,  // core = last arriver, arg = barrier id
  // kBudget ------------------------------------------------------------
  kBudgetSample,    // core=kNoCore, value = estimated CMP power minus the
                    // global budget (negative while under budget)
  kCount,
};

inline constexpr std::uint32_t kNumTraceEventTypes =
    static_cast<std::uint32_t>(TraceEventType::kCount);

TraceCategory trace_event_category(TraceEventType t);
const char* trace_event_name(TraceEventType t);

/// One recorded event; 29 bytes serialized (fields written individually —
/// never the struct at once, padding bytes are indeterminate).
struct TraceEvent {
  Cycle cycle = 0;
  TraceEventType type = TraceEventType::kDonate;
  std::uint32_t core = kNoCore;
  std::uint64_t arg = 0;
  double value = 0.0;
};

/// The immutable result of one traced run: per-category event logs (oldest
/// first, post-overwrite) plus the run metadata the analyzers need.
/// RunResult carries it as a shared_ptr so results stay cheap to move
/// through the RunPool.
struct EventTrace {
  std::uint32_t num_cores = 0;
  std::uint32_t categories = 0;   // mask the run was recorded with
  Cycle end_cycle = 0;            // RunResult::cycles of the traced run
  std::uint32_t wire_latency = 0; // balancer wire latency (0: no balancer)

  struct CategoryLog {
    std::vector<TraceEvent> events;  // oldest -> newest
    std::uint64_t emitted = 0;       // total emits (kept + dropped)
    std::uint64_t dropped = 0;       // overwritten by ring overflow
  };
  CategoryLog logs[kNumTraceCategories];

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;

  /// Every kept event across categories, sorted by cycle; ties keep the
  /// per-category emission order (category-major), so the result is
  /// deterministic for a deterministic run.
  std::vector<TraceEvent> merged() const;

  /// Compact binary form ("PTBTRACE" magic + version + meta + per-category
  /// logs). Byte-stable: equal traces serialize to equal bytes.
  std::string serialize() const;
  /// Parses serialize() output; returns false (out untouched) on a short,
  /// corrupt or version-mismatched buffer.
  static bool deserialize(std::string_view bytes, EventTrace& out);

  bool save(const std::string& path) const;
  static bool load(const std::string& path, EventTrace& out);
};

/// Fixed-capacity ring: keeps the newest `capacity` events, counts drops.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& e);
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return emitted_ - size_; }

  /// Events oldest -> newest.
  std::vector<TraceEvent> in_order() const;

  // Checkpoint support (sim/checkpoint): events in oldest->newest order +
  // the emit counter. Load rebuilds an equivalent ring (rotated to slot 0 —
  // rotation is unobservable; in_order() and future pushes are identical).
  void save_state(ByteWriter& w) const {
    w.u64(emitted_);
    w.u64(size_);
    const std::vector<TraceEvent> ev = in_order();
    for (const TraceEvent& e : ev) {
      w.u64(e.cycle);
      w.u8(static_cast<std::uint8_t>(e.type));
      w.u32(e.core);
      w.u64(e.arg);
      w.f64(e.value);
    }
  }
  void load_state(ByteReader& r) {
    const std::uint64_t emitted = r.u64();
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > buf_.size() || n > emitted ||
        n > r.remaining() / 29) {  // 29 = serialized TraceEvent bytes
      r.fail();
      return;
    }
    for (TraceEvent& e : buf_) e = TraceEvent{};
    for (std::uint64_t i = 0; i < n; ++i) {
      TraceEvent& e = buf_[i];
      e.cycle = r.u64();
      const std::uint8_t t = r.u8();
      e.core = r.u32();
      e.arg = r.u64();
      e.value = r.f64();
      if (t >= static_cast<std::uint8_t>(TraceEventType::kCount)) {
        r.fail();
        return;
      }
      e.type = static_cast<TraceEventType>(t);
    }
    size_ = n;
    head_ = buf_.empty() ? 0 : n % buf_.size();
    emitted_ = emitted;
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;   // next write slot
  std::size_t size_ = 0;
  std::uint64_t emitted_ = 0;
};

/// The live recorder one CmpSimulator run drives. The CMP cycle loop calls
/// begin_cycle(now) once per cycle; instrumented collaborators (balancer,
/// selector, enforcers, spin trackers, sync state) hold a raw pointer and
/// emit against the current cycle. One tracer belongs to one simulator;
/// under a sharded cycle loop (--sim-threads > 1, sim/shard_pool.hpp) the
/// per-core phases emit concurrently, which the staging API below makes
/// safe and order-deterministic: between stage_begin() and stage_flush(),
/// an emit for core c appends to a c-private slot (each core is touched by
/// exactly one shard), and stage_flush() — called at the cycle's sequential
/// point — replays the slots into the rings in core order.
class EventTracer {
 public:
  /// `category_mask` selects what is recorded (bits of TraceCategory);
  /// `capacity` is the per-category ring size in events.
  EventTracer(std::uint32_t category_mask, std::size_t capacity);

  void begin_cycle(Cycle now) { now_ = now; }
  Cycle cycle() const { return now_; }

  bool enabled(TraceCategory c) const {
    return (mask_ & trace_category_bit(c)) != 0;
  }

  /// Records one event at the current cycle (no-op for masked categories).
  /// While staging is active (stage_begin .. stage_flush) an event whose
  /// `core` is a valid staged core lands in that core's slot instead of the
  /// ring; kNoCore events always go to the ring directly (they are only
  /// emitted from sequential phases).
  void emit(TraceEventType t, std::uint32_t core, std::uint64_t arg,
            double value);

  /// One-time setup for the sharded cycle loop: allocates one staging slot
  /// per core. Without this call the tracer behaves exactly as before.
  void enable_staging(std::uint32_t num_cores)
      PTB_REQUIRES(g_sequential_point);

  /// Starts routing per-core emits into the staging slots. Must be called
  /// before the parallel region of a cycle starts (the region's barrier
  /// publishes the flag to the workers).
  void stage_begin() PTB_REQUIRES(g_sequential_point) {
    staging_active_ = !stage_.empty();
  }

  /// Replays every staged event into the rings in core order (preserving
  /// per-core emission order) and turns direct emission back on. Called at
  /// the cycle's sequential point, after the region's end barrier.
  void stage_flush() PTB_REQUIRES(g_sequential_point);

  /// Detaches the recorded trace, stamping the run metadata.
  EventTrace finish(std::uint32_t num_cores, Cycle end_cycle,
                    std::uint32_t wire_latency);

  // Checkpoint support (sim/checkpoint): the per-category rings. Must only
  // be called at the cycle's sequential point with staging inactive and the
  // staging slots drained (stage_flush() ran).
  void save_state(ByteWriter& w) const {
    w.u64(now_);
    w.u64(rings_.size());
    for (const TraceRing& ring : rings_) ring.save_state(w);
  }
  void load_state(ByteReader& r) {
    now_ = r.u64();
    if (r.u64() != rings_.size()) {
      r.fail();
      return;
    }
    for (TraceRing& ring : rings_) ring.load_state(r);
  }

 private:
  void push(const TraceEvent& e);

  std::uint32_t mask_;
  Cycle now_ = 0;
  bool staging_active_ = false;
  std::vector<TraceRing> rings_;  // one per category
  std::vector<std::vector<TraceEvent>> stage_;  // one slot per core
};

}  // namespace ptb

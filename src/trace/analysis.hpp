// Trace analyzers: turn a recorded EventTrace into the paper-shaped
// summaries the `ptb-trace` CLI prints — per-core-pair token flows, DVFS
// mode residency, spin-phase timelines, policy residency and the
// budget-deficit histogram. Pure functions of the trace; the consistency
// tests (tests/trace) cross-check them against the RunResult counters of
// the run that produced the trace.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace ptb {

/// Who funded whom, attributed through the balancer pool: a grant landing
/// at cycle t was donated at cycle t - wire_latency (the Grant/Evaporate
/// events carry that donate cycle), so each grant is split over that
/// cycle's donors in proportion to their donated amounts.
struct TokenFlowMatrix {
  std::uint32_t num_cores = 0;
  /// flow[donor * num_cores + grantee], in tokens.
  std::vector<double> flow;
  /// Tokens a donor sent that evaporated (landed with no needy core).
  std::vector<double> evaporated_by_donor;
  double total_donated = 0.0;
  double total_granted = 0.0;
  double total_evaporated = 0.0;
  /// Grant/evaporation tokens whose donors are missing from the trace
  /// (ring overwrote the matching Donate events); 0 on a drop-free trace.
  double unattributed = 0.0;

  double at(std::uint32_t donor, std::uint32_t grantee) const {
    return flow[donor * num_cores + grantee];
  }
};

TokenFlowMatrix token_flow_matrix(const EventTrace& t);

/// Per-core cycles spent in each of the 5 DVFS modes (mode 0 at cycle 0;
/// each kDvfsTransition closes the previous interval; the last interval
/// runs to end_cycle) plus the summed regulator stall windows.
struct DvfsResidency {
  std::vector<std::array<Cycle, 5>> mode_cycles;  // [core][mode]
  std::vector<Cycle> stall_cycles;                // [core]
  std::uint64_t transitions = 0;
};

DvfsResidency dvfs_residency(const EventTrace& t);

/// Closed spin intervals per core, in cycle order. An interval still open
/// at end_cycle is closed there.
struct SpinInterval {
  std::uint32_t core = 0;
  std::uint64_t state = 0;  // ExecState as recorded in the event arg
  Cycle begin = 0;
  Cycle end = 0;
};

std::vector<SpinInterval> spin_timeline(const EventTrace& t);

/// Cycles under each balancer policy, reconstructed from the switch events
/// (matches the selector's to_one_cycles/to_all_cycles counters exactly on
/// a drop-free trace of a kDynamic run).
struct PolicyResidency {
  Cycle to_all_cycles = 0;
  Cycle to_one_cycles = 0;
  std::uint64_t switches = 0;  // excluding the initial selection
};

PolicyResidency policy_residency(const EventTrace& t);

/// Histogram of the decimated budget-deficit samples (estimated CMP power
/// minus global budget; negative = under budget).
struct DeficitHistogram {
  double lo = 0.0;
  double hi = 0.0;
  double bucket_width = 0.0;
  std::vector<std::uint64_t> counts;
  std::uint64_t samples = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Fraction of samples over budget (deficit > 0).
  double over_budget_frac = 0.0;
};

DeficitHistogram deficit_histogram(const EventTrace& t,
                                   std::size_t buckets = 16);

/// Token donate/grant/evaporate totals and event counts straight from the
/// kToken log (the quantities RunResult::tokens_* accumulate).
struct TokenTotals {
  double donated = 0.0;
  double granted = 0.0;
  double evaporated = 0.0;
  std::uint64_t donate_events = 0;
  std::uint64_t grant_events = 0;
  std::uint64_t evaporate_events = 0;
};

TokenTotals token_totals(const EventTrace& t);

// --- text renderings (the ptb-trace subcommand bodies) ----------------------

std::string render_summary(const EventTrace& t);
std::string render_flows(const EventTrace& t);
std::string render_dvfs(const EventTrace& t);
std::string render_spin(const EventTrace& t, std::uint32_t only_core);
std::string render_deficit(const EventTrace& t);

}  // namespace ptb

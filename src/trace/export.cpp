#include "trace/export.hpp"

#include <sstream>

#include "common/table.hpp"
#include "sync/spin_tracker.hpp"

namespace ptb {

namespace {

// Perfetto track ids: tid 0 is the balancer/CMP track, core i is tid i+1.
constexpr std::uint32_t kBalancerTid = 0;

std::uint32_t tid_of(const TraceEvent& e) {
  return e.core == kNoCore ? kBalancerTid : e.core + 1;
}

const char* spin_slice_name(std::uint64_t exec_state) {
  switch (static_cast<ExecState>(exec_state)) {
    case ExecState::kLockAcq: return "spin:lock-acq";
    case ExecState::kLockRel: return "spin:lock-rel";
    case ExecState::kBarrier: return "spin:barrier";
    default: return "spin:?";
  }
}

const char* policy_name(std::uint64_t p) {
  switch (p) {
    case 0: return "ToAll";
    case 1: return "ToOne";
    case 2: return "Dynamic";
    case 0xff: return "(start)";
    default: return "?";
  }
}

void meta_event(std::ostringstream& out, const char* kind,
                std::uint32_t tid, const std::string& name) {
  out << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
      << ",\"args\":{\"name\":\"" << name << "\"}}";
}

void event_prefix(std::ostringstream& out, const char* name, const char* ph,
                  std::uint32_t tid, Cycle ts) {
  out << "{\"name\":\"" << name << "\",\"ph\":\"" << ph
      << "\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << ts;
}

}  // namespace

std::string trace_chrome_json(const EventTrace& t) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  meta_event(out, "process_name", 0, "ptb cmp (ts = cycle)");
  out << ",\n";
  meta_event(out, "thread_name", kBalancerTid, "balancer");
  for (std::uint32_t c = 0; c < t.num_cores; ++c) {
    out << ",\n";
    meta_event(out, "thread_name", c + 1, "core " + std::to_string(c));
  }

  // Open spin slices per core, so unclosed B events get a matching E at
  // end_cycle (Perfetto rejects unbalanced duration slices).
  std::vector<std::uint64_t> open_spin(t.num_cores, 0);
  std::vector<bool> spin_open(t.num_cores, false);

  for (const TraceEvent& e : t.merged()) {
    out << ",\n";
    const std::uint32_t tid = tid_of(e);
    switch (e.type) {
      case TraceEventType::kSpinEnter:
        event_prefix(out, spin_slice_name(e.arg), "B", tid, e.cycle);
        out << "}";
        if (e.core < t.num_cores) {
          spin_open[e.core] = true;
          open_spin[e.core] = e.arg;
        }
        break;
      case TraceEventType::kSpinExit:
        event_prefix(out, spin_slice_name(e.arg), "E", tid, e.cycle);
        out << "}";
        if (e.core < t.num_cores) spin_open[e.core] = false;
        break;
      case TraceEventType::kBudgetSample:
        event_prefix(out, "budget deficit", "C", tid, e.cycle);
        out << ",\"args\":{\"tokens_over_budget\":"
            << format_double(e.value, 4) << "}}";
        break;
      case TraceEventType::kDvfsTransition: {
        event_prefix(out, "dvfs", "i", tid, e.cycle);
        out << ",\"s\":\"t\",\"args\":{\"from_mode\":" << (e.arg >> 8)
            << ",\"to_mode\":" << (e.arg & 0xff)
            << ",\"stall_cycles\":" << format_double(e.value, 0) << "}}";
        // A counter track makes the per-core mode residency visible as a
        // stepped line in Perfetto.
        out << ",\n";
        event_prefix(out,
                     ("dvfs mode core" + std::to_string(e.core)).c_str(),
                     "C", tid, e.cycle);
        out << ",\"args\":{\"mode\":" << (e.arg & 0xff) << "}}";
        break;
      }
      case TraceEventType::kPolicySwitch:
        event_prefix(out, "policy", "i", tid, e.cycle);
        out << ",\"s\":\"g\",\"args\":{\"to\":\"" << policy_name(e.arg & 0xff)
            << "\",\"from\":\"" << policy_name(e.arg >> 8)
            << "\",\"spinning_cores\":" << format_double(e.value, 0) << "}}";
        break;
      case TraceEventType::kDonate:
        event_prefix(out, trace_event_name(e.type), "i", tid, e.cycle);
        out << ",\"s\":\"t\",\"args\":{\"tokens\":" << format_double(e.value, 4)
            << ",\"pool\":" << e.arg << "}}";
        break;
      case TraceEventType::kGrant:
      case TraceEventType::kEvaporate:
        event_prefix(out, trace_event_name(e.type), "i", tid, e.cycle);
        out << ",\"s\":\"t\",\"args\":{\"tokens\":" << format_double(e.value, 4)
            << ",\"donated_at\":" << (e.arg & ((std::uint64_t{1} << 48) - 1))
            << ",\"pool\":" << (e.arg >> 48) << "}}";
        break;
      case TraceEventType::kThrottleLevel:
        event_prefix(out, "throttle", "i", tid, e.cycle);
        out << ",\"s\":\"t\",\"args\":{\"level\":" << e.arg
            << ",\"est_power\":" << format_double(e.value, 4) << "}}";
        break;
      case TraceEventType::kLockAcquire:
      case TraceEventType::kLockRelease:
      case TraceEventType::kBarrierArrive:
      case TraceEventType::kBarrierRelease:
        event_prefix(out, trace_event_name(e.type), "i", tid, e.cycle);
        out << ",\"s\":\"t\",\"args\":{\"id\":" << e.arg << "}}";
        break;
      case TraceEventType::kCount:
        break;
    }
  }
  for (std::uint32_t c = 0; c < t.num_cores; ++c) {
    if (!spin_open[c]) continue;
    out << ",\n";
    event_prefix(out, spin_slice_name(open_spin[c]), "E", c + 1,
                 t.end_cycle);
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

std::string trace_csv(const EventTrace& t) {
  std::ostringstream out;
  out << "cycle,category,event,core,arg,value\n";
  for (const TraceEvent& e : t.merged()) {
    out << e.cycle << ','
        << trace_category_name(trace_event_category(e.type)) << ','
        << trace_event_name(e.type) << ',';
    if (e.core == kNoCore) {
      out << "cmp";
    } else {
      out << e.core;
    }
    out << ',' << e.arg << ',' << format_double(e.value, 4) << '\n';
  }
  return out.str();
}

}  // namespace ptb

// Trace exporters: Chrome trace-event / Perfetto JSON (open the file at
// ui.perfetto.dev or chrome://tracing) and a flat CSV for ad-hoc tooling.
// Both render the immutable EventTrace a traced run produced; neither
// touches simulator state.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace ptb {

/// Chrome trace-event format (the JSON Perfetto ingests): one named thread
/// track per core plus a "balancer" track (tid 0) for CMP-level events.
/// Spin phases render as duration (B/E) slices on the core's track; token,
/// DVFS, throttle and sync events as instant events with their payload in
/// "args"; budget-deficit samples and per-core DVFS modes as counters.
/// `ts` is the simulated cycle (display unit only).
std::string trace_chrome_json(const EventTrace& t);

/// Flat CSV, one event per row: `cycle,category,event,core,arg,value`.
/// Events are merged across categories in cycle order (EventTrace::merged).
std::string trace_csv(const EventTrace& t);

}  // namespace ptb

#include "trace/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/assert.hpp"

namespace ptb {

namespace {

constexpr char kMagic[8] = {'P', 'T', 'B', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kFormatVersion = 1;

// Explicit little-endian field writers: the serialized form must be
// byte-stable, so no struct is ever written at once (padding bytes are
// indeterminate) and the byte order is pinned regardless of host.
void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian readers over a string_view cursor.
struct Reader {
  std::string_view bytes;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || bytes.size() - pos < n) ok = false;
    return ok;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(bytes[pos++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes[pos++]))
           << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes[pos++]))
           << (8 * i);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
};

}  // namespace

const char* trace_category_name(TraceCategory c) {
  switch (c) {
    case TraceCategory::kToken: return "token";
    case TraceCategory::kPolicy: return "policy";
    case TraceCategory::kDvfs: return "dvfs";
    case TraceCategory::kSpin: return "spin";
    case TraceCategory::kEnforcer: return "enforcer";
    case TraceCategory::kSync: return "sync";
    case TraceCategory::kBudget: return "budget";
    case TraceCategory::kCount: break;
  }
  return "?";
}

bool parse_trace_categories(std::string_view s, std::uint32_t& out_mask) {
  std::uint32_t mask = 0;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view name = s.substr(0, comma);
    if (name == "all") {
      mask = kTraceAll;
    } else {
      bool found = false;
      for (std::uint32_t c = 0; c < kNumTraceCategories; ++c) {
        if (name == trace_category_name(static_cast<TraceCategory>(c))) {
          mask |= 1u << c;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
    if (s.empty()) return false;  // trailing comma
  }
  if (mask == 0) return false;
  out_mask = mask;
  return true;
}

std::string trace_categories_string(std::uint32_t mask) {
  if ((mask & kTraceAll) == kTraceAll) return "all";
  std::string out;
  for (std::uint32_t c = 0; c < kNumTraceCategories; ++c) {
    if ((mask & (1u << c)) == 0) continue;
    if (!out.empty()) out += ',';
    out += trace_category_name(static_cast<TraceCategory>(c));
  }
  return out;
}

TraceCategory trace_event_category(TraceEventType t) {
  switch (t) {
    case TraceEventType::kDonate:
    case TraceEventType::kGrant:
    case TraceEventType::kEvaporate: return TraceCategory::kToken;
    case TraceEventType::kPolicySwitch: return TraceCategory::kPolicy;
    case TraceEventType::kDvfsTransition: return TraceCategory::kDvfs;
    case TraceEventType::kSpinEnter:
    case TraceEventType::kSpinExit: return TraceCategory::kSpin;
    case TraceEventType::kThrottleLevel: return TraceCategory::kEnforcer;
    case TraceEventType::kLockAcquire:
    case TraceEventType::kLockRelease:
    case TraceEventType::kBarrierArrive:
    case TraceEventType::kBarrierRelease: return TraceCategory::kSync;
    case TraceEventType::kBudgetSample: return TraceCategory::kBudget;
    case TraceEventType::kCount: break;
  }
  PTB_ASSERT(false, "unknown trace event type");
  return TraceCategory::kToken;
}

const char* trace_event_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kDonate: return "donate";
    case TraceEventType::kGrant: return "grant";
    case TraceEventType::kEvaporate: return "evaporate";
    case TraceEventType::kPolicySwitch: return "policy_switch";
    case TraceEventType::kDvfsTransition: return "dvfs_transition";
    case TraceEventType::kSpinEnter: return "spin_enter";
    case TraceEventType::kSpinExit: return "spin_exit";
    case TraceEventType::kThrottleLevel: return "throttle_level";
    case TraceEventType::kLockAcquire: return "lock_acquire";
    case TraceEventType::kLockRelease: return "lock_release";
    case TraceEventType::kBarrierArrive: return "barrier_arrive";
    case TraceEventType::kBarrierRelease: return "barrier_release";
    case TraceEventType::kBudgetSample: return "budget_sample";
    case TraceEventType::kCount: break;
  }
  return "?";
}

// --- EventTrace -------------------------------------------------------------

std::uint64_t EventTrace::total_events() const {
  std::uint64_t n = 0;
  for (const auto& log : logs) n += log.events.size();
  return n;
}

std::uint64_t EventTrace::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& log : logs) n += log.dropped;
  return n;
}

std::vector<TraceEvent> EventTrace::merged() const {
  std::vector<TraceEvent> all;
  all.reserve(static_cast<std::size_t>(total_events()));
  for (const auto& log : logs)
    all.insert(all.end(), log.events.begin(), log.events.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.cycle < b.cycle;
                   });
  return all;
}

std::string EventTrace::serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, kNumTraceCategories);
  put_u32(out, num_cores);
  put_u32(out, categories);
  put_u64(out, end_cycle);
  put_u32(out, wire_latency);
  for (const auto& log : logs) {
    put_u64(out, log.emitted);
    put_u64(out, log.dropped);
    put_u64(out, log.events.size());
    for (const TraceEvent& e : log.events) {
      put_u64(out, e.cycle);
      put_u8(out, static_cast<std::uint8_t>(e.type));
      put_u32(out, e.core);
      put_u64(out, e.arg);
      put_f64(out, e.value);
    }
  }
  return out;
}

bool EventTrace::deserialize(std::string_view bytes, EventTrace& out) {
  Reader r{bytes};
  if (!r.need(sizeof(kMagic)) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  r.pos = sizeof(kMagic);
  if (r.u32() != kFormatVersion) return false;
  if (r.u32() != kNumTraceCategories) return false;
  EventTrace t;
  t.num_cores = r.u32();
  t.categories = r.u32();
  t.end_cycle = r.u64();
  t.wire_latency = r.u32();
  for (auto& log : t.logs) {
    log.emitted = r.u64();
    log.dropped = r.u64();
    const std::uint64_t n = r.u64();
    // 29 serialized bytes per event; reject before allocating on garbage.
    if (!r.need(static_cast<std::size_t>(n) * 29)) return false;
    log.events.resize(static_cast<std::size_t>(n));
    for (TraceEvent& e : log.events) {
      e.cycle = r.u64();
      const std::uint8_t type = r.u8();
      if (type >= kNumTraceEventTypes) return false;
      e.type = static_cast<TraceEventType>(type);
      e.core = r.u32();
      e.arg = r.u64();
      e.value = r.f64();
    }
  }
  if (!r.ok || r.pos != bytes.size()) return false;
  out = std::move(t);
  return true;
}

bool EventTrace::save(const std::string& path) const {
  const std::string bytes = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool EventTrace::load(const std::string& path, EventTrace& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return deserialize(bytes, out);
}

// --- TraceRing --------------------------------------------------------------

TraceRing::TraceRing(std::size_t capacity) : buf_(capacity) {
  PTB_ASSERT(capacity >= 1, "trace ring needs capacity >= 1");
}

void TraceRing::push(const TraceEvent& e) {
  buf_[head_] = e;
  head_ = (head_ + 1) % buf_.size();
  if (size_ < buf_.size()) ++size_;
  ++emitted_;
}

std::vector<TraceEvent> TraceRing::in_order() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest element: head_ when full, 0 while filling.
  const std::size_t start = size_ == buf_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(buf_[(start + i) % buf_.size()]);
  return out;
}

// --- EventTracer ------------------------------------------------------------

EventTracer::EventTracer(std::uint32_t category_mask, std::size_t capacity)
    : mask_(category_mask & kTraceAll) {
  rings_.reserve(kNumTraceCategories);
  for (std::uint32_t c = 0; c < kNumTraceCategories; ++c)
    rings_.emplace_back(capacity);
}

void EventTracer::emit(TraceEventType t, std::uint32_t core,
                       std::uint64_t arg, double value) {
  const TraceCategory cat = trace_event_category(t);
  if (!enabled(cat)) return;
  const TraceEvent e{now_, t, core, arg, value};
  // Staged region: the emitting core's slot is private to the one shard
  // ticking that core, so the append is race-free and the later in-order
  // flush reproduces the serial emission order byte for byte.
  if (staging_active_ && core < stage_.size()) {
    stage_[core].push_back(e);
    return;
  }
  push(e);
}

void EventTracer::push(const TraceEvent& e) {
  rings_[static_cast<std::size_t>(trace_event_category(e.type))].push(e);
}

void EventTracer::enable_staging(std::uint32_t num_cores) {
  stage_.resize(num_cores);
}

void EventTracer::stage_flush() {
  staging_active_ = false;
  for (auto& slot : stage_) {
    for (const TraceEvent& e : slot) push(e);
    slot.clear();
  }
}

EventTrace EventTracer::finish(std::uint32_t num_cores, Cycle end_cycle,
                               std::uint32_t wire_latency) {
  EventTrace t;
  t.num_cores = num_cores;
  t.categories = mask_;
  t.end_cycle = end_cycle;
  t.wire_latency = wire_latency;
  for (std::uint32_t c = 0; c < kNumTraceCategories; ++c) {
    t.logs[c].events = rings_[c].in_order();
    t.logs[c].emitted = rings_[c].emitted();
    t.logs[c].dropped = rings_[c].dropped();
  }
  return t;
}

}  // namespace ptb

#include "dvfs/dvfs.hpp"

#include <cmath>

#include "stats/stats.hpp"
#include "trace/trace.hpp"

namespace ptb {

DvfsController::DvfsController(const DvfsConfig& cfg,
                               const PowerConfig& power, bool freq_only)
    : cfg_(cfg), vdd_nominal_(power.vdd_nominal), freq_only_(freq_only) {}

Cycle DvfsController::transition_cycles(double delta_v) const {
  const double mv = std::abs(delta_v) * 1000.0;
  const double cycles = mv / cfg_.mv_per_cycle;
  // Even a frequency-only change costs one cycle of PLL resync.
  return cycles < 1.0 ? 1 : static_cast<Cycle>(std::ceil(cycles));
}

void DvfsController::change_mode(Cycle now, std::uint32_t next) {
  if (next == mode_) return;
  const double dv = (vdd_of(next) - vdd_of(mode_)) * vdd_nominal_;
  const Cycle stall = transition_cycles(dv);
  transition_until_ = now + stall;
  if (tracer_) {
    tracer_->emit(TraceEventType::kDvfsTransition, core_,
                  (static_cast<std::uint64_t>(mode_) << 8) | next,
                  static_cast<double>(stall));
  }
  mode_ = next;
  ++transitions;
}

void DvfsController::tick(Cycle now, double inst_power, double budget,
                          bool enforce) {
  window_acc_ += inst_power;
  if (++window_n_ < cfg_.window_cycles) return;
  const double avg = window_acc_ / static_cast<double>(window_n_);
  window_acc_ = 0.0;
  window_n_ = 0;
  if (in_transition(now)) return;  // settle before deciding again

  if (!enforce) {
    // Globally under budget: relax toward full speed.
    if (mode_ > 0) change_mode(now, mode_ - 1);
    return;
  }
  if (avg > budget && mode_ + 1 < kDvfsModes.size()) {
    change_mode(now, mode_ + 1);
  } else if (avg < budget * cfg_.up_hysteresis && mode_ > 0) {
    change_mode(now, mode_ - 1);
  }
}

void DvfsController::register_stats(StatsRegistry& reg,
                                    const std::string& prefix) const {
  reg.counter(prefix + ".transitions", "DVFS mode transitions", &transitions);
  reg.gauge_fn(prefix + ".mode", "current DVFS mode (0 = fastest)",
               [this] { return static_cast<double>(mode_); }, 0);
  reg.gauge_fn(prefix + ".freq_ratio", "current frequency / nominal",
               [this] { return freq_ratio(); });
}

}  // namespace ptb

// DVFS / DFS power-mode controller (Sections II.A and III.C of the paper).
//
// Five modes, exactly the paper's: (VDD%, F%) = (100,100) (95,95) (90,90)
// (90,75) (90,65). The DFS variant keeps VDD at 100% and scales only
// frequency. Mode transitions follow Kim et al. (HPCA'08) fast on-chip
// regulators: 30-50 mV/ns, i.e. ~12 mV per 3 GHz cycle; the core stalls for
// the transition.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

class EventTracer;
class StatsRegistry;

struct DvfsMode {
  double vdd_ratio;
  double freq_ratio;
};

inline constexpr std::array<DvfsMode, 5> kDvfsModes{{
    {1.00, 1.00},
    {0.95, 0.95},
    {0.90, 0.90},
    {0.90, 0.75},
    {0.90, 0.65},
}};

class DvfsController {
 public:
  /// `freq_only` selects the DFS variant (VDD pinned at 100%).
  DvfsController(const DvfsConfig& cfg, const PowerConfig& power,
                 bool freq_only);

  /// Feed one cycle of (estimated) core power; the controller averages over
  /// its window and steps the mode at window boundaries. `budget` is the
  /// core's current local power budget; `enforce` is false while the CMP is
  /// globally under budget (the controller then relaxes toward mode 0).
  void tick(Cycle now, double inst_power, double budget, bool enforce);

  double vdd_ratio() const { return vdd_of(mode_); }
  double freq_ratio() const { return kDvfsModes[mode_].freq_ratio; }
  std::uint32_t mode() const { return mode_; }
  /// True while the regulator is ramping; the core must stall.
  bool in_transition(Cycle now) const { return now < transition_until_; }
  Cycle transition_until() const { return transition_until_; }

  /// Cycles a VDD swing of `delta_v` (in volts) takes at the configured
  /// regulator slew rate.
  Cycle transition_cycles(double delta_v) const;

  /// Attach/detach the event tracer (src/trace): every mode change emits a
  /// kDvfsTransition event for `core` with its regulator stall window.
  void set_tracer(EventTracer* t, std::uint32_t core) {
    tracer_ = t;
    core_ = core;
  }

  // Statistics.
  std::uint64_t transitions = 0;

  /// Registers the transition counter and current-mode gauge under `prefix`
  /// (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support.
  void save_state(ByteWriter& w) const {
    w.u32(mode_);
    w.u64(transition_until_);
    w.f64(window_acc_);
    w.u32(window_n_);
    w.u64(transitions);
  }
  void load_state(ByteReader& r) {
    const std::uint32_t m = r.u32();
    if (m >= kDvfsModes.size()) {
      r.fail();
      return;
    }
    mode_ = m;
    transition_until_ = r.u64();
    window_acc_ = r.f64();
    window_n_ = r.u32();
    transitions = r.u64();
  }

 private:
  double vdd_of(std::uint32_t m) const {
    return freq_only_ ? 1.0 : kDvfsModes[m].vdd_ratio;
  }
  void change_mode(Cycle now, std::uint32_t next);

  DvfsConfig cfg_;
  double vdd_nominal_;
  bool freq_only_;
  std::uint32_t mode_ = 0;
  Cycle transition_until_ = 0;
  double window_acc_ = 0.0;
  std::uint32_t window_n_ = 0;
  EventTracer* tracer_ = nullptr;  // owned by the running simulator
  std::uint32_t core_ = 0;
};

}  // namespace ptb

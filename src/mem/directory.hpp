// Directory-based MOESI coherence controller.
//
// The directory is embedded in the (inclusive) L2 bank lines: each L2 line
// tracks the set of L1 sharers and the owning core (M/E/O copy), exactly one
// home bank per line (address-interleaved). Transactions are processed in
// arrival order; the MemorySystem serializes concurrent transactions to the
// same line, so the controller never observes protocol races and the
// single-writer/multiple-reader invariant holds between transactions.
//
// L2 line states are reused from CoherenceState with the meaning:
//   kExclusive = present, clean w.r.t. memory
//   kModified  = present, dirty w.r.t. memory
// L1 copies are tracked by the directory metadata (sharers / owner).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"

namespace ptb {

/// Timing + bookkeeping outcome of one directory transaction.
struct DirOutcome {
  Cycle done = 0;              // cycle at which the requester has the line
  bool data_from_owner = false;
  std::uint32_t invalidations = 0;
  bool l2_miss = false;
};

class DirectoryController {
 public:
  DirectoryController(const SimConfig& cfg, Mesh& mesh,
                      std::vector<Cache>& l1i, std::vector<Cache>& l1d);

  /// Read request from core `req` for `line` (line address), arriving at the
  /// home bank at `at`. Grants S (or E when unshared). `instruction` selects
  /// which L1 array the fill goes to.
  DirOutcome get_shared(CoreId req, Addr line, Cycle at, bool instruction);

  /// Write/upgrade request: grants M, invalidating all other copies.
  DirOutcome get_modified(CoreId req, Addr line, Cycle at);

  /// Owner eviction notification (dirty writeback or clean-exclusive PutE).
  /// Timing is off the requester critical path; state updates immediately.
  void put_owner(CoreId from, Addr line, bool dirty, Cycle at);

  /// Functional (zero-time) warmup: installs `line` in its home L2 bank and,
  /// when `c != kNoCore`, into that core's L1 (exclusive => E + ownership,
  /// else S). Used to skip the cold-start DRAM phase before timed runs, as
  /// architectural simulators conventionally do.
  void warm(CoreId c, Addr line, bool instruction, bool exclusive);

  /// Home bank (== mesh node) for a line address.
  CoreId home_of(Addr line) const {
    return static_cast<CoreId>(line % num_cores_);
  }

  // --- statistics ---
  std::uint64_t gets_requests = 0;
  std::uint64_t getm_requests = 0;
  std::uint64_t owner_forwards = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l2_recalls = 0;
  std::uint64_t writebacks = 0;

  Cache& l2_bank(CoreId b) { return l2_banks_[b]; }
  const Cache& l2_bank(CoreId b) const { return l2_banks_[b]; }
  DramModel& dram() { return dram_; }
  const DramModel& dram() const { return dram_; }

  // Checkpoint support: every L2 bank, the DRAM model and the counters.
  // (The L1 references are serialized by the MemorySystem.)
  void save_state(ByteWriter& w) const {
    w.u64(l2_banks_.size());
    for (const Cache& b : l2_banks_) b.save_state(w);
    dram_.save_state(w);
    w.u64(gets_requests);
    w.u64(getm_requests);
    w.u64(owner_forwards);
    w.u64(invalidations_sent);
    w.u64(l2_misses);
    w.u64(l2_recalls);
    w.u64(writebacks);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != l2_banks_.size()) {
      r.fail();
      return;
    }
    for (Cache& b : l2_banks_) b.load_state(r);
    dram_.load_state(r);
    gets_requests = r.u64();
    getm_requests = r.u64();
    owner_forwards = r.u64();
    invalidations_sent = r.u64();
    l2_misses = r.u64();
    l2_recalls = r.u64();
    writebacks = r.u64();
  }

 private:
  /// Ensures `line` is resident in its home L2 bank; returns the cycle the
  /// data is available at the bank and the resident line pointer.
  Cache::Line* ensure_resident(Addr line, Cycle& t, DirOutcome& out);

  /// Invalidate every L1 copy of `line` recorded in `entry` except `keep`;
  /// returns the cycle by which all acks have reached `ack_to`'s node.
  Cycle invalidate_copies(Cache::Line* entry, Addr line, CoreId keep,
                          CoreId ack_to, Cycle t, DirOutcome& out);

  const SimConfig& cfg_;
  Mesh& mesh_;
  std::vector<Cache>& l1i_;
  std::vector<Cache>& l1d_;
  std::vector<Cache> l2_banks_;
  DramModel dram_;
  std::uint32_t num_cores_;
};

}  // namespace ptb

#include "mem/directory.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include <cstdio>

namespace ptb {

namespace {
// Removes a line from whichever L1 (I or D) of `core` holds it.
void drop_l1(std::vector<Cache>& l1i, std::vector<Cache>& l1d, CoreId core,
             Addr line_byte_addr) {
  l1i[core].invalidate(line_byte_addr);
  l1d[core].invalidate(line_byte_addr);
}
}  // namespace

DirectoryController::DirectoryController(const SimConfig& cfg, Mesh& mesh,
                                         std::vector<Cache>& l1i,
                                         std::vector<Cache>& l1d)
    : cfg_(cfg), mesh_(mesh), l1i_(l1i), l1d_(l1d), dram_(cfg.mem),
      num_cores_(cfg.num_cores) {
  PTB_ASSERT(num_cores_ <= 32, "sharer bitmask supports at most 32 cores");
  l2_banks_.reserve(num_cores_);
  // Lines are interleaved across banks by (line % num_cores); drop those
  // bits from each bank's set index so the whole bank capacity is usable.
  std::uint32_t bank_shift = 0;
  while ((1u << (bank_shift + 1)) <= num_cores_) ++bank_shift;
  for (std::uint32_t i = 0; i < num_cores_; ++i) {
    l2_banks_.emplace_back(cfg.l2.size_bytes_per_core, cfg.l2.assoc,
                           cfg.l2.line_bytes, bank_shift);
  }
}

Cache::Line* DirectoryController::ensure_resident(Addr line, Cycle& t,
                                                  DirOutcome& out) {
  const CoreId home = home_of(line);
  Cache& bank = l2_banks_[home];
  const Addr byte_addr = line * bank.line_bytes();
  if (Cache::Line* l = bank.find(byte_addr)) {
    ++bank.hits;
    return l;
  }
  ++bank.misses;
  ++l2_misses;
#ifdef PTB_DEBUG_L2MISS
  if (l2_misses < 30)
    std::fprintf(stderr, "L2MISS line=0x%llx byte=0x%llx\n",
                 (unsigned long long)line,
                 (unsigned long long)(line * bank.line_bytes()));
#endif
  out.l2_miss = true;
  t = dram_.access(line, t);
  Cache::Line victim = bank.insert(byte_addr, CoherenceState::kExclusive);
  if (victim.state != CoherenceState::kInvalid) {
    // Inclusion recall: every L1 copy of the victim must be dropped before
    // the set conflict resolves; this sits on the requester's critical path.
    const Addr victim_byte = victim.tag * bank.line_bytes();
    Cycle recall_done = t;
    bool any = false;
    std::uint32_t copies = victim.sharers;
    if (victim.owner != kNoCore) copies |= (1u << victim.owner);
    for (CoreId c = 0; c < num_cores_; ++c) {
      if (!(copies & (1u << c))) continue;
      any = true;
      const Cycle inv_at =
          mesh_.route(home, c, cfg_.noc.ctrl_msg_bytes, t);
      drop_l1(l1i_, l1d_, c, victim_byte);
      ++invalidations_sent;
      const bool dirty_copy = (victim.owner == c);
      const Cycle ack_at = mesh_.route(
          c, home, dirty_copy ? cfg_.noc.data_msg_bytes
                              : cfg_.noc.ctrl_msg_bytes,
          inv_at);
      recall_done = std::max(recall_done, ack_at);
    }
    if (any) {
      ++l2_recalls;
      t = recall_done;
    }
    if (is_dirty(victim.state) || victim.owner != kNoCore) ++writebacks;
  }
  Cache::Line* fresh = bank.find(byte_addr);
  PTB_ASSERT(fresh != nullptr, "line must be resident after insert");
  return fresh;
}

Cycle DirectoryController::invalidate_copies(Cache::Line* entry, Addr line,
                                             CoreId keep, CoreId ack_to,
                                             Cycle t, DirOutcome& out) {
  const CoreId home = home_of(line);
  const Addr byte_addr = line * l2_banks_[home].line_bytes();
  const CoreId ack_node = ack_to;
  Cycle all_acks = t;
  std::uint32_t copies = entry->sharers;
  if (entry->owner != kNoCore) copies |= (1u << entry->owner);
  for (CoreId c = 0; c < num_cores_; ++c) {
    if (c == keep || !(copies & (1u << c))) continue;
    const Cycle inv_at = mesh_.route(home, c, cfg_.noc.ctrl_msg_bytes, t);
    drop_l1(l1i_, l1d_, c, byte_addr);
    ++invalidations_sent;
    ++out.invalidations;
    const Cycle ack_at =
        mesh_.route(c, ack_node, cfg_.noc.ctrl_msg_bytes, inv_at);
    all_acks = std::max(all_acks, ack_at);
  }
  return all_acks;
}

DirOutcome DirectoryController::get_shared(CoreId req, Addr line, Cycle at,
                                           bool instruction) {
  ++gets_requests;
  DirOutcome out;
  const CoreId home = home_of(line);
  Cycle t = at + cfg_.l2.hit_latency;
  Cache::Line* entry = ensure_resident(line, t, out);
  const Addr byte_addr = line * l2_banks_[home].line_bytes();

  Cycle data_at;
  CoherenceState fill_state;
  if (entry->owner != kNoCore && entry->owner != req) {
    // 3-hop transfer: home forwards the request, the owner supplies data
    // directly to the requester and downgrades (MOESI: M->O, E->S).
    ++owner_forwards;
    out.data_from_owner = true;
    const CoreId owner = entry->owner;
    const Cycle fwd_at = mesh_.route(home, owner, cfg_.noc.ctrl_msg_bytes, t);
    data_at = mesh_.route(owner, req, cfg_.noc.data_msg_bytes, fwd_at);
    Cache::Line* ol = l1d_[owner].find(byte_addr);
    if (ol == nullptr) ol = l1i_[owner].find(byte_addr);
    if (ol != nullptr) {
      if (ol->state == CoherenceState::kModified) {
        if (cfg_.l2.protocol == CoherenceProtocol::kMoesi) {
          ol->state = CoherenceState::kOwned;  // keeps ownership (MOESI)
          entry->sharers |= (1u << owner);
        } else {
          // MESI: the dirty owner writes its data back to the home L2 and
          // drops to S; later readers are served two-hop from the L2.
          ol->state = CoherenceState::kShared;
          entry->sharers |= (1u << owner);
          entry->owner = kNoCore;
          entry->state = CoherenceState::kModified;  // L2 holds dirty data
          (void)mesh_.route(owner, home, cfg_.noc.data_msg_bytes, fwd_at);
          ++writebacks;
        }
      } else if (ol->state == CoherenceState::kExclusive) {
        ol->state = CoherenceState::kShared;
        entry->sharers |= (1u << owner);
        entry->owner = kNoCore;
      }
      // kOwned stays kOwned (MOESI only).
      if (ol->state == CoherenceState::kOwned) entry->sharers |= (1u << owner);
    } else {
      // The owner's copy vanished via a concurrent recall; the L2 copy is
      // still valid, treat as an L2 supply.
      entry->owner = kNoCore;
    }
    entry->sharers |= (1u << req);
    fill_state = CoherenceState::kShared;
  } else {
    data_at = mesh_.route(home, req, cfg_.noc.data_msg_bytes, t);
    if (entry->owner == req) {
      // Requester already owns it (I-fetch after write, or L1I/L1D split
      // artifacts); no state change needed.
      fill_state = CoherenceState::kShared;
    } else if (entry->sharers == 0) {
      fill_state = CoherenceState::kExclusive;  // unshared -> grant E
      entry->owner = req;
    } else {
      fill_state = CoherenceState::kShared;
      entry->sharers |= (1u << req);
    }
  }

  Cache& target = instruction ? l1i_[req] : l1d_[req];
  if (target.find(byte_addr) == nullptr) {
    Cache::Line victim = target.insert(byte_addr, fill_state);
    // Silent S eviction (the directory keeps a stale sharer bit; a later
    // invalidation to it is a harmless no-op); owner states must notify.
    if (is_owner_state(victim.state)) {
      put_owner(req, victim.tag, is_dirty(victim.state), data_at);
    }
  }
  out.done = data_at;
  return out;
}

DirOutcome DirectoryController::get_modified(CoreId req, Addr line, Cycle at) {
  ++getm_requests;
  DirOutcome out;
  const CoreId home = home_of(line);
  Cycle t = at + cfg_.l2.hit_latency;
  Cache::Line* entry = ensure_resident(line, t, out);
  const Addr byte_addr = line * l2_banks_[home].line_bytes();

  // Data delivery (or upgrade grant if the requester already has a copy).
  Cache& req_l1 = l1d_[req];
  Cache::Line* mine = req_l1.find(byte_addr);
  Cycle data_at;
  if (entry->owner != kNoCore && entry->owner != req) {
    ++owner_forwards;
    out.data_from_owner = true;
    const CoreId owner = entry->owner;
    const Cycle fwd_at = mesh_.route(home, owner, cfg_.noc.ctrl_msg_bytes, t);
    data_at = mesh_.route(owner, req, cfg_.noc.data_msg_bytes, fwd_at);
    drop_l1(l1i_, l1d_, owner, byte_addr);
    ++invalidations_sent;
  } else if (mine != nullptr) {
    // Upgrade: only the directory's grant message is needed.
    data_at = mesh_.route(home, req, cfg_.noc.ctrl_msg_bytes, t);
  } else {
    data_at = mesh_.route(home, req, cfg_.noc.data_msg_bytes, t);
  }

  // Invalidate all other copies; acks are collected at the requester.
  const Cycle acks_at = invalidate_copies(entry, line, req, req, t, out);

  entry->owner = req;
  entry->sharers = (1u << req);
  entry->state = CoherenceState::kModified;  // L2 copy is now stale-tracked

  mine = req_l1.find(byte_addr);
  if (mine != nullptr) {
    mine->state = CoherenceState::kModified;
  } else {
    Cache::Line victim = req_l1.insert(byte_addr, CoherenceState::kModified);
    if (is_owner_state(victim.state)) {
      put_owner(req, victim.tag, is_dirty(victim.state), data_at);
    }
  }

  out.done = std::max(data_at, acks_at);
  return out;
}

void DirectoryController::warm(CoreId c, Addr line, bool instruction,
                               bool exclusive) {
  const CoreId home = home_of(line);
  Cache& bank = l2_banks_[home];
  const Addr byte_addr = line * bank.line_bytes();
  Cache::Line* entry = bank.find(byte_addr);
  if (entry == nullptr) {
    Cache::Line victim = bank.insert(byte_addr, CoherenceState::kExclusive);
    if (victim.state != CoherenceState::kInvalid) {
      // Zero-time recall: silently drop any L1 copies of the victim.
      const Addr victim_byte = victim.tag * bank.line_bytes();
      std::uint32_t copies = victim.sharers;
      if (victim.owner != kNoCore) copies |= (1u << victim.owner);
      for (CoreId i = 0; i < num_cores_; ++i) {
        if (copies & (1u << i)) drop_l1(l1i_, l1d_, i, victim_byte);
      }
    }
    entry = bank.find(byte_addr);
  }
  if (c == kNoCore) return;
  Cache& l1 = instruction ? l1i_[c] : l1d_[c];
  if (l1.find(byte_addr) != nullptr) return;
  const CoherenceState st =
      exclusive ? CoherenceState::kExclusive : CoherenceState::kShared;
  Cache::Line victim = l1.insert(byte_addr, st);
  if (victim.state != CoherenceState::kInvalid) {
    // Keep the directory consistent for the displaced warm line.
    Cache::Line* ventry =
        l2_banks_[home_of(victim.tag)].find(victim.tag * l1.line_bytes());
    if (ventry != nullptr) {
      if (ventry->owner == c) ventry->owner = kNoCore;
      ventry->sharers &= ~(1u << c);
    }
  }
  if (exclusive) {
    entry->owner = c;
  } else {
    entry->sharers |= (1u << c);
  }
}

void DirectoryController::put_owner(CoreId from, Addr line, bool dirty,
                                    Cycle at) {
  const CoreId home = home_of(line);
  Cache& bank = l2_banks_[home];
  const Addr byte_addr = line * bank.line_bytes();
  // The notification travels to the home bank but is off any critical path.
  (void)mesh_.route(from, home,
                    dirty ? cfg_.noc.data_msg_bytes : cfg_.noc.ctrl_msg_bytes,
                    at);
  Cache::Line* entry = bank.find(byte_addr);
  if (entry == nullptr) return;  // already recalled/evicted: stale PutM
  if (entry->owner == from) entry->owner = kNoCore;
  entry->sharers &= ~(1u << from);
  if (dirty) {
    entry->state = CoherenceState::kModified;
    ++writebacks;
  }
}

}  // namespace ptb

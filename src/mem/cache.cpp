#include "mem/cache.hpp"

#include <bit>

#include "common/assert.hpp"
#include "stats/stats.hpp"

namespace ptb {

const char* coherence_state_name(CoherenceState s) {
  switch (s) {
    case CoherenceState::kInvalid: return "I";
    case CoherenceState::kShared: return "S";
    case CoherenceState::kExclusive: return "E";
    case CoherenceState::kOwned: return "O";
    case CoherenceState::kModified: return "M";
  }
  return "?";
}

Cache::Cache(std::uint32_t size_bytes, std::uint32_t assoc,
             std::uint32_t line_bytes, std::uint32_t index_shift)
    : assoc_(assoc), index_shift_(index_shift) {
  PTB_ASSERT(std::has_single_bit(line_bytes), "line size must be power of 2");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
  PTB_ASSERT(assoc > 0, "associativity must be positive");
  const std::uint32_t lines = size_bytes / line_bytes;
  PTB_ASSERT(lines % assoc == 0, "size/assoc/line mismatch");
  sets_ = lines / assoc;
  PTB_ASSERT(std::has_single_bit(sets_), "set count must be power of 2");
  lines_.resize(static_cast<std::size_t>(sets_) * assoc_);
}

Cache::Line* Cache::find(Addr a) {
  const Addr line = line_of(a);
  Line* base = &lines_[static_cast<std::size_t>(set_of(line)) * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Line& l = base[w];
    if (l.state != CoherenceState::kInvalid && l.tag == line) {
      l.lru = ++lru_clock_;
      return &l;
    }
  }
  return nullptr;
}

const Cache::Line* Cache::find(Addr a) const {
  const Addr line = line_of(a);
  const Line* base = &lines_[static_cast<std::size_t>(set_of(line)) * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    const Line& l = base[w];
    if (l.state != CoherenceState::kInvalid && l.tag == line) return &l;
  }
  return nullptr;
}

Cache::Line Cache::insert(Addr a, CoherenceState st) {
  PTB_ASSERT(st != CoherenceState::kInvalid, "cannot insert an invalid line");
  const Addr line = line_of(a);
  Line* base = &lines_[static_cast<std::size_t>(set_of(line)) * assoc_];
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Line& l = base[w];
    PTB_ASSERT(l.state == CoherenceState::kInvalid || l.tag != line,
               "insert of already-resident line");
    if (l.state == CoherenceState::kInvalid) {
      victim = &l;
      break;
    }
    if (l.lru < victim->lru) victim = &l;
  }
  Line evicted = *victim;
  if (evicted.state != CoherenceState::kInvalid) ++evictions;
  victim->tag = line;
  victim->state = st;
  victim->lru = ++lru_clock_;
  victim->sharers = 0;
  victim->owner = kNoCore;
  return evicted;
}

void Cache::invalidate(Addr a) {
  if (Line* l = find(a)) l->state = CoherenceState::kInvalid;
}

void Cache::register_stats(StatsRegistry& reg,
                           const std::string& prefix) const {
  reg.counter(prefix + ".hits", "cache hits", &hits);
  reg.counter(prefix + ".misses", "cache misses", &misses);
  reg.counter(prefix + ".evictions", "valid lines evicted", &evictions);
}

}  // namespace ptb

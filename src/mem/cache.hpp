// Set-associative cache array with per-line MOESI state and LRU replacement.
// Used for L1I, L1D and the L2 banks (the L2 additionally embeds directory
// metadata, see mem/directory.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

class StatsRegistry;

enum class CoherenceState : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kOwned,
  kModified,
};

const char* coherence_state_name(CoherenceState s);

/// True for states that hold a dirty copy that must be written back.
inline bool is_dirty(CoherenceState s) {
  return s == CoherenceState::kModified || s == CoherenceState::kOwned;
}

/// True for states allowed to supply data / act as owner.
inline bool is_owner_state(CoherenceState s) {
  return s == CoherenceState::kModified || s == CoherenceState::kOwned ||
         s == CoherenceState::kExclusive;
}

class Cache {
 public:
  /// `size_bytes` / `assoc` / `line_bytes` as in CacheConfig.
  /// `index_shift` drops low line-address bits from the set index — banked
  /// caches (the L2) pass log2(num_banks) so the bank-selection bits do not
  /// also constrain the set, which would waste 1/num_banks of the sets.
  Cache(std::uint32_t size_bytes, std::uint32_t assoc,
        std::uint32_t line_bytes, std::uint32_t index_shift = 0);

  struct Line {
    Addr tag = 0;                  // line address (addr >> line_shift)
    CoherenceState state = CoherenceState::kInvalid;
    std::uint64_t lru = 0;         // larger = more recently used
    // Directory metadata (used only by L2 banks).
    std::uint32_t sharers = 0;     // bitmask of cores with an S copy
    CoreId owner = kNoCore;        // core holding M/E/O, if any
  };

  /// Line address (tag) for a byte address.
  Addr line_of(Addr a) const { return a >> line_shift_; }

  /// Find a resident line; nullptr on miss. Touches LRU when found.
  Line* find(Addr a);
  const Line* find(Addr a) const;

  /// Insert a line (must not be resident); returns the evicted line by value
  /// (state kInvalid if the set had a free way).
  Line insert(Addr a, CoherenceState st);

  /// Drop a line if resident.
  void invalidate(Addr a);

  std::uint32_t num_sets() const { return sets_; }
  std::uint32_t assoc() const { return assoc_; }
  std::uint32_t line_bytes() const { return 1u << line_shift_; }

  /// All backing lines (set-major); for invariant checks and tests.
  const std::vector<Line>& all_lines() const { return lines_; }

  // Statistics.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  /// Registers hit/miss/eviction counters under `prefix` (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support: every line (fields individually — the struct has
  // padding), the LRU clock and the counters. Geometry is configuration and
  // must match (validated against the line count).
  void save_state(ByteWriter& w) const {
    w.u64(lines_.size());
    for (const Line& l : lines_) {
      w.u64(l.tag);
      w.u8(static_cast<std::uint8_t>(l.state));
      w.u64(l.lru);
      w.u32(l.sharers);
      w.u32(l.owner);
    }
    w.u64(lru_clock_);
    w.u64(hits);
    w.u64(misses);
    w.u64(evictions);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != lines_.size()) {
      r.fail();
      return;
    }
    for (Line& l : lines_) {
      l.tag = r.u64();
      const std::uint8_t s = r.u8();
      if (s > static_cast<std::uint8_t>(CoherenceState::kModified)) {
        r.fail();
        return;
      }
      l.state = static_cast<CoherenceState>(s);
      l.lru = r.u64();
      l.sharers = r.u32();
      l.owner = r.u32();
    }
    lru_clock_ = r.u64();
    hits = r.u64();
    misses = r.u64();
    evictions = r.u64();
  }

 private:
  std::uint32_t set_of(Addr line) const {
    if (index_shift_ != 0) {
      // Banked caches (the L2) use hashed set indexing (as real last-level
      // caches do) so region bases aligned to large powers of two — whose
      // distinguishing bits sit above the plain index — do not alias into
      // the same few sets.
      const Addr x = (line >> index_shift_) * 0x9e3779b97f4a7c15ull;
      return static_cast<std::uint32_t>(x >> 32) & (sets_ - 1);
    }
    return static_cast<std::uint32_t>(line) & (sets_ - 1);
  }

  std::uint32_t sets_;
  std::uint32_t assoc_;
  std::uint32_t line_shift_;
  std::uint32_t index_shift_;
  std::uint64_t lru_clock_ = 0;
  std::vector<Line> lines_;  // sets_ * assoc_, set-major
};

}  // namespace ptb

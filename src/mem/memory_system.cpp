#include "mem/memory_system.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "stats/stats.hpp"

namespace ptb {

namespace {
constexpr std::uint64_t kBusyPruneInterval = 1 << 16;
}

MemorySystem::MemorySystem(const SimConfig& cfg, Mesh& mesh)
    : cfg_(cfg), mesh_(mesh), busy_prune_countdown_(kBusyPruneInterval),
      mshr_outstanding_(cfg.num_cores) {
  l1i_.reserve(cfg.num_cores);
  l1d_.reserve(cfg.num_cores);
  for (std::uint32_t i = 0; i < cfg.num_cores; ++i) {
    l1i_.emplace_back(cfg.l1i.size_bytes, cfg.l1i.assoc, cfg.l1i.line_bytes);
    l1d_.emplace_back(cfg.l1d.size_bytes, cfg.l1d.assoc, cfg.l1d.line_bytes);
  }
  dir_ = std::make_unique<DirectoryController>(cfg, mesh, l1i_, l1d_);
}

Cycle MemorySystem::mshr_admit(CoreId c, Cycle start) {
  auto& out = mshr_outstanding_[c];
  // Drop completed entries.
  std::erase_if(out, [start](Cycle d) { return d <= start; });
  while (out.size() >= cfg_.l1d.mshrs) {
    const auto it = std::min_element(out.begin(), out.end());
    start = std::max(start, *it);
    out.erase(it);
  }
  return start;
}

void MemorySystem::mshr_record(CoreId c, Cycle done) {
  mshr_outstanding_[c].push_back(done);
}

MemAccessResult MemorySystem::access(CoreId c, MemAccessType type, Addr addr,
                                     Cycle now) {
  const bool instruction = (type == MemAccessType::kIFetch);
  Cache& l1 = instruction ? l1i_[c] : l1d_[c];
  const Addr line = l1.line_of(addr);

  switch (type) {
    case MemAccessType::kIFetch: ++ifetches; break;
    case MemAccessType::kLoad: ++loads; break;
    case MemAccessType::kStore: ++stores; break;
    case MemAccessType::kAtomicRmw: ++atomics; break;
  }

  // Serialize behind any in-flight transaction on this line.
  Cycle start = now;
  if (auto it = line_busy_.find(line); it != line_busy_.end()) {
    if (it->second > start) start = it->second;
  }
  if (--busy_prune_countdown_ == 0) {
    busy_prune_countdown_ = kBusyPruneInterval;
    std::erase_if(line_busy_, [now](const auto& kv) {
      return kv.second <= now;
    });
  }

  const std::uint32_t hit_lat =
      instruction ? cfg_.l1i.hit_latency : cfg_.l1d.hit_latency;

  // --- L1 lookup ---
  const bool needs_write =
      (type == MemAccessType::kStore || type == MemAccessType::kAtomicRmw);
  if (Cache::Line* hit = l1.find(addr)) {
    if (!needs_write) {
      ++l1.hits;
      return {start + hit_lat, true};
    }
    if (hit->state == CoherenceState::kModified) {
      ++l1.hits;
      return {start + hit_lat, true};
    }
    if (hit->state == CoherenceState::kExclusive) {
      hit->state = CoherenceState::kModified;  // silent E->M upgrade
      ++l1.hits;
      return {start + hit_lat, true};
    }
    // S or O: needs an upgrade through the directory (falls through).
  }
  ++l1.misses;
  ++l1_misses;

  // --- miss path ---
  start = mshr_admit(c, start);
  const Cycle req_sent = start + hit_lat;  // detect the miss first
  const Cycle at_home = mesh_.route(c, dir_->home_of(line),
                                    cfg_.noc.ctrl_msg_bytes, req_sent);
  DirOutcome out;
  if (needs_write) {
    out = dir_->get_modified(c, line, at_home);
  } else {
    out = dir_->get_shared(c, line, at_home, instruction);
  }
  const Cycle done = out.done + 1;  // L1 fill
  // Only ownership-changing transactions serialize the line: GetM (and
  // upgrades) must be exclusive, while concurrent GetS requests stream
  // read copies from the home bank in parallel (as directory protocols
  // pipeline them). RMW atomicity only needs the GetM ordering.
  if (needs_write) line_busy_[line] = done;
  mshr_record(c, done);
  return {done, false};
}

void MemorySystem::check_swmr() const {
  // For every line resident anywhere: if some core holds it M or E, no other
  // core may hold any valid copy.
  std::unordered_map<Addr, std::pair<int, int>> seen;  // line -> {me, valid}
  auto scan = [&](const Cache& cache) {
    for (const auto& l : cache.all_lines()) {
      if (l.state == CoherenceState::kInvalid) continue;
      auto& [me, valid] = seen[l.tag];
      if (l.state == CoherenceState::kModified ||
          l.state == CoherenceState::kExclusive) {
        ++me;
      }
      ++valid;
    }
  };
  for (const auto& c : l1i_) scan(c);
  for (const auto& c : l1d_) scan(c);
  // Audit-only scan: iteration order decides nothing a run reports — every
  // order checks the same per-line invariants, and a violation aborts.
  // ptb-lint: allow(unordered-iter)
  for (const auto& [line, counts] : seen) {
    const auto& [me, valid] = counts;
    PTB_ASSERT(me <= 1, "two cores hold the same line in M/E");
    PTB_ASSERT(me == 0 || valid == 1,
               "an M/E copy coexists with another valid copy");
  }
}

void MemorySystem::register_stats(StatsRegistry& reg,
                                  const std::string& prefix) const {
  reg.counter(prefix + ".loads", "data loads issued", &loads);
  reg.counter(prefix + ".stores", "data stores issued", &stores);
  reg.counter(prefix + ".atomics", "atomic RMWs issued", &atomics);
  reg.counter(prefix + ".ifetches", "instruction fetch accesses", &ifetches);
  reg.counter(prefix + ".l1_misses", "accesses missing all L1s", &l1_misses);
  for (std::size_t c = 0; c < l1i_.size(); ++c) {
    const std::string n = std::to_string(c);
    l1i_[c].register_stats(reg, prefix + ".l1i." + n);
    l1d_[c].register_stats(reg, prefix + ".l1d." + n);
  }
}

}  // namespace ptb

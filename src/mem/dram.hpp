// Main-memory timing model.
//
// Table 1 of the paper gives a flat 300-cycle memory latency, which is the
// default. The banked model refines it with channels, banks, row buffers
// and per-bank queuing — useful for the DRAM-sensitivity ablation and for
// workloads whose miss streams have row locality (or pathological bank
// conflicts) that a flat latency cannot express.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace ptb {

class DramModel {
 public:
  explicit DramModel(const MemConfig& cfg);

  /// Cycle at which the line's data is available at the memory controller,
  /// for a request arriving at `at`. Mutates bank state (row buffers,
  /// queues) when the banked model is enabled.
  Cycle access(Addr line, Cycle at);

  bool banked() const { return cfg_.banked; }

  // --- statistics (banked model only) ---
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t accesses = 0;

  // Checkpoint support: per-bank row-buffer/queue state + counters.
  void save_state(ByteWriter& w) const {
    w.u64(banks_.size());
    for (const Bank& b : banks_) {
      w.u64(b.open_row);
      w.u64(b.next_free);
    }
    w.u64(row_hits);
    w.u64(row_misses);
    w.u64(accesses);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != banks_.size()) {
      r.fail();
      return;
    }
    for (Bank& b : banks_) {
      b.open_row = r.u64();
      b.next_free = r.u64();
    }
    row_hits = r.u64();
    row_misses = r.u64();
    accesses = r.u64();
  }

 private:
  struct Bank {
    Addr open_row = static_cast<Addr>(-1);
    Cycle next_free = 0;
  };

  std::size_t bank_of(Addr line) const;
  Addr row_of(Addr line) const;

  MemConfig cfg_;
  std::vector<Bank> banks_;
};

}  // namespace ptb

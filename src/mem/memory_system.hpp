// Per-core L1 front end (L1I + L1D, MSHRs) over the MOESI directory and the
// mesh. This is the interface the core model calls for every memory micro-op
// and instruction fetch.
//
// Concurrency model: each access computes its complete timing at issue
// ("time-warp"), reserving mesh bandwidth along the way. A per-line
// busy-until map serializes transactions that touch the same line, which is
// what preserves coherence ordering (and makes atomic RMWs atomic: their
// completion order on one line equals their processing order).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "noc/mesh.hpp"

namespace ptb {

enum class MemAccessType : std::uint8_t {
  kIFetch = 0,
  kLoad,
  kStore,
  kAtomicRmw,
};

struct MemAccessResult {
  Cycle done = 0;    // cycle at which the access's value/permission is ready
  bool l1_hit = false;
};

class MemorySystem {
 public:
  MemorySystem(const SimConfig& cfg, Mesh& mesh);

  /// Performs one access for core `c` starting no earlier than `now`.
  MemAccessResult access(CoreId c, MemAccessType type, Addr addr, Cycle now);

  /// Hit-probe of core `c`'s own L1I for the sharded cycle loop's parallel
  /// fetch phase: touches only that L1I (hit counter + LRU, exactly what
  /// the hit path of access() does) and no shared structure, so distinct
  /// cores may probe concurrently. On a hit the caller counts the fetch
  /// (the aggregate `ifetches` counter is merged at the sequential point);
  /// on a miss the caller defers the access and replays it through
  /// access() at the sequential point, which then takes the full miss path.
  bool probe_ifetch(CoreId c, Addr pc) {
    Cache& l1 = l1i_[c];
    if (l1.find(pc) != nullptr) {
      ++l1.hits;
      return true;
    }
    return false;
  }

  Cache& l1i(CoreId c) { return l1i_[c]; }
  Cache& l1d(CoreId c) { return l1d_[c]; }
  const Cache& l1i(CoreId c) const { return l1i_[c]; }
  const Cache& l1d(CoreId c) const { return l1d_[c]; }
  DirectoryController& directory() { return *dir_; }
  const DirectoryController& directory() const { return *dir_; }

  /// Verifies the single-writer/multiple-reader invariant across all L1s.
  /// Aborts via PTB_ASSERT on violation. Test/debug hook; the richer
  /// non-aborting audit lives in audit/audit.hpp (check_coherence).
  void check_swmr() const;

  /// In-flight L1 misses for core `c` (may include completed entries not
  /// yet reaped; never exceeds CacheConfig::mshrs). Auditor/tests hook.
  std::size_t mshr_in_flight(CoreId c) const {
    return mshr_outstanding_[c].size();
  }

  // --- statistics (aggregate) ---
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t atomics = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t l1_misses = 0;

  /// Registers aggregate access counters under `prefix` plus every L1's
  /// hit/miss/eviction counters under `prefix`.l1i.N / .l1d.N (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support. line_busy_ is an unordered_map — it is serialized
  // in sorted-key order so equal logical state always produces equal bytes
  // (the byte-stability contract; cf. the ptb-lint unordered-iter checker).
  // ptb-lint: allow-begin(unordered-iter) — order is re-established by sort.
  void save_state(ByteWriter& w) const {
    w.u64(l1i_.size());
    for (const Cache& c : l1i_) c.save_state(w);
    for (const Cache& c : l1d_) c.save_state(w);
    dir_->save_state(w);
    std::vector<std::pair<Addr, Cycle>> busy(line_busy_.begin(),
                                             line_busy_.end());
    std::sort(busy.begin(), busy.end());
    w.u64(busy.size());
    for (const auto& [line, until] : busy) {
      w.u64(line);
      w.u64(until);
    }
    w.u64(busy_prune_countdown_);
    w.u64(mshr_outstanding_.size());
    for (const auto& q : mshr_outstanding_) {
      w.u64(q.size());
      for (const Cycle c : q) w.u64(c);
    }
    w.u64(loads);
    w.u64(stores);
    w.u64(atomics);
    w.u64(ifetches);
    w.u64(l1_misses);
  }
  // ptb-lint: allow-end
  void load_state(ByteReader& r) {
    if (r.u64() != l1i_.size()) {
      r.fail();
      return;
    }
    for (Cache& c : l1i_) c.load_state(r);
    for (Cache& c : l1d_) c.load_state(r);
    dir_->load_state(r);
    line_busy_.clear();
    const std::uint64_t nb = r.u64();
    if (nb > r.remaining() / 16) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < nb; ++i) {
      const Addr line = r.u64();
      const Cycle until = r.u64();
      line_busy_[line] = until;
    }
    busy_prune_countdown_ = r.u64();
    if (r.u64() != mshr_outstanding_.size()) {
      r.fail();
      return;
    }
    for (auto& q : mshr_outstanding_) {
      const std::uint64_t nq = r.u64();
      if (nq > r.remaining() / 8) {
        r.fail();
        return;
      }
      q.assign(nq, 0);
      for (Cycle& c : q) c = r.u64();
    }
    loads = r.u64();
    stores = r.u64();
    atomics = r.u64();
    ifetches = r.u64();
    l1_misses = r.u64();
  }

 private:
  Cycle mshr_admit(CoreId c, Cycle start);
  void mshr_record(CoreId c, Cycle done);

  const SimConfig& cfg_;
  Mesh& mesh_;
  std::vector<Cache> l1i_;
  std::vector<Cache> l1d_;
  std::unique_ptr<DirectoryController> dir_;
  std::unordered_map<Addr, Cycle> line_busy_;
  std::uint64_t busy_prune_countdown_;
  std::vector<std::vector<Cycle>> mshr_outstanding_;  // per core
};

}  // namespace ptb

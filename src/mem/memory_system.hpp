// Per-core L1 front end (L1I + L1D, MSHRs) over the MOESI directory and the
// mesh. This is the interface the core model calls for every memory micro-op
// and instruction fetch.
//
// Concurrency model: each access computes its complete timing at issue
// ("time-warp"), reserving mesh bandwidth along the way. A per-line
// busy-until map serializes transactions that touch the same line, which is
// what preserves coherence ordering (and makes atomic RMWs atomic: their
// completion order on one line equals their processing order).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "noc/mesh.hpp"

namespace ptb {

enum class MemAccessType : std::uint8_t {
  kIFetch = 0,
  kLoad,
  kStore,
  kAtomicRmw,
};

struct MemAccessResult {
  Cycle done = 0;    // cycle at which the access's value/permission is ready
  bool l1_hit = false;
};

class MemorySystem {
 public:
  MemorySystem(const SimConfig& cfg, Mesh& mesh);

  /// Performs one access for core `c` starting no earlier than `now`.
  MemAccessResult access(CoreId c, MemAccessType type, Addr addr, Cycle now);

  /// Hit-probe of core `c`'s own L1I for the sharded cycle loop's parallel
  /// fetch phase: touches only that L1I (hit counter + LRU, exactly what
  /// the hit path of access() does) and no shared structure, so distinct
  /// cores may probe concurrently. On a hit the caller counts the fetch
  /// (the aggregate `ifetches` counter is merged at the sequential point);
  /// on a miss the caller defers the access and replays it through
  /// access() at the sequential point, which then takes the full miss path.
  bool probe_ifetch(CoreId c, Addr pc) {
    Cache& l1 = l1i_[c];
    if (l1.find(pc) != nullptr) {
      ++l1.hits;
      return true;
    }
    return false;
  }

  Cache& l1i(CoreId c) { return l1i_[c]; }
  Cache& l1d(CoreId c) { return l1d_[c]; }
  const Cache& l1i(CoreId c) const { return l1i_[c]; }
  const Cache& l1d(CoreId c) const { return l1d_[c]; }
  DirectoryController& directory() { return *dir_; }
  const DirectoryController& directory() const { return *dir_; }

  /// Verifies the single-writer/multiple-reader invariant across all L1s.
  /// Aborts via PTB_ASSERT on violation. Test/debug hook; the richer
  /// non-aborting audit lives in audit/audit.hpp (check_coherence).
  void check_swmr() const;

  /// In-flight L1 misses for core `c` (may include completed entries not
  /// yet reaped; never exceeds CacheConfig::mshrs). Auditor/tests hook.
  std::size_t mshr_in_flight(CoreId c) const {
    return mshr_outstanding_[c].size();
  }

  // --- statistics (aggregate) ---
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t atomics = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t l1_misses = 0;

  /// Registers aggregate access counters under `prefix` plus every L1's
  /// hit/miss/eviction counters under `prefix`.l1i.N / .l1d.N (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

 private:
  Cycle mshr_admit(CoreId c, Cycle start);
  void mshr_record(CoreId c, Cycle done);

  const SimConfig& cfg_;
  Mesh& mesh_;
  std::vector<Cache> l1i_;
  std::vector<Cache> l1d_;
  std::unique_ptr<DirectoryController> dir_;
  std::unordered_map<Addr, Cycle> line_busy_;
  std::uint64_t busy_prune_countdown_;
  std::vector<std::vector<Cycle>> mshr_outstanding_;  // per core
};

}  // namespace ptb

#include "mem/dram.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ptb {

DramModel::DramModel(const MemConfig& cfg)
    : cfg_(cfg),
      banks_(static_cast<std::size_t>(cfg.channels) * cfg.banks_per_channel) {
  PTB_ASSERT(!banks_.empty(), "DRAM needs at least one bank");
}

std::size_t DramModel::bank_of(Addr line) const {
  // Interleave consecutive lines across channels, then banks — the usual
  // controller mapping that spreads streams.
  return static_cast<std::size_t>(line) % banks_.size();
}

Addr DramModel::row_of(Addr line) const {
  const Addr lines_per_row = cfg_.row_bytes / 64;
  return (line / banks_.size()) / lines_per_row;
}

Cycle DramModel::access(Addr line, Cycle at) {
  ++accesses;
  if (!cfg_.banked) return at + cfg_.dram_latency;

  Bank& bank = banks_[bank_of(line)];
  const Addr row = row_of(line);
  const Cycle start = std::max(at + cfg_.t_bus, bank.next_free);
  Cycle latency;
  if (bank.open_row == row) {
    ++row_hits;
    latency = cfg_.t_cas;
  } else {
    ++row_misses;
    latency = cfg_.t_pre + cfg_.t_act + cfg_.t_cas;
    bank.open_row = row;
  }
  const Cycle done = start + latency;
  bank.next_free = done;  // closed until the column access finishes
  return done + cfg_.t_bus;
}

}  // namespace ptb

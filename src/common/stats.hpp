// Statistics primitives used by the power/energy accounting and the
// experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bytes.hpp"

namespace ptb {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStat{}; }

  // Checkpoint support (sim/checkpoint): the raw accumulator words, so a
  // restored stat continues Welford's recurrence bit-exactly.
  void save_state(ByteWriter& w) const {
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
  }
  void load_state(ByteReader& r) {
    n_ = r.u64();
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  /// Sum of all recorded samples (pre-clamping), for mean/exposition.
  double sum() const { return sum_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bucket_lo(std::size_t i) const;
  /// Value below which the given fraction of samples fall (bucket-granular).
  double percentile(double p) const;

  // Checkpoint support: counts only — the [lo, hi) geometry is configuration
  // and must match at restore (the caller re-creates the histogram from the
  // same config before loading).
  void save_state(ByteWriter& w) const {
    w.u64_vec(counts_);
    w.u64(total_);
    w.f64(sum_);
  }
  void load_state(ByteReader& r) {
    std::vector<std::uint64_t> c;
    r.u64_vec(c);
    if (c.size() != counts_.size()) {
      r.fail();
      return;
    }
    counts_ = std::move(c);
    total_ = r.u64();
    sum_ = r.f64();
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Decimating time-series recorder: keeps at most `max_points` samples by
/// doubling the decimation stride when full. Used for per-cycle power traces
/// (Figure 6) without unbounded memory.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_points = 1 << 14);

  void add(double t, double v);
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return times_.size(); }

  // Checkpoint support: decimation state + points, so a restored series
  // keeps decimating exactly where the saved run left off.
  void save_state(ByteWriter& w) const {
    w.u64(max_points_);
    w.u64(stride_);
    w.u64(seen_);
    w.f64_vec(times_);
    w.f64_vec(values_);
  }
  void load_state(ByteReader& r) {
    max_points_ = static_cast<std::size_t>(r.u64());
    stride_ = r.u64();
    seen_ = r.u64();
    r.f64_vec(times_);
    r.f64_vec(values_);
    if (times_.size() != values_.size()) r.fail();
  }

 private:
  std::size_t max_points_;
  std::uint64_t stride_ = 1;
  std::uint64_t seen_ = 0;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace ptb

// Statistics primitives used by the power/energy accounting and the
// experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ptb {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  /// Sum of all recorded samples (pre-clamping), for mean/exposition.
  double sum() const { return sum_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bucket_lo(std::size_t i) const;
  /// Value below which the given fraction of samples fall (bucket-granular).
  double percentile(double p) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Decimating time-series recorder: keeps at most `max_points` samples by
/// doubling the decimation stride when full. Used for per-cycle power traces
/// (Figure 6) without unbounded memory.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_points = 1 << 14);

  void add(double t, double v);
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return times_.size(); }

 private:
  std::size_t max_points_;
  std::uint64_t stride_ = 1;
  std::uint64_t seen_ = 0;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace ptb

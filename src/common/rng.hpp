// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator (instruction mixes, memory
// address streams, branch outcomes, workload imbalance) is drawn from one of
// these generators, seeded from the experiment seed, so whole-CMP runs are
// bit-reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace ptb {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality generator for the hot paths.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // tiny modulo bias of a 64-bit multiply is irrelevant for a simulator.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool chance(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Checkpoint support: the four state words are the entire generator.
  void save_state(ByteWriter& w) const {
    for (const std::uint64_t s : s_) w.u64(s);
  }
  void load_state(ByteReader& r) {
    for (auto& s : s_) s = r.u64();
  }

  /// Approximately normal (Irwin-Hall of 4 uniforms), mean 0, std 1.
  double next_gaussian() {
    double acc = 0.0;
    for (int i = 0; i < 4; ++i) acc += next_double();
    // Sum of 4 U(0,1): mean 2, var 4/12 -> std = sqrt(1/3)*2 ... use exact:
    // var = 4 * (1/12) = 1/3; std = 0.57735.
    return (acc - 2.0) / 0.5773502691896258;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ptb

#include "common/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace ptb {

std::string format_double(double v, int precision) {
  // Delegates to the locale-pinned path: a host that setlocale()s must not
  // change summary/CSV bytes (they are diffed across machines).
  return format_fixed(v, precision);
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PTB_ASSERT(!header_.empty(), "table needs at least one column");
}

std::size_t Table::add_row() {
  rows_.emplace_back(header_.size());
  return rows_.size() - 1;
}

void Table::set(std::size_t row, std::size_t col, std::string value) {
  PTB_ASSERTF(row < rows_.size() && col < header_.size(),
              "cell (%zu, %zu) out of range (%zu x %zu table)", row, col,
              rows_.size(), header_.size());
  rows_[row][col] = std::move(value);
}

void Table::set(std::size_t row, std::size_t col, double value,
                int precision) {
  set(row, col, format_double(value, precision));
}

void Table::set(std::size_t row, std::size_t col, std::int64_t value) {
  set(row, col, std::to_string(value));
}

void Table::add_row(std::vector<std::string> cells) {
  PTB_ASSERTF(cells.size() == header_.size(),
              "row has %zu cells, table has %zu columns", cells.size(),
              header_.size());
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  PTB_ASSERTF(row < rows_.size() && col < header_.size(),
              "cell (%zu, %zu) out of range (%zu x %zu table)", row, col,
              rows_.size(), header_.size());
  return rows_[row][col];
}

std::string Table::to_text(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Right-align numerics-ish columns, left-align the first column.
      if (c == 0) {
        out << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      } else {
        out << std::string(width[c] - cells[c].size(), ' ') << cells[c];
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::fputs(to_text(title).c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace ptb

// Clang Thread Safety Analysis vocabulary for the concurrency layer, plus
// the two primitives the annotations need to bite on:
//
//   - ptb::Mutex / ptb::MutexLock: std::mutex with a capability identity.
//     libstdc++'s std::mutex carries no capability attributes, so
//     `clang++ -Wthread-safety` cannot see through std::lock_guard /
//     std::unique_lock; the thin wrappers below re-expose lock/unlock with
//     ACQUIRE/RELEASE attributes, which is all the analysis needs to prove
//     every PTB_GUARDED_BY member is only touched under its mutex. The
//     wrappers compile to the exact same code (the annotations are
//     attributes, not behavior).
//
//   - ptb::ThreadRole / ptb::ScopedThreadRole: a *role capability* (the
//     Clang TSA "role" idiom) for contracts that are about which phase of
//     the phase-split cycle loop is executing, not about a lock. The
//     determinism contract (DESIGN.md "Threading model & determinism
//     contract") says some functions — trace stage_flush, deferred-memory
//     replay, stats registration — may only run at a cycle's *sequential
//     point*, on the orchestrating thread. Holding g_sequential_point is
//     the compile-time form of that sentence: annotate the function
//     PTB_REQUIRES(g_sequential_point) and only code that acquired a
//     ScopedThreadRole (the cycle loop's sequential phases, or a test that
//     deliberately plays the orchestrator) can call it. A lambda body is
//     analyzed as its own function, so code inside the parallel-region
//     shard job does NOT inherit the role from the enclosing run() — a
//     stage_flush() call from the shard job is a compile error under
//     clang, which is exactly the bug class TSan needs a lucky schedule to
//     catch. Roles carry no runtime state; acquiring one costs nothing.
//
// On GCC (this repo's primary toolchain) every macro expands to nothing
// and the wrappers are plain std::mutex pass-throughs; the analysis runs
// in the CI clang job (`-Wthread-safety -Werror`) and on any clang host.
//
// Annotation reference:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define PTB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PTB_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

// A type that acts as a capability (a mutex, or a role).
#define PTB_CAPABILITY(x) PTB_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (std::lock_guard shape).
#define PTB_SCOPED_CAPABILITY PTB_THREAD_ANNOTATION(scoped_lockable)

// Data members: may only be read/written while holding `x`.
#define PTB_GUARDED_BY(x) PTB_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the *pointee* is protected by `x` (the pointer itself
// may be read freely).
#define PTB_PT_GUARDED_BY(x) PTB_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: caller must hold the capability / must not hold it.
#define PTB_REQUIRES(...) \
  PTB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PTB_REQUIRES_SHARED(...) \
  PTB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PTB_EXCLUDES(...) PTB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release capabilities.
#define PTB_ACQUIRE(...) \
  PTB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PTB_ACQUIRE_SHARED(...) \
  PTB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PTB_RELEASE(...) \
  PTB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PTB_RELEASE_SHARED(...) \
  PTB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PTB_TRY_ACQUIRE(...) \
  PTB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Returns a reference to the mutex guarding the returned/parameter data.
#define PTB_RETURN_CAPABILITY(x) PTB_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch; use only with a comment saying why the analysis is wrong.
#define PTB_NO_THREAD_SAFETY_ANALYSIS \
  PTB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ptb {

/// std::mutex with a capability identity for -Wthread-safety. Identical
/// layout and cost; annotate protected members with PTB_GUARDED_BY(mu_).
class PTB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PTB_ACQUIRE() { mu_.lock(); }
  void unlock() PTB_RELEASE() { mu_.unlock(); }
  bool try_lock() PTB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over ptb::Mutex. Also a BasicLockable (lock/unlock), so
/// std::condition_variable_any can drop and re-take it around a wait —
/// the analysis does not see through the wait (it is system-header code),
/// but the net capability state is unchanged, so the accounting stays
/// correct. Mid-scope unlock()/lock() (the RunPool worker pattern) is
/// tracked explicitly.
class PTB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PTB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PTB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() PTB_ACQUIRE() { mu_.lock(); }
  void unlock() PTB_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// A zero-size role capability (see header comment). Declare one inline
/// global per role; functions restricted to the role take
/// PTB_REQUIRES(role) and the code that legitimately *is* that role
/// acquires a ScopedThreadRole.
class PTB_CAPABILITY("role") ThreadRole {
 public:
  constexpr ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  // Roles are assertions, not locks: "acquiring" only informs the
  // analysis. Multiple threads may hold distinct logical instances of the
  // same role object (each CmpSimulator::run() is the sequential point of
  // *its own* cycle loop); the analysis is per-function, so this is sound.
  void acquire() PTB_ACQUIRE() {}
  void release() PTB_RELEASE() {}
};

/// RAII role acquisition (no runtime effect).
class PTB_SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole& role) PTB_ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~ScopedThreadRole() PTB_RELEASE() { role_.release(); }

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  ThreadRole& role_;
};

/// The sequential-point role of the phase-split cycle loop: held by the
/// orchestrating thread of a CmpSimulator::run() outside the parallel
/// shard region (DESIGN.md phase diagram). Functions that mutate
/// barrier-synchronized state — trace stage flush, stats registration,
/// sample capture — require it.
inline ThreadRole g_sequential_point;

}  // namespace ptb

// Generic JSON document model with a strict recursive-descent parser and a
// canonical writer — the shared substrate for every JSON interchange surface
// that must *read* documents (the serve request bodies, the disk run-cache
// artifacts). Producers that only ever write (stats/dump.cpp, reporting.cpp)
// keep their hand-rolled emitters; this module exists for the consumers.
//
// Strictness contract (same spirit as StatsDump::parse_json): the whole
// input must be one JSON value plus trailing whitespace, no comments, no
// trailing commas, objects keep insertion order (never hash order — parsed
// documents feed deterministic output paths). parse() never throws; a
// malformed document returns false with a position-carrying error message.
//
// Numbers keep their raw source text alongside the double value so 64-bit
// integers round-trip exactly (u64() re-parses the raw text; a double can
// only hold 53 bits).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ptb::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  const std::string& as_string() const { return str_; }
  /// Raw source spelling of a number ("42", "0.5", "1e-3").
  const std::string& number_raw() const { return str_; }

  /// Exact unsigned integer: true iff the raw spelling is a plain
  /// non-negative integer that fits in 64 bits.
  bool as_u64(std::uint64_t& out) const;
  /// Exact u32 (via as_u64 with a range check).
  bool as_u32(std::uint32_t& out) const;

  const std::vector<Value>& array() const { return array_; }
  /// Members in source order.
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }
  /// First member with this key; null when absent. O(n) — documents here
  /// are small (configs, artifacts), never hot-path data.
  const Value* find(std::string_view key) const;

  // --- construction (for writers/tests) ---
  static Value null();
  static Value boolean(bool b);
  static Value number(double v);
  static Value string(std::string s);
  static Value array_value(std::vector<Value> items);
  static Value object(std::vector<std::pair<std::string, Value>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;  // string payload, or raw number text
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;

  friend class Parser;
};

/// Strict whole-input parse; on failure returns false and `err` carries
/// "offset N: reason". `out` is untouched on failure.
bool parse(std::string_view text, Value& out, std::string& err);

/// JSON string-literal escaping (quotes, backslash, control characters).
std::string escape(std::string_view s);

}  // namespace ptb::json

// ASCII table / CSV rendering used by the benchmark harness to print the
// paper's tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace ptb {

/// Column-aligned text table with an optional CSV dump. Cells are strings;
/// helpers format doubles with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begins a new row; returns its index.
  std::size_t add_row();
  void set(std::size_t row, std::size_t col, std::string value);
  void set(std::size_t row, std::size_t col, double value, int precision = 2);
  void set(std::size_t row, std::size_t col, std::int64_t value);

  /// Convenience: append a full row of preformatted cells.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::string& header(std::size_t col) const { return header_[col]; }
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Render with aligned columns, header rule, and a title line.
  std::string to_text(const std::string& title = "") const;
  std::string to_csv() const;

  /// Print `to_text` to stdout.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double like "12.34" / "-3.10".
std::string format_double(double v, int precision);

}  // namespace ptb

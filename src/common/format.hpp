// Locale-pinned number formatting. printf-family float formatting honors
// LC_NUMERIC's decimal separator, so a host application that calls
// setlocale() would silently change every dumped number ("12,34" instead of
// "12.34") and break cross-machine diffs of summaries, stats dumps and JSON
// documents. These helpers are the single formatting path for all exported
// floats: they format via snprintf and then pin the decimal separator back
// to '.', so output bytes are identical under any locale.
#pragma once

#include <cstdio>
#include <string>

namespace ptb {

namespace detail {
/// In a printf "%f"/"%g" rendering, the only locale-dependent byte is the
/// decimal separator; everything else is digits, sign, or exponent markers.
/// Pin any separator byte back to '.'.
inline void pin_decimal_point(char* buf) {
  for (char* p = buf; *p != '\0'; ++p) {
    const char c = *p;
    const bool invariant = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                           c == 'e' || c == 'E' || c == '.' || c == 'i' ||
                           c == 'n' || c == 'f' || c == 'a';  // inf / nan
    if (!invariant) *p = '.';
  }
}
}  // namespace detail

/// Fixed-precision rendering: "12.34" / "-3.10". Locale-independent.
inline std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  detail::pin_decimal_point(buf);
  return buf;
}

/// Round-trippable shortest-ish rendering (%.17g) for machine-readable
/// dumps (JSON, stats). Locale-independent.
inline std::string format_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  detail::pin_decimal_point(buf);
  return buf;
}

}  // namespace ptb

// Simulated-machine configuration. Defaults reproduce Table 1 of the paper:
//
//   32 nm, 3 GHz, 0.9 V, 128-entry ROB + 64-entry LSQ, 4-wide decode/issue,
//   6 IntAlu / 2 IntMult / 4 FpAlu / 4 FpMult, 14-stage pipeline,
//   64 KB 16-bit-history gshare, MOESI, 300-cycle memory,
//   64 KB 2-way 1-cycle L1I/L1D, 1 MB/core 4-way 12-cycle unified L2,
//   2D mesh, 4-cycle links, 4-byte flits, 1 flit/cycle links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace ptb {

struct CoreConfig {
  std::uint32_t rob_entries = 128;
  std::uint32_t lsq_entries = 64;
  std::uint32_t fetch_width = 4;   // "decode width" in Table 1
  std::uint32_t issue_width = 4;
  std::uint32_t commit_width = 4;
  std::uint32_t pipeline_stages = 14;  // front-end refill on flush
  std::uint32_t int_alu = 6;
  std::uint32_t int_mult = 2;
  std::uint32_t fp_alu = 4;
  std::uint32_t fp_mult = 4;
  std::uint32_t l1d_ports = 2;

  // Branch predictor: gshare, 64 KB of 2-bit counters, 16-bit history.
  std::uint32_t bp_history_bits = 16;
  std::uint32_t bp_table_bytes = 64 * 1024;
};

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t assoc = 2;
  std::uint32_t line_bytes = 64;
  std::uint32_t hit_latency = 1;
  std::uint32_t mshrs = 16;
};

/// Coherence protocol variant. The paper's Table 1 uses MOESI (a dirty
/// owner keeps supplying readers from the O state); the MESI variant
/// writes dirty lines back to the L2 on the first read-share instead —
/// kept for the protocol ablation.
enum class CoherenceProtocol : std::uint8_t { kMoesi = 0, kMesi };

struct L2Config {
  std::uint32_t size_bytes_per_core = 1024 * 1024;
  std::uint32_t assoc = 4;
  std::uint32_t line_bytes = 64;
  std::uint32_t hit_latency = 12;
  CoherenceProtocol protocol = CoherenceProtocol::kMoesi;
};

struct NocConfig {
  std::uint32_t link_latency = 4;   // cycles per hop
  std::uint32_t flit_bytes = 4;
  std::uint32_t link_flits_per_cycle = 1;
  std::uint32_t ctrl_msg_bytes = 8;   // request / ack message size
  std::uint32_t data_msg_bytes = 72;  // 64B line + header
};

struct MemConfig {
  std::uint32_t dram_latency = 300;  // cycles (flat model, Table 1)

  // Optional banked DRAM refinement (see mem/dram.hpp). Timings are in core
  // cycles at 3 GHz and calibrated so a row miss ~= the flat 300 cycles.
  bool banked = false;
  std::uint32_t channels = 2;
  std::uint32_t banks_per_channel = 8;
  std::uint32_t row_bytes = 4096;
  std::uint32_t t_pre = 80;   // precharge
  std::uint32_t t_act = 80;   // activate (row open)
  std::uint32_t t_cas = 80;   // column access
  std::uint32_t t_bus = 30;   // controller/bus hop each way
};

/// Power model constants. The absolute scale is arbitrary (results are
/// normalized); the *relative* structure follows the paper's accounting.
struct PowerConfig {
  // Energy of one instruction staying in the ROB for one cycle (the paper's
  // power-token unit, Section III.B). The variable residency component is
  // small relative to the base (execution) component, so memory-stalled
  // cores sit well below busily executing ones.
  double residency_token = 0.12;

  // Reference-peak calibration (see analytic_peak_core_power): sustainable
  // fraction of the fetch width and typical ROB occupancy fraction.
  double peak_fetch_frac = 0.58;
  double peak_rob_frac = 0.30;

  // Mean base tokens per instruction class (stand-in for the SPECint2000
  // profiling pass of the paper; see power/power_model.cpp). Expressed in
  // power-token units, i.e. multiples of one ROB-residency cycle: execution
  // (the base) dominates, residency is the smaller variable component, so a
  // memory-stalled core with a full ROB sits *below* a busily fetching one —
  // the unbalance PTB exploits (Section III.E.1).
  double base_int_alu = 24.0;
  double base_int_mult = 56.0;
  double base_fp_alu = 64.0;
  double base_fp_mult = 96.0;
  double base_load = 40.0;
  double base_store = 36.0;
  double base_branch = 20.0;
  double base_atomic = 48.0;
  double base_nop = 6.0;

  // Jitter applied per static instruction when synthesizing the profiling
  // population the k-means grouping runs over (fraction of the mean).
  double base_jitter = 0.15;

  std::uint32_t kmeans_groups = 8;    // paper: 8 groups -> <1% error
  std::uint32_t ptht_entries = 8192;  // paper: 8K-entry PTHT

  // Per-core overheads (tokens/cycle at nominal V/f).
  double leakage_per_core = 10.0;      // always paid
  double clock_gated_dynamic = 3.0;    // residual dynamic power when gated
  double uncore_per_core = 6.0;        // L2 bank + NoC share, always paid
  double ptht_overhead_frac = 0.01;    // PTHT power: +1% of core dynamic
  double ptb_wire_overhead_frac = 0.01;  // PTB wires: +1% (paper, XPower)

  // Voltage/frequency scaling reference.
  double vdd_nominal = 0.9;
  double freq_nominal_ghz = 3.0;
};

/// Thermal lumped-RC model (per core) used for the temperature-stability
/// extension experiment.
struct ThermalConfig {
  double ambient_c = 45.0;
  double r_thermal = 0.8;      // degC per (token/cycle) at steady state
  double tau_cycles = 20000;   // RC time constant in cycles
};

/// Runtime level of the invariant auditor (src/audit): kOff disables every
/// check, kCheap runs the O(num_cores) per-cycle checks (token conservation,
/// pipeline sanity, accounting), kFull additionally scans the cache/directory
/// arrays for coherence legality at a fixed interval. Auditing never changes
/// simulation results; it only observes (and aborts on a violated invariant).
enum class AuditLevel : std::uint8_t { kOff = 0, kCheap, kFull };

inline const char* audit_level_name(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kCheap: return "cheap";
    case AuditLevel::kFull: return "full";
  }
  return "?";
}

/// Parses "off" / "cheap" / "full"; returns false on anything else.
inline bool parse_audit_level(std::string_view s, AuditLevel& out) {
  if (s == "off") out = AuditLevel::kOff;
  else if (s == "cheap") out = AuditLevel::kCheap;
  else if (s == "full") out = AuditLevel::kFull;
  else return false;
  return true;
}

/// Event-trace recorder knobs (src/trace). Which categories are recorded is
/// a per-run choice (RunOptions::trace_categories); these size the recorder.
/// Like AuditLevel, tracing only observes a run — TraceConfig is excluded
/// from the config fingerprint.
struct TraceConfig {
  /// Per-category ring capacity in events; the ring overwrites the oldest
  /// events and counts the drops.
  std::size_t buffer_events = std::size_t{1} << 16;
  /// Budget-deficit sampling period in cycles (kBudgetSample decimation).
  Cycle budget_sample_period = 64;
};

enum class TechniqueKind : std::uint8_t {
  kNone = 0,    // base case: no power control (normalization reference)
  kDvfs,        // 5-mode voltage+frequency scaling
  kDfs,         // frequency-only scaling
  kTwoLevel,    // DVFS + microarchitectural spike removal (IPDPS'09 hybrid)
  // Prior-art energy baselines (no budget enforcement; Section II.C):
  kThriftyBarrier,  // sleep at predicted-long barrier waits (HPCA'04 [13])
  kMeetingPoints,   // DVFS-delay non-critical threads (PACT'08 [11])
};

enum class PtbPolicy : std::uint8_t {
  kToAll = 0,  // split spare tokens among all over-budget cores
  kToOne,      // all spare tokens to the single neediest core
  kDynamic,    // lock-spin -> ToOne, barrier-spin -> ToAll
};

struct DvfsConfig {
  // The paper's five (VDD%, F%) modes.
  // {100,100} {95,95} {90,90} {90,75} {90,65}
  std::uint32_t window_cycles = 256;    // control window
  double up_hysteresis = 0.95;          // step up when avg < budget*this
  // Kim et al. HPCA'08 fast regulator: 30-50 mV/ns. At 3 GHz one cycle is
  // 0.333 ns -> ~10-16 mV/cycle; we use 12 mV/cycle.
  double mv_per_cycle = 12.0;
};

struct PtbConfig {
  bool enabled = false;
  PtbPolicy policy = PtbPolicy::kToAll;
  // Token-wire round-trip latency in cycles; 0 = derive from core count as
  // in the paper (4 cores: 1+1+1 = 3; 8: 2+1+2 = 5; 16: 4+2+4 = 10).
  std::uint32_t wire_latency_override = 0;
  std::uint32_t token_wire_bits = 4;  // 4 wires each way -> values 0..15
  // Relaxed-accuracy threshold (Section IV.C): local power-saving triggers
  // only when instantaneous power exceeds budget*(1+relax_threshold).
  double relax_threshold = 0.0;
  // Use ground-truth spin classification for the dynamic selector (paper's
  // reported configuration) or the power-pattern heuristic.
  bool dynamic_uses_ground_truth = true;

  // ToAll residual redistribution. Section III.D only says "equally
  // distribute the extra tokens": with a single equal-share pass (the
  // literal reading, and the default) a core whose deficit is smaller than
  // its share leaves a residual that evaporates even while other cores in
  // the same cycle still have deficit. When set, the residual is re-split
  // among the still-needy cores for a bounded number of extra rounds
  // (core/balancer.cpp) before anything evaporates.
  bool toall_redistribute = false;

  // The paper's stated future work (Section IV.C): use PTB's power-pattern
  // spin detection to duty-cycle-gate spinning cores for extra energy
  // savings. Detected spinners fetch only 2 cycles out of every
  // `spin_gate_period`; the first burst of real work after wake-up lifts
  // the power signature and releases the gate.
  bool gate_spinners = false;
  std::uint32_t spin_gate_period = 64;

  // Scalability (Section III.E.2): 0 = one monolithic balancer; otherwise
  // partition the CMP into clusters of this many cores, each with its own
  // replicated load-balancer at the small-cluster wire latency.
  std::uint32_t cluster_size = 0;
};

struct SimConfig {
  std::uint32_t num_cores = 16;
  CoreConfig core{};
  CacheConfig l1i{};
  CacheConfig l1d{};
  L2Config l2{};
  NocConfig noc{};
  MemConfig mem{};
  PowerConfig power{};
  ThermalConfig thermal{};
  DvfsConfig dvfs{};
  PtbConfig ptb{};

  TechniqueKind technique = TechniqueKind::kNone;

  /// Global power budget as a fraction of the analytic peak power
  /// (paper evaluates 0.5).
  double budget_fraction = 0.5;

  std::uint64_t seed = 1;
  Cycle max_cycles = 2'000'000;  // safety stop

  /// Functional (zero-time) cache warmup before the timed run, skipping the
  /// cold-start DRAM phase (standard architectural-simulation practice).
  bool functional_warmup = true;

  /// Invariant-auditor level (src/audit). Deliberately excluded from the
  /// config fingerprint: auditing observes the run, it never changes it.
  AuditLevel audit_level = AuditLevel::kOff;

  /// Event-trace recorder sizing (src/trace); excluded from the config
  /// fingerprint for the same reason as audit_level.
  TraceConfig trace{};

  /// Sampled simulation (SMARTS-style systematic sampling): when both are
  /// non-zero and sample_detail < sample_period, each period of
  /// `sample_period` cycles runs its first `sample_detail` cycles in full
  /// detail and fast-forwards the rest (cores/memory/NoC/sync still tick
  /// exactly; the power, control and accounting planes are skipped with
  /// enforcement ratios frozen). Energy results are extrapolated by the
  /// duty cycle at the end of the run. Sampling *changes results* (it is
  /// an approximation), so both knobs fold into the config fingerprint
  /// when active; EXPERIMENTS.md quantifies the error. 0/0 (default) =
  /// every cycle detailed.
  Cycle sample_detail = 0;
  Cycle sample_period = 0;

  /// Host worker threads for the intra-run cycle loop (sim/shard_pool):
  /// modeled cores are sharded across this many host threads that advance
  /// in lockstep epochs. Results are byte-identical for every value — the
  /// serial path (<= 1) runs the exact same phase sequence on one thread —
  /// so, like audit_level and trace, this knob is excluded from the config
  /// fingerprint. Clamped to num_cores.
  std::uint32_t sim_threads = 1;

  /// Mesh dimensions derived from num_cores (squarest factorization).
  std::uint32_t mesh_width() const;
  std::uint32_t mesh_height() const;
};

inline std::uint32_t SimConfig::mesh_width() const {
  std::uint32_t w = 1;
  for (std::uint32_t i = 1; i * i <= num_cores; ++i)
    if (num_cores % i == 0) w = i;
  return num_cores / w;  // the wider dimension
}

inline std::uint32_t SimConfig::mesh_height() const {
  return num_cores / mesh_width();
}

}  // namespace ptb

// Fundamental scalar types shared by every subsystem.
#pragma once

#include <cstdint>

namespace ptb {

/// Global simulation cycle count (nominal 3 GHz clock).
using Cycle = std::uint64_t;

/// Core / node index inside the CMP (0 .. num_cores-1).
using CoreId = std::uint32_t;

/// Physical byte address in the simulated machine.
using Addr = std::uint64_t;

/// Program counter of a simulated micro-op.
using Pc = std::uint64_t;

/// Power measured in power-tokens (see power/tokens.hpp for the unit).
/// Stored as double; all accounting paths avoid accumulating rounding error
/// by summing per-cycle quantities once.
using Tokens = double;

/// Sentinel for "no core".
inline constexpr CoreId kNoCore = static_cast<CoreId>(-1);

/// Sentinel cycle meaning "never" / "not scheduled".
inline constexpr Cycle kNeverCycle = static_cast<Cycle>(-1);

}  // namespace ptb

#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ptb::json {

namespace {

bool plain_uint(std::string_view raw) {
  if (raw.empty()) return false;
  for (const char c : raw) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

bool Value::as_u64(std::uint64_t& out) const {
  if (kind_ != Kind::kNumber || !plain_uint(str_)) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(str_.c_str(), &end, 10);
  if (errno != 0 || end != str_.c_str() + str_.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool Value::as_u32(std::uint32_t& out) const {
  std::uint64_t v = 0;
  if (!as_u64(v) || v > 0xffffffffull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Value::null() { return Value{}; }

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  v.str_ = buf;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array_value(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Parser: strict recursive descent over a string_view cursor. Depth is
// bounded so a hostile request body ("[[[[[...") cannot blow the stack —
// this parser fronts a network service.
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view text, std::string& err) : s_(text), err_(err) {}

  bool run(Value& out) {
    skip_ws();
    Value v;
    if (!value(v, 0)) return false;
    skip_ws();
    if (i_ != s_.size()) return fail("trailing garbage after document");
    out = std::move(v);
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& why) {
    err_ = "offset " + std::to_string(i_) + ": " + why;
    return false;
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(i_, word.size()) != word) return false;
    i_ += word.size();
    return true;
  }

  bool value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (i_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[i_];
    switch (c) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"': {
        std::string str;
        if (!string_token(str)) return false;
        out = Value::string(std::move(str));
        return true;
      }
      case 't':
        if (!literal("true")) return fail("bad literal");
        out = Value::boolean(true);
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out = Value::boolean(false);
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out = Value::null();
        return true;
      default: return number(out);
    }
  }

  bool object(Value& out, int depth) {
    ++i_;  // '{'
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      out = std::move(v);
      return true;
    }
    while (true) {
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != '"') return fail("expected key string");
      std::string key;
      if (!string_token(key)) return false;
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ':') return fail("expected ':'");
      ++i_;
      skip_ws();
      Value member;
      if (!value(member, depth + 1)) return false;
      v.members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (i_ >= s_.size()) return fail("unterminated object");
      if (s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (s_[i_] == '}') {
        ++i_;
        out = std::move(v);
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Value& out, int depth) {
    ++i_;  // '['
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      out = std::move(v);
      return true;
    }
    while (true) {
      skip_ws();
      Value item;
      if (!value(item, depth + 1)) return false;
      v.array_.push_back(std::move(item));
      skip_ws();
      if (i_ >= s_.size()) return fail("unterminated array");
      if (s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (s_[i_] == ']') {
        ++i_;
        out = std::move(v);
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool hex4(std::uint32_t& out) {
    if (i_ + 4 > s_.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s_[i_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape digit");
    }
    out = v;
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  bool string_token(std::string& out) {
    ++i_;  // '"'
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') {
        ++i_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++i_;
        continue;
      }
      ++i_;
      if (i_ >= s_.size()) return fail("truncated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          // Surrogate pairs are passed through as two 3-byte sequences
          // (WTF-8); the documents this parser fronts never carry them.
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(Value& out) {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    const std::size_t digits0 = i_;
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
      ++i_;
    if (i_ == digits0) return fail("expected a value");
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      const std::size_t frac0 = i_;
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_])))
        ++i_;
      if (i_ == frac0) return fail("digits required after '.'");
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      const std::size_t exp0 = i_;
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_])))
        ++i_;
      if (i_ == exp0) return fail("digits required in exponent");
    }
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.str_.assign(s_.substr(start, i_ - start));
    v.num_ = std::strtod(v.str_.c_str(), nullptr);
    out = std::move(v);
    return true;
  }

  std::string_view s_;
  std::size_t i_ = 0;
  std::string& err_;
};

bool parse(std::string_view text, Value& out, std::string& err) {
  return Parser(text, err).run(out);
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace ptb::json

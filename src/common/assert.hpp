// Lightweight always-on assertion used to check simulator invariants.
//
// The simulator is deterministic; an invariant violation is always a bug, so
// these stay enabled in release builds (they are off the per-cycle fast path
// except where explicitly noted).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ptb::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "PTB_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}

}  // namespace ptb::detail

#define PTB_ASSERT(expr, msg)                                       \
  do {                                                              \
    if (!(expr)) [[unlikely]] {                                     \
      ::ptb::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                               \
  } while (false)

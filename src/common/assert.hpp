// Lightweight always-on assertion used to check simulator invariants.
//
// The simulator is deterministic; an invariant violation is always a bug, so
// these stay enabled in release builds (they are off the per-cycle fast path
// except where explicitly noted).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ptb::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "PTB_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] inline void
assert_failf(const char* expr, const char* file, int line, const char* fmt,
             ...) {
  std::fprintf(stderr, "PTB_ASSERT failed: %s\n  at %s:%d\n  ", expr, file,
               line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace ptb::detail

#define PTB_ASSERT(expr, msg)                                       \
  do {                                                              \
    if (!(expr)) [[unlikely]] {                                     \
      ::ptb::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                               \
  } while (false)

// Formatted variant: prints the offending values alongside the expression,
// e.g. PTB_ASSERTF(a == b, "arity mismatch: got %zu want %zu", a, b).
#define PTB_ASSERTF(expr, ...)                                            \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::ptb::detail::assert_failf(#expr, __FILE__, __LINE__, __VA_ARGS__); \
    }                                                                     \
  } while (false)

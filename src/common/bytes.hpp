// Byte-stable little-endian (de)serialization primitives, shared by the
// trace subsystem, the disk run-cache and the checkpoint plane.
//
// Contract (the trace-frame idiom, generalized):
//   - every field is written byte-by-byte, never as a struct (padding bytes
//     are indeterminate) — equal logical state serializes to equal bytes on
//     every platform;
//   - the reader is bounds-checked and never throws: any underflow or
//     implausible length flips a sticky ok() flag and yields zeros, so a
//     truncated or bit-flipped buffer is rejected, not UB (the checkpoint
//     fault-injection tests drive this path deliberately);
//   - vector lengths are sanity-checked against the bytes remaining before
//     allocating, so corrupt frames cannot trigger pathological allocations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptb {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }

  void u8_vec(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    for (const std::uint8_t x : v) u8(x);
  }
  void u32_vec(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (const std::uint32_t x : v) u32(x);
  }
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (const std::uint64_t x : v) u64(x);
  }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }

  std::size_t size() const { return out_.size(); }
  /// Overwrites 8 bytes at `pos` (section length back-patching).
  void patch_u64(std::size_t pos, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_[pos + static_cast<std::size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xff);
  }

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  float f32() { return std::bit_cast<float>(u32()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  /// Detaches the next `n` raw bytes (section payloads).
  std::string_view raw(std::size_t n) {
    if (!need(n)) return {};
    const std::string_view s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  void u8_vec(std::vector<std::uint8_t>& v) {
    const std::uint64_t n = len(1);
    v.assign(n, 0);
    for (auto& x : v) x = u8();
  }
  void u32_vec(std::vector<std::uint32_t>& v) {
    const std::uint64_t n = len(4);
    v.assign(n, 0);
    for (auto& x : v) x = u32();
  }
  void u64_vec(std::vector<std::uint64_t>& v) {
    const std::uint64_t n = len(8);
    v.assign(n, 0);
    for (auto& x : v) x = u64();
  }
  void f64_vec(std::vector<double>& v) {
    const std::uint64_t n = len(8);
    v.assign(n, 0.0);
    for (auto& x : v) x = f64();
  }

  bool ok() const { return ok_; }
  void fail() { ok_ = false; }
  std::size_t remaining() const { return buf_.size() - pos_; }
  bool empty() const { return pos_ == buf_.size(); }

 private:
  bool need(std::size_t n) {
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  /// Reads an element count and rejects counts that cannot fit in the
  /// remaining bytes at `elem_bytes` apiece (corrupt-length defense).
  std::uint64_t len(std::size_t elem_bytes) {
    const std::uint64_t n = u64();
    if (!ok_ || n > remaining() / elem_bytes) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ptb

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ptb {

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  PTB_ASSERT(hi > lo && buckets > 0, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  double idx = (x - lo_) / width_;
  std::size_t i;
  if (idx < 0.0) {
    i = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>(idx);
  }
  ++counts_[i];
  ++total_;
  sum_ += x;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::percentile(double p) const {
  PTB_ASSERT(p >= 0.0 && p <= 1.0, "percentile must be in [0,1]");
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= target) return bucket_lo(i) + width_;
  }
  return hi_;
}

TimeSeries::TimeSeries(std::size_t max_points) : max_points_(max_points) {
  PTB_ASSERT(max_points >= 2, "time series needs at least two points");
}

void TimeSeries::add(double t, double v) {
  if (seen_++ % stride_ != 0) return;
  if (times_.size() >= max_points_) {
    // Decimate in place: keep every other retained point, double the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < times_.size(); r += 2, ++w) {
      times_[w] = times_[r];
      values_[w] = values_[r];
    }
    times_.resize(w);
    values_.resize(w);
    stride_ *= 2;
    if ((seen_ - 1) % stride_ != 0) return;
  }
  times_.push_back(t);
  values_.push_back(v);
}

}  // namespace ptb

#include "noc/mesh.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/assert.hpp"
#include "stats/stats.hpp"

namespace ptb {

namespace {
constexpr std::uint32_t kDirPlusX = 0;
constexpr std::uint32_t kDirMinusX = 1;
constexpr std::uint32_t kDirPlusY = 2;
constexpr std::uint32_t kDirMinusY = 3;
}  // namespace

Mesh::Mesh(const NocConfig& cfg, std::uint32_t width, std::uint32_t height)
    : cfg_(cfg), width_(width), height_(height),
      link_free_(static_cast<std::size_t>(width) * height * 4, 0) {
  PTB_ASSERT(width >= 1 && height >= 1, "mesh must be non-empty");
  PTB_ASSERT(cfg.flit_bytes > 0 && cfg.link_flits_per_cycle > 0,
             "flit parameters must be positive");
}

std::uint32_t Mesh::hops(std::uint32_t from, std::uint32_t to) const {
  const int fx = static_cast<int>(from % width_);
  const int fy = static_cast<int>(from / width_);
  const int tx = static_cast<int>(to % width_);
  const int ty = static_cast<int>(to / width_);
  return static_cast<std::uint32_t>(std::abs(fx - tx) + std::abs(fy - ty));
}

std::uint32_t Mesh::flits_for(std::uint32_t bytes) const {
  return (bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
}

std::uint32_t Mesh::link_id(std::uint32_t node, std::uint32_t dir) const {
  return node * 4 + dir;
}

Cycle Mesh::unloaded_latency(std::uint32_t h, std::uint32_t bytes) const {
  const std::uint32_t ser =
      (flits_for(bytes) + cfg_.link_flits_per_cycle - 1) /
      cfg_.link_flits_per_cycle;
  // Wormhole/cut-through: the head pays link latency per hop; the body
  // serializes once behind it; +1 ejection.
  return static_cast<Cycle>(h) * cfg_.link_latency + ser + 1;
}

Cycle Mesh::route(std::uint32_t from, std::uint32_t to, std::uint32_t bytes,
                  Cycle now) {
  PTB_ASSERTF(from < nodes() && to < nodes(),
              "mesh endpoint out of range: %u -> %u on %u nodes", from, to,
              nodes());
  ++messages_;
  const std::uint32_t flits = flits_for(bytes);
  const std::uint32_t ser =
      (flits + cfg_.link_flits_per_cycle - 1) / cfg_.link_flits_per_cycle;

  if (from == to) return now + 1;  // local loopback: one-cycle ejection

  // Wormhole/cut-through routing: the head flit advances one link latency
  // per hop; each link stays busy for the serialization time behind it, so
  // contention queues messages but a message does not re-pay its own length
  // at every hop.
  std::uint32_t x = from % width_;
  std::uint32_t y = from / width_;
  const std::uint32_t tx = to % width_;
  const std::uint32_t ty = to / width_;
  Cycle head = now;
  while (x != tx || y != ty) {
    std::uint32_t dir;
    std::uint32_t node = y * width_ + x;
    if (x != tx) {
      dir = (tx > x) ? kDirPlusX : kDirMinusX;
      x = (tx > x) ? x + 1 : x - 1;
    } else {
      dir = (ty > y) ? kDirPlusY : kDirMinusY;
      y = (ty > y) ? y + 1 : y - 1;
    }
    Cycle& free = link_free_[link_id(node, dir)];
    const Cycle depart = std::max(head, free);
    free = depart + ser;  // the link is busy while the body streams through
    head = depart + cfg_.link_latency;
    flit_hops_ += flits;
  }
  return head + ser + 1;  // tail drains + ejection
}

std::uint64_t Mesh::drain_flit_hops() {
  const std::uint64_t delta = flit_hops_ - flit_hops_drained_;
  flit_hops_drained_ = flit_hops_;
  return delta;
}

void Mesh::register_stats(StatsRegistry& reg,
                          const std::string& prefix) const {
  reg.counter(prefix + ".messages", "messages routed", &messages_);
  reg.counter(prefix + ".flit_hops", "flit-hops traversed (activity energy)",
              &flit_hops_);
}

}  // namespace ptb

// 2D-mesh interconnect model (Table 1: 4-cycle links, 4-byte flits,
// 1 flit/cycle/link, XY dimension-order routing).
//
// The mesh is modeled at message granularity with per-link bandwidth
// reservation: a message serializes into flits, each traversed link is
// reserved for the serialization time, and queuing behind earlier messages
// is captured by the link's next-free cycle. This reproduces hop latency and
// contention without per-flit event simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

class StatsRegistry;

class Mesh {
 public:
  Mesh(const NocConfig& cfg, std::uint32_t width, std::uint32_t height);

  /// Number of nodes.
  std::uint32_t nodes() const { return width_ * height_; }

  /// Manhattan hop distance between two nodes.
  std::uint32_t hops(std::uint32_t from, std::uint32_t to) const;

  /// Routes a message of `bytes` from `from` to `to`, departing at `now`.
  /// Reserves bandwidth on every traversed link and returns the cycle at
  /// which the full message has arrived at `to`.
  Cycle route(std::uint32_t from, std::uint32_t to, std::uint32_t bytes,
              Cycle now);

  /// Unloaded latency for a message of `bytes` over `h` hops (no contention).
  Cycle unloaded_latency(std::uint32_t h, std::uint32_t bytes) const;

  // --- statistics ---
  std::uint64_t total_messages() const { return messages_; }
  std::uint64_t total_flit_hops() const { return flit_hops_; }
  /// Flit-hops injected since the last call (for activity-based NoC power).
  std::uint64_t drain_flit_hops();

  /// Registers message/flit-hop counters under `prefix` (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support: link reservations + counters.
  void save_state(ByteWriter& w) const {
    w.u64_vec(link_free_);
    w.u64(messages_);
    w.u64(flit_hops_);
    w.u64(flit_hops_drained_);
  }
  void load_state(ByteReader& r) {
    std::vector<Cycle> lf;
    r.u64_vec(lf);
    if (lf.size() != link_free_.size()) {
      r.fail();
      return;
    }
    link_free_ = std::move(lf);
    messages_ = r.u64();
    flit_hops_ = r.u64();
    flit_hops_drained_ = r.u64();
  }

 private:
  std::uint32_t flits_for(std::uint32_t bytes) const;
  // Directed link id for a hop from node n toward +x/-x/+y/-y.
  std::uint32_t link_id(std::uint32_t node, std::uint32_t dir) const;

  NocConfig cfg_;
  std::uint32_t width_;
  std::uint32_t height_;
  std::vector<Cycle> link_free_;  // per directed link
  std::uint64_t messages_ = 0;
  std::uint64_t flit_hops_ = 0;
  std::uint64_t flit_hops_drained_ = 0;
};

}  // namespace ptb

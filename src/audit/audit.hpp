// Dynamic invariant auditor (DIVA-style checker layer for the simulator).
//
// The simulator's headline results rest on invariants the normal code paths
// never re-verify end-to-end: the PTB balancer must conserve tokens (no
// policy may mint budget), the MOESI directory must keep single-writer/
// multiple-reader legality, the pipeline must commit in order within its
// structural bounds, and the energy/AoPB accounting must stay monotone and
// consistent. This module re-derives each of those properties from observed
// state every cycle, independently of the code being checked.
//
// Usage: the CMP cycle loop (sim/cmp.cpp) drives an InvariantAuditor when
// SimConfig::audit_level != kOff and the build has PTB_AUDIT enabled; each
// check_* entry point is also callable standalone, which is how the
// fault-injection tests (tests/audit) verify that every auditor class
// actually fires on corrupted state. Violations are collected in an
// AuditReport (never thrown or aborted here) so callers choose the failure
// policy: the CMP aborts via PTB_ASSERTF, tests inspect the report.
//
// Auditing is read-only: it never changes simulation results, only observes
// them. SimConfig::audit_level is therefore excluded from the config
// fingerprint (sim/reporting.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace ptb {

class Core;
class EnergyAccounting;
class MemorySystem;
class PowerEnforcer;
class PtbLoadBalancer;

/// The four audited invariant families (ISSUE 2 tentpole).
enum class AuditClass : std::uint8_t {
  kTokens = 0,   // PTB balancer token conservation / quantization
  kCoherence,    // MOESI legality, directory agreement, inclusion, MSHRs
  kPipeline,     // ROB/LSQ bounds, commit order, FU limits, DVFS legality
  kAccounting,   // energy/AoPB monotonicity and per-cycle consistency
  kCount,
};

inline constexpr std::uint32_t kNumAuditClasses =
    static_cast<std::uint32_t>(AuditClass::kCount);

const char* audit_class_name(AuditClass c);

struct AuditViolation {
  AuditClass cls = AuditClass::kTokens;
  Cycle cycle = 0;
  std::string message;
};

/// Violation collector: counts every violation per class and keeps the first
/// few full messages for diagnostics.
class AuditReport {
 public:
  void add(AuditClass cls, Cycle cycle, std::string message);

  std::uint64_t count(AuditClass cls) const {
    return counts_[static_cast<std::size_t>(cls)];
  }
  std::uint64_t total() const;
  bool clean() const { return total() == 0; }

  /// The first kMaxKept violations, in detection order.
  const std::vector<AuditViolation>& kept() const { return kept_; }

  /// One-line digest: per-class counts plus the first violation's message.
  std::string summary() const;

  static constexpr std::size_t kMaxKept = 16;

 private:
  std::uint64_t counts_[kNumAuditClasses] = {};
  std::vector<AuditViolation> kept_;
};

class InvariantAuditor {
 public:
  /// `cfg` is copied: the auditor must outlive any temporary config the
  /// tests construct it from.
  explicit InvariantAuditor(const SimConfig& cfg);

  // --- invariant checks ------------------------------------------------
  // Each entry point audits one invariant family against the live
  // component state and records violations in report(). All checks are
  // read-only and callable in any order; the CMP calls them at the end of
  // each simulated cycle, the fault-injection tests call them directly on
  // deliberately corrupted components.

  /// Token conservation for one balancer (the monolithic balancer, or one
  /// cluster of the clustered balancer). `eff_budget` points at the
  /// balancer's slice of the per-core effective budgets (length
  /// b.num_cores()). Verifies, at post-cycle state:
  ///   donated == granted + evaporated + in-flight   (nothing minted/lost)
  ///   in-flight == Σ outstanding donor debits       (wires mirror debits)
  ///   Σ eff_budget <= num_cores * local_budget + this cycle's grants
  ///     (no policy mints; the grant term covers the one cycle in which a
  ///     landing grant and the donor's recovered debit coexist)
  ///   per-cycle donations are multiples of the 4-bit wire quantum and
  ///   bounded by num_cores * (2^bits - 1) quanta    (quantization model)
  void check_balancer(Cycle now, const PtbLoadBalancer& b,
                      const double* eff_budget, std::size_t n);

  /// MOESI coherence legality over every L1 plus the directory state in the
  /// L2 banks: per line, at most one owner-state (M/E/O) core; an M/E core
  /// excludes every other core's copy; O only under the MOESI protocol;
  /// inclusion (valid L1 lines resident in the home L2 bank); directory
  /// agreement (a recorded owner actually holds an owner-state copy; every
  /// valid L1 copy is tracked as owner or sharer); per-core MSHR occupancy
  /// within CacheConfig::mshrs.
  void check_coherence(Cycle now, const MemorySystem& mem);

  /// Pipeline sanity for one core: ROB/LSQ occupancy within configured
  /// bounds, in-order retirement (head_seq advances only by committing),
  /// fetched == committed + in-flight, commit-width bound per tick, and
  /// no functional-unit class oversubscribed this cycle.
  void check_core(Cycle now, CoreId i, const Core& core);

  /// DVFS mode-transition legality for one core's enforcer: mode within the
  /// 5-mode table, single-step transitions counted exactly once, a stall
  /// window opened on every transition, and no core tick during a stall
  /// window (pass the core so tick progress can be cross-checked).
  void check_enforcer(Cycle now, CoreId i, const PowerEnforcer& enf,
                      const Core& core);

  /// Accounting consistency, called once per cycle after
  /// EnergyAccounting::record_cycle: energy/AoPB non-negative and monotone,
  /// this cycle's deltas exactly match the recorded power sample, and the
  /// AoPB delta equals max(0, power - budget).
  void check_accounting(Cycle now, const EnergyAccounting& acct,
                        double cycle_power);

  /// Sharded-cycle-loop merge consistency (sim/shard_pool.hpp): the
  /// sequential point's finished-core count must equal the number of
  /// per-core finished flags the shards set. (The companion per-core check —
  /// every deferred memory access drained by the replay — lives in
  /// check_core so it also covers single-core call sites.)
  void check_shard_merge(Cycle now, const std::uint8_t* finished,
                         std::uint32_t n, std::uint32_t finished_count);

  // --- results ---------------------------------------------------------
  const AuditReport& report() const { return report_; }
  bool clean() const { return report_.clean(); }
  /// Total number of check_* invocations (tests assert audits really ran).
  std::uint64_t checks_run() const { return checks_; }

  AuditLevel level() const { return cfg_.audit_level; }
  /// True when the (expensive) coherence scan is due this cycle under
  /// kFull; kCheap never scans.
  bool coherence_scan_due(Cycle now) const {
    return cfg_.audit_level == AuditLevel::kFull &&
           (now + 1) % kCoherenceScanInterval == 0;
  }

  /// Cache/directory scans are O(total cache lines); under kFull they run
  /// once per this many cycles (and once at end of run) instead of every
  /// cycle.
  static constexpr Cycle kCoherenceScanInterval = 4096;

 private:
  struct CoreSnap {
    bool valid = false;
    std::uint32_t rob = 0;
    std::uint32_t lsq = 0;
    std::uint64_t head_seq = 0;
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t ticks = 0;
  };
  struct EnforcerSnap {
    bool valid = false;
    std::uint32_t mode = 0;
    std::uint64_t transitions = 0;
    bool stall_next = false;   // enforcer predicted a stall for this cycle
    std::uint64_t ticks = 0;   // core ticks when the prediction was made
  };
  struct BalancerSnap {
    const void* key = nullptr;  // balancer identity (per-cluster history)
    double donated = 0.0;
    double granted = 0.0;
  };

  void violationf(AuditClass cls, Cycle now, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 4, 5)))
#endif
      ;

  SimConfig cfg_;
  AuditReport report_;
  std::uint64_t checks_ = 0;

  std::vector<CoreSnap> core_snap_;
  std::vector<EnforcerSnap> enf_snap_;
  std::vector<BalancerSnap> bal_snap_;
  bool acct_valid_ = false;
  double prev_energy_ = 0.0;
  double prev_aopb_ = 0.0;
};

}  // namespace ptb

#include "audit/audit.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "core/balancer.hpp"
#include "core/enforcer.hpp"
#include "cpu/core.hpp"
#include "dvfs/dvfs.hpp"
#include "mem/memory_system.hpp"
#include "power/energy_stats.hpp"

namespace ptb {

const char* audit_class_name(AuditClass c) {
  switch (c) {
    case AuditClass::kTokens: return "tokens";
    case AuditClass::kCoherence: return "coherence";
    case AuditClass::kPipeline: return "pipeline";
    case AuditClass::kAccounting: return "accounting";
    case AuditClass::kCount: break;
  }
  return "?";
}

void AuditReport::add(AuditClass cls, Cycle cycle, std::string message) {
  ++counts_[static_cast<std::size_t>(cls)];
  if (kept_.size() < kMaxKept) {
    kept_.push_back({cls, cycle, std::move(message)});
  }
}

std::uint64_t AuditReport::total() const {
  std::uint64_t t = 0;
  for (const std::uint64_t c : counts_) t += c;
  return t;
}

std::string AuditReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu violation(s): tokens=%llu coherence=%llu "
                "pipeline=%llu accounting=%llu",
                static_cast<unsigned long long>(total()),
                static_cast<unsigned long long>(count(AuditClass::kTokens)),
                static_cast<unsigned long long>(count(AuditClass::kCoherence)),
                static_cast<unsigned long long>(count(AuditClass::kPipeline)),
                static_cast<unsigned long long>(
                    count(AuditClass::kAccounting)));
  std::string out = buf;
  if (!kept_.empty()) {
    out += "; first: [";
    out += audit_class_name(kept_.front().cls);
    std::snprintf(buf, sizeof(buf), "@%llu] ",
                  static_cast<unsigned long long>(kept_.front().cycle));
    out += buf;
    out += kept_.front().message;
  }
  return out;
}

InvariantAuditor::InvariantAuditor(const SimConfig& cfg) : cfg_(cfg) {
  core_snap_.resize(cfg_.num_cores);
  enf_snap_.resize(cfg_.num_cores);
}

void InvariantAuditor::violationf(AuditClass cls, Cycle now, const char* fmt,
                                  ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  report_.add(cls, now, buf);
}

// ---------------------------------------------------------------------------
// Token conservation (AuditClass::kTokens)
// ---------------------------------------------------------------------------

void InvariantAuditor::check_balancer(Cycle now, const PtbLoadBalancer& b,
                                      const double* eff_budget,
                                      std::size_t n) {
  ++checks_;
  if (n != b.num_cores()) {
    violationf(AuditClass::kTokens, now,
               "eff_budget arity %zu != balancer cores %u", n,
               b.num_cores());
    return;
  }
  const double donated = b.tokens_donated;
  const double disposed = b.tokens_granted + b.tokens_evaporated;
  const double in_flight = b.in_flight_tokens();
  const double eps = 1e-6 * std::max(1.0, donated);

  // Conservation: every donated token is granted, evaporated, or still on
  // the wires. No policy may mint or destroy tokens.
  if (std::abs(donated - disposed - in_flight) > eps) {
    violationf(AuditClass::kTokens, now,
               "token conservation: donated %.9g != granted %.9g + "
               "evaporated %.9g + in-flight %.9g (drift %.3g)",
               donated, b.tokens_granted, b.tokens_evaporated, in_flight,
               donated - disposed - in_flight);
  }
  // The donors' outstanding budget debits must mirror the wires exactly:
  // a donated token tightens its donor's budget until the grant lands.
  if (std::abs(b.outstanding_total() - in_flight) > eps) {
    violationf(AuditClass::kTokens, now,
               "outstanding donor debits %.9g != in-flight tokens %.9g",
               b.outstanding_total(), in_flight);
  }
  const double local = b.local_budget();
  double eff_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    eff_sum += eff_budget[i];
    if (eff_budget[i] < -1e-9 * std::max(1.0, local)) {
      violationf(AuditClass::kTokens, now,
                 "core %zu effective budget %.9g is negative", i,
                 eff_budget[i]);
    }
  }

  BalancerSnap* snap = nullptr;
  for (auto& s : bal_snap_) {
    if (s.key == &b) snap = &s;
  }
  if (snap == nullptr) {
    bal_snap_.push_back({&b, 0.0, 0.0});
    snap = &bal_snap_.back();
  }
  const double delta = donated - snap->donated;
  const double granted_now = b.tokens_granted - snap->granted;

  // No minting: the effective budgets can never exceed the static local
  // shares plus this cycle's landing grants (a landing grant and its
  // donor's recovered debit legitimately coexist for exactly one cycle;
  // grants themselves come only out of prior donations).
  const double cap = static_cast<double>(n) * local + granted_now;
  if (eff_sum > cap + 1e-9 * std::max(1.0, cap)) {
    violationf(AuditClass::kTokens, now,
               "budget minted: sum(eff_budget) %.9g > %zu * local %.9g "
               "+ grants %.9g",
               eff_sum, n, local, granted_now);
  }

  // Wire quantization: this cycle's donations must be a whole number of
  // 4-bit wire quanta, at most (2^bits - 1) quanta per core.
  const double q = b.token_quantum();
  if (delta < -eps) {
    violationf(AuditClass::kTokens, now,
               "cumulative donations decreased by %.9g", -delta);
  } else if (q > 0.0) {
    const double max_cycle =
        static_cast<double>(n) * static_cast<double>(b.max_wire_count()) * q;
    if (delta > max_cycle + eps) {
      violationf(AuditClass::kTokens, now,
                 "donation burst %.9g exceeds wire capacity %.9g "
                 "(%zu cores x %u counts x quantum %.9g)",
                 delta, max_cycle, n, b.max_wire_count(), q);
    }
    const double k = std::round(delta / q);
    if (std::abs(delta - k * q) > 1e-6 * std::max(q, delta)) {
      violationf(AuditClass::kTokens, now,
                 "donation delta %.12g is not a multiple of the wire "
                 "quantum %.12g",
                 delta, q);
    }
  }
  snap->donated = donated;
  snap->granted = b.tokens_granted;
}

// ---------------------------------------------------------------------------
// Coherence legality (AuditClass::kCoherence)
// ---------------------------------------------------------------------------

void InvariantAuditor::check_coherence(Cycle now, const MemorySystem& mem) {
  ++checks_;
  struct LineView {
    std::uint32_t owners = 0;  // cores holding M/E/O
    std::uint32_t excl = 0;    // cores holding M/E
    std::uint32_t valid = 0;   // cores holding any valid copy
    std::uint32_t owned = 0;   // cores holding O
  };
  // std::map, not unordered: violation emission order must be
  // deterministic (repo determinism rule, scripts/lint.sh).
  std::map<Addr, LineView> lines;

  const std::uint32_t n = cfg_.num_cores;
  for (CoreId c = 0; c < n; ++c) {
    for (const Cache* l1 : {&mem.l1i(c), &mem.l1d(c)}) {
      for (const Cache::Line& l : l1->all_lines()) {
        if (l.state == CoherenceState::kInvalid) continue;
        LineView& v = lines[l.tag];
        v.valid |= (1u << c);
        switch (l.state) {
          case CoherenceState::kModified:
          case CoherenceState::kExclusive:
            v.excl |= (1u << c);
            v.owners |= (1u << c);
            break;
          case CoherenceState::kOwned:
            v.owned |= (1u << c);
            v.owners |= (1u << c);
            break;
          default:
            break;
        }
      }
    }
  }

  const DirectoryController& dir = mem.directory();
  const std::uint32_t line_bytes = cfg_.l1d.line_bytes;
  for (const auto& [line, v] : lines) {
    if (std::popcount(v.owners) > 1) {
      violationf(AuditClass::kCoherence, now,
                 "line 0x%llx has %d owner-state (M/E/O) cores, mask 0x%x",
                 static_cast<unsigned long long>(line),
                 std::popcount(v.owners), v.owners);
    }
    if (v.excl != 0 && v.valid != v.excl) {
      // An M/E copy must be the only valid copy CMP-wide (same-core L1I/L1D
      // duplicates are folded into one bit, so this is per-core SWMR).
      violationf(AuditClass::kCoherence, now,
                 "line 0x%llx is M/E at mask 0x%x but also valid at 0x%x",
                 static_cast<unsigned long long>(line), v.excl,
                 v.valid & ~v.excl);
    }
    if (v.owned != 0 && cfg_.l2.protocol == CoherenceProtocol::kMesi) {
      violationf(AuditClass::kCoherence, now,
                 "line 0x%llx in O state under the MESI protocol (mask 0x%x)",
                 static_cast<unsigned long long>(line), v.owned);
    }
    // Inclusion + directory tracking: the home L2 bank must hold the line
    // and record every core that has a copy (as owner or sharer; sharer
    // bits may be stale the other way because S evictions are silent).
    const CoreId home = dir.home_of(line);
    const Cache::Line* entry =
        dir.l2_bank(home).find(line * line_bytes);
    if (entry == nullptr || entry->state == CoherenceState::kInvalid) {
      violationf(AuditClass::kCoherence, now,
                 "inclusion: line 0x%llx valid in L1 mask 0x%x but not "
                 "resident in home L2 bank %u",
                 static_cast<unsigned long long>(line), v.valid, home);
      continue;
    }
    for (CoreId c = 0; c < n; ++c) {
      if (!(v.valid & (1u << c))) continue;
      const bool tracked =
          entry->owner == c || ((entry->sharers >> c) & 1u) != 0;
      if (!tracked) {
        violationf(AuditClass::kCoherence, now,
                   "directory: core %u holds line 0x%llx but home bank %u "
                   "tracks owner=%d sharers=0x%x",
                   c, static_cast<unsigned long long>(line), home,
                   entry->owner == kNoCore ? -1
                                           : static_cast<int>(entry->owner),
                   entry->sharers);
      }
    }
  }

  // Directory owner agreement: a recorded owner must actually hold an
  // owner-state copy (owner evictions are never silent).
  for (CoreId b = 0; b < n; ++b) {
    for (const Cache::Line& l : dir.l2_bank(b).all_lines()) {
      if (l.state == CoherenceState::kInvalid || l.owner == kNoCore) continue;
      const auto it = lines.find(l.tag);
      const bool holds =
          it != lines.end() && (it->second.owners & (1u << l.owner)) != 0;
      if (!holds) {
        violationf(AuditClass::kCoherence, now,
                   "directory: bank %u records core %u as owner of line "
                   "0x%llx but that core holds no M/E/O copy",
                   b, l.owner, static_cast<unsigned long long>(l.tag));
      }
    }
  }

  // MSHR bound: in-flight misses per core never exceed the configured MSHRs.
  for (CoreId c = 0; c < n; ++c) {
    const std::size_t used = mem.mshr_in_flight(c);
    if (used > cfg_.l1d.mshrs) {
      violationf(AuditClass::kCoherence, now,
                 "core %u has %zu MSHRs in flight (limit %u)", c, used,
                 cfg_.l1d.mshrs);
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline sanity (AuditClass::kPipeline)
// ---------------------------------------------------------------------------

void InvariantAuditor::check_core(Cycle now, CoreId i, const Core& core) {
  ++checks_;
  if (i >= core_snap_.size()) core_snap_.resize(i + 1);
  CoreSnap cur;
  cur.valid = true;
  cur.rob = core.rob_occupancy();
  cur.lsq = core.lsq_occupancy();
  cur.head_seq = core.head_seq();
  cur.committed = core.committed;
  cur.fetched = core.fetched;
  cur.ticks = core.ticks;

  if (cur.rob > cfg_.core.rob_entries) {
    violationf(AuditClass::kPipeline, now,
               "core %u ROB occupancy %u exceeds %u entries", i, cur.rob,
               cfg_.core.rob_entries);
  }
  if (cur.lsq > cfg_.core.lsq_entries) {
    violationf(AuditClass::kPipeline, now,
               "core %u LSQ occupancy %u exceeds %u entries", i, cur.lsq,
               cfg_.core.lsq_entries);
  }
  if (cur.lsq > cur.rob) {
    violationf(AuditClass::kPipeline, now,
               "core %u LSQ occupancy %u exceeds ROB occupancy %u", i,
               cur.lsq, cur.rob);
  }
  // In-order retirement: the ROB head advances exactly once per committed
  // op (there is no wrong-path dispatch to roll back).
  if (cur.head_seq != cur.committed) {
    violationf(AuditClass::kPipeline, now,
               "core %u ROB head seq %llu != committed %llu "
               "(out-of-order retirement)",
               i, static_cast<unsigned long long>(cur.head_seq),
               static_cast<unsigned long long>(cur.committed));
  }
  if (cur.fetched != cur.committed + cur.rob) {
    violationf(AuditClass::kPipeline, now,
               "core %u fetched %llu != committed %llu + in-flight %u", i,
               static_cast<unsigned long long>(cur.fetched),
               static_cast<unsigned long long>(cur.committed), cur.rob);
  }
  // Functional units: the issue stage may never oversubscribe a class.
  const FunctionalUnits& fus = core.fus();
  for (std::uint32_t c = 0; c < kNumOpClasses; ++c) {
    const OpClass cls = static_cast<OpClass>(c);
    if (fus.used(cls) > fus.limit(cls)) {
      violationf(AuditClass::kPipeline, now,
                 "core %u issued %u %s ops this cycle (limit %u)", i,
                 fus.used(cls), op_class_name(cls), fus.limit(cls));
    }
  }
  // Sharded cycle loop: the sequential memory point must have replayed
  // every access this core parked during the parallel phases.
  if (!core.deferred_drained()) {
    violationf(AuditClass::kPipeline, now,
               "core %u reached the audit point with undrained deferred "
               "memory accesses",
               i);
  }

  const CoreSnap& prev = core_snap_[i];
  if (prev.valid) {
    if (cur.head_seq < prev.head_seq || cur.committed < prev.committed ||
        cur.fetched < prev.fetched || cur.ticks < prev.ticks) {
      violationf(AuditClass::kPipeline, now,
                 "core %u progress counters moved backwards "
                 "(head %llu->%llu committed %llu->%llu)",
                 i, static_cast<unsigned long long>(prev.head_seq),
                 static_cast<unsigned long long>(cur.head_seq),
                 static_cast<unsigned long long>(prev.committed),
                 static_cast<unsigned long long>(cur.committed));
    } else {
      const std::uint64_t dc = cur.committed - prev.committed;
      const std::uint64_t dt = cur.ticks - prev.ticks;
      if (dc > dt * cfg_.core.commit_width) {
        violationf(AuditClass::kPipeline, now,
                   "core %u committed %llu ops in %llu ticks "
                   "(commit width %u)",
                   i, static_cast<unsigned long long>(dc),
                   static_cast<unsigned long long>(dt),
                   cfg_.core.commit_width);
      }
    }
  }
  core_snap_[i] = cur;
}

void InvariantAuditor::check_enforcer(Cycle now, CoreId i,
                                      const PowerEnforcer& enf,
                                      const Core& core) {
  ++checks_;
  if (i >= enf_snap_.size()) enf_snap_.resize(i + 1);
  const DvfsController& dvfs = enf.controller().dvfs();
  const std::uint32_t mode = dvfs.mode();

  if (mode >= kDvfsModes.size()) {
    violationf(AuditClass::kPipeline, now,
               "core %u DVFS mode %u outside the %zu-mode table", i, mode,
               kDvfsModes.size());
  }
  if (enf.vdd_ratio() <= 0.0 || enf.vdd_ratio() > 1.0 ||
      enf.freq_ratio() <= 0.0 || enf.freq_ratio() > 1.0) {
    violationf(AuditClass::kPipeline, now,
               "core %u V/f ratios out of range: vdd %.3f freq %.3f", i,
               enf.vdd_ratio(), enf.freq_ratio());
  }

  const EnforcerSnap& prev = enf_snap_[i];
  if (prev.valid && mode != prev.mode) {
    const std::uint32_t step =
        mode > prev.mode ? mode - prev.mode : prev.mode - mode;
    if (step != 1) {
      violationf(AuditClass::kPipeline, now,
                 "core %u DVFS mode jumped %u -> %u (single-step ladder)", i,
                 prev.mode, mode);
    }
    if (dvfs.transitions != prev.transitions + 1) {
      violationf(AuditClass::kPipeline, now,
                 "core %u DVFS mode changed %u -> %u but transitions "
                 "counter went %llu -> %llu",
                 i, prev.mode, mode,
                 static_cast<unsigned long long>(prev.transitions),
                 static_cast<unsigned long long>(dvfs.transitions));
    }
    // Every transition opens a stall window (>= 1 cycle PLL resync, more
    // when VDD swings at the regulator slew rate).
    if (dvfs.transition_until() < now + 1) {
      violationf(AuditClass::kPipeline, now,
                 "core %u DVFS transition %u -> %u opened no stall window "
                 "(transition_until %llu, now %llu)",
                 i, prev.mode, mode,
                 static_cast<unsigned long long>(dvfs.transition_until()),
                 static_cast<unsigned long long>(now));
    }
  }
  // A core predicted stalled for this cycle must not have ticked.
  if (prev.valid && prev.stall_next && core.ticks != prev.ticks) {
    violationf(AuditClass::kPipeline, now,
               "core %u ticked during a DVFS transition stall window "
               "(ticks %llu -> %llu)",
               i, static_cast<unsigned long long>(prev.ticks),
               static_cast<unsigned long long>(core.ticks));
  }

  EnforcerSnap cur;
  cur.valid = true;
  cur.mode = mode;
  cur.transitions = dvfs.transitions;
  cur.stall_next = enf.stalled(now + 1);
  cur.ticks = core.ticks;
  enf_snap_[i] = cur;
}

// ---------------------------------------------------------------------------
// Energy / AoPB accounting (AuditClass::kAccounting)
// ---------------------------------------------------------------------------

void InvariantAuditor::check_accounting(Cycle now,
                                        const EnergyAccounting& acct,
                                        double cycle_power) {
  ++checks_;
  const double energy = acct.energy();
  const double aopb = acct.aopb();
  const double budget = acct.budget();
  const double eps = 1e-9 * std::max(1.0, energy);

  if (!(budget > 0.0)) {
    violationf(AuditClass::kAccounting, now, "global budget %.9g is not > 0",
               budget);
  }
  if (cycle_power < -eps) {
    violationf(AuditClass::kAccounting, now, "cycle power %.9g is negative",
               cycle_power);
  }
  if (energy < -eps || aopb < -eps) {
    violationf(AuditClass::kAccounting, now,
               "negative accumulators: energy %.9g aopb %.9g", energy, aopb);
  }
  if (aopb > energy + eps) {
    violationf(AuditClass::kAccounting, now,
               "AoPB %.9g exceeds total energy %.9g", aopb, energy);
  }
  if (acct_valid_) {
    if (energy < prev_energy_ - eps || aopb < prev_aopb_ - eps) {
      violationf(AuditClass::kAccounting, now,
                 "accumulators moved backwards: energy %.9g -> %.9g, "
                 "aopb %.9g -> %.9g",
                 prev_energy_, energy, prev_aopb_, aopb);
    }
    const double de = energy - prev_energy_;
    if (std::abs(de - cycle_power) > eps) {
      violationf(AuditClass::kAccounting, now,
                 "energy delta %.9g != recorded cycle power %.9g", de,
                 cycle_power);
    }
    const double expect_aopb = std::max(0.0, cycle_power - budget);
    const double da = aopb - prev_aopb_;
    if (std::abs(da - expect_aopb) > eps) {
      violationf(AuditClass::kAccounting, now,
                 "AoPB delta %.9g != max(0, power %.9g - budget %.9g)", da,
                 cycle_power, budget);
    }
  }
  acct_valid_ = true;
  prev_energy_ = energy;
  prev_aopb_ = aopb;
}

void InvariantAuditor::check_shard_merge(Cycle now,
                                         const std::uint8_t* finished,
                                         std::uint32_t n,
                                         std::uint32_t finished_count) {
  ++checks_;
  std::uint32_t recount = 0;
  for (std::uint32_t i = 0; i < n; ++i) recount += finished[i] != 0 ? 1 : 0;
  if (recount != finished_count) {
    violationf(AuditClass::kAccounting, now,
               "sequential-point finished count %u disagrees with the "
               "per-core flags (%u of %u set)",
               finished_count, recount, n);
  }
}

}  // namespace ptb

#include "sim/trace_export.hpp"

#include <cstdio>
#include <sstream>

#include "common/table.hpp"
#include "stats/stats.hpp"

#include "sync/spin_tracker.hpp"

namespace ptb {

double sample_at(const TimeSeries& s, double t, std::size_t& cursor) {
  const auto& times = s.times();
  const auto& values = s.values();
  if (times.empty()) return 0.0;
  while (cursor + 1 < times.size() && times[cursor + 1] <= t) ++cursor;
  return values[cursor];
}

std::string power_trace_csv(const RunResult& r) {
  std::ostringstream out;
  out << "cycle,cmp_power";
  for (std::size_t c = 0; c < r.core_power_traces.size(); ++c)
    out << ",core" << c;
  out << '\n';
  std::vector<std::size_t> cursors(r.core_power_traces.size(), 0);
  for (std::size_t i = 0; i < r.cmp_power_trace.size(); ++i) {
    const double t = r.cmp_power_trace.times()[i];
    out << static_cast<std::uint64_t>(t) << ','
        << format_double(r.cmp_power_trace.values()[i], 3);
    for (std::size_t c = 0; c < r.core_power_traces.size(); ++c) {
      out << ','
          << format_double(sample_at(r.core_power_traces[c], t, cursors[c]),
                           3);
    }
    out << '\n';
  }
  return out.str();
}

std::string run_summary_kv(const RunResult& r) {
  // The summary is generated from a stats registry over the RunResult
  // (src/stats) so the flat key=value plane and the registry share one
  // formatting path (pinned precisions, locale-independent decimal point).
  // Registration order IS the pinned legacy key order — append-only.
  // The registry is local and the RunResult is immutable here, so this
  // caller is trivially its own sequential point.
  ScopedThreadRole seq(g_sequential_point);
  StatsRegistry reg;
  reg.counter("num_cores", "", &r.num_cores);
  reg.counter("cycles", "", &r.cycles);
  reg.counter_fn("hit_max_cycles", "",
                 [&r] { return r.hit_max_cycles ? 1.0 : 0.0; });
  reg.counter("energy_tokens", "", &r.energy, 1);
  reg.counter("aopb_tokens", "", &r.aopb, 1);
  reg.gauge("budget_tokens_per_cycle", "", &r.budget, 3);
  reg.gauge("peak_power", "", &r.peak_power, 3);
  reg.formula("power_mean", "", [&r] { return r.power.mean(); }, 3);
  reg.formula("power_max", "", [&r] { return r.power.max(); }, 3);
  reg.formula("power_stddev", "", [&r] { return r.power.stddev(); }, 3);
  reg.counter("spin_energy", "", &r.spin_energy, 1);
  reg.counter("total_committed", "", &r.total_committed);
  reg.counter("tokens_donated", "", &r.tokens_donated, 1);
  reg.counter("tokens_granted", "", &r.tokens_granted, 1);
  reg.counter("tokens_evaporated", "", &r.tokens_evaporated, 1);
  reg.counter("dvfs_transitions", "", &r.dvfs_transitions);
  reg.counter("to_one_cycles", "", &r.to_one_cycles);
  reg.counter("to_all_cycles", "", &r.to_all_cycles);
  reg.counter("spin_gated_cycles", "", &r.spin_gated_cycles);
  reg.counter("barrier_sleep_cycles", "", &r.barrier_sleep_cycles);
  reg.counter("meeting_point_episodes", "", &r.meeting_point_episodes);
  reg.counter("audit_checks", "", &r.audit_checks);
  Cycle state_totals[kNumExecStates] = {};
  for (const auto& c : r.cores)
    for (std::uint32_t s = 0; s < kNumExecStates; ++s)
      state_totals[s] += c.state_cycles[s];
  reg.counter_fn("cycles_busy", "",
                 [v = state_totals[0]] { return static_cast<double>(v); });
  reg.counter_fn("cycles_lock_acq", "",
                 [v = state_totals[1]] { return static_cast<double>(v); });
  reg.counter_fn("cycles_lock_rel", "",
                 [v = state_totals[2]] { return static_cast<double>(v); });
  reg.counter_fn("cycles_barrier", "",
                 [v = state_totals[3]] { return static_cast<double>(v); });
  // The benchmark name is a string, which the (numeric) registry cannot
  // carry; it keeps its historical first position.
  return "benchmark=" + r.benchmark + "\n" + stats_kv(reg);
}

bool export_run(const RunResult& r, const std::string& dir) {
  const std::string stem =
      dir + "/" + r.benchmark + "_" + std::to_string(r.num_cores) + "c";
  auto write_file = [](const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) == content.size();
    std::fclose(f);
    return ok;
  };
  return write_file(stem + "_trace.csv", power_trace_csv(r)) &&
         write_file(stem + "_summary.txt", run_summary_kv(r));
}

}  // namespace ptb

#include "sim/trace_export.hpp"

#include <cstdio>
#include <sstream>

#include "common/table.hpp"

#include "sync/spin_tracker.hpp"

namespace ptb {

double sample_at(const TimeSeries& s, double t, std::size_t& cursor) {
  const auto& times = s.times();
  const auto& values = s.values();
  if (times.empty()) return 0.0;
  while (cursor + 1 < times.size() && times[cursor + 1] <= t) ++cursor;
  return values[cursor];
}

std::string power_trace_csv(const RunResult& r) {
  std::ostringstream out;
  out << "cycle,cmp_power";
  for (std::size_t c = 0; c < r.core_power_traces.size(); ++c)
    out << ",core" << c;
  out << '\n';
  std::vector<std::size_t> cursors(r.core_power_traces.size(), 0);
  for (std::size_t i = 0; i < r.cmp_power_trace.size(); ++i) {
    const double t = r.cmp_power_trace.times()[i];
    out << static_cast<std::uint64_t>(t) << ','
        << format_double(r.cmp_power_trace.values()[i], 3);
    for (std::size_t c = 0; c < r.core_power_traces.size(); ++c) {
      out << ','
          << format_double(sample_at(r.core_power_traces[c], t, cursors[c]),
                           3);
    }
    out << '\n';
  }
  return out.str();
}

std::string run_summary_kv(const RunResult& r) {
  std::ostringstream out;
  out << "benchmark=" << r.benchmark << '\n'
      << "num_cores=" << r.num_cores << '\n'
      << "cycles=" << r.cycles << '\n'
      << "hit_max_cycles=" << (r.hit_max_cycles ? 1 : 0) << '\n'
      << "energy_tokens=" << format_double(r.energy, 1) << '\n'
      << "aopb_tokens=" << format_double(r.aopb, 1) << '\n'
      << "budget_tokens_per_cycle=" << format_double(r.budget, 3) << '\n'
      << "peak_power=" << format_double(r.peak_power, 3) << '\n'
      << "power_mean=" << format_double(r.power.mean(), 3) << '\n'
      << "power_max=" << format_double(r.power.max(), 3) << '\n'
      << "power_stddev=" << format_double(r.power.stddev(), 3) << '\n'
      << "spin_energy=" << format_double(r.spin_energy, 1) << '\n'
      << "total_committed=" << r.total_committed << '\n'
      << "tokens_donated=" << format_double(r.tokens_donated, 1) << '\n'
      << "tokens_granted=" << format_double(r.tokens_granted, 1) << '\n'
      << "tokens_evaporated=" << format_double(r.tokens_evaporated, 1) << '\n'
      << "dvfs_transitions=" << r.dvfs_transitions << '\n'
      << "to_one_cycles=" << r.to_one_cycles << '\n'
      << "to_all_cycles=" << r.to_all_cycles << '\n'
      << "spin_gated_cycles=" << r.spin_gated_cycles << '\n'
      << "barrier_sleep_cycles=" << r.barrier_sleep_cycles << '\n'
      << "meeting_point_episodes=" << r.meeting_point_episodes << '\n'
      << "audit_checks=" << r.audit_checks << '\n';
  Cycle state_totals[kNumExecStates] = {};
  for (const auto& c : r.cores)
    for (std::uint32_t s = 0; s < kNumExecStates; ++s)
      state_totals[s] += c.state_cycles[s];
  out << "cycles_busy=" << state_totals[0] << '\n'
      << "cycles_lock_acq=" << state_totals[1] << '\n'
      << "cycles_lock_rel=" << state_totals[2] << '\n'
      << "cycles_barrier=" << state_totals[3] << '\n';
  return out.str();
}

bool export_run(const RunResult& r, const std::string& dir) {
  const std::string stem =
      dir + "/" + r.benchmark + "_" + std::to_string(r.num_cores) + "c";
  auto write_file = [](const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) == content.size();
    std::fclose(f);
    return ok;
  };
  return write_file(stem + "_trace.csv", power_trace_csv(r)) &&
         write_file(stem + "_summary.txt", run_summary_kv(r));
}

}  // namespace ptb

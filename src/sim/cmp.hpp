// The CMP: instantiates cores, caches, mesh, power model and the power-
// control machinery, and runs one workload's parallel phase to completion
// under a global cycle loop.
//
// Control flow per global cycle (Section III of the paper):
//   1. cores tick (frequency scaling = tick skipping; DVFS transitions
//      stall), producing per-cycle activity;
//   2. per-core instantaneous power is computed twice: exact (for the
//      energy/AoPB results) and PTHT-estimated (the control signal);
//   3. the PTB load-balancer redistributes spare tokens (when enabled);
//   4. each core's local enforcer (DVFS / DFS / 2-level) reacts to its
//      (possibly PTB-augmented) local budget;
//   5. energy, AoPB, spin attribution and temperature are accounted.
//
// Steps 1-2 are per-core and run sharded across host worker threads when
// SimConfig::sim_threads > 1 (sim/shard_pool.hpp); steps 3-5 plus memory-
// access replay, trace flushing and the invariant audit run at a sequential
// point on the main thread every cycle. Results are bit-identical at every
// --sim-threads value; DESIGN.md ("Threading model & determinism contract")
// documents why.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "audit/audit.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/balancer.hpp"
#include "core/clustered.hpp"
#include "core/baselines.hpp"
#include "core/budget.hpp"
#include "core/enforcer.hpp"
#include "core/policy.hpp"
#include "cpu/core.hpp"
#include "mem/memory_system.hpp"
#include "noc/mesh.hpp"
#include "power/energy_stats.hpp"
#include "power/power_model.hpp"
#include "power/thermal.hpp"
#include "sync/spin_tracker.hpp"
#include "sync/sync_state.hpp"
#include "trace/trace.hpp"
#include "workloads/program.hpp"

namespace ptb {

class StatsRegistry;
struct StatsDump;

struct CoreResult {
  Cycle finish_cycle = 0;
  std::uint64_t committed = 0;
  std::uint64_t flushes = 0;
  Cycle state_cycles[kNumExecStates] = {};
  double spin_energy = 0.0;  // energy spent while in spin states
  double energy = 0.0;
  double temp_mean = 0.0;
  double temp_std = 0.0;
};

struct RunResult {
  std::string benchmark;
  std::uint32_t num_cores = 0;
  Cycle cycles = 0;              // parallel-phase length
  bool hit_max_cycles = false;
  double energy = 0.0;           // total CMP energy (tokens)
  double aopb = 0.0;             // energy above the global budget (tokens)
  double budget = 0.0;           // global budget (tokens/cycle)
  double peak_power = 0.0;       // analytic peak (tokens/cycle)
  RunningStat power;             // per-cycle CMP power
  double spin_energy = 0.0;      // Σ cores' spin-state energy
  std::uint64_t total_committed = 0;

  std::vector<CoreResult> cores;

  // Optional traces (RunOptions).
  TimeSeries cmp_power_trace{1 << 12};
  std::vector<TimeSeries> core_power_traces;

  // Mechanism statistics.
  double tokens_donated = 0.0;
  double tokens_granted = 0.0;
  double tokens_evaporated = 0.0;
  std::uint64_t dvfs_transitions = 0;
  std::uint64_t to_one_cycles = 0;
  std::uint64_t to_all_cycles = 0;
  std::uint64_t spin_gated_cycles = 0;  // spinner-gating extension
  std::uint64_t barrier_sleep_cycles = 0;  // thrifty-barrier baseline
  std::uint64_t meeting_point_episodes = 0;  // meeting-points baseline

  // Recorded event trace (null unless RunOptions::trace_categories != 0).
  // shared_ptr keeps RunResult cheap to move/copy through the RunPool.
  std::shared_ptr<const EventTrace> trace;

  // Stats-registry snapshot (null unless RunOptions::stats / sampling; see
  // src/stats). Same shared_ptr rationale as the trace.
  std::shared_ptr<const StatsDump> stats;

  // Invariant-audit bookkeeping (0 when auditing was off for this run).
  std::uint64_t audit_checks = 0;
  // Fingerprint of the simulated-machine parameters (technique knobs
  // excluded); normalize() cross-checks it so a result is never normalized
  // against a base run from a different machine (sim/reporting.hpp).
  std::uint64_t machine_fingerprint = 0;
};

/// Periodic progress snapshot of a running simulation (RunObserver below).
/// Everything here is read from the run's own deterministic state at the
/// cycle loop's sequential point; producing it never changes a result.
struct RunProgress {
  Cycle cycle = 0;        // cycles completed so far
  Cycle max_cycles = 0;   // the run's cycle budget
  std::uint32_t cores_finished = 0;
  std::uint32_t num_cores = 0;
  std::uint64_t committed = 0;  // instructions committed, all cores
  double ipc = 0.0;             // committed / cycle (CMP aggregate)
  double watts = 0.0;           // mean per-cycle CMP power so far
  bool detailed = true;         // false inside a sampled fast-forward window
};

/// Host-side observation hooks for one run, threaded through RunOptions by
/// the serve plane (ISSUE 10): `progress` fires from the cycle loop every
/// `progress_every` cycles; `stage_enter`/`stage_exit` bracket named
/// host-level stages around the run (warm-checkpoint restore in run_one,
/// cache probe/simulate/serialize/publish in cached_run_payload). Hooks
/// observe only — a null observer (the default) costs one pointer test
/// and results are byte-identical either way (tests/serve proves it).
/// (Named enter/exit, not begin/end: `stage_begin` is EventTrace's
/// sequential-point API and ptb-lint polices that token by name.)
struct RunObserver {
  std::function<void(std::string_view stage)> stage_enter;
  std::function<void(std::string_view stage)> stage_exit;
  std::function<void(const RunProgress&)> progress;
  Cycle progress_every = 0;  // 0 = no progress callbacks
};

struct RunOptions {
  bool record_cmp_trace = false;
  bool record_core_traces = false;
  /// Event-trace category mask (bits of TraceCategory; see
  /// parse_trace_categories). 0 = tracing fully off: no tracer is
  /// allocated and every emit site stays a single null-pointer branch.
  std::uint32_t trace_categories = 0;
  /// Stats registry (src/stats): when set, every component registers its
  /// counters and RunResult::stats carries the end-of-run StatsDump. Off by
  /// default: no registry is allocated and the cycle loop does no extra
  /// work. Like tracing, stats never feed back into the simulation — a
  /// stats-enabled run produces bit-identical RunResult metrics.
  bool stats = false;
  /// Time-series sample period in cycles (0 = no sampling): every period,
  /// all deterministic scalar stats are appended to a columnar buffer
  /// carried in the dump. Non-zero implies `stats`.
  Cycle stats_sample_every = 0;
  /// Test-only: upper bound (ns) on a deterministic pseudo-random sleep
  /// each shard worker takes before running its shard of a cycle
  /// (sim/shard_pool.hpp). The TSan stress tests use it to shake epoch
  /// timing; it perturbs wall-clock only — results stay bit-identical.
  std::uint32_t shard_jitter_ns = 0;
  /// Cycle at which run() serializes a full-state checkpoint frame
  /// (sim/checkpoint.hpp) into `*checkpoint_out` (kNeverCycle = never).
  /// The capture happens at the top of that cycle's loop body — before the
  /// cycle executes — so a run restored from the frame replays cycle
  /// `checkpoint_at` onward and finishes with bit-identical results.
  /// 0 captures the warm point at loop entry (post functional warmup),
  /// which is technique/budget-independent: one warmed frame forks a whole
  /// sweep. No frame is written when the run ends before `checkpoint_at`.
  Cycle checkpoint_at = kNeverCycle;
  /// Receives the checkpoint frame bytes; null disables capture.
  std::string* checkpoint_out = nullptr;
  /// Observation hooks (see RunObserver); null = none, zero cost. The
  /// pointee must outlive the run. Like tracing/stats, the observer never
  /// feeds back into the simulation and is outside the config fingerprint.
  const RunObserver* observer = nullptr;
};

/// Reusable per-cycle scratch for the simulator's hot loop, SoA-packed so
/// the batched power model and the balancer walk dense arrays. Owned by the
/// CmpSimulator and reset (not reallocated) at the start of each run, so the
/// cycle loop itself performs no allocations.
struct CycleFrame {
  // Control state carried across cycles.
  std::vector<double> freq_acc;     // fractional-frequency tick accumulator
  std::vector<double> est_ema;      // smoothed control estimate
  std::vector<double> act_ema;      // smoothed actual power
  std::vector<double> eff_budget;   // local budget after PTB augmentation
  std::vector<double> thermal_acc;  // power integrated over a thermal step
  std::vector<std::uint8_t> finished;
  std::vector<ExecState> states;  // scratch for the dynamic policy selector
  // Per-cycle activity snapshot feeding core_cycle_power_batch.
  std::vector<double> fetch_exact;
  std::vector<double> fetch_est;
  std::vector<std::uint32_t> rob_occ;
  std::vector<std::uint8_t> active;
  std::vector<std::uint8_t> gated;
  std::vector<double> vdd;
  // Batched power-model outputs (overwritten in place by the EMA).
  std::vector<double> est_power;
  std::vector<double> act_power;
  // Sharded-loop state: which cores had gate+commit run in the sequential
  // pre-pass, and the per-core queues of memory accesses parked by the
  // parallel phases for replay at the sequential memory point.
  std::vector<std::uint8_t> seq_gated;
  std::vector<std::vector<DeferredMemReq>> mem_defer;

  void reset(std::uint32_t n, double local_budget);
};

class CmpSimulator {
 public:
  CmpSimulator(const SimConfig& cfg, const WorkloadProfile& profile);
  ~CmpSimulator();

  /// Run the full parallel phase and return the metrics.
  RunResult run(const RunOptions& opts = {});

  /// Functional (zero-time) cache warmup; called by run() when
  /// SimConfig::functional_warmup is set.
  void warm_caches();

  /// Restores a checkpoint frame produced via RunOptions::checkpoint_at.
  /// Validates identity before touching any state: core count, benchmark,
  /// machine fingerprint and seed must match; a mid-run frame (cycle != 0)
  /// additionally pins the full config fingerprint, while a cycle-0 warm
  /// frame restores under any technique/budget of the same machine.
  /// The next run() then resumes from the checkpointed cycle (skipping
  /// functional warmup). Returns false with a diagnostic in `*err` on any
  /// rejected frame; the simulator may be partially mutated after a
  /// failure and must not be run (construct a fresh one).
  bool restore_checkpoint(std::string_view bytes, std::string* err = nullptr);

  // Introspection for tests (valid after construction; cores after run()).
  const BudgetManager& budgets() const { return budgets_; }
  MemorySystem& memory() { return *mem_; }
  Mesh& mesh() { return *mesh_; }
  SyncState& sync() { return *sync_; }
  Core& core(CoreId i) { return *cores_[i]; }
  const SpinTracker& tracker(CoreId i) const { return trackers_[i]; }
  /// Null when SimConfig::audit_level is kOff (or the build has PTB_AUDIT
  /// off); otherwise the per-run invariant auditor.
  const InvariantAuditor* auditor() const { return auditor_.get(); }

 private:
  /// One end-of-cycle audit pass (only called when auditor_ is non-null);
  /// aborts via PTB_ASSERTF on the first violated invariant. Runs at the
  /// cycle's sequential point, so it also cross-checks the shard merge
  /// (finished-core recount, drained deferral queues).
  void audit_cycle(Cycle now, const EnergyAccounting& acct, double total_act,
                   const double* eff_budget, const std::uint8_t* finished,
                   std::uint32_t finished_count);
  // Both are copied: a simulator must outlive any temporary it was
  // constructed from.
  SimConfig cfg_;
  WorkloadProfile profile_;
  // Shared across simulators with the same power config + seed (the model
  // is immutable and its k-means construction is expensive; see
  // BaseEnergyModel::shared).
  std::shared_ptr<const BaseEnergyModel> energy_model_;
  BudgetManager budgets_;
  std::unique_ptr<Mesh> mesh_;
  std::unique_ptr<MemorySystem> mem_;
  std::unique_ptr<SyncState> sync_;
  std::vector<SpinTracker> trackers_;
  std::vector<std::unique_ptr<SyntheticProgram>> programs_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<PowerEnforcer>> enforcers_;
  std::unique_ptr<PtbLoadBalancer> balancer_;
  std::unique_ptr<ClusteredBalancer> clustered_;
  std::unique_ptr<DynamicPolicySelector> selector_;
  std::vector<SpinPowerDetector> gate_detectors_;  // spinner gating
  std::unique_ptr<ThriftyBarrierController> thrifty_;
  std::unique_ptr<MeetingPointsController> meeting_;
  ThermalModel thermal_;
  std::unique_ptr<InvariantAuditor> auditor_;
  CycleFrame frame_;
  // Run-scoped checkpoint state staged by restore_checkpoint() and applied
  // (then consumed) by the next run() once its locals exist.
  struct CheckpointCarry;
  std::unique_ptr<CheckpointCarry> carry_;
};

}  // namespace ptb

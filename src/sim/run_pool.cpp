#include "sim/run_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "sim/experiment.hpp"

namespace ptb {

unsigned RunPool::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

RunPool::RunPool(unsigned jobs) {
  if (jobs == 0) jobs = default_jobs();
  workers_.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

RunPool::~RunPool() {
  {
    MutexLock lock(mu_);
    // Explicit wait loops instead of the predicate overload throughout
    // this file: a predicate lambda is analyzed as its own function by
    // -Wthread-safety and would not be known to hold mu_.
    while (completed_ != tasks_.size()) done_cv_.wait(lock);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t RunPool::submit(Task task) {
  std::size_t index;
  {
    MutexLock lock(mu_);
    index = tasks_.size();
    tasks_.push_back(std::move(task));
    results_.resize(tasks_.size());
  }
  work_cv_.notify_one();
  return index;
}

std::size_t RunPool::submit(const WorkloadProfile& profile,
                            const SimConfig& cfg, const RunOptions& opts) {
  return submit([&profile, cfg, opts] { return run_one(profile, cfg, opts); });
}

std::vector<RunResult> RunPool::wait_all() {
  MutexLock lock(mu_);
  while (completed_ != tasks_.size()) done_cv_.wait(lock);
  std::vector<RunResult> out = std::move(results_);
  tasks_.clear();
  results_.clear();
  next_task_ = 0;
  completed_ = 0;
  return out;
}

void RunPool::worker_loop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!(stop_ || next_task_ < tasks_.size())) work_cv_.wait(lock);
    if (next_task_ >= tasks_.size()) {
      PTB_ASSERT(stop_, "worker woke with no work and no stop");
      return;
    }
    const std::size_t index = next_task_++;
    // Run the task unlocked; the result is written back under the lock, so
    // submit()'s concurrent resize of results_ cannot race with the write.
    Task task = std::move(tasks_[index]);
    lock.unlock();
    RunResult result = task();
    lock.lock();
    results_[index] = std::move(result);
    if (++completed_ == tasks_.size()) done_cv_.notify_all();
  }
}

}  // namespace ptb

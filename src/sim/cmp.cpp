// ptb-lint: cycle-loop-file — FP reductions here must use
// deterministic_total() (see the fp-accum checker, tools/lint/checks.cpp).
#include "sim/cmp.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "sim/checkpoint.hpp"
#include "sim/reporting.hpp"
#include "sim/shard_pool.hpp"
#include "stats/dump.hpp"
#include "stats/stats.hpp"

namespace ptb {

namespace {
// NoC activity energy per flit-hop (tokens); part of the uncore share.
constexpr double kNocTokensPerFlitHop = 0.02;
// Thermal model step granularity (cycles).
constexpr Cycle kThermalStep = 64;
// Spin-power detection threshold as a fraction of the local budget.
constexpr double kSpinThresholdFrac = 0.30;
// Spinner-gating threshold (between the spin plateau and busy power).
constexpr double kSpinGateThresholdFrac = 0.55;

// Wall-clock self-profiling (stats runs only). Timing every cycle would
// cost ~5 clock reads per cycle — far over the stats overhead budget —
// so one cycle in kSelfProfilePeriod is timed and scaled up. The readings
// feed only volatile stats (never a simulation decision, never a
// deterministic dump).
constexpr Cycle kSelfProfilePeriod = 64;

struct SelfProfile {
  double tick_s = 0.0;     // phase 1: pre-pass + parallel region
                           // (tick phases, power model, smoothing)
  double power_s = 0.0;    // phases 1b-2: sequential merge + global signal
  double control_s = 0.0;  // phases 3-3b: balancing + enforcement + gating
  double account_s = 0.0;  // phases 4-5: accounting, audit, sample
  std::uint64_t timed_cycles = 0;
};
}  // namespace

// Run-scoped state a restore must carry into the next run() call: the
// checkpointed cycle, the CycleFrame persistents and the raw payloads of
// sections whose targets (energy accounting, registry-owned histogram,
// sample buffer, tracer, result power traces) only exist as run() locals.
// Populated only for mid-run frames; a cycle-0 warm frame carries just the
// cycle (everything run-scoped is at its freshly-constructed value there,
// and the frame's eff_budget would pin the *donor's* budget).
struct CmpSimulator::CheckpointCarry {
  Cycle cycle = 0;
  bool epoch_over = false;
  double epoch_acc = 0.0;
  std::uint32_t epoch_n = 0;
  std::uint64_t spin_gated_cycles = 0;
  std::uint64_t detailed_cycles = 0;
  std::uint64_t prof_timed_cycles = 0;
  std::vector<double> freq_acc;
  std::vector<double> est_ema;
  std::vector<double> act_ema;
  std::vector<double> eff_budget;
  std::vector<double> thermal_acc;
  std::vector<std::uint8_t> finished;
  std::string acct;
  std::string hist;
  std::string samples;
  std::string tracer;
  std::string res_power;
};

void CycleFrame::reset(std::uint32_t n, double local_budget) {
  freq_acc.assign(n, 0.0);
  est_ema.assign(n, 0.0);
  act_ema.assign(n, 0.0);
  eff_budget.assign(n, local_budget);
  thermal_acc.assign(n, 0.0);
  finished.assign(n, 0);
  states.assign(n, ExecState::kBusy);
  fetch_exact.assign(n, 0.0);
  fetch_est.assign(n, 0.0);
  rob_occ.assign(n, 0);
  active.assign(n, 0);
  gated.assign(n, 0);
  vdd.assign(n, 1.0);
  est_power.assign(n, 0.0);
  act_power.assign(n, 0.0);
  seq_gated.assign(n, 0);
  // Keep each queue's capacity across runs; only the contents reset.
  mem_defer.resize(n);
  for (auto& q : mem_defer) q.clear();
}

CmpSimulator::CmpSimulator(const SimConfig& cfg,
                           const WorkloadProfile& profile)
    : cfg_(cfg), profile_(profile),
      energy_model_(BaseEnergyModel::shared(cfg_.power, cfg_.seed)),
      budgets_(cfg_), thermal_(cfg_.thermal, cfg_.num_cores) {
  PTB_ASSERT(cfg_.num_cores >= 1, "need at least one core");
  mesh_ = std::make_unique<Mesh>(cfg_.noc, cfg_.mesh_width(),
                                 cfg_.mesh_height());
  mem_ = std::make_unique<MemorySystem>(cfg_, *mesh_);
  const std::uint32_t locks = std::max<std::uint32_t>(1, profile.num_locks);
  sync_ = std::make_unique<SyncState>(locks, 1, cfg_.num_cores);
  trackers_.resize(cfg_.num_cores);
  for (CoreId i = 0; i < cfg_.num_cores; ++i) {
    programs_.push_back(std::make_unique<SyntheticProgram>(
        profile_, i, cfg_.num_cores, *sync_, trackers_[i], cfg_.seed));
    cores_.push_back(std::make_unique<Core>(i, cfg_, *mem_, *sync_,
                                            *programs_[i], *energy_model_));
    enforcers_.push_back(
        std::make_unique<PowerEnforcer>(cfg_, cfg_.technique));
  }
  if (cfg_.ptb.enabled) {
    if (cfg_.ptb.cluster_size > 0 &&
        cfg_.ptb.cluster_size < cfg_.num_cores) {
      clustered_ = std::make_unique<ClusteredBalancer>(
          cfg_.ptb, cfg_.num_cores, cfg_.ptb.cluster_size,
          budgets_.local_budget());
    } else {
      balancer_ = std::make_unique<PtbLoadBalancer>(
          cfg_.ptb, cfg_.num_cores, budgets_.local_budget());
    }
    selector_ = std::make_unique<DynamicPolicySelector>(
        cfg_.ptb, cfg_.num_cores,
        budgets_.local_budget() * kSpinThresholdFrac);
  }
  if (cfg_.technique == TechniqueKind::kThriftyBarrier) {
    thrifty_ = std::make_unique<ThriftyBarrierController>(cfg_.num_cores);
  } else if (cfg_.technique == TechniqueKind::kMeetingPoints) {
    meeting_ = std::make_unique<MeetingPointsController>(cfg_.num_cores);
  }
  if (cfg_.ptb.gate_spinners) {
    // The gating threshold sits between the spin plateau and busy power so
    // the first post-wake work burst (EMA-lifted) releases the gate.
    gate_detectors_.assign(
        cfg_.num_cores,
        SpinPowerDetector(budgets_.local_budget() * kSpinGateThresholdFrac,
                          64));
  }
#if PTB_AUDIT_ENABLED
  if (cfg_.audit_level != AuditLevel::kOff) {
    auditor_ = std::make_unique<InvariantAuditor>(cfg_);
  }
#endif
}

CmpSimulator::~CmpSimulator() = default;

void CmpSimulator::warm_caches() {
  DirectoryController& dir = mem_->directory();
  const std::uint32_t line = cfg_.l1d.line_bytes;
  for (CoreId i = 0; i < cfg_.num_cores; ++i) {
    const SyntheticProgram& prog = *programs_[i];
    // Code (template + inlined sync routines) into the L1I.
    for (Addr a = prog.code_base();
         a < prog.code_base() + prog.code_bytes() + 0x8020; a += line) {
      dir.warm(i, a / line, /*instruction=*/true, /*exclusive=*/false);
    }
    // Private data: L2 always; L1D up to ~70% of capacity (avoid self-
    // eviction churn during warmup).
    const std::uint32_t l1_lines =
        cfg_.l1d.size_bytes / cfg_.l1d.line_bytes;
    const std::uint32_t l1_cap = l1_lines * 7 / 10;
    for (std::uint32_t j = 0; j < profile_.ws_private_lines; ++j) {
      const Addr l = (prog.private_base() + static_cast<Addr>(j) * line) /
                     line;
      dir.warm(j < l1_cap ? i : kNoCore, l, false, /*exclusive=*/true);
    }
  }
  // Shared data into the L2 only (L1 sharing emerges in the run).
  for (std::uint32_t j = 0; j < profile_.ws_shared_lines; ++j) {
    const Addr l =
        (SyntheticProgram::kSharedBase + static_cast<Addr>(j) * line) / line;
    dir.warm(kNoCore, l, false, false);
  }
  // Branch predictors learn each static branch's dominant direction.
  for (CoreId i = 0; i < cfg_.num_cores; ++i) {
    programs_[i]->warm_predictor(cores_[i]->predictor());
  }
}

bool CmpSimulator::restore_checkpoint(std::string_view bytes,
                                      std::string* err) {
  const auto fail = [&](std::string m) {
    if (err != nullptr) *err = std::move(m);
    return false;
  };
  CheckpointReader ck;
  if (!ck.parse(bytes)) return fail(ck.error());
  const CheckpointHeader& h = ck.header();
  if (h.num_cores != cfg_.num_cores) {
    return fail("checkpoint core count mismatch (" +
                std::to_string(h.num_cores) + " vs " +
                std::to_string(cfg_.num_cores) + ")");
  }
  if (h.benchmark != profile_.name) {
    return fail("checkpoint benchmark mismatch ('" + h.benchmark + "' vs '" +
                profile_.name + "')");
  }
  if (h.machine_fp != machine_fingerprint(cfg_)) {
    return fail("checkpoint machine fingerprint mismatch");
  }
  if (h.seed != cfg_.seed) return fail("checkpoint seed mismatch");
  if (h.cycle != 0 && h.config_fp != config_fingerprint(cfg_)) {
    return fail(
        "checkpoint config fingerprint mismatch: a mid-run frame resumes "
        "only under the exact config it was captured with (cycle-0 warm "
        "frames restore across techniques)");
  }

  // Component sections load straight into the members. A section whose
  // target does not exist under this configuration is skipped (a warm fork
  // into a different technique); a section that exists but fails to parse
  // or leaves trailing bytes rejects the restore.
  const auto load = [&](CkptSection tag, auto&& fn) -> bool {
    if (!ck.has_section(tag)) return true;
    ByteReader r(ck.section(tag));
    fn(r);
    return r.ok() && r.empty();
  };
  const auto skip_rest = [](ByteReader& r) { r.raw(r.remaining()); };

  bool ok = true;
  ok = ok && load(CkptSection::kCores, [&](ByteReader& r) {
    for (auto& c : cores_) c->load_state(r);
  });
  ok = ok && load(CkptSection::kPrograms, [&](ByteReader& r) {
    for (auto& p : programs_) p->load_state(r);
  });
  ok = ok && load(CkptSection::kMem,
                  [&](ByteReader& r) { mem_->load_state(r); });
  ok = ok && load(CkptSection::kMesh,
                  [&](ByteReader& r) { mesh_->load_state(r); });
  ok = ok && load(CkptSection::kSync,
                  [&](ByteReader& r) { sync_->load_state(r); });
  ok = ok && load(CkptSection::kTrackers, [&](ByteReader& r) {
    for (SpinTracker& t : trackers_) t.load_state(r);
  });
  ok = ok && load(CkptSection::kBalancer, [&](ByteReader& r) {
    balancer_ ? balancer_->load_state(r) : skip_rest(r);
  });
  ok = ok && load(CkptSection::kClustered, [&](ByteReader& r) {
    clustered_ ? clustered_->load_state(r) : skip_rest(r);
  });
  ok = ok && load(CkptSection::kEnforcers, [&](ByteReader& r) {
    for (auto& e : enforcers_) e->load_state(r);
  });
  ok = ok && load(CkptSection::kSelector, [&](ByteReader& r) {
    selector_ ? selector_->load_state(r) : skip_rest(r);
  });
  ok = ok && load(CkptSection::kGates, [&](ByteReader& r) {
    if (r.u64() != gate_detectors_.size()) {
      skip_rest(r);  // different gating config: keep fresh detectors
      return;
    }
    for (SpinPowerDetector& d : gate_detectors_) d.load_state(r);
  });
  ok = ok && load(CkptSection::kThrifty, [&](ByteReader& r) {
    thrifty_ ? thrifty_->load_state(r) : skip_rest(r);
  });
  ok = ok && load(CkptSection::kMeeting, [&](ByteReader& r) {
    meeting_ ? meeting_->load_state(r) : skip_rest(r);
  });
  ok = ok && load(CkptSection::kThermal,
                  [&](ByteReader& r) { thermal_.load_state(r); });

  auto carry = std::make_unique<CheckpointCarry>();
  carry->cycle = h.cycle;
  if (h.cycle != 0) {
    ok = ok && load(CkptSection::kFrame, [&](ByteReader& r) {
      r.f64_vec(carry->freq_acc);
      r.f64_vec(carry->est_ema);
      r.f64_vec(carry->act_ema);
      r.f64_vec(carry->eff_budget);
      r.f64_vec(carry->thermal_acc);
      r.u8_vec(carry->finished);
      if (carry->finished.size() != cfg_.num_cores ||
          carry->freq_acc.size() != cfg_.num_cores) {
        r.fail();
      }
    });
    ok = ok && load(CkptSection::kRun, [&](ByteReader& r) {
      carry->epoch_over = r.boolean();
      carry->epoch_acc = r.f64();
      carry->epoch_n = r.u32();
      carry->spin_gated_cycles = r.u64();
      carry->detailed_cycles = r.u64();
      carry->prof_timed_cycles = r.u64();
    });
    carry->acct = std::string(ck.section(CkptSection::kAcct));
    carry->hist = std::string(ck.section(CkptSection::kHist));
    carry->samples = std::string(ck.section(CkptSection::kSamples));
    carry->tracer = std::string(ck.section(CkptSection::kTracer));
    carry->res_power = std::string(ck.section(CkptSection::kResPower));
  }
  if (!ok) {
    return fail("checkpoint section payload rejected (corrupt or "
                "incompatible with this configuration)");
  }
  carry_ = std::move(carry);
  return true;
}

RunResult CmpSimulator::run(const RunOptions& opts) {
  const std::uint32_t n = cfg_.num_cores;

  // This thread orchestrates the phase-split cycle loop: it *is* the
  // sequential point whenever control is outside ShardPool::run. Holding
  // the role lets it call the sequential-point-only API (stats
  // registration, trace staging, deferred-memory replay); the shard_job /
  // gate_and_commit lambdas below are analyzed as separate functions by
  // clang -Wthread-safety and do NOT inherit it, so parallel-region code
  // calling that API is a compile error, not a TSan roll of the dice.
  ScopedThreadRole seq_point(g_sequential_point);

  // Event tracing (src/trace): allocated only for traced runs; every
  // collaborator holds a raw pointer (null = one-branch no-op per emit
  // site, the audit-hook pattern). Detached again before returning so the
  // pointers never outlive this local recorder.
  std::unique_ptr<EventTracer> tracer;
  if (opts.trace_categories != 0) {
    tracer = std::make_unique<EventTracer>(opts.trace_categories,
                                           cfg_.trace.buffer_events);
  }
  const auto wire_tracer = [&](EventTracer* t) {
    if (balancer_) balancer_->set_tracer(t);
    if (clustered_) clustered_->set_tracer(t);
    if (selector_) selector_->set_tracer(t);
    sync_->set_tracer(t);
    for (CoreId i = 0; i < n; ++i) {
      trackers_[i].set_tracer(t, i);
      enforcers_[i]->set_tracer(t, i);
    }
  };
  if (tracer) wire_tracer(tracer.get());

  // A restored checkpoint already contains post-warmup (or later) state.
  if (cfg_.functional_warmup && carry_ == nullptr) warm_caches();
  RunResult res;
  res.benchmark = profile_.name;
  res.num_cores = n;
  res.budget = budgets_.global_budget();
  res.peak_power = budgets_.peak_power();
  res.cores.resize(n);
  if (opts.record_core_traces) {
    res.core_power_traces.assign(n, TimeSeries(1 << 12));
  }

  EnergyAccounting acct(budgets_.global_budget());
  // All per-core scratch lives in the simulator-owned CycleFrame: reset()
  // reuses capacity across runs and the loop below never allocates.
  CycleFrame& f = frame_;
  f.reset(n, budgets_.local_budget());
  std::uint32_t finished_count = 0;

  // Commit charging concentrates an instruction's energy into one cycle;
  // physically the pipeline spreads it over several. A short exponential
  // smoothing (tau ~ 8 cycles) models that spreading for both the actual
  // power curve and the PTHT control estimate.
  constexpr double kEmaAlpha = 1.0 / 8.0;

  // Without PTB's dedicated wire layer, the "CMP over the global budget"
  // condition is only observable at power-monitor epochs (one DVFS window):
  // the enforcement flag is re-evaluated from the previous epoch's average.
  // PTB's load-balancer aggregates tokens every cycle, giving it (and the
  // techniques under it) a per-cycle global signal — a key reason it
  // matches the budget so much more accurately (Sections III.E, IV.A).
  bool epoch_over = false;
  double epoch_acc = 0.0;
  std::uint32_t epoch_n = 0;

  // Sampled fast-forward mode (SimConfig::sample_detail / sample_period):
  // cores, memory, NoC and synchronization tick *exactly* every cycle —
  // timing, lock handoffs and cycle counts are preserved — but outside the
  // detailed windows the power/control plane is frozen: no power-model
  // evaluation, no EMA update, no balancing, no enforcement ticks (DVFS
  // ratios hold their last detailed value), no accounting. Energy results
  // are extrapolated by the duty cycle at the end ("frozen-control
  // fast-forward"; honest error bars live in EXPERIMENTS.md). The invariant
  // auditor is disabled under sampling: its accounting cross-checks assume
  // every cycle is recorded.
  const bool sampling = cfg_.sample_period > 0 && cfg_.sample_detail > 0 &&
                        cfg_.sample_detail < cfg_.sample_period;
  std::uint64_t detailed_cycles = 0;
  bool cycle_detailed = true;

  const double wire_overhead =
      cfg_.ptb.enabled ? (1.0 + cfg_.power.ptb_wire_overhead_frac) : 1.0;

  const bool ptb_active = balancer_ != nullptr || clustered_ != nullptr;
  // One technique kind per run, so enforcer activity is uniform; inactive
  // enforcers (kNone / CMP-level baselines) no-op their tick and pin both
  // ratios at 1.0, letting the loop skip the calls wholesale.
  const bool enforcers_active = enforcers_[0]->active();
  // The PTHT estimate is pure control/observability input. When nothing
  // consumes it — no balancer, no budget enforcer, no spinner gating, no
  // tracer, no auditor — skip the whole estimate path: the per-op PTHT
  // lookups at fetch, the second power-model evaluation and its EMA. Every
  // consumer below is gated on the same conditions, so results are
  // unchanged byte for byte.
  const bool est_needed = ptb_active || enforcers_active ||
                          !gate_detectors_.empty() || tracer != nullptr ||
                          auditor_ != nullptr;
  for (CoreId i = 0; i < n; ++i) cores_[i]->set_estimate_fetch(est_needed);

  Cycle now = 0;

  // Stats registry (src/stats): pull-based. Registration binds the
  // components' existing counters (and a few locals of this frame: now,
  // finished_count, acct) — the loop below does no extra bookkeeping for
  // them. Local to the run so the bound sources always outlive it.
  const bool stats_on = opts.stats || opts.stats_sample_every > 0;
  std::unique_ptr<StatsRegistry> stats;
  Histogram* power_hist = nullptr;
  SelfProfile prof;
  if (stats_on) {
    stats = std::make_unique<StatsRegistry>();
    StatsRegistry& reg = *stats;
    reg.counter_fn("sim.cycles", "global cycles simulated",
                   [&now] { return static_cast<double>(now); });
    reg.counter_fn("sim.finished_cores", "cores whose program completed",
                   [&finished_count] {
                     return static_cast<double>(finished_count);
                   });
    reg.formula("sim.energy.total", "total CMP energy (tokens)",
                [&acct] { return acct.energy(); }, 1);
    reg.formula("sim.energy.aopb",
                "energy above the global budget (tokens)",
                [&acct] { return acct.aopb(); }, 1);
    reg.formula("sim.energy.aopb_frac", "AoPB / total energy",
                [&acct] {
                  return acct.energy() > 0.0 ? acct.aopb() / acct.energy()
                                             : 0.0;
                },
                6);
    reg.formula("sim.power.mean", "mean per-cycle CMP power",
                [&acct] { return acct.power_stat().mean(); });
    reg.formula("sim.power.max", "peak observed per-cycle CMP power",
                [&acct] { return acct.power_stat().max(); });
    reg.formula("sim.power.stddev", "per-cycle CMP power stddev",
                [&acct] { return acct.power_stat().stddev(); });
    power_hist = &reg.distribution("sim.power.dist",
                                   "per-cycle CMP power distribution",
                                   0.0, budgets_.peak_power(), 64);
    budgets_.register_stats(reg, "sim.budget");
    energy_model_->register_stats(reg, "power.model");
    mesh_->register_stats(reg, "noc");
    mem_->register_stats(reg, "mem");
    for (CoreId i = 0; i < n; ++i) {
      const std::string p = "core." + std::to_string(i);
      cores_[i]->register_stats(reg, p);
      trackers_[i].register_stats(reg, p + ".spin");
      enforcers_[i]->register_stats(reg, p + ".enforcer");
    }
    if (balancer_) balancer_->register_stats(reg, "ptb.balancer");
    if (clustered_) clustered_->register_stats(reg, "ptb");
    thermal_.register_stats(reg, "thermal");
    // Wall-clock self-profiling: volatile (machine-dependent), so excluded
    // from deterministic dumps and the sample buffer.
    reg.gauge_fn("sim.self.tick_seconds",
                 "wall-clock spent in core ticks + power model (sampled, "
                 "scaled)",
                 [&prof] { return prof.tick_s; }, 6, /*is_volatile=*/true);
    reg.gauge_fn("sim.self.power_seconds",
                 "wall-clock spent in the sequential merge (sampled, scaled)",
                 [&prof] { return prof.power_s; }, 6, /*is_volatile=*/true);
    reg.gauge_fn("sim.self.control_seconds",
                 "wall-clock spent in balancing/enforcement (sampled, "
                 "scaled)",
                 [&prof] { return prof.control_s; }, 6, /*is_volatile=*/true);
    reg.gauge_fn("sim.self.account_seconds",
                 "wall-clock spent in accounting/audit (sampled, scaled)",
                 [&prof] { return prof.account_s; }, 6, /*is_volatile=*/true);
    reg.counter_fn("sim.self.timed_cycles",
                   "cycles actually timed by the self-profiler",
                   [&prof] { return static_cast<double>(prof.timed_cycles); });
  }
  std::unique_ptr<SampleBuffer> samples;
  if (stats && opts.stats_sample_every > 0) {
    samples = std::make_unique<SampleBuffer>(*stats);
  }

  // --- checkpoint capture (sim/checkpoint.hpp) ---
  // Runs at the top of a cycle-loop body: the strongest quiescent point —
  // the previous cycle's sequential phases completed, the deferral queues
  // are drained and the trace staging slots are flushed, so every byte of
  // live state is reachable through the components and the locals above.
  const auto capture_checkpoint = [&]() -> std::string {
    CheckpointHeader h;
    h.checkpoint_fp = checkpoint_fingerprint(cfg_, profile_.name, now);
    h.machine_fp = machine_fingerprint(cfg_);
    h.config_fp = config_fingerprint(cfg_);
    h.seed = cfg_.seed;
    h.num_cores = n;
    h.cycle = now;
    h.benchmark = profile_.name;
    CheckpointWriter cw(h);
    {
      ByteWriter& w = cw.section(CkptSection::kCores);
      for (CoreId i = 0; i < n; ++i) cores_[i]->save_state(w);
    }
    {
      ByteWriter& w = cw.section(CkptSection::kPrograms);
      for (CoreId i = 0; i < n; ++i) programs_[i]->save_state(w);
    }
    mem_->save_state(cw.section(CkptSection::kMem));
    mesh_->save_state(cw.section(CkptSection::kMesh));
    sync_->save_state(cw.section(CkptSection::kSync));
    {
      ByteWriter& w = cw.section(CkptSection::kTrackers);
      for (CoreId i = 0; i < n; ++i) trackers_[i].save_state(w);
    }
    if (balancer_) balancer_->save_state(cw.section(CkptSection::kBalancer));
    if (clustered_) {
      clustered_->save_state(cw.section(CkptSection::kClustered));
    }
    {
      ByteWriter& w = cw.section(CkptSection::kEnforcers);
      for (CoreId i = 0; i < n; ++i) enforcers_[i]->save_state(w);
    }
    if (selector_) selector_->save_state(cw.section(CkptSection::kSelector));
    if (!gate_detectors_.empty()) {
      ByteWriter& w = cw.section(CkptSection::kGates);
      w.u64(gate_detectors_.size());
      for (const SpinPowerDetector& d : gate_detectors_) d.save_state(w);
    }
    if (thrifty_) thrifty_->save_state(cw.section(CkptSection::kThrifty));
    if (meeting_) meeting_->save_state(cw.section(CkptSection::kMeeting));
    thermal_.save_state(cw.section(CkptSection::kThermal));
    {
      ByteWriter& w = cw.section(CkptSection::kFrame);
      w.f64_vec(f.freq_acc);
      w.f64_vec(f.est_ema);
      w.f64_vec(f.act_ema);
      w.f64_vec(f.eff_budget);
      w.f64_vec(f.thermal_acc);
      w.u8_vec(f.finished);
    }
    acct.save_state(cw.section(CkptSection::kAcct));
    {
      ByteWriter& w = cw.section(CkptSection::kRun);
      w.boolean(epoch_over);
      w.f64(epoch_acc);
      w.u32(epoch_n);
      w.u64(res.spin_gated_cycles);
      w.u64(detailed_cycles);
      // The self-profile *cycle count* is deterministic (its cadence is a
      // pure function of `now`) and feeds a sample-buffer column, so it is
      // carried; the wall-clock seconds stay volatile and uncarried.
      w.u64(prof.timed_cycles);
    }
    if (power_hist) power_hist->save_state(cw.section(CkptSection::kHist));
    if (samples) samples->save_state(cw.section(CkptSection::kSamples));
    if (tracer) tracer->save_state(cw.section(CkptSection::kTracer));
    if (opts.record_cmp_trace || opts.record_core_traces) {
      ByteWriter& w = cw.section(CkptSection::kResPower);
      res.cmp_power_trace.save_state(w);
      w.u64(res.core_power_traces.size());
      for (const TimeSeries& t : res.core_power_traces) t.save_state(w);
    }
    return cw.finish();
  };

  // --- checkpoint carry application ---
  // restore_checkpoint() already loaded the component sections into the
  // members; the run-scoped remainder lands here, now that the locals
  // exist. Consumed so a later run() on this simulator starts fresh.
  if (carry_) {
    now = carry_->cycle;
    if (carry_->cycle != 0) {
      epoch_over = carry_->epoch_over;
      epoch_acc = carry_->epoch_acc;
      epoch_n = carry_->epoch_n;
      res.spin_gated_cycles = carry_->spin_gated_cycles;
      detailed_cycles = carry_->detailed_cycles;
      prof.timed_cycles = carry_->prof_timed_cycles;
      f.freq_acc = std::move(carry_->freq_acc);
      f.est_ema = std::move(carry_->est_ema);
      f.act_ema = std::move(carry_->act_ema);
      f.eff_budget = std::move(carry_->eff_budget);
      f.thermal_acc = std::move(carry_->thermal_acc);
      f.finished = std::move(carry_->finished);
      finished_count = 0;
      for (CoreId i = 0; i < n; ++i) {
        if (f.finished[i] != 0) {
          ++finished_count;
          res.cores[i].finish_cycle = cores_[i]->finish_cycle;
        }
      }
      // Raw run-scoped payloads: applied when the matching consumer exists
      // in this run; a mismatch (different RunOptions than the captured
      // run) leaves the freshly-constructed state.
      const auto apply = [](const std::string& bytes, auto&& fn) {
        if (bytes.empty()) return;
        ByteReader r(bytes);
        fn(r);
      };
      apply(carry_->acct, [&](ByteReader& r) { acct.load_state(r); });
      if (power_hist) {
        apply(carry_->hist,
              [&](ByteReader& r) { power_hist->load_state(r); });
      }
      if (samples) {
        apply(carry_->samples,
              [&](ByteReader& r) { samples->load_state(r); });
      }
      if (tracer) {
        apply(carry_->tracer,
              [&](ByteReader& r) { tracer->load_state(r); });
      }
      if (opts.record_cmp_trace || opts.record_core_traces) {
        apply(carry_->res_power, [&](ByteReader& r) {
          res.cmp_power_trace.load_state(r);
          if (r.u64() == res.core_power_traces.size()) {
            for (TimeSeries& t : res.core_power_traces) t.load_state(r);
          }
        });
      }
    }
    carry_.reset();
  }

  using ProfClock = std::chrono::steady_clock;  // lint:allowed-wallclock
  const auto prof_lap = [](ProfClock::time_point t0, double& acc) {
    const auto t1 = ProfClock::now();
    acc += std::chrono::duration<double>(t1 - t0).count() *
           static_cast<double>(kSelfProfilePeriod);
    return t1;
  };

  // --- sharded cycle loop setup (sim/shard_pool.hpp) ---
  // Cores are split into `shards` contiguous ranges, one per host worker;
  // per-core work (gate, tick phases, power model, smoothing, thermal and
  // spin attribution) runs shard-parallel, and everything that touches
  // shared or ordered state runs at a sequential point on this thread.
  // sim_threads == 1 runs the very same phased code inline (no workers),
  // which is what makes results structurally identical across thread
  // counts: thread count never selects a different code path, only how the
  // per-core loops are partitioned.
  const std::uint32_t shards = std::min<std::uint32_t>(
      std::max<std::uint32_t>(1, cfg_.sim_threads), n);
  ShardPool pool(shards, opts.shard_jitter_ns);
  if (tracer) tracer->enable_staging(n);
  for (CoreId i = 0; i < n; ++i) {
    cores_[i]->set_mem_defer(&f.mem_defer[i]);
  }
  // The thrifty/meeting-point controllers gate cores off cross-core state
  // that moves mid-pre-pass (thrifty reads the global barrier-episode count
  // earlier cores' completion deliveries bump in the same cycle), so under
  // those techniques every core's gate+commit runs in the sequential
  // pre-pass, in core order — the serial interleaving. Otherwise only cores
  // with a sync op in flight (whose completion touches shared SyncState)
  // are pre-passed.
  const bool seq_gate_all = thrifty_ != nullptr || meeting_ != nullptr;

  // Gate + commit phase for core i: decides whether the core ticks this
  // cycle (frequency scaling, DVFS stalls, sleep states) and, if so, runs
  // completion delivery + retirement. Callable from the pre-pass (main
  // thread) or, for cores with no shared-state hazard, from the shard that
  // owns core i — so it is held to the parallel-region contract
  // (phase-purity checker); the justified exceptions are marked inline.
  // ptb-lint: parallel-region-begin(gate_and_commit)
  const auto gate_and_commit = [&](CoreId i) {
    Core& core = *cores_[i];

    // Baseline controllers (prior art; Section II.C).
    bool asleep = false;
    double freq_ratio = 1.0;
    double vdd_ratio = 1.0;
    bool stalled = false;
    if (enforcers_active) {
      const PowerEnforcer& enf = *enforcers_[i];
      freq_ratio = enf.freq_ratio();
      vdd_ratio = enf.vdd_ratio();
      stalled = enf.stalled(now);
    }
    // Guarded: when thrifty_/meeting_ exist, seq_gate_all pre-passes every
    // core on the main thread (see above), so these arms never run on a
    // shard worker — the barrier-synchronized controllers and the global
    // sync_ counters are only read at the serial interleaving.
    // ptb-lint: allow-begin(phase-purity)
    if (thrifty_ && !f.finished[i]) {
      asleep = thrifty_->tick(i, now, trackers_[i].state(),
                              sync_->barrier_episodes,
                              core.rob_occupancy() == 0);
    }
    if (meeting_ && !f.finished[i]) {
      meeting_->tick(i, now, trackers_[i].state());
      const DvfsMode& m = kDvfsModes[meeting_->mode_for(i)];
      freq_ratio = m.freq_ratio;
      vdd_ratio = m.vdd_ratio;
    }
    // ptb-lint: allow-end

    bool active = false;
    if (!f.finished[i] && !stalled && !asleep) {
      f.freq_acc[i] += freq_ratio;
      if (f.freq_acc[i] >= 1.0) {
        f.freq_acc[i] -= 1.0;
        active = true;
      }
    }
    f.active[i] = active ? 1 : 0;
    f.vdd[i] = vdd_ratio;
    if (active) core.tick_commit_phase(now);
  };
  // ptb-lint: parallel-region-end(gate_and_commit)

  // The parallel region of one cycle, for shard s: remaining gate+commit
  // phases, the fetch phases (memory accesses parked per core), the
  // activity snapshot, the shard's slice of the batched power model, EMA
  // smoothing, spin attribution and the thermal step. Everything touched
  // here is either core-private or a disjoint slice of the CycleFrame;
  // cross-shard visibility is established by the pool's epoch barriers.
  // ptb-lint: parallel-region-begin(shard_job)
  const std::function<void(std::uint32_t)> shard_job =
      [&](std::uint32_t s) {
        const CoreId begin =
            static_cast<CoreId>(static_cast<std::uint64_t>(s) * n / shards);
        const CoreId end = static_cast<CoreId>(
            (static_cast<std::uint64_t>(s) + 1) * n / shards);
        for (CoreId i = begin; i < end; ++i) {
          Core& core = *cores_[i];
          if (!f.seq_gated[i]) gate_and_commit(i);
          if (f.active[i] != 0) core.tick_fetch_phase(now);

          if (cycle_detailed) {
            f.gated[i] = (f.active[i] == 0 || core.idle()) ? 1 : 0;
            // Actual power: exact base tokens of the instructions entering
            // the pipeline this cycle plus the (small) ROB residency
            // component. Front-end attribution makes the fetch-throttling
            // techniques act on the power curve within a few cycles, as in
            // the paper.
            f.rob_occ[i] = core.rob_occupancy();
            f.fetch_exact[i] =
                f.active[i] != 0 ? core.fetch_tokens_exact() : 0.0;
            // Control estimate: PTHT tokens of the instructions being
            // fetched (residency folded into the stored values, III.B).
            f.fetch_est[i] =
                f.active[i] != 0 ? core.fetch_tokens_estimated() : 0.0;
          }

          if (!f.finished[i] && core.finished()) {
            f.finished[i] = 1;
            core.finish_cycle = now;
            res.cores[i].finish_cycle = now;
          }
        }
        // Fast-forward cycles skip the whole power plane: model, EMAs,
        // spin/thermal attribution. The duty-cycle extrapolation at the
        // end of run() scales the energy results back up.
        if (!cycle_detailed) return;

        // Shard slice of the batched power model + smoothing.
        const std::uint32_t cnt = end - begin;
        const CoreActivityBatch batch{
            f.fetch_exact.data() + begin, f.fetch_est.data() + begin,
            f.rob_occ.data() + begin,     f.active.data() + begin,
            f.gated.data() + begin,       f.vdd.data() + begin};
        core_cycle_power_batch(
            cfg_.power, batch, cnt, wire_overhead, f.act_power.data() + begin,
            est_needed ? f.est_power.data() + begin : nullptr);
        for (CoreId i = begin; i < end; ++i) {
          f.act_ema[i] += kEmaAlpha * (f.act_power[i] - f.act_ema[i]);
          f.act_power[i] = f.act_ema[i];
        }
        if (est_needed) {
          for (CoreId i = begin; i < end; ++i) {
            f.est_ema[i] += kEmaAlpha * (f.est_power[i] - f.est_ema[i]);
            f.est_power[i] = f.est_ema[i];
          }
        }
        // Per-core accounting that only reads this core's smoothed power:
        // value-identical to running it in the sequential phase 4, but it
        // rides the parallel region for free.
        for (CoreId i = begin; i < end; ++i) {
          trackers_[i].attribute_cycle(f.act_power[i]);
          f.thermal_acc[i] += f.act_power[i];
          if (opts.record_core_traces) {
            res.core_power_traces[i].add(static_cast<double>(now),
                                         f.act_power[i]);
          }
        }
        if ((now + 1) % kThermalStep == 0) {
          for (CoreId i = begin; i < end; ++i) {
            thermal_.step(
                i, f.thermal_acc[i] / static_cast<double>(kThermalStep),
                static_cast<double>(kThermalStep));
            f.thermal_acc[i] = 0.0;
          }
        }
      };
  // ptb-lint: parallel-region-end(shard_job)

  const bool progress_on = opts.observer != nullptr &&
                           opts.observer->progress != nullptr &&
                           opts.observer->progress_every > 0;

  for (; now < cfg_.max_cycles && finished_count < n; ++now) {
    // Checkpoint capture: top of the loop body, before the cycle executes,
    // so a restored run replays `checkpoint_at` onward (checkpoint.hpp).
    if (now == opts.checkpoint_at && opts.checkpoint_out != nullptr) {
      *opts.checkpoint_out = capture_checkpoint();
    }
    // Sampled simulation: the first `sample_detail` cycles of every
    // `sample_period` run detailed; the rest fast-forward (cores, memory,
    // NoC and sync still tick exactly — only the power/control/accounting
    // planes are skipped, with enforcement ratios frozen).
    cycle_detailed = !sampling || (now % cfg_.sample_period) <
                                      cfg_.sample_detail;
    if (cycle_detailed) ++detailed_cycles;

    // Stamp the cycle once; emit sites then need no cycle parameter.
    // Per-core emits from here to stage_flush() land in per-core staging
    // slots, reproducing the serial core-major emission order.
    if (tracer) {
      tracer->begin_cycle(now);
      tracer->stage_begin();
    }

    const bool prof_cycle = stats_on && now % kSelfProfilePeriod == 0;
    ProfClock::time_point pt{};
    if (prof_cycle) {
      ++prof.timed_cycles;
      pt = ProfClock::now();
    }

    // --- 1. sequential pre-pass + parallel region: core tick phases,
    //        activity frame, shard-sliced power model ---
    if (seq_gate_all) {
      for (CoreId i = 0; i < n; ++i) {
        f.seq_gated[i] = 1;
        gate_and_commit(i);
      }
    } else {
      for (CoreId i = 0; i < n; ++i) {
        f.seq_gated[i] = cores_[i]->sync_pending() ? 1 : 0;
        if (f.seq_gated[i] != 0) gate_and_commit(i);
      }
    }
    pool.run(shard_job);

    if (prof_cycle) pt = prof_lap(pt, prof.tick_s);

    // --- 1b. sequential point: trace flush, memory replay, merges ---
    if (tracer) tracer->stage_flush();
    // Replay every parked memory access in (core, program) order — exactly
    // the order the serial loop issues them — so cache/directory/NoC state
    // evolves identically at any shard count.
    for (CoreId i = 0; i < n; ++i) cores_[i]->resolve_deferred(now);
    finished_count = 0;
    for (CoreId i = 0; i < n; ++i) {
      finished_count += f.finished[i] != 0 ? 1u : 0u;
    }
    // Progress callback (RunObserver): fires at the sequential point in
    // both detailed and fast-forward cycles so a sampled run still
    // reports. Read-only over deterministic state — emitting progress can
    // never change a result byte.
    if (progress_on && (now + 1) % opts.observer->progress_every == 0) {
      RunProgress p;
      p.cycle = now + 1;
      p.max_cycles = cfg_.max_cycles;
      p.cores_finished = finished_count;
      p.num_cores = n;
      for (CoreId i = 0; i < n; ++i) p.committed += cores_[i]->committed;
      p.ipc = static_cast<double>(p.committed) /
              static_cast<double>(now + 1);
      p.watts = acct.power_stat().mean();
      p.detailed = cycle_detailed;
      opts.observer->progress(p);
    }
    // Fast-forward cycles end here: the architectural planes above ran
    // exactly; the power/control/accounting phases below are skipped with
    // control state (enforcement ratios, balancer wires, EMAs) frozen.
    // The flit hops this cycle's replayed accesses routed are drained and
    // discarded so they don't leak into the next detailed cycle's energy.
    if (!cycle_detailed) {
      (void)mesh_->drain_flit_hops();
      continue;
    }
    // CMP-wide totals use the one canonical FP reduction order.
    double total_act = deterministic_total(f.act_power.data(), n);
    const double total_est =
        est_needed ? deterministic_total(f.est_power.data(), n) : 0.0;
    // NoC activity energy (uncore); the flit hops drained here are the ones
    // this cycle's replayed accesses routed.
    total_act += static_cast<double>(mesh_->drain_flit_hops()) *
                 kNocTokensPerFlitHop;

    // --- 2. global over-budget signal ---
    if (tracer && now % cfg_.trace.budget_sample_period == 0) {
      // Deficit of the *control* signal (the PTHT estimate the balancer and
      // enforcers act on); negative while under budget.
      tracer->emit(TraceEventType::kBudgetSample, kNoCore, 0,
                   total_est - budgets_.global_budget());
    }
    const bool global_over_now = total_est > budgets_.global_budget();
    epoch_acc += total_est;
    if (++epoch_n >= cfg_.dvfs.window_cycles) {
      epoch_over =
          (epoch_acc / epoch_n) > budgets_.global_budget();
      epoch_acc = 0.0;
      epoch_n = 0;
    }
    const bool global_over = ptb_active ? global_over_now : epoch_over;

    if (prof_cycle) pt = prof_lap(pt, prof.power_s);

    // --- 3. PTB balancing ---
    if (ptb_active) {
      PtbPolicy policy = cfg_.ptb.policy;
      if (policy == PtbPolicy::kDynamic) {
        if (cfg_.ptb.dynamic_uses_ground_truth) {
          for (CoreId i = 0; i < n; ++i) f.states[i] = trackers_[i].state();
          policy = selector_->select(f.states);
        } else {
          policy = selector_->select_heuristic(now, f.est_power);
        }
      }
      if (clustered_) {
        clustered_->cycle(now, f.est_power.data(), budgets_.global_budget(),
                          policy, f.eff_budget.data());
      } else {
        balancer_->cycle(now, f.est_power.data(), global_over, policy,
                         f.eff_budget.data());
      }
    }

    // --- 3. local enforcement ---
    if (enforcers_active) {
      for (CoreId i = 0; i < n; ++i) {
        enforcers_[i]->tick(now, f.est_power[i], f.eff_budget[i], global_over,
                            cfg_.ptb.relax_threshold, *cores_[i]);
      }
    }

    // --- 3b. spinner gating (future-work extension) ---
    if (!gate_detectors_.empty()) {
      for (CoreId i = 0; i < n; ++i) {
        const bool spinning = gate_detectors_[i].tick(f.est_power[i]);
        if (spinning && !f.finished[i] &&
            now % cfg_.ptb.spin_gate_period >= 2) {
          // Duty-cycled fetch gate: the spin loop still polls during the
          // 2-cycle window at the start of each period.
          cores_[i]->set_fetch_limit(0);
          ++res.spin_gated_cycles;
        } else if (cfg_.technique != TechniqueKind::kTwoLevel) {
          // Release the gate ourselves: only the 2-level enforcer manages
          // the fetch limit per cycle.
          cores_[i]->set_fetch_limit(cfg_.core.fetch_width);
        }
      }
    }

    if (prof_cycle) pt = prof_lap(pt, prof.control_s);

    // --- 4. accounting (the per-core spin/thermal attribution already ran
    //        in the parallel region; only CMP-level totals remain) ---
    acct.record_cycle(total_act);
    if (power_hist) power_hist->add(total_act);
    if (opts.record_cmp_trace) {
      res.cmp_power_trace.add(static_cast<double>(now), total_act);
    }

    // --- 5. invariant audit (off the results path; read-only). Disabled
    //        under sampling: the accounting cross-checks assume every
    //        cycle is recorded. ---
    if (auditor_ && !sampling) {
      audit_cycle(now, acct, total_act, f.eff_budget.data(),
                  f.finished.data(), finished_count);
    }

    if (samples && (now + 1) % opts.stats_sample_every == 0) {
      samples->sample(now);
    }
    if (prof_cycle) prof_lap(pt, prof.account_s);
  }

  // Detach the deferral queues: a direct Core::tick() on this simulator
  // (tests, introspection) must take the classic immediate path again.
  for (CoreId i = 0; i < n; ++i) cores_[i]->set_mem_defer(nullptr);

  if (auditor_ && !sampling) {
    // The periodic scan can miss the tail of the run; always close with a
    // full coherence sweep so short runs are audited end-to-end too.
    if (auditor_->level() == AuditLevel::kFull) {
      auditor_->check_coherence(now, *mem_);
    }
    PTB_ASSERTF(auditor_->clean(), "invariant audit failed: %s",
                auditor_->report().summary().c_str());
    res.audit_checks = auditor_->checks_run();
  }
  res.machine_fingerprint = machine_fingerprint(cfg_);

  res.cycles = now;
  res.hit_max_cycles = (finished_count < n);
  // Sampled runs extrapolate energy by the duty cycle: only detailed
  // cycles accounted power, so the totals scale by cycles/detailed.
  // state_cycles stay raw detailed-window counts (scaling integer cycle
  // tallies would fabricate precision); a non-sampling run multiplies by
  // exactly 1.0 — byte-identical.
  double sample_scale = 1.0;
  if (sampling && detailed_cycles > 0) {
    sample_scale =
        static_cast<double>(now) / static_cast<double>(detailed_cycles);
  }
  res.energy = acct.energy() * sample_scale;
  res.aopb = acct.aopb() * sample_scale;
  res.power = acct.power_stat();
  for (CoreId i = 0; i < n; ++i) {
    CoreResult& c = res.cores[i];
    c.committed = cores_[i]->committed;
    c.flushes = cores_[i]->flushes;
    for (std::uint32_t s = 0; s < kNumExecStates; ++s) {
      c.state_cycles[s] =
          trackers_[i].cycles_in(static_cast<ExecState>(s));
    }
    c.spin_energy = trackers_[i].spin_power() * sample_scale;
    c.energy = trackers_[i].total_power() * sample_scale;
    c.temp_mean = thermal_.history(i).mean();
    c.temp_std = thermal_.history(i).stddev();
    res.spin_energy += c.spin_energy;
    res.total_committed += c.committed;
    res.dvfs_transitions += enforcers_[i]->controller().dvfs().transitions;
  }
  if (balancer_) {
    res.tokens_donated = balancer_->tokens_donated;
    res.tokens_granted = balancer_->tokens_granted;
    res.tokens_evaporated = balancer_->tokens_evaporated;
  } else if (clustered_) {
    res.tokens_donated = clustered_->tokens_donated();
    res.tokens_granted = clustered_->tokens_granted();
  }
  if (selector_) {
    res.to_one_cycles = selector_->to_one_cycles;
    res.to_all_cycles = selector_->to_all_cycles;
  }
  if (thrifty_) res.barrier_sleep_cycles = thrifty_->sleep_cycles;
  if (meeting_) res.meeting_point_episodes = meeting_->episodes;
  if (tracer) {
    std::uint32_t wire_latency = 0;
    if (balancer_) wire_latency = balancer_->wire_latency();
    else if (clustered_) wire_latency = clustered_->wire_latency();
    res.trace = std::make_shared<EventTrace>(
        tracer->finish(n, now, wire_latency));
    wire_tracer(nullptr);
  }
  if (stats) {
    StatsDump d = StatsDump::snapshot(*stats, samples.get(),
                                      opts.stats_sample_every);
    d.bench = profile_.name;
    d.num_cores = n;
    d.cycles = now;
    d.config_fingerprint = config_fingerprint(cfg_);
    res.stats = std::make_shared<const StatsDump>(std::move(d));
  }
  return res;
}

void CmpSimulator::audit_cycle(Cycle now, const EnergyAccounting& acct,
                               double total_act, const double* eff_budget,
                               const std::uint8_t* finished,
                               std::uint32_t finished_count) {
  InvariantAuditor& aud = *auditor_;
  if (balancer_) {
    aud.check_balancer(now, *balancer_, eff_budget, cfg_.num_cores);
  } else if (clustered_) {
    for (std::uint32_t k = 0; k < clustered_->num_clusters(); ++k) {
      const PtbLoadBalancer& b = clustered_->cluster(k);
      aud.check_balancer(now, b, eff_budget + clustered_->cluster_begin(k),
                         b.num_cores());
    }
  }
  for (CoreId i = 0; i < cfg_.num_cores; ++i) {
    aud.check_core(now, i, *cores_[i]);
    aud.check_enforcer(now, i, *enforcers_[i], *cores_[i]);
  }
  aud.check_accounting(now, acct, total_act);
  aud.check_shard_merge(now, finished, cfg_.num_cores, finished_count);
  if (aud.coherence_scan_due(now)) aud.check_coherence(now, *mem_);
  // Fail fast: a violated invariant poisons every later cycle, so abort at
  // the first dirty cycle with the full per-class digest.
  PTB_ASSERTF(aud.clean(), "invariant audit failed at cycle %llu: %s",
              static_cast<unsigned long long>(now),
              aud.report().summary().c_str());
}

}  // namespace ptb

// Parallel experiment runner: a fixed-size pool of std::thread workers that
// fans independent simulation runs out across the host's cores and hands the
// results back in deterministic submission order.
//
// Every (profile, technique, seed) cell of a paper figure is an independent,
// seed-deterministic simulation — the same embarrassingly parallel shape the
// simulated workloads themselves have. The pool exploits it without touching
// the simulator: each task constructs its own CmpSimulator, so no simulator
// state is ever shared between host threads.
//
// Determinism contract: results are indexed by submission order, never by
// completion order, and each task is a pure function of its inputs. A batch
// run with 1 worker and with N workers therefore produces bit-identical
// result vectors (asserted in tests/sim/run_pool_test.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/cmp.hpp"
#include "workloads/phases.hpp"

namespace ptb {

class RunPool {
 public:
  /// A unit of work: any callable producing one RunResult. Tasks must be
  /// independent (no ordering between tasks of one batch is guaranteed
  /// beyond the result ordering).
  using Task = std::function<RunResult()>;

  /// Spawns `jobs` worker threads (0 = default_jobs()). Workers persist for
  /// the pool's lifetime and sleep when the queue is empty.
  explicit RunPool(unsigned jobs = 0);

  /// Joins the workers. Pending tasks are completed first (the destructor
  /// drains the queue like wait_all()).
  ~RunPool();

  RunPool(const RunPool&) = delete;
  RunPool& operator=(const RunPool&) = delete;

  /// Enqueues a task; returns its index in the current batch. Thread-safe,
  /// but batches are normally built from one thread (the bench main).
  std::size_t submit(Task task);

  /// Convenience: enqueue one simulation run (copies cfg/opts; the profile
  /// reference must stay valid until wait_all() returns — suite profiles
  /// are static, so this holds for every bench).
  std::size_t submit(const WorkloadProfile& profile, const SimConfig& cfg,
                     const RunOptions& opts = {});

  /// Blocks until every task submitted since the last wait_all() has
  /// finished, then returns their results in submission order and resets
  /// the batch (the pool is immediately reusable).
  std::vector<RunResult> wait_all();

  /// Number of worker threads.
  unsigned jobs() const { return static_cast<unsigned>(workers_.size()); }

  /// The --jobs default: the host's hardware concurrency, at least 1.
  static unsigned default_jobs();

 private:
  void worker_loop();

  // Lock discipline is proven at compile time by clang -Wthread-safety
  // (see common/thread_annotations.hpp): every member below is only
  // touched while mu_ is held; tasks run with the lock dropped.
  Mutex mu_;
  // condition_variable_any: waits on the annotated MutexLock (BasicLockable)
  // so the capability accounting survives the wait.
  std::condition_variable_any work_cv_;  // signals workers: task ready / stop
  std::condition_variable_any done_cv_;  // signals wait_all: batch complete
  // Current batch, by submission index.
  std::vector<Task> tasks_ PTB_GUARDED_BY(mu_);
  // First not-yet-claimed task.
  std::size_t next_task_ PTB_GUARDED_BY(mu_) = 0;
  // Finished tasks in this batch.
  std::size_t completed_ PTB_GUARDED_BY(mu_) = 0;
  // Slot per task, by submission index.
  std::vector<RunResult> results_ PTB_GUARDED_BY(mu_);
  bool stop_ PTB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace ptb

#include "sim/shard_pool.hpp"

#include <chrono>

#include "common/assert.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ptb {

namespace {

// Spin this many times on the barrier before starting to yield. The
// parallel region of one cycle is a few microseconds, so a short spin
// usually catches the next epoch without a context switch; past that the
// host is oversubscribed (or the run ended) and yielding is the right call.
constexpr int kSpinRounds = 4096;

inline void relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

void pin_to_cpu(std::thread& t, std::uint32_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  // Best effort: affinity can be restricted by cgroups/containers, and a
  // failed pin only costs locality, never correctness.
  pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)cpu;
#endif
}

}  // namespace

ShardPool::ShardPool(std::uint32_t threads, std::uint32_t jitter_ns)
    : num_threads_(threads < 1 ? 1 : threads), jitter_ns_(jitter_ns) {
  const std::uint32_t hw = std::thread::hardware_concurrency();
  workers_.reserve(num_threads_ - 1);
  for (std::uint32_t s = 1; s < num_threads_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
    // Pin only when the host can give every shard (incl. shard 0 on the
    // caller) its own CPU; pinning an oversubscribed host serializes it.
    if (hw >= num_threads_) pin_to_cpu(workers_.back(), s);
  }
}

ShardPool::~ShardPool() {
  if (!workers_.empty()) {
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto& w : workers_) w.join();
  }
}

void ShardPool::worker_loop(std::uint32_t shard) {
  // Deterministically seeded per-worker LCG for the test-only jitter
  // (MINSTD constants). Timing-only: no simulation state ever sees it.
  std::uint64_t jitter_state = 0x9e3779b9u + shard;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen_epoch) {
      if (++spins < kSpinRounds) {
        relax();
      } else {
        std::this_thread::yield();
      }
    }
    ++seen_epoch;
    if (stop_.load(std::memory_order_relaxed)) return;
    if (jitter_ns_ > 0) {
      jitter_state = (jitter_state * 48271u) % 0x7fffffffu;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(jitter_state % jitter_ns_));
    }
    (*job_)(shard);
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

void ShardPool::run(const std::function<void(std::uint32_t)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  PTB_ASSERT(pending_.load(std::memory_order_relaxed) == 0,
             "shard pool re-entered while an epoch is in flight");
  job_ = &fn;
  pending_.store(num_threads_ - 1, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  fn(0);
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins < kSpinRounds) {
      relax();
    } else {
      std::this_thread::yield();
    }
  }
  job_ = nullptr;
}

}  // namespace ptb

// DiskRunCache + RunArtifact (declared in sim/experiment.hpp beside
// BaseRunCache): the persistent, content-addressed run cache behind the
// ptb-serve daemon.
//
// On-disk format, in the trace subsystem's explicit-little-endian,
// corrupt-rejecting idiom (src/trace/trace.cpp): a 24-byte frame header
// [magic "PTBR" | u32 format version | u64 payload length | u64 run key]
// followed by the RunArtifact JSON payload bytes. Every field is checked on
// read — wrong magic, foreign version, short/long payload or a key that
// does not match the requested address all reject the entry (it is counted,
// unlinked, and reads as a miss), so a truncated write or a bit-flip can
// never serve wrong bytes; the caller re-simulates and the overwrite heals
// the slot. Writes go to a unique temp file in the same directory and
// rename() into place, so readers only ever see complete entries.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <unistd.h>

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/reporting.hpp"
#include "sim/trace_export.hpp"
#include "stats/dump.hpp"

namespace ptb {

namespace {

constexpr char kMagic[4] = {'P', 'T', 'B', 'R'};
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex16(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = v;
  return true;
}

void fnv_mix_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

// ---------------------------------------------------------------------------
// RunArtifact
// ---------------------------------------------------------------------------

RunArtifact RunArtifact::from_result(const std::string& benchmark,
                                     const SimConfig& cfg,
                                     const RunResult& r) {
  RunArtifact a;
  a.benchmark = benchmark;
  a.num_cores = r.num_cores;
  a.key = DiskRunCache::run_key(benchmark, cfg);
  // Qualified: the unqualified names would resolve to the data members.
  a.config_fingerprint = ptb::config_fingerprint(cfg);
  a.machine_fingerprint = ptb::machine_fingerprint(cfg);
  a.cycles = r.cycles;
  a.hit_max_cycles = r.hit_max_cycles;
  a.energy = r.energy;
  a.aopb = r.aopb;
  a.budget = r.budget;
  a.peak_power = r.peak_power;
  a.spin_energy = r.spin_energy;
  a.total_committed = r.total_committed;
  a.summary_kv = run_summary_kv(r);
  a.stats_json = r.stats ? r.stats->to_json(/*include_volatile=*/false)
                         : std::string();
  return a;
}

std::string RunArtifact::to_payload() const {
  std::string out = "{";
  out += "\"schema_version\":" + std::to_string(kSchemaVersion) + ",";
  out += "\"benchmark\":\"" + json::escape(benchmark) + "\",";
  out += "\"num_cores\":" + std::to_string(num_cores) + ",";
  out += "\"key\":\"" + hex16(key) + "\",";
  out += "\"config_fingerprint\":\"" + hex16(config_fingerprint) + "\",";
  out += "\"machine_fingerprint\":\"" + hex16(machine_fingerprint) + "\",";
  out += "\"cycles\":" + std::to_string(cycles) + ",";
  out += std::string("\"hit_max_cycles\":") +
         (hit_max_cycles ? "true" : "false") + ",";
  out += "\"energy\":" + format_g17(energy) + ",";
  out += "\"aopb\":" + format_g17(aopb) + ",";
  out += "\"budget\":" + format_g17(budget) + ",";
  out += "\"peak_power\":" + format_g17(peak_power) + ",";
  out += "\"spin_energy\":" + format_g17(spin_energy) + ",";
  out += "\"total_committed\":" + std::to_string(total_committed) + ",";
  out += "\"summary_kv\":\"" + json::escape(summary_kv) + "\",";
  out += "\"stats_json\":\"" + json::escape(stats_json) + "\"";
  out += "}";
  return out;
}

bool RunArtifact::parse(std::string_view payload, RunArtifact& out) {
  json::Value doc;
  std::string err;
  if (!json::parse(payload, doc, err) || !doc.is_object()) return false;

  RunArtifact a;
  std::uint32_t schema = 0;
  const json::Value* v = doc.find("schema_version");
  if (v == nullptr || !v->as_u32(schema) || schema != kSchemaVersion)
    return false;

  const auto str = [&](const char* k, std::string& dst) {
    const json::Value* m = doc.find(k);
    if (m == nullptr || !m->is_string()) return false;
    dst = m->as_string();
    return true;
  };
  const auto hex = [&](const char* k, std::uint64_t& dst) {
    std::string s;
    return str(k, s) && parse_hex16(s, dst);
  };
  const auto u64 = [&](const char* k, std::uint64_t& dst) {
    const json::Value* m = doc.find(k);
    return m != nullptr && m->as_u64(dst);
  };
  const auto f64 = [&](const char* k, double& dst) {
    const json::Value* m = doc.find(k);
    if (m == nullptr || !m->is_number()) return false;
    dst = m->as_double();
    return true;
  };

  std::uint64_t cores = 0;
  const json::Value* b = doc.find("hit_max_cycles");
  if (!str("benchmark", a.benchmark) || !u64("num_cores", cores) ||
      cores > 0xffffffffull || !hex("key", a.key) ||
      !hex("config_fingerprint", a.config_fingerprint) ||
      !hex("machine_fingerprint", a.machine_fingerprint) ||
      !u64("cycles", a.cycles) || b == nullptr || !b->is_bool() ||
      !f64("energy", a.energy) || !f64("aopb", a.aopb) ||
      !f64("budget", a.budget) || !f64("peak_power", a.peak_power) ||
      !f64("spin_energy", a.spin_energy) ||
      !u64("total_committed", a.total_committed) ||
      !str("summary_kv", a.summary_kv) ||
      !str("stats_json", a.stats_json)) {
    return false;
  }
  a.num_cores = static_cast<std::uint32_t>(cores);
  a.hit_max_cycles = b->as_bool();
  out = std::move(a);
  return true;
}

// ---------------------------------------------------------------------------
// DiskRunCache
// ---------------------------------------------------------------------------

DiskRunCache::DiskRunCache(std::string dir) : dir_(std::move(dir)) {
  PTB_ASSERT(!dir_.empty(), "cache directory must not be empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  PTB_ASSERTF(!ec && std::filesystem::is_directory(dir_),
              "cannot create cache directory '%s'", dir_.c_str());
}

std::uint64_t DiskRunCache::run_key(std::string_view benchmark,
                                    const SimConfig& cfg) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  const std::uint32_t schema = RunArtifact::kSchemaVersion;
  fnv_mix_bytes(h, &schema, sizeof(schema));
  const std::uint64_t fp = config_fingerprint(cfg);
  fnv_mix_bytes(h, &fp, sizeof(fp));
  fnv_mix_bytes(h, benchmark.data(), benchmark.size());
  return h;
}

std::string DiskRunCache::path_for(std::uint64_t key) const {
  return dir_ + "/" + hex16(key) + ".run";
}

bool DiskRunCache::load(std::uint64_t key, std::string& payload) const {
  const std::string path = path_for(key);
  std::string raw;
  if (!read_file(path, raw)) {
    misses_.fetch_add(1);
    return false;
  }
  const auto corrupt = [&] {
    corrupt_.fetch_add(1);
    std::error_code ec;
    std::filesystem::remove(path, ec);  // heal the slot on the next store
    return false;
  };
  if (raw.size() < kHeaderBytes ||
      std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return corrupt();
  }
  if (get_u32(raw.data() + 4) != kFrameVersion) return corrupt();
  const std::uint64_t len = get_u64(raw.data() + 8);
  if (get_u64(raw.data() + 16) != key) return corrupt();
  if (raw.size() != kHeaderBytes + len) return corrupt();
  // The payload must still be a valid schema-v1 artifact for this very
  // key — framing alone cannot catch a payload-level bit flip.
  RunArtifact a;
  if (!RunArtifact::parse(
          std::string_view(raw).substr(kHeaderBytes), a) ||
      a.key != key) {
    return corrupt();
  }
  payload = raw.substr(kHeaderBytes);
  hits_.fetch_add(1);
  return true;
}

bool DiskRunCache::store(std::uint64_t key, std::string_view payload) const {
  std::string framed;
  framed.reserve(kHeaderBytes + payload.size());
  framed.append(kMagic, sizeof(kMagic));
  put_u32(framed, kFrameVersion);
  put_u64(framed, payload.size());
  put_u64(framed, key);
  framed.append(payload.data(), payload.size());

  // Unique temp name per (process, store): concurrent writers of the same
  // key never clobber each other's partial file, and rename() makes the
  // publish atomic.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = dir_ + "/.tmp." + hex16(key) + "." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(framed.data(), 1, framed.size(), f) == framed.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_for(key).c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  stores_.fetch_add(1);
  enforce_quota();
  return true;
}

// ---------------------------------------------------------------------------
// Warm-checkpoint images
// ---------------------------------------------------------------------------

std::string DiskRunCache::warm_checkpoint_path(std::uint64_t ckpt_fp) const {
  return dir_ + "/ckpt-" + hex16(ckpt_fp) + ".ptbc";
}

bool DiskRunCache::load_warm_checkpoint(std::uint64_t ckpt_fp,
                                        std::string& frame) const {
  const std::string path = warm_checkpoint_path(ckpt_fp);
  std::string raw;
  if (!read_file(path, raw)) {
    warm_misses_.fetch_add(1);
    return false;
  }
  // Full frame validation up front (magic/version/length/checksum) plus
  // the address cross-check: the image must be the cycle-0 frame of the
  // very fingerprint it is filed under. Anything else is corruption (or a
  // foreign file) — count, unlink, heal on the next store.
  CheckpointReader ck;
  if (!ck.parse(raw) || ck.header().checkpoint_fp != ckpt_fp ||
      ck.header().cycle != 0) {
    corrupt_.fetch_add(1);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    warm_misses_.fetch_add(1);
    return false;
  }
  frame = std::move(raw);
  warm_hits_.fetch_add(1);
  return true;
}

bool DiskRunCache::store_warm_checkpoint(std::uint64_t ckpt_fp,
                                         std::string_view frame) const {
  std::string err;
  if (!save_checkpoint_file(warm_checkpoint_path(ckpt_fp), frame, &err)) {
    return false;
  }
  warm_stores_.fetch_add(1);
  enforce_quota();
  return true;
}

// ---------------------------------------------------------------------------
// Size quota
// ---------------------------------------------------------------------------

void DiskRunCache::enforce_quota() const {
  if (max_bytes_ == 0) return;
  namespace fs = std::filesystem;
  struct Entry {
    fs::file_time_type mtime;
    std::string name;  // tie-break -> deterministic eviction order
    std::uint64_t size = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (ec) return;  // directory races with concurrent eviction: give up
    const std::string name = de.path().filename().string();
    // Only our published entries participate: .run artifacts and
    // ckpt-*.ptbc images. In-flight temp files (.tmp.*) are someone's
    // pending publish, never reaped here.
    const bool is_run = name.size() == 20 && name.ends_with(".run");
    const bool is_ckpt =
        name.size() == 26 && name.starts_with("ckpt-") &&
        name.ends_with(".ptbc");
    if (!is_run && !is_ckpt) continue;
    std::error_code sec;
    const std::uint64_t size = de.file_size(sec);
    const fs::file_time_type mtime = de.last_write_time(sec);
    if (sec) continue;  // vanished under us (concurrent eviction)
    total += size;
    entries.push_back(Entry{mtime, name, size});
  }
  if (total <= max_bytes_) return;
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });
  for (const Entry& e : entries) {
    if (total <= max_bytes_) break;
    std::error_code rec;
    if (std::filesystem::remove(dir_ + "/" + e.name, rec) && !rec) {
      total -= e.size;
      evicted_.fetch_add(1);
    }
  }
}

std::string cached_run_payload(const DiskRunCache& cache,
                               const WorkloadProfile& profile,
                               const SimConfig& cfg, bool& hit) {
  const std::uint64_t key = DiskRunCache::run_key(profile.name, cfg);
  return cache.get_or_compute(key, hit, [&] {
    RunOptions opts;
    opts.stats = true;  // the artifact carries the StatsDump JSON
    const RunResult r = run_one(profile, cfg, opts);
    return RunArtifact::from_result(profile.name, cfg, r).to_payload();
  });
}

std::string cached_run_payload(const DiskRunCache& cache,
                               const WorkloadProfile& profile,
                               const SimConfig& cfg, bool& hit,
                               const RunObserver* observer) {
  if (observer == nullptr) {
    return cached_run_payload(cache, profile, cfg, hit);
  }
  // Open-coded get_or_compute with the same counter semantics (load bumps
  // hit/miss/corrupt, store bumps stores + quota enforcement), bracketing
  // each host-level stage for the observer. The payload bytes are
  // byte-identical to the plain overload: stages only wrap the calls.
  const auto begin = [&](const char* stage) {
    if (observer->stage_enter) observer->stage_enter(stage);
  };
  const auto end = [&](const char* stage) {
    if (observer->stage_exit) observer->stage_exit(stage);
  };
  const std::uint64_t key = DiskRunCache::run_key(profile.name, cfg);
  std::string payload;
  begin("cache_probe");
  const bool loaded = cache.load(key, payload);
  end("cache_probe");
  if (loaded) {
    hit = true;
    return payload;
  }
  hit = false;
  begin("simulate");
  RunOptions opts;
  opts.stats = true;  // the artifact carries the StatsDump JSON
  opts.observer = observer;
  const RunResult r = run_one(profile, cfg, opts);
  end("simulate");
  begin("serialize");
  payload = RunArtifact::from_result(profile.name, cfg, r).to_payload();
  end("serialize");
  begin("cache_publish");
  cache.store(key, payload);
  end("cache_publish");
  return payload;
}

}  // namespace ptb

// Export of run results to files: per-cycle power traces as CSV and a
// flat key=value run summary — the handoff format for external plotting
// and regression tracking.
#pragma once

#include <string>

#include "sim/cmp.hpp"

namespace ptb {

/// Value of a decimated series at the last point with time <= t. `cursor`
/// carries the scan position between calls, so walking a trace with
/// monotonically increasing `t` is linear overall; it is never rewound, so
/// out-of-order queries return the value at the cursor, not before `t`.
/// An empty series yields 0. This is the row-alignment primitive behind
/// power_trace_csv.
double sample_at(const TimeSeries& s, double t, std::size_t& cursor);

/// Renders the decimated CMP power trace (and per-core traces when they
/// were recorded) as CSV: `cycle,cmp[,core0,core1,...]`. Rows align on the
/// CMP trace's timestamps; per-core values are sampled at the nearest
/// recorded point at or before each timestamp.
std::string power_trace_csv(const RunResult& r);

/// Flat `key=value` summary of a run (one per line, stable ordering):
/// cycles, energy, aopb, budget, per-state cycle totals, mechanism stats.
std::string run_summary_kv(const RunResult& r);

/// Writes both files into `dir` as `<benchmark>_<cores>c_trace.csv` and
/// `<benchmark>_<cores>c_summary.txt`. Returns false (with no partial
/// files guaranteed removed) if the directory is not writable.
bool export_run(const RunResult& r, const std::string& dir);

}  // namespace ptb

// Export of run results to files: per-cycle power traces as CSV and a
// flat key=value run summary — the handoff format for external plotting
// and regression tracking.
#pragma once

#include <string>

#include "sim/cmp.hpp"

namespace ptb {

/// Renders the decimated CMP power trace (and per-core traces when they
/// were recorded) as CSV: `cycle,cmp[,core0,core1,...]`. Rows align on the
/// CMP trace's timestamps; per-core values are sampled at the nearest
/// recorded point at or before each timestamp.
std::string power_trace_csv(const RunResult& r);

/// Flat `key=value` summary of a run (one per line, stable ordering):
/// cycles, energy, aopb, budget, per-state cycle totals, mechanism stats.
std::string run_summary_kv(const RunResult& r);

/// Writes both files into `dir` as `<benchmark>_<cores>c_trace.csv` and
/// `<benchmark>_<cores>c_summary.txt`. Returns false (with no partial
/// files guaranteed removed) if the directory is not writable.
bool export_run(const RunResult& r, const std::string& dir);

}  // namespace ptb

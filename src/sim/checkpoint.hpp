// Full-state checkpoint frames for CmpSimulator (byte-stable, corrupt-
// rejecting), the substrate under:
//
//   * restore-exactness: a run restored from a mid-run checkpoint produces
//     the same RunResult bytes as the uninterrupted run (asserted by
//     tests/sim/checkpoint_test.cpp at every --sim-threads value);
//   * warm forking: a cycle-0 checkpoint taken right after functional
//     warmup is technique/budget-independent, so a sweep forks its N policy
//     points from one shared warmed image instead of re-warming N times
//     (sim/experiment.hpp wires this through the disk run cache).
//
// Frame layout, following the trace subsystem's serialization idiom
// (little-endian, fields written individually — never structs, padding is
// indeterminate; see trace/trace.hpp):
//
//   u32 magic "PTBC"   u32 version   u64 payload_len   u64 fnv1a(payload)
//   payload:
//     u64 checkpoint_fingerprint     (cache key: machine+seed+bench+cycle)
//     u64 machine_fingerprint        u64 config_fingerprint
//     u64 seed   u32 num_cores   u64 cycle   str benchmark
//     u64 num_sections
//     sections: (u32 tag, u64 length, bytes) ...
//
// Sections are independently parseable: a reader skips unknown tags (a
// newer writer's extra sections degrade to freshly-constructed state) and
// every section loader bounds-checks against its own length. The outer
// checksum catches bit-flips; the length field catches truncation; both
// are exercised by the fault-injection tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace ptb {

inline constexpr std::uint32_t kCheckpointMagic = 0x43425450u;  // "PTBC" LE
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Section tags. Values are part of the on-disk format: never renumber,
/// only append. Restore skips tags it does not know.
enum class CkptSection : std::uint32_t {
  kCores = 1,     // per-core pipeline + predictor + PTHT + BCT
  kPrograms,      // per-thread generator state machines
  kMem,           // caches + directory + DRAM + line-busy/MSHR
  kMesh,          // NoC link reservations
  kSync,          // lock/barrier architectural state
  kTrackers,      // per-core spin trackers
  kBalancer,      // monolithic PTB balancer wires
  kClustered,     // clustered PTB balancer wires
  kEnforcers,     // per-core 2-level controllers
  kSelector,      // dynamic policy selector
  kGates,         // spin-power gate detectors
  kThrifty,       // thrifty-barrier baseline controller
  kMeeting,       // meeting-points baseline controller
  kThermal,       // RC thermal model
  kFrame,         // CycleFrame persistents (EMAs, eff budgets, finished)
  kAcct,          // energy accounting
  kRun,           // run-scoped scalars (epoch state, spin-gate counter)
  kHist,          // sim.power.dist histogram
  kSamples,       // stats sample buffer rows
  kTracer,        // event-trace rings
  kResPower,      // RunResult power traces (CMP + per-core TimeSeries)
};

/// Cache key for a checkpoint image: FNV-1a over (format version,
/// machine_fingerprint, seed, benchmark, cycle). Deliberately *excludes*
/// the technique/budget knobs — a cycle-0 post-warmup image is valid under
/// any technique of the same machine+seed+benchmark, which is what makes
/// one warmed image shareable across a whole sweep. Mid-run images
/// (cycle != 0) additionally pin the full config_fingerprint at restore.
std::uint64_t checkpoint_fingerprint(const SimConfig& cfg,
                                     std::string_view benchmark, Cycle cycle);

/// Identity fields parsed from a frame's payload prefix.
struct CheckpointHeader {
  std::uint64_t checkpoint_fp = 0;
  std::uint64_t machine_fp = 0;
  std::uint64_t config_fp = 0;
  std::uint64_t seed = 0;
  std::uint32_t num_cores = 0;
  Cycle cycle = 0;
  std::string benchmark;
};

/// Builds one checkpoint frame: header fields, then tagged sections.
/// Usage: ctor -> section(tag) / writer ... -> finish().
class CheckpointWriter {
 public:
  CheckpointWriter(const CheckpointHeader& h);

  /// Opens a new section; returns the writer to fill its payload with.
  /// Closing is implicit (next section() or finish() back-patches the
  /// length). Tags must be strictly increasing — enforced, so the frame
  /// byte layout is a pure function of the state.
  ByteWriter& section(CkptSection tag);

  /// Wraps the payload in the outer frame (magic/version/length/checksum).
  std::string finish();

 private:
  void close_section();

  ByteWriter w_;
  std::uint32_t num_sections_ = 0;
  std::uint32_t last_tag_ = 0;
  std::size_t len_patch_pos_ = 0;  // 0: no section open
  std::size_t section_start_ = 0;
  std::size_t count_patch_pos_ = 0;
};

/// Parses and validates one frame. On success exposes the header and the
/// section payloads; every failure mode (short buffer, wrong magic/version,
/// bad checksum, truncated section table) sets a diagnostic and returns
/// false from parse().
class CheckpointReader {
 public:
  /// `bytes` must outlive the reader (sections are views into it).
  bool parse(std::string_view bytes);

  const CheckpointHeader& header() const { return header_; }
  /// Section payload, or empty view when the tag is absent.
  std::string_view section(CkptSection tag) const;
  bool has_section(CkptSection tag) const;
  const std::string& error() const { return error_; }

 private:
  CheckpointHeader header_;
  std::map<std::uint32_t, std::string_view> sections_;
  std::string error_;
};

/// FNV-1a over a byte buffer (the frame checksum).
std::uint64_t checkpoint_checksum(std::string_view bytes);

/// Atomic file write (temp + rename, the disk-cache publish idiom):
/// concurrent readers see either the old file or the complete new one.
bool save_checkpoint_file(const std::string& path, std::string_view bytes,
                          std::string* err);
/// Whole-file read; false with a diagnostic when missing or unreadable.
bool load_checkpoint_file(const std::string& path, std::string& out,
                          std::string* err);

}  // namespace ptb

// Experiment harness: builds configurations for the paper's technique
// matrix, runs benchmarks (serially or fanned out across a RunPool), and
// normalizes results against the no-control base case exactly as the
// paper's figures do.
//
// Threading & determinism: every entry point in this header is
// deterministic for a given (profile, config, seed) triple — the simulator
// itself is a single-threaded cycle loop, and the grid runners gather
// results in submission order, so the worker count never changes any
// number. Unless a function takes a RunPool it runs on the calling thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "sim/cmp.hpp"
#include "sim/run_pool.hpp"
#include "workloads/phases.hpp"

namespace ptb {

/// One column of the paper's figures.
struct TechniqueSpec {
  std::string label;   // "DVFS", "DFS", "2Level", "PTB+2Level", ...
  TechniqueKind kind = TechniqueKind::kNone;
  bool ptb = false;
  PtbPolicy policy = PtbPolicy::kToAll;
  double relax = 0.0;  // relaxed-accuracy threshold (Section IV.C)
};

/// The four techniques of Figures 9-12. `ptb_policy` selects the PTB column
/// flavor; pass PtbPolicy::kDynamic for the dynamic selector. Pure; safe
/// from any thread.
std::vector<TechniqueSpec> standard_techniques(PtbPolicy ptb_policy);

/// The three naive-split techniques of Figure 2 (no PTB). Pure.
std::vector<TechniqueSpec> naive_techniques();

/// The normalization reference: no power control at all.
TechniqueSpec base_technique();

/// Build a full simulator config for one run. Pure apart from the process-
/// wide default audit level and sim-thread count below.
SimConfig make_sim_config(std::uint32_t cores, const TechniqueSpec& tech,
                          std::uint64_t seed = 1);

/// Process-wide audit level stamped into every config make_sim_config
/// builds (default kOff). The bench binaries set it from --audit; since
/// audit_level never changes results (and is outside the fingerprint),
/// this is a diagnostic knob, not an experiment parameter. Not
/// thread-safe: set it before submitting work to a RunPool.
void set_default_audit_level(AuditLevel level);
AuditLevel default_audit_level();

/// Process-wide intra-run thread count stamped into every config
/// make_sim_config builds (default 1 = serial). The bench binaries set it
/// from --sim-threads; results are byte-identical for every value (see
/// sim/shard_pool.hpp), so — like the audit level — this is a wall-clock
/// knob, not an experiment parameter. Not thread-safe: set it before
/// submitting work to a RunPool. 0 is normalized to 1.
void set_default_sim_threads(std::uint32_t threads);
std::uint32_t default_sim_threads();

/// Process-wide sampled-simulation windows stamped into every config
/// make_sim_config builds (default 0/0 = every cycle detailed; see
/// SimConfig::sample_detail/sample_period). Unlike the knobs above this IS
/// an experiment parameter — sampling approximates results and folds into
/// the config fingerprint. The bench binaries set it from
/// --sample-windows. Not thread-safe: set before submitting pool work.
void set_default_sample_windows(Cycle detail, Cycle period);
Cycle default_sample_detail();
Cycle default_sample_period();

/// Process-wide warm-checkpoint directory (default "" = disabled). When
/// set, run_one() answers the functional-warmup phase from a cached
/// cycle-0 checkpoint image (ckpt-<fingerprint>.ptbc, managed by a
/// DiskRunCache on this directory): the first run of each
/// (machine, seed, benchmark) identity captures and publishes the warmed
/// image, and every later run — any technique/budget of that identity —
/// restores it instead of re-warming. The bench binaries set it from
/// --warm-checkpoint-dir; ptb-serve points it at its run-cache directory
/// so warm images persist across daemon restarts. Not thread-safe: set
/// before submitting pool work.
void set_default_warm_checkpoint_dir(std::string dir);
const std::string& default_warm_checkpoint_dir();
class DiskRunCache;
/// The cache instance behind the directory above; null while disabled
/// (exposed so ptb-serve can publish its warm hit/store counters).
DiskRunCache* default_warm_checkpoint_cache();

/// Figure-style normalization vs the no-control base case.
struct Normalized {
  double energy_pct = 0.0;    // 100 * (E - E_base) / E_base
  double aopb_pct = 0.0;      // 100 * AoPB / AoPB_base
  double slowdown_pct = 0.0;  // 100 * (cycles - cycles_base) / cycles_base
};

/// Machine-identity policy for normalize(). By default a run may only be
/// normalized against a base from the same simulated machine (the
/// machine_fingerprint recorded in each RunResult must match). Ablations
/// that deliberately compare a modified machine against the stock base
/// (e.g. the PTHT-capacity sweep) opt out with kAllow; the same-workload
/// check still applies.
enum class CrossMachine { kForbid, kAllow };

/// Pure; safe from any thread.
Normalized normalize(const RunResult& base, const RunResult& r,
                     CrossMachine cross = CrossMachine::kForbid);

/// Convenience single-run entry point. Runs on the calling thread; each
/// call constructs a private CmpSimulator, so concurrent calls from pool
/// workers never share simulator state.
RunResult run_one(const WorkloadProfile& profile, const SimConfig& cfg,
                  const RunOptions& opts = {});

/// A (benchmark x technique) grid of normalized results — the in-memory
/// form of one paper figure (rendered by sim/reporting.hpp as text or
/// JSON).
struct FigureGrid {
  std::vector<std::string> row_labels;        // benchmarks (plus "Avg.")
  std::vector<std::string> technique_labels;  // columns
  // grid[row][col]
  std::vector<std::vector<Normalized>> grid;

  /// Appends an average row over the existing rows.
  void append_average();
};

/// Cache of base (TechniqueKind::kNone) runs shared across techniques
/// within one bench binary.
///
/// Thread-safety contract: get() may be called concurrently from any
/// number of pool workers. Each (benchmark, cores, seed) key is simulated
/// exactly once — concurrent requests for a missing key block until the
/// single computation finishes (per-entry std::call_once under a map
/// guarded by a mutex; std::map's reference stability keeps returned
/// references valid for the cache's lifetime).
class BaseRunCache {
 public:
  const RunResult& get(const WorkloadProfile& profile, std::uint32_t cores,
                       std::uint64_t seed = 1);

  /// Number of simulations actually executed (cache misses); used by the
  /// tests to assert the once-per-key guarantee.
  std::size_t computed() const { return computed_.load(); }

 private:
  struct Entry {
    std::once_flag once;
    RunResult result;
  };
  using Key = std::tuple<std::string, std::uint32_t, std::uint64_t>;

  // mu_ guards cache_ lookup/insert only, never the runs: get() drops the
  // lock before the per-entry call_once (std::map node stability keeps the
  // Entry pointer valid). Entry::result is *not* GUARDED_BY(mu_) — its
  // happens-before edge is the once_flag, which -Wthread-safety cannot
  // model; TSan covers that edge (tests/sim/run_pool_test.cpp hammers it).
  Mutex mu_;
  std::map<Key, Entry> cache_ PTB_GUARDED_BY(mu_);
  std::atomic<std::size_t> computed_{0};
};

/// The canonical on-disk/over-the-wire artifact of one simulation run:
/// the RunResult scalar summary plus (when the run carried a stats
/// registry) the deterministic StatsDump JSON — schema v1, the same
/// document a bench binary's --stats flag writes. Artifacts are a pure
/// function of (benchmark, config, seed): two runs of the same request
/// serialize to byte-identical payloads, which is what lets the serve
/// daemon answer repeat queries from DiskRunCache below and prove the
/// cache honest with a byte compare.
struct RunArtifact {
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::string benchmark;
  std::uint32_t num_cores = 0;
  std::uint64_t key = 0;  // DiskRunCache::run_key of (benchmark, cfg)
  std::uint64_t config_fingerprint = 0;
  std::uint64_t machine_fingerprint = 0;
  std::uint64_t cycles = 0;
  bool hit_max_cycles = false;
  double energy = 0.0;
  double aopb = 0.0;
  double budget = 0.0;
  double peak_power = 0.0;
  double spin_energy = 0.0;
  std::uint64_t total_committed = 0;
  /// run_summary_kv(result) — the flat key=value rendering every bench
  /// prints; carried verbatim so a cached answer matches a live one.
  std::string summary_kv;
  /// StatsDump::to_json(include_volatile=false) of the run's registry;
  /// empty when the producing run had stats off.
  std::string stats_json;

  /// Builds the artifact for a finished run. `cfg` must be the config the
  /// run was executed with (the fingerprints are recomputed from it).
  static RunArtifact from_result(const std::string& benchmark,
                                 const SimConfig& cfg, const RunResult& r);

  /// Canonical JSON payload bytes (deterministic member order, locale-
  /// pinned numbers). This is what DiskRunCache stores and the serve
  /// daemon returns.
  std::string to_payload() const;
  /// Strict parse of to_payload output; false (out untouched) on
  /// malformed or schema-mismatched payloads.
  static bool parse(std::string_view payload, RunArtifact& out);
};

/// Persistent, content-addressed run cache: RunArtifact payloads on disk,
/// one file per run key (the config-fingerprint-derived run_key), written
/// atomically (temp file + rename) and framed with a little-endian
/// magic/version/length/key header in the trace subsystem's corrupt-
/// rejecting idiom — a truncated, bit-flipped or foreign file fails
/// validation and reads as a miss (the caller re-simulates and the next
/// store overwrites the bad entry).
///
/// Thread-safety: all methods may be called concurrently from any thread.
/// Loads and stores race benignly through the filesystem (rename is
/// atomic, so a reader sees either the old complete entry or the new
/// one); the hit/miss/corrupt counters are atomics.
class DiskRunCache {
 public:
  /// Opens (and creates, including parents) the cache directory. Aborts
  /// if the directory cannot be created — a service without its cache
  /// directory cannot meet its contract.
  explicit DiskRunCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Content address of one run: FNV-1a over the artifact schema version,
  /// config_fingerprint(cfg) and the benchmark name. Everything that can
  /// change a result byte is inside config_fingerprint; observe-only
  /// knobs (audit/trace/sim_threads) stay out, so a request answered
  /// from cache is indistinguishable from a re-run.
  static std::uint64_t run_key(std::string_view benchmark,
                               const SimConfig& cfg);

  /// Loads the payload for `key`. False on miss *or* on a corrupt entry
  /// (bad magic/version/length/key or unparseable artifact) — corrupt
  /// entries bump the corrupt counter and are unlinked so the slot heals
  /// on the next store.
  bool load(std::uint64_t key, std::string& payload) const;

  /// Atomically persists `payload` under `key` (write temp + rename).
  /// Returns false when the directory is not writable.
  bool store(std::uint64_t key, std::string_view payload) const;

  /// Runs `make` on miss/corruption and persists its payload; returns the
  /// payload either way and reports whether it was a hit.
  template <typename MakeFn>
  std::string get_or_compute(std::uint64_t key, bool& hit, MakeFn&& make)
      const {
    std::string payload;
    if (load(key, payload)) {
      hit = true;
      return payload;
    }
    hit = false;
    payload = make();
    store(key, payload);
    return payload;
  }

  std::string path_for(std::uint64_t key) const;

  /// Size quota in bytes over every entry in the directory (.run
  /// artifacts and ckpt-*.ptbc warm-checkpoint images alike); 0 (default)
  /// = unbounded. When a publish pushes the directory total over the
  /// quota, entries are evicted oldest-first (last write time, filename
  /// tie-break for determinism) until the total fits — the just-published
  /// entry included when the quota is smaller than it. Evicted keys read
  /// as misses and simply re-simulate. Not thread-safe: set at
  /// construction time, before the cache is shared.
  void set_max_bytes(std::uint64_t max_bytes) { max_bytes_ = max_bytes; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  // Warm-checkpoint images (sim/checkpoint.hpp), addressed by cycle-0
  // checkpoint_fingerprint and stored beside the .run artifacts as
  // ckpt-<hex16>.ptbc. Same corrupt-rejecting contract as load/store: a
  // truncated or bit-flipped image fails the frame checksum (or the
  // fingerprint cross-check), is counted, unlinked and read as a miss.
  bool load_warm_checkpoint(std::uint64_t ckpt_fp, std::string& frame) const;
  bool store_warm_checkpoint(std::uint64_t ckpt_fp,
                             std::string_view frame) const;
  std::string warm_checkpoint_path(std::uint64_t ckpt_fp) const;

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t corrupt() const { return corrupt_.load(); }
  std::uint64_t stores() const { return stores_.load(); }
  std::uint64_t warm_hits() const { return warm_hits_.load(); }
  std::uint64_t warm_misses() const { return warm_misses_.load(); }
  std::uint64_t warm_stores() const { return warm_stores_.load(); }
  std::uint64_t evicted() const { return evicted_.load(); }

 private:
  /// Oldest-first eviction down to max_bytes_; called after every publish.
  void enforce_quota() const;

  std::string dir_;
  std::uint64_t max_bytes_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> corrupt_{0};
  mutable std::atomic<std::uint64_t> stores_{0};
  mutable std::atomic<std::uint64_t> warm_hits_{0};
  mutable std::atomic<std::uint64_t> warm_misses_{0};
  mutable std::atomic<std::uint64_t> warm_stores_{0};
  mutable std::atomic<std::uint64_t> evicted_{0};
};

/// Convenience get-or-run on top of DiskRunCache: answers from disk when
/// the artifact for (benchmark, cfg) is present and valid, otherwise
/// simulates on the calling thread (run_one with a stats registry, so the
/// artifact carries the StatsDump) and persists the result. `hit` reports
/// which path was taken.
std::string cached_run_payload(const DiskRunCache& cache,
                               const WorkloadProfile& profile,
                               const SimConfig& cfg, bool& hit);

/// Observed variant (ISSUE 10): identical semantics, counters and bytes,
/// but brackets the pipeline's host-level stages through `observer` —
/// "cache_probe" around the disk lookup, then on a miss "simulate"
/// (run_one, which nests "warm_restore" when a warm-checkpoint image is
/// consulted), "serialize" and "cache_publish" — and threads the observer
/// into RunOptions so its progress callback fires from the cycle loop.
/// A null observer falls back to the plain overload above.
std::string cached_run_payload(const DiskRunCache& cache,
                               const WorkloadProfile& profile,
                               const SimConfig& cfg, bool& hit,
                               const RunObserver* observer);

/// Runs every suite benchmark under each technique at `cores`, normalized
/// against base runs from `cache`. All (benchmark x technique) cells plus
/// any missing base runs are submitted to `pool` up front and execute
/// concurrently; rows/columns follow suite/`techs` order regardless of
/// completion order, so the output is identical at any worker count.
/// The pool's current batch must be empty (wait_all drained) on entry.
/// Returns the grid without the average row.
FigureGrid run_suite_grid(std::uint32_t cores,
                          const std::vector<TechniqueSpec>& techs,
                          BaseRunCache& cache, RunPool& pool);

/// Average of each technique column over the whole suite at `cores` (no
/// per-benchmark rows — for the scaling figures). Same threading and
/// determinism contract as run_suite_grid.
std::vector<Normalized> run_suite_averages(
    std::uint32_t cores, const std::vector<TechniqueSpec>& techs,
    BaseRunCache& cache, RunPool& pool);

/// Multi-seed replication: runs (benchmark, technique) under several seeds,
/// each normalized against its own-seed base run, and aggregates the
/// normalized metrics. Used to put error bars on the headline results.
/// All 2*num_seeds runs are submitted to `pool` up front; aggregation is
/// in seed order, so the result is worker-count independent.
struct ReplicatedResult {
  RunningStat energy_pct;
  RunningStat aopb_pct;
  RunningStat slowdown_pct;
};

ReplicatedResult run_replicated(const WorkloadProfile& profile,
                                std::uint32_t cores,
                                const TechniqueSpec& tech,
                                std::uint32_t num_seeds, RunPool& pool,
                                std::uint64_t first_seed = 1);

}  // namespace ptb

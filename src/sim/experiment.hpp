// Experiment harness: builds configurations for the paper's technique
// matrix, runs benchmarks, and normalizes results against the no-control
// base case exactly as the paper's figures do.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/cmp.hpp"
#include "workloads/phases.hpp"

namespace ptb {

/// One column of the paper's figures.
struct TechniqueSpec {
  std::string label;   // "DVFS", "DFS", "2Level", "PTB+2Level", ...
  TechniqueKind kind = TechniqueKind::kNone;
  bool ptb = false;
  PtbPolicy policy = PtbPolicy::kToAll;
  double relax = 0.0;  // relaxed-accuracy threshold (Section IV.C)
};

/// The four techniques of Figures 9-12. `ptb_policy` selects the PTB column
/// flavor; pass PtbPolicy::kDynamic for the dynamic selector.
std::vector<TechniqueSpec> standard_techniques(PtbPolicy ptb_policy);

/// The three naive-split techniques of Figure 2 (no PTB).
std::vector<TechniqueSpec> naive_techniques();

/// Build a full simulator config for one run.
SimConfig make_sim_config(std::uint32_t cores, const TechniqueSpec& tech,
                          std::uint64_t seed = 1);

/// Figure-style normalization vs the no-control base case.
struct Normalized {
  double energy_pct = 0.0;    // 100 * (E - E_base) / E_base
  double aopb_pct = 0.0;      // 100 * AoPB / AoPB_base
  double slowdown_pct = 0.0;  // 100 * (cycles - cycles_base) / cycles_base
};

Normalized normalize(const RunResult& base, const RunResult& r);

/// Convenience single-run entry point.
RunResult run_one(const WorkloadProfile& profile, const SimConfig& cfg,
                  const RunOptions& opts = {});

/// Multi-seed replication: runs (benchmark, technique) under several seeds,
/// each normalized against its own-seed base run, and aggregates the
/// normalized metrics. Used to put error bars on the headline results.
struct ReplicatedResult {
  RunningStat energy_pct;
  RunningStat aopb_pct;
  RunningStat slowdown_pct;
};

ReplicatedResult run_replicated(const WorkloadProfile& profile,
                                std::uint32_t cores,
                                const TechniqueSpec& tech,
                                std::uint32_t num_seeds,
                                std::uint64_t first_seed = 1);

/// Cache of base (TechniqueKind::kNone) runs shared across techniques
/// within one bench binary.
class BaseRunCache {
 public:
  const RunResult& get(const WorkloadProfile& profile, std::uint32_t cores,
                       std::uint64_t seed = 1);

 private:
  std::map<std::pair<std::string, std::uint32_t>, RunResult> cache_;
};

}  // namespace ptb

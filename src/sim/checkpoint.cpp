// Checkpoint frame plumbing (see checkpoint.hpp for the format). The
// simulator-state section payloads themselves are built by
// CmpSimulator::run() / restore_checkpoint() in sim/cmp.cpp, which is where
// every piece of run state is in scope.
#include "sim/checkpoint.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>

#include <unistd.h>

#include "common/assert.hpp"
#include "sim/reporting.hpp"

namespace ptb {

namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 8;

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t checkpoint_checksum(std::string_view bytes) {
  std::uint64_t h = kFnvBasis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t checkpoint_fingerprint(const SimConfig& cfg,
                                     std::string_view benchmark,
                                     Cycle cycle) {
  std::uint64_t h = kFnvBasis;
  fnv_mix_u64(h, kCheckpointVersion);
  fnv_mix_u64(h, machine_fingerprint(cfg));
  fnv_mix_u64(h, cfg.seed);
  for (const char c : benchmark) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  fnv_mix_u64(h, cycle);
  return h;
}

// ---------------------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------------------

CheckpointWriter::CheckpointWriter(const CheckpointHeader& h) {
  w_.u64(h.checkpoint_fp);
  w_.u64(h.machine_fp);
  w_.u64(h.config_fp);
  w_.u64(h.seed);
  w_.u32(h.num_cores);
  w_.u64(h.cycle);
  w_.str(h.benchmark);
  count_patch_pos_ = w_.size();
  w_.u64(0);  // num_sections, patched in finish()
}

ByteWriter& CheckpointWriter::section(CkptSection tag) {
  close_section();
  const auto t = static_cast<std::uint32_t>(tag);
  PTB_ASSERTF(t > last_tag_,
              "checkpoint sections must be written in ascending tag order "
              "(%u after %u)",
              t, last_tag_);
  last_tag_ = t;
  ++num_sections_;
  w_.u32(t);
  len_patch_pos_ = w_.size();
  w_.u64(0);  // section length, patched on close
  section_start_ = w_.size();
  return w_;
}

void CheckpointWriter::close_section() {
  if (len_patch_pos_ == 0) return;
  w_.patch_u64(len_patch_pos_, w_.size() - section_start_);
  len_patch_pos_ = 0;
}

std::string CheckpointWriter::finish() {
  close_section();
  w_.patch_u64(count_patch_pos_, num_sections_);
  const std::string payload = w_.take();

  ByteWriter out;
  out.u32(kCheckpointMagic);
  out.u32(kCheckpointVersion);
  out.u64(payload.size());
  out.u64(checkpoint_checksum(payload));
  out.raw(payload.data(), payload.size());
  return out.take();
}

// ---------------------------------------------------------------------------
// CheckpointReader
// ---------------------------------------------------------------------------

bool CheckpointReader::parse(std::string_view bytes) {
  sections_.clear();
  error_.clear();
  if (bytes.size() < kFrameHeaderBytes) {
    error_ = "checkpoint shorter than its frame header";
    return false;
  }
  ByteReader hdr(bytes.substr(0, kFrameHeaderBytes));
  if (hdr.u32() != kCheckpointMagic) {
    error_ = "bad checkpoint magic (not a PTBC frame)";
    return false;
  }
  const std::uint32_t version = hdr.u32();
  if (version != kCheckpointVersion) {
    error_ = "unsupported checkpoint version " + std::to_string(version);
    return false;
  }
  const std::uint64_t len = hdr.u64();
  const std::uint64_t sum = hdr.u64();
  if (bytes.size() != kFrameHeaderBytes + len) {
    error_ = "checkpoint payload length mismatch (truncated or padded)";
    return false;
  }
  const std::string_view payload = bytes.substr(kFrameHeaderBytes);
  if (checkpoint_checksum(payload) != sum) {
    error_ = "checkpoint payload checksum mismatch (corrupt)";
    return false;
  }

  ByteReader r(payload);
  header_.checkpoint_fp = r.u64();
  header_.machine_fp = r.u64();
  header_.config_fp = r.u64();
  header_.seed = r.u64();
  header_.num_cores = r.u32();
  header_.cycle = r.u64();
  header_.benchmark = std::string(r.str());
  const std::uint64_t num_sections = r.u64();
  if (!r.ok() || num_sections > r.remaining() / 12) {  // 12 = min section
    error_ = "checkpoint header unparsable";
    return false;
  }
  for (std::uint64_t i = 0; i < num_sections; ++i) {
    const std::uint32_t tag = r.u32();
    const std::uint64_t slen = r.u64();
    if (!r.ok() || slen > r.remaining()) {
      error_ = "checkpoint section table truncated";
      return false;
    }
    const std::string_view body = r.raw(slen);
    if (!sections_.emplace(tag, body).second) {
      error_ = "duplicate checkpoint section tag " + std::to_string(tag);
      return false;
    }
  }
  if (!r.empty()) {
    error_ = "trailing bytes after checkpoint sections";
    return false;
  }
  return true;
}

std::string_view CheckpointReader::section(CkptSection tag) const {
  const auto it = sections_.find(static_cast<std::uint32_t>(tag));
  return it == sections_.end() ? std::string_view() : it->second;
}

bool CheckpointReader::has_section(CkptSection tag) const {
  return sections_.count(static_cast<std::uint32_t>(tag)) != 0;
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

bool save_checkpoint_file(const std::string& path, std::string_view bytes,
                          std::string* err) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  // Unique temp in the target directory + rename: the disk-cache publish
  // idiom; readers only ever see a complete frame.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open '" + tmp + "' for writing";
    return false;
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    if (err != nullptr) *err = "short write to '" + tmp + "'";
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (err != nullptr) *err = "cannot rename into '" + path + "'";
    return false;
  }
  return true;
}

bool load_checkpoint_file(const std::string& path, std::string& out,
                          std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open checkpoint '" + path + "'";
    return false;
  }
  out.clear();
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    out.clear();
    if (err != nullptr) *err = "read error on checkpoint '" + path + "'";
  }
  return ok;
}

}  // namespace ptb

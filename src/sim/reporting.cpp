#include "sim/reporting.hpp"

#include <cinttypes>
#include <cstdio>
#include <type_traits>

#include "common/assert.hpp"
#include "stats/dump.hpp"

namespace ptb {

namespace {

void print_metric(const FigureGrid& g, const std::string& title,
                  double Normalized::*field) {
  std::vector<std::string> header{"benchmark"};
  for (const auto& t : g.technique_labels) header.push_back(t);
  Table tbl(header);
  for (std::size_t r = 0; r < g.grid.size(); ++r) {
    const std::size_t row = tbl.add_row();
    tbl.set(row, 0, g.row_labels[r]);
    for (std::size_t c = 0; c < g.grid[r].size(); ++c) {
      tbl.set(row, c + 1, g.grid[r][c].*field, 2);
    }
  }
  tbl.print(title);
}

/// Shortest round-trippable representation of a double (%.17g collapses to
/// the shortest form that still parses back bit-exactly often enough for
/// stable diffs; the value itself is bit-identical across worker counts).
std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string metric_matrix_json(const FigureGrid& g,
                               double Normalized::*field) {
  std::string out = "[";
  for (std::size_t r = 0; r < g.grid.size(); ++r) {
    if (r) out += ",";
    out += "[";
    for (std::size_t c = 0; c < g.grid[r].size(); ++c) {
      if (c) out += ",";
      out += json_number(g.grid[r][c].*field);
    }
    out += "]";
  }
  out += "]";
  return out;
}

std::string string_array_json(const std::vector<std::string>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    // += chain rather than operator+: GCC 12 -O3 emits a spurious
    // -Wrestrict for `"lit" + std::string(...)` (GCC PR 105329), which
    // the PTB_WERROR=ON release build promotes to an error.
    out += '"';
    out += json_escape(v[i]);
    out += '"';
  }
  out += "]";
  return out;
}

void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
}

template <typename T>
void fnv_mix_value(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  fnv_mix(h, &v, sizeof(v));
}

}  // namespace

void print_energy_aopb(const FigureGrid& grid, const std::string& title) {
  print_metric(grid, title + " — Normalized Energy (%)",
               &Normalized::energy_pct);
  print_metric(grid, title + " — Normalized AoPB (%)", &Normalized::aopb_pct);
}

void print_slowdown(const FigureGrid& grid, const std::string& title) {
  print_metric(grid, title + " — Performance Slowdown (%)",
               &Normalized::slowdown_pct);
}

// Observe-only knobs that can never change a result stay out of the
// fingerprint so turning them on/off compares against existing results:
// audit_level (aborts or is silent), sim_threads (byte-identical at every
// shard count by construction), trace.* (recorder sizing). ptb-lint's
// fingerprint checker holds this list exactly equal to the set of unhashed
// SimConfig fields — extending SimConfig without deciding fingerprint
// status fails the lint.
// ptb-lint: fingerprint-exclude(audit_level, sim_threads, trace)
std::uint64_t machine_fingerprint(const SimConfig& cfg) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  // Field-by-field (never struct-at-once: padding bytes are
  // indeterminate). Every field that can change a result participates;
  // the exclusion list above names what is deliberately absent.
  fnv_mix_value(h, cfg.num_cores);
  fnv_mix_value(h, cfg.core.rob_entries);
  fnv_mix_value(h, cfg.core.lsq_entries);
  fnv_mix_value(h, cfg.core.fetch_width);
  fnv_mix_value(h, cfg.core.issue_width);
  fnv_mix_value(h, cfg.core.commit_width);
  fnv_mix_value(h, cfg.core.pipeline_stages);
  fnv_mix_value(h, cfg.core.int_alu);
  fnv_mix_value(h, cfg.core.int_mult);
  fnv_mix_value(h, cfg.core.fp_alu);
  fnv_mix_value(h, cfg.core.fp_mult);
  fnv_mix_value(h, cfg.core.l1d_ports);
  fnv_mix_value(h, cfg.core.bp_history_bits);
  fnv_mix_value(h, cfg.core.bp_table_bytes);
  for (const CacheConfig* c : {&cfg.l1i, &cfg.l1d}) {
    fnv_mix_value(h, c->size_bytes);
    fnv_mix_value(h, c->assoc);
    fnv_mix_value(h, c->line_bytes);
    fnv_mix_value(h, c->hit_latency);
    fnv_mix_value(h, c->mshrs);
  }
  fnv_mix_value(h, cfg.l2.size_bytes_per_core);
  fnv_mix_value(h, cfg.l2.assoc);
  fnv_mix_value(h, cfg.l2.line_bytes);
  fnv_mix_value(h, cfg.l2.hit_latency);
  fnv_mix_value(h, cfg.l2.protocol);
  fnv_mix_value(h, cfg.noc.link_latency);
  fnv_mix_value(h, cfg.noc.flit_bytes);
  fnv_mix_value(h, cfg.noc.link_flits_per_cycle);
  fnv_mix_value(h, cfg.noc.ctrl_msg_bytes);
  fnv_mix_value(h, cfg.noc.data_msg_bytes);
  fnv_mix_value(h, cfg.mem.dram_latency);
  fnv_mix_value(h, cfg.mem.banked);
  fnv_mix_value(h, cfg.mem.channels);
  fnv_mix_value(h, cfg.mem.banks_per_channel);
  fnv_mix_value(h, cfg.mem.row_bytes);
  fnv_mix_value(h, cfg.mem.t_pre);
  fnv_mix_value(h, cfg.mem.t_act);
  fnv_mix_value(h, cfg.mem.t_cas);
  fnv_mix_value(h, cfg.mem.t_bus);
  fnv_mix_value(h, cfg.power.residency_token);
  fnv_mix_value(h, cfg.power.peak_fetch_frac);
  fnv_mix_value(h, cfg.power.peak_rob_frac);
  fnv_mix_value(h, cfg.power.base_int_alu);
  fnv_mix_value(h, cfg.power.base_int_mult);
  fnv_mix_value(h, cfg.power.base_fp_alu);
  fnv_mix_value(h, cfg.power.base_fp_mult);
  fnv_mix_value(h, cfg.power.base_load);
  fnv_mix_value(h, cfg.power.base_store);
  fnv_mix_value(h, cfg.power.base_branch);
  fnv_mix_value(h, cfg.power.base_atomic);
  fnv_mix_value(h, cfg.power.base_nop);
  fnv_mix_value(h, cfg.power.base_jitter);
  fnv_mix_value(h, cfg.power.kmeans_groups);
  fnv_mix_value(h, cfg.power.ptht_entries);
  fnv_mix_value(h, cfg.power.leakage_per_core);
  fnv_mix_value(h, cfg.power.clock_gated_dynamic);
  fnv_mix_value(h, cfg.power.uncore_per_core);
  fnv_mix_value(h, cfg.power.ptht_overhead_frac);
  fnv_mix_value(h, cfg.power.ptb_wire_overhead_frac);
  fnv_mix_value(h, cfg.power.vdd_nominal);
  fnv_mix_value(h, cfg.power.freq_nominal_ghz);
  fnv_mix_value(h, cfg.thermal.ambient_c);
  fnv_mix_value(h, cfg.thermal.r_thermal);
  fnv_mix_value(h, cfg.thermal.tau_cycles);
  fnv_mix_value(h, cfg.dvfs.window_cycles);
  fnv_mix_value(h, cfg.dvfs.up_hysteresis);
  fnv_mix_value(h, cfg.dvfs.mv_per_cycle);
  return h;
}

std::uint64_t config_fingerprint(const SimConfig& cfg) {
  // Continue the FNV stream from the machine prefix with the technique
  // knobs, so config_fingerprint stays byte-identical to the pre-split
  // value (results/*.json embed it) while machine_fingerprint is exactly
  // its machine-only prefix.
  std::uint64_t h = machine_fingerprint(cfg);
  fnv_mix_value(h, cfg.ptb.enabled);
  fnv_mix_value(h, cfg.ptb.policy);
  fnv_mix_value(h, cfg.ptb.wire_latency_override);
  fnv_mix_value(h, cfg.ptb.token_wire_bits);
  fnv_mix_value(h, cfg.ptb.relax_threshold);
  fnv_mix_value(h, cfg.ptb.dynamic_uses_ground_truth);
  fnv_mix_value(h, cfg.ptb.gate_spinners);
  fnv_mix_value(h, cfg.ptb.spin_gate_period);
  fnv_mix_value(h, cfg.ptb.cluster_size);
  // Mixed only when set so every pre-existing config keeps its embedded
  // fingerprint (results/*.json) while the non-default mode still gets a
  // distinct one.
  if (cfg.ptb.toall_redistribute) {
    fnv_mix_value(h, cfg.ptb.toall_redistribute);
  }
  fnv_mix_value(h, cfg.technique);
  fnv_mix_value(h, cfg.budget_fraction);
  fnv_mix_value(h, cfg.seed);
  fnv_mix_value(h, cfg.max_cycles);
  fnv_mix_value(h, cfg.functional_warmup);
  // Sampling approximates the power/control planes, so active sampling
  // configs hash distinctly; the default (off) keeps every pre-existing
  // fingerprint, same idiom as toall_redistribute above.
  if (cfg.sample_detail != 0 || cfg.sample_period != 0) {
    fnv_mix_value(h, cfg.sample_detail);
    fnv_mix_value(h, cfg.sample_period);
  }
  return h;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string stats_json(const RunResult& r, bool include_volatile) {
  return r.stats ? r.stats->to_json(include_volatile) : std::string();
}

std::string stats_prometheus(const RunResult& r) {
  return r.stats ? r.stats->to_prometheus() : std::string();
}

std::string figure_grid_json(const FigureGrid& grid,
                             const std::string& title) {
  std::string out = "{";
  out += "\"title\":\"" + json_escape(title) + "\",";
  out += "\"row_labels\":" + string_array_json(grid.row_labels) + ",";
  out += "\"technique_labels\":" + string_array_json(grid.technique_labels) +
         ",";
  out += "\"energy_pct\":" + metric_matrix_json(grid, &Normalized::energy_pct) +
         ",";
  out += "\"aopb_pct\":" + metric_matrix_json(grid, &Normalized::aopb_pct) +
         ",";
  out += "\"slowdown_pct\":" +
         metric_matrix_json(grid, &Normalized::slowdown_pct);
  out += "}";
  return out;
}

std::string table_json(const Table& t, const std::string& title) {
  std::string out = "{";
  out += "\"title\":\"" + json_escape(title) + "\",";
  std::vector<std::string> header;
  for (std::size_t c = 0; c < t.cols(); ++c) header.push_back(t.header(c));
  out += "\"header\":" + string_array_json(header) + ",";
  out += "\"rows\":[";
  for (std::size_t r = 0; r < t.rows(); ++r) {
    if (r) out += ",";
    std::vector<std::string> cells;
    for (std::size_t c = 0; c < t.cols(); ++c) cells.push_back(t.cell(r, c));
    out += string_array_json(cells);
  }
  out += "]}";
  return out;
}

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchReport::add_grid(const std::string& title, const FigureGrid& grid) {
  grids_.push_back(figure_grid_json(grid, title));
}

void BenchReport::add_table(const std::string& title, const Table& t) {
  tables_.push_back(table_json(t, title));
}

void BenchReport::set_meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

std::string BenchReport::to_json() const {
  char fp[24];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, config_fingerprint(SimConfig{}));
  std::string out = "{";
  out += "\"bench\":\"" + json_escape(bench_name_) + "\",";
  out += "\"schema_version\":1,";
  out += "\"config_fingerprint\":\"" + std::string(fp) + "\",";
  out += "\"seeds\":" + std::to_string(seeds_) + ",";
  out += "\"meta\":{";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i) out += ",";
    out += '"';  // += chain: see string_array_json (GCC PR 105329)
    out += json_escape(meta_[i].first);
    out += "\":\"";
    out += json_escape(meta_[i].second);
    out += '"';
  }
  out += "},";
  out += "\"grids\":[";
  for (std::size_t i = 0; i < grids_.size(); ++i) {
    if (i) out += ",";
    out += grids_[i];
  }
  out += "],\"tables\":[";
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (i) out += ",";
    out += tables_[i];
  }
  out += "]}\n";
  return out;
}

bool BenchReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ptb

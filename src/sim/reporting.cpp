#include "sim/reporting.hpp"

#include "common/assert.hpp"

namespace ptb {

void FigureGrid::append_average() {
  PTB_ASSERT(!grid.empty(), "cannot average an empty grid");
  const std::size_t cols = technique_labels.size();
  std::vector<Normalized> avg(cols);
  for (const auto& row : grid) {
    PTB_ASSERT(row.size() == cols, "ragged figure grid");
    for (std::size_t c = 0; c < cols; ++c) {
      avg[c].energy_pct += row[c].energy_pct;
      avg[c].aopb_pct += row[c].aopb_pct;
      avg[c].slowdown_pct += row[c].slowdown_pct;
    }
  }
  const double n = static_cast<double>(grid.size());
  for (auto& a : avg) {
    a.energy_pct /= n;
    a.aopb_pct /= n;
    a.slowdown_pct /= n;
  }
  row_labels.push_back("Avg.");
  grid.push_back(std::move(avg));
}

namespace {

void print_metric(const FigureGrid& g, const std::string& title,
                  double Normalized::*field) {
  std::vector<std::string> header{"benchmark"};
  for (const auto& t : g.technique_labels) header.push_back(t);
  Table tbl(header);
  for (std::size_t r = 0; r < g.grid.size(); ++r) {
    const std::size_t row = tbl.add_row();
    tbl.set(row, 0, g.row_labels[r]);
    for (std::size_t c = 0; c < g.grid[r].size(); ++c) {
      tbl.set(row, c + 1, g.grid[r][c].*field, 2);
    }
  }
  tbl.print(title);
}

}  // namespace

void print_energy_aopb(const FigureGrid& grid, const std::string& title) {
  print_metric(grid, title + " — Normalized Energy (%)",
               &Normalized::energy_pct);
  print_metric(grid, title + " — Normalized AoPB (%)", &Normalized::aopb_pct);
}

void print_slowdown(const FigureGrid& grid, const std::string& title) {
  print_metric(grid, title + " — Performance Slowdown (%)",
               &Normalized::slowdown_pct);
}

}  // namespace ptb

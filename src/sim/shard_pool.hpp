// Worker team for intra-run parallelism: one CmpSimulator shards its
// modeled cores across these host threads, which advance in lockstep
// epochs (one epoch = the parallel region of one simulated cycle).
//
// This is the second, orthogonal parallelism plane next to the RunPool
// (sim/run_pool.hpp): the RunPool parallelizes *across* independent runs,
// the ShardPool parallelizes *within* one run. See DESIGN.md "Threading
// model & determinism contract" for the phase diagram and the byte-identity
// argument; the short version is that workers only ever touch shard-private
// state, so thread count and interleaving can change the wall clock but
// never a result byte.
//
// Mechanics: the pool owns `threads - 1` persistent workers plus the
// calling thread, which participates as shard 0 (so `threads == 1` costs
// nothing and spawns nothing). run(fn) publishes fn, releases one epoch of
// a sense-reversing-style barrier (a monotonically increasing epoch
// counter), runs shard 0 inline, and waits for the workers' completion
// count. Workers spin briefly and then yield while idle — the epoch is a
// few microseconds of simulated work, but the pool must also behave on
// hosts with fewer CPUs than shards (where pure spinning would invert the
// speedup). Workers are pinned round-robin to host CPUs (best effort,
// Linux only, and only when the host has at least as many CPUs as
// threads); pinning keeps a shard's working set on one cache hierarchy.
//
// The optional per-epoch jitter makes workers sleep a small pseudo-random
// time before each epoch's work. It exists purely for the TSan stress test
// (tests/sim): shaking the interleaving around the barrier proves the
// determinism contract is carried by synchronization, not by lucky timing.
// Jitter never feeds the simulation — results stay byte-identical with it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace ptb {

class ShardPool {
 public:
  /// Spawns `threads - 1` workers (none for threads <= 1).
  /// `jitter_ns > 0` adds a pseudo-random pre-epoch sleep of up to that
  /// many nanoseconds per worker (test-only; see header comment).
  explicit ShardPool(std::uint32_t threads, std::uint32_t jitter_ns = 0);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  std::uint32_t threads() const { return num_threads_; }
  std::uint32_t jitter_ns() const { return jitter_ns_; }

  /// Runs fn(shard) once for every shard in [0, threads()), shard 0 on the
  /// calling thread, and returns after all shards completed (a full
  /// barrier: every write made by fn happens-before the return).
  /// Only the orchestrating thread of the owning cycle loop may launch
  /// epochs (the sequential-point role; DESIGN.md phase diagram). `fn`
  /// itself runs *without* the role: a lambda is analyzed as its own
  /// function under clang -Wthread-safety, so shard code cannot call
  /// sequential-point-only functions without a compile error.
  void run(const std::function<void(std::uint32_t)>& fn)
      PTB_REQUIRES(g_sequential_point);

 private:
  void worker_loop(std::uint32_t shard);

  const std::uint32_t num_threads_;
  const std::uint32_t jitter_ns_;
  // Epoch barrier: the main thread bumps epoch_ (release) to start a round;
  // workers observe the new value (acquire), run, and count themselves out
  // on pending_ (release), which the main thread awaits (acquire).
  // Not PTB_GUARDED_BY anything: the barrier protocol is carried by the
  // acquire/release pairs on these atomics, which -Wthread-safety cannot
  // model — TSan (tests/sim/sim_threads_test.cpp jitter stress) and the
  // ptb-lint phase-purity checker cover this class instead (see DESIGN.md
  // "Static analysis" for the tool matrix).
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> pending_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(std::uint32_t)>* job_ = nullptr;
  std::vector<std::thread> workers_;
};

}  // namespace ptb

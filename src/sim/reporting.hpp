// Figure/table rendering helpers shared by the bench binaries: each paper
// figure becomes a printed table with the same rows/series, and — under
// --json — a machine-readable document that CI can diff mechanically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"

namespace ptb {

/// Render the paper's paired figure (normalized energy % and AoPB %).
void print_energy_aopb(const FigureGrid& grid, const std::string& title);

/// Render a performance-slowdown table (Figure 13 style).
void print_slowdown(const FigureGrid& grid, const std::string& title);

/// Stable fingerprint of the simulated-machine configuration (FNV-1a over
/// the fields that determine results: Table 1 machine parameters, power
/// constants, budget, seed, technique knobs). Two runs with equal
/// fingerprints and equal bench inputs must produce equal numbers — the
/// JSON exporter embeds it so result diffs can tell "code changed" from
/// "configuration changed".
std::uint64_t config_fingerprint(const SimConfig& cfg);

/// Fingerprint of the simulated-machine parameters only (Table 1 core/
/// cache/NoC/DRAM/power/thermal/DVFS fields) — the prefix of
/// config_fingerprint that stops before the technique knobs (ptb.*,
/// technique, budget_fraction, seed, max_cycles, functional_warmup). Two
/// runs are comparable under normalize() iff their machine fingerprints
/// match: the techniques may differ, the machine may not. Diagnostic knobs
/// that cannot change results (SimConfig::audit_level) are excluded from
/// both fingerprints.
std::uint64_t machine_fingerprint(const SimConfig& cfg);

/// JSON string literal escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

/// RunResult::stats as JSON (src/stats exposition). Empty string when the
/// run carried no stats (RunOptions::stats was off). Deterministic dumps
/// (include_volatile = false) exclude the wall-clock self-profiling gauges
/// and are byte-identical across --jobs and across machines.
std::string stats_json(const RunResult& r, bool include_volatile = true);

/// RunResult::stats in Prometheus text exposition (always includes the
/// volatile gauges; scrapes are per-machine by nature). Empty string when
/// the run carried no stats.
std::string stats_prometheus(const RunResult& r);

/// One FigureGrid as a JSON object: row/technique labels plus the three
/// normalized metric matrices (row-major, grid[row][col] order).
std::string figure_grid_json(const FigureGrid& grid,
                             const std::string& title);

/// One Table as a JSON object: header plus rows of (preformatted) cells.
std::string table_json(const Table& t, const std::string& title);

/// Collects everything one bench binary produced — figure grids and ad-hoc
/// tables, in emission order — and renders one JSON document:
///
///   { "bench": ..., "schema_version": 1, "config_fingerprint": "...",
///     "seeds": N, "meta": {...}, "grids": [...], "tables": [...] }
///
/// Numbers inherit the bit-exact run results, so the document is
/// byte-identical at any --jobs value.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void add_grid(const std::string& title, const FigureGrid& grid);
  void add_table(const std::string& title, const Table& t);

  /// Extra scalar metadata (e.g. "cores": "16"); values are emitted as
  /// JSON strings.
  void set_meta(const std::string& key, const std::string& value);

  /// Seed count the numbers aggregate over (default 1; the variance bench
  /// overrides it).
  void set_seeds(std::uint32_t seeds) { seeds_ = seeds; }

  std::string to_json() const;

  /// Writes to_json() to `path`; returns false if the file is not
  /// writable.
  bool write(const std::string& path) const;

 private:
  std::string bench_name_;
  std::uint32_t seeds_ = 1;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> grids_;   // pre-rendered JSON objects
  std::vector<std::string> tables_;  // pre-rendered JSON objects
};

}  // namespace ptb

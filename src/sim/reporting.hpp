// Figure/table rendering helpers shared by the bench binaries: each paper
// figure becomes a printed table with the same rows/series.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"

namespace ptb {

/// A (benchmark x technique) grid of normalized results.
struct FigureGrid {
  std::vector<std::string> row_labels;        // benchmarks (plus "Avg.")
  std::vector<std::string> technique_labels;  // columns
  // grid[row][col]
  std::vector<std::vector<Normalized>> grid;

  /// Appends an average row over the existing rows.
  void append_average();
};

/// Render the paper's paired figure (normalized energy % and AoPB %).
void print_energy_aopb(const FigureGrid& grid, const std::string& title);

/// Render a performance-slowdown table (Figure 13 style).
void print_slowdown(const FigureGrid& grid, const std::string& title);

}  // namespace ptb

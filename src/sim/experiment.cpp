#include "sim/experiment.hpp"

#include "common/assert.hpp"

namespace ptb {

std::vector<TechniqueSpec> standard_techniques(PtbPolicy ptb_policy) {
  return {
      {"DVFS", TechniqueKind::kDvfs, false, PtbPolicy::kToAll, 0.0},
      {"DFS", TechniqueKind::kDfs, false, PtbPolicy::kToAll, 0.0},
      {"2Level", TechniqueKind::kTwoLevel, false, PtbPolicy::kToAll, 0.0},
      {"PTB+2Level", TechniqueKind::kTwoLevel, true, ptb_policy, 0.0},
  };
}

std::vector<TechniqueSpec> naive_techniques() {
  return {
      {"DVFS", TechniqueKind::kDvfs, false, PtbPolicy::kToAll, 0.0},
      {"DFS", TechniqueKind::kDfs, false, PtbPolicy::kToAll, 0.0},
      {"2Level", TechniqueKind::kTwoLevel, false, PtbPolicy::kToAll, 0.0},
  };
}

SimConfig make_sim_config(std::uint32_t cores, const TechniqueSpec& tech,
                          std::uint64_t seed) {
  SimConfig cfg;
  cfg.num_cores = cores;
  cfg.seed = seed;
  cfg.technique = tech.kind;
  cfg.ptb.enabled = tech.ptb;
  cfg.ptb.policy = tech.policy;
  cfg.ptb.relax_threshold = tech.relax;
  return cfg;
}

Normalized normalize(const RunResult& base, const RunResult& r) {
  PTB_ASSERT(base.energy > 0.0, "base energy must be positive");
  Normalized n;
  n.energy_pct = 100.0 * (r.energy - base.energy) / base.energy;
  n.aopb_pct = base.aopb > 0.0 ? 100.0 * r.aopb / base.aopb : 0.0;
  n.slowdown_pct = 100.0 *
                   (static_cast<double>(r.cycles) -
                    static_cast<double>(base.cycles)) /
                   static_cast<double>(base.cycles);
  return n;
}

RunResult run_one(const WorkloadProfile& profile, const SimConfig& cfg,
                  const RunOptions& opts) {
  CmpSimulator sim(cfg, profile);
  return sim.run(opts);
}

ReplicatedResult run_replicated(const WorkloadProfile& profile,
                                std::uint32_t cores,
                                const TechniqueSpec& tech,
                                std::uint32_t num_seeds,
                                std::uint64_t first_seed) {
  PTB_ASSERT(num_seeds >= 1, "need at least one seed");
  ReplicatedResult out;
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  for (std::uint32_t s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = first_seed + s;
    const RunResult base =
        run_one(profile, make_sim_config(cores, none, seed));
    const RunResult r = run_one(profile, make_sim_config(cores, tech, seed));
    const Normalized n = normalize(base, r);
    out.energy_pct.add(n.energy_pct);
    out.aopb_pct.add(n.aopb_pct);
    out.slowdown_pct.add(n.slowdown_pct);
  }
  return out;
}

const RunResult& BaseRunCache::get(const WorkloadProfile& profile,
                                   std::uint32_t cores, std::uint64_t seed) {
  const auto key = std::make_pair(profile.name, cores);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  TechniqueSpec none{"none", TechniqueKind::kNone, false, PtbPolicy::kToAll,
                     0.0};
  const SimConfig cfg = make_sim_config(cores, none, seed);
  auto [ins, ok] = cache_.emplace(key, run_one(profile, cfg));
  PTB_ASSERT(ok, "cache insert failed");
  return ins->second;
}

}  // namespace ptb

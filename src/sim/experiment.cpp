#include "sim/experiment.hpp"

#include <memory>

#include "common/assert.hpp"
#include "sim/checkpoint.hpp"
#include "workloads/suite.hpp"

namespace ptb {

std::vector<TechniqueSpec> standard_techniques(PtbPolicy ptb_policy) {
  return {
      {"DVFS", TechniqueKind::kDvfs, false, PtbPolicy::kToAll, 0.0},
      {"DFS", TechniqueKind::kDfs, false, PtbPolicy::kToAll, 0.0},
      {"2Level", TechniqueKind::kTwoLevel, false, PtbPolicy::kToAll, 0.0},
      {"PTB+2Level", TechniqueKind::kTwoLevel, true, ptb_policy, 0.0},
  };
}

std::vector<TechniqueSpec> naive_techniques() {
  return {
      {"DVFS", TechniqueKind::kDvfs, false, PtbPolicy::kToAll, 0.0},
      {"DFS", TechniqueKind::kDfs, false, PtbPolicy::kToAll, 0.0},
      {"2Level", TechniqueKind::kTwoLevel, false, PtbPolicy::kToAll, 0.0},
  };
}

TechniqueSpec base_technique() {
  return {"none", TechniqueKind::kNone, false, PtbPolicy::kToAll, 0.0};
}

namespace {
AuditLevel g_default_audit_level = AuditLevel::kOff;
std::uint32_t g_default_sim_threads = 1;
Cycle g_default_sample_detail = 0;
Cycle g_default_sample_period = 0;
std::string g_warm_checkpoint_dir;
std::unique_ptr<DiskRunCache> g_warm_checkpoint_cache;
}  // namespace

void set_default_audit_level(AuditLevel level) {
  g_default_audit_level = level;
}

AuditLevel default_audit_level() { return g_default_audit_level; }

void set_default_sim_threads(std::uint32_t threads) {
  g_default_sim_threads = threads == 0 ? 1 : threads;
}

std::uint32_t default_sim_threads() { return g_default_sim_threads; }

void set_default_sample_windows(Cycle detail, Cycle period) {
  g_default_sample_detail = detail;
  g_default_sample_period = period;
}

Cycle default_sample_detail() { return g_default_sample_detail; }
Cycle default_sample_period() { return g_default_sample_period; }

void set_default_warm_checkpoint_dir(std::string dir) {
  g_warm_checkpoint_dir = std::move(dir);
  g_warm_checkpoint_cache =
      g_warm_checkpoint_dir.empty()
          ? nullptr
          : std::make_unique<DiskRunCache>(g_warm_checkpoint_dir);
}

const std::string& default_warm_checkpoint_dir() {
  return g_warm_checkpoint_dir;
}

DiskRunCache* default_warm_checkpoint_cache() {
  return g_warm_checkpoint_cache.get();
}

SimConfig make_sim_config(std::uint32_t cores, const TechniqueSpec& tech,
                          std::uint64_t seed) {
  SimConfig cfg;
  cfg.num_cores = cores;
  cfg.seed = seed;
  cfg.technique = tech.kind;
  cfg.ptb.enabled = tech.ptb;
  cfg.ptb.policy = tech.policy;
  cfg.ptb.relax_threshold = tech.relax;
  cfg.audit_level = g_default_audit_level;
  cfg.sim_threads = g_default_sim_threads;
  cfg.sample_detail = g_default_sample_detail;
  cfg.sample_period = g_default_sample_period;
  return cfg;
}

Normalized normalize(const RunResult& base, const RunResult& r,
                     CrossMachine cross) {
  PTB_ASSERT(base.energy > 0.0, "base energy must be positive");
  // A result may only be normalized against a base run of the same
  // workload and — unless the caller opted into a cross-machine
  // comparison (ablations do) — the same simulated machine. The
  // fingerprints are zero for hand-built RunResults (unit tests), in
  // which case the caller vouches.
  if (base.machine_fingerprint != 0 && r.machine_fingerprint != 0) {
    PTB_ASSERTF(cross == CrossMachine::kAllow ||
                    base.machine_fingerprint == r.machine_fingerprint,
                "normalize() across machines: base %016llx vs run %016llx",
                static_cast<unsigned long long>(base.machine_fingerprint),
                static_cast<unsigned long long>(r.machine_fingerprint));
    PTB_ASSERTF(base.benchmark == r.benchmark &&
                    base.num_cores == r.num_cores,
                "normalize() across workloads: base %s/%u vs run %s/%u",
                base.benchmark.c_str(), base.num_cores, r.benchmark.c_str(),
                r.num_cores);
  }
  Normalized n;
  n.energy_pct = 100.0 * (r.energy - base.energy) / base.energy;
  n.aopb_pct = base.aopb > 0.0 ? 100.0 * r.aopb / base.aopb : 0.0;
  n.slowdown_pct = 100.0 *
                   (static_cast<double>(r.cycles) -
                    static_cast<double>(base.cycles)) /
                   static_cast<double>(base.cycles);
  return n;
}

RunResult run_one(const WorkloadProfile& profile, const SimConfig& cfg,
                  const RunOptions& opts) {
  DiskRunCache* warm = g_warm_checkpoint_cache.get();
  if (warm != nullptr && cfg.functional_warmup) {
    // Warm-checkpoint fast path: the cycle-0 post-warmup image is keyed by
    // (machine, seed, benchmark) only, so one image serves every
    // technique/budget point of a sweep — and, through ptb-serve's cache
    // directory, every later daemon process too.
    const std::uint64_t fp = checkpoint_fingerprint(cfg, profile.name, 0);
    // The warm-restore attempt is a host-level stage the serve plane
    // traces (RunObserver): the span covers the image load plus the state
    // restore, with a hit only when both succeed. Observation only — the
    // restored run is byte-identical with or without an observer.
    const RunObserver* obs = opts.observer;
    if (obs != nullptr && obs->stage_enter) obs->stage_enter("warm_restore");
    std::string frame;
    if (warm->load_warm_checkpoint(fp, frame)) {
      CmpSimulator sim(cfg, profile);
      // A frame that passed the disk-level checks can still be stale
      // (e.g. the machine config changed): fall through to a fresh
      // simulator below — a failed restore leaves `sim` unusable.
      if (sim.restore_checkpoint(frame)) {
        if (obs != nullptr && obs->stage_exit) obs->stage_exit("warm_restore");
        return sim.run(opts);
      }
    }
    if (obs != nullptr && obs->stage_exit) obs->stage_exit("warm_restore");
    CmpSimulator sim(cfg, profile);
    if (opts.checkpoint_out == nullptr) {
      // Capture the warm point on the way through and publish it.
      std::string warm_frame;
      RunOptions capture = opts;
      capture.checkpoint_at = 0;
      capture.checkpoint_out = &warm_frame;
      RunResult r = sim.run(capture);
      if (!warm_frame.empty()) warm->store_warm_checkpoint(fp, warm_frame);
      return r;
    }
    // The caller is doing its own checkpointing: stay out of the way.
    return sim.run(opts);
  }
  CmpSimulator sim(cfg, profile);
  return sim.run(opts);
}

void FigureGrid::append_average() {
  PTB_ASSERT(!grid.empty(), "cannot average an empty grid");
  const std::size_t cols = technique_labels.size();
  std::vector<Normalized> avg(cols);
  for (const auto& row : grid) {
    PTB_ASSERT(row.size() == cols, "ragged figure grid");
    for (std::size_t c = 0; c < cols; ++c) {
      avg[c].energy_pct += row[c].energy_pct;
      avg[c].aopb_pct += row[c].aopb_pct;
      avg[c].slowdown_pct += row[c].slowdown_pct;
    }
  }
  const double n = static_cast<double>(grid.size());
  for (auto& a : avg) {
    a.energy_pct /= n;
    a.aopb_pct /= n;
    a.slowdown_pct /= n;
  }
  row_labels.push_back("Avg.");
  grid.push_back(std::move(avg));
}

const RunResult& BaseRunCache::get(const WorkloadProfile& profile,
                                   std::uint32_t cores, std::uint64_t seed) {
  Entry* entry;
  {
    MutexLock lock(mu_);
    // std::map nodes are never relocated, so the pointer stays valid after
    // the lock is dropped and across later insertions.
    entry = &cache_[Key{profile.name, cores, seed}];
  }
  std::call_once(entry->once, [&] {
    entry->result = run_one(profile, make_sim_config(cores, base_technique(),
                                                     seed));
    computed_.fetch_add(1);
  });
  return entry->result;
}

FigureGrid run_suite_grid(std::uint32_t cores,
                          const std::vector<TechniqueSpec>& techs,
                          BaseRunCache& cache, RunPool& pool) {
  const auto& suite = benchmark_suite();
  // Base runs first (through the cache, so a later bench section reuses
  // them), then every (benchmark x technique) cell.
  for (const auto& profile : suite) {
    pool.submit([&cache, &profile, cores] { return cache.get(profile, cores); });
  }
  for (const auto& profile : suite) {
    for (const auto& t : techs) pool.submit(profile, make_sim_config(cores, t));
  }
  const std::vector<RunResult> results = pool.wait_all();

  FigureGrid grid;
  for (const auto& t : techs) grid.technique_labels.push_back(t.label);
  std::size_t idx = suite.size();  // cells follow the base runs
  for (const auto& profile : suite) {
    const RunResult& base = cache.get(profile, cores);
    std::vector<Normalized> row;
    row.reserve(techs.size());
    for (std::size_t c = 0; c < techs.size(); ++c) {
      row.push_back(normalize(base, results[idx++]));
    }
    grid.row_labels.push_back(profile.name);
    grid.grid.push_back(std::move(row));
  }
  return grid;
}

std::vector<Normalized> run_suite_averages(
    std::uint32_t cores, const std::vector<TechniqueSpec>& techs,
    BaseRunCache& cache, RunPool& pool) {
  FigureGrid g = run_suite_grid(cores, techs, cache, pool);
  g.append_average();
  return g.grid.back();
}

ReplicatedResult run_replicated(const WorkloadProfile& profile,
                                std::uint32_t cores,
                                const TechniqueSpec& tech,
                                std::uint32_t num_seeds, RunPool& pool,
                                std::uint64_t first_seed) {
  PTB_ASSERT(num_seeds >= 1, "need at least one seed");
  const TechniqueSpec none = base_technique();
  for (std::uint32_t s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = first_seed + s;
    pool.submit(profile, make_sim_config(cores, none, seed));
    pool.submit(profile, make_sim_config(cores, tech, seed));
  }
  const std::vector<RunResult> results = pool.wait_all();
  ReplicatedResult out;
  for (std::uint32_t s = 0; s < num_seeds; ++s) {
    const Normalized n = normalize(results[2 * s], results[2 * s + 1]);
    out.energy_pct.add(n.energy_pct);
    out.aopb_pct.add(n.aopb_pct);
    out.slowdown_pct.add(n.slowdown_pct);
  }
  return out;
}

}  // namespace ptb

// Canonical SimConfig JSON codec — the request-body vocabulary of the
// ptb-serve daemon.
//
// A request carries *overrides*: parsing starts from a default-constructed
// SimConfig (the paper's Table 1 machine) and applies exactly the members
// present, strictly — an unknown key, a mistyped value or an out-of-domain
// enum string rejects the whole document with a positioned error, because a
// silently ignored typo ("num_core") would simulate the wrong machine and
// then *cache* it under the wrong-machine fingerprint.
//
// The codec covers every fingerprinted SimConfig field (reporting.cpp's
// machine_fingerprint + config_fingerprint lists) and nothing else: the
// observe-only knobs (audit_level, sim_threads, trace.*) are deliberately
// not addressable over the wire — they cannot change a result, so a client
// setting them could only burn server CPU; requests naming them are
// rejected with an error saying so.
//
// sim_config_to_json emits the canonical full document (every codec field,
// fixed order, locale-pinned numbers): parse(to_json(cfg)) == cfg, and the
// emitted text is byte-stable for use in fingerprint-adjacent tooling.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"

namespace ptb::serve {

/// Enum <-> string codecs (strict; parse_* return false on unknown names).
const char* technique_kind_name(TechniqueKind k);
bool parse_technique_kind(const std::string& s, TechniqueKind& out);
const char* ptb_policy_name(PtbPolicy p);
bool parse_ptb_policy(const std::string& s, PtbPolicy& out);
const char* coherence_name(CoherenceProtocol p);
bool parse_coherence(const std::string& s, CoherenceProtocol& out);

/// Applies the members of `doc` (a parsed JSON object) onto `cfg`.
/// Strict: unknown keys, wrong types and bad enum strings fail with `err`
/// naming the offending key. On failure `cfg` may be partially updated —
/// parse into a scratch config.
bool apply_sim_config_json(const json::Value& doc, SimConfig& cfg,
                           std::string& err);

/// Parses a full request-body config: text -> JSON -> overrides on top of
/// a default SimConfig. `out` is only written on success.
bool sim_config_from_json(const std::string& text, SimConfig& out,
                          std::string& err);

/// Canonical full emission of every codec-addressable field.
std::string sim_config_to_json(const SimConfig& cfg);

/// One simulation request: a suite benchmark plus config overrides.
struct RunRequest {
  std::string benchmark;
  SimConfig config;
};

/// Parses `{"benchmark":"fft","config":{...}}`. The benchmark name is
/// validated against the full suite (workloads/suite.hpp) — an unknown
/// name is a parse error here, never an abort in benchmark_by_name.
/// "config" may be absent (Table 1 defaults).
bool parse_run_request(const json::Value& doc, RunRequest& out,
                       std::string& err);

/// Parses a sweep body `{"requests":[{...},{...}]}` (at least one entry).
bool parse_sweep_request(const json::Value& doc,
                         std::vector<RunRequest>& out, std::string& err);

}  // namespace ptb::serve

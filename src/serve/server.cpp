#include "serve/server.hpp"

#include <cstdio>
#include <utility>

#include "common/json.hpp"
#include "trace/serve_span.hpp"

namespace ptb::serve {

namespace {

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse r;
  r.status = status;
  r.body = "{\"error\":\"" + json::escape(message) + "\"}";
  return r;
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string ms_str(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

const std::string* response_header(const HttpResponse& r,
                                   std::string_view name) {
  for (const auto& [k, v] : r.headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string tenant_of(const HttpRequest& req) {
  const std::string* t = req.header("x-ptb-tenant");
  return t == nullptr || t->empty() ? "default" : *t;
}

bool want_wait(const HttpRequest& req) {
  return req.query_param("wait") == "1";
}

std::string submitted_json(const Service::Submitted& s) {
  std::string out = "{\"job\":\"" + s.job_id + "\",\"keys\":[";
  for (std::size_t i = 0; i < s.unit_keys.size(); ++i) {
    if (i) out += ",";
    out += "\"" + s.unit_keys[i] + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace

Server::Server(ServiceOptions service_opts, std::string listen_addr,
               std::uint16_t port, unsigned http_threads)
    : service_(std::move(service_opts)),
      http_(std::move(listen_addr), port, http_threads,
            [this](const HttpRequest& req) { return handle(req); }) {
  http_.set_latency_hook(
      [this](double ms) { service_.record_http_request(ms); });
  http_.set_stream_hook([this] { service_.record_http_stream(); });
}

bool Server::start(std::string& err) { return http_.start(err); }

void Server::stop() {
  // Order matters for open event streams: close the accept side first (no
  // new requests), then drain the service — its terminal "aborted" events
  // unblock any stream still held by an HTTP worker — and only then join
  // the workers. Joining first would deadlock on a live stream.
  http_.stop_accepting();
  service_.stop();  // drain in-flight simulations, fail queued
  http_.stop();
}

HttpResponse Server::handle(const HttpRequest& req) {
  SpanRecorder* rec = service_.spans();
  Service::TraceCtx ctx;
  const double t0 = req.ingress_ms > 0.0 ? req.ingress_ms : now_ms();
  if (rec != nullptr) {
    ctx.trace_id = rec->begin_trace();
    ctx.root_span = rec->next_span_id();
  }

  HttpResponse resp = dispatch(req, ctx);
  const double t1 = now_ms();

  if (rec != nullptr) {
    if (req.parsed_ms > 0.0) {
      // Head+body read/decode, attributed from the transport's stamps
      // (absent when the request was hand-built in a test).
      ServeSpan parse;
      parse.trace_id = ctx.trace_id;
      parse.span_id = rec->next_span_id();
      parse.parent_id = ctx.root_span;
      parse.name = "parse";
      parse.start_ms = t0;
      parse.end_ms = req.parsed_ms;
      rec->emit(parse);
      service_.record_stage("parse", parse.end_ms - parse.start_ms);
    }
    ServeSpan root;
    root.trace_id = ctx.trace_id;
    root.span_id = ctx.root_span;
    root.parent_id = 0;
    root.name = "request";
    root.start_ms = t0;
    root.end_ms = t1;
    root.note =
        req.method + " " + req.path + " -> " + std::to_string(resp.status);
    rec->emit(root);
    resp.headers.emplace_back("X-Ptb-Trace", hex16(ctx.trace_id));
  }

  AccessLog& log = service_.access_log();
  if (log.should_log(resp.status)) {
    const std::string* cache = response_header(resp, "X-Ptb-Cache");
    const std::string* job = response_header(resp, "X-Ptb-Job");
    std::string line = "{\"ts_ms\":" + ms_str(t1);
    if (rec != nullptr) {
      line += ",\"trace\":\"" + hex16(ctx.trace_id) + "\"";
    }
    line += ",\"tenant\":\"" + json::escape(tenant_of(req)) + "\"";
    line += ",\"method\":\"" + json::escape(req.method) + "\"";
    line += ",\"path\":\"" + json::escape(req.path) + "\"";
    if (!req.query.empty()) {
      line += ",\"query\":\"" + json::escape(req.query) + "\"";
    }
    line += ",\"status\":" + std::to_string(resp.status);
    line += ",\"dur_ms\":" + ms_str(t1 - t0);
    if (cache != nullptr) line += ",\"cache\":\"" + *cache + "\"";
    if (job != nullptr) {
      line += ",\"job\":\"" + *job + "\"";
      if (log.level() == LogLevel::kDebug) {
        std::uint32_t tokens_held = 0;
        std::vector<std::pair<std::string, double>> stages;
        if (service_.job_observed(*job, tokens_held, stages)) {
          line += ",\"tokens_held\":" + std::to_string(tokens_held);
          line += ",\"stages\":{";
          for (std::size_t i = 0; i < stages.size(); ++i) {
            if (i) line += ",";
            line += "\"" + json::escape(stages[i].first) +
                    "\":" + ms_str(stages[i].second);
          }
          line += "}";
        }
      }
    }
    line += "}";
    log.write_line(line);
  }
  return resp;
}

HttpResponse Server::dispatch(const HttpRequest& req,
                              const Service::TraceCtx& ctx) {
  // --- POST /v1/run ------------------------------------------------------
  if (req.path == "/v1/run" || req.path == "/v1/sweep") {
    if (req.method != "POST") return error_response(405, "POST required");
    json::Value doc;
    std::string err;
    if (!json::parse(req.body, doc, err)) {
      return error_response(400, "bad JSON: " + err);
    }
    std::vector<RunRequest> requests;
    if (req.path == "/v1/run") {
      RunRequest one;
      if (!parse_run_request(doc, one, err)) return error_response(400, err);
      requests.push_back(std::move(one));
    } else {
      if (!parse_sweep_request(doc, requests, err)) {
        return error_response(400, err);
      }
    }

    Service::Submitted submitted;
    if (!service_.submit(tenant_of(req), std::move(requests), submitted, err,
                         ctx)) {
      return error_response(err == "queue full" ? 429 : 503, err);
    }
    if (!want_wait(req)) {
      HttpResponse r;
      r.status = 202;
      r.body = submitted_json(submitted);
      r.headers.emplace_back("X-Ptb-Job", submitted.job_id);
      return r;
    }

    service_.wait(submitted.job_id);
    if (req.path == "/v1/run") {
      std::string payload;
      bool hit = false;
      if (!service_.unit_result(submitted.job_id, 0, payload, hit)) {
        return error_response(503, "run failed (service draining?)");
      }
      HttpResponse r;
      r.body = std::move(payload);  // the artifact bytes, verbatim
      r.headers.emplace_back("X-Ptb-Cache", hit ? "hit" : "miss");
      r.headers.emplace_back("X-Ptb-Job", submitted.job_id);
      r.headers.emplace_back("X-Ptb-Key", submitted.unit_keys[0]);
      return r;
    }
    // Sweep, synchronous: every artifact embedded verbatim (each is a
    // complete JSON document).
    std::string body = "{\"job\":\"" + submitted.job_id + "\",\"results\":[";
    for (std::size_t i = 0; i < submitted.unit_keys.size(); ++i) {
      std::string payload;
      bool hit = false;
      if (!service_.unit_result(submitted.job_id, i, payload, hit)) {
        return error_response(503, "sweep unit failed (service draining?)");
      }
      if (i) body += ",";
      body += "{\"key\":\"" + submitted.unit_keys[i] + "\",\"cache\":\"";
      body += hit ? "hit" : "miss";
      body += "\",\"artifact\":" + payload + "}";
    }
    body += "]}";
    HttpResponse r;
    r.body = std::move(body);
    r.headers.emplace_back("X-Ptb-Job", submitted.job_id);
    return r;
  }

  // --- GET /v1/jobs/{id}/events ------------------------------------------
  // Must be matched before the plain jobs route (same prefix). The
  // response streams: the producer lambda runs on the HTTP worker thread,
  // blocking in next_job_event between events and emitting a comment
  // heartbeat on every timeout so a proxy (or a patient human) can tell
  // the stream is alive. Terminates on the job's terminal event, on
  // ": gone" (job pruned / feed consumed), or when the peer hangs up.
  if (req.path.rfind("/v1/jobs/", 0) == 0 && req.path.size() > 16 &&
      req.path.compare(req.path.size() - 7, 7, "/events") == 0) {
    if (req.method != "GET") return error_response(405, "GET required");
    const std::string id = req.path.substr(9, req.path.size() - 16);
    if (service_.job_status_json(id).empty()) {
      return error_response(404, "unknown job '" + id + "'");
    }
    const double heartbeat_ms = service_.options().stream_heartbeat_ms;
    Service* svc = &service_;
    HttpResponse r;
    r.content_type = "text/event-stream";
    r.headers.emplace_back("Cache-Control", "no-store");
    r.stream = [svc, id, heartbeat_ms](const HttpResponse::ChunkSink& sink) {
      std::uint64_t last_seq = 0;
      for (;;) {
        Service::JobEvent ev;
        switch (svc->next_job_event(id, last_seq, heartbeat_ms, ev)) {
          case Service::EventWait::kGone:
            sink(": gone\n\n");
            return;
          case Service::EventWait::kTimeout:
            if (!sink(": heartbeat\n\n")) return;  // peer hung up
            break;
          case Service::EventWait::kEvent: {
            last_seq = ev.seq;
            const std::string frame = "event: " + ev.kind +
                                      "\nid: " + std::to_string(ev.seq) +
                                      "\ndata: " + ev.data + "\n\n";
            if (!sink(frame) || ev.terminal) return;
            break;
          }
        }
      }
    };
    return r;
  }

  // --- GET /v1/jobs/{id} -------------------------------------------------
  if (req.path.rfind("/v1/jobs/", 0) == 0) {
    if (req.method != "GET") return error_response(405, "GET required");
    const std::string id = req.path.substr(9);
    const std::string status = service_.job_status_json(id);
    if (status.empty()) return error_response(404, "unknown job '" + id +
                                                       "'");
    HttpResponse r;
    r.body = status;
    return r;
  }

  // --- GET /v1/results/{key} ---------------------------------------------
  if (req.path.rfind("/v1/results/", 0) == 0) {
    if (req.method != "GET") return error_response(405, "GET required");
    const std::string key = req.path.substr(12);
    std::string payload;
    if (!service_.result_payload(key, payload)) {
      return error_response(404, "no cached result for key '" + key + "'");
    }
    HttpResponse r;
    r.body = std::move(payload);
    r.headers.emplace_back("X-Ptb-Cache", "hit");
    return r;
  }

  // --- GET /v1/trace -----------------------------------------------------
  if (req.path == "/v1/trace") {
    if (req.method != "GET") return error_response(405, "GET required");
    if (service_.spans() == nullptr) {
      return error_response(404, "tracing disabled (--trace-spans 0)");
    }
    const ServeSpanLog log = service_.trace_snapshot();
    HttpResponse r;
    if (req.query_param("format") == "json") {
      r.content_type = "application/json";
      r.body = serve_spans_chrome_json(log);
    } else {
      r.content_type = "application/octet-stream";
      r.body = log.serialize();
    }
    return r;
  }

  // --- GET /metrics ------------------------------------------------------
  if (req.path == "/metrics") {
    if (req.method != "GET") return error_response(405, "GET required");
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4";
    r.body = service_.metrics_text();
    return r;
  }

  // --- GET /healthz ------------------------------------------------------
  if (req.path == "/healthz") {
    if (req.method != "GET") return error_response(405, "GET required");
    HttpResponse r;
    r.body = "{\"ok\":true}";
    return r;
  }

  return error_response(404, "no route for '" + req.path + "'");
}

}  // namespace ptb::serve

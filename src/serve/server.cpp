#include "serve/server.hpp"

#include <utility>

#include "common/json.hpp"

namespace ptb::serve {

namespace {

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse r;
  r.status = status;
  r.body = "{\"error\":\"" + json::escape(message) + "\"}";
  return r;
}

std::string tenant_of(const HttpRequest& req) {
  const std::string* t = req.header("x-ptb-tenant");
  return t == nullptr || t->empty() ? "default" : *t;
}

bool want_wait(const HttpRequest& req) {
  return req.query_param("wait") == "1";
}

std::string submitted_json(const Service::Submitted& s) {
  std::string out = "{\"job\":\"" + s.job_id + "\",\"keys\":[";
  for (std::size_t i = 0; i < s.unit_keys.size(); ++i) {
    if (i) out += ",";
    out += "\"" + s.unit_keys[i] + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace

Server::Server(ServiceOptions service_opts, std::string listen_addr,
               std::uint16_t port, unsigned http_threads)
    : service_(std::move(service_opts)),
      http_(std::move(listen_addr), port, http_threads,
            [this](const HttpRequest& req) { return handle(req); }) {
  http_.set_latency_hook(
      [this](double ms) { service_.record_http_request(ms); });
}

bool Server::start(std::string& err) { return http_.start(err); }

void Server::stop() {
  http_.stop();     // no new requests
  service_.stop();  // drain in-flight simulations, fail queued
}

HttpResponse Server::handle(const HttpRequest& req) {
  // --- POST /v1/run ------------------------------------------------------
  if (req.path == "/v1/run" || req.path == "/v1/sweep") {
    if (req.method != "POST") return error_response(405, "POST required");
    json::Value doc;
    std::string err;
    if (!json::parse(req.body, doc, err)) {
      return error_response(400, "bad JSON: " + err);
    }
    std::vector<RunRequest> requests;
    if (req.path == "/v1/run") {
      RunRequest one;
      if (!parse_run_request(doc, one, err)) return error_response(400, err);
      requests.push_back(std::move(one));
    } else {
      if (!parse_sweep_request(doc, requests, err)) {
        return error_response(400, err);
      }
    }

    Service::Submitted submitted;
    if (!service_.submit(tenant_of(req), std::move(requests), submitted,
                         err)) {
      return error_response(err == "queue full" ? 429 : 503, err);
    }
    if (!want_wait(req)) {
      HttpResponse r;
      r.status = 202;
      r.body = submitted_json(submitted);
      r.headers.emplace_back("X-Ptb-Job", submitted.job_id);
      return r;
    }

    service_.wait(submitted.job_id);
    if (req.path == "/v1/run") {
      std::string payload;
      bool hit = false;
      if (!service_.unit_result(submitted.job_id, 0, payload, hit)) {
        return error_response(503, "run failed (service draining?)");
      }
      HttpResponse r;
      r.body = std::move(payload);  // the artifact bytes, verbatim
      r.headers.emplace_back("X-Ptb-Cache", hit ? "hit" : "miss");
      r.headers.emplace_back("X-Ptb-Job", submitted.job_id);
      r.headers.emplace_back("X-Ptb-Key", submitted.unit_keys[0]);
      return r;
    }
    // Sweep, synchronous: every artifact embedded verbatim (each is a
    // complete JSON document).
    std::string body = "{\"job\":\"" + submitted.job_id + "\",\"results\":[";
    for (std::size_t i = 0; i < submitted.unit_keys.size(); ++i) {
      std::string payload;
      bool hit = false;
      if (!service_.unit_result(submitted.job_id, i, payload, hit)) {
        return error_response(503, "sweep unit failed (service draining?)");
      }
      if (i) body += ",";
      body += "{\"key\":\"" + submitted.unit_keys[i] + "\",\"cache\":\"";
      body += hit ? "hit" : "miss";
      body += "\",\"artifact\":" + payload + "}";
    }
    body += "]}";
    HttpResponse r;
    r.body = std::move(body);
    r.headers.emplace_back("X-Ptb-Job", submitted.job_id);
    return r;
  }

  // --- GET /v1/jobs/{id} -------------------------------------------------
  if (req.path.rfind("/v1/jobs/", 0) == 0) {
    if (req.method != "GET") return error_response(405, "GET required");
    const std::string id = req.path.substr(9);
    const std::string status = service_.job_status_json(id);
    if (status.empty()) return error_response(404, "unknown job '" + id +
                                                       "'");
    HttpResponse r;
    r.body = status;
    return r;
  }

  // --- GET /v1/results/{key} ---------------------------------------------
  if (req.path.rfind("/v1/results/", 0) == 0) {
    if (req.method != "GET") return error_response(405, "GET required");
    const std::string key = req.path.substr(12);
    std::string payload;
    if (!service_.result_payload(key, payload)) {
      return error_response(404, "no cached result for key '" + key + "'");
    }
    HttpResponse r;
    r.body = std::move(payload);
    r.headers.emplace_back("X-Ptb-Cache", "hit");
    return r;
  }

  // --- GET /metrics ------------------------------------------------------
  if (req.path == "/metrics") {
    if (req.method != "GET") return error_response(405, "GET required");
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4";
    r.body = service_.metrics_text();
    return r;
  }

  // --- GET /healthz ------------------------------------------------------
  if (req.path == "/healthz") {
    if (req.method != "GET") return error_response(405, "GET required");
    HttpResponse r;
    r.body = "{\"ok\":true}";
    return r;
  }

  return error_response(404, "no route for '" + req.path + "'");
}

}  // namespace ptb::serve

// TokenAdmission: the daemon's host-side twin of the paper's power-token
// balancer. The host budget (`--host-tokens`, default = worker count) is a
// fixed number of concurrent-simulation tokens; tenants (clients, keyed by
// the X-Ptb-Tenant header, "default" when absent) each get the floor fair
// share of their demand, and the spare tokens left over are redistributed
// with the in-tree balancer policies:
//
//   to_all — split the spare equally among the still-needy tenants, in
//            bounded re-split rounds (the PtbConfig::toall_redistribute
//            refinement), so a tenant whose residual demand is below its
//            share does not strand tokens while others still queue;
//   to_one — hand the whole spare to the single neediest tenant (largest
//            residual demand; ties break to the lexicographically first
//            tenant name, which std::map ordering makes deterministic).
//
// plan() is a pure function of its inputs — the scheduler calls it under
// the service lock every time the queue or the in-flight set changes, and
// identical states always yield identical grants (no wall-clock, no RNG),
// which is what makes the admission tests exact rather than statistical.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/config.hpp"

namespace ptb::serve {

class TokenAdmission {
 public:
  /// `host_tokens` >= 1 (the ptb-serve flag layer enforces this);
  /// `policy` kToAll or kToOne (kDynamic is a simulation-side selector
  /// with no host analogue and is rejected by the flag layer).
  TokenAdmission(std::uint32_t host_tokens, PtbPolicy policy);

  std::uint32_t host_tokens() const { return host_tokens_; }
  PtbPolicy policy() const { return policy_; }

  /// Per-tenant demand (queued + running jobs) -> per-tenant token grant.
  /// Invariants (asserted by the tests): sum(grant) <= host_tokens;
  /// grant[t] <= demand[t]; when total demand <= host_tokens every tenant
  /// is granted its full demand; a tenant with zero demand gets zero.
  std::map<std::string, std::uint32_t> plan(
      const std::map<std::string, std::uint32_t>& demand) const;

 private:
  std::uint32_t host_tokens_;
  PtbPolicy policy_;
};

}  // namespace ptb::serve

#include "serve/config_json.hpp"

#include <cstddef>

#include "common/format.hpp"
#include "workloads/suite.hpp"

namespace ptb::serve {

namespace {

bool as_f64(const json::Value& v, double& dst) {
  if (!v.is_number()) return false;
  dst = v.as_double();
  return true;
}

bool as_b(const json::Value& v, bool& dst) {
  if (!v.is_bool()) return false;
  dst = v.as_bool();
  return true;
}

bool as_u64v(const json::Value& v, std::uint64_t& dst) {
  return v.as_u64(dst);
}

bool bad(std::string& err, const std::string& section, const std::string& key,
         const char* why) {
  // += chain: see reporting.cpp string_array_json (GCC PR 105329).
  err = section;
  if (!key.empty()) {
    err += '.';
    err += key;
  }
  err += ": ";
  err += why;
  return false;
}

bool require_object(const json::Value& v, const std::string& section,
                    std::string& err) {
  if (v.is_object()) return true;
  return bad(err, section, "", "expected an object");
}

bool apply_core(const json::Value& o, CoreConfig& c, std::string& err) {
  if (!require_object(o, "core", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "rob_entries") ok = v.as_u32(c.rob_entries);
    else if (k == "lsq_entries") ok = v.as_u32(c.lsq_entries);
    else if (k == "fetch_width") ok = v.as_u32(c.fetch_width);
    else if (k == "issue_width") ok = v.as_u32(c.issue_width);
    else if (k == "commit_width") ok = v.as_u32(c.commit_width);
    else if (k == "pipeline_stages") ok = v.as_u32(c.pipeline_stages);
    else if (k == "int_alu") ok = v.as_u32(c.int_alu);
    else if (k == "int_mult") ok = v.as_u32(c.int_mult);
    else if (k == "fp_alu") ok = v.as_u32(c.fp_alu);
    else if (k == "fp_mult") ok = v.as_u32(c.fp_mult);
    else if (k == "l1d_ports") ok = v.as_u32(c.l1d_ports);
    else if (k == "bp_history_bits") ok = v.as_u32(c.bp_history_bits);
    else if (k == "bp_table_bytes") ok = v.as_u32(c.bp_table_bytes);
    else return bad(err, "core", k, "unknown key");
    if (!ok) return bad(err, "core", k, "bad value");
  }
  return true;
}

bool apply_cache(const json::Value& o, const std::string& section,
                 CacheConfig& c, std::string& err) {
  if (!require_object(o, section, err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "size_bytes") ok = v.as_u32(c.size_bytes);
    else if (k == "assoc") ok = v.as_u32(c.assoc);
    else if (k == "line_bytes") ok = v.as_u32(c.line_bytes);
    else if (k == "hit_latency") ok = v.as_u32(c.hit_latency);
    else if (k == "mshrs") ok = v.as_u32(c.mshrs);
    else return bad(err, section, k, "unknown key");
    if (!ok) return bad(err, section, k, "bad value");
  }
  return true;
}

bool apply_l2(const json::Value& o, L2Config& c, std::string& err) {
  if (!require_object(o, "l2", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "size_bytes_per_core") ok = v.as_u32(c.size_bytes_per_core);
    else if (k == "assoc") ok = v.as_u32(c.assoc);
    else if (k == "line_bytes") ok = v.as_u32(c.line_bytes);
    else if (k == "hit_latency") ok = v.as_u32(c.hit_latency);
    else if (k == "protocol")
      ok = v.is_string() && parse_coherence(v.as_string(), c.protocol);
    else return bad(err, "l2", k, "unknown key");
    if (!ok) return bad(err, "l2", k, "bad value");
  }
  return true;
}

bool apply_noc(const json::Value& o, NocConfig& c, std::string& err) {
  if (!require_object(o, "noc", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "link_latency") ok = v.as_u32(c.link_latency);
    else if (k == "flit_bytes") ok = v.as_u32(c.flit_bytes);
    else if (k == "link_flits_per_cycle")
      ok = v.as_u32(c.link_flits_per_cycle);
    else if (k == "ctrl_msg_bytes") ok = v.as_u32(c.ctrl_msg_bytes);
    else if (k == "data_msg_bytes") ok = v.as_u32(c.data_msg_bytes);
    else return bad(err, "noc", k, "unknown key");
    if (!ok) return bad(err, "noc", k, "bad value");
  }
  return true;
}

bool apply_mem(const json::Value& o, MemConfig& c, std::string& err) {
  if (!require_object(o, "mem", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "dram_latency") ok = v.as_u32(c.dram_latency);
    else if (k == "banked") ok = as_b(v, c.banked);
    else if (k == "channels") ok = v.as_u32(c.channels);
    else if (k == "banks_per_channel") ok = v.as_u32(c.banks_per_channel);
    else if (k == "row_bytes") ok = v.as_u32(c.row_bytes);
    else if (k == "t_pre") ok = v.as_u32(c.t_pre);
    else if (k == "t_act") ok = v.as_u32(c.t_act);
    else if (k == "t_cas") ok = v.as_u32(c.t_cas);
    else if (k == "t_bus") ok = v.as_u32(c.t_bus);
    else return bad(err, "mem", k, "unknown key");
    if (!ok) return bad(err, "mem", k, "bad value");
  }
  return true;
}

bool apply_power(const json::Value& o, PowerConfig& c, std::string& err) {
  if (!require_object(o, "power", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "residency_token") ok = as_f64(v, c.residency_token);
    else if (k == "peak_fetch_frac") ok = as_f64(v, c.peak_fetch_frac);
    else if (k == "peak_rob_frac") ok = as_f64(v, c.peak_rob_frac);
    else if (k == "base_int_alu") ok = as_f64(v, c.base_int_alu);
    else if (k == "base_int_mult") ok = as_f64(v, c.base_int_mult);
    else if (k == "base_fp_alu") ok = as_f64(v, c.base_fp_alu);
    else if (k == "base_fp_mult") ok = as_f64(v, c.base_fp_mult);
    else if (k == "base_load") ok = as_f64(v, c.base_load);
    else if (k == "base_store") ok = as_f64(v, c.base_store);
    else if (k == "base_branch") ok = as_f64(v, c.base_branch);
    else if (k == "base_atomic") ok = as_f64(v, c.base_atomic);
    else if (k == "base_nop") ok = as_f64(v, c.base_nop);
    else if (k == "base_jitter") ok = as_f64(v, c.base_jitter);
    else if (k == "kmeans_groups") ok = v.as_u32(c.kmeans_groups);
    else if (k == "ptht_entries") ok = v.as_u32(c.ptht_entries);
    else if (k == "leakage_per_core") ok = as_f64(v, c.leakage_per_core);
    else if (k == "clock_gated_dynamic")
      ok = as_f64(v, c.clock_gated_dynamic);
    else if (k == "uncore_per_core") ok = as_f64(v, c.uncore_per_core);
    else if (k == "ptht_overhead_frac") ok = as_f64(v, c.ptht_overhead_frac);
    else if (k == "ptb_wire_overhead_frac")
      ok = as_f64(v, c.ptb_wire_overhead_frac);
    else if (k == "vdd_nominal") ok = as_f64(v, c.vdd_nominal);
    else if (k == "freq_nominal_ghz") ok = as_f64(v, c.freq_nominal_ghz);
    else return bad(err, "power", k, "unknown key");
    if (!ok) return bad(err, "power", k, "bad value");
  }
  return true;
}

bool apply_thermal(const json::Value& o, ThermalConfig& c, std::string& err) {
  if (!require_object(o, "thermal", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "ambient_c") ok = as_f64(v, c.ambient_c);
    else if (k == "r_thermal") ok = as_f64(v, c.r_thermal);
    else if (k == "tau_cycles") ok = as_f64(v, c.tau_cycles);
    else return bad(err, "thermal", k, "unknown key");
    if (!ok) return bad(err, "thermal", k, "bad value");
  }
  return true;
}

bool apply_dvfs(const json::Value& o, DvfsConfig& c, std::string& err) {
  if (!require_object(o, "dvfs", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "window_cycles") ok = v.as_u32(c.window_cycles);
    else if (k == "up_hysteresis") ok = as_f64(v, c.up_hysteresis);
    else if (k == "mv_per_cycle") ok = as_f64(v, c.mv_per_cycle);
    else return bad(err, "dvfs", k, "unknown key");
    if (!ok) return bad(err, "dvfs", k, "bad value");
  }
  return true;
}

bool apply_ptb(const json::Value& o, PtbConfig& c, std::string& err) {
  if (!require_object(o, "ptb", err)) return false;
  for (const auto& [k, v] : o.members()) {
    bool ok;
    if (k == "enabled") ok = as_b(v, c.enabled);
    else if (k == "policy")
      ok = v.is_string() && parse_ptb_policy(v.as_string(), c.policy);
    else if (k == "wire_latency_override")
      ok = v.as_u32(c.wire_latency_override);
    else if (k == "token_wire_bits") ok = v.as_u32(c.token_wire_bits);
    else if (k == "relax_threshold") ok = as_f64(v, c.relax_threshold);
    else if (k == "dynamic_uses_ground_truth")
      ok = as_b(v, c.dynamic_uses_ground_truth);
    else if (k == "toall_redistribute") ok = as_b(v, c.toall_redistribute);
    else if (k == "gate_spinners") ok = as_b(v, c.gate_spinners);
    else if (k == "spin_gate_period") ok = v.as_u32(c.spin_gate_period);
    else if (k == "cluster_size") ok = v.as_u32(c.cluster_size);
    else return bad(err, "ptb", k, "unknown key");
    if (!ok) return bad(err, "ptb", k, "bad value");
  }
  return true;
}

void emit_kv_u32(std::string& out, const char* k, std::uint32_t v,
                 bool comma = true) {
  out += '"';
  out += k;
  out += "\":";
  out += std::to_string(v);
  if (comma) out += ',';
}

void emit_kv_f64(std::string& out, const char* k, double v,
                 bool comma = true) {
  out += '"';
  out += k;
  out += "\":";
  out += format_g17(v);
  if (comma) out += ',';
}

void emit_kv_bool(std::string& out, const char* k, bool v,
                  bool comma = true) {
  out += '"';
  out += k;
  out += "\":";
  out += v ? "true" : "false";
  if (comma) out += ',';
}

void emit_kv_str(std::string& out, const char* k, const char* v,
                 bool comma = true) {
  out += '"';
  out += k;
  out += "\":\"";
  out += v;
  out += '"';
  if (comma) out += ',';
}

}  // namespace

const char* technique_kind_name(TechniqueKind k) {
  switch (k) {
    case TechniqueKind::kNone: return "none";
    case TechniqueKind::kDvfs: return "dvfs";
    case TechniqueKind::kDfs: return "dfs";
    case TechniqueKind::kTwoLevel: return "two_level";
    case TechniqueKind::kThriftyBarrier: return "thrifty_barrier";
    case TechniqueKind::kMeetingPoints: return "meeting_points";
  }
  return "?";
}

bool parse_technique_kind(const std::string& s, TechniqueKind& out) {
  if (s == "none") out = TechniqueKind::kNone;
  else if (s == "dvfs") out = TechniqueKind::kDvfs;
  else if (s == "dfs") out = TechniqueKind::kDfs;
  else if (s == "two_level") out = TechniqueKind::kTwoLevel;
  else if (s == "thrifty_barrier") out = TechniqueKind::kThriftyBarrier;
  else if (s == "meeting_points") out = TechniqueKind::kMeetingPoints;
  else return false;
  return true;
}

const char* ptb_policy_name(PtbPolicy p) {
  switch (p) {
    case PtbPolicy::kToAll: return "to_all";
    case PtbPolicy::kToOne: return "to_one";
    case PtbPolicy::kDynamic: return "dynamic";
  }
  return "?";
}

bool parse_ptb_policy(const std::string& s, PtbPolicy& out) {
  if (s == "to_all") out = PtbPolicy::kToAll;
  else if (s == "to_one") out = PtbPolicy::kToOne;
  else if (s == "dynamic") out = PtbPolicy::kDynamic;
  else return false;
  return true;
}

const char* coherence_name(CoherenceProtocol p) {
  switch (p) {
    case CoherenceProtocol::kMoesi: return "moesi";
    case CoherenceProtocol::kMesi: return "mesi";
  }
  return "?";
}

bool parse_coherence(const std::string& s, CoherenceProtocol& out) {
  if (s == "moesi") out = CoherenceProtocol::kMoesi;
  else if (s == "mesi") out = CoherenceProtocol::kMesi;
  else return false;
  return true;
}

bool apply_sim_config_json(const json::Value& doc, SimConfig& cfg,
                           std::string& err) {
  if (!doc.is_object()) {
    err = "config: expected an object";
    return false;
  }
  for (const auto& [k, v] : doc.members()) {
    if (k == "core") {
      if (!apply_core(v, cfg.core, err)) return false;
    } else if (k == "l1i") {
      if (!apply_cache(v, "l1i", cfg.l1i, err)) return false;
    } else if (k == "l1d") {
      if (!apply_cache(v, "l1d", cfg.l1d, err)) return false;
    } else if (k == "l2") {
      if (!apply_l2(v, cfg.l2, err)) return false;
    } else if (k == "noc") {
      if (!apply_noc(v, cfg.noc, err)) return false;
    } else if (k == "mem") {
      if (!apply_mem(v, cfg.mem, err)) return false;
    } else if (k == "power") {
      if (!apply_power(v, cfg.power, err)) return false;
    } else if (k == "thermal") {
      if (!apply_thermal(v, cfg.thermal, err)) return false;
    } else if (k == "dvfs") {
      if (!apply_dvfs(v, cfg.dvfs, err)) return false;
    } else if (k == "ptb") {
      if (!apply_ptb(v, cfg.ptb, err)) return false;
    } else if (k == "num_cores") {
      std::uint32_t cores = 0;
      if (!v.as_u32(cores) || cores == 0)
        return bad(err, "config", k, "expected a positive integer");
      cfg.num_cores = cores;
    } else if (k == "technique") {
      if (!v.is_string() ||
          !parse_technique_kind(v.as_string(), cfg.technique))
        return bad(err, "config", k,
                   "expected one of none/dvfs/dfs/two_level/"
                   "thrifty_barrier/meeting_points");
    } else if (k == "budget_fraction") {
      double f = 0.0;
      if (!as_f64(v, f) || !(f > 0.0) || f > 1.0)
        return bad(err, "config", k, "expected a number in (0, 1]");
      cfg.budget_fraction = f;
    } else if (k == "seed") {
      if (!as_u64v(v, cfg.seed))
        return bad(err, "config", k, "expected an unsigned integer");
    } else if (k == "max_cycles") {
      std::uint64_t mc = 0;
      if (!as_u64v(v, mc) || mc == 0)
        return bad(err, "config", k, "expected a positive integer");
      cfg.max_cycles = mc;
    } else if (k == "functional_warmup") {
      if (!as_b(v, cfg.functional_warmup))
        return bad(err, "config", k, "expected a boolean");
    } else if (k == "audit_level" || k == "sim_threads" || k == "trace") {
      return bad(err, "config", k,
                 "observe-only knob, not addressable over the wire");
    } else {
      return bad(err, "config", k, "unknown key");
    }
  }
  return true;
}

bool sim_config_from_json(const std::string& text, SimConfig& out,
                          std::string& err) {
  json::Value doc;
  if (!json::parse(text, doc, err)) return false;
  SimConfig cfg;
  if (!apply_sim_config_json(doc, cfg, err)) return false;
  out = cfg;
  return true;
}

std::string sim_config_to_json(const SimConfig& cfg) {
  std::string out = "{";
  emit_kv_u32(out, "num_cores", cfg.num_cores);

  out += "\"core\":{";
  emit_kv_u32(out, "rob_entries", cfg.core.rob_entries);
  emit_kv_u32(out, "lsq_entries", cfg.core.lsq_entries);
  emit_kv_u32(out, "fetch_width", cfg.core.fetch_width);
  emit_kv_u32(out, "issue_width", cfg.core.issue_width);
  emit_kv_u32(out, "commit_width", cfg.core.commit_width);
  emit_kv_u32(out, "pipeline_stages", cfg.core.pipeline_stages);
  emit_kv_u32(out, "int_alu", cfg.core.int_alu);
  emit_kv_u32(out, "int_mult", cfg.core.int_mult);
  emit_kv_u32(out, "fp_alu", cfg.core.fp_alu);
  emit_kv_u32(out, "fp_mult", cfg.core.fp_mult);
  emit_kv_u32(out, "l1d_ports", cfg.core.l1d_ports);
  emit_kv_u32(out, "bp_history_bits", cfg.core.bp_history_bits);
  emit_kv_u32(out, "bp_table_bytes", cfg.core.bp_table_bytes,
              /*comma=*/false);
  out += "},";

  for (const auto& [name, c] :
       {std::pair<const char*, const CacheConfig*>{"l1i", &cfg.l1i},
        std::pair<const char*, const CacheConfig*>{"l1d", &cfg.l1d}}) {
    out += '"';
    out += name;
    out += "\":{";
    emit_kv_u32(out, "size_bytes", c->size_bytes);
    emit_kv_u32(out, "assoc", c->assoc);
    emit_kv_u32(out, "line_bytes", c->line_bytes);
    emit_kv_u32(out, "hit_latency", c->hit_latency);
    emit_kv_u32(out, "mshrs", c->mshrs, /*comma=*/false);
    out += "},";
  }

  out += "\"l2\":{";
  emit_kv_u32(out, "size_bytes_per_core", cfg.l2.size_bytes_per_core);
  emit_kv_u32(out, "assoc", cfg.l2.assoc);
  emit_kv_u32(out, "line_bytes", cfg.l2.line_bytes);
  emit_kv_u32(out, "hit_latency", cfg.l2.hit_latency);
  emit_kv_str(out, "protocol", coherence_name(cfg.l2.protocol),
              /*comma=*/false);
  out += "},";

  out += "\"noc\":{";
  emit_kv_u32(out, "link_latency", cfg.noc.link_latency);
  emit_kv_u32(out, "flit_bytes", cfg.noc.flit_bytes);
  emit_kv_u32(out, "link_flits_per_cycle", cfg.noc.link_flits_per_cycle);
  emit_kv_u32(out, "ctrl_msg_bytes", cfg.noc.ctrl_msg_bytes);
  emit_kv_u32(out, "data_msg_bytes", cfg.noc.data_msg_bytes,
              /*comma=*/false);
  out += "},";

  out += "\"mem\":{";
  emit_kv_u32(out, "dram_latency", cfg.mem.dram_latency);
  emit_kv_bool(out, "banked", cfg.mem.banked);
  emit_kv_u32(out, "channels", cfg.mem.channels);
  emit_kv_u32(out, "banks_per_channel", cfg.mem.banks_per_channel);
  emit_kv_u32(out, "row_bytes", cfg.mem.row_bytes);
  emit_kv_u32(out, "t_pre", cfg.mem.t_pre);
  emit_kv_u32(out, "t_act", cfg.mem.t_act);
  emit_kv_u32(out, "t_cas", cfg.mem.t_cas);
  emit_kv_u32(out, "t_bus", cfg.mem.t_bus, /*comma=*/false);
  out += "},";

  out += "\"power\":{";
  emit_kv_f64(out, "residency_token", cfg.power.residency_token);
  emit_kv_f64(out, "peak_fetch_frac", cfg.power.peak_fetch_frac);
  emit_kv_f64(out, "peak_rob_frac", cfg.power.peak_rob_frac);
  emit_kv_f64(out, "base_int_alu", cfg.power.base_int_alu);
  emit_kv_f64(out, "base_int_mult", cfg.power.base_int_mult);
  emit_kv_f64(out, "base_fp_alu", cfg.power.base_fp_alu);
  emit_kv_f64(out, "base_fp_mult", cfg.power.base_fp_mult);
  emit_kv_f64(out, "base_load", cfg.power.base_load);
  emit_kv_f64(out, "base_store", cfg.power.base_store);
  emit_kv_f64(out, "base_branch", cfg.power.base_branch);
  emit_kv_f64(out, "base_atomic", cfg.power.base_atomic);
  emit_kv_f64(out, "base_nop", cfg.power.base_nop);
  emit_kv_f64(out, "base_jitter", cfg.power.base_jitter);
  emit_kv_u32(out, "kmeans_groups", cfg.power.kmeans_groups);
  emit_kv_u32(out, "ptht_entries", cfg.power.ptht_entries);
  emit_kv_f64(out, "leakage_per_core", cfg.power.leakage_per_core);
  emit_kv_f64(out, "clock_gated_dynamic", cfg.power.clock_gated_dynamic);
  emit_kv_f64(out, "uncore_per_core", cfg.power.uncore_per_core);
  emit_kv_f64(out, "ptht_overhead_frac", cfg.power.ptht_overhead_frac);
  emit_kv_f64(out, "ptb_wire_overhead_frac",
              cfg.power.ptb_wire_overhead_frac);
  emit_kv_f64(out, "vdd_nominal", cfg.power.vdd_nominal);
  emit_kv_f64(out, "freq_nominal_ghz", cfg.power.freq_nominal_ghz,
              /*comma=*/false);
  out += "},";

  out += "\"thermal\":{";
  emit_kv_f64(out, "ambient_c", cfg.thermal.ambient_c);
  emit_kv_f64(out, "r_thermal", cfg.thermal.r_thermal);
  emit_kv_f64(out, "tau_cycles", cfg.thermal.tau_cycles, /*comma=*/false);
  out += "},";

  out += "\"dvfs\":{";
  emit_kv_u32(out, "window_cycles", cfg.dvfs.window_cycles);
  emit_kv_f64(out, "up_hysteresis", cfg.dvfs.up_hysteresis);
  emit_kv_f64(out, "mv_per_cycle", cfg.dvfs.mv_per_cycle, /*comma=*/false);
  out += "},";

  out += "\"ptb\":{";
  emit_kv_bool(out, "enabled", cfg.ptb.enabled);
  emit_kv_str(out, "policy", ptb_policy_name(cfg.ptb.policy));
  emit_kv_u32(out, "wire_latency_override", cfg.ptb.wire_latency_override);
  emit_kv_u32(out, "token_wire_bits", cfg.ptb.token_wire_bits);
  emit_kv_f64(out, "relax_threshold", cfg.ptb.relax_threshold);
  emit_kv_bool(out, "dynamic_uses_ground_truth",
               cfg.ptb.dynamic_uses_ground_truth);
  emit_kv_bool(out, "toall_redistribute", cfg.ptb.toall_redistribute);
  emit_kv_bool(out, "gate_spinners", cfg.ptb.gate_spinners);
  emit_kv_u32(out, "spin_gate_period", cfg.ptb.spin_gate_period);
  emit_kv_u32(out, "cluster_size", cfg.ptb.cluster_size, /*comma=*/false);
  out += "},";

  emit_kv_str(out, "technique", technique_kind_name(cfg.technique));
  emit_kv_f64(out, "budget_fraction", cfg.budget_fraction);
  out += "\"seed\":" + std::to_string(cfg.seed) + ",";
  out += "\"max_cycles\":" + std::to_string(cfg.max_cycles) + ",";
  emit_kv_bool(out, "functional_warmup", cfg.functional_warmup,
               /*comma=*/false);
  out += "}";
  return out;
}

bool parse_run_request(const json::Value& doc, RunRequest& out,
                       std::string& err) {
  if (!doc.is_object()) {
    err = "request: expected an object";
    return false;
  }
  RunRequest req;
  bool have_benchmark = false;
  for (const auto& [k, v] : doc.members()) {
    if (k == "benchmark") {
      if (!v.is_string()) return bad(err, "request", k, "expected a string");
      req.benchmark = v.as_string();
      have_benchmark = true;
    } else if (k == "config") {
      if (!apply_sim_config_json(v, req.config, err)) return false;
    } else {
      return bad(err, "request", k, "unknown key");
    }
  }
  if (!have_benchmark) {
    err = "request: missing required key 'benchmark'";
    return false;
  }
  bool known = false;
  for (const std::string& name : full_benchmark_names()) {
    if (name == req.benchmark) {
      known = true;
      break;
    }
  }
  if (!known) {
    err = "request.benchmark: unknown benchmark '" + req.benchmark + "'";
    return false;
  }
  out = std::move(req);
  return true;
}

bool parse_sweep_request(const json::Value& doc,
                         std::vector<RunRequest>& out, std::string& err) {
  if (!doc.is_object()) {
    err = "sweep: expected an object";
    return false;
  }
  const json::Value* reqs = nullptr;
  for (const auto& [k, v] : doc.members()) {
    if (k == "requests") {
      reqs = &v;
    } else {
      return bad(err, "sweep", k, "unknown key");
    }
  }
  if (reqs == nullptr || !reqs->is_array() || reqs->array().empty()) {
    err = "sweep: 'requests' must be a non-empty array";
    return false;
  }
  std::vector<RunRequest> parsed;
  parsed.reserve(reqs->array().size());
  for (std::size_t i = 0; i < reqs->array().size(); ++i) {
    RunRequest r;
    if (!parse_run_request(reqs->array()[i], r, err)) {
      err = "requests[" + std::to_string(i) + "]: " + err;
      return false;
    }
    parsed.push_back(std::move(r));
  }
  out = std::move(parsed);
  return true;
}

}  // namespace ptb::serve

#include "serve/span.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ptb::serve {

SpanRecorder::SpanRecorder(std::size_t capacity) : capacity_(capacity) {
  PTB_ASSERT(capacity_ >= 1, "a zero-capacity recorder means 'tracing off'");
}

void SpanRecorder::emit(ServeSpan span) {
  MutexLock lock(mu_);
  ++emitted_;
  ring_.push_back(std::move(span));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

ServeSpanLog SpanRecorder::snapshot() const {
  MutexLock lock(mu_);
  ServeSpanLog log;
  log.emitted = emitted_;
  log.dropped = dropped_;
  log.spans.assign(ring_.begin(), ring_.end());
  return log;
}

}  // namespace ptb::serve

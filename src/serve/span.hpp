// SpanRecorder: the ptb-serve daemon's thread-safe, bounded span sink —
// the service-plane twin of the simulator's EventTrace rings. Transport
// threads (serve/server.cpp, per-request root and parse spans) and
// simulation workers (serve/service.cpp, per-unit stage spans) emit
// completed ServeSpans; the recorder keeps the newest `capacity` of them
// and counts what the ring overwrote, so a long-lived daemon's trace is
// always the recent past, never an OOM.
//
// Identity minting: begin_trace() hands out the per-request trace id at
// HTTP ingress; next_span_id() hands out span ids (unique for the
// recorder's lifetime) so spans emitted concurrently from different
// threads never collide. Trees are linked by parent id, not emission
// order — snapshot() order is completion order.
//
// Zero cost when off: the Service allocates no recorder at all when
// ServiceOptions::trace_spans is 0, and every emit site is a null check.
// Spans observe requests only (timestamps come from serve/http.cpp
// now_ms()); simulation results are byte-identical with tracing on or off
// (asserted in tests/serve/serve_e2e_test.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/thread_annotations.hpp"
#include "trace/serve_span.hpp"

namespace ptb::serve {

class SpanRecorder {
 public:
  /// `capacity` >= 1: the Service never constructs a zero-capacity
  /// recorder (0 means "tracing off" = no recorder).
  explicit SpanRecorder(std::size_t capacity);

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Mints the trace id for one request (1-based, monotonic).
  std::uint64_t begin_trace() { return next_trace_.fetch_add(1); }
  /// Mints a span id (1-based; 0 is reserved for "no parent").
  std::uint32_t next_span_id() { return next_span_.fetch_add(1); }

  /// Records one completed span; drops the oldest when full.
  void emit(ServeSpan span);

  /// Copy of the retained spans + drop accounting (GET /v1/trace).
  ServeSpanLog snapshot() const;

 private:
  const std::size_t capacity_;
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint32_t> next_span_{1};

  mutable Mutex mu_;
  std::deque<ServeSpan> ring_ PTB_GUARDED_BY(mu_);
  std::uint64_t emitted_ PTB_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ PTB_GUARDED_BY(mu_) = 0;
};

}  // namespace ptb::serve

// Service: the simulation-as-a-service core behind ptb-serve's HTTP
// routes. Owns the persistent DiskRunCache, a job table, a fixed pool of
// simulation workers, the TokenAdmission plan and the daemon's own
// StatsRegistry (exposed at /metrics via the Prometheus exposition).
//
// Execution model: submit() enqueues one job (one or more RunRequests)
// onto its tenant's FIFO and returns immediately with a job id and the
// content-address (run key) of every unit. Worker threads pick the next
// admissible unit — tenants in deterministic map order, FIFO within a
// tenant, never exceeding the tenant's TokenAdmission grant — and answer
// it through the disk cache (cached_run_payload: load on hit, simulate +
// atomic store on miss). Clients either poll GET /v1/jobs/{id} or block
// with ?wait=1 (wait()).
//
// Concurrent identical requests may both simulate (benign: the artifact
// is a pure function of the request, stores are atomic and byte-identical,
// last rename wins); the second request through the cache after the first
// completes is a hit.
//
// stop() drains gracefully: running units finish and are recorded; units
// still queued are failed with "service shutting down" so a blocked
// wait() always returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/access_log.hpp"
#include "serve/admission.hpp"
#include "serve/config_json.hpp"
#include "serve/span.hpp"
#include "sim/experiment.hpp"
#include "stats/stats.hpp"

namespace ptb::serve {

struct ServiceOptions {
  std::string cache_dir = ".ptb-cache";
  unsigned sim_workers = 2;       // --jobs: concurrent simulations
  std::uint32_t host_tokens = 2;  // --host-tokens: admission budget
  PtbPolicy admission_policy = PtbPolicy::kToAll;
  std::size_t queue_max = 256;  // queued (not yet running) units
  // --cache-max-bytes: disk-cache quota; oldest published entries are
  // evicted after each store to stay under it. 0 = unbounded.
  std::uint64_t cache_max_bytes = 0;

  // Observability. All observe-only: none of these participate in the run
  // key, and turning them off yields byte-identical artifacts (and no
  // recorder allocation, no clock reads outside the transport).
  std::size_t trace_spans = 4096;       // --trace-spans: ring capacity, 0=off
  Cycle progress_every_cycles = 5000;   // --progress-cycles: 0 = no events
  double stream_heartbeat_ms = 5000.0;  // events-stream keepalive cadence
  std::string log_file;                 // --log-file: "" = off, "-" = stderr
  LogLevel log_level = LogLevel::kInfo;  // --log-level
};

class Service {
 public:
  explicit Service(ServiceOptions opts);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Outcome of a submit: the job id plus each unit's run key (hex16) —
  /// the address a client can later GET /v1/results/{key} with.
  struct Submitted {
    std::string job_id;
    std::vector<std::string> unit_keys;
  };

  /// Trace linkage carried from HTTP ingress into the job table: worker-
  /// side spans (queue wait, simulate stages) parent under the submitting
  /// request's root span. Zero-valued when tracing is off.
  struct TraceCtx {
    std::uint64_t trace_id = 0;
    std::uint32_t root_span = 0;
  };

  /// One entry of a job's event feed (progress / unit / terminal), already
  /// JSON-encoded in `data`. Sequence numbers are per-job, dense from 1.
  struct JobEvent {
    std::uint64_t seq = 0;
    std::string kind;  // "progress" | "unit" | "done" | "failed" | "aborted"
    std::string data;  // JSON object
    bool terminal = false;
  };

  enum class EventWait : std::uint8_t {
    kEvent,    // `out` holds the next event after `after_seq`
    kTimeout,  // nothing new within `timeout_ms` (stream a heartbeat)
    kGone,     // unknown job, or its feed is fully consumed and closed
  };

  /// Enqueues one job for `tenant`. False (with `err`) when the queue is
  /// full or the service is stopping — the caller answers 429/503.
  bool submit(const std::string& tenant, std::vector<RunRequest> requests,
              Submitted& out, std::string& err);
  /// As above, carrying the submitting request's trace linkage.
  bool submit(const std::string& tenant, std::vector<RunRequest> requests,
              Submitted& out, std::string& err, const TraceCtx& trace);

  /// Blocks until the job has finished (done or failed). False when the
  /// id is unknown.
  bool wait(const std::string& job_id);

  /// Job status document for GET /v1/jobs/{id} ("" when unknown).
  std::string job_status_json(const std::string& job_id);

  /// Unit payload + cache disposition for the synchronous (?wait=1)
  /// response path; valid after wait(). False when the id/index is
  /// unknown or the unit failed.
  bool unit_result(const std::string& job_id, std::size_t index,
                   std::string& payload, bool& cache_hit);

  /// GET /v1/results/{key}: straight read-through of the persistent
  /// cache (key is hex16). False on bad key, miss, or corrupt entry.
  bool result_payload(const std::string& key_hex, std::string& payload);

  /// Blocking event-feed cursor for GET /v1/jobs/{id}/events: returns the
  /// oldest retained event with seq > `after_seq`, or kTimeout after
  /// `timeout_ms` with nothing new, or kGone when the job is unknown /
  /// its terminal event has been consumed. Events are capped per job
  /// (oldest dropped); seq gaps tell the client when that happened.
  EventWait next_job_event(const std::string& job_id, std::uint64_t after_seq,
                           double timeout_ms, JobEvent& out);

  /// Prometheus text exposition of the daemon's registry (/metrics).
  std::string metrics_text();

  /// Hook for the HTTP transport: request completed in `ms`.
  void record_http_request(double ms);

  /// Hook for the HTTP transport: a streaming response completed (streams
  /// skip the latency histogram — their duration is the stream lifetime).
  void record_http_stream();

  /// Adds one observation to the per-stage latency histogram (ms). Only
  /// the pre-registered stage taxonomy is recorded; unknown names are
  /// dropped. Thread-safe.
  void record_stage(std::string_view stage, double ms);

  /// The span recorder, or nullptr when tracing is off (trace_spans == 0).
  SpanRecorder* spans() { return spans_.get(); }

  /// Snapshot of the span ring for GET /v1/trace (empty log when off).
  ServeSpanLog trace_snapshot();

  /// The structured access log (disabled unless --log-file was given).
  AccessLog& access_log() { return access_log_; }

  const ServiceOptions& options() const { return opts_; }

  /// Observability sidecar of a job for access-log enrichment: the peak
  /// admission tokens its tenant held while its units ran, and the summed
  /// per-stage durations across its units. False when the id is unknown.
  bool job_observed(const std::string& job_id, std::uint32_t& tokens_held,
                    std::vector<std::pair<std::string, double>>& stages);

  const DiskRunCache& cache() const { return cache_; }
  const TokenAdmission& admission() const { return admission_; }

  /// Graceful drain (see class comment). Idempotent.
  void stop();

 private:
  struct Unit {
    RunRequest req;
    std::uint64_t key = 0;
    // pending -> running -> done | failed
    enum class State : std::uint8_t { kPending, kRunning, kDone, kFailed };
    State state = State::kPending;
    bool cache_hit = false;
    std::string payload;  // artifact bytes (done units)
    std::string error;    // failed units
    // Observability timestamps (now_ms(); 0 when tracing is off):
    double enqueued_ms = 0.0;  // entered its tenant queue
    double blocked_ms = 0.0;   // first denied by admission (0: never)
    double picked_ms = 0.0;    // claimed by a worker
    // Per-stage durations, written by the owning worker after the unit
    // completes (while holding mu_) — feeds job_observed / access log.
    std::vector<std::pair<std::string, double>> stage_ms;
  };

  struct Job {
    std::string id;
    std::string tenant;
    std::vector<Unit> units;
    std::size_t completed = 0;  // done + failed
    // Observability: trace linkage + event feed + admission footprint.
    std::uint64_t trace_id = 0;
    std::uint32_t root_span = 0;
    std::deque<JobEvent> events;
    std::uint64_t next_event_seq = 1;
    bool terminal_emitted = false;
    std::uint32_t tokens_held_peak = 0;
    bool finished() const { return completed == units.size(); }
  };

  struct QueueRef {
    Job* job;
    std::size_t unit_index;
  };

  void worker_loop();
  /// Next admissible (tenant-fair, FIFO) unit, or {nullptr, 0}.
  QueueRef pick_unit_locked() PTB_REQUIRES(mu_);
  /// Appends to the job's bounded event feed and wakes event waiters.
  void push_event_locked(Job& job, const char* kind, std::string data,
                         bool terminal) PTB_REQUIRES(mu_);
  void register_metrics();

  const ServiceOptions opts_;
  DiskRunCache cache_;
  TokenAdmission admission_;

  Mutex mu_;
  std::condition_variable_any work_cv_;  // workers: new unit / stopping
  std::condition_variable_any done_cv_;  // waiters: a job finished
  std::condition_variable_any event_cv_;  // streamers: new job event
  std::map<std::string, std::unique_ptr<Job>> jobs_ PTB_GUARDED_BY(mu_);
  std::map<std::string, std::deque<QueueRef>> queues_ PTB_GUARDED_BY(mu_);
  std::map<std::string, std::uint32_t> running_per_tenant_
      PTB_GUARDED_BY(mu_);
  std::uint64_t next_job_id_ PTB_GUARDED_BY(mu_) = 1;
  bool stopping_ PTB_GUARDED_BY(mu_) = false;

  // Metrics sources (atomics: readable from the registry's pull lambdas
  // without touching mu_, so /metrics never contends with the scheduler).
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> http_streams_{0};
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> units_completed_{0};
  std::atomic<std::uint64_t> units_failed_{0};
  std::atomic<std::uint64_t> queue_depth_{0};    // pending units
  std::atomic<std::uint64_t> units_running_{0};  // in-flight simulations

  Mutex metrics_mu_;  // guards histogram pushes vs /metrics snapshots
  StatsRegistry registry_;
  Histogram* latency_hist_ PTB_PT_GUARDED_BY(metrics_mu_) =
      nullptr;  // registry-owned
  // Pre-registered per-stage latency histograms (the span taxonomy);
  // registry-owned, looked up by stage name in record_stage.
  std::map<std::string, Histogram*, std::less<>> stage_hists_
      PTB_GUARDED_BY(metrics_mu_);

  // Allocated only when trace_spans > 0 — tracing off costs nothing.
  std::unique_ptr<SpanRecorder> spans_;
  AccessLog access_log_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace ptb::serve

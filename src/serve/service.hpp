// Service: the simulation-as-a-service core behind ptb-serve's HTTP
// routes. Owns the persistent DiskRunCache, a job table, a fixed pool of
// simulation workers, the TokenAdmission plan and the daemon's own
// StatsRegistry (exposed at /metrics via the Prometheus exposition).
//
// Execution model: submit() enqueues one job (one or more RunRequests)
// onto its tenant's FIFO and returns immediately with a job id and the
// content-address (run key) of every unit. Worker threads pick the next
// admissible unit — tenants in deterministic map order, FIFO within a
// tenant, never exceeding the tenant's TokenAdmission grant — and answer
// it through the disk cache (cached_run_payload: load on hit, simulate +
// atomic store on miss). Clients either poll GET /v1/jobs/{id} or block
// with ?wait=1 (wait()).
//
// Concurrent identical requests may both simulate (benign: the artifact
// is a pure function of the request, stores are atomic and byte-identical,
// last rename wins); the second request through the cache after the first
// completes is a hit.
//
// stop() drains gracefully: running units finish and are recorded; units
// still queued are failed with "service shutting down" so a blocked
// wait() always returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/admission.hpp"
#include "serve/config_json.hpp"
#include "sim/experiment.hpp"
#include "stats/stats.hpp"

namespace ptb::serve {

struct ServiceOptions {
  std::string cache_dir = ".ptb-cache";
  unsigned sim_workers = 2;       // --jobs: concurrent simulations
  std::uint32_t host_tokens = 2;  // --host-tokens: admission budget
  PtbPolicy admission_policy = PtbPolicy::kToAll;
  std::size_t queue_max = 256;  // queued (not yet running) units
  // --cache-max-bytes: disk-cache quota; oldest published entries are
  // evicted after each store to stay under it. 0 = unbounded.
  std::uint64_t cache_max_bytes = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions opts);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Outcome of a submit: the job id plus each unit's run key (hex16) —
  /// the address a client can later GET /v1/results/{key} with.
  struct Submitted {
    std::string job_id;
    std::vector<std::string> unit_keys;
  };

  /// Enqueues one job for `tenant`. False (with `err`) when the queue is
  /// full or the service is stopping — the caller answers 429/503.
  bool submit(const std::string& tenant, std::vector<RunRequest> requests,
              Submitted& out, std::string& err);

  /// Blocks until the job has finished (done or failed). False when the
  /// id is unknown.
  bool wait(const std::string& job_id);

  /// Job status document for GET /v1/jobs/{id} ("" when unknown).
  std::string job_status_json(const std::string& job_id);

  /// Unit payload + cache disposition for the synchronous (?wait=1)
  /// response path; valid after wait(). False when the id/index is
  /// unknown or the unit failed.
  bool unit_result(const std::string& job_id, std::size_t index,
                   std::string& payload, bool& cache_hit);

  /// GET /v1/results/{key}: straight read-through of the persistent
  /// cache (key is hex16). False on bad key, miss, or corrupt entry.
  bool result_payload(const std::string& key_hex, std::string& payload);

  /// Prometheus text exposition of the daemon's registry (/metrics).
  std::string metrics_text();

  /// Hook for the HTTP transport: request completed in `ms`.
  void record_http_request(double ms);

  const DiskRunCache& cache() const { return cache_; }
  const TokenAdmission& admission() const { return admission_; }

  /// Graceful drain (see class comment). Idempotent.
  void stop();

 private:
  struct Unit {
    RunRequest req;
    std::uint64_t key = 0;
    // pending -> running -> done | failed
    enum class State : std::uint8_t { kPending, kRunning, kDone, kFailed };
    State state = State::kPending;
    bool cache_hit = false;
    std::string payload;  // artifact bytes (done units)
    std::string error;    // failed units
  };

  struct Job {
    std::string id;
    std::string tenant;
    std::vector<Unit> units;
    std::size_t completed = 0;  // done + failed
    bool finished() const { return completed == units.size(); }
  };

  struct QueueRef {
    Job* job;
    std::size_t unit_index;
  };

  void worker_loop();
  /// Next admissible (tenant-fair, FIFO) unit, or {nullptr, 0}.
  QueueRef pick_unit_locked() PTB_REQUIRES(mu_);
  void register_metrics();

  const ServiceOptions opts_;
  DiskRunCache cache_;
  TokenAdmission admission_;

  Mutex mu_;
  std::condition_variable_any work_cv_;  // workers: new unit / stopping
  std::condition_variable_any done_cv_;  // waiters: a job finished
  std::map<std::string, std::unique_ptr<Job>> jobs_ PTB_GUARDED_BY(mu_);
  std::map<std::string, std::deque<QueueRef>> queues_ PTB_GUARDED_BY(mu_);
  std::map<std::string, std::uint32_t> running_per_tenant_
      PTB_GUARDED_BY(mu_);
  std::uint64_t next_job_id_ PTB_GUARDED_BY(mu_) = 1;
  bool stopping_ PTB_GUARDED_BY(mu_) = false;

  // Metrics sources (atomics: readable from the registry's pull lambdas
  // without touching mu_, so /metrics never contends with the scheduler).
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> units_completed_{0};
  std::atomic<std::uint64_t> units_failed_{0};
  std::atomic<std::uint64_t> queue_depth_{0};    // pending units
  std::atomic<std::uint64_t> units_running_{0};  // in-flight simulations

  Mutex metrics_mu_;  // guards latency_hist_ pushes vs /metrics snapshots
  StatsRegistry registry_;
  Histogram* latency_hist_ PTB_PT_GUARDED_BY(metrics_mu_) =
      nullptr;  // registry-owned

  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace ptb::serve

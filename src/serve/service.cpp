#include "serve/service.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "common/json.hpp"
#include "serve/http.hpp"
#include "stats/dump.hpp"
#include "workloads/suite.hpp"

// ptb-lint: allow-begin(wallclock) -- event-stream timeouts only: the
// condition-variable wait below bounds how long a streaming client blocks
// between heartbeats; no simulation state is derived from it.
#include <chrono>
// ptb-lint: allow-end

namespace ptb::serve {

namespace {

// Finished jobs retained for polling before the oldest are pruned.
constexpr std::size_t kMaxRetainedJobs = 1024;

// Per-job event feed cap: oldest events are dropped first (the client sees
// the gap in the seq numbers). Terminal events are always the newest, so
// they are never dropped.
constexpr std::size_t kMaxJobEvents = 256;

// The host-stage taxonomy: every span name the service can emit below the
// per-request root, and the set of per-stage latency histograms
// pre-registered on the daemon's registry (registration must happen at the
// constructor's sequential point, so lazy per-name registration is out).
constexpr const char* kStageNames[] = {
    "parse",        "queue_wait", "admission_wait", "cache_probe",
    "warm_restore", "simulate",   "serialize",      "cache_publish",
};

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex16(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = v;
  return true;
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_dir),
      admission_(opts_.host_tokens, opts_.admission_policy) {
  cache_.set_max_bytes(opts_.cache_max_bytes);  // before any worker exists
  if (opts_.trace_spans > 0) {
    spans_ = std::make_unique<SpanRecorder>(opts_.trace_spans);
  }
  if (!opts_.log_file.empty()) {
    std::string err;
    PTB_ASSERTF(access_log_.open(opts_.log_file, opts_.log_level, err),
                "access log: %s", err.c_str());
  }
  register_metrics();
  const unsigned workers = opts_.sim_workers == 0 ? 1 : opts_.sim_workers;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { stop(); }

void Service::register_metrics() {
  // Registration binds pull lambdas; the StatsRegistry contract requires
  // the sequential-point role (this constructor is the daemon's sequential
  // point — no worker exists yet).
  ScopedThreadRole role(g_sequential_point);
  registry_.counter_fn("serve.http.requests",
                       "HTTP requests completed (all statuses)",
                       [this] { return double(http_requests_.load()); });
  registry_.counter_fn("serve.http.streams",
                       "streaming (chunked) responses completed",
                       [this] { return double(http_streams_.load()); });
  registry_.counter_fn("serve.jobs.submitted", "jobs accepted by submit()",
                       [this] { return double(jobs_submitted_.load()); });
  registry_.counter_fn("serve.units.completed",
                       "simulation units finished successfully",
                       [this] { return double(units_completed_.load()); });
  registry_.counter_fn("serve.units.failed",
                       "simulation units failed (shutdown drain)",
                       [this] { return double(units_failed_.load()); });
  registry_.counter_fn("serve.cache.hits", "disk cache hits",
                       [this] { return double(cache_.hits()); });
  registry_.counter_fn("serve.cache.misses", "disk cache misses",
                       [this] { return double(cache_.misses()); });
  registry_.counter_fn("serve.cache.corrupt",
                       "disk cache entries rejected as corrupt",
                       [this] { return double(cache_.corrupt()); });
  registry_.counter_fn("serve.cache.stores", "disk cache entries written",
                       [this] { return double(cache_.stores()); });
  // Warm-checkpoint traffic flows through the process-wide warm cache
  // (set_default_warm_checkpoint_dir, consulted by run_one), a separate
  // DiskRunCache object that may share this service's directory — so the
  // warm counters read the singleton and evictions sum both objects.
  registry_.counter_fn("serve.cache.evicted",
                       "cache entries evicted to honor --cache-max-bytes",
                       [this] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return double(cache_.evicted() +
                                       (w != nullptr ? w->evicted() : 0));
                       });
  registry_.counter_fn("serve.cache.warm_hits",
                       "warm-checkpoint images restored from the cache", [] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return w != nullptr ? double(w->warm_hits()) : 0.0;
                       });
  registry_.counter_fn("serve.cache.warm_misses",
                       "warm-checkpoint lookups that missed", [] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return w != nullptr ? double(w->warm_misses()) : 0.0;
                       });
  registry_.counter_fn("serve.cache.warm_stores",
                       "warm-checkpoint images written to the cache", [] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return w != nullptr ? double(w->warm_stores()) : 0.0;
                       });
  registry_.gauge_fn("serve.queue.depth", "units queued, not yet running",
                     [this] { return double(queue_depth_.load()); }, 0);
  registry_.gauge_fn("serve.jobs.in_flight", "simulations running now",
                     [this] { return double(units_running_.load()); }, 0);
  registry_.gauge_fn("serve.admission.host_tokens",
                     "configured host token budget",
                     [this] { return double(admission_.host_tokens()); }, 0);
  {
    MutexLock lock(metrics_mu_);
    latency_hist_ = &registry_.distribution(
        "serve.http.request_ms", "HTTP request latency (milliseconds)", 0.0,
        1000.0, 20);
    for (const char* stage : kStageNames) {
      stage_hists_[stage] = &registry_.distribution(
          std::string("serve.stage.") + stage + "_ms",
          std::string("'") + stage + "' stage latency (milliseconds)", 0.0,
          1000.0, 20);
    }
  }
}

bool Service::submit(const std::string& tenant,
                     std::vector<RunRequest> requests, Submitted& out,
                     std::string& err) {
  return submit(tenant, std::move(requests), out, err, TraceCtx{});
}

bool Service::submit(const std::string& tenant,
                     std::vector<RunRequest> requests, Submitted& out,
                     std::string& err, const TraceCtx& trace) {
  PTB_ASSERT(!requests.empty(), "submit requires at least one request");
  Submitted result;
  {
    MutexLock lock(mu_);
    if (stopping_) {
      err = "service shutting down";
      return false;
    }
    if (queue_depth_.load() + requests.size() > opts_.queue_max) {
      err = "queue full";
      return false;
    }

    // Prune oldest finished jobs (ids are zero-padded, so map order is
    // submission order). Nothing queued can reference a finished job.
    while (jobs_.size() >= kMaxRetainedJobs) {
      bool pruned = false;
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->second->finished()) {
          jobs_.erase(it);
          pruned = true;
          break;
        }
      }
      if (!pruned) break;  // everything live; let the table grow
    }

    char idbuf[24];
    std::snprintf(idbuf, sizeof(idbuf), "j%08llu",
                  static_cast<unsigned long long>(next_job_id_++));
    auto job = std::make_unique<Job>();
    job->id = idbuf;
    job->tenant = tenant.empty() ? "default" : tenant;
    job->trace_id = trace.trace_id;
    job->root_span = trace.root_span;
    job->units.reserve(requests.size());
    const double enqueued = spans_ != nullptr ? now_ms() : 0.0;
    for (RunRequest& req : requests) {
      Unit u;
      u.key = DiskRunCache::run_key(req.benchmark, req.config);
      u.req = std::move(req);
      u.enqueued_ms = enqueued;
      result.unit_keys.push_back(hex16(u.key));
      job->units.push_back(std::move(u));
    }
    result.job_id = job->id;

    Job* jp = job.get();
    jobs_[jp->id] = std::move(job);
    std::deque<QueueRef>& q = queues_[jp->tenant];
    for (std::size_t i = 0; i < jp->units.size(); ++i) {
      q.push_back(QueueRef{jp, i});
      queue_depth_.fetch_add(1);
    }
    jobs_submitted_.fetch_add(1);
  }
  work_cv_.notify_all();
  out = std::move(result);
  return true;
}

Service::QueueRef Service::pick_unit_locked() {
  std::map<std::string, std::uint32_t> demand;
  for (const auto& [tenant, q] : queues_) {
    demand[tenant] = static_cast<std::uint32_t>(q.size());
  }
  for (const auto& [tenant, running] : running_per_tenant_) {
    demand[tenant] += running;
  }
  const std::map<std::string, std::uint32_t> grant = admission_.plan(demand);
  for (auto& [tenant, q] : queues_) {
    if (q.empty()) continue;
    const auto g = grant.find(tenant);
    const auto r = running_per_tenant_.find(tenant);
    const std::uint32_t running =
        r == running_per_tenant_.end() ? 0 : r->second;
    if (g != grant.end() && running < g->second) {
      const QueueRef ref = q.front();
      q.pop_front();
      return ref;
    }
    if (spans_ != nullptr) {
      // Admission denied with work queued: stamp the head-of-line unit's
      // first-blocked instant so its admission_wait span starts here.
      Unit& head = q.front().job->units[q.front().unit_index];
      if (head.blocked_ms == 0.0) head.blocked_ms = now_ms();
    }
  }
  return QueueRef{nullptr, 0};
}

void Service::worker_loop() {
  MutexLock lock(mu_);
  for (;;) {
    QueueRef ref{nullptr, 0};
    // Explicit wait loop (RunPool idiom): a predicate lambda would not be
    // known to hold mu_ under -Wthread-safety.
    while (!stopping_ && (ref = pick_unit_locked()).job == nullptr) {
      work_cv_.wait(lock);
    }
    if (ref.job == nullptr) return;  // stopping; queued units fail in stop()

    Job* job = ref.job;  // stable: jobs are pruned only once finished
    Unit& u = job->units[ref.unit_index];
    u.state = Unit::State::kRunning;
    const std::uint32_t running_now = ++running_per_tenant_[job->tenant];
    if (running_now > job->tokens_held_peak) {
      job->tokens_held_peak = running_now;
    }
    queue_depth_.fetch_sub(1);
    units_running_.fetch_add(1);
    if (spans_ != nullptr) u.picked_ms = now_ms();
    const RunRequest req = u.req;  // simulate without the lock
    const std::uint64_t trace_id = job->trace_id;
    const std::uint32_t root_span = job->root_span;
    const double enqueued = u.enqueued_ms;
    const double blocked = u.blocked_ms;
    const double picked = u.picked_ms;
    const std::size_t unit_index = ref.unit_index;
    lock.unlock();

    SpanRecorder* rec = spans_.get();
    const bool tracing = rec != nullptr && trace_id != 0;
    const bool want_progress = opts_.progress_every_cycles > 0;

    // Per-stage durations accumulate worker-locally during the unlocked
    // simulate window and are assigned into the Unit only after relocking.
    std::vector<std::pair<std::string, double>> stage_ms;

    if (tracing) {
      // Scheduler spans. Both are always emitted — admission_wait is
      // zero-length when the unit was never denied — so two identical
      // requests produce structurally identical span trees regardless of
      // scheduler timing.
      ServeSpan s;
      s.trace_id = trace_id;
      s.parent_id = root_span;
      s.span_id = rec->next_span_id();
      s.name = "queue_wait";
      s.start_ms = enqueued;
      s.end_ms = picked;
      rec->emit(s);
      record_stage("queue_wait", picked - enqueued);
      stage_ms.emplace_back("queue_wait", picked - enqueued);
      s.span_id = rec->next_span_id();
      s.name = "admission_wait";
      s.start_ms = blocked == 0.0 ? picked : blocked;
      rec->emit(s);
      record_stage("admission_wait", s.end_ms - s.start_ms);
      stage_ms.emplace_back("admission_wait", s.end_ms - s.start_ms);
    }

    // Host-stage observer: a LIFO stack of open stages makes nesting
    // (warm_restore inside simulate) parent naturally.
    struct StageOpen {
      std::string name;
      double begin_ms;
      std::uint32_t span_id;
    };
    std::vector<StageOpen> open;
    RunObserver observer;
    const RunObserver* obs_ptr = nullptr;
    if (tracing) {
      observer.stage_enter = [&](std::string_view stage) {
        open.push_back(
            StageOpen{std::string(stage), now_ms(), rec->next_span_id()});
      };
      observer.stage_exit = [&](std::string_view stage) {
        // Stages strictly nest; unwinding to the named stage tolerates a
        // producer that misses an inner end on an error path.
        while (!open.empty()) {
          const StageOpen top = std::move(open.back());
          open.pop_back();
          ServeSpan s;
          s.trace_id = trace_id;
          s.span_id = top.span_id;
          s.parent_id = open.empty() ? root_span : open.back().span_id;
          s.name = top.name;
          s.start_ms = top.begin_ms;
          s.end_ms = now_ms();
          rec->emit(s);
          record_stage(top.name, s.end_ms - s.start_ms);
          stage_ms.emplace_back(top.name, s.end_ms - s.start_ms);
          if (top.name == stage) break;
        }
      };
      obs_ptr = &observer;
    }
    if (want_progress) {
      observer.progress_every = opts_.progress_every_cycles;
      observer.progress = [&](const RunProgress& p) {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "{\"unit\":%zu,\"cycle\":%llu,\"max_cycles\":%llu,"
            "\"committed\":%llu,\"ipc\":%.4f,\"watts\":%.2f,"
            "\"cores_finished\":%u,\"cores\":%u,\"phase\":\"%s\"}",
            unit_index, static_cast<unsigned long long>(p.cycle),
            static_cast<unsigned long long>(p.max_cycles),
            static_cast<unsigned long long>(p.committed), p.ipc, p.watts,
            p.cores_finished, p.num_cores,
            p.detailed ? "detailed" : "fastforward");
        MutexLock plock(mu_);
        push_event_locked(*job, "progress", buf, false);
      };
      obs_ptr = &observer;
    }

    bool hit = false;
    std::string payload =
        cached_run_payload(cache_, benchmark_by_name(req.benchmark),
                           req.config, hit, obs_ptr);

    lock.lock();
    u.state = Unit::State::kDone;
    u.cache_hit = hit;
    u.payload = std::move(payload);
    u.stage_ms = std::move(stage_ms);
    --running_per_tenant_[job->tenant];
    units_running_.fetch_sub(1);
    units_completed_.fetch_add(1);
    ++job->completed;
    {
      std::string data = "{\"unit\":" + std::to_string(unit_index) +
                         ",\"benchmark\":\"" + json::escape(req.benchmark) +
                         "\",\"state\":\"done\",\"cache\":\"" +
                         (hit ? "hit" : "miss") + "\",\"key\":\"" +
                         hex16(u.key) + "\"}";
      push_event_locked(*job, "unit", std::move(data), false);
    }
    if (job->finished()) {
      bool any_failed = false;
      for (const Unit& ju : job->units) {
        if (ju.state == Unit::State::kFailed) any_failed = true;
      }
      const char* kind = any_failed ? "failed" : "done";
      std::string data = "{\"id\":\"" + job->id + "\",\"state\":\"" + kind +
                         "\",\"total\":" + std::to_string(job->units.size()) +
                         "}";
      push_event_locked(*job, kind, std::move(data), true);
      done_cv_.notify_all();
    }
    // Admission headroom changed: another tenant's unit may now start.
    work_cv_.notify_all();
  }
}

void Service::push_event_locked(Job& job, const char* kind, std::string data,
                                bool terminal) {
  JobEvent ev;
  ev.seq = job.next_event_seq++;
  ev.kind = kind;
  ev.data = std::move(data);
  ev.terminal = terminal;
  job.events.push_back(std::move(ev));
  while (job.events.size() > kMaxJobEvents) job.events.pop_front();
  if (terminal) job.terminal_emitted = true;
  event_cv_.notify_all();
}

Service::EventWait Service::next_job_event(const std::string& job_id,
                                           std::uint64_t after_seq,
                                           double timeout_ms, JobEvent& out) {
  if (timeout_ms < 0.0) timeout_ms = 0.0;
  MutexLock lock(mu_);
  bool timed_out = false;
  for (;;) {
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return EventWait::kGone;
    const Job& job = *it->second;
    for (const JobEvent& ev : job.events) {
      if (ev.seq > after_seq) {
        out = ev;
        return EventWait::kEvent;
      }
    }
    if (job.terminal_emitted) return EventWait::kGone;  // feed consumed
    if (timed_out) return EventWait::kTimeout;
    timed_out =
        event_cv_.wait_for(
            lock, std::chrono::duration<double, std::milli>(timeout_ms)) ==
        std::cv_status::timeout;
  }
}

bool Service::wait(const std::string& job_id) {
  MutexLock lock(mu_);
  for (;;) {
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    if (it->second->finished()) return true;
    done_cv_.wait(lock);
  }
}

std::string Service::job_status_json(const std::string& job_id) {
  MutexLock lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return "";
  const Job& job = *it->second;

  bool any_failed = false;
  bool any_running = false;
  for (const Unit& u : job.units) {
    if (u.state == Unit::State::kFailed) any_failed = true;
    if (u.state == Unit::State::kRunning) any_running = true;
  }
  const char* state = job.finished() ? (any_failed ? "failed" : "done")
                                     : (any_running ? "running" : "queued");

  std::string out = "{";
  out += "\"id\":\"" + job.id + "\",";
  out += "\"tenant\":\"" + json::escape(job.tenant) + "\",";
  out += "\"state\":\"";
  out += state;
  out += "\",";
  out += "\"total\":" + std::to_string(job.units.size()) + ",";
  out += "\"completed\":" + std::to_string(job.completed) + ",";
  out += "\"units\":[";
  for (std::size_t i = 0; i < job.units.size(); ++i) {
    const Unit& u = job.units[i];
    if (i) out += ",";
    out += "{\"benchmark\":\"" + json::escape(u.req.benchmark) + "\",";
    out += "\"key\":\"" + hex16(u.key) + "\",";
    out += "\"state\":\"";
    switch (u.state) {
      case Unit::State::kPending: out += "pending"; break;
      case Unit::State::kRunning: out += "running"; break;
      case Unit::State::kDone: out += "done"; break;
      case Unit::State::kFailed: out += "failed"; break;
    }
    out += "\"";
    if (u.state == Unit::State::kDone) {
      out += ",\"cache\":\"";
      out += u.cache_hit ? "hit" : "miss";
      out += "\"";
    }
    if (u.state == Unit::State::kFailed) {
      out += ",\"error\":\"" + json::escape(u.error) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool Service::unit_result(const std::string& job_id, std::size_t index,
                          std::string& payload, bool& cache_hit) {
  MutexLock lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || index >= it->second->units.size()) return false;
  const Unit& u = it->second->units[index];
  if (u.state != Unit::State::kDone) return false;
  payload = u.payload;
  cache_hit = u.cache_hit;
  return true;
}

bool Service::result_payload(const std::string& key_hex,
                             std::string& payload) {
  std::uint64_t key = 0;
  if (!parse_hex16(key_hex, key)) return false;
  return cache_.load(key, payload);
}

std::string Service::metrics_text() {
  // metrics_mu_ orders the snapshot against concurrent latency pushes;
  // every other source is an atomic read.
  MutexLock lock(metrics_mu_);
  StatsDump dump = StatsDump::snapshot(registry_, nullptr, 0);
  dump.bench = "ptb-serve";
  return dump.to_prometheus();
}

void Service::record_http_request(double ms) {
  http_requests_.fetch_add(1);
  MutexLock lock(metrics_mu_);
  latency_hist_->add(ms);
}

void Service::record_http_stream() {
  http_requests_.fetch_add(1);
  http_streams_.fetch_add(1);
}

void Service::record_stage(std::string_view stage, double ms) {
  MutexLock lock(metrics_mu_);
  const auto it = stage_hists_.find(stage);
  if (it != stage_hists_.end()) it->second->add(ms);
}

ServeSpanLog Service::trace_snapshot() {
  return spans_ != nullptr ? spans_->snapshot() : ServeSpanLog{};
}

bool Service::job_observed(const std::string& job_id,
                           std::uint32_t& tokens_held,
                           std::vector<std::pair<std::string, double>>&
                               stages) {
  MutexLock lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  const Job& job = *it->second;
  tokens_held = job.tokens_held_peak;
  stages.clear();
  for (const Unit& u : job.units) {
    for (const auto& [name, ms] : u.stage_ms) {
      bool merged = false;
      for (auto& [sname, sms] : stages) {
        if (sname == name) {
          sms += ms;
          merged = true;
          break;
        }
      }
      if (!merged) stages.emplace_back(name, ms);
    }
  }
  return true;
}

void Service::stop() {
  if (stopped_.exchange(true)) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    MutexLock lock(mu_);
    // Fail everything still queued so blocked waiters return.
    for (auto& [tenant, q] : queues_) {
      for (const QueueRef& ref : q) {
        Unit& u = ref.job->units[ref.unit_index];
        if (u.state == Unit::State::kPending) {
          u.state = Unit::State::kFailed;
          u.error = "service shutting down";
          units_failed_.fetch_add(1);
          queue_depth_.fetch_sub(1);
          ++ref.job->completed;
        }
      }
      q.clear();
    }
    // Any job finishing through this drain never got a terminal event from
    // a worker: emit "aborted" so an open /v1/jobs/{id}/events stream
    // unblocks and closes instead of hanging until the client gives up.
    for (auto& [id, job] : jobs_) {
      if (job->finished() && !job->terminal_emitted) {
        std::string data =
            "{\"id\":\"" + job->id + "\",\"state\":\"aborted\"}";
        push_event_locked(*job, "aborted", std::move(data), true);
      }
    }
  }
  done_cv_.notify_all();
  event_cv_.notify_all();
}

}  // namespace ptb::serve

#include "serve/service.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "common/json.hpp"
#include "stats/dump.hpp"
#include "workloads/suite.hpp"

namespace ptb::serve {

namespace {

// Finished jobs retained for polling before the oldest are pruned.
constexpr std::size_t kMaxRetainedJobs = 1024;

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex16(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = v;
  return true;
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_dir),
      admission_(opts_.host_tokens, opts_.admission_policy) {
  cache_.set_max_bytes(opts_.cache_max_bytes);  // before any worker exists
  register_metrics();
  const unsigned workers = opts_.sim_workers == 0 ? 1 : opts_.sim_workers;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { stop(); }

void Service::register_metrics() {
  // Registration binds pull lambdas; the StatsRegistry contract requires
  // the sequential-point role (this constructor is the daemon's sequential
  // point — no worker exists yet).
  ScopedThreadRole role(g_sequential_point);
  registry_.counter_fn("serve.http.requests",
                       "HTTP requests completed (all statuses)",
                       [this] { return double(http_requests_.load()); });
  registry_.counter_fn("serve.jobs.submitted", "jobs accepted by submit()",
                       [this] { return double(jobs_submitted_.load()); });
  registry_.counter_fn("serve.units.completed",
                       "simulation units finished successfully",
                       [this] { return double(units_completed_.load()); });
  registry_.counter_fn("serve.units.failed",
                       "simulation units failed (shutdown drain)",
                       [this] { return double(units_failed_.load()); });
  registry_.counter_fn("serve.cache.hits", "disk cache hits",
                       [this] { return double(cache_.hits()); });
  registry_.counter_fn("serve.cache.misses", "disk cache misses",
                       [this] { return double(cache_.misses()); });
  registry_.counter_fn("serve.cache.corrupt",
                       "disk cache entries rejected as corrupt",
                       [this] { return double(cache_.corrupt()); });
  registry_.counter_fn("serve.cache.stores", "disk cache entries written",
                       [this] { return double(cache_.stores()); });
  // Warm-checkpoint traffic flows through the process-wide warm cache
  // (set_default_warm_checkpoint_dir, consulted by run_one), a separate
  // DiskRunCache object that may share this service's directory — so the
  // warm counters read the singleton and evictions sum both objects.
  registry_.counter_fn("serve.cache.evicted",
                       "cache entries evicted to honor --cache-max-bytes",
                       [this] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return double(cache_.evicted() +
                                       (w != nullptr ? w->evicted() : 0));
                       });
  registry_.counter_fn("serve.cache.warm_hits",
                       "warm-checkpoint images restored from the cache", [] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return w != nullptr ? double(w->warm_hits()) : 0.0;
                       });
  registry_.counter_fn("serve.cache.warm_misses",
                       "warm-checkpoint lookups that missed", [] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return w != nullptr ? double(w->warm_misses()) : 0.0;
                       });
  registry_.counter_fn("serve.cache.warm_stores",
                       "warm-checkpoint images written to the cache", [] {
                         const DiskRunCache* w = default_warm_checkpoint_cache();
                         return w != nullptr ? double(w->warm_stores()) : 0.0;
                       });
  registry_.gauge_fn("serve.queue.depth", "units queued, not yet running",
                     [this] { return double(queue_depth_.load()); }, 0);
  registry_.gauge_fn("serve.jobs.in_flight", "simulations running now",
                     [this] { return double(units_running_.load()); }, 0);
  registry_.gauge_fn("serve.admission.host_tokens",
                     "configured host token budget",
                     [this] { return double(admission_.host_tokens()); }, 0);
  {
    MutexLock lock(metrics_mu_);
    latency_hist_ = &registry_.distribution(
        "serve.http.request_ms", "HTTP request latency (milliseconds)", 0.0,
        1000.0, 20);
  }
}

bool Service::submit(const std::string& tenant,
                     std::vector<RunRequest> requests, Submitted& out,
                     std::string& err) {
  PTB_ASSERT(!requests.empty(), "submit requires at least one request");
  Submitted result;
  {
    MutexLock lock(mu_);
    if (stopping_) {
      err = "service shutting down";
      return false;
    }
    if (queue_depth_.load() + requests.size() > opts_.queue_max) {
      err = "queue full";
      return false;
    }

    // Prune oldest finished jobs (ids are zero-padded, so map order is
    // submission order). Nothing queued can reference a finished job.
    while (jobs_.size() >= kMaxRetainedJobs) {
      bool pruned = false;
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->second->finished()) {
          jobs_.erase(it);
          pruned = true;
          break;
        }
      }
      if (!pruned) break;  // everything live; let the table grow
    }

    char idbuf[24];
    std::snprintf(idbuf, sizeof(idbuf), "j%08llu",
                  static_cast<unsigned long long>(next_job_id_++));
    auto job = std::make_unique<Job>();
    job->id = idbuf;
    job->tenant = tenant.empty() ? "default" : tenant;
    job->units.reserve(requests.size());
    for (RunRequest& req : requests) {
      Unit u;
      u.key = DiskRunCache::run_key(req.benchmark, req.config);
      u.req = std::move(req);
      result.unit_keys.push_back(hex16(u.key));
      job->units.push_back(std::move(u));
    }
    result.job_id = job->id;

    Job* jp = job.get();
    jobs_[jp->id] = std::move(job);
    std::deque<QueueRef>& q = queues_[jp->tenant];
    for (std::size_t i = 0; i < jp->units.size(); ++i) {
      q.push_back(QueueRef{jp, i});
      queue_depth_.fetch_add(1);
    }
    jobs_submitted_.fetch_add(1);
  }
  work_cv_.notify_all();
  out = std::move(result);
  return true;
}

Service::QueueRef Service::pick_unit_locked() {
  std::map<std::string, std::uint32_t> demand;
  for (const auto& [tenant, q] : queues_) {
    demand[tenant] = static_cast<std::uint32_t>(q.size());
  }
  for (const auto& [tenant, running] : running_per_tenant_) {
    demand[tenant] += running;
  }
  const std::map<std::string, std::uint32_t> grant = admission_.plan(demand);
  for (auto& [tenant, q] : queues_) {
    if (q.empty()) continue;
    const auto g = grant.find(tenant);
    const auto r = running_per_tenant_.find(tenant);
    const std::uint32_t running =
        r == running_per_tenant_.end() ? 0 : r->second;
    if (g != grant.end() && running < g->second) {
      const QueueRef ref = q.front();
      q.pop_front();
      return ref;
    }
  }
  return QueueRef{nullptr, 0};
}

void Service::worker_loop() {
  MutexLock lock(mu_);
  for (;;) {
    QueueRef ref{nullptr, 0};
    // Explicit wait loop (RunPool idiom): a predicate lambda would not be
    // known to hold mu_ under -Wthread-safety.
    while (!stopping_ && (ref = pick_unit_locked()).job == nullptr) {
      work_cv_.wait(lock);
    }
    if (ref.job == nullptr) return;  // stopping; queued units fail in stop()

    Unit& u = ref.job->units[ref.unit_index];
    u.state = Unit::State::kRunning;
    ++running_per_tenant_[ref.job->tenant];
    queue_depth_.fetch_sub(1);
    units_running_.fetch_add(1);
    const RunRequest req = u.req;  // simulate without the lock
    lock.unlock();

    bool hit = false;
    std::string payload = cached_run_payload(
        cache_, benchmark_by_name(req.benchmark), req.config, hit);

    lock.lock();
    u.state = Unit::State::kDone;
    u.cache_hit = hit;
    u.payload = std::move(payload);
    --running_per_tenant_[ref.job->tenant];
    units_running_.fetch_sub(1);
    units_completed_.fetch_add(1);
    ++ref.job->completed;
    if (ref.job->finished()) done_cv_.notify_all();
    // Admission headroom changed: another tenant's unit may now start.
    work_cv_.notify_all();
  }
}

bool Service::wait(const std::string& job_id) {
  MutexLock lock(mu_);
  for (;;) {
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    if (it->second->finished()) return true;
    done_cv_.wait(lock);
  }
}

std::string Service::job_status_json(const std::string& job_id) {
  MutexLock lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return "";
  const Job& job = *it->second;

  bool any_failed = false;
  bool any_running = false;
  for (const Unit& u : job.units) {
    if (u.state == Unit::State::kFailed) any_failed = true;
    if (u.state == Unit::State::kRunning) any_running = true;
  }
  const char* state = job.finished() ? (any_failed ? "failed" : "done")
                                     : (any_running ? "running" : "queued");

  std::string out = "{";
  out += "\"id\":\"" + job.id + "\",";
  out += "\"tenant\":\"" + json::escape(job.tenant) + "\",";
  out += "\"state\":\"";
  out += state;
  out += "\",";
  out += "\"total\":" + std::to_string(job.units.size()) + ",";
  out += "\"completed\":" + std::to_string(job.completed) + ",";
  out += "\"units\":[";
  for (std::size_t i = 0; i < job.units.size(); ++i) {
    const Unit& u = job.units[i];
    if (i) out += ",";
    out += "{\"benchmark\":\"" + json::escape(u.req.benchmark) + "\",";
    out += "\"key\":\"" + hex16(u.key) + "\",";
    out += "\"state\":\"";
    switch (u.state) {
      case Unit::State::kPending: out += "pending"; break;
      case Unit::State::kRunning: out += "running"; break;
      case Unit::State::kDone: out += "done"; break;
      case Unit::State::kFailed: out += "failed"; break;
    }
    out += "\"";
    if (u.state == Unit::State::kDone) {
      out += ",\"cache\":\"";
      out += u.cache_hit ? "hit" : "miss";
      out += "\"";
    }
    if (u.state == Unit::State::kFailed) {
      out += ",\"error\":\"" + json::escape(u.error) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool Service::unit_result(const std::string& job_id, std::size_t index,
                          std::string& payload, bool& cache_hit) {
  MutexLock lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || index >= it->second->units.size()) return false;
  const Unit& u = it->second->units[index];
  if (u.state != Unit::State::kDone) return false;
  payload = u.payload;
  cache_hit = u.cache_hit;
  return true;
}

bool Service::result_payload(const std::string& key_hex,
                             std::string& payload) {
  std::uint64_t key = 0;
  if (!parse_hex16(key_hex, key)) return false;
  return cache_.load(key, payload);
}

std::string Service::metrics_text() {
  // metrics_mu_ orders the snapshot against concurrent latency pushes;
  // every other source is an atomic read.
  MutexLock lock(metrics_mu_);
  StatsDump dump = StatsDump::snapshot(registry_, nullptr, 0);
  dump.bench = "ptb-serve";
  return dump.to_prometheus();
}

void Service::record_http_request(double ms) {
  http_requests_.fetch_add(1);
  MutexLock lock(metrics_mu_);
  latency_hist_->add(ms);
}

void Service::stop() {
  if (stopped_.exchange(true)) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    MutexLock lock(mu_);
    // Fail everything still queued so blocked waiters return.
    for (auto& [tenant, q] : queues_) {
      for (const QueueRef& ref : q) {
        Unit& u = ref.job->units[ref.unit_index];
        if (u.state == Unit::State::kPending) {
          u.state = Unit::State::kFailed;
          u.error = "service shutting down";
          units_failed_.fetch_add(1);
          queue_depth_.fetch_sub(1);
          ++ref.job->completed;
        }
      }
      q.clear();
    }
  }
  done_cv_.notify_all();
}

}  // namespace ptb::serve

// Dependency-free embedded HTTP/1.1 server (and a tiny blocking client for
// the tests and shell harnesses): a blocking accept loop feeding a bounded
// connection queue drained by a fixed pool of worker threads, one request
// per connection (`Connection: close` — the serve workload is dominated by
// simulation time, so keep-alive buys nothing and costs connection state).
//
// This is the transport only: it parses requests, enforces size limits, and
// hands a complete HttpRequest to the registered handler; routing, JSON and
// all simulation semantics live in serve/server.{hpp,cpp}. Graceful stop:
// stop() closes the listening socket, lets the workers finish every already
// accepted connection, and joins all threads.
//
// Host wall-clock: a server legitimately reads host time (request latency
// metrics, socket timeouts). Every such read is confined to now_ms() below
// and lint-exempted with a justification — see scripts/lint.sh and the
// DESIGN.md "Service plane" section. Nothing here can reach simulation
// results: the simulator consumes only (profile, config, seed).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace ptb::serve {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/v1/run" (query string stripped)
  std::string query;   // "wait=1" (raw, no leading '?')
  std::vector<std::pair<std::string, std::string>> headers;  // names lowered
  std::string body;

  // Host-monotonic timestamps (now_ms()) stamped by the transport so the
  // routing layer can attribute a "parse" span without its own clock reads:
  // ingress is the accept-to-handler pickup instant, parsed is just after
  // the head+body were read and decoded. Zero when the request was built by
  // hand (unit tests) rather than read off a socket.
  double ingress_ms = 0.0;
  double parsed_ms = 0.0;

  /// First header with this (lowercase) name; null when absent.
  const std::string* header(std::string_view name) const;
  /// Value of `key` in the query string ("" when absent; flag-style keys
  /// like "?wait" yield "1").
  std::string query_param(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;  // extras
  std::string body;

  /// Writes one chunk to the peer; false when the peer hung up (the
  /// producer should stop).
  using ChunkSink = std::function<bool(std::string_view)>;

  /// When set, the response streams: the transport sends the head with
  /// `Transfer-Encoding: chunked` (body ignored), then invokes this from
  /// the worker thread with a sink that frames each chunk, and finally
  /// terminates the chunk stream when it returns. Used by the job
  /// event-stream route; everything else leaves it empty.
  std::function<void(const ChunkSink&)> stream;
};

/// Standard reason phrase for the handful of statuses the service emits.
const char* http_status_reason(int status);

/// Parses a request head (request line + header lines, no body) as read off
/// the wire up to the blank line. Exposed for the unit tests; the server
/// and client both use it. Returns false on malformed input.
bool parse_http_head(std::string_view head, HttpRequest& out,
                     std::string& err);

/// Serializes a response (adds Content-Length and Connection: close).
std::string render_http_response(const HttpResponse& r);

/// Serializes only the head of a streaming response: no Content-Length,
/// `Transfer-Encoding: chunked` instead; the body field is ignored.
std::string render_http_stream_head(const HttpResponse& r);

/// Decodes a chunked transfer-encoded body (`raw` is everything after the
/// head) into `out`. Trailers are tolerated and discarded. False with `err`
/// set on malformed framing. Exposed for the client and the unit tests.
bool http_dechunk(std::string_view raw, std::string& out, std::string& err);

/// Monotonic host milliseconds for latency measurement — the single
/// wall-clock read site of the serve subsystem.
double now_ms();

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `port` 0 asks the kernel for an ephemeral port (see port()).
  HttpServer(std::string listen_addr, std::uint16_t port, unsigned workers,
             Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads. False (with
  /// `err` set) when the address cannot be bound.
  bool start(std::string& err);

  /// First half of stop(): closes the accept side only — joins the
  /// acceptor thread so no new connections arrive, but leaves the workers
  /// running so in-flight requests (including open event streams) can
  /// still observe state changes made between this call and stop().
  /// Idempotent; stop() calls it implicitly.
  void stop_accepting();

  /// Graceful: stop accepting, drain already-accepted connections, join.
  /// Idempotent.
  void stop();

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const { return bound_port_; }

  /// Completed request count (all statuses).
  std::uint64_t requests_served() const;

  /// Optional per-request latency hook (milliseconds, parse + handler +
  /// write). Set before start(); called from worker threads. Streaming
  /// responses do not report here (their duration measures the stream's
  /// lifetime, not service latency) — they hit the stream hook instead.
  void set_latency_hook(std::function<void(double)> hook) {
    latency_hook_ = std::move(hook);
  }

  /// Optional hook invoked once per completed streaming response. Set
  /// before start(); called from worker threads.
  void set_stream_hook(std::function<void()> hook) {
    stream_hook_ = std::move(hook);
  }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  std::string listen_addr_;
  std::uint16_t requested_port_;
  std::uint16_t bound_port_ = 0;
  unsigned num_workers_;
  Handler handler_;
  std::function<void(double)> latency_hook_;
  std::function<void()> stream_hook_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> accept_joined_{false};
  std::atomic<bool> workers_joined_{false};
  std::atomic<std::uint64_t> served_{0};

  Mutex mu_;
  std::condition_variable_any queue_cv_;
  std::deque<int> pending_ PTB_GUARDED_BY(mu_);  // accepted, unhandled fds
  bool draining_ PTB_GUARDED_BY(mu_) = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

/// Minimal blocking HTTP/1.1 client (Connection: close): one request, reads
/// to EOF. Chunked transfer-encoded responses are decoded transparently
/// (out.body holds the reassembled payload). For the tests and in-repo
/// harnesses only. Returns false with `err` set on connect/IO/parse
/// failure.
bool http_request(const std::string& host, std::uint16_t port,
                  const std::string& method, const std::string& target,
                  const std::string& body,
                  const std::vector<std::pair<std::string, std::string>>&
                      extra_headers,
                  HttpResponse& out, std::string& err);

}  // namespace ptb::serve

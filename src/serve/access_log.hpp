// AccessLog: one structured JSON line per completed HTTP request, behind
// ptb-serve's --log-file/--log-level flags. Off by default (no file, no
// cost — every call site is an enabled() check); when on, serve/server.cpp
// writes lines like
//
//   {"ts_ms":123.4,"trace":"000000000000002a","tenant":"default",
//    "method":"POST","path":"/v1/run","query":"wait=1","status":200,
//    "dur_ms":12.8,"cache":"miss","job":"j00000001","tokens_held":1,
//    "stages":{"parse":0.1,"queue_wait":0.4,"simulate":11.9}}
//
// Levels: error logs only status >= 400; info (default) logs every
// request; debug adds the per-stage duration object. `ts_ms` is the serve
// plane's monotonic now_ms() timebase — the same clock as spans and the
// /metrics latency histograms, so log lines, spans and histograms
// correlate exactly (it is NOT wall-clock time of day; the daemon's
// result path never reads a calendar clock).
//
// Thread-safety: write_line() may be called from any transport thread;
// lines are appended atomically under a mutex and flushed per line, so a
// tail -f (or the smoke script's JSON check) always sees whole records.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "common/thread_annotations.hpp"

namespace ptb::serve {

enum class LogLevel : std::uint8_t { kError, kInfo, kDebug };

/// "error" | "info" | "debug" -> level. False (out untouched) otherwise.
bool parse_log_level(std::string_view s, LogLevel& out);
const char* log_level_name(LogLevel level);

class AccessLog {
 public:
  AccessLog() = default;  // disabled
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens `path` for appending ("-" = stderr). False with `err` set when
  /// the file cannot be opened — the daemon refuses to start rather than
  /// silently not logging.
  bool open(const std::string& path, LogLevel level, std::string& err);

  bool enabled() const { return file_ != nullptr; }
  LogLevel level() const { return level_; }
  /// Whether a request with this status should be logged at the
  /// configured level.
  bool should_log(int status) const {
    return enabled() && (level_ != LogLevel::kError || status >= 400);
  }

  /// Appends one complete JSON line (the caller builds the document; the
  /// trailing newline is added here) and flushes.
  void write_line(std::string_view json);

 private:
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;  // stderr is borrowed, files are owned
  LogLevel level_ = LogLevel::kInfo;
  Mutex mu_;
};

}  // namespace ptb::serve

#include "serve/http.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/assert.hpp"

// ptb-lint: allow-begin(wallclock) -- transport layer: request latency
// measurement and socket timeouts are host concerns; simulation results
// never flow through these clocks. See DESIGN.md "Service plane".
#include <chrono>
// ptb-lint: allow-end

namespace ptb::serve {

namespace {

// Hard limits on a single request: a service fronting a socket must bound
// what an arbitrary peer can make it buffer.
constexpr std::size_t kMaxHeadBytes = 16 * 1024;
constexpr std::size_t kMaxBodyBytes = 1 * 1024 * 1024;
constexpr std::size_t kMaxHeaders = 100;
constexpr std::size_t kMaxQueuedConnections = 1024;
constexpr int kAcceptPollMs = 100;
constexpr int kIoTimeoutSec = 10;

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

void set_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutSec;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Sends the whole buffer (MSG_NOSIGNAL: a peer that hung up must not
/// SIGPIPE the daemon). False on any error or timeout.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `buf` contains the blank line ending the head, or until the
/// limit/EOF. Returns the offset just past "\r\n\r\n", or npos on failure.
std::size_t read_head(int fd, std::string& buf) {
  char chunk[4096];
  while (true) {
    const std::size_t mark = buf.find("\r\n\r\n");
    if (mark != std::string::npos) return mark + 4;
    if (buf.size() > kMaxHeadBytes) return std::string::npos;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::string::npos;
    }
    if (n == 0) return std::string::npos;  // EOF before end of head
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

bool read_exact_remaining(int fd, std::string& buf, std::size_t want) {
  char chunk[4096];
  while (buf.size() < want) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Request/response plumbing
// ---------------------------------------------------------------------------

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string HttpRequest::query_param(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return "1";  // flag-style "?wait"
    } else if (pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
  }
  return "";
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool parse_http_head(std::string_view head, HttpRequest& out,
                     std::string& err) {
  HttpRequest req;
  std::size_t pos = 0;
  const auto next_line = [&](std::string_view& line) {
    const std::size_t nl = head.find("\r\n", pos);
    if (nl == std::string_view::npos) return false;
    line = head.substr(pos, nl - pos);
    pos = nl + 2;
    return true;
  };

  std::string_view request_line;
  if (!next_line(request_line)) {
    err = "missing request line";
    return false;
  }
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    err = "malformed request line";
    return false;
  }
  req.method = std::string(request_line.substr(0, sp1));
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (req.method.empty() || target.empty() || target[0] != '/') {
    err = "malformed request target";
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    err = "unsupported HTTP version";
    return false;
  }
  const std::size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    req.path = std::string(target);
  } else {
    req.path = std::string(target.substr(0, qmark));
    req.query = std::string(target.substr(qmark + 1));
  }

  while (pos < head.size()) {
    std::string_view line;
    if (!next_line(line)) {
      err = "unterminated header line";
      return false;
    }
    if (line.empty()) break;  // blank line: end of head
    if (req.headers.size() >= kMaxHeaders) {
      err = "too many headers";
      return false;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      err = "malformed header line";
      return false;
    }
    req.headers.emplace_back(lower(trim(line.substr(0, colon))),
                             std::string(trim(line.substr(colon + 1))));
  }
  out = std::move(req);
  return true;
}

std::string render_http_response(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " ";
  out += http_status_reason(r.status);
  out += "\r\nContent-Type: " + r.content_type;
  out += "\r\nContent-Length: " + std::to_string(r.body.size());
  out += "\r\nConnection: close";
  for (const auto& [k, v] : r.headers) {
    out += "\r\n" + k + ": " + v;
  }
  out += "\r\n\r\n";
  out += r.body;
  return out;
}

std::string render_http_stream_head(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " ";
  out += http_status_reason(r.status);
  out += "\r\nContent-Type: " + r.content_type;
  out += "\r\nTransfer-Encoding: chunked";
  out += "\r\nConnection: close";
  for (const auto& [k, v] : r.headers) {
    out += "\r\n" + k + ": " + v;
  }
  out += "\r\n\r\n";
  return out;
}

bool http_dechunk(std::string_view raw, std::string& out, std::string& err) {
  std::string body;
  std::size_t pos = 0;
  while (true) {
    const std::size_t nl = raw.find("\r\n", pos);
    if (nl == std::string_view::npos) {
      err = "chunked body: missing size line terminator";
      return false;
    }
    std::string_view size_line = raw.substr(pos, nl - pos);
    // Chunk extensions (";name=value") are legal; ignore them.
    const std::size_t semi = size_line.find(';');
    if (semi != std::string_view::npos) size_line = size_line.substr(0, semi);
    size_line = trim(size_line);
    if (size_line.empty()) {
      err = "chunked body: empty chunk size";
      return false;
    }
    std::size_t len = 0;
    for (const char c : size_line) {
      unsigned digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A') + 10;
      } else {
        err = "chunked body: bad chunk size";
        return false;
      }
      if (len > (kMaxBodyBytes >> 4)) {
        err = "chunked body: chunk too large";
        return false;
      }
      len = (len << 4) | digit;
    }
    pos = nl + 2;
    if (len == 0) {
      // Terminal chunk; any trailers up to the final blank line are
      // discarded. A truncated trailer section is tolerated — the peer
      // already sent every payload byte.
      out = std::move(body);
      return true;
    }
    if (pos + len + 2 > raw.size()) {
      err = "chunked body: truncated chunk data";
      return false;
    }
    body.append(raw.data() + pos, len);
    if (raw.substr(pos + len, 2) != "\r\n") {
      err = "chunked body: missing chunk data terminator";
      return false;
    }
    pos += len + 2;
  }
}

// ptb-lint: allow-begin(wallclock) -- the single wall-clock read site of
// the serve subsystem: host-side latency metrics only.
double now_ms() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(t).count();
}
// ptb-lint: allow-end

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(std::string listen_addr, std::uint16_t port,
                       unsigned workers, Handler handler)
    : listen_addr_(std::move(listen_addr)),
      requested_port_(port),
      num_workers_(workers == 0 ? 1 : workers),
      handler_(std::move(handler)) {
  PTB_ASSERT(handler_ != nullptr, "HttpServer requires a handler");
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string& err) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(requested_port_);
  if (::inet_pton(AF_INET, listen_addr_.c_str(), &addr.sin_addr) != 1) {
    err = "invalid listen address '" + listen_addr_ + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    err = "bind " + listen_addr_ + ":" + std::to_string(requested_port_) +
          ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 512) != 0) {
    err = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  stop_.store(false);
  accept_joined_.store(false);
  workers_joined_.store(false);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void HttpServer::stop_accepting() {
  stop_.store(true);
  if (accept_joined_.exchange(true)) {
    // thread::join on a joined thread would throw — only the transition
    // owner of each phase tears it down (same idiom below for workers).
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
}

void HttpServer::stop() {
  stop_accepting();
  if (workers_joined_.exchange(true)) return;
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::uint64_t HttpServer::requests_served() const { return served_.load(); }

void HttpServer::accept_loop() {
  while (!stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, kAcceptPollMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;  // timeout: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    set_io_timeouts(fd);
    bool enqueued = false;
    {
      MutexLock lock(mu_);
      if (pending_.size() < kMaxQueuedConnections) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Overloaded: shed the connection with a 503 rather than letting it
      // time out in limbo.
      HttpResponse busy;
      busy.status = 503;
      busy.body = "{\"error\":\"connection queue full\"}";
      send_all(fd, render_http_response(busy));
      ::close(fd);
    }
  }
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      // Explicit wait loop, not the predicate overload — a predicate
      // lambda is analyzed as its own function by -Wthread-safety and
      // would not be known to hold mu_ (same idiom as RunPool).
      while (pending_.empty() && !draining_) {
        queue_cv_.wait(lock);
      }
      if (pending_.empty()) return;  // draining and nothing left
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  const double t0 = now_ms();
  std::string buf;
  HttpResponse resp;
  HttpRequest req;
  bool have_request = false;

  const std::size_t body_off = read_head(fd, buf);
  if (body_off == std::string::npos) {
    resp.status = buf.size() > kMaxHeadBytes ? 413 : 400;
    resp.body = "{\"error\":\"malformed or oversized request head\"}";
  } else {
    std::string err;
    if (!parse_http_head(std::string_view(buf).substr(0, body_off), req,
                         err)) {
      resp.status = 400;
      resp.body = "{\"error\":\"" + err + "\"}";
    } else {
      std::size_t content_length = 0;
      const std::string* cl = req.header("content-length");
      if (cl != nullptr) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
        if (errno != 0 || end == cl->c_str() || *end != '\0' ||
            v > kMaxBodyBytes) {
          resp.status = v > kMaxBodyBytes && errno == 0 ? 413 : 400;
          resp.body = "{\"error\":\"bad content-length\"}";
          send_all(fd, render_http_response(resp));
          ::close(fd);
          served_.fetch_add(1);
          return;
        }
        content_length = static_cast<std::size_t>(v);
      }
      if (!read_exact_remaining(fd, buf, body_off + content_length)) {
        resp.status = 400;
        resp.body = "{\"error\":\"truncated request body\"}";
      } else {
        req.body = buf.substr(body_off, content_length);
        req.ingress_ms = t0;
        req.parsed_ms = now_ms();
        have_request = true;
      }
    }
  }

  if (have_request) {
    resp = handler_(req);
  }
  if (resp.stream) {
    // Streaming response: chunked framing, producer-driven. The sink
    // reports peer hangup so the producer can stop early; the terminal
    // zero-length chunk is best-effort (the peer may already be gone).
    if (send_all(fd, render_http_stream_head(resp))) {
      const HttpResponse::ChunkSink sink = [fd](std::string_view chunk) {
        if (chunk.empty()) return true;  // zero-size would terminate
        char size_line[32];
        std::snprintf(size_line, sizeof(size_line), "%zx\r\n", chunk.size());
        return send_all(fd, size_line) && send_all(fd, chunk) &&
               send_all(fd, "\r\n");
      };
      resp.stream(sink);
      send_all(fd, "0\r\n\r\n");
    }
    ::close(fd);
    served_.fetch_add(1);
    if (stream_hook_) stream_hook_();
    return;
  }
  send_all(fd, render_http_response(resp));
  ::close(fd);
  served_.fetch_add(1);
  if (latency_hook_) latency_hook_(now_ms() - t0);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

bool http_request(const std::string& host, std::uint16_t port,
                  const std::string& method, const std::string& target,
                  const std::string& body,
                  const std::vector<std::pair<std::string, std::string>>&
                      extra_headers,
                  HttpResponse& out, std::string& err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  set_io_timeouts(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    err = "invalid host address '" + host + "'";
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    err = "connect " + host + ":" + std::to_string(port) + ": " +
          std::strerror(errno);
    ::close(fd);
    return false;
  }

  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: " + host + "\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "Connection: close\r\n";
  for (const auto& [k, v] : extra_headers) {
    req += k + ": " + v + "\r\n";
  }
  req += "\r\n";
  req += body;
  if (!send_all(fd, req)) {
    err = "send failed";
    ::close(fd);
    return false;
  }

  // Connection: close — the response is everything until EOF.
  std::string raw;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      err = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    err = "malformed response (no head terminator)";
    return false;
  }
  const std::size_t status_line_end = raw.find("\r\n");
  const std::string status_line = raw.substr(0, status_line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos || sp + 4 > status_line.size()) {
    err = "malformed status line";
    return false;
  }
  HttpResponse resp;
  resp.status = std::atoi(status_line.c_str() + sp + 1);
  bool chunked = false;
  std::size_t pos = status_line_end + 2;
  while (pos < head_end) {
    const std::size_t nl = raw.find("\r\n", pos);
    const std::string line = raw.substr(pos, nl - pos);
    pos = nl + 2;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = lower(trim(std::string_view(line).substr(0,
                                                                      colon)));
    const std::string value(trim(std::string_view(line).substr(colon + 1)));
    if (name == "content-type") {
      resp.content_type = value;
    } else {
      if (name == "transfer-encoding" &&
          lower(value).find("chunked") != std::string::npos) {
        chunked = true;
      }
      resp.headers.emplace_back(name, value);
    }
  }
  if (chunked) {
    std::string decoded;
    if (!http_dechunk(std::string_view(raw).substr(head_end + 4), decoded,
                      err)) {
      return false;
    }
    resp.body = std::move(decoded);
  } else {
    resp.body = raw.substr(head_end + 4);
  }
  out = std::move(resp);
  return true;
}

}  // namespace ptb::serve

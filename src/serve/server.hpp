// Server: the ptb-serve daemon = HTTP transport (serve/http) + routing +
// Service (serve/service). Routes:
//
//   POST /v1/run            body {"benchmark":"fft","config":{...}}
//                           async: 202 {"job","keys"}; ?wait=1: 200 with
//                           the RunArtifact payload bytes as the body and
//                           X-Ptb-Cache: hit|miss (the body is the cached
//                           artifact verbatim — byte-identical on repeat).
//   POST /v1/sweep          body {"requests":[{...},...]}; async 202 as
//                           above; ?wait=1: 200 {"job","results":[...]}
//                           with each artifact embedded verbatim.
//   GET  /v1/jobs/{id}      job status/progress document, 404 unknown.
//   GET  /v1/jobs/{id}/events  live event stream (chunked, SSE framing):
//                           progress / unit / terminal events as they
//                           happen, ": heartbeat" comments between.
//   GET  /v1/results/{key}  artifact by run key (hex16) straight from the
//                           persistent cache; 404 on miss/corrupt.
//   GET  /v1/trace          span-log snapshot (binary; ?format=json for
//                           Perfetto). 404 when --trace-spans is 0.
//   GET  /metrics           Prometheus exposition of the daemon registry.
//   GET  /healthz           {"ok":true} once the listener is up.
//
// The tenant for admission purposes is the X-Ptb-Tenant header
// ("default" when absent). handle() is exposed so the unit tests can
// exercise routing without sockets.
//
// Observability wrapper: when tracing is on, handle() mints the trace id,
// emits the per-request "request" root span (+ "parse" when transport
// timestamps are present) and answers with X-Ptb-Trace; when --log-file
// is set it appends one JSON access-log line per request.
#pragma once

#include <cstdint>
#include <string>

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace ptb::serve {

class Server {
 public:
  Server(ServiceOptions service_opts, std::string listen_addr,
         std::uint16_t port, unsigned http_threads);

  /// Binds and starts serving. False (with err) when the bind fails.
  bool start(std::string& err);
  /// Graceful: stop the transport, then drain the service. Idempotent.
  void stop();

  std::uint16_t port() const { return http_.port(); }
  Service& service() { return service_; }

  /// Pure routing entry point (also the HttpServer handler), wrapped in
  /// the request-scoped observability (spans, access log).
  HttpResponse handle(const HttpRequest& req);

 private:
  /// The routes themselves; `trace` carries the request's minted trace
  /// linkage into submit() (zero-valued when tracing is off). (Not named
  /// `route`: the NoC's route() is parallel-shard code and ptb-lint's
  /// lexical call graph would merge the two names, dragging the service
  /// plane into the phase-purity reachability set.)
  HttpResponse dispatch(const HttpRequest& req,
                        const Service::TraceCtx& trace);

  Service service_;
  HttpServer http_;
};

}  // namespace ptb::serve

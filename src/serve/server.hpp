// Server: the ptb-serve daemon = HTTP transport (serve/http) + routing +
// Service (serve/service). Routes:
//
//   POST /v1/run            body {"benchmark":"fft","config":{...}}
//                           async: 202 {"job","keys"}; ?wait=1: 200 with
//                           the RunArtifact payload bytes as the body and
//                           X-Ptb-Cache: hit|miss (the body is the cached
//                           artifact verbatim — byte-identical on repeat).
//   POST /v1/sweep          body {"requests":[{...},...]}; async 202 as
//                           above; ?wait=1: 200 {"job","results":[...]}
//                           with each artifact embedded verbatim.
//   GET  /v1/jobs/{id}      job status/progress document, 404 unknown.
//   GET  /v1/results/{key}  artifact by run key (hex16) straight from the
//                           persistent cache; 404 on miss/corrupt.
//   GET  /metrics           Prometheus exposition of the daemon registry.
//   GET  /healthz           {"ok":true} once the listener is up.
//
// The tenant for admission purposes is the X-Ptb-Tenant header
// ("default" when absent). handle() is exposed so the unit tests can
// exercise routing without sockets.
#pragma once

#include <cstdint>
#include <string>

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace ptb::serve {

class Server {
 public:
  Server(ServiceOptions service_opts, std::string listen_addr,
         std::uint16_t port, unsigned http_threads);

  /// Binds and starts serving. False (with err) when the bind fails.
  bool start(std::string& err);
  /// Graceful: stop the transport, then drain the service. Idempotent.
  void stop();

  std::uint16_t port() const { return http_.port(); }
  Service& service() { return service_; }

  /// Pure routing entry point (also the HttpServer handler).
  HttpResponse handle(const HttpRequest& req);

 private:
  Service service_;
  HttpServer http_;
};

}  // namespace ptb::serve

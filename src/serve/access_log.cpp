#include "serve/access_log.hpp"

#include <cerrno>
#include <cstring>

namespace ptb::serve {

bool parse_log_level(std::string_view s, LogLevel& out) {
  if (s == "error") {
    out = LogLevel::kError;
  } else if (s == "info") {
    out = LogLevel::kInfo;
  } else if (s == "debug") {
    out = LogLevel::kDebug;
  } else {
    return false;
  }
  return true;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

AccessLog::~AccessLog() {
  if (file_ != nullptr && owns_file_) std::fclose(file_);
}

bool AccessLog::open(const std::string& path, LogLevel level,
                     std::string& err) {
  if (path == "-") {
    file_ = stderr;
    owns_file_ = false;
  } else {
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
      err = "cannot open log file '" + path + "': " + std::strerror(errno);
      return false;
    }
    owns_file_ = true;
  }
  level_ = level;
  return true;
}

void AccessLog::write_line(std::string_view json) {
  if (file_ == nullptr) return;
  MutexLock lock(mu_);
  std::fwrite(json.data(), 1, json.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace ptb::serve

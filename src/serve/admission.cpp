#include "serve/admission.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ptb::serve {

TokenAdmission::TokenAdmission(std::uint32_t host_tokens, PtbPolicy policy)
    : host_tokens_(host_tokens), policy_(policy) {
  PTB_ASSERT(host_tokens_ >= 1, "host token budget must be positive");
  PTB_ASSERT(policy_ == PtbPolicy::kToAll || policy_ == PtbPolicy::kToOne,
             "host admission supports to_all / to_one only");
}

std::map<std::string, std::uint32_t> TokenAdmission::plan(
    const std::map<std::string, std::uint32_t>& demand) const {
  std::map<std::string, std::uint32_t> grant;
  std::uint32_t active = 0;
  std::uint64_t total_demand = 0;
  for (const auto& [tenant, d] : demand) {
    grant[tenant] = 0;
    if (d > 0) {
      ++active;
      total_demand += d;
    }
  }
  if (active == 0) return grant;

  // Everybody fits: no balancing to do.
  if (total_demand <= host_tokens_) {
    for (const auto& [tenant, d] : demand) grant[tenant] = d;
    return grant;
  }

  // Fair-share pass: each active tenant gets min(demand, floor share).
  const std::uint32_t fair = std::max(1u, host_tokens_ / active);
  std::uint32_t used = 0;
  for (const auto& [tenant, d] : demand) {
    if (d == 0) continue;
    const std::uint32_t g =
        std::min({d, fair, host_tokens_ - used});  // never exceed the budget
    grant[tenant] = g;
    used += g;
    if (used == host_tokens_) break;
  }

  // Spare redistribution (same shape as core/balancer.cpp's ToAll/ToOne
  // over per-core deficits, with tenants in the cores' role).
  std::uint32_t spare = host_tokens_ - used;
  if (spare == 0) return grant;

  if (policy_ == PtbPolicy::kToOne) {
    // Spare cascades neediest-first: everything to the largest residual
    // demand (map order breaks ties deterministically), then — only if
    // that tenant saturates with spare left over — on to the next
    // neediest, until the spare is drained or nobody wants more. The
    // cascade keeps the to_one shape (lopsided, one winner per round)
    // while never stranding tokens that some tenant still queues for.
    // Terminates: each round drains the spare or saturates one tenant.
    while (spare > 0) {
      std::string neediest;
      std::uint32_t best_residual = 0;
      for (const auto& [tenant, d] : demand) {
        const std::uint32_t residual = d - grant[tenant];
        if (residual > best_residual) {
          best_residual = residual;
          neediest = tenant;
        }
      }
      if (best_residual == 0) break;
      const std::uint32_t give = std::min(spare, best_residual);
      grant[neediest] += give;
      spare -= give;
    }
    return grant;
  }

  // kToAll: equal re-split among still-needy tenants, bounded rounds (a
  // round either consumes all spare or shrinks the needy set).
  for (std::uint32_t round = 0; round < host_tokens_ && spare > 0; ++round) {
    std::uint32_t needy = 0;
    for (const auto& [tenant, d] : demand) {
      if (d > grant[tenant]) ++needy;
    }
    if (needy == 0) break;
    const std::uint32_t share = std::max(1u, spare / needy);
    for (const auto& [tenant, d] : demand) {
      if (spare == 0) break;
      const std::uint32_t residual = d - grant[tenant];
      if (residual == 0) continue;
      const std::uint32_t give = std::min({share, residual, spare});
      grant[tenant] += give;
      spare -= give;
    }
  }
  return grant;
}

}  // namespace ptb::serve

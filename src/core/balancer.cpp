#include "core/balancer.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"

namespace ptb {

namespace {
// Cap on the extra ToAll redistribution rounds (PtbConfig::
// toall_redistribute): each round re-splits the residual among the cores
// that still have deficit, so a handful of rounds either drains the pool or
// satisfies every deficit. Bounded to keep the wire-layer model honest — a
// real re-arbitration would cost another wire round-trip per pass.
constexpr std::uint32_t kToAllExtraPasses = 4;
}  // namespace

std::uint32_t PtbLoadBalancer::latency_for_cores(std::uint32_t num_cores) {
  // Paper (Section III.E.2, Xilinx ISE): 4-core: 1+1+1 = 3 cycles;
  // 8-core: 2+1+2 = 5; 16-core: 4+2+4 = 10. Beyond 16 the paper clusters
  // the balancer per 16 cores, so the latency stays at 10.
  if (num_cores <= 4) return 3;
  if (num_cores <= 8) return 5;
  if (num_cores <= 16) return 10;
  // Extrapolation beyond the paper's data points: wire spans keep growing
  // with the mesh diagonal (~+4 cycles per doubling).
  std::uint32_t lat = 10;
  for (std::uint32_t n = 16; n < num_cores; n *= 2) lat += 4;
  return lat;
}

PtbLoadBalancer::PtbLoadBalancer(const PtbConfig& cfg,
                                 std::uint32_t num_cores, double local_budget)
    : num_cores_(num_cores), local_budget_(local_budget),
      latency_(cfg.wire_latency_override != 0 ? cfg.wire_latency_override
                                              : latency_for_cores(num_cores)),
      max_count_((1u << cfg.token_wire_bits) - 1),
      quantum_(local_budget / static_cast<double>(max_count_)),
      toall_redistribute_(cfg.toall_redistribute), ring_(latency_ + 1),
      pool_arriving_(ring_, 0.0), returning_(ring_ * num_cores, 0.0),
      outstanding_(num_cores, 0.0), deficit_(num_cores, 0.0) {
  PTB_ASSERT(local_budget > 0.0, "local budget must be positive");
  PTB_ASSERT(cfg.token_wire_bits >= 1 && cfg.token_wire_bits <= 16,
             "token wire width out of range");
}

double PtbLoadBalancer::in_flight_tokens() const {
  double t = 0.0;
  for (const double p : pool_arriving_) t += p;
  return t;
}

double PtbLoadBalancer::outstanding_total() const {
  double t = 0.0;
  for (const double o : outstanding_) t += o;
  return t;
}

void PtbLoadBalancer::cycle(Cycle now, const double* est_power,
                            bool global_over, PtbPolicy policy,
                            double* eff_budget) {
  const std::size_t s = slot(now);

  // 1. Donations sent `latency_` cycles ago land: the pool becomes
  //    grantable and the donors' budgets recover.
  const double pool = pool_arriving_[s];
  pool_arriving_[s] = 0.0;
  double* returning_now = returning_.data() + s * num_cores_;
  for (CoreId i = 0; i < num_cores_; ++i) {
    double o = outstanding_[i] - returning_now[i];
    if (o < 0.0) o = 0.0;  // float guard
    outstanding_[i] = o;
    returning_now[i] = 0.0;
    eff_budget[i] = local_budget_ - o;
  }

  // 2. Distribute the arriving pool among over-budget cores. Grants are
  //    capped at each core's deficit (tokens beyond a core's need would
  //    just bounce back next cycle); undeliverable tokens evaporate —
  //    nothing is banked across cycles.
  if (pool > 0.0) {
    // Grants/evaporation reference the pool's donate cycle (the balancer
    // knows it exactly: the landing pool was sent `latency_` cycles ago), so
    // the trace analyzer can attribute each grant to that cycle's donors.
    const std::uint64_t donated_at = (pool_tag_ << 48) | (now - latency_);
    std::uint32_t needy = 0;
    CoreId neediest = kNoCore;
    double worst_deficit = 0.0;
    for (CoreId i = 0; i < num_cores_; ++i) {
      const double deficit = est_power[i] - eff_budget[i];
      deficit_[i] = deficit;
      if (deficit > 0.0) {
        ++needy;
        if (deficit > worst_deficit) {
          worst_deficit = deficit;
          neediest = i;
        }
      }
    }
    double remaining = pool;
    if (needy > 0) {
      ++grant_events;
      if (policy == PtbPolicy::kToOne) {
        const double grant = std::min(remaining, worst_deficit);
        eff_budget[neediest] += grant;
        tokens_granted += grant;
        remaining -= grant;
        if (tracer_ && grant > 0.0) {
          tracer_->emit(TraceEventType::kGrant, core_offset_ + neediest,
                        donated_at, grant);
        }
      } else {
        // ToAll: one equal share per over-budget core (the paper's "equally
        // distribute the extra tokens"), capped at each core's deficit.
        // Section III.D says only "equally distribute"; a single pass is
        // the literal reading and the default. With cfg.toall_redistribute
        // the residual a small-deficit core leaves behind is re-split among
        // the cores still short (bounded rounds) instead of evaporating.
        std::uint32_t still_needy = needy;
        for (std::uint32_t pass = 0; pass <= kToAllExtraPasses; ++pass) {
          const double share =
              remaining / static_cast<double>(still_needy);
          std::uint32_t next_needy = 0;
          for (CoreId i = 0; i < num_cores_; ++i) {
            const double deficit = deficit_[i];
            if (deficit <= 0.0) continue;
            const double grant = std::min(share, deficit);
            eff_budget[i] += grant;
            deficit_[i] = deficit - grant;
            tokens_granted += grant;
            remaining -= grant;
            if (deficit_[i] > 0.0) ++next_needy;
            if (tracer_ && grant > 0.0) {
              tracer_->emit(TraceEventType::kGrant, core_offset_ + i,
                            donated_at, grant);
            }
          }
          still_needy = next_needy;
          if (!toall_redistribute_ || still_needy == 0 || remaining <= 0.0)
            break;
        }
      }
    }
    tokens_evaporated += remaining;
    if (tracer_ && remaining > 0.0) {
      tracer_->emit(TraceEventType::kEvaporate, kNoCore, donated_at,
                    remaining);
    }
  }

  // 3. Cores with spare tokens donate (only while the CMP is globally over
  //    budget), quantized to the wire width and capped by it.
  if (global_over) {
    const std::size_t arrive = slot(now + latency_);
    double* returning_arrive = returning_.data() + arrive * num_cores_;
    for (CoreId i = 0; i < num_cores_; ++i) {
      const double spare = eff_budget[i] - est_power[i];
      if (spare <= 0.0) continue;
      const auto counts = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(spare / quantum_), max_count_);
      if (counts == 0) continue;
      const double amount = static_cast<double>(counts) * quantum_;
      outstanding_[i] += amount;
      returning_arrive[i] += amount;
      pool_arriving_[arrive] += amount;
      tokens_donated += amount;
      ++donation_events;
      if (tracer_) {
        tracer_->emit(TraceEventType::kDonate, core_offset_ + i, pool_tag_,
                      amount);
      }
      // The donor honours the tightened budget immediately.
      eff_budget[i] -= amount;
    }
  }
}

void PtbLoadBalancer::register_stats(StatsRegistry& reg,
                                     const std::string& prefix) const {
  reg.counter(prefix + ".tokens_donated",
              "tokens offered by under-budget cores", &tokens_donated);
  reg.counter(prefix + ".tokens_granted",
              "tokens re-granted to over-budget cores", &tokens_granted);
  reg.counter(prefix + ".tokens_evaporated",
              "tokens that arrived with no needy core", &tokens_evaporated);
  reg.counter(prefix + ".donation_events", "per-core donation messages",
              &donation_events);
  reg.counter(prefix + ".grant_events", "per-core grant messages",
              &grant_events);
  reg.gauge_fn(prefix + ".in_flight_tokens",
               "tokens currently travelling on the wires",
               [this] { return in_flight_tokens(); });
  reg.gauge_fn(prefix + ".wire_latency",
               "token round-trip wire latency (cycles)",
               [this] { return static_cast<double>(latency_); }, 0);
  reg.gauge_fn(prefix + ".token_quantum", "tokens per wire count",
               [this] { return quantum_; }, 6);
}

}  // namespace ptb

// The 2-level hybrid power controller (Cebrián et al., IPDPS 2009 — the
// paper's reference [2], re-used here as the per-core local mechanism).
//
// Level 1: coarse-grained DVFS steers the window-average power toward the
// local budget. Level 2: fine-grained microarchitectural techniques remove
// the remaining per-cycle spikes; the technique is chosen by how far the
// core is over budget (progressively: halve fetch width, serialize fetch,
// gate fetch entirely).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "dvfs/dvfs.hpp"

namespace ptb {

class Core;
class StatsRegistry;

class TwoLevelController {
 public:
  /// Flags select the paper's technique variants: DVFS-only, DFS-only, or
  /// the full 2-level (DVFS + microarchitectural spike removal).
  TwoLevelController(const SimConfig& cfg, bool use_dvfs, bool use_microarch,
                     bool freq_only);

  /// One control cycle. `budget` is the core's (possibly PTB-augmented)
  /// local budget; `enforce` is the global over-budget condition;
  /// `relax_threshold` delays level-2 triggering (Section IV.C).
  void tick(Cycle now, double est_power, double budget, bool enforce,
            double relax_threshold, Core& core);

  double vdd_ratio() const { return use_dvfs_ ? dvfs_.vdd_ratio() : 1.0; }
  double freq_ratio() const { return use_dvfs_ ? dvfs_.freq_ratio() : 1.0; }
  /// Core must stall while the regulator ramps.
  bool stalled(Cycle now) const {
    return use_dvfs_ && dvfs_.in_transition(now);
  }
  const DvfsController& dvfs() const { return dvfs_; }
  std::uint32_t microarch_level() const { return level_; }

  /// Attach/detach the event tracer (src/trace): forwards to the DVFS
  /// controller and emits a kThrottleLevel event on every level-2
  /// (microarchitectural) throttle change for `core`.
  void set_tracer(EventTracer* t, std::uint32_t core) {
    tracer_ = t;
    core_ = core;
    dvfs_.set_tracer(t, core);
  }

  // Statistics.
  std::uint64_t level_cycles[4] = {0, 0, 0, 0};

  /// Registers level residency, the current throttle level and the DVFS
  /// controller's stats under `prefix` (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support: DVFS controller + throttle level + residency.
  void save_state(ByteWriter& w) const {
    dvfs_.save_state(w);
    w.u32(level_);
    for (const std::uint64_t c : level_cycles) w.u64(c);
  }
  void load_state(ByteReader& r) {
    dvfs_.load_state(r);
    const std::uint32_t l = r.u32();
    if (l > 3) {
      r.fail();
      return;
    }
    level_ = l;
    for (std::uint64_t& c : level_cycles) c = r.u64();
  }

 private:
  const SimConfig& cfg_;
  DvfsController dvfs_;
  bool use_dvfs_;
  bool use_microarch_;
  std::uint32_t level_ = 0;  // 0 = off, 1..3 = progressively stronger
  EventTracer* tracer_ = nullptr;  // owned by the running simulator
  std::uint32_t core_ = 0;
};

}  // namespace ptb

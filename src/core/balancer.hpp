// The PTB load-balancer (Sections III.E and IV of the paper) — the paper's
// primary contribution.
//
// Every cycle, cores under their local power budget offer their spare
// tokens; the centralized balancer re-grants them to cores over budget.
// Tokens are a currency (counts travel on a dedicated wire layer, not the
// tokens themselves): 4 wires each way bound a message to 0..15 quanta.
// Nothing is banked across cycles. A donating core tightens its own budget
// by the donated amount until the grant lands (wire latency: 3 cycles at
// 2-4 cores, 5 at 8, 10 at 16 — Xilinx ISE estimates from the paper).
//
// Policies: ToAll (split among all over-budget cores) and ToOne (all to the
// neediest core); the dynamic selector in core/policy.hpp switches between
// them based on the kind of spinning observed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ptb {

class EventTracer;
class StatsRegistry;

/// The canonical reduction order for per-core power/budget totals: a serial
/// left-to-right sum over core order. FP addition is not associative, so
/// every consumer of a CMP-wide total (the global over-budget signal, the
/// balancer's aggregation, energy accounting) must use this one order — in
/// particular the sharded cycle loop (sim/shard_pool.hpp) computes shard
/// results in parallel but always reduces them through this helper on the
/// main thread, which is what keeps results bit-identical across
/// --sim-threads values.
inline double deterministic_total(const double* v, std::uint32_t n) {
  double sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}

class PtbLoadBalancer {
 public:
  PtbLoadBalancer(const PtbConfig& cfg, std::uint32_t num_cores,
                  double local_budget);

  /// One balancing round. `est_power[i]` is core i's PTHT-estimated
  /// instantaneous power; `global_over` gates donation (cores only donate
  /// while the CMP exceeds the global budget); `policy` distributes the
  /// arriving pool. On return `eff_budget[i]` is core i's budget this cycle
  /// (local share - outstanding donations + arriving grants). Both arrays
  /// must have num_cores() entries; this is the allocation-free hot path
  /// the CMP cycle loop drives (sim/cmp.cpp, CycleFrame).
  void cycle(Cycle now, const double* est_power, bool global_over,
             PtbPolicy policy, double* eff_budget);

  /// Vector convenience overload (tests, examples, microbenches): sizes
  /// `eff_budget` for the caller, then runs the pointer hot path.
  void cycle(Cycle now, const std::vector<double>& est_power,
             bool global_over, PtbPolicy policy,
             std::vector<double>& eff_budget) {
    PTB_ASSERTF(est_power.size() == num_cores_,
                "power vector has %zu entries for %u cores",
                est_power.size(), num_cores_);
    eff_budget.resize(num_cores_);
    cycle(now, est_power.data(), global_over, policy, eff_budget.data());
  }

  std::uint32_t wire_latency() const { return latency_; }
  /// Tokens represented by one wire count (budget / (2^bits - 1)).
  double token_quantum() const { return quantum_; }

  /// Re-derives the per-core budget (and with it the wire quantum) from a
  /// new local budget — the hook for mid-run global-budget changes (budget
  /// schedules / ablations). Outstanding donations stay debited against
  /// the donors, so eff_budget tracks the new budget from the next cycle
  /// on and in-flight tokens still land and recover as usual.
  void set_local_budget(double local_budget) {
    PTB_ASSERT(local_budget > 0.0, "local budget must be positive");
    local_budget_ = local_budget;
    quantum_ = local_budget / static_cast<double>(max_count_);
  }

  // Introspection for the invariant auditor (src/audit) and tests.
  std::uint32_t num_cores() const { return num_cores_; }
  double local_budget() const { return local_budget_; }
  /// Largest per-core wire message per cycle, in quanta (2^bits - 1).
  std::uint32_t max_wire_count() const { return max_count_; }
  /// Tokens currently travelling on the wires (donated, not yet landed).
  double in_flight_tokens() const;
  /// Sum of the donors' outstanding budget debits; equals
  /// in_flight_tokens() whenever the balancer is consistent.
  double outstanding_total() const;

  /// Paper-configured round-trip latency for a core count.
  static std::uint32_t latency_for_cores(std::uint32_t num_cores);

  /// Attach/detach the event tracer (src/trace): Donate/Grant/Evaporate
  /// events are emitted against it when non-null. `core_offset` maps this
  /// balancer's local core indices to CMP core ids and `pool_tag` tags the
  /// token events' pool (both non-zero only under ClusteredBalancer).
  void set_tracer(EventTracer* t, std::uint32_t core_offset = 0,
                  std::uint64_t pool_tag = 0) {
    tracer_ = t;
    core_offset_ = core_offset;
    pool_tag_ = pool_tag;
  }

  // --- statistics ---
  double tokens_donated = 0.0;
  double tokens_granted = 0.0;
  double tokens_evaporated = 0.0;  // arrived with no needy core
  std::uint64_t donation_events = 0;
  std::uint64_t grant_events = 0;

  /// Registers the token counters, event counters and wire parameters under
  /// `prefix` (src/stats).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  // Checkpoint support: in-flight wire state (slot-indexed rings —
  // positions are pure functions of the cycle number, which the checkpoint
  // also carries) + donor debits + token statistics.
  void save_state(ByteWriter& w) const {
    w.f64_vec(pool_arriving_);
    w.f64_vec(returning_);
    w.f64_vec(outstanding_);
    w.f64(tokens_donated);
    w.f64(tokens_granted);
    w.f64(tokens_evaporated);
    w.u64(donation_events);
    w.u64(grant_events);
  }
  void load_state(ByteReader& r) {
    std::vector<double> pa, rt, os;
    r.f64_vec(pa);
    r.f64_vec(rt);
    r.f64_vec(os);
    if (pa.size() != pool_arriving_.size() ||
        rt.size() != returning_.size() || os.size() != outstanding_.size()) {
      r.fail();
      return;
    }
    pool_arriving_ = std::move(pa);
    returning_ = std::move(rt);
    outstanding_ = std::move(os);
    tokens_donated = r.f64();
    tokens_granted = r.f64();
    tokens_evaporated = r.f64();
    donation_events = r.u64();
    grant_events = r.u64();
  }

 private:
  std::size_t slot(Cycle t) const { return t % ring_; }

  std::uint32_t num_cores_;
  double local_budget_;
  std::uint32_t latency_;
  std::uint32_t max_count_;  // 2^wire_bits - 1
  double quantum_;
  bool toall_redistribute_;
  std::size_t ring_;

  std::vector<double> pool_arriving_;  // [ring]
  std::vector<double> returning_;      // [ring * cores], slot-major
  std::vector<double> outstanding_;    // per core
  std::vector<double> deficit_;        // per-cycle scratch (grant passes)

  EventTracer* tracer_ = nullptr;  // owned by the running simulator
  std::uint32_t core_offset_ = 0;
  std::uint64_t pool_tag_ = 0;
};

}  // namespace ptb

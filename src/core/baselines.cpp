#include "core/baselines.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "dvfs/dvfs.hpp"

namespace ptb {

ThriftyBarrierController::ThriftyBarrierController(std::uint32_t num_cores,
                                                   Cycle wake_penalty)
    : wake_penalty_(wake_penalty), cores_(num_cores) {}

bool ThriftyBarrierController::tick(CoreId i, Cycle now, ExecState state,
                                    std::uint64_t episode, bool quiescent) {
  PerCore& c = cores_[i];

  if (state == ExecState::kBarrier) {
    if (!c.in_barrier) {
      c.in_barrier = true;
      c.entered_at = now;
      c.entry_episode = episode;
    }
    // Sleep only once the arrival has drained from the pipeline (the core
    // is quiescing in its spin loop) and the barrier has not yet released,
    // when the predicted wait amortizes the wake cost (HPCA'04).
    if (!c.asleep && quiescent && episode == c.entry_episode &&
        c.predicted_wait > 2.0 * static_cast<double>(wake_penalty_)) {
      c.asleep = true;
      c.wake_at = kNeverCycle;  // until the release signal
      ++sleeps;
    }
    if (c.asleep) {
      if (episode != c.entry_episode && c.wake_at == kNeverCycle) {
        // The barrier released: start the wake-up ramp.
        c.wake_at = now + wake_penalty_;
      }
      if (c.wake_at != kNeverCycle && now >= c.wake_at) {
        c.asleep = false;
      } else {
        ++sleep_cycles;
        return true;
      }
    }
    return false;
  }

  if (c.in_barrier) {
    // Left the barrier: record the actual wait for the predictor.
    c.in_barrier = false;
    c.asleep = false;
    c.wake_at = kNeverCycle;
    const double wait = static_cast<double>(now - c.entered_at);
    c.predicted_wait = 0.5 * c.predicted_wait + 0.5 * wait;
  }
  return false;
}

MeetingPointsController::MeetingPointsController(std::uint32_t num_cores)
    : cores_(num_cores), mode_(num_cores, 0), slack_ema_(num_cores, 0.0) {}

void MeetingPointsController::close_episode(Cycle now) {
  // Everyone has passed the meeting point: convert each thread's waiting
  // time into a slack fraction of the phase and pick the DVFS mode for the
  // next phase (PACT'08 thread delaying: slow the early arrivers, never
  // the critical thread).
  ++episodes;
  const double phase =
      std::max<double>(1.0, static_cast<double>(now - phase_start_));
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const double frac = cores_[i].wait_sample / phase;
    slack_ema_[i] = 0.5 * slack_ema_[i] + 0.5 * frac;
    if (slack_ema_[i] > 0.45) {
      mode_[i] = 4;
    } else if (slack_ema_[i] > 0.30) {
      mode_[i] = 3;
    } else if (slack_ema_[i] > 0.12) {
      mode_[i] = 2;
    } else {
      mode_[i] = 0;  // the critical thread runs at full speed
    }
    cores_[i].wait_sample = 0.0;
  }
  phase_start_ = now;
}

void MeetingPointsController::tick(CoreId i, Cycle now, ExecState state) {
  PerCore& c = cores_[i];
  const bool waiting_now = (state == ExecState::kBarrier);
  if (waiting_now && !c.waiting) {
    c.waiting = true;
    c.arrived_at = now;
    ++waiting_count_;
    saw_waiter_ = true;
  } else if (!waiting_now && c.waiting) {
    c.waiting = false;
    c.wait_sample = static_cast<double>(now - c.arrived_at);
    PTB_ASSERT(waiting_count_ > 0, "waiting count underflow");
    if (--waiting_count_ == 0 && saw_waiter_) {
      // The barrier episode fully drained: finalize the phase.
      close_episode(now);
      saw_waiter_ = false;
    }
  }
}

}  // namespace ptb

#include "core/two_level.hpp"

#include "cpu/core.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"

namespace ptb {

TwoLevelController::TwoLevelController(const SimConfig& cfg, bool use_dvfs,
                                       bool use_microarch, bool freq_only)
    : cfg_(cfg), dvfs_(cfg.dvfs, cfg.power, freq_only), use_dvfs_(use_dvfs),
      use_microarch_(use_microarch) {}

void TwoLevelController::tick(Cycle now, double est_power, double budget,
                              bool enforce, double relax_threshold,
                              Core& core) {
  if (use_dvfs_) dvfs_.tick(now, est_power, budget, enforce);

  if (!use_microarch_) {
    ++level_cycles[0];
    return;
  }
  // Level 2: per-cycle spike removal. The trigger point moves out with the
  // relaxed-accuracy threshold of Section IV.C.
  const std::uint32_t prev_level = level_;
  const double trigger = budget * (1.0 + relax_threshold);
  if (!enforce || est_power <= trigger) {
    level_ = 0;
  } else {
    const double ratio = est_power / trigger;
    if (ratio > 1.30) {
      level_ = 3;  // fetch gating
    } else if (ratio > 1.15) {
      level_ = 2;  // serialized fetch
    } else {
      level_ = 1;  // halved fetch width
    }
  }
  ++level_cycles[level_];
  if (tracer_ && level_ != prev_level) {
    tracer_->emit(TraceEventType::kThrottleLevel, core_, level_, est_power);
  }
  switch (level_) {
    case 0: core.set_fetch_limit(cfg_.core.fetch_width); break;
    case 1: core.set_fetch_limit(cfg_.core.fetch_width / 2); break;
    case 2: core.set_fetch_limit(1); break;
    default: core.set_fetch_limit(0); break;
  }
}

void TwoLevelController::register_stats(StatsRegistry& reg,
                                        const std::string& prefix) const {
  for (std::size_t l = 0; l < 4; ++l) {
    reg.counter(prefix + ".level_cycles." + std::to_string(l),
                "cycles spent at microarch throttle level " +
                    std::to_string(l),
                &level_cycles[l]);
  }
  reg.gauge_fn(prefix + ".level", "current microarch throttle level",
               [this] { return static_cast<double>(level_); }, 0);
  dvfs_.register_stats(reg, prefix + ".dvfs");
}

}  // namespace ptb

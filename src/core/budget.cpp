// BudgetManager is header-only; this TU anchors the library target.
#include "core/budget.hpp"

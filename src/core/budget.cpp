#include "core/budget.hpp"

#include "stats/stats.hpp"

namespace ptb {

void BudgetManager::register_stats(StatsRegistry& reg,
                                   const std::string& prefix) const {
  reg.gauge(prefix + ".global", "global power budget (tokens/cycle)",
            &global_);
  reg.gauge_fn(prefix + ".local", "naive equal per-core share",
               [this] { return local_budget(); });
  reg.gauge(prefix + ".peak_core", "analytic per-core peak power",
            &peak_core_);
  reg.gauge_fn(prefix + ".peak", "analytic CMP peak power",
               [this] { return peak_power(); });
}

}  // namespace ptb

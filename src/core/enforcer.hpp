// Per-core power enforcer: binds a TechniqueKind to its controllers.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "core/two_level.hpp"

namespace ptb {

class Core;
class StatsRegistry;

class PowerEnforcer {
 public:
  PowerEnforcer(const SimConfig& cfg, TechniqueKind kind);

  /// One cycle of local enforcement against `budget`.
  void tick(Cycle now, double est_power, double budget, bool enforce,
            double relax_threshold, Core& core);

  double vdd_ratio() const;
  double freq_ratio() const;
  /// True while a DVFS transition stalls the core.
  bool stalled(Cycle now) const;
  /// True when this technique actually enforces a local budget: kNone and
  /// the CMP-level baselines (thrifty barrier / meeting points) never react
  /// to tick(), so the cycle loop may skip them wholesale.
  bool active() const;

  TechniqueKind kind() const { return kind_; }
  const TwoLevelController& controller() const { return ctrl_; }

  /// Registers the bound controller's stats under `prefix` (src/stats);
  /// no-op for techniques that never enforce (see active()).
  void register_stats(StatsRegistry& reg, const std::string& prefix)
      const PTB_REQUIRES(g_sequential_point);

  /// Attach/detach the event tracer (src/trace); forwards to the 2-level
  /// controller (DVFS transitions + microarch throttle-level changes).
  void set_tracer(EventTracer* t, std::uint32_t core) {
    ctrl_.set_tracer(t, core);
  }

  // Checkpoint support: the bound controller is the only mutable state.
  void save_state(ByteWriter& w) const { ctrl_.save_state(w); }
  void load_state(ByteReader& r) { ctrl_.load_state(r); }

 private:
  TechniqueKind kind_;
  TwoLevelController ctrl_;
};

}  // namespace ptb

// Indirect spin detection from power patterns (Figure 6 of the paper).
//
// A core entering a spin state shows a characteristic per-cycle power
// signature: after the last burst of useful computation, power drops and
// stabilizes well under the budget. Observing estimated power only (no
// instrumentation, no performance counters), the detector declares spinning
// after the power stays below a threshold for a confirmation window.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace ptb {

class SpinPowerDetector {
 public:
  /// `threshold` is the absolute power level (tokens/cycle) under which a
  /// core is presumed spinning; `confirm_cycles` debounces bursts.
  SpinPowerDetector(double threshold, std::uint32_t confirm_cycles)
      : threshold_(threshold), confirm_(confirm_cycles) {}

  /// Feed one cycle of the core's estimated power. Returns the verdict.
  bool tick(double est_power) {
    const bool was = spinning_;
    if (est_power < threshold_) {
      if (below_ < confirm_) ++below_;
      spinning_ = (below_ >= confirm_);
    } else {
      below_ = 0;
      spinning_ = false;
    }
    if (spinning_ && !was) ++detections_;
    if (!spinning_ && was) ++exits_;
    return spinning_;
  }

  bool spinning() const { return spinning_; }
  std::uint64_t detections() const { return detections_; }
  std::uint64_t exits() const { return exits_; }

  // Checkpoint support (threshold/confirm are configuration).
  void save_state(ByteWriter& w) const {
    w.u32(below_);
    w.boolean(spinning_);
    w.u64(detections_);
    w.u64(exits_);
  }
  void load_state(ByteReader& r) {
    below_ = r.u32();
    spinning_ = r.boolean();
    detections_ = r.u64();
    exits_ = r.u64();
  }

 private:
  double threshold_;
  std::uint32_t confirm_;
  std::uint32_t below_ = 0;
  bool spinning_ = false;
  std::uint64_t detections_ = 0;
  std::uint64_t exits_ = 0;
};

}  // namespace ptb

#include "core/enforcer.hpp"

#include "cpu/core.hpp"

namespace ptb {

namespace {
// The baseline techniques (thrifty barrier / meeting points) are driven by
// CMP-level controllers, not by this per-core budget enforcer.
bool is_budget_enforcer(TechniqueKind k) {
  return k == TechniqueKind::kDvfs || k == TechniqueKind::kDfs ||
         k == TechniqueKind::kTwoLevel;
}
bool uses_dvfs(TechniqueKind k) { return is_budget_enforcer(k); }
bool uses_microarch(TechniqueKind k) {
  return k == TechniqueKind::kTwoLevel;
}
bool freq_only(TechniqueKind k) { return k == TechniqueKind::kDfs; }
}  // namespace

PowerEnforcer::PowerEnforcer(const SimConfig& cfg, TechniqueKind kind)
    : kind_(kind),
      ctrl_(cfg, uses_dvfs(kind), uses_microarch(kind), freq_only(kind)) {}

void PowerEnforcer::tick(Cycle now, double est_power, double budget,
                         bool enforce, double relax_threshold, Core& core) {
  if (!is_budget_enforcer(kind_)) return;
  ctrl_.tick(now, est_power, budget, enforce, relax_threshold, core);
}

double PowerEnforcer::vdd_ratio() const {
  return is_budget_enforcer(kind_) ? ctrl_.vdd_ratio() : 1.0;
}

double PowerEnforcer::freq_ratio() const {
  return is_budget_enforcer(kind_) ? ctrl_.freq_ratio() : 1.0;
}

bool PowerEnforcer::stalled(Cycle now) const {
  return is_budget_enforcer(kind_) && ctrl_.stalled(now);
}

bool PowerEnforcer::active() const { return is_budget_enforcer(kind_); }

void PowerEnforcer::register_stats(StatsRegistry& reg,
                                   const std::string& prefix) const {
  if (!active()) return;
  ctrl_.register_stats(reg, prefix);
}

}  // namespace ptb

#include "core/clustered.hpp"

#include "common/assert.hpp"
#include "stats/stats.hpp"

namespace ptb {

ClusteredBalancer::ClusteredBalancer(const PtbConfig& cfg,
                                     std::uint32_t num_cores,
                                     std::uint32_t cluster_size,
                                     double local_budget)
    : num_cores_(num_cores), cluster_size_(cluster_size) {
  PTB_ASSERT(cluster_size >= 1, "cluster size must be positive");
  for (std::uint32_t base = 0; base < num_cores; base += cluster_size) {
    const std::uint32_t n = std::min(cluster_size, num_cores - base);
    PtbConfig sub = cfg;
    if (sub.wire_latency_override == 0) {
      // Each cluster's wires span only its own members.
      sub.wire_latency_override = PtbLoadBalancer::latency_for_cores(n);
    }
    clusters_.push_back(
        std::make_unique<PtbLoadBalancer>(sub, n, local_budget));
  }
}

void ClusteredBalancer::cycle(Cycle now, const double* est_power,
                              double cluster_budget_total, PtbPolicy policy,
                              double* eff_budget) {
  // Each cluster balances over its own contiguous slice of the per-core
  // arrays — no staging copies; the slices are disjoint by construction.
  std::uint32_t base = 0;
  for (auto& cluster : clusters_) {
    const std::uint32_t n = std::min(cluster_size_, num_cores_ - base);
    double cluster_total = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) cluster_total += est_power[base + i];
    const double cluster_budget =
        cluster_budget_total * static_cast<double>(n) /
        static_cast<double>(num_cores_);
    const bool over = cluster_total > cluster_budget;
    cluster->cycle(now, est_power + base, over, policy, eff_budget + base);
    base += n;
  }
}

void ClusteredBalancer::set_local_budget(double local_budget) {
  for (auto& c : clusters_) c->set_local_budget(local_budget);
}

double ClusteredBalancer::tokens_donated() const {
  double t = 0.0;
  for (const auto& c : clusters_) t += c->tokens_donated;
  return t;
}

void ClusteredBalancer::set_tracer(EventTracer* t) {
  for (std::uint32_t k = 0; k < num_clusters(); ++k)
    clusters_[k]->set_tracer(t, cluster_begin(k), k);
}

double ClusteredBalancer::tokens_granted() const {
  double t = 0.0;
  for (const auto& c : clusters_) t += c->tokens_granted;
  return t;
}

void ClusteredBalancer::register_stats(StatsRegistry& reg,
                                       const std::string& prefix) const {
  reg.counter_fn(prefix + ".num_clusters", "cluster balancer instances",
                 [this] { return static_cast<double>(num_clusters()); });
  reg.formula(prefix + ".tokens_donated",
              "tokens donated across all clusters",
              [this] { return tokens_donated(); }, 1);
  reg.formula(prefix + ".tokens_granted",
              "tokens granted across all clusters",
              [this] { return tokens_granted(); }, 1);
  for (std::uint32_t k = 0; k < num_clusters(); ++k) {
    clusters_[k]->register_stats(reg,
                                 prefix + ".cluster." + std::to_string(k));
  }
}

}  // namespace ptb

#include "core/clustered.hpp"

#include "common/assert.hpp"

namespace ptb {

ClusteredBalancer::ClusteredBalancer(const PtbConfig& cfg,
                                     std::uint32_t num_cores,
                                     std::uint32_t cluster_size,
                                     double local_budget)
    : num_cores_(num_cores), cluster_size_(cluster_size) {
  PTB_ASSERT(cluster_size >= 1, "cluster size must be positive");
  for (std::uint32_t base = 0; base < num_cores; base += cluster_size) {
    const std::uint32_t n = std::min(cluster_size, num_cores - base);
    PtbConfig sub = cfg;
    if (sub.wire_latency_override == 0) {
      // Each cluster's wires span only its own members.
      sub.wire_latency_override = PtbLoadBalancer::latency_for_cores(n);
    }
    clusters_.push_back(
        std::make_unique<PtbLoadBalancer>(sub, n, local_budget));
  }
  cluster_power_.reserve(cluster_size);
  cluster_eff_.reserve(cluster_size);
}

void ClusteredBalancer::cycle(Cycle now, const std::vector<double>& est_power,
                              double cluster_budget_total, PtbPolicy policy,
                              std::vector<double>& eff_budget) {
  PTB_ASSERT(est_power.size() == num_cores_, "power vector arity mismatch");
  eff_budget.resize(num_cores_);
  std::uint32_t base = 0;
  for (auto& cluster : clusters_) {
    const std::uint32_t n =
        std::min(cluster_size_, num_cores_ - base);
    cluster_power_.assign(est_power.begin() + base,
                          est_power.begin() + base + n);
    double cluster_total = 0.0;
    for (double p : cluster_power_) cluster_total += p;
    const double cluster_budget =
        cluster_budget_total * static_cast<double>(n) /
        static_cast<double>(num_cores_);
    const bool over = cluster_total > cluster_budget;
    cluster->cycle(now, cluster_power_, over, policy, cluster_eff_);
    for (std::uint32_t i = 0; i < n; ++i)
      eff_budget[base + i] = cluster_eff_[i];
    base += n;
  }
}

double ClusteredBalancer::tokens_donated() const {
  double t = 0.0;
  for (const auto& c : clusters_) t += c->tokens_donated;
  return t;
}

void ClusteredBalancer::set_tracer(EventTracer* t) {
  for (std::uint32_t k = 0; k < num_clusters(); ++k)
    clusters_[k]->set_tracer(t, cluster_begin(k), k);
}

double ClusteredBalancer::tokens_granted() const {
  double t = 0.0;
  for (const auto& c : clusters_) t += c->tokens_granted;
  return t;
}

}  // namespace ptb

#include "core/policy.hpp"

#include "trace/trace.hpp"

namespace ptb {

DynamicPolicySelector::DynamicPolicySelector(const PtbConfig& cfg,
                                             std::uint32_t num_cores,
                                             double spin_threshold)
    : was_spinning_(num_cores, false) {
  (void)cfg;
  detectors_.reserve(num_cores);
  for (std::uint32_t i = 0; i < num_cores; ++i)
    detectors_.emplace_back(spin_threshold, 32);
}

void DynamicPolicySelector::account(PtbPolicy p, std::uint32_t spinners) {
  if (tracer_ && (!policy_emitted_ || p != last_)) {
    const std::uint64_t old =
        policy_emitted_ ? static_cast<std::uint64_t>(last_) : 0xff;
    tracer_->emit(TraceEventType::kPolicySwitch, kNoCore,
                  static_cast<std::uint64_t>(p) | (old << 8),
                  static_cast<double>(spinners));
    policy_emitted_ = true;
  }
  last_ = p;
  if (p == PtbPolicy::kToOne) {
    ++to_one_cycles;
  } else {
    ++to_all_cycles;
  }
}

PtbPolicy DynamicPolicySelector::select(
    const std::vector<ExecState>& states) {
  std::uint32_t lock_spinners = 0;
  std::uint32_t barrier_spinners = 0;
  for (ExecState s : states) {
    if (s == ExecState::kLockAcq) ++lock_spinners;
    if (s == ExecState::kBarrier) ++barrier_spinners;
  }
  // Lock spinning present and dominant => prioritize the critical section
  // holder (ToOne); otherwise spread toward the barrier (ToAll).
  const PtbPolicy p = (lock_spinners > barrier_spinners)
                          ? PtbPolicy::kToOne
                          : PtbPolicy::kToAll;
  account(p, lock_spinners + barrier_spinners);
  return p;
}

PtbPolicy DynamicPolicySelector::select_heuristic(
    Cycle now, const std::vector<double>& est_power) {
  // Count spin exits this cycle from the power-pattern detectors.
  std::uint32_t exits_now = 0;
  std::uint32_t spinning_now = 0;
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    const bool sp = detectors_[i].tick(est_power[i]);
    if (was_spinning_[i] && !sp) ++exits_now;
    if (sp) ++spinning_now;
    was_spinning_[i] = sp;
  }
  // A wave of simultaneous (within a short window) exits looks like a
  // barrier release; isolated exits look like lock handoffs.
  constexpr Cycle kWave = 64;
  if (exits_now > 0) {
    if (now - last_exit_cycle_ <= kWave) {
      recent_exits_ += exits_now;
    } else {
      recent_exits_ = exits_now;
    }
    last_exit_cycle_ = now;
    heuristic_current_ =
        (recent_exits_ >= 2) ? PtbPolicy::kToAll : PtbPolicy::kToOne;
  } else if (spinning_now == 0) {
    heuristic_current_ = PtbPolicy::kToAll;  // nothing spinning: default
  }
  account(heuristic_current_, spinning_now);
  return heuristic_current_;
}

}  // namespace ptb

// Dynamic power-sharing policy selector (Section IV.B of the paper).
//
// ToAll suits barriers (speed *all* remaining cores toward the barrier);
// ToOne suits locks (give everything to the core in the critical section).
// The selector switches per cycle based on what kind of spinning dominates.
//
// The paper's reported results use application-assisted classification
// (ground truth); it notes a pure heuristic is possible, e.g. monitoring
// how many cores stop spinning simultaneously via their power tokens. Both
// are implemented; PtbConfig::dynamic_uses_ground_truth selects.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/spin_power_detector.hpp"
#include "sync/spin_tracker.hpp"

namespace ptb {

class EventTracer;

class DynamicPolicySelector {
 public:
  DynamicPolicySelector(const PtbConfig& cfg, std::uint32_t num_cores,
                        double spin_threshold);

  /// Ground-truth variant: reads the cores' actual exec states.
  PtbPolicy select(const std::vector<ExecState>& states);

  /// Heuristic variant: observes only per-core estimated power. Cores whose
  /// power-pattern spin ends simultaneously (a release wave) indicate a
  /// barrier; isolated exits indicate lock handoffs.
  PtbPolicy select_heuristic(Cycle now, const std::vector<double>& est_power);

  PtbPolicy last() const { return last_; }

  /// Attach/detach the event tracer (src/trace): a kPolicySwitch event is
  /// emitted whenever the selected policy changes (and once for the first
  /// selection, with old policy 0xff).
  void set_tracer(EventTracer* t) { tracer_ = t; }

  // Statistics.
  std::uint64_t to_one_cycles = 0;
  std::uint64_t to_all_cycles = 0;

  // Checkpoint support.
  void save_state(ByteWriter& w) const {
    w.u64(detectors_.size());
    for (const SpinPowerDetector& d : detectors_) d.save_state(w);
    w.u64(was_spinning_.size());
    for (const bool b : was_spinning_) w.boolean(b);
    w.u64(last_exit_cycle_);
    w.u32(recent_exits_);
    w.u8(static_cast<std::uint8_t>(last_));
    w.u8(static_cast<std::uint8_t>(heuristic_current_));
    w.boolean(policy_emitted_);
    w.u64(to_one_cycles);
    w.u64(to_all_cycles);
  }
  void load_state(ByteReader& r) {
    if (r.u64() != detectors_.size()) {
      r.fail();
      return;
    }
    for (SpinPowerDetector& d : detectors_) d.load_state(r);
    if (r.u64() != was_spinning_.size()) {
      r.fail();
      return;
    }
    for (std::size_t i = 0; i < was_spinning_.size(); ++i) {
      was_spinning_[i] = r.boolean();
    }
    last_exit_cycle_ = r.u64();
    recent_exits_ = r.u32();
    last_ = static_cast<PtbPolicy>(r.u8());
    heuristic_current_ = static_cast<PtbPolicy>(r.u8());
    policy_emitted_ = r.boolean();
    to_one_cycles = r.u64();
    to_all_cycles = r.u64();
  }

 private:
  void account(PtbPolicy p, std::uint32_t spinners);

  std::vector<SpinPowerDetector> detectors_;
  std::vector<bool> was_spinning_;
  Cycle last_exit_cycle_ = 0;
  std::uint32_t recent_exits_ = 0;
  PtbPolicy last_ = PtbPolicy::kToAll;
  PtbPolicy heuristic_current_ = PtbPolicy::kToAll;
  EventTracer* tracer_ = nullptr;  // owned by the running simulator
  bool policy_emitted_ = false;    // first emit carries old policy 0xff
};

}  // namespace ptb
